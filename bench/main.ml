(* Benchmark harness: regenerates every figure/table of the paper.

   For each figure: verify the match decision, verify result equivalence of
   the rewritten query, and time original vs. rewritten execution — one
   Bechamel Test.make per figure (plus the PERF rows of DESIGN.md). The
   ablation section re-runs the match decisions with individual design
   features disabled.

     dune exec bench/main.exe                (scale 1, ~60k fact rows)
     ASTRW_SCALE=4 dune exec bench/main.exe  (bigger) *)

module R = Data.Relation
module W = Workload.Star_schema

let scale =
  match Sys.getenv_opt "ASTRW_SCALE" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
  | None -> 1

(* ASTRW_SMOKE=1: CI gate. Skips the slow sections (multi-scale PERF1,
   bechamel) but runs every figure verification, and exits non-zero when
   any expected rewrite is missing or any result comparison fails. *)
let smoke =
  match Sys.getenv_opt "ASTRW_SMOKE" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

(* --gate FILE: after the run, diff this run's workload timings against a
   committed baseline and exit non-zero on regression (the CI perf gate).
   --write-baseline FILE: record the current run as the new baseline. *)
let gate_path, baseline_out =
  let gate = ref None and out = ref None in
  let rec parse = function
    | "--gate" :: p :: rest ->
        gate := Some p;
        parse rest
    | "--write-baseline" :: p :: rest ->
        out := Some p;
        parse rest
    | a :: _ ->
        Printf.eprintf
          "unknown argument %s (expected --gate FILE / --write-baseline FILE)\n"
          a;
        exit 2
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (!gate, !out)

let build cat sql = Qgm.Builder.build cat (Sqlsyn.Parser.parse_query sql)

type prepared = {
  p_case : Workload.Paper_queries.case;
  p_query : Qgm.Graph.t;
  p_rewritten : Qgm.Graph.t option;  (* None: no match (expected for some) *)
  p_db : Engine.Db.t;
}

let prepare db (c : Workload.Paper_queries.case) =
  let cat = Engine.Db.catalog db in
  let qg = build cat c.query in
  let ag = build cat c.ast in
  let mv_rel = Engine.Exec.run db ag in
  let cols = Qgm.Typing.infer_outputs cat ag in
  let cat2 =
    if Catalog.mem_table cat c.ast_name then cat
    else
      Catalog.add_table cat
        {
          Catalog.tbl_name = c.ast_name;
          tbl_cols =
            List.map
              (fun (n, ty) ->
                { Catalog.col_name = n; col_ty = ty; nullable = true })
              cols;
          primary_key = [];
          unique_keys = [];
          foreign_keys = [];
        }
  in
  let db = Engine.Db.put (Engine.Db.with_catalog db cat2) c.ast_name mv_rel in
  let cat2 = Engine.Db.catalog db in
  let rewritten =
    match Astmatch.Navigator.find_matches cat2 ~query:qg ~ast:ag with
    | [] -> None
    | sites ->
        (* replace the highest matched box (fewest remaining operators) *)
        let { Astmatch.Navigator.site_box; site_result; _ } =
          List.nth sites (List.length sites - 1)
        in
        Some
          (Astmatch.Rewrite.apply ~query:qg ~target:site_box
             ~result:site_result ~mv_table:c.ast_name
             ~mv_cols:(Array.to_list (R.columns mv_rel)))
  in
  (db, { p_case = c; p_query = qg; p_rewritten = rewritten; p_db = db })

let time_ms f =
  (* median of five *)
  let runs =
    List.init 5 (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  List.nth (List.sort compare runs) 2

let time_once f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  (Unix.gettimeofday () -. t0) *. 1000.

(* ---------------- machine-readable results ---------------- *)
(* JSON rendering is shared with the metrics exporter (Obs.Json), so
   BENCH_results.json and a live \metrics dump follow one schema. *)

module Json = Obs.Json

let figure_rows : Json.t list ref = ref []
let workload_rows : Json.t list ref = ref []
let planning_obj : Json.t ref = ref (Json.Obj [])
let governed_obj : Json.t ref = ref (Json.Obj [])
let validated_obj : Json.t ref = ref (Json.Obj [])
let proving_obj : Json.t ref = ref (Json.Obj [])

let () =
  Printf.printf "=== astrw bench: scale %d ===\n%!" scale;
  let params = W.scaled scale in
  let tables = W.generate params in
  let db0 = Engine.Db.of_tables (W.catalog ()) tables in
  Printf.printf "Trans rows: %d\n\n%!"
    (R.cardinality (List.assoc "Trans" tables));

  (* ---------------- per-figure verification + timing ---------------- *)
  let _, prepared =
    List.fold_left
      (fun (db, acc) c ->
        let db, p = prepare db c in
        (db, acc @ [ p ]))
      (db0, []) Workload.Paper_queries.cases
  in
  Printf.printf "%-10s %-14s %-9s %-7s %10s %10s %9s\n" "figure" "case"
    "rewrite" "correct" "orig(ms)" "mv(ms)" "speedup";
  let fails = ref 0 in
  List.iter
    (fun p ->
      let c = p.p_case in
      match p.p_rewritten with
      | None ->
          if c.Workload.Paper_queries.expect_rewrite then incr fails;
          figure_rows :=
            !figure_rows
            @ [
                Json.Obj
                  [
                    ("fig", Json.Str c.fig);
                    ("case", Json.Str c.name);
                    ("rewritten", Json.Bool false);
                    ("expected", Json.Bool c.expect_rewrite);
                  ];
              ];
          Printf.printf "%-10s %-14s %-9s %-7s %10s %10s %9s\n" c.fig c.name
            (if c.expect_rewrite then "MISSING!" else "no (ok)")
            "-" "-" "-" "-"
      | Some g' ->
          if not c.Workload.Paper_queries.expect_rewrite then incr fails;
          let orig = Engine.Exec.run p.p_db p.p_query in
          let via = Engine.Exec.run p.p_db g' in
          let correct = R.bag_equal_approx orig via in
          if not correct then incr fails;
          let t_orig = time_ms (fun () -> Engine.Exec.run p.p_db p.p_query) in
          let t_mv = time_ms (fun () -> Engine.Exec.run p.p_db g') in
          figure_rows :=
            !figure_rows
            @ [
                Json.Obj
                  [
                    ("fig", Json.Str c.fig);
                    ("case", Json.Str c.name);
                    ("rewritten", Json.Bool true);
                    ("expected", Json.Bool c.expect_rewrite);
                    ("correct", Json.Bool correct);
                    ("original_ms", Json.Num t_orig);
                    ("rewritten_ms", Json.Num t_mv);
                  ];
              ];
          Printf.printf "%-10s %-14s %-9s %-7s %10.2f %10.2f %8.1fx\n" c.fig
            c.name
            (if c.expect_rewrite then "yes" else "UNEXPECTED")
            (if correct then "yes" else "NO")
            t_orig t_mv (t_orig /. t_mv))
    prepared;
  Printf.printf "\nverification failures: %d\n\n%!" !fails;

  (* ---------------- PERF1: the 100x size claim (section 1.1) -------- *)
  Printf.printf "=== PERF1: summary-table size ratio (paper: about 100x) ===\n";
  Printf.printf "%-6s %12s %12s %8s\n" "scale" "Trans" "AST1" "ratio";
  List.iter
    (fun s ->
      let tables = W.generate (W.scaled s) in
      let db = Engine.Db.of_tables (W.catalog ()) tables in
      let ag = build (Engine.Db.catalog db) Workload.Paper_queries.ast1 in
      let mv = Engine.Exec.run db ag in
      let nt = R.cardinality (List.assoc "Trans" tables) in
      let na = R.cardinality mv in
      Printf.printf "%-6d %12d %12d %7.1fx\n" s nt na
        (float_of_int nt /. float_of_int na))
    (if smoke then [ 1 ] else [ 1; 2; 4 ]);
  print_newline ();

  (* ---------------- PERF3: workload-level speedup (section 8) -------- *)
  Printf.printf
    "=== PERF3: decision-support workload, 3 summary tables (section 8) ===\n";
  let sn =
    Mvstore.Session.of_tables (W.catalog ()) tables
  in
  List.iter
    (fun (name, sql) ->
      ignore
        (Mvstore.Session.exec_sql sn
           (Printf.sprintf "CREATE SUMMARY TABLE %s AS %s" name sql)))
    Workload.Decision_support.summary_tables;
  Printf.printf "%-24s %10s %10s %10s %10s %9s  %s\n" "query" "base(ms)"
    "base-row" "plan(ms)" "exec(ms)" "speedup" "routed via";
  let tot_base = ref 0.
  and tot_base_row = ref 0.
  and tot_plan = ref 0.
  and tot_exec = ref 0. in
  let ws_db = Mvstore.Session.db sn in
  let ws_cat = Engine.Db.catalog ws_db in
  let ws_store = Mvstore.Session.store sn in
  let ws_planner = Mvstore.Session.planner sn in
  List.iter
    (fun (q : Workload.Decision_support.query) ->
      let g = build ws_cat q.dq_sql in
      let t_base = time_ms (fun () -> Engine.Exec.run ws_db g) in
      (* the same base plan under the row interpreter: what the vectorized
         executor buys on queries the rewriter does not touch *)
      let t_base_row =
        Engine.Exec.with_engine Engine.Exec.Row (fun () ->
            time_ms (fun () -> Engine.Exec.run ws_db g))
      in
      (* planning and execution measured separately: plan_ms is the live
         (warm-cache) routing cost, exec_ms the rewritten plan alone *)
      let plan () =
        Plancache.Planner.plan ws_planner ~cat:ws_cat
          ~epoch:(Mvstore.Store.epoch ws_store)
          ~mvs:(Mvstore.Store.rewritable ws_store)
          g
      in
      let report = plan () in
      let t_plan = time_ms (fun () -> plan ()) in
      let t_exec =
        time_ms (fun () ->
            Engine.Exec.run ws_db report.Plancache.Planner.pr_graph)
      in
      let routed =
        match report.Plancache.Planner.pr_steps with
        | s :: _ -> s.Astmatch.Rewrite.used_mv
        | [] -> "(base tables)"
      in
      tot_base := !tot_base +. t_base;
      tot_base_row := !tot_base_row +. t_base_row;
      tot_plan := !tot_plan +. t_plan;
      tot_exec := !tot_exec +. t_exec;
      workload_rows :=
        !workload_rows
        @ [
            Json.Obj
              [
                ("query", Json.Str q.dq_name);
                ("base_ms", Json.Num t_base);
                ("base_row_ms", Json.Num t_base_row);
                ("plan_ms", Json.Num t_plan);
                ("exec_ms", Json.Num t_exec);
                ("rewritten_ms", Json.Num (t_plan +. t_exec));
                ("routed_via", Json.Str routed);
              ];
          ];
      Printf.printf "%-24s %10.1f %10.1f %10.3f %10.1f %8.1fx  %s\n" q.dq_name
        t_base t_base_row t_plan t_exec
        (t_base /. (t_plan +. t_exec))
        routed)
    Workload.Decision_support.queries;
  Printf.printf "%-24s %10.1f %10.1f %10.3f %10.1f %8.1fx\n" "TOTAL" !tot_base
    !tot_base_row !tot_plan !tot_exec
    (!tot_base /. (!tot_plan +. !tot_exec));
  print_newline ();

  (* ---------------- PERF10: vectorized vs row interpreter ------------ *)
  (* The executor claim: batch-at-a-time execution over typed columns
     beats the row-at-a-time interpreter on the base-table runs that
     dominate end-to-end time. Bag equality across the two engines is
     checked at every scale; the 10x floor is asserted only at bench
     scale (ASTRW_SCALE >= 10), where batches are large enough to
     amortize the columnar decode. *)
  Printf.printf "=== PERF10: vectorized executor vs row interpreter ===\n";
  let vec_cases =
    let fig2 =
      List.find
        (fun p -> p.p_case.Workload.Paper_queries.name = "fig2_q1")
        prepared
    in
    let di =
      List.find
        (fun (q : Workload.Decision_support.query) ->
          q.dq_name = "discount_impact")
        Workload.Decision_support.queries
    in
    [
      ("fig2_q1", fig2.p_db, fig2.p_query);
      ("discount_impact", ws_db, build ws_cat di.dq_sql);
    ]
  in
  Printf.printf "%-20s %12s %10s %9s %8s\n" "query" "vector(ms)" "row(ms)"
    "speedup" "correct";
  let floor_asserted = scale >= 10 in
  let vec_rows =
    List.map
      (fun (name, db, g) ->
        let under e = Engine.Exec.with_engine e (fun () -> Engine.Exec.run db g) in
        let correct =
          R.bag_equal_approx (under Engine.Exec.Vector) (under Engine.Exec.Row)
        in
        if not correct then incr fails;
        let t_vec =
          Engine.Exec.with_engine Engine.Exec.Vector (fun () ->
              time_ms (fun () -> Engine.Exec.run db g))
        in
        let t_row =
          Engine.Exec.with_engine Engine.Exec.Row (fun () ->
              time_ms (fun () -> Engine.Exec.run db g))
        in
        let speedup = t_row /. t_vec in
        if floor_asserted && speedup < 10. then begin
          Printf.printf "PERF10 FAILURE: %s speedup %.1fx below the 10x floor\n"
            name speedup;
          incr fails
        end;
        Printf.printf "%-20s %12.2f %10.2f %8.1fx %8s\n" name t_vec t_row
          speedup
          (if correct then "yes" else "NO");
        Json.Obj
          [
            ("query", Json.Str name);
            ("vector_ms", Json.Num t_vec);
            ("row_ms", Json.Num t_row);
            ("speedup", Json.Num speedup);
            ("correct", Json.Bool correct);
          ])
      vec_cases
  in
  let vectorized_obj =
    Json.Obj
      [
        ( "default_engine",
          Json.Str (Engine.Exec.engine_to_string Engine.Exec.default_engine) );
        ("floor", Json.Num 10.);
        ("floor_asserted", Json.Bool floor_asserted);
        ("rows", Json.List vec_rows);
      ]
  in
  print_newline ();

  (* ---------------- ablations (DESIGN.md section 5) ------------------ *)
  Printf.printf
    "=== ablations: figure rewrites surviving with a feature off ===\n";
  let positive =
    List.filter
      (fun (c : Workload.Paper_queries.case) -> c.expect_rewrite)
      Workload.Paper_queries.cases
  in
  let decide () =
    (* cheap decision run on a small database *)
    let tables =
      W.generate { W.default_params with n_custs = 2; trans_per_acct_year = 10 }
    in
    let db = Engine.Db.of_tables (W.catalog ()) tables in
    List.map
      (fun (c : Workload.Paper_queries.case) ->
        let cat = Engine.Db.catalog db in
        let qg = build cat c.query in
        let ag = build cat c.ast in
        (c.name, Astmatch.Navigator.find_matches cat ~query:qg ~ast:ag <> []))
      positive
  in
  let baseline = decide () in
  let ablations =
    [
      ("equivalence classes", Astmatch.Config.equivalence_classes);
      ("predicate subsumption", Astmatch.Config.predicate_subsumption);
      ("greedy derivation", Astmatch.Config.greedy_derivation);
      ("smallest cuboid", Astmatch.Config.smallest_cuboid);
    ]
  in
  Printf.printf "%-24s %9s   lost rewrites\n" "feature disabled" "matches";
  Printf.printf "%-24s %6d/%d\n" "(none: baseline)"
    (List.length (List.filter snd baseline))
    (List.length baseline);
  List.iter
    (fun (label, switch) ->
      let rows = Astmatch.Config.without switch decide in
      let lost =
        List.filter_map
          (fun ((name, ok), (_, ok0)) ->
            if ok0 && not ok then Some name else None)
          (List.combine rows baseline)
      in
      Printf.printf "%-24s %6d/%d   %s\n" label
        (List.length (List.filter snd rows))
        (List.length rows)
        (String.concat ", " lost))
    ablations;
  print_newline ();

  (* ---------------- PERF4: planning path, N MVs, repeated queries ---- *)
  (* The plan-cache workload: a store of 32 summary tables and a mix of
     repeated analyst queries. Compares the uncached path (Rewrite.best
     over every fresh MV, the pre-plancache behaviour) against the planner
     cold (miss: filter + match + memoize) and warm (hit: fingerprint +
     lookup, zero match-function calls). *)
  Printf.printf "=== PERF4: rewrite-planning path (plan cache + candidate filter) ===\n";
  let tiny =
    W.generate { W.default_params with n_custs = 2; trans_per_acct_year = 5 }
  in
  let psn = Mvstore.Session.of_tables (W.catalog ()) tiny in
  let dims =
    [
      ("flid", "flid");
      ("faid", "faid");
      ("fpgid", "fpgid");
      ("year(date) AS year", "year(date)");
      ("month(date) AS month", "month(date)");
    ]
  in
  let subsets =
    let rec go = function
      | [] -> [ [] ]
      | x :: rest ->
          let r = go rest in
          r @ List.map (fun s -> x :: s) r
    in
    List.filter (fun s -> s <> []) (go dims)
  in
  List.iteri
    (fun i keys ->
      let sel = String.concat ", " (List.map fst keys) in
      let grp = String.concat ", " (List.map snd keys) in
      ignore
        (Mvstore.Session.exec_sql psn
           (Printf.sprintf
              "CREATE SUMMARY TABLE p_mv%d AS SELECT %s, COUNT(*) AS c, \
               SUM(qty) AS sq FROM Trans GROUP BY %s"
              i sel grp)))
    subsets;
  ignore
    (Mvstore.Session.exec_sql psn
       "CREATE SUMMARY TABLE p_mv_recent AS SELECT flid, COUNT(*) AS c, \
        SUM(qty) AS sq FROM Trans WHERE year(date) >= 1995 GROUP BY flid");
  let pstore = Mvstore.Session.store psn in
  let pdb = Mvstore.Session.db psn in
  let pcat = Engine.Db.catalog pdb in
  let n_mvs = List.length (Mvstore.Store.rewritable pstore) in
  let mix =
    [
      "SELECT flid, SUM(qty) AS s FROM Trans GROUP BY flid";
      "SELECT faid, COUNT(*) AS c FROM Trans GROUP BY faid";
      "SELECT flid, fpgid, SUM(qty) AS s FROM Trans GROUP BY flid, fpgid";
      "SELECT year(date) AS year, SUM(qty) AS s FROM Trans GROUP BY year(date)";
      "SELECT flid, year(date) AS year, COUNT(*) AS c FROM Trans \
       GROUP BY flid, year(date)";
      "SELECT fpgid, month(date) AS month, SUM(qty) AS s FROM Trans \
       GROUP BY fpgid, month(date)";
      "SELECT lid, COUNT(*) AS c FROM Loc GROUP BY lid";
      "SELECT faid, flid, fpgid, SUM(qty) AS s FROM Trans \
       GROUP BY faid, flid, fpgid";
    ]
  in
  let graphs = List.map (fun sql -> build pcat sql) mix in
  let rounds = 20 in
  let t_uncached =
    time_once (fun () ->
        for _ = 1 to rounds do
          List.iter
            (fun g ->
              ignore
                (Astmatch.Rewrite.best ~cat:pcat g
                   (Mvstore.Store.rewritable pstore)))
            graphs
        done)
  in
  let planner = Mvstore.Session.planner psn in
  let plan_pass () =
    List.iter
      (fun g ->
        ignore
          (Plancache.Planner.plan planner ~cat:pcat
             ~epoch:(Mvstore.Store.epoch pstore)
             ~mvs:(Mvstore.Store.rewritable pstore) g))
      graphs
  in
  let t_cold = time_once plan_pass in
  Astmatch.Patterns.reset_match_count ();
  let t_warm = time_once (fun () -> for _ = 1 to rounds do plan_pass () done) in
  let warm_matches = Astmatch.Patterns.match_count () in
  let per_q_uncached = t_uncached /. float_of_int (rounds * List.length mix) in
  let per_q_warm = t_warm /. float_of_int (rounds * List.length mix) in
  let speedup = per_q_uncached /. per_q_warm in
  let st = Mvstore.Session.stats psn in
  Printf.printf "MVs: %d, query mix: %d, rounds: %d\n" n_mvs (List.length mix)
    rounds;
  Printf.printf "uncached planning: %8.3f ms/query\n" per_q_uncached;
  Printf.printf "cold planning:     %8.3f ms/query (miss: filter + match)\n"
    (t_cold /. float_of_int (List.length mix));
  Printf.printf "warm planning:     %8.3f ms/query (hit)\n" per_q_warm;
  Printf.printf "warm speedup:      %8.1fx  (match_boxes calls while warm: %d)\n"
    speedup warm_matches;
  Printf.printf "%s\n\n%!" (Plancache.Stats.to_string st);
  planning_obj :=
    Json.Obj
      [
        ("mvs", Json.Int n_mvs);
        ("distinct_queries", Json.Int (List.length mix));
        ("rounds", Json.Int rounds);
        ("uncached_ms_per_query", Json.Num per_q_uncached);
        ("cold_ms_per_query", Json.Num (t_cold /. float_of_int (List.length mix)));
        ("warm_ms_per_query", Json.Num per_q_warm);
        ("warm_speedup", Json.Num speedup);
        ("warm_match_boxes_calls", Json.Int warm_matches);
        ("cache_hits", Json.Int st.Plancache.Stats.hits);
        ("cache_misses", Json.Int st.Plancache.Stats.misses);
        ("candidates_attempted", Json.Int st.Plancache.Stats.attempted);
        ("candidates_filtered", Json.Int st.Plancache.Stats.filtered);
      ];

  (* ---------------- PERF6: governed planning at 64 summary tables ---- *)
  (* Tail-latency control: cold rewrite planning over a store of 64
     summary tables, with and without a 10 ms deadline. Each sample plans
     on a fresh planner (no cache, index rebuilt) so the distribution is
     the worst-case path; the deadline pass reports how many plans were
     truncated. The smoke gate requires ZERO degradation under the default
     infinite budget — a governed build must not throttle ungoverned
     planning. *)
  Printf.printf
    "=== PERF6: planning-latency distribution under a deadline (64 MVs) ===\n";
  let gdims = dims @ [ ("qty", "qty") ] in
  let gsubsets =
    let rec go = function
      | [] -> [ [] ]
      | x :: rest ->
          let r = go rest in
          r @ List.map (fun s -> x :: s) r
    in
    List.filter (fun s -> s <> []) (go gdims)
  in
  let gsn = Mvstore.Session.of_tables (W.catalog ()) tiny in
  List.iteri
    (fun i keys ->
      let sel = String.concat ", " (List.map fst keys) in
      let grp = String.concat ", " (List.map snd keys) in
      ignore
        (Mvstore.Session.exec_sql gsn
           (Printf.sprintf
              "CREATE SUMMARY TABLE g_mv%d AS SELECT %s, COUNT(*) AS c, \
               SUM(qty) AS sq FROM Trans GROUP BY %s"
              i sel grp)))
    gsubsets;
  ignore
    (Mvstore.Session.exec_sql gsn
       "CREATE SUMMARY TABLE g_mv_recent AS SELECT flid, COUNT(*) AS c, \
        SUM(qty) AS sq FROM Trans WHERE year(date) >= 1995 GROUP BY flid");
  let gstore = Mvstore.Session.store gsn in
  let gcat = Engine.Db.catalog (Mvstore.Session.db gsn) in
  let gmvs = Mvstore.Store.rewritable gstore in
  let n64 = List.length gmvs in
  let ggraphs = List.map (fun sql -> build gcat sql) mix in
  let grounds = if smoke then 4 else 25 in
  let run_pass deadline =
    let lats = ref [] and degraded = ref 0 in
    for _ = 1 to grounds do
      List.iter
        (fun g ->
          (* fresh planner and budget per sample: cold path, full account *)
          let planner = Plancache.Planner.create () in
          let budget =
            Option.map
              (fun ms ->
                Govern.Budget.start (Govern.Budget.limits ~deadline_ms:ms ()))
              deadline
          in
          let t0 = Unix.gettimeofday () in
          let r =
            Plancache.Planner.plan ?budget planner ~cat:gcat
              ~epoch:(Mvstore.Store.epoch gstore) ~mvs:gmvs g
          in
          lats := ((Unix.gettimeofday () -. t0) *. 1000.) :: !lats;
          if r.Plancache.Planner.pr_degraded <> None then incr degraded)
        ggraphs
    done;
    (List.sort compare !lats, !degraded)
  in
  let pct lats p =
    let n = List.length lats in
    List.nth lats (min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let lats_inf, degr_inf = run_pass None in
  let lats_dl, degr_dl = run_pass (Some 10.0) in
  let row label lats degraded =
    Printf.printf
      "%-18s p50 %8.3f ms   p95 %8.3f ms   p99 %8.3f ms   max %8.3f ms   \
       degraded %d/%d\n"
      label (pct lats 0.50) (pct lats 0.95) (pct lats 0.99) (pct lats 1.0)
      degraded (List.length lats);
    Json.Obj
      [
        ("p50_ms", Json.Num (pct lats 0.50));
        ("p95_ms", Json.Num (pct lats 0.95));
        ("p99_ms", Json.Num (pct lats 0.99));
        ("max_ms", Json.Num (pct lats 1.0));
        ("degraded", Json.Int degraded);
        ("samples", Json.Int (List.length lats));
      ]
  in
  Printf.printf "MVs: %d, query mix: %d, samples per pass: %d\n" n64
    (List.length mix)
    (grounds * List.length mix);
  let inf_row = row "unlimited" lats_inf degr_inf in
  let dl_row = row "deadline 10ms" lats_dl degr_dl in
  if degr_inf > 0 then begin
    incr fails;
    Printf.printf
      "GOVERNANCE FAILURE: %d plan(s) degraded under the infinite budget\n"
      degr_inf
  end;
  governed_obj :=
    Json.Obj
      [
        ("mvs", Json.Int n64);
        ("unlimited", inf_row);
        ("deadline_10ms", dl_row);
      ];
  print_newline ();

  (* ---------------- PERF5: runtime-verification overhead ------------- *)
  (* Cost of Session verify modes: every verified query executes the base
     plan too, so Always pays roughly base+mv per rewritten query and
     Sampled p a p-weighted blend. Decision-support mix on small data (the
     overhead ratio, not absolute time, is the point). *)
  Printf.printf "=== PERF5: runtime result verification overhead ===\n";
  let verify_modes =
    [
      ("off", Mvstore.Session.Off);
      ("sample:0.25", Mvstore.Session.Sampled 0.25);
      ("always", Mvstore.Session.Always);
      ("static", Mvstore.Session.Static);
    ]
  in
  let vrounds = 10 in
  let verify_rows =
    List.map
      (fun (label, mode) ->
        let vsn = Mvstore.Session.of_tables ~verify:mode (W.catalog ()) tiny in
        List.iter
          (fun (name, sql) ->
            ignore
              (Mvstore.Session.exec_sql vsn
                 (Printf.sprintf "CREATE SUMMARY TABLE %s AS %s" name sql)))
          Workload.Decision_support.summary_tables;
        let parsed =
          List.map
            (fun (q : Workload.Decision_support.query) ->
              Sqlsyn.Parser.parse_query q.dq_sql)
            Workload.Decision_support.queries
        in
        let t =
          time_once (fun () ->
              for _ = 1 to vrounds do
                List.iter
                  (fun q -> ignore (Mvstore.Session.run_query vsn q))
                  parsed
              done)
        in
        let st = Mvstore.Session.stats vsn in
        let per_q = t /. float_of_int (vrounds * List.length parsed) in
        Printf.printf
          "verify %-12s %8.3f ms/query  (%d verification run(s), %d \
           mismatch(es), %d static skip(s))\n"
          label per_q st.Plancache.Stats.verify_runs
          st.Plancache.Stats.verify_mismatches
          st.Plancache.Stats.verify_static_skips;
        ( label,
          Json.Obj
            [
              ("ms_per_query", Json.Num per_q);
              ("verify_runs", Json.Int st.Plancache.Stats.verify_runs);
              ("verify_mismatches", Json.Int st.Plancache.Stats.verify_mismatches);
              ("verify_static_skips", Json.Int st.Plancache.Stats.verify_static_skips);
            ] ))
      verify_modes
  in
  (* The point of verify:Static — whole query classes with certified
     plans stop paying the double execution. Requires the prover on. *)
  (if Prove.Level.rewrite_on () then
     let stat label field =
       match List.assoc label verify_rows with
       | Json.Obj fields -> (
           match List.assoc field fields with Json.Int n -> n | _ -> 0)
       | _ -> 0
     in
     let skips = stat "static" "verify_static_skips"
     and runs_static = stat "static" "verify_runs"
     and runs_always = stat "always" "verify_runs" in
     if skips = 0 || runs_static >= runs_always then begin
       incr fails;
       Printf.printf
         "PERF5 FAILURE: verify:static skipped %d run(s) (static ran %d, \
          always ran %d) — no query class has a certified plan\n"
         skips runs_static runs_always
     end);
  print_newline ();

  (* ---------------- PERF11: partition certificates ------------------- *)
  (* The prover as a planner primitive: certify shard pairs as
     disjoint-and-covering (the enabling check for UNION ALL multi-view
     rewrites). Pairs over the PERF4 catalog mix true partitions — range
     splits on a NOT NULL column, discrete <=c-1 / >=c adjacency,
     computed year() splits — with near-misses (gaps, overlaps). Two
     gates: every true partition must be Proved (and only those), and
     every Proved verdict is re-checked against the data — the shard
     union must bag-equal the unrestricted scan. A certificate
     contradicted by bag equality is a soundness bug, never noise. *)
  Printf.printf
    "=== PERF11: partition certificates (proof rate + prover latency) ===\n";
  let shard_specs n =
    List.init n (fun i ->
        let c = 2 + (i mod 4) in
        (* qty is 1..5 NOT NULL; cuts 2..5 keep both shards nonempty *)
        match i mod 5 with
        | 0 ->
            ( true,
              Printf.sprintf "SELECT flid, qty FROM Trans WHERE qty < %d" c,
              Printf.sprintf "SELECT flid, qty FROM Trans WHERE qty >= %d" c )
        | 1 ->
            (* discrete adjacency: <= c-1 meets >= c with no integer gap *)
            ( true,
              Printf.sprintf "SELECT flid, qty FROM Trans WHERE qty <= %d" (c - 1),
              Printf.sprintf "SELECT flid, qty FROM Trans WHERE qty >= %d" c )
        | 2 ->
            let y = 1993 + (i mod 3) in
            ( true,
              Printf.sprintf
                "SELECT flid, qty FROM Trans WHERE year(date) < %d" y,
              Printf.sprintf
                "SELECT flid, qty FROM Trans WHERE year(date) >= %d" y )
        | 3 ->
            (* gap: disjoint but the cut point falls through both sides *)
            ( false,
              Printf.sprintf "SELECT flid, qty FROM Trans WHERE qty < %d" c,
              Printf.sprintf "SELECT flid, qty FROM Trans WHERE qty > %d" c )
        | _ ->
            (* overlap: not even disjoint *)
            ( false,
              Printf.sprintf "SELECT flid, qty FROM Trans WHERE qty < %d" c,
              Printf.sprintf "SELECT flid, qty FROM Trans WHERE qty >= %d" (c - 1)
            ))
  in
  let scan_all = Engine.Exec.run pdb (build pcat "SELECT flid, qty FROM Trans") in
  let prove_pctl lats p =
    let n = List.length lats in
    List.nth lats (min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let prove_rows =
    List.map
      (fun n ->
        let lats = ref [] and proved = ref 0 and expected = ref 0 in
        List.iter
          (fun (expect, sa, sb) ->
            if expect then incr expected;
            let ga = build pcat sa and gb = build pcat sb in
            let t0 = Unix.gettimeofday () in
            let cert = Prove.partition ~cat:pcat ga gb in
            lats := ((Unix.gettimeofday () -. t0) *. 1000.) :: !lats;
            match cert.Prove.pc_status with
            | Prove.Proved ->
                incr proved;
                if not expect then begin
                  incr fails;
                  Printf.printf
                    "PERF11 FAILURE: non-partition proved: %s | %s\n" sa sb
                end
                else begin
                  let ra = Engine.Exec.run pdb ga
                  and rb = Engine.Exec.run pdb gb in
                  let union =
                    R.create
                      (Array.to_list (R.columns ra))
                      (R.rows ra @ R.rows rb)
                  in
                  if not (R.bag_equal_approx union scan_all) then begin
                    incr fails;
                    Printf.printf
                      "PERF11 FAILURE: Proved partition contradicted by bag \
                       equality: %s | %s\n"
                      sa sb
                  end
                end
            | Prove.Unknown why ->
                if expect then begin
                  incr fails;
                  Printf.printf
                    "PERF11 FAILURE: partition not proved (%s): %s | %s\n" why
                    sa sb
                end)
          (shard_specs n);
        let lats = List.sort compare !lats in
        let rate = float_of_int !proved /. float_of_int n in
        Printf.printf
          "pairs %-4d proved %d/%d (expected %d)   rate %.2f   p50 %7.3f ms \
           p95 %7.3f ms\n"
          n !proved n !expected rate (prove_pctl lats 0.50)
          (prove_pctl lats 0.95);
        Json.Obj
          [
            ("pairs", Json.Int n);
            ("proved", Json.Int !proved);
            ("expected_proved", Json.Int !expected);
            ("proof_rate", Json.Num rate);
            ("p50_ms", Json.Num (prove_pctl lats 0.50));
            ("p95_ms", Json.Num (prove_pctl lats 0.95));
          ])
      [ 32; 64 ]
  in
  let prove_counter name =
    Obs.Metrics.counter_value (Obs.Metrics.counter name)
  in
  proving_obj :=
    Json.Obj
      [
        ("level", Json.Str (Prove.Level.to_string (Prove.Level.current ())));
        ("sizes", Json.List prove_rows);
        ("attempts", Json.Int (prove_counter "prove.attempts"));
        ("proved", Json.Int (prove_counter "prove.proved"));
        ("unknown", Json.Int (prove_counter "prove.unknown"));
        ("verify_skips", Json.Int (prove_counter "prove.verify_skips"));
      ];
  print_newline ();

  (* ---------------- PERF7: static-validation overhead ---------------- *)
  (* Cold rewrite planning over the PERF4 store (32 MVs) at the three
     ASTQL_VALIDATE levels. Level 0 must cost nothing — every hook is one
     int compare — so the smoke gate fails when the off path regresses
     against every-candidate beyond a loose noise bound. Fresh planner per
     sample: the cold path is where validation runs live. *)
  Printf.printf
    "=== PERF7: static IR validation overhead (cold planning, %d MVs) ===\n"
    n_mvs;
  let vlevels =
    [
      ("off", Lint.Level.Off);
      ("final-plan", Lint.Level.Final);
      ("every-candidate", Lint.Level.Candidates);
    ]
  in
  let vrounds7 = if smoke then 4 else 25 in
  let vpass level =
    Lint.Level.with_level level @@ fun () ->
    let lats = ref [] in
    for _ = 1 to vrounds7 do
      List.iter
        (fun g ->
          let planner = Plancache.Planner.create () in
          let t0 = Unix.gettimeofday () in
          ignore
            (Plancache.Planner.plan planner ~cat:pcat
               ~epoch:(Mvstore.Store.epoch pstore)
               ~mvs:(Mvstore.Store.rewritable pstore)
               g);
          lats := ((Unix.gettimeofday () -. t0) *. 1000.) :: !lats)
        graphs
    done;
    List.sort compare !lats
  in
  let vpct lats p =
    let n = List.length lats in
    List.nth lats (min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let vrows =
    List.map
      (fun (label, level) ->
        let lats = vpass level in
        Printf.printf "validate %-16s p50 %8.3f ms   p95 %8.3f ms\n" label
          (vpct lats 0.50) (vpct lats 0.95);
        ( label,
          Json.Obj
            [
              ("p50_ms", Json.Num (vpct lats 0.50));
              ("p95_ms", Json.Num (vpct lats 0.95));
              ("samples", Json.Int (List.length lats));
            ] ))
      vlevels
  in
  let vp50 label =
    match List.assoc label vrows with
    | Json.Obj fields -> (
        match List.assoc "p50_ms" fields with Json.Num v -> v | _ -> 0.)
    | _ -> 0.
  in
  let p50_off = vp50 "off" and p50_all = vp50 "every-candidate" in
  if p50_off > (p50_all *. 2.0) +. 1.0 then begin
    incr fails;
    Printf.printf
      "VALIDATION FAILURE: planning with validation off (p50 %.3f ms) \
       regressed past every-candidate (p50 %.3f ms)\n"
      p50_off p50_all
  end;
  validated_obj := Json.Obj (("mvs", Json.Int n_mvs) :: vrows);
  print_newline ();

  (* ---------------- PERF8: multi-core socket serving ----------------- *)
  (* Boot the real server (TCP, ephemeral port) at increasing domain
     counts and drive it with concurrent client threads issuing a mixed
     read+DML workload: rewritten aggregates over a shared read-only fact
     table interleaved with INSERTs into a per-client scratch table (so
     every client's responses have a deterministic single-threaded
     reference despite concurrent DML — the bag-equality check at the end
     is exact). Reports queries/sec and client-observed p50/p99 per domain
     count. Throughput scaling only materializes with real cores; the
     smoke gate therefore only requires that 4 domains are not
     substantially SLOWER than 1 (lock contention / snapshot overhead),
     while multi-core hosts should see the full parallel speedup on the
     read-heavy mix. *)
  Printf.printf
    "=== PERF8: socket serving, mixed read+DML workload (%d clients) ===\n"
    8;
  let serve_clients = 8 in
  let reqs_per_client = if smoke then 25 else 150 in
  let domain_counts = if smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let mk_serve_shared () =
    let sn = Mvstore.Session.create () in
    ignore
      (Mvstore.Session.exec_sql sn
         "CREATE TABLE sfact (grp INT NOT NULL, v INT NOT NULL); CREATE \
          SUMMARY TABLE sfact_by_grp AS SELECT grp, SUM(v) AS s, COUNT(*) \
          AS c FROM sfact GROUP BY grp;");
    let vals =
      List.init 400 (fun i -> Printf.sprintf "(%d, %d)" (i mod 8) i)
      |> String.concat ", "
    in
    ignore
      (Mvstore.Session.exec_sql sn
         (Printf.sprintf
            "INSERT INTO sfact VALUES %s; REFRESH SUMMARY TABLE \
             sfact_by_grp;"
            vals));
    Mvstore.Session.share sn
  in
  let serve_mismatches = Atomic.make 0 in
  let serve_errors = Atomic.make 0 in
  (* [degrade:true] pins the overload ladder's first rung permanently on
     (watermark 0): every request is served from base plans, measuring the
     floor the server falls back to under queue pressure. The default
     explicitly disables the rung so 8 clients briefly queueing on fewer
     domains cannot contaminate the full-quality rows. *)
  let run_serving ?(degrade = false) domains =
    let shared = mk_serve_shared () in
    let srv =
      Server.Listener.start
        (Server.Listener.config
           ~addr:(Server.Listener.Tcp ("127.0.0.1", 0))
           ~domains ~queue_depth:(serve_clients + 4) ~backlog:64
           ~degrade_watermark:(if degrade then 0 else -1)
           ())
        ~mk_session:(fun () -> Mvstore.Session.attach shared)
    in
    let addr =
      Server.Listener.Tcp ("127.0.0.1", Option.get (Server.Listener.port srv))
    in
    let lat_m = Mutex.create () in
    let all_lats = ref [] in
    let client_thread ci =
      let c = Server.Client.connect_addr addr in
      let lats = ref [] in
      let tbl = Printf.sprintf "scratch_c%d" ci in
      let req sql =
        let t0 = Unix.gettimeofday () in
        (match Server.Client.request c sql with
        | Ok _ -> ()
        | Error _ -> Atomic.incr serve_errors
        | exception _ -> Atomic.incr serve_errors);
        lats := ((Unix.gettimeofday () -. t0) *. 1000.) :: !lats
      in
      req (Printf.sprintf "CREATE TABLE %s (a INT NOT NULL, b INT NOT NULL);" tbl);
      let expected = ref [] in
      for j = 1 to reqs_per_client do
        if j mod 5 = 0 then begin
          (* DML: goes through the serialized writer, bumps the epoch *)
          req (Printf.sprintf "INSERT INTO %s VALUES (%d, %d);" tbl j (ci * j));
          expected := (j, ci * j) :: !expected
        end
        else
          (* read: lock-free snapshot, rewritten against the summary *)
          req
            "SELECT grp, SUM(v) AS s, COUNT(*) AS c FROM sfact GROUP BY \
             grp ORDER BY grp;"
      done;
      (* correctness: this client's view of its own table is exactly the
         single-threaded reference, whatever the cross-client schedule *)
      (match
         Server.Client.request c
           (Printf.sprintf "SELECT a, b FROM %s ORDER BY a;" tbl)
       with
      | Ok r -> (
          match r.Server.Wire.rp_results with
          | [ Server.Wire.Table (_, rows) ] ->
              let got =
                List.map
                  (function
                    | [| Data.Value.Int a; Data.Value.Int b |] -> (a, b)
                    | _ -> (min_int, min_int))
                  rows
              in
              if got <> List.rev !expected then
                Atomic.incr serve_mismatches
          | _ -> Atomic.incr serve_mismatches)
      | Error _ | (exception _) -> Atomic.incr serve_errors);
      Server.Client.close c;
      Mutex.lock lat_m;
      all_lats := !lats @ !all_lats;
      Mutex.unlock lat_m
    in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init serve_clients (fun i -> Thread.create client_thread i)
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Server.Listener.stop srv;
    let lats = List.sort compare !all_lats in
    let n = List.length lats in
    let pct p = List.nth lats (min (n - 1) (int_of_float (p *. float_of_int n))) in
    let qps = float_of_int n /. wall in
    Printf.printf
      "domains %d%s   %7.0f req/s   p50 %7.3f ms   p99 %8.3f ms   (%d \
       requests, %.2f s)\n%!"
      domains
      (if degrade then " (degraded: base plans)" else "")
      qps (pct 0.50) (pct 0.99) n wall;
    ( domains,
      qps,
      Json.Obj
        [
          ("domains", Json.Int domains);
          ("degraded", Json.Bool degrade);
          ("qps", Json.Num qps);
          ("p50_ms", Json.Num (pct 0.50));
          ("p99_ms", Json.Num (pct 0.99));
          ("requests", Json.Int n);
          ("wall_s", Json.Num wall);
        ] )
  in
  let serving_rows = List.map (fun d -> run_serving d) domain_counts in
  (* degraded-mode throughput: what the overload ladder's first rung
     serves. Correctness still gated (base plans are exact); no scaling
     gate — this row documents the floor, not the ceiling. *)
  let degraded_row = run_serving ~degrade:true 4 in
  let serving_qps d =
    List.find_map
      (fun (d', qps, _) -> if d' = d then Some qps else None)
      serving_rows
  in
  let cores = Domain.recommended_domain_count () in
  (match (serving_qps 1, serving_qps 4) with
  | Some q1, Some q4 ->
      Printf.printf "4-domain/1-domain throughput: %.2fx (%d core%s)\n"
        (q4 /. q1) cores
        (if cores = 1 then "" else "s");
      (* Parallel speedup is only physically possible with the cores to
         back it; on a saturated 1-core box 4 domains just contend. *)
      if cores >= 4 && q4 < 0.75 *. q1 then begin
        incr fails;
        Printf.printf
          "SERVING FAILURE: 4 domains (%.0f req/s) substantially slower \
           than 1 (%.0f req/s) — contention in the serving path\n"
          q4 q1
      end
      else if cores < 4 then
        Printf.printf
          "scaling gate skipped: only %d core(s) available\n" cores
  | _ -> ());
  if Atomic.get serve_mismatches > 0 then begin
    incr fails;
    Printf.printf
      "SERVING FAILURE: %d client(s) saw responses diverge from the \
       single-threaded reference\n"
      (Atomic.get serve_mismatches)
  end;
  if Atomic.get serve_errors > 0 then begin
    incr fails;
    Printf.printf "SERVING FAILURE: %d request error(s) under load\n"
      (Atomic.get serve_errors)
  end;
  let serving_obj =
    Json.Obj
      [
        ("clients", Json.Int serve_clients);
        ("cores", Json.Int cores);
        ("requests_per_client", Json.Int reqs_per_client);
        ( "read_fraction",
          Json.Num (1.0 -. (1.0 /. 5.0)) );
        ("rows", Json.List (List.map (fun (_, _, j) -> j) serving_rows));
        ("degraded_rows", Json.List [ (fun (_, _, j) -> j) degraded_row ]);
      ]
  in
  print_newline ();

  (* ---------------- PERF9: durability write-path overhead ------------ *)
  (* Cost of the WAL commit hook per fsync policy: the same INSERT
     workload against a plain in-memory session (baseline), then against
     durable sessions logging with fsync off / every 16 commits / every
     commit. The off/interval rows isolate the framing + write(2) cost;
     the always row is dominated by fsync latency of the backing device,
     so it is reported but not gated. *)
  Printf.printf "=== PERF9: durability write-path overhead per fsync policy ===\n";
  let dur_stmts = if smoke then 200 else 1000 in
  let temp_dur_dir () =
    let d = Filename.temp_file "astrw-bench-dur" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let rm_rf dir =
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  let time_inserts sn =
    ignore
      (Mvstore.Session.exec_sql sn
         "CREATE TABLE wlog (seq INT NOT NULL, v INT NOT NULL);");
    let t0 = Unix.gettimeofday () in
    for i = 1 to dur_stmts do
      ignore
        (Mvstore.Session.exec_sql sn
           (Printf.sprintf "INSERT INTO wlog VALUES (%d, %d);" i (i * 3)))
    done;
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  let baseline_ms = time_inserts (Mvstore.Session.create ()) in
  let durability_row (label, policy) =
    let dir = temp_dur_dir () in
    let cfg =
      {
        Durable.Manager.c_dir = dir;
        c_fsync = policy;
        c_checkpoint_every = 0;
      }
    in
    let mgr, shared, _ = Durable.Manager.recover cfg in
    let sn = Mvstore.Session.attach shared in
    Durable.Manager.bind mgr sn;
    let ms = time_inserts sn in
    Durable.Manager.close mgr;
    rm_rf dir;
    let per_stmt_us = ms *. 1000. /. float_of_int dur_stmts in
    Printf.printf
      "%-12s %8.1f ms for %d statements   %8.2f us/stmt   %5.2fx baseline\n%!"
      label ms dur_stmts per_stmt_us (ms /. baseline_ms);
    Json.Obj
      [
        ("policy", Json.Str label);
        ("statements", Json.Int dur_stmts);
        ("wall_ms", Json.Num ms);
        ("us_per_stmt", Json.Num per_stmt_us);
        ("overhead_vs_baseline", Json.Num (ms /. baseline_ms));
      ]
  in
  Printf.printf
    "%-12s %8.1f ms for %d statements   %8.2f us/stmt   (baseline)\n%!"
    "in-memory" baseline_ms dur_stmts
    (baseline_ms *. 1000. /. float_of_int dur_stmts);
  let durability_rows =
    List.map durability_row
      [
        ("off", Durable.Wal.Off);
        ("interval:16", Durable.Wal.Interval 16);
        ("always", Durable.Wal.Always);
      ]
  in
  let durability_obj =
    Json.Obj
      [
        ("statements", Json.Int dur_stmts);
        ("baseline_ms", Json.Num baseline_ms);
        ("rows", Json.List durability_rows);
      ]
  in
  print_newline ();

  (* ---------------- BENCH_results.json ------------------------------- *)
  let results_path = "BENCH_results.json" in
  Json.to_file results_path
    (Json.Obj
       [
         ("scale", Json.Int scale);
         ("smoke", Json.Bool smoke);
         ("verification_failures", Json.Int !fails);
         ("figures", Json.List !figure_rows);
         ("workload", Json.List !workload_rows);
         ( "workload_total",
           Json.Obj
             [
               ("base_ms", Json.Num !tot_base);
               ("base_row_ms", Json.Num !tot_base_row);
               ("plan_ms", Json.Num !tot_plan);
               ("exec_ms", Json.Num !tot_exec);
               ("rewritten_ms", Json.Num (!tot_plan +. !tot_exec));
             ] );
         ("vectorized", vectorized_obj);
         ("planning", !planning_obj);
         ("governed_planning", !governed_obj);
         ("validated_planning", !validated_obj);
         ("serving", serving_obj);
         ("durability", durability_obj);
         ("verification", Json.Obj verify_rows);
         ("proving", !proving_obj);
         (* the live registry, same schema as \metrics json / --metrics-out *)
         ("metrics", Obs.Metrics.to_json ());
       ]);
  Printf.printf "wrote %s\n%!" results_path;
  let metrics_path = "BENCH_metrics.json" in
  Obs.Metrics.dump metrics_path;
  Printf.printf "wrote %s\n\n%!" metrics_path;

  (* ---------------- perf-regression gate ----------------------------- *)
  (* bench/baseline.json records per-query workload timings at smoke
     scale; --gate compares this run against it and fails on a >30%
     exec_ms regression (plus 0.5 ms absolute slack, so sub-millisecond
     rows don't gate on scheduler noise). *)
  (match baseline_out with
  | Some path ->
      Json.to_file path
        (Json.Obj
           [
             ("scale", Json.Int scale);
             ("workload", Json.List !workload_rows);
             ("proving", !proving_obj);
           ]);
      Printf.printf "wrote baseline %s\n%!" path
  | None -> ());
  (match gate_path with
  | None -> ()
  | Some path ->
      let base =
        let text = In_channel.with_open_text path In_channel.input_all in
        match Json.of_string text with
        | Ok j -> j
        | Error e ->
            Printf.printf "GATE ERROR: cannot parse %s: %s\n%!" path e;
            exit 2
      in
      let num = function
        | Some (Json.Num x) | Some (Json.Float x) -> x
        | Some (Json.Int n) -> float_of_int n
        | _ -> nan
      in
      (match Json.member "scale" base with
      | Some (Json.Int s) when s <> scale ->
          Printf.printf
            "GATE WARNING: baseline was recorded at scale %d, this run is \
             scale %d\n"
            s scale
      | _ -> ());
      let rows =
        match Json.member "workload" base with
        | Some (Json.List l) -> l
        | _ -> []
      in
      Printf.printf "=== bench gate: %s (>30%% exec regression + 0.5 ms) ===\n"
        path;
      Printf.printf "%-24s %13s %13s %10s\n" "query" "baseline(ms)" "now(ms)"
        "verdict";
      let gate_fails = ref 0 in
      List.iter
        (fun brow ->
          let name =
            match Json.member "query" brow with
            | Some (Json.Str s) -> s
            | _ -> "?"
          in
          let b_exec = num (Json.member "exec_ms" brow) in
          match
            List.find_opt
              (fun r -> Json.member "query" r = Some (Json.Str name))
              !workload_rows
          with
          | None ->
              incr gate_fails;
              Printf.printf "%-24s %13.2f %13s %10s\n" name b_exec "-" "MISSING"
          | Some r ->
              let c_exec = num (Json.member "exec_ms" r) in
              let limit = (b_exec *. 1.30) +. 0.5 in
              let ok = (not (Float.is_nan c_exec)) && c_exec <= limit in
              if not ok then incr gate_fails;
              Printf.printf "%-24s %13.2f %13.2f %10s\n" name b_exec c_exec
                (if ok then "ok" else "REGRESSED"))
        rows;
      (* prover-coverage gate: the partition proved count is a
         deterministic integer (counting, not timing), so any drop below
         the recorded baseline is a real capability regression, not
         runner noise. *)
      let proved_rows j =
        match Option.bind j (Json.member "sizes") with
        | Some (Json.List l) ->
            List.filter_map
              (fun row ->
                match (Json.member "pairs" row, Json.member "proved" row) with
                | Some (Json.Int n), Some (Json.Int p) -> Some (n, p)
                | _ -> None)
              l
        | _ -> []
      in
      let now_proved = proved_rows (Some !proving_obj) in
      List.iter
        (fun (n, b_proved) ->
          match List.assoc_opt n now_proved with
          | Some c when c >= b_proved -> ()
          | Some c ->
              incr gate_fails;
              Printf.printf
                "proof count at %d pairs regressed: baseline %d, now %d\n" n
                b_proved c
          | None ->
              incr gate_fails;
              Printf.printf "proof-count row for %d pairs MISSING\n" n)
        (proved_rows (Json.member "proving" base));
      if !gate_fails > 0 then begin
        Printf.printf "BENCH GATE FAILURE: %d row(s) regressed\n%!" !gate_fails;
        exit 1
      end;
      Printf.printf "bench gate OK\n\n%!");

  if smoke then begin
    Printf.printf "smoke mode: skipping bechamel timings\n";
    if !fails > 0 then begin
      Printf.printf "SMOKE FAILURE: %d verification failure(s)\n%!" !fails;
      exit 1
    end;
    Printf.printf "smoke OK\n%!";
    exit 0
  end;

  (* ---------------- bechamel: one Test.make per figure --------------- *)
  Printf.printf "=== bechamel timings (monotonic clock, ns/run) ===\n%!";
  let open Bechamel in
  let tests =
    List.concat_map
      (fun p ->
        match p.p_rewritten with
        | None -> []
        | Some g' ->
            [
              Test.make
                ~name:(p.p_case.Workload.Paper_queries.name ^ "/original")
                (Staged.stage (fun () -> Engine.Exec.run p.p_db p.p_query));
              Test.make
                ~name:(p.p_case.Workload.Paper_queries.name ^ "/rewritten")
                (Staged.stage (fun () -> Engine.Exec.run p.p_db g'));
            ])
      prepared
  in
  let grouped = Test.make_grouped ~name:"figures" ~fmt:"%s %s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n" name est
      | _ -> Printf.printf "%-40s %14s\n" name "n/a")
    (List.sort compare rows);
  Printf.printf "\ndone.\n"
