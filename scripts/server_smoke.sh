#!/usr/bin/env bash
# Server smoke test: boots astql-server on a Unix-domain socket and drives
# the whole client path against it — every example script, a typed-error
# round trip (bad SQL must yield a structured error AND a non-zero client
# exit without killing the connection for the next request), and a check
# that the server.* metrics actually counted the traffic. Run from anywhere;
# it cd's to the repo root. CI runs it in the server-smoke job next to the
# PERF8 serving gate (ASTRW_SMOKE=1 bench run).
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin/astql.exe bin/astql_server.exe

SOCK=$(mktemp -u "${TMPDIR:-/tmp}/astql-smoke-XXXXXX.sock")
METRICS=$(mktemp "${TMPDIR:-/tmp}/astql-smoke-metrics-XXXXXX.json")
ERRTXT=$(mktemp "${TMPDIR:-/tmp}/astql-smoke-err-XXXXXX.txt")

DURDIR=$(mktemp -d "${TMPDIR:-/tmp}/astql-smoke-dur-XXXXXX")

SERVER_PID=
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$SOCK" "$METRICS" "$ERRTXT"
  rm -rf "$DURDIR"
}
trap cleanup EXIT

./_build/default/bin/astql_server.exe \
  --addr "$SOCK" --domains 2 --queue-depth 16 --metrics-out "$METRICS" &
SERVER_PID=$!

# no sleep-polling for the socket: the client retries connection
# establishment with bounded exponential backoff while the server boots
echo "== example scripts through the client =="
first=--retry=10
for f in examples/*.sql; do
  echo "--- $f"
  ./_build/default/bin/astql.exe connect $first "$SOCK" "$f"
  first=
done

echo "== typed-error round trip =="
if ./_build/default/bin/astql.exe connect "$SOCK" \
     -e 'SELECT no_such_column FROM sales GROUP BY no_such_column;' \
     >"$ERRTXT" 2>&1; then
  echo "FAIL: bad SQL should exit non-zero"
  cat "$ERRTXT"
  exit 1
fi
grep -q 'session_error' "$ERRTXT" || {
  echo "FAIL: expected a structured session_error, got:"
  cat "$ERRTXT"
  exit 1
}

# the same server must still answer after shedding the failed statement
./_build/default/bin/astql.exe connect "$SOCK" \
  -e 'SELECT region, SUM(qty) AS q FROM sales GROUP BY region ORDER BY region;'

echo "== clean shutdown + metrics =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero on SIGTERM"; exit 1; }
SERVER_PID=

grep -q '"server.requests"' "$METRICS" || {
  echo "FAIL: server.requests missing from metrics dump"; exit 1;
}
grep -q '"server.connections"' "$METRICS" || {
  echo "FAIL: server.connections missing from metrics dump"; exit 1;
}

echo "== durability: drain on SIGTERM, final checkpoint, recovery =="
./_build/default/bin/astql_server.exe \
  --addr "$SOCK" --domains 2 --durability "$DURDIR" --drain-ms 2000 &
SERVER_PID=$!

./_build/default/bin/astql.exe connect --retry 10 "$SOCK" \
  -e 'CREATE TABLE d (a INT NOT NULL); INSERT INTO d VALUES (1), (2), (3);'

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: durable server exited non-zero on SIGTERM"; exit 1; }
SERVER_PID=

ls "$DURDIR"/ckpt-*.json >/dev/null 2>&1 || {
  echo "FAIL: no final checkpoint written on SIGTERM"; exit 1;
}

./_build/default/bin/astql_server.exe \
  --addr "$SOCK" --domains 2 --durability "$DURDIR" &
SERVER_PID=$!

./_build/default/bin/astql.exe connect --retry 10 "$SOCK" \
  -e 'SELECT COUNT(*) AS n FROM d;' | grep -q '| 3 ' || {
  echo "FAIL: rebooted server lost committed writes"; exit 1;
}

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero on SIGTERM"; exit 1; }
SERVER_PID=

echo "server smoke OK"
