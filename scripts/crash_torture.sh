#!/usr/bin/env bash
# Crash-recovery torture: a seeded kill -9 loop over every armed crash
# point in the durability path (wal_append, wal_fsync, checkpoint_write,
# checkpoint_rename). Each iteration runs a write workload with one crash
# point armed — the process SIGKILLs itself at that exact step, exactly
# like kill -9 — then recovers and checks the invariants:
#
#   * no acknowledged write is lost: every INSERT whose ack reached stdout
#     before the kill is present after recovery;
#   * applied is a prefix of issued: MAX(seq) == COUNT(*) <= the number of
#     statements issued (replay never reorders, skips or duplicates);
#   * a rolled-back statement (NOT NULL violation mid-statement) is never
#     resurrected by replay;
#   * the recovered database bag-equals a never-crashed reference run of
#     the same statement prefix, and the summary-backed aggregate agrees;
#   * recovery is idempotent: a second boot of the same directory reports
#     a clean log and identical data.
#
# A final degraded-recovery phase corrupts a summary payload inside the
# newest checkpoint in place and checks it is quarantined (not trusted,
# not fatal) and rebuilt by REFRESH.
#
#   SEED=7 ITERS=24 scripts/crash_torture.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-1}"
ITERS="${ITERS:-24}"
INSERTS=12

dune build bin/astql.exe

ASTQL=./_build/default/bin/astql.exe
WORK=$(mktemp -d "${TMPDIR:-/tmp}/astql-torture-XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# ---- workload ------------------------------------------------------------
# LSN 1: CREATE TABLE; LSN 2: CREATE SUMMARY; then one rollback probe
# (no LSN — the whole statement fails its NOT NULL check and rolls back),
# then $INSERTS single-row inserts, LSNs 3..(2+INSERTS). v = seq, so the
# summary's SUM over the full run is INSERTS*(INSERTS+1)/2 = 78.
{
  echo "CREATE TABLE kv (seq INT NOT NULL, grp VARCHAR NOT NULL, v INT NOT NULL);"
  echo "CREATE SUMMARY TABLE kv_by_grp AS SELECT grp, SUM(v) AS sv, COUNT(*) AS n FROM kv GROUP BY grp;"
  echo "INSERT INTO kv VALUES (888888, 'g', 1), (888889, 'g', NULL);"
  for i in $(seq 1 "$INSERTS"); do
    echo "INSERT INTO kv VALUES ($i, 'g', $i);"
  done
} > "$WORK/workload.sql"

cat > "$WORK/verify.sql" <<'EOF'
SELECT seq, grp, v FROM kv ORDER BY seq;
SELECT grp, SUM(v) AS sv, COUNT(*) AS n FROM kv GROUP BY grp ORDER BY grp;
EOF

# Reference prefixes: ref_dump[k] = the dump a never-crashed run produces
# after the first k inserts. Built once, in memory, no durability.
mkdir -p "$WORK/ref"
for k in $(seq 0 "$INSERTS"); do
  {
    head -2 "$WORK/workload.sql"   # schema only, no probe
    for i in $(seq 1 "$k"); do
      echo "INSERT INTO kv VALUES ($i, 'g', $i);"
    done
    cat "$WORK/verify.sql"
  } > "$WORK/ref/prefix_$k.sql"
  "$ASTQL" run "$WORK/ref/prefix_$k.sql" \
    | grep -v 'created\|inserted\|maintainable\|lint' > "$WORK/ref/dump_$k.txt"
done

POINTS=(wal_append wal_fsync checkpoint_write checkpoint_rename)
fails=0
fired=0

for it in $(seq 1 "$ITERS"); do
  point=${POINTS[$(( (SEED + it) % 4 ))]}
  case "$point" in
    # append/fsync hits count commits; offset past the 2 schema LSNs so
    # the table always exists when we crash
    wal_append|wal_fsync) hit=$(( 3 + (SEED * 7 + it * 5) % INSERTS )) ;;
    # checkpoint hits count checkpoints; --checkpoint-every 2 yields ~7
    checkpoint_write|checkpoint_rename) hit=$(( 1 + (SEED * 3 + it) % 5 )) ;;
  esac

  DIR="$WORK/dur_$it"
  out="$WORK/out_$it.txt"
  rc=0
  "$ASTQL" run --durability "$DIR" --fsync always --checkpoint-every 2 \
      --crash "$point:$hit" "$WORK/workload.sql" > "$out" 2>/dev/null || rc=$?
  if [ "$rc" -ne 137 ]; then
    echo "FAIL[$it $point:$hit]: expected SIGKILL (137), got rc=$rc"
    fails=$((fails + 1)); continue
  fi
  fired=$((fired + 1))
  acked=$(grep -c "row(s) inserted into kv" "$out" || true)

  # ---- recover and verify ----
  dump="$WORK/dump_$it.txt"
  if ! "$ASTQL" run --durability "$DIR" "$WORK/verify.sql" 2>"$WORK/rec_$it.txt" \
      | grep -v 'created\|inserted\|maintainable\|lint' > "$dump"; then
    echo "FAIL[$it $point:$hit]: recovery run failed"
    sed 's/^/  /' "$WORK/rec_$it.txt"
    fails=$((fails + 1)); continue
  fi

  # applied = number of kv rows after recovery: data rows of the first
  # query look like '| 3  | g | 3  |' (the summary row leads with 'g')
  applied=$(grep -cE '^\| +[0-9]+ +\| g ' "$dump" || true)

  if [ "$applied" -lt "$acked" ]; then
    echo "FAIL[$it $point:$hit]: lost acknowledged writes (acked=$acked, applied=$applied)"
    fails=$((fails + 1)); continue
  fi
  if [ "$applied" -gt "$INSERTS" ]; then
    echo "FAIL[$it $point:$hit]: more rows than issued (applied=$applied)"
    fails=$((fails + 1)); continue
  fi
  if grep -q "88888" "$dump"; then
    echo "FAIL[$it $point:$hit]: rolled-back statement resurrected"
    fails=$((fails + 1)); continue
  fi
  # bag-equality with the never-crashed reference for the same prefix
  # (prefix property — MAX(seq) == COUNT(*) — is implied by the diff)
  if ! diff -q "$WORK/ref/dump_$applied.txt" "$dump" >/dev/null; then
    echo "FAIL[$it $point:$hit]: recovered db diverges from reference (applied=$applied)"
    diff "$WORK/ref/dump_$applied.txt" "$dump" | head -10 | sed 's/^/  /'
    fails=$((fails + 1)); continue
  fi
  # idempotence: recovering again must change nothing
  "$ASTQL" run --durability "$DIR" "$WORK/verify.sql" 2>/dev/null \
    | grep -v 'created\|inserted\|maintainable\|lint' > "$dump.2"
  if ! diff -q "$dump" "$dump.2" >/dev/null; then
    echo "FAIL[$it $point:$hit]: second recovery diverges from first"
    fails=$((fails + 1)); continue
  fi
  echo "ok [$it] $point:$hit acked=$acked applied=$applied"
done

if [ "$fired" -lt "$ITERS" ]; then
  echo "FAIL: only $fired/$ITERS crash iterations actually fired"
  fails=$((fails + 1))
fi

# ---- degraded recovery: corrupted summary payload ------------------------
echo "== corrupted summary payload =="
DIR="$WORK/dur_corrupt"
"$ASTQL" run --durability "$DIR" "$WORK/workload.sql" >/dev/null 2>&1 || true
# the exit checkpoint stores the summary payload ["g",78,12]; bit-rot the SUM
CKPT=$(ls "$DIR"/ckpt-*.json | sort -V | tail -1)
grep -q '"g", 78,' "$CKPT" || { echo "FAIL: expected summary payload in $CKPT"; exit 1; }
sed -i 's/"g", 78,/"g", 787878,/' "$CKPT"
rec="$WORK/rec_corrupt.txt"
"$ASTQL" run --durability "$DIR" "$WORK/verify.sql" 2>"$rec" \
  | grep -v 'created\|inserted\|maintainable\|lint' > "$WORK/dump_corrupt.txt"
grep -q "quarantined for rebuild: kv_by_grp" "$rec" || {
  echo "FAIL: corrupted payload was not quarantined"; cat "$rec"; fails=$((fails + 1));
}
if ! diff -q "$WORK/ref/dump_$INSERTS.txt" "$WORK/dump_corrupt.txt" >/dev/null; then
  echo "FAIL: degraded recovery served wrong answers"
  fails=$((fails + 1))
fi
# the ordinary rebuild path restores the summary from recovered base data
"$ASTQL" run --durability "$DIR" \
  <(echo "REFRESH SUMMARY TABLE kv_by_grp; SELECT grp, SUM(v) AS sv, COUNT(*) AS n FROM kv GROUP BY grp;") \
  2>/dev/null | grep -q "| 78 " || {
  echo "FAIL: quarantined summary did not rebuild"; fails=$((fails + 1));
}

if [ "$fails" -gt 0 ]; then
  echo "crash torture: $fails failure(s) over $ITERS iterations (seed $SEED)"
  exit 1
fi
echo "crash torture OK: $ITERS kill -9 iterations, all invariants held (seed $SEED)"
