#!/usr/bin/env bash
# Network chaos: a seeded loop over the four wire fault points
# (wire_partial_write, wire_stall_read, wire_disconnect, wire_corrupt).
# Each iteration boots astql-server with WAL durability and exactly one
# wire fault armed at a seeded hit count, then drives a mixed workload of
# INSERTs and SELECTs through the retrying client and checks the
# serving-resilience invariants:
#
#   * no acked write is lost: every INSERT the client saw acknowledged is
#     present after SIGTERM + reboot + WAL/checkpoint recovery;
#   * no double-applied write: the wire faults strike the reply path, so
#     every delivered INSERT executes exactly once — a duplicate row would
#     mean the client blindly retried a non-idempotent statement across an
#     ambiguous ack;
#   * surviving results bag-equal a fault-free reference run of the same
#     statements (table dump and the summary-routed aggregate);
#   * no wedged workers: a liveness probe answers within 2 s throughout,
#     and SIGTERM shutdown completes inside its drain bound;
#   * at most one client-visible failure per iteration (the one-shot
#     fault), and it is always a typed error or clean transport failure —
#     never an escaped exception.
#
# A final overload-burst phase runs more concurrent clients than the
# server's queue admits against a low degrade watermark and checks that
# every retrying client converges (zero non-typed failures) and that the
# first overload rung actually served degraded base-plan answers.
#
#   SEED=7 ITERS=12 scripts/chaos_net.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-1}"
ITERS="${ITERS:-12}"
INSERTS=10

dune build bin/astql.exe bin/astql_server.exe

ASTQL=./_build/default/bin/astql.exe
SERVER=./_build/default/bin/astql_server.exe
WORK=$(mktemp -d "${TMPDIR:-/tmp}/astql-chaos-net-XXXXXX")
SERVER_PID=
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/chaos.sock"
CLI=("$ASTQL" connect --timeout-ms 1500 --retries 5)

start_server() { # args: extra server flags...
  rm -f "$SOCK"
  ASTQL_WIRE_STALL_MS=300 "$SERVER" --addr "$SOCK" --domains 2 \
    --drain-ms 3000 --io-timeout-ms 1000 "$@" \
    >>"$SERVER_LOG" 2>&1 &
  SERVER_PID=$!
}

stop_server() { # SIGTERM; shutdown must complete inside the drain bound
  kill -TERM "$SERVER_PID" 2>/dev/null || true
  local waited=0
  while kill -0 "$SERVER_PID" 2>/dev/null; do
    sleep 0.2
    waited=$((waited + 1))
    if [ "$waited" -gt 75 ]; then # 15 s >> drain 3 s: a wedged worker
      echo "FAIL: server did not exit within 15 s of SIGTERM (wedged?)"
      kill -9 "$SERVER_PID" 2>/dev/null || true
      wait "$SERVER_PID" 2>/dev/null || true
      SERVER_PID=
      return 1
    fi
  done
  wait "$SERVER_PID" 2>/dev/null || { SERVER_PID=; return 1; }
  SERVER_PID=
}

probe() { # liveness: an answer within 2 s, throughout the chaos
  timeout 2 "$ASTQL" connect --retry 5 --timeout-ms 1500 --retries 2 "$SOCK" \
    -e 'SELECT COUNT(*) AS alive FROM kv;' >/dev/null 2>&1
}

filter_noise() { grep -v 'created\|inserted\|maintainable\|lint' || true; }

# ---- fault-free reference ------------------------------------------------
# The wire faults all strike the reply path, after execution: every
# delivered INSERT applies exactly once, so the surviving database is the
# full run regardless of which request's ack was torn.
cat > "$WORK/schema.sql" <<'EOF'
CREATE TABLE kv (seq INT NOT NULL, grp VARCHAR NOT NULL, v INT NOT NULL);
CREATE SUMMARY TABLE kv_by_grp AS SELECT grp, SUM(v) AS sv, COUNT(*) AS n FROM kv GROUP BY grp;
EOF
cat > "$WORK/verify.sql" <<'EOF'
SELECT seq, grp, v FROM kv ORDER BY seq;
SELECT grp, SUM(v) AS sv, COUNT(*) AS n FROM kv GROUP BY grp ORDER BY grp;
EOF
{
  cat "$WORK/schema.sql"
  for i in $(seq 1 "$INSERTS"); do
    echo "INSERT INTO kv VALUES ($i, 'g', $i);"
  done
  cat "$WORK/verify.sql"
} > "$WORK/reference.sql"
"$ASTQL" run "$WORK/reference.sql" | filter_noise > "$WORK/ref_dump.txt"

POINTS=(wire_partial_write wire_stall_read wire_disconnect wire_corrupt)
fails=0

for it in $(seq 1 "$ITERS"); do
  point=${POINTS[$(( (SEED + it) % 4 ))]}
  hit=$(( 1 + (SEED * 3 + it) % 5 ))
  DIR="$WORK/dur_$it"
  SERVER_LOG="$WORK/server_$it.log"

  start_server --queue-depth 8 --durability "$DIR" --fault "$point:$hit"
  iter_fail() {
    echo "FAIL[$it $point:$hit]: $1"
    fails=$((fails + 1))
  }

  # schema through the booting server (the client retries the dial)
  "$ASTQL" connect --retry 10 --timeout-ms 1500 --retries 5 "$SOCK" \
    "$WORK/schema.sql" >/dev/null 2>&1 || true

  acked=()
  client_failures=0
  for i in $(seq 1 "$INSERTS"); do
    if out=$("${CLI[@]}" "$SOCK" -e "INSERT INTO kv VALUES ($i, 'g', $i);" 2>&1) \
        && grep -q "row(s) inserted into kv" <<<"$out"; then
      acked+=("$i")
    else
      client_failures=$((client_failures + 1))
      # escaped exceptions are never acceptable, typed failures are
      if grep -qi 'fatal error\|raised at\|backtrace' <<<"$out"; then
        iter_fail "non-typed client failure: $(head -1 <<<"$out")"
      fi
    fi
    if [ $(( i % 3 )) -eq 0 ]; then
      probe || iter_fail "liveness probe missed its 2 s bound mid-workload"
      # a mid-chaos read must retry through the fault and stay consistent:
      # rows are {1..k}, so SUM(v) == k*(k+1)/2 exactly when COUNT(*) == k
      if sel=$("${CLI[@]}" "$SOCK" \
          -e 'SELECT grp, SUM(v) AS sv, COUNT(*) AS n FROM kv GROUP BY grp;' \
          2>/dev/null); then
        read -r sv n < <(awk -F'|' '/\| g / {gsub(/ /,"",$3); gsub(/ /,"",$4); print $3, $4}' <<<"$sel")
        if [ -n "${n:-}" ] && [ "$sv" -ne $(( n * (n + 1) / 2 )) ]; then
          iter_fail "inconsistent mid-chaos aggregate (sv=$sv n=$n)"
        fi
      fi
    fi
  done

  # the armed fault is one-shot: at most one request can have failed
  if [ "$client_failures" -gt 1 ]; then
    iter_fail "$client_failures client failures from a one-shot fault"
  fi

  stop_server || iter_fail "shutdown after chaos workload"

  # ---- reboot, recover, verify ----
  start_server --queue-depth 8 --durability "$DIR"
  probe || iter_fail "rebooted server missed the 2 s probe bound"
  dump="$WORK/dump_$it.txt"
  "$ASTQL" connect --retry 10 --timeout-ms 1500 --retries 5 "$SOCK" \
    "$WORK/verify.sql" 2>/dev/null | filter_noise > "$dump" \
    || iter_fail "verify run against the rebooted server failed"
  for i in "${acked[@]}"; do
    grep -Eq "^\| +$i +\| g " "$dump" \
      || iter_fail "acked write seq=$i lost across recovery"
  done
  if ! diff -q "$WORK/ref_dump.txt" "$dump" >/dev/null; then
    iter_fail "survivors diverge from the fault-free reference"
    diff "$WORK/ref_dump.txt" "$dump" | head -8 | sed 's/^/  /'
  fi
  stop_server || iter_fail "shutdown after recovery check"

  echo "ok [$it] $point:$hit acked=${#acked[@]}/$INSERTS client_failures=$client_failures"
done

# ---- overload burst: the ladder under real concurrency -------------------
echo "== overload burst =="
SERVER_LOG="$WORK/server_burst.log"
start_server --degrade-watermark 1 --retry-after-ms 25 --queue-depth 2
"$ASTQL" connect --retry 10 --timeout-ms 2000 "$SOCK" "$WORK/schema.sql" \
  >/dev/null
"$ASTQL" connect --timeout-ms 2000 "$SOCK" \
  -e "INSERT INTO kv VALUES (1, 'g', 1), (2, 'g', 2);" >/dev/null

BURST=12
pids=()
for i in $(seq 1 "$BURST"); do
  "$ASTQL" connect --retry 10 --timeout-ms 3000 --retries 8 "$SOCK" \
    -e 'SELECT grp, SUM(v) AS sv FROM kv GROUP BY grp;' \
    >"$WORK/burst_out_$i.txt" 2>"$WORK/burst_err_$i.txt" &
  pids+=($!)
done
probe || { echo "FAIL: probe missed its 2 s bound during the burst"; fails=$((fails + 1)); }
converged=0
for i in $(seq 1 "$BURST"); do
  if wait "${pids[$((i - 1))]}"; then converged=$((converged + 1)); fi
  if grep -qi 'fatal error\|raised at\|backtrace' \
      "$WORK/burst_out_$i.txt" "$WORK/burst_err_$i.txt"; then
    echo "FAIL: burst client $i died with a non-typed failure"
    fails=$((fails + 1))
  fi
done
if [ "$converged" -ne "$BURST" ]; then
  echo "FAIL: only $converged/$BURST burst clients converged"
  fails=$((fails + 1))
fi
if ! grep -l 'degraded answer (.*overload' "$WORK"/burst_err_*.txt >/dev/null 2>&1; then
  echo "FAIL: first overload rung never served a degraded base-plan answer"
  fails=$((fails + 1))
fi
stop_server || { echo "FAIL: shutdown after burst"; fails=$((fails + 1)); }

if [ "$fails" -gt 0 ]; then
  # keep server logs where CI can pick them up as artifacts
  mkdir -p _chaos_net_failures
  cp "$WORK"/server_*.log _chaos_net_failures/ 2>/dev/null || true
  echo "net chaos: $fails failure(s) over $ITERS iterations (seed $SEED)"
  exit 1
fi
echo "net chaos OK: $ITERS wire-fault iterations + overload burst, all invariants held (seed $SEED)"
