#!/usr/bin/env bash
# CI perf-regression gate: runs the bench in smoke mode and diffs the fresh
# BENCH_results.json workload timings against the committed baseline
# (bench/baseline.json). Any query whose exec_ms regresses by more than 30%
# (plus 0.5 ms absolute slack) fails the gate. A perf gate on shared CI
# runners is inherently noisy, so one failing run is retried once before the
# verdict sticks.
#
#   scripts/bench_gate.sh             gate against bench/baseline.json
#   scripts/bench_gate.sh --update    regenerate the baseline intentionally
#                                     (commit the result)
#
# Run from anywhere; it cd's to the repo root. CI runs this in the
# bench-smoke job and uploads BENCH_results.json / BENCH_metrics.json as
# artifacts either way.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=bench/baseline.json

dune build bench/main.exe

if [[ "${1:-}" == "--update" ]]; then
  ASTRW_SMOKE=1 dune exec --no-build bench/main.exe -- \
    --write-baseline "$BASELINE"
  echo "baseline updated: $BASELINE (commit it)"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "no $BASELINE — run scripts/bench_gate.sh --update and commit it" >&2
  exit 2
fi

if ASTRW_SMOKE=1 dune exec --no-build bench/main.exe -- --gate "$BASELINE"; then
  exit 0
fi
echo "bench gate failed once; retrying to rule out runner noise..." >&2
ASTRW_SMOKE=1 dune exec --no-build bench/main.exe -- --gate "$BASELINE"
