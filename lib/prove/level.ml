(* Prover activation levels, following the lib/lint validation-level idiom:
   ASTQL_PROVE=0/1/2 selects how much static proving runs.

     0 / off      — prover disabled; subsumption and verification fall back
                    to the pre-prover behavior everywhere.
     1 / rewrite  — prove at rewrite time: semantic subsumption in the
                    matcher and per-plan certificates (the default).
     2 / define   — additionally prove at definition/lint time: V118
                    dead-predicate detection and the L105 range-overlap
                    upgrade on CREATE SUMMARY TABLE.

   The level is a process-wide ref seeded from the environment so the CI
   matrix can run the whole suite at any level without code changes. *)

type t = Off | Rewrite | Define

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "0" | "off" | "none" -> Some Off
  | "1" | "rewrite" | "at-rewrite" -> Some Rewrite
  | "2" | "define" | "at-define" | "all" -> Some Define
  | _ -> None

let to_string = function
  | Off -> "off"
  | Rewrite -> "rewrite"
  | Define -> "define"

let default =
  match Sys.getenv_opt "ASTQL_PROVE" with
  | None -> Rewrite
  | Some s -> ( match of_string s with Some l -> l | None -> Rewrite)

let level = ref default
let current () = !level
let set l = level := l

(* Proving active at rewrite time (levels 1 and 2). *)
let rewrite_on () = !level <> Off

(* Proving also active at definition/lint time (level 2 only). *)
let define_on () = !level = Define

let with_level l f =
  let old = !level in
  level := l;
  Fun.protect ~finally:(fun () -> level := old) f
