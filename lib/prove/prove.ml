(* Static predicate prover: abstract interpretation over canonicalized QGM
   predicates.

   A conjunction of predicates is abstracted into a {!state}: per-key
   abstract values from {!Domain} (keys are *normalized sub-expressions* —
   a bare column, or a scalar computation like [year(d)] — so computed
   restrictions participate too) plus the residual conjuncts the domain
   cannot represent.  The state over-approximates the satisfying rows;
   every verdict is therefore one-sided:

     [Proved]    — the property holds for every database instance;
     [Unknown _] — nothing is claimed, callers keep today's behavior.

   Equivalence-class propagation happens at the call sites: the matcher
   canonicalizes predicates through [Equiv.canon] before asking, so two
   spellings of the same column land on one key.

   Exactness: the abstraction of a *single* predicate is exact for
   comparison/equality/IS NULL atoms and same-key conjunctions of them,
   but an OR of intervals collapses to a convex hull (over-approximation).
   Entailment and coverage require the needed side to be exact; the
   [pred_abs] classifier tracks that bit.  Disjointness and
   unsatisfiability only need over-approximation. *)

module E = Qgm.Expr
module G = Qgm.Graph
module Bx = Qgm.Box
module V = Data.Value

module Level = Level
module Domain = Domain

type status = Proved | Unknown of string

let is_proved = function Proved -> true | Unknown _ -> false

(* First failure wins, so a combined certificate names its first hole. *)
let both a b = match a with Proved -> b | Unknown _ -> a
let all_proved l = List.fold_left both Proved l

(* ---------------- metrics ---------------- *)

let m_attempts = Obs.Metrics.counter "prove.attempts"
let m_proved = Obs.Metrics.counter "prove.proved"
let m_unknown = Obs.Metrics.counter "prove.unknown"
let m_ms = Obs.Metrics.histogram "prove.ms"

let record f =
  Obs.Metrics.incr m_attempts;
  let r = Obs.Metrics.time m_ms f in
  (match r with
  | Proved -> Obs.Metrics.incr m_proved
  | Unknown _ -> Obs.Metrics.incr m_unknown);
  r

(* Cooperative with planning budgets: proving is optional work, so when
   the statement deadline is already spent we answer [Unknown] instead of
   starting an analysis (and never raise). *)
let unless_deadline budget f =
  if Govern.Budget.deadline_spent budget then Unknown "planning deadline spent"
  else f ()

(* ---------------- type oracles ---------------- *)

(* Lift a column-type oracle to key expressions: scalar functions with a
   statically known result type keep their argument keys typed, which is
   what lets [year(d) > 1999] normalize like an INT bound. *)
let rec key_ty ~col e =
  match e with
  | E.Col c -> col c
  | E.Fncall (("year" | "month" | "day" | "length" | "mod"), _) -> Some V.Tint
  | E.Fncall ("float", _) -> Some V.Tfloat
  | E.Fncall (("upper" | "lower"), _) -> Some V.Tstr
  | E.Unop ("-", x) -> key_ty ~col x
  | _ -> None

let no_ty _ = None

(* ---------------- predicate classification ---------------- *)

let rec split_and e =
  match e with E.Binop ("AND", a, b) -> split_and a @ split_and b | _ -> [ e ]

let rec split_or e =
  match e with E.Binop ("OR", a, b) -> split_or a @ split_or b | _ -> [ e ]

let is_const = function E.Const _ -> true | _ -> false

(* Abstraction of one (normalized) predicate: constant truth value, or a
   single-key abstract value with an exactness flag. *)
type 'k pred_abs =
  | P_true
  | P_false
  | P_key of 'k E.t * Domain.t * bool (* exact? *)

let is_enum_or_empty a =
  match a.Domain.a_shape with Domain.Enum _ -> true | Domain.Range _ -> false

let combine_and parts =
  if List.exists (( = ) (Some P_false)) parts then Some P_false
  else if List.exists (( = ) None) parts then None
  else
    let keyed = List.filter (( <> ) (Some P_true)) parts in
    match keyed with
    | [] -> Some P_true
    | Some (P_key (k0, _, _)) :: _ ->
        if
          List.for_all
            (function Some (P_key (k, _, _)) -> k = k0 | _ -> false)
            keyed
        then
          let abs, exact =
            List.fold_left
              (fun (a, e) p ->
                match p with
                | Some (P_key (_, b, eb)) -> (Domain.meet a b, e && eb)
                | _ -> (a, e))
              (Domain.top, true) keyed
          in
          Some (P_key (k0, abs, exact))
        else None
    | _ -> None

let combine_or parts =
  if List.exists (( = ) (Some P_true)) parts then Some P_true
  else if List.exists (( = ) None) parts then None
  else
    let keyed = List.filter (( <> ) (Some P_false)) parts in
    match keyed with
    | [] -> Some P_false
    | Some (P_key (k0, _, _)) :: _ ->
        if
          List.for_all
            (function Some (P_key (k, _, _)) -> k = k0 | _ -> false)
            keyed
        then
          let abs, exact =
            List.fold_left
              (fun acc p ->
                match (acc, p) with
                | None, Some (P_key (_, b, eb)) -> Some (b, eb)
                | Some (a, e), Some (P_key (_, b, eb)) ->
                    (* set union is exact only between finite shapes *)
                    let exact =
                      e && eb && is_enum_or_empty a && is_enum_or_empty b
                    in
                    Some (Domain.join a b, exact)
                | acc, _ -> acc)
              None keyed
            |> Option.get
          in
          Some (P_key (k0, abs, exact))
        else None
    | _ -> None

(* [e] must already be normalized. *)
let rec pred_abs ty e =
  match e with
  | E.Const (V.Bool true) -> Some P_true
  | E.Const (V.Bool false) | E.Const V.Null -> Some P_false
  | E.Is_null (k, true) when not (is_const k) -> Some (P_key (k, Domain.null_only, true))
  | E.Is_null (k, false) when not (is_const k) -> Some (P_key (k, Domain.not_null, true))
  | E.Binop ((("<" | "<=") as op), a, b) -> (
      let kind = if op = "<" then Domain.Open else Domain.Closed in
      match (a, b) with
      | E.Const V.Null, _ | _, E.Const V.Null -> Some P_false
      | E.Const c, k when not (is_const k) ->
          Some (P_key (k, Domain.of_range ?ty:(ty k) (Domain.B (c, kind)) Domain.Pos_inf, true))
      | k, E.Const c when not (is_const k) ->
          Some (P_key (k, Domain.of_range ?ty:(ty k) Domain.Neg_inf (Domain.B (c, kind)), true))
      | _ -> None)
  | E.Binop ("=", a, b) -> (
      match (a, b) with
      | E.Const V.Null, _ | _, E.Const V.Null -> Some P_false
      | E.Const c, k when not (is_const k) -> Some (P_key (k, Domain.of_enum [ c ], true))
      | k, E.Const c when not (is_const k) -> Some (P_key (k, Domain.of_enum [ c ], true))
      | _ -> None)
  | E.Binop ("<>", a, b) -> (
      match (a, b) with
      | E.Const V.Null, _ | _, E.Const V.Null -> Some P_false
      | E.Const c, k when not (is_const k) -> Some (P_key (k, Domain.excluding c, true))
      | k, E.Const c when not (is_const k) -> Some (P_key (k, Domain.excluding c, true))
      | _ -> None)
  | E.Binop ("AND", _, _) -> combine_and (List.map (pred_abs ty) (split_and e))
  | E.Binop ("OR", _, _) -> combine_or (List.map (pred_abs ty) (split_or e))
  | _ -> None

(* ---------------- conjunction states ---------------- *)

type 'k state = {
  st_abs : ('k E.t * Domain.t) list; (* key -> met abstract value *)
  st_conjuncts : 'k E.t list;        (* all normalized conjuncts (syntactic) *)
  st_false : bool;                   (* the conjunction can never be TRUE *)
}

let state_of ~ty preds =
  let conjs = List.concat_map (fun p -> split_and (E.normalize p)) preds in
  List.fold_left
    (fun st c ->
      if st.st_false then st
      else
        match pred_abs ty c with
        | Some P_false -> { st with st_false = true }
        | Some P_true -> st
        | Some (P_key (k, a, _)) ->
            (* exactness is irrelevant here: the state only needs to
               over-approximate, and every [pred_abs] result does *)
            let merged =
              match List.assoc_opt k st.st_abs with
              | Some b -> Domain.meet a b
              | None -> a
            in
            { st with st_abs = (k, merged) :: List.remove_assoc k st.st_abs }
        | None -> st)
    { st_abs = []; st_conjuncts = conjs; st_false = false }
    conjs

let state_unsat st =
  st.st_false || List.exists (fun (_, a) -> Domain.is_empty a) st.st_abs

(* Does every row satisfying the state's conjunction satisfy [e]?
   Syntactic membership covers residual conjuncts (join predicates etc.);
   the abstract check covers range reasoning.  The needed side must be
   exact — entailing into an over-approximation would be unsound. *)
let entails ~ty st e =
  state_unsat st
  ||
  let rec ent e =
    List.mem e st.st_conjuncts
    ||
    match pred_abs ty e with
    | Some P_true -> true
    | Some P_false -> false
    | Some (P_key (k, need, exact)) -> (
        exact
        &&
        match List.assoc_opt k st.st_abs with
        | Some have -> Domain.le have need
        | None -> false)
    | None -> (
        match e with
        | E.Binop ("AND", _, _) -> List.for_all ent (split_and e)
        | E.Binop ("OR", _, _) -> List.exists ent (split_or e)
        | _ -> false)
  in
  ent (E.normalize e)

(* ---------------- verdicts ---------------- *)

(* Rows kept by [strong] are all kept by [weak] (both implicit
   conjunctions).  Trivially proved when [strong] is unsatisfiable. *)
let subsumed ~ty ~weak ~strong =
  record (fun () ->
      let st = state_of ~ty strong in
      if state_unsat st then Proved
      else
        let ws = List.concat_map (fun p -> split_and (E.normalize p)) weak in
        match List.find_opt (fun w -> not (entails ~ty st w)) ws with
        | None -> Proved
        | Some _ ->
            Unknown "a weaker-side predicate is not entailed by the stronger side")

let unsat ~ty preds =
  record (fun () ->
      if state_unsat (state_of ~ty preds) then Proved
      else Unknown "not provably unsatisfiable")

(* Internal: a shared key whose abstract values cannot intersect. *)
let disjoint_witness sa sb =
  List.find_opt
    (fun (k, va) ->
      match List.assoc_opt k sb.st_abs with
      | Some vb -> Domain.disjoint va vb
      | None -> false)
    sa.st_abs

let disjoint ~ty a b =
  record (fun () ->
      let sa = state_of ~ty a and sb = state_of ~ty b in
      if state_unsat sa || state_unsat sb then Proved
      else
        match disjoint_witness sa sb with
        | Some _ -> Proved
        | None -> Unknown "no shared column with provably disjoint ranges")

(* Reduce a conjunct list to a single-key abstract value (if possible). *)
let conj_abs ty conjs = combine_and (List.map (pred_abs ty) conjs)

(* [a] and [b] are conjunctions sharing common conjuncts; relative to that
   common region, does [a OR b] keep every row?  [nullable] answers
   whether the pivot key can be NULL (a NULL pivot satisfies neither side
   of a range split, so coverage then needs an IS NULL arm). *)
let covers ~ty ~nullable a b =
  record (fun () ->
      let ca = List.concat_map (fun p -> split_and (E.normalize p)) a
      and cb = List.concat_map (fun p -> split_and (E.normalize p)) b in
      let ra = List.filter (fun c -> not (List.mem c cb)) ca
      and rb = List.filter (fun c -> not (List.mem c ca)) cb in
      match (ra, rb) with
      | [], _ | _, [] -> Proved (* one side keeps the whole common region *)
      | _ -> (
          match (conj_abs ty ra, conj_abs ty rb) with
          | Some (P_key (ka, aa, true)), Some (P_key (kb, ab, true)) when ka = kb ->
              if Domain.covers_all ?ty:(ty ka) ~nullable:(nullable ka) aa ab then
                Proved
              else Unknown "the two ranges leave a gap in the column's domain"
          | _ -> Unknown "residual predicates do not reduce to one shared column"))

(* ---------------- graph-level certificates ---------------- *)

let norm = String.lowercase_ascii

(* Chase a box output column down to its base ["table.column"] through
   SELECT passthrough outputs and GROUP BY keys; [None] for computed
   outputs (the predicate then counts as opaque). *)
let rec chase_col g box_id col =
  match (G.box g box_id).Bx.body with
  | Bx.Base b ->
      if List.exists (fun c -> norm c = norm col) b.Bx.bt_cols then
        Some (norm b.Bx.bt_table ^ "." ^ norm col)
      else None
  | Bx.Select s -> (
      match
        List.find_opt (fun (n, _) -> norm n = norm col) s.Bx.sel_outs
      with
      | Some (_, E.Col { Bx.quant; col = c }) -> (
          match List.find_opt (fun q -> q.Bx.q_id = quant) s.Bx.sel_quants with
          | Some q -> chase_col g q.Bx.q_box c
          | None -> None)
      | _ -> None)
  | Bx.Group gb ->
      if
        List.exists
          (fun c -> norm c = norm col)
          (Bx.grouping_union gb.Bx.grp_grouping)
      then chase_col g gb.Bx.grp_quant.Bx.q_box col
      else None
  | Bx.Union _ -> None

(* All SELECT predicates of the reachable graph mapped into base-column
   space, plus a count of opaque (unmappable) predicates. *)
let restrictions g =
  let root = G.root g in
  List.fold_left
    (fun (preds, opaque) id ->
      match (G.box g id).Bx.body with
      | Bx.Select s ->
          List.fold_left
            (fun (preds, opaque) p ->
              let resolve { Bx.quant; col } =
                match
                  List.find_opt (fun q -> q.Bx.q_id = quant) s.Bx.sel_quants
                with
                | Some q ->
                    Option.map (fun c -> E.Col c) (chase_col g q.Bx.q_box col)
                | None -> None
              in
              match E.subst_col resolve p with
              | Some p' -> (E.normalize p' :: preds, opaque)
              | None -> (preds, opaque + 1))
            (preds, opaque) s.Bx.sel_preds
      | _ -> (preds, opaque))
    ([], 0)
    (G.reachable g root)

let footprint g =
  List.sort compare
    (List.filter_map
       (fun id ->
         match (G.box g id).Bx.body with
         | Bx.Base b -> Some (norm b.Bx.bt_table)
         | _ -> None)
       (G.reachable g (G.root g)))

let base_col_ty cat key =
  match String.index_opt key '.' with
  | Some i ->
      let t = String.sub key 0 i
      and c = String.sub key (i + 1) (String.length key - i - 1) in
      Option.bind (Catalog.find_table cat t) (fun tbl ->
          Option.map
            (fun col -> col.Catalog.col_ty)
            (Catalog.find_column tbl c))
  | None -> None

let base_col_nullable cat key =
  match String.index_opt key '.' with
  | Some i ->
      let t = String.sub key 0 i
      and c = String.sub key (i + 1) (String.length key - i - 1) in
      Catalog.column_nullable cat t c
  | None -> true

type pair_cert = { pc_status : status; pc_column : string option }

let key_column k =
  match List.sort_uniq compare (E.cols k) with [ c ] -> Some c | _ -> None

(* The restriction regions of two query graphs provably share no row.
   Opaque predicates only shrink a region, so they do not endanger a
   disjointness proof. *)
let disjoint_graphs ~cat ga gb =
  let result = ref None in
  let status =
    record (fun () ->
        let pa, _ = restrictions ga and pb, _ = restrictions gb in
        let ty = key_ty ~col:(base_col_ty cat) in
        let sa = state_of ~ty pa and sb = state_of ~ty pb in
        if state_unsat sa || state_unsat sb then Proved
        else
          match disjoint_witness sa sb with
          | Some (k, _) ->
              result := key_column k;
              Proved
          | None -> Unknown "no shared column with provably disjoint ranges")
  in
  { pc_status = status; pc_column = !result }

(* Certify an AST pair as disjoint-and-covering over one base column's
   range: same base-table footprint, no opaque predicates, identical
   conjuncts except for a residual pair reducing to one shared key whose
   abstract values are disjoint and jointly cover the whole column domain
   (including NULL when the catalog says the column is nullable).  This is
   the enabling primitive for UNION ALL multi-view rewrites (ROADMAP item
   3): a query spanning both shards can be answered by the union. *)
let partition ~cat ga gb =
  let result = ref None in
  let status =
    record (fun () ->
        if footprint ga <> footprint gb then
          Unknown "different base-table footprints"
        else
          let pa, oa = restrictions ga and pb, ob = restrictions gb in
          if oa > 0 || ob > 0 then
            Unknown "a predicate does not map to base columns"
          else
            let ty = key_ty ~col:(base_col_ty cat) in
            let ra = List.filter (fun c -> not (List.mem c pb)) pa
            and rb = List.filter (fun c -> not (List.mem c pa)) pb in
            if ra = [] || rb = [] then
              Unknown "one side carries no residual restriction"
            else
              match (conj_abs ty ra, conj_abs ty rb) with
              | Some (P_key (ka, aa, ea)), Some (P_key (kb, ab, eb))
                when ka = kb ->
                  result := key_column ka;
                  if not (Domain.disjoint aa ab) then
                    Unknown "ranges are not provably disjoint"
                  else
                    let nullable =
                      match key_column ka with
                      | Some c -> base_col_nullable cat c
                      | None -> true
                    in
                    if
                      ea && eb
                      && Domain.covers_all ?ty:(ty ka) ~nullable aa ab
                    then Proved
                    else
                      Unknown
                        "ranges are disjoint but do not provably cover the domain"
              | _ ->
                  Unknown "residual predicates do not reduce to one shared column")
  in
  { pc_status = status; pc_column = !result }
