(* The per-column abstract domain: null-aware intervals and finite sets.

   An abstract value [t] over-approximates the set of SQL values a column
   (or scalar expression) can take in rows satisfying a conjunction:

     gamma {a_null; a_shape} = (if a_null then {NULL} else {}) u gamma(shape)

   Shapes are either an interval with open/closed endpoints and a finite
   exclusion list ([Range]) or a finite set of non-NULL values ([Enum]).
   NULL never appears inside a shape — nullability is tracked only by
   [a_null], matching SQL three-valued logic where a comparison with NULL
   is never TRUE.

   Soundness contract: every operation may only grow the concretization
   relative to the exact answer (over-approximation); the predicates
   ([is_empty], [disjoint], [entails_*], [covers_all]) may only answer
   affirmatively when the property holds for every value of gamma.
   Anything uncertain must answer negatively and the caller degrades to
   [Unknown].

   Discreteness: for INT and DATE typed columns an open bound is
   normalized at construction to the closed bound on the adjacent point
   ([x > 9] becomes [x >= 10]), which is what makes integer strict vs
   non-strict bounds compare equal.  The DATE "calendar" here is the full
   encoded grid admitted by {!Data.Value.date} — day 1..31 for every
   month, month 1..12 — because values order by that encoding, so the
   grid successor is the correct discrete successor. *)

module V = Data.Value

type kind = Open | Closed

type bound = Neg_inf | Pos_inf | B of V.t * kind

type shape =
  | Range of { lo : bound; hi : bound; excl : V.t list }
  | Enum of V.t list

type t = { a_null : bool; a_shape : shape }

(* ---------------- discrete successors ---------------- *)

let date_succ e =
  let d = e mod 100 and m = e / 100 mod 100 and y = e / 10000 in
  if d < 31 then e + 1
  else if m < 12 then (((y * 100) + m + 1) * 100) + 1
  else ((((y + 1) * 100) + 1) * 100) + 1

let date_pred e =
  let d = e mod 100 and m = e / 100 mod 100 and y = e / 10000 in
  if d > 1 then e - 1
  else if m > 1 then (((y * 100) + m - 1) * 100) + 31
  else ((((y - 1) * 100) + 12) * 100) + 31

(* Successor on a discrete typed domain; [None] when the domain is dense
   (FLOAT, strings), the type is unknown, or the literal's runtime
   representation does not match the declared type (e.g. a FLOAT literal
   compared against an INT column) — all of which must stay unnormalized
   to remain sound. *)
let succ_value ty v =
  match (ty, v) with
  | Some V.Tint, V.Int i when i < max_int -> Some (V.Int (i + 1))
  | Some V.Tdate, V.Date e -> Some (V.Date (date_succ e))
  | _ -> None

let pred_value ty v =
  match (ty, v) with
  | Some V.Tint, V.Int i when i > min_int -> Some (V.Int (i - 1))
  | Some V.Tdate, V.Date e -> Some (V.Date (date_pred e))
  | _ -> None

let norm_lo ty = function
  | B (v, Open) as b -> (
      match succ_value ty v with Some v' -> B (v', Closed) | None -> b)
  | b -> b

let norm_hi ty = function
  | B (v, Open) as b -> (
      match pred_value ty v with Some v' -> B (v', Closed) | None -> b)
  | b -> b

(* ---------------- membership ---------------- *)

let veq a b = V.compare a b = 0
let vmem v vs = List.exists (veq v) vs

let lo_admits lo v =
  match lo with
  | Neg_inf -> true
  | Pos_inf -> false
  | B (x, Closed) -> V.compare x v <= 0
  | B (x, Open) -> V.compare x v < 0

let hi_admits hi v =
  match hi with
  | Pos_inf -> true
  | Neg_inf -> false
  | B (x, Closed) -> V.compare v x <= 0
  | B (x, Open) -> V.compare v x < 0

let shape_mem s v =
  match s with
  | Enum vs -> vmem v vs
  | Range { lo; hi; excl } -> lo_admits lo v && hi_admits hi v && not (vmem v excl)

(* ---------------- bound ordering ---------------- *)

let tighter_lo a b =
  match (a, b) with
  | Neg_inf, b -> b
  | a, Neg_inf -> a
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | B (x, kx), B (y, _) ->
      let c = V.compare x y in
      if c > 0 then a else if c < 0 then b else if kx = Open then a else b

let tighter_hi a b =
  match (a, b) with
  | Pos_inf, b -> b
  | a, Pos_inf -> a
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | B (x, kx), B (y, _) ->
      let c = V.compare x y in
      if c < 0 then a else if c > 0 then b else if kx = Open then a else b

let looser_lo a b =
  match (a, b) with
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, b -> b
  | a, Pos_inf -> a
  | B (x, kx), B (y, _) ->
      let c = V.compare x y in
      if c < 0 then a else if c > 0 then b else if kx = Closed then a else b

let looser_hi a b =
  match (a, b) with
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Neg_inf, b -> b
  | a, Neg_inf -> a
  | B (x, kx), B (y, _) ->
      let c = V.compare x y in
      if c > 0 then a else if c < 0 then b else if kx = Closed then a else b

(* Provable emptiness of the interval [lo, hi].  For dense or untyped
   domains an open-open interval with lo < hi counts as inhabited (the
   sound direction: we may only claim empty when certain). *)
let range_empty lo hi =
  match (lo, hi) with
  | Pos_inf, _ | _, Neg_inf -> true
  | Neg_inf, _ | _, Pos_inf -> false
  | B (x, kx), B (y, ky) ->
      let c = V.compare x y in
      c > 0 || (c = 0 && not (kx = Closed && ky = Closed))

(* Canonical form: empty shapes become [Enum []], closed singletons become
   one-element enums (so equality entailment sees through them), and
   exclusions are sorted, deduplicated and clipped to the interval.  Every
   construction site normalizes, so the predicates below may assume it. *)
let normalize_shape s =
  match s with
  | Enum vs -> Enum (List.sort_uniq V.compare vs)
  | Range { lo; hi; excl } -> (
      if range_empty lo hi then Enum []
      else
        match (lo, hi) with
        | B (x, Closed), B (y, Closed) when veq x y ->
            if vmem x excl then Enum [] else Enum [ x ]
        | _ ->
            let excl =
              List.sort_uniq V.compare
                (List.filter (fun v -> lo_admits lo v && hi_admits hi v) excl)
            in
            Range { lo; hi; excl })

let shape_empty = function
  | Enum [] -> true
  | Enum _ -> false
  | Range { lo; hi; _ } -> range_empty lo hi

(* ---------------- constructors ---------------- *)

let full = Range { lo = Neg_inf; hi = Pos_inf; excl = [] }
let top = { a_null = true; a_shape = full }
let null_only = { a_null = true; a_shape = Enum [] }
let not_null = { a_null = false; a_shape = full }

let of_range ?ty ?(null = false) lo hi =
  { a_null = null;
    a_shape = normalize_shape (Range { lo = norm_lo ty lo; hi = norm_hi ty hi; excl = [] })
  }

let of_enum ?(null = false) vs =
  { a_null = null; a_shape = normalize_shape (Enum vs) }

let excluding v =
  { a_null = false;
    a_shape = Range { lo = Neg_inf; hi = Pos_inf; excl = [ v ] } }

(* ---------------- lattice operations ---------------- *)

let is_empty a = (not a.a_null) && shape_empty a.a_shape

let meet a b =
  let shape =
    match (a.a_shape, b.a_shape) with
    | Enum xs, Enum ys -> Enum (List.filter (fun v -> vmem v ys) xs)
    | Enum xs, (Range _ as r) | (Range _ as r), Enum xs ->
        Enum (List.filter (shape_mem r) xs)
    | Range ra, Range rb ->
        Range
          { lo = tighter_lo ra.lo rb.lo;
            hi = tighter_hi ra.hi rb.hi;
            excl = ra.excl @ rb.excl }
  in
  { a_null = a.a_null && b.a_null; a_shape = normalize_shape shape }

(* Join is a convex hull when either side is an interval (exclusions are
   dropped: over-approximation, hence sound). *)
let join a b =
  let shape =
    if shape_empty a.a_shape then b.a_shape
    else if shape_empty b.a_shape then a.a_shape
    else
      match (a.a_shape, b.a_shape) with
      | Enum xs, Enum ys -> Enum (List.sort_uniq V.compare (xs @ ys))
      | sa, sb ->
          let bounds_of = function
            | Enum (v :: vs) ->
                let lo =
                  List.fold_left (fun m w -> if V.compare w m < 0 then w else m) v vs
                and hi =
                  List.fold_left (fun m w -> if V.compare w m > 0 then w else m) v vs
                in
                (B (lo, Closed), B (hi, Closed))
            | Enum [] -> (Pos_inf, Neg_inf)
            | Range { lo; hi; _ } -> (lo, hi)
          in
          let la, ha = bounds_of sa and lb, hb = bounds_of sb in
          Range { lo = looser_lo la lb; hi = looser_hi ha hb; excl = [] }
  in
  { a_null = a.a_null || b.a_null; a_shape = normalize_shape shape }

(* gamma(a) and gamma(b) provably share no value (NULL counts as shared). *)
let disjoint a b =
  let m = meet a b in
  (not m.a_null) && shape_empty m.a_shape

(* ---------------- inclusion ---------------- *)

(* Every value admitted by lower bound [inner] is admitted by [outer]. *)
let lo_covers outer inner =
  match (outer, inner) with
  | Neg_inf, _ | _, Pos_inf -> true
  | Pos_inf, _ | _, Neg_inf -> false
  | B (x, kx), B (y, ky) ->
      let c = V.compare x y in
      c < 0 || (c = 0 && (kx = Closed || ky = Open))

let hi_covers outer inner =
  match (outer, inner) with
  | Pos_inf, _ | _, Neg_inf -> true
  | Neg_inf, _ | _, Pos_inf -> false
  | B (x, kx), B (y, ky) ->
      let c = V.compare x y in
      c > 0 || (c = 0 && (kx = Closed || ky = Open))

let shape_le sa sb =
  shape_empty sa
  ||
  match (sa, sb) with
  | Enum xs, _ -> List.for_all (shape_mem sb) xs
  | Range _, Enum _ ->
      false (* a non-empty range is a singleton only post-normalization *)
  | Range ra, Range rb ->
      lo_covers rb.lo ra.lo && hi_covers rb.hi ra.hi
      && List.for_all (fun v -> not (shape_mem sa v)) rb.excl

(* gamma(a) subseteq gamma(b)?  Sound: answers [false] when uncertain. *)
let le a b =
  is_empty a || ((b.a_null || not a.a_null) && shape_le a.a_shape b.a_shape)

(* ---------------- atom entailment ---------------- *)

type cmp = Lt | Le | Gt | Ge | Eq | Ne

let sat op v c =
  let d = V.compare v c in
  match op with
  | Lt -> d < 0
  | Le -> d <= 0
  | Gt -> d > 0
  | Ge -> d >= 0
  | Eq -> d = 0
  | Ne -> d <> 0

let shape_entails_cmp s op c =
  match s with
  | Enum vs -> List.for_all (fun v -> sat op v c) vs
  | Range { lo; hi; excl } -> (
      match op with
      | Lt -> (
          match hi with
          | Neg_inf -> true
          | Pos_inf -> false
          | B (x, k) ->
              let d = V.compare x c in
              d < 0 || (d = 0 && (k = Open || vmem c excl)))
      | Le -> (
          match hi with
          | Neg_inf -> true
          | Pos_inf -> false
          | B (x, _) -> V.compare x c <= 0)
      | Gt -> (
          match lo with
          | Pos_inf -> true
          | Neg_inf -> false
          | B (x, k) ->
              let d = V.compare x c in
              d > 0 || (d = 0 && (k = Open || vmem c excl)))
      | Ge -> (
          match lo with
          | Pos_inf -> true
          | Neg_inf -> false
          | B (x, _) -> V.compare x c >= 0)
      | Eq -> range_empty lo hi (* non-empty ranges collapse to Enum first *)
      | Ne -> not (shape_mem s c))

(* gamma(a) only contains rows where [col <op> c] evaluates to TRUE.
   A NULL input never yields TRUE under three-valued logic, so a nullable
   abstract value entails no comparison (unless gamma is empty outright). *)
let entails_cmp a op c =
  is_empty a || ((not a.a_null) && shape_entails_cmp a.a_shape op c)

(* gamma(a) subseteq {NULL}: every non-null value excluded. *)
let entails_null a = shape_empty a.a_shape
let entails_not_null a = is_empty a || not a.a_null

(* ---------------- coverage ---------------- *)

(* Do the two abstract values jointly admit *every* value of the column's
   domain (and NULL when [nullable])?  Only provable for exclusion-free
   intervals reaching both infinities with no interior gap; discrete
   adjacency ([..,10] followed by [11,..]) counts as gap-free when the
   type oracle certifies the domain has no value in between. *)
let covers_all ?ty ~nullable a b =
  let null_ok = (not nullable) || a.a_null || b.a_null in
  let plain = function
    | Range { lo; hi; excl = [] } when not (range_empty lo hi) -> Some (lo, hi)
    | _ -> None
  in
  null_ok
  &&
  match (plain a.a_shape, plain b.a_shape) with
  | Some (la, ha), Some (lb, hb) ->
      let no_gap hi lo' =
        match (hi, lo') with
        | Pos_inf, _ | _, Neg_inf -> true
        | Neg_inf, _ | _, Pos_inf -> false
        | B (x, kx), B (y, ky) ->
            let c = V.compare y x in
            if c < 0 then true
            else if c = 0 then kx = Closed || ky = Closed
            else (
              match succ_value ty x with
              | Some x' -> kx = Closed && ky = Closed && V.compare y x' <= 0
              | None -> false)
      in
      (la = Neg_inf && hb = Pos_inf && no_gap ha lb)
      || (lb = Neg_inf && ha = Pos_inf && no_gap hb la)
  | _ -> false
