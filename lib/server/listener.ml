module J = Obs.Json

let m_connections = Obs.Metrics.counter "server.connections"
let m_requests = Obs.Metrics.counter "server.requests"
let m_rejects = Obs.Metrics.counter "server.rejects"
let m_conn_crashes = Obs.Metrics.counter "server.conn_crashes"
let m_idle_reaped = Obs.Metrics.counter "server.idle_reaped"
let m_stalled_conns = Obs.Metrics.counter "server.stalled_conns"
let m_oversize_lines = Obs.Metrics.counter "server.oversize_lines"
let m_degraded_requests = Obs.Metrics.counter "server.degraded_requests"
let g_active = Obs.Metrics.gauge "server.active"
let h_request_ms = Obs.Metrics.histogram "server.request_ms"

type addr = Unix_path of string | Tcp of string * int

let parse_addr s =
  if s = "" then Error "empty address"
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port_s = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port_s with
        | Some p when p >= 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | Some _ -> Error ("port out of range: " ^ port_s)
        | None -> Ok (Unix_path s))
    | None -> Ok (Unix_path s)

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

type config = {
  cf_addr : addr;
  cf_domains : int;
  cf_queue_depth : int;
  cf_backlog : int;
  cf_degrade_watermark : int;
  cf_retry_after_ms : int;
  cf_idle_timeout_ms : float;
  cf_io_timeout_ms : float;
  cf_request_deadline_ms : float;
}

let config ?(degrade_watermark = -1) ?(retry_after_ms = 50)
    ?(idle_timeout_ms = 0.) ?(io_timeout_ms = 0.) ?(request_deadline_ms = 0.)
    ~addr ~domains ~queue_depth ~backlog () =
  {
    cf_addr = addr;
    cf_domains = domains;
    cf_queue_depth = queue_depth;
    cf_backlog = backlog;
    cf_degrade_watermark = degrade_watermark;
    cf_retry_after_ms = retry_after_ms;
    cf_idle_timeout_ms = idle_timeout_ms;
    cf_io_timeout_ms = io_timeout_ms;
    cf_request_deadline_ms = request_deadline_ms;
  }

type t = {
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  unix_path : string option;
  pool : Pool.t;
  depth : int;
  degrade_watermark : int; (* queued >= this → serve base plans; < 0 = off *)
  retry_after_ms : int;    (* backoff hint on the shed rung *)
  idle_ms : float;         (* reap a conn idle between requests (0. = never) *)
  io_ms : float;           (* mid-frame read / write stall bound (0. = none) *)
  request_deadline_ms : float; (* default opts.deadline_ms (0. = none) *)
  stop_r : Unix.file_descr; (* self-pipe: readable <=> stop requested *)
  stop_w : Unix.file_descr;
  mutable accept_dom : unit Domain.t option;
  stopped : bool Atomic.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable finished : bool;
  (* live connection fds, so stop can force-disconnect: a worker blocked
     reading an idle client must not stall shutdown forever *)
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_m : Mutex.t;
  (* requests currently executing (not idle connections): what a graceful
     shutdown drains before force-disconnecting *)
  inflight : int Atomic.t;
}

let register_conn t fd =
  Mutex.protect t.conns_m (fun () -> Hashtbl.replace t.conns fd ())

let unregister_conn t fd =
  Mutex.protect t.conns_m (fun () -> Hashtbl.remove t.conns fd)

(* [shutdown(2)], not [close(2)]: shutdown wakes a peer domain blocked in
   [read] with EOF; closing out from under it would not (and the worker
   owns the close). *)
let disconnect_all t =
  Mutex.protect t.conns_m (fun () ->
      Hashtbl.iter
        (fun fd () ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        t.conns;
      Hashtbl.reset t.conns)

(* --- per-connection serving --------------------------------------------- *)

(* Run the statements under the request's effective settings, restoring the
   session's own afterwards. Under queue pressure ([pressured]) the rewrite
   search is skipped outright — base plans cost no planning and no match
   work, which is exactly the capacity the overloaded server needs back —
   and an explicit [opts.rewrite=true] does not override the ladder. *)
let exec_request session (rq : Wire.request) ~pressured ~limits =
  let saved_rw = Mvstore.Session.rewrite_enabled session in
  let saved_limits = Mvstore.Session.limits session in
  let rw =
    (match rq.Wire.rq_rewrite with None -> saved_rw | Some b -> b)
    && not pressured
  in
  Mvstore.Session.set_rewrite session rw;
  Mvstore.Session.set_limits session limits;
  Fun.protect
    ~finally:(fun () ->
      Mvstore.Session.set_rewrite session saved_rw;
      Mvstore.Session.set_limits session saved_limits)
    (fun () -> Mvstore.Session.exec_sql session rq.Wire.rq_sql)

(* The request's effective budget: the tighter of the session's own
   deadline and the per-request one (explicit [opts.deadline_ms], else the
   server default). A request can only tighten the admission-control
   limits, never loosen them. *)
let effective_limits t session (rq : Wire.request) =
  let l = Mvstore.Session.limits session in
  let requested =
    match rq.Wire.rq_deadline_ms with
    | Some d -> Some d
    | None ->
        if t.request_deadline_ms > 0. then Some t.request_deadline_ms
        else None
  in
  match (requested, l.Govern.Budget.bl_deadline_ms) with
  | None, _ -> l
  | Some r, None -> { l with Govern.Budget.bl_deadline_ms = Some r }
  | Some r, Some d ->
      { l with Govern.Budget.bl_deadline_ms = Some (Float.min r d) }

let process t session line =
  match Wire.request_of_line line with
  | Error e -> Wire.response_error ~id:J.Null e
  | Ok rq -> (
      let t0 = Obs.Metrics.now_ms () in
      (* overload ladder, first rung: when the waiting queue is past the
         watermark, serve base plans (skip the rewrite search) instead of
         refusing — degraded service before no service *)
      let pressured =
        t.degrade_watermark >= 0
        && Pool.queued t.pool >= t.degrade_watermark
      in
      let limits = effective_limits t session rq in
      Mvstore.Session.reset_degraded session;
      match exec_request session rq ~pressured ~limits with
      | outcomes ->
          let degraded =
            (if pressured then [ "overload" ] else [])
            @ Mvstore.Session.degraded_reasons session
          in
          if degraded <> [] then Obs.Metrics.incr m_degraded_requests;
          Wire.response_ok ~degraded ~id:rq.Wire.rq_id
            ~ms:(Obs.Metrics.now_ms () -. t0)
            outcomes
      | exception exn ->
          Wire.response_error ~id:rq.Wire.rq_id
            (Wire.error_of_exn ~sql:rq.Wire.rq_sql exn))

(* Put the reply on the wire — or, when a wire fault point is armed, mangle
   exactly this reply the way a hostile network would: an EOF before any
   byte (ambiguous ack), a torn frame, or corrupted bytes inside an intact
   line. The chaos harness arms these to prove the client's retry
   discipline; each costs at most this connection. *)
let send_reply io resp =
  let line = J.to_string resp in
  if Guard.Fault.fire Guard.Fault.Wire_disconnect then
    try Unix.shutdown (Lineio.fd io) Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
  else if Guard.Fault.fire Guard.Fault.Wire_partial_write then begin
    (try Lineio.write_raw io (String.sub line 0 (String.length line / 2))
     with Unix.Unix_error _ -> ());
    try Unix.shutdown (Lineio.fd io) Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
  end
  else if Guard.Fault.fire Guard.Fault.Wire_corrupt then begin
    let b = Bytes.of_string line in
    Bytes.fill b 0 (min 16 (Bytes.length b)) '#';
    Lineio.write_line io (Bytes.to_string b)
  end
  else Lineio.write_line io line

let serve_conn t session io =
  let rec loop () =
    (* wire fault: the serving loop stalls before its next read, as a
       client with a response timeout would observe *)
    if Guard.Fault.fire Guard.Fault.Wire_stall_read then
      Unix.sleepf (!Guard.Fault.wire_stall_ms /. 1000.);
    match Lineio.read_line io with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        Obs.Metrics.incr m_requests;
        (* in-flight from parse to flushed response: a draining shutdown
           waits for the answer to reach the wire, not just the executor *)
        Atomic.incr t.inflight;
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.inflight)
          (fun () ->
            let resp =
              Obs.Metrics.time h_request_ms (fun () -> process t session line)
            in
            send_reply io resp);
        loop ()
    | exception Lineio.Line_too_long ->
        (* Lineio has already consumed through the terminating newline, so
           after the typed error the stream is clean: keep serving. A 9 MiB
           frame costs its sender one error reply, not the connection. *)
        Obs.Metrics.incr m_oversize_lines;
        let e =
          Wire.mk_error "bad_request"
            (Printf.sprintf "request line exceeds %d bytes"
               Lineio.max_line_bytes)
        in
        Lineio.write_line io (J.to_string (Wire.response_error ~id:J.Null e));
        loop ()
    | exception Lineio.Read_timeout { rt_partial = false } ->
        (* quiet peer between requests: reap silently, freeing the worker *)
        Obs.Metrics.incr m_idle_reaped
    | exception Lineio.Read_timeout { rt_partial = true } ->
        (* peer stalled mid-frame: misbehaving, tell it so and hang up *)
        Obs.Metrics.incr m_stalled_conns;
        let e =
          Wire.mk_error "bad_request"
            "request frame stalled mid-line (io timeout)"
        in
        (try
           Lineio.write_line io (J.to_string (Wire.response_error ~id:J.Null e))
         with Lineio.Write_timeout | Unix.Unix_error _ -> ())
  in
  loop ()

let handle t mk_session fd =
  Obs.Metrics.gauge_add g_active 1.;
  let io = Lineio.make fd in
  Lineio.set_timeouts ~idle_ms:t.idle_ms ~io_ms:t.io_ms io;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.gauge_add g_active (-1.);
      unregister_conn t fd;
      Lineio.close io)
    (fun () ->
      try
        (* fault-injection point: a crash here must cost exactly this
           connection, nothing else *)
        Guard.Fault.hit Guard.Fault.Accept;
        let session = mk_session () in
        serve_conn t session io
      with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          () (* peer went away mid-stream: normal hangup *)
      | Lineio.Write_timeout ->
          (* peer stopped draining its socket: counted, connection dropped,
             worker lives on *)
          Obs.Metrics.incr m_stalled_conns
      | exn ->
          Obs.Metrics.incr m_conn_crashes;
          raise exn)

(* --- accept loop -------------------------------------------------------- *)

(* Overload ladder, final rung: queue full, shed the connection with a
   typed error carrying a backoff hint. The write is bounded — a peer that
   will not even read its rejection must not stall the accept loop. *)
let reject t fd =
  Obs.Metrics.incr m_rejects;
  let io = Lineio.make fd in
  Lineio.set_timeouts ~io_ms:(if t.io_ms > 0. then t.io_ms else 1000.) io;
  (try
     Lineio.write_line io
       (J.to_string
          (Wire.response_error ~id:J.Null
             (Wire.overloaded_error ~queue_depth:t.depth
                ~retry_after_ms:t.retry_after_ms)))
   with Lineio.Write_timeout | Unix.Unix_error _ -> ());
  Lineio.close io

let accept_loop t mk_session () =
  let rec loop () =
    if Atomic.get t.stopped then ()
    else begin
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
          if List.mem t.stop_r readable then ()
          else begin
            (match Unix.accept ~cloexec:true t.listen_fd with
            | exception Unix.Unix_error (_, _, _) -> ()
            | fd, _ ->
                Obs.Metrics.incr m_connections;
                register_conn t fd;
                if not (Pool.submit t.pool (fun () -> handle t mk_session fd))
                then begin
                  unregister_conn t fd;
                  reject t fd
                end);
            loop ()
          end
    end
  in
  loop ()

(* --- lifecycle ---------------------------------------------------------- *)

let bind_socket = function
  | Unix_path path ->
      (* a stale socket file from a previous run would fail the bind *)
      (if Sys.file_exists path then
         try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      (fd, Some path)
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found ->
            raise
              (Unix.Unix_error
                 (Unix.EINVAL, "gethostbyname", host)))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet, port))
       with e -> Unix.close fd; raise e);
      (fd, None)

let start config ~mk_session =
  if config.cf_domains < 1 then invalid_arg "Listener.start: domains < 1";
  if config.cf_retry_after_ms < 0 then
    invalid_arg "Listener.start: retry_after_ms < 0";
  if config.cf_idle_timeout_ms < 0. || config.cf_io_timeout_ms < 0. then
    invalid_arg "Listener.start: negative timeout";
  if config.cf_request_deadline_ms < 0. then
    invalid_arg "Listener.start: negative request deadline";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, unix_path = bind_socket config.cf_addr in
  Unix.listen listen_fd (max 1 config.cf_backlog);
  let bound = Unix.getsockname listen_fd in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let pool =
    Pool.create ~domains:config.cf_domains ~queue_depth:config.cf_queue_depth
      ()
  in
  let t =
    {
      listen_fd;
      bound;
      unix_path;
      pool;
      depth = config.cf_queue_depth;
      degrade_watermark = config.cf_degrade_watermark;
      retry_after_ms = config.cf_retry_after_ms;
      idle_ms = config.cf_idle_timeout_ms;
      io_ms = config.cf_io_timeout_ms;
      request_deadline_ms = config.cf_request_deadline_ms;
      stop_r;
      stop_w;
      accept_dom = None;
      stopped = Atomic.make false;
      m = Mutex.create ();
      cv = Condition.create ();
      finished = false;
      conns = Hashtbl.create 32;
      conns_m = Mutex.create ();
      inflight = Atomic.make 0;
    }
  in
  t.accept_dom <- Some (Domain.spawn (accept_loop t mk_session));
  t

let sockaddr t = t.bound

let port t =
  match t.bound with Unix.ADDR_INET (_, p) -> Some p | _ -> None

let inflight t = Atomic.get t.inflight

let stop ?(drain_ms = 0) t =
  if not (Atomic.exchange t.stopped true) then begin
    (* wake the accept loop *)
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    (match t.accept_dom with
    | Some d ->
        Domain.join d;
        t.accept_dom <- None
    | None -> ());
    (* graceful drain: no new connections are accepted any more; give
       requests already executing up to [drain_ms] to finish and flush
       before the forced disconnect below cuts the stragglers off *)
    if drain_ms > 0 then begin
      let deadline = Obs.Metrics.now_ms () +. float_of_int drain_ms in
      while Atomic.get t.inflight > 0 && Obs.Metrics.now_ms () < deadline do
        Unix.sleepf 0.005
      done
    end;
    (* force-disconnect live clients so workers drain promptly *)
    disconnect_all t;
    Pool.shutdown t.pool;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
    (match t.unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ());
    Mutex.protect t.m (fun () ->
        t.finished <- true;
        Condition.broadcast t.cv)
  end

let wait t =
  Mutex.protect t.m (fun () ->
      while not t.finished do
        Condition.wait t.cv t.m
      done)
