module J = Obs.Json

let m_connections = Obs.Metrics.counter "server.connections"
let m_requests = Obs.Metrics.counter "server.requests"
let m_rejects = Obs.Metrics.counter "server.rejects"
let m_conn_crashes = Obs.Metrics.counter "server.conn_crashes"
let g_active = Obs.Metrics.gauge "server.active"
let h_request_ms = Obs.Metrics.histogram "server.request_ms"

type addr = Unix_path of string | Tcp of string * int

let parse_addr s =
  if s = "" then Error "empty address"
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port_s = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port_s with
        | Some p when p >= 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | Some _ -> Error ("port out of range: " ^ port_s)
        | None -> Ok (Unix_path s))
    | None -> Ok (Unix_path s)

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

type config = {
  cf_addr : addr;
  cf_domains : int;
  cf_queue_depth : int;
  cf_backlog : int;
}

type t = {
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  unix_path : string option;
  pool : Pool.t;
  depth : int;
  stop_r : Unix.file_descr; (* self-pipe: readable <=> stop requested *)
  stop_w : Unix.file_descr;
  mutable accept_dom : unit Domain.t option;
  stopped : bool Atomic.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable finished : bool;
  (* live connection fds, so stop can force-disconnect: a worker blocked
     reading an idle client must not stall shutdown forever *)
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_m : Mutex.t;
  (* requests currently executing (not idle connections): what a graceful
     shutdown drains before force-disconnecting *)
  inflight : int Atomic.t;
}

let register_conn t fd =
  Mutex.protect t.conns_m (fun () -> Hashtbl.replace t.conns fd ())

let unregister_conn t fd =
  Mutex.protect t.conns_m (fun () -> Hashtbl.remove t.conns fd)

(* [shutdown(2)], not [close(2)]: shutdown wakes a peer domain blocked in
   [read] with EOF; closing out from under it would not (and the worker
   owns the close). *)
let disconnect_all t =
  Mutex.protect t.conns_m (fun () ->
      Hashtbl.iter
        (fun fd () ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        t.conns;
      Hashtbl.reset t.conns)

(* --- per-connection serving --------------------------------------------- *)

let exec_request session (rq : Wire.request) =
  match rq.Wire.rq_rewrite with
  | None -> Mvstore.Session.exec_sql session rq.Wire.rq_sql
  | Some b ->
      let saved = Mvstore.Session.rewrite_enabled session in
      Mvstore.Session.set_rewrite session b;
      Fun.protect
        ~finally:(fun () -> Mvstore.Session.set_rewrite session saved)
        (fun () -> Mvstore.Session.exec_sql session rq.Wire.rq_sql)

let process session line =
  match Wire.request_of_line line with
  | Error e -> Wire.response_error ~id:J.Null e
  | Ok rq -> (
      let t0 = Obs.Metrics.now_ms () in
      match exec_request session rq with
      | outcomes ->
          Wire.response_ok ~id:rq.Wire.rq_id
            ~ms:(Obs.Metrics.now_ms () -. t0)
            outcomes
      | exception exn ->
          Wire.response_error ~id:rq.Wire.rq_id
            (Wire.error_of_exn ~sql:rq.Wire.rq_sql exn))

let serve_conn t session io =
  let rec loop () =
    match Lineio.read_line io with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        Obs.Metrics.incr m_requests;
        (* in-flight from parse to flushed response: a draining shutdown
           waits for the answer to reach the wire, not just the executor *)
        Atomic.incr t.inflight;
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.inflight)
          (fun () ->
            let resp =
              Obs.Metrics.time h_request_ms (fun () -> process session line)
            in
            Lineio.write_line io (J.to_string resp));
        loop ()
    | exception Lineio.Line_too_long ->
        (* hostile or broken peer: one typed error, then hang up *)
        let e =
          Wire.error_of_exn ~sql:""
            (Failure
               (Printf.sprintf "request line exceeds %d bytes"
                  Lineio.max_line_bytes))
        in
        Lineio.write_line io
          (J.to_string (Wire.response_error ~id:J.Null e))
  in
  loop ()

let handle t mk_session fd =
  Obs.Metrics.gauge_add g_active 1.;
  let io = Lineio.make fd in
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.gauge_add g_active (-1.);
      unregister_conn t fd;
      Lineio.close io)
    (fun () ->
      try
        (* fault-injection point: a crash here must cost exactly this
           connection, nothing else *)
        Guard.Fault.hit Guard.Fault.Accept;
        let session = mk_session () in
        serve_conn t session io
      with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          () (* peer went away mid-stream: normal hangup *)
      | exn ->
          Obs.Metrics.incr m_conn_crashes;
          raise exn)

(* --- accept loop -------------------------------------------------------- *)

let overloaded_line depth =
  J.to_string
    (Wire.response_error ~id:J.Null (Wire.overloaded_error ~queue_depth:depth))

let reject fd depth =
  Obs.Metrics.incr m_rejects;
  let io = Lineio.make fd in
  (try Lineio.write_line io (overloaded_line depth)
   with Unix.Unix_error _ -> ());
  Lineio.close io

let accept_loop t mk_session () =
  let rec loop () =
    if Atomic.get t.stopped then ()
    else begin
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
          if List.mem t.stop_r readable then ()
          else begin
            (match Unix.accept ~cloexec:true t.listen_fd with
            | exception Unix.Unix_error (_, _, _) -> ()
            | fd, _ ->
                Obs.Metrics.incr m_connections;
                register_conn t fd;
                if not (Pool.submit t.pool (fun () -> handle t mk_session fd))
                then begin
                  unregister_conn t fd;
                  reject fd t.depth
                end);
            loop ()
          end
    end
  in
  loop ()

(* --- lifecycle ---------------------------------------------------------- *)

let bind_socket = function
  | Unix_path path ->
      (* a stale socket file from a previous run would fail the bind *)
      (if Sys.file_exists path then
         try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      (fd, Some path)
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found ->
            raise
              (Unix.Unix_error
                 (Unix.EINVAL, "gethostbyname", host)))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet, port))
       with e -> Unix.close fd; raise e);
      (fd, None)

let start config ~mk_session =
  if config.cf_domains < 1 then invalid_arg "Listener.start: domains < 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, unix_path = bind_socket config.cf_addr in
  Unix.listen listen_fd (max 1 config.cf_backlog);
  let bound = Unix.getsockname listen_fd in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let pool =
    Pool.create ~domains:config.cf_domains ~queue_depth:config.cf_queue_depth
      ()
  in
  let t =
    {
      listen_fd;
      bound;
      unix_path;
      pool;
      depth = config.cf_queue_depth;
      stop_r;
      stop_w;
      accept_dom = None;
      stopped = Atomic.make false;
      m = Mutex.create ();
      cv = Condition.create ();
      finished = false;
      conns = Hashtbl.create 32;
      conns_m = Mutex.create ();
      inflight = Atomic.make 0;
    }
  in
  t.accept_dom <- Some (Domain.spawn (accept_loop t mk_session));
  t

let sockaddr t = t.bound

let port t =
  match t.bound with Unix.ADDR_INET (_, p) -> Some p | _ -> None

let inflight t = Atomic.get t.inflight

let stop ?(drain_ms = 0) t =
  if not (Atomic.exchange t.stopped true) then begin
    (* wake the accept loop *)
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    (match t.accept_dom with
    | Some d ->
        Domain.join d;
        t.accept_dom <- None
    | None -> ());
    (* graceful drain: no new connections are accepted any more; give
       requests already executing up to [drain_ms] to finish and flush
       before the forced disconnect below cuts the stragglers off *)
    if drain_ms > 0 then begin
      let deadline = Obs.Metrics.now_ms () +. float_of_int drain_ms in
      while Atomic.get t.inflight > 0 && Obs.Metrics.now_ms () < deadline do
        Unix.sleepf 0.005
      done
    end;
    (* force-disconnect live clients so workers drain promptly *)
    disconnect_all t;
    Pool.shutdown t.pool;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
    (match t.unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ());
    Mutex.protect t.m (fun () ->
        t.finished <- true;
        Condition.broadcast t.cv)
  end

let wait t =
  Mutex.protect t.m (fun () ->
      while not t.finished do
        Condition.wait t.cv t.m
      done)
