exception Line_too_long

(* 8 MiB: far above any legitimate statement, far below memory trouble. *)
let max_line_bytes = 8 * 1024 * 1024

type t = {
  t_fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable lo : int; (* unconsumed bytes are chunk.[lo..hi-1] *)
  mutable hi : int;
  mutable closed : bool;
}

let make fd = { t_fd = fd; chunk = Bytes.create 8192; lo = 0; hi = 0; closed = false }
let fd t = t.t_fd

let rec retry_read fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_read fd buf off len

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let read_line t =
  let acc = Buffer.create 128 in
  let rec go () =
    if t.lo >= t.hi then begin
      let n = retry_read t.t_fd t.chunk 0 (Bytes.length t.chunk) in
      if n = 0 then
        if Buffer.length acc = 0 then None
        else Some (strip_cr (Buffer.contents acc))
      else begin
        t.lo <- 0;
        t.hi <- n;
        go ()
      end
    end
    else begin
      let i = ref t.lo in
      while !i < t.hi && Bytes.get t.chunk !i <> '\n' do
        incr i
      done;
      Buffer.add_subbytes acc t.chunk t.lo (!i - t.lo);
      if Buffer.length acc > max_line_bytes then raise Line_too_long;
      if !i < t.hi then begin
        t.lo <- !i + 1;
        Some (strip_cr (Buffer.contents acc))
      end
      else begin
        t.lo <- t.hi;
        go ()
      end
    end
  in
  go ()

let write_all fd buf off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.write fd buf !off !len with
    | n ->
        off := !off + n;
        len := !len - n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_line t s =
  let n = String.length s in
  let b = Bytes.create (n + 1) in
  Bytes.blit_string s 0 b 0 n;
  Bytes.set b n '\n';
  write_all t.t_fd b 0 (n + 1)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.t_fd with Unix.Unix_error _ -> ()
  end
