exception Line_too_long
exception Read_timeout of { rt_partial : bool }
exception Write_timeout

(* 8 MiB: far above any legitimate statement, far below memory trouble. *)
let max_line_bytes = 8 * 1024 * 1024

type t = {
  t_fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable lo : int; (* unconsumed bytes are chunk.[lo..hi-1] *)
  mutable hi : int;
  mutable closed : bool;
  (* 0. = block forever. idle applies while no byte of the current line has
     arrived (a quiet peer between requests); io applies mid-line and to
     writes (a peer that stalls inside a frame, or stops draining). *)
  mutable idle_timeout_ms : float;
  mutable io_timeout_ms : float;
}

let make fd =
  {
    t_fd = fd;
    chunk = Bytes.create 8192;
    lo = 0;
    hi = 0;
    closed = false;
    idle_timeout_ms = 0.;
    io_timeout_ms = 0.;
  }

let fd t = t.t_fd

let set_timeouts ?idle_ms ?io_ms t =
  (match idle_ms with
  | Some ms when ms < 0. -> invalid_arg "Lineio.set_timeouts: negative idle"
  | Some ms -> t.idle_timeout_ms <- ms
  | None -> ());
  match io_ms with
  | Some ms when ms < 0. -> invalid_arg "Lineio.set_timeouts: negative io"
  | Some ms -> t.io_timeout_ms <- ms
  | None -> ()

(* Wait until [fd] is ready in the given direction or the timeout expires.
   select(2) is used directly (no O_NONBLOCK juggling): the fds here are
   sockets and pipes, where readiness means the following read/write will
   not block. *)
let wait_ready fd ~for_write ~timeout_ms ~on_timeout =
  if timeout_ms > 0. then begin
    let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.) in
    let rec go () =
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then on_timeout ()
      else
        let r, w =
          if for_write then ([], [ fd ]) else ([ fd ], [])
        in
        match Unix.select r w [] left with
        | [], [], _ -> on_timeout ()
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  end

let rec retry_read fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_read fd buf off len

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* An oversize line does not kill the stream: once the accumulator passes
   the cap, the rest of the line is consumed without buffering and
   [Line_too_long] is raised only after the terminating newline (or EOF)
   — the reader is already resynchronized on the next frame, so the caller
   can answer with a typed error and keep serving. *)
let read_line t =
  let acc = Buffer.create 128 in
  let discarding = ref false in
  let rec go () =
    if t.lo >= t.hi then begin
      let partial = Buffer.length acc > 0 || !discarding in
      wait_ready t.t_fd ~for_write:false
        ~timeout_ms:(if partial then t.io_timeout_ms else t.idle_timeout_ms)
        ~on_timeout:(fun () -> raise (Read_timeout { rt_partial = partial }));
      let n = retry_read t.t_fd t.chunk 0 (Bytes.length t.chunk) in
      if n = 0 then
        if !discarding then raise Line_too_long
        else if Buffer.length acc = 0 then None
        else Some (strip_cr (Buffer.contents acc))
      else begin
        t.lo <- 0;
        t.hi <- n;
        go ()
      end
    end
    else begin
      let i = ref t.lo in
      while !i < t.hi && Bytes.get t.chunk !i <> '\n' do
        incr i
      done;
      if not !discarding then begin
        Buffer.add_subbytes acc t.chunk t.lo (!i - t.lo);
        if Buffer.length acc > max_line_bytes then begin
          Buffer.clear acc;
          discarding := true
        end
      end;
      if !i < t.hi then begin
        t.lo <- !i + 1;
        if !discarding then raise Line_too_long
        else Some (strip_cr (Buffer.contents acc))
      end
      else begin
        t.lo <- t.hi;
        go ()
      end
    end
  in
  go ()

let write_all t buf off len =
  let deadline =
    if t.io_timeout_ms > 0. then
      Some (Unix.gettimeofday () +. (t.io_timeout_ms /. 1000.))
    else None
  in
  let off = ref off and len = ref len in
  while !len > 0 do
    (match deadline with
    | None -> ()
    | Some d ->
        wait_ready t.t_fd ~for_write:true
          ~timeout_ms:(Float.max 0.001 ((d -. Unix.gettimeofday ()) *. 1000.))
          ~on_timeout:(fun () -> raise Write_timeout));
    match Unix.write t.t_fd buf !off !len with
    | n ->
        off := !off + n;
        len := !len - n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_line t s =
  let n = String.length s in
  let b = Bytes.create (n + 1) in
  Bytes.blit_string s 0 b 0 n;
  Bytes.set b n '\n';
  write_all t b 0 (n + 1)

let write_raw t s = write_all t (Bytes.of_string s) 0 (String.length s)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.t_fd with Unix.Unix_error _ -> ()
  end
