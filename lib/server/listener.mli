(** The serving loop: socket setup, accept, and per-connection dispatch
    onto a bounded {!Pool} of domains.

    One accepted connection is one job: a worker binds one fresh session
    (via the [mk_session] factory, typically {!Mvstore.Session.attach} on
    shared state) and serves the connection's requests sequentially until
    the client disconnects. Cross-connection parallelism comes from the
    pool; within a connection, requests are strictly ordered — that is
    what makes per-client results reproducible.

    Backpressure ladder, outermost first:
    + the kernel listen backlog absorbs connection bursts;
    + accepted connections queue in the pool up to [cf_queue_depth];
    + beyond that the listener answers one typed [overloaded] error line
      and closes — never an unbounded queue, never a silent drop.

    A handler that raises (including an armed [accept] fault) closes its
    own connection and is counted; the accept loop and the other workers
    are untouched. *)

type addr =
  | Unix_path of string        (** Unix-domain socket at this path *)
  | Tcp of string * int        (** host, port; port [0] = ephemeral *)

(** ["host:port"] when the suffix after the last [':'] is numeric,
    otherwise a Unix-socket path. Empty host means [127.0.0.1]. *)
val parse_addr : string -> (addr, string) result

val addr_to_string : addr -> string

type config = {
  cf_addr : addr;
  cf_domains : int;       (** worker domains (>= 1) *)
  cf_queue_depth : int;   (** bounded waiting queue (>= 0) *)
  cf_backlog : int;       (** listen(2) backlog *)
}

type t

(** Bind, listen, spawn the workers and the accept domain, and return.
    [mk_session] runs once per accepted connection, in the worker domain
    that serves it. Raises [Unix.Unix_error] when the address cannot be
    bound. Ignores [SIGPIPE] process-wide. *)
val start : config -> mk_session:(unit -> Mvstore.Session.t) -> t

(** The bound address ([Tcp] with port [0] resolves to the real port). *)
val sockaddr : t -> Unix.sockaddr

val port : t -> int option

(** Stop accepting, drain accepted work, join all domains, close and (for
    Unix sockets) unlink. Idempotent. With [drain_ms > 0] (default 0),
    requests already executing get up to that many milliseconds to finish
    and flush their responses before idle and straggling connections are
    force-disconnected — graceful shutdown for SIGTERM. *)
val stop : ?drain_ms:int -> t -> unit

(** Requests currently executing (diagnostics). *)
val inflight : t -> int

(** Block until {!stop} is called from another domain/signal context. *)
val wait : t -> unit
