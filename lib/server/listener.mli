(** The serving loop: socket setup, accept, and per-connection dispatch
    onto a bounded {!Pool} of domains.

    One accepted connection is one job: a worker binds one fresh session
    (via the [mk_session] factory, typically {!Mvstore.Session.attach} on
    shared state) and serves the connection's requests sequentially until
    the client disconnects. Cross-connection parallelism comes from the
    pool; within a connection, requests are strictly ordered — that is
    what makes per-client results reproducible.

    {2 Overload ladder}

    Outermost first:
    + the kernel listen backlog absorbs connection bursts;
    + accepted connections queue in the pool up to [cf_queue_depth];
    + past [cf_degrade_watermark] queued jobs, requests are served from
      {e base plans} — the rewrite search (the expensive, optional part of
      a request) is skipped, replies carry an ["overload"] entry in their
      ["degraded"] annotation, and every answer is still correct;
    + queue full: one typed [overloaded] error line with a
      [retry_after_ms] backoff hint, then close — never an unbounded
      queue, never a silent drop.

    {2 Hardened wire IO}

    [cf_idle_timeout_ms] reaps connections idle between requests (quiet,
    counted in [server.idle_reaped]); [cf_io_timeout_ms] bounds mid-frame
    reads and response writes, so a peer that stalls inside a frame or
    stops draining costs one connection ([server.stalled_conns]), never a
    worker. An oversize request line (> {!Lineio.max_line_bytes}) is
    answered with a typed [bad_request] and the stream resynchronizes at
    the next newline — the connection keeps serving. A handler that raises
    (including an armed [accept] fault) closes its own connection and is
    counted; the accept loop and the other workers are untouched.

    {2 Request deadlines}

    [cf_request_deadline_ms > 0] gives every request that deadline unless
    it carries its own [opts.deadline_ms]; either can only tighten the
    session's admission-control limits, never loosen them. Expiry degrades
    (annotated in the reply), it does not fail. *)

type addr =
  | Unix_path of string        (** Unix-domain socket at this path *)
  | Tcp of string * int        (** host, port; port [0] = ephemeral *)

(** ["host:port"] when the suffix after the last [':'] is numeric,
    otherwise a Unix-socket path. Empty host means [127.0.0.1]. *)
val parse_addr : string -> (addr, string) result

val addr_to_string : addr -> string

type config = {
  cf_addr : addr;
  cf_domains : int;       (** worker domains (>= 1) *)
  cf_queue_depth : int;   (** bounded waiting queue (>= 0) *)
  cf_backlog : int;       (** listen(2) backlog *)
  cf_degrade_watermark : int;
      (** queued jobs at/past this → base-plan-only serving; [< 0]
          disables the rung (straight from full service to shed) *)
  cf_retry_after_ms : int;  (** backoff hint in [overloaded] errors *)
  cf_idle_timeout_ms : float;   (** reap idle connections; [0.] = never *)
  cf_io_timeout_ms : float;     (** mid-frame/write stall bound; [0.] = none *)
  cf_request_deadline_ms : float;
      (** default per-request deadline; [0.] = none *)
}

(** Build a config; the resilience knobs default to off
    ([degrade_watermark = -1], no timeouts, no default deadline,
    [retry_after_ms = 50]). *)
val config :
  ?degrade_watermark:int ->
  ?retry_after_ms:int ->
  ?idle_timeout_ms:float ->
  ?io_timeout_ms:float ->
  ?request_deadline_ms:float ->
  addr:addr ->
  domains:int ->
  queue_depth:int ->
  backlog:int ->
  unit ->
  config

type t

(** Bind, listen, spawn the workers and the accept domain, and return.
    [mk_session] runs once per accepted connection, in the worker domain
    that serves it. Raises [Unix.Unix_error] when the address cannot be
    bound, [Invalid_argument] on nonsensical knobs. Ignores [SIGPIPE]
    process-wide. *)
val start : config -> mk_session:(unit -> Mvstore.Session.t) -> t

(** The bound address ([Tcp] with port [0] resolves to the real port). *)
val sockaddr : t -> Unix.sockaddr

val port : t -> int option

(** Stop accepting, drain accepted work, join all domains, close and (for
    Unix sockets) unlink. Idempotent. With [drain_ms > 0] (default 0),
    requests already executing get up to that many milliseconds to finish
    and flush their responses before idle and straggling connections are
    force-disconnected — graceful shutdown for SIGTERM. *)
val stop : ?drain_ms:int -> t -> unit

(** Requests currently executing (diagnostics). *)
val inflight : t -> int

(** Block until {!stop} is called from another domain/signal context. *)
val wait : t -> unit
