type t = { io : Lineio.t; mutable seq : int }

let connect_sockaddr sa =
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa with e -> Unix.close fd; raise e);
  { io = Lineio.make fd; seq = 0 }

let connect_addr = function
  | Listener.Unix_path p -> connect_sockaddr (Unix.ADDR_UNIX p)
  | Listener.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith ("unknown host: " ^ host))
      in
      connect_sockaddr (Unix.ADDR_INET (inet, port))

(* Bounded exponential backoff for racing a server that is still booting
   (or recovering a large WAL): attempt k sleeps 50ms * 2^k, capped at 1s,
   so --retry 5 spans roughly 1.5s and --retry 10 roughly 8s. Only
   connection-establishment failures retry; anything after connect(2)
   succeeds is a real error. *)
let retry_delay k = Float.min 1.0 (0.05 *. Float.pow 2.0 (float_of_int k))

let connect_retry_addr ~retries addr =
  let rec go k =
    match connect_addr addr with
    | t -> t
    | exception ((Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
                 | Failure _) as e) ->
        if k >= retries then raise e
        else begin
          Unix.sleepf (retry_delay k);
          go (k + 1)
        end
  in
  go 0

let connect ?(retries = 0) s =
  (* a dead server must not kill the client process on write *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Listener.parse_addr s with
  | Ok addr -> connect_retry_addr ~retries addr
  | Error msg -> failwith msg

let request t ?id ?rewrite sql =
  let id =
    match id with
    | Some id -> id
    | None ->
        t.seq <- t.seq + 1;
        Obs.Json.Int t.seq
  in
  let rq = { Wire.rq_id = id; rq_sql = sql; rq_rewrite = rewrite } in
  Lineio.write_line t.io (Obs.Json.to_string (Wire.request_to_json rq));
  match Lineio.read_line t.io with
  | None -> raise End_of_file
  | Some line -> (
      match Wire.response_of_line line with
      | Ok (Wire.Reply r) -> Ok r
      | Ok (Wire.Failed (_, e)) -> Error e
      | Error msg -> failwith ("malformed response: " ^ msg))

let close t = Lineio.close t.io
