type t = {
  addr : Listener.addr;
  mutable io : Lineio.t option; (* None = currently disconnected *)
  mutable seq : int;
  mutable timeout_ms : float; (* response timeout; 0. = block forever *)
  conn_retries : int; (* connect-establishment retries per attempt *)
  jitter : Random.State.t;
}

type failure =
  | Server_error of Wire.error
  | Conn_error of string

let failure_to_string = function
  | Server_error e -> Wire.error_to_string e
  | Conn_error msg -> "connection error: " ^ msg

(* --- connecting --------------------------------------------------------- *)

let connect_sockaddr sa =
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa with e -> Unix.close fd; raise e);
  Lineio.make fd

let dial = function
  | Listener.Unix_path p -> connect_sockaddr (Unix.ADDR_UNIX p)
  | Listener.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith ("unknown host: " ^ host))
      in
      connect_sockaddr (Unix.ADDR_INET (inet, port))

(* Bounded exponential backoff for racing a server that is still booting
   (or recovering a large WAL): attempt k sleeps 50ms * 2^k, capped at 1s,
   so --retry 5 spans roughly 1.5s and --retry 10 roughly 8s. Only
   connection-establishment failures retry; anything after connect(2)
   succeeds is a real error. *)
let retry_delay k = Float.min 1.0 (0.05 *. Float.pow 2.0 (float_of_int k))

let dial_retry ~retries addr =
  let rec go k =
    match dial addr with
    | io -> io
    | exception ((Unix.Unix_error
                    ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _)
                 | Failure _) as e) ->
        if k >= retries then raise e
        else begin
          Unix.sleepf (retry_delay k);
          go (k + 1)
        end
  in
  go 0

let apply_timeout t io =
  (* one knob bounds the whole response wait: first byte (idle path in
     Lineio) and every later chunk (io path), plus our own writes *)
  Lineio.set_timeouts ~idle_ms:t.timeout_ms ~io_ms:t.timeout_ms io

let make ?(retries = 0) ?(timeout_ms = 0.) addr =
  if timeout_ms < 0. then invalid_arg "Client.connect: negative timeout";
  {
    addr;
    io = None;
    seq = 0;
    timeout_ms;
    conn_retries = retries;
    jitter = Random.State.make_self_init ();
  }

let ensure_io t =
  match t.io with
  | Some io -> io
  | None ->
      let io = dial_retry ~retries:t.conn_retries t.addr in
      apply_timeout t io;
      t.io <- Some io;
      io

let drop_io t =
  match t.io with
  | None -> ()
  | Some io ->
      t.io <- None;
      Lineio.close io

let connect_addr ?retries ?timeout_ms addr =
  let t = make ?retries ?timeout_ms addr in
  ignore (ensure_io t);
  t

let connect ?retries ?timeout_ms s =
  (* a dead server must not kill the client process on write *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Listener.parse_addr s with
  | Ok addr -> connect_addr ?retries ?timeout_ms addr
  | Error msg -> failwith msg

let set_timeout_ms t ms =
  if ms < 0. then invalid_arg "Client.set_timeout_ms: negative timeout";
  t.timeout_ms <- ms;
  match t.io with Some io -> apply_timeout t io | None -> ()

let close t = drop_io t

(* --- one-shot request --------------------------------------------------- *)

let next_id t =
  t.seq <- t.seq + 1;
  Obs.Json.Int t.seq

let send_and_read t ~id ?rewrite ?deadline_ms sql =
  let io = ensure_io t in
  let rq =
    {
      Wire.rq_id = id;
      rq_sql = sql;
      rq_rewrite = rewrite;
      rq_deadline_ms = deadline_ms;
    }
  in
  Lineio.write_line io (Obs.Json.to_string (Wire.request_to_json rq));
  match Lineio.read_line io with
  | None -> raise End_of_file
  | Some line -> (
      match Wire.response_of_line line with
      | Ok (Wire.Reply r) -> Ok r
      | Ok (Wire.Failed (_, e)) -> Error e
      | Error msg -> failwith ("malformed response: " ^ msg))

let request t ?id ?rewrite ?deadline_ms sql =
  let id = match id with Some id -> id | None -> next_id t in
  send_and_read t ~id ?rewrite ?deadline_ms sql

(* --- retrying request --------------------------------------------------- *)

(* A script is safe to blindly resend exactly when none of its statements
   mutates the database: a SELECT that may or may not have executed gives
   the same answer either way, while an INSERT that may have committed
   must not run twice. Anything that fails to parse is treated as a write
   (the conservative direction). *)
let sql_idempotent sql =
  match Sqlsyn.Parser.parse_script sql with
  | stmts -> List.for_all (fun s -> not (Mvstore.Session.stmt_writes s)) stmts
  | exception _ -> false

(* Which failures may be retried, and under what ambiguity:

   - the request line never made it out intact (connect or write failure):
     the server cannot have executed a partial, newline-less line, so the
     retry is safe even for DML;
   - a decoded typed error: definitive — the statement-rollback discipline
     means a failed statement published nothing. [overloaded] and
     [fault_injected] describe server conditions worth retrying; the rest
     ([bad_request], [session_error], [fatal], [error]) would fail
     identically again;
   - anything after the request was written but before a decoded reply
     (EOF, response timeout, corrupted reply line): the request's fate is
     unknown — the acknowledgement is ambiguous — so only an idempotent
     script retries. *)
type verdict = Retry | Retry_if_idempotent | Final

let error_verdict (e : Wire.error) =
  match e.Wire.we_code with
  | "overloaded" | "fault_injected" -> Retry
  | _ -> Final

let backoff t k (last : failure option) =
  let base = retry_delay k in
  (* an overloaded server said how long it wants: believe it *)
  let floor_s =
    match last with
    | Some (Server_error { Wire.we_retry_after_ms = Some ms; _ }) ->
        float_of_int ms /. 1000.
    | _ -> 0.
  in
  (* jitter to 50-100% of the computed delay: a fleet of shed clients must
     not reconverge on the server in one synchronized wave *)
  let d = Float.max base floor_s in
  Unix.sleepf (d *. (0.5 +. Random.State.float t.jitter 0.5))

let request_robust t ?id ?rewrite ?deadline_ms ?idempotent ?(attempts = 5)
    sql =
  if attempts < 1 then invalid_arg "Client.request_robust: attempts < 1";
  let idem =
    match idempotent with Some b -> b | None -> sql_idempotent sql
  in
  let id = match id with Some id -> id | None -> next_id t in
  let line =
    Obs.Json.to_string
      (Wire.request_to_json
         {
           Wire.rq_id = id;
           rq_sql = sql;
           rq_rewrite = rewrite;
           rq_deadline_ms = deadline_ms;
         })
  in
  (* phase 1: connect + send. Any failure here happened before the server
     could have seen a complete request line — safe to retry blindly. *)
  let send () =
    match
      let io = ensure_io t in
      Lineio.write_line io line;
      io
    with
    | io -> Ok io
    | exception
        ( Lineio.Write_timeout
        | Unix.Unix_error _
        | Failure _ (* bad hostname from dial *) ) ->
        drop_io t;
        Error (Conn_error "send failed (server unreachable?)", Retry)
  in
  (* phase 2: await + decode. The request is out; its fate is unknown
     until a reply decodes, so failures here retry only when idempotent. *)
  let await io =
    match Lineio.read_line io with
    | None ->
        drop_io t;
        Error
          ( Conn_error "server closed the connection before replying",
            Retry_if_idempotent )
    | exception Lineio.Read_timeout _ ->
        drop_io t;
        Error
          ( Conn_error
              (Printf.sprintf "no response within %.0f ms" t.timeout_ms),
            Retry_if_idempotent )
    | exception Unix.Unix_error _ ->
        drop_io t;
        Error (Conn_error "connection lost awaiting reply", Retry_if_idempotent)
    | exception Lineio.Line_too_long ->
        drop_io t;
        Error (Conn_error "oversize response line", Retry_if_idempotent)
    | Some reply_line -> (
        match Wire.response_of_line reply_line with
        | Ok (Wire.Reply r) -> Ok r
        | Ok (Wire.Failed (_, e)) ->
            (* the shed rung answers then closes; reconnect to retry *)
            if e.Wire.we_code = "overloaded" then drop_io t;
            Error (Server_error e, error_verdict e)
        | Error msg ->
            (* a reply arrived but does not decode (corrupted in flight):
               the request ran, its outcome is unreadable — ambiguous *)
            drop_io t;
            Error
              (Conn_error ("malformed response: " ^ msg), Retry_if_idempotent)
        )
  in
  let attempt () =
    match send () with Error _ as e -> e | Ok io -> await io
  in
  let rec go k last =
    if k >= attempts then
      Error (Option.value last ~default:(Conn_error "no attempts made"))
    else begin
      if k > 0 then backoff t (k - 1) last;
      match attempt () with
      | Ok r -> Ok r
      | Error (f, Retry) -> go (k + 1) (Some f)
      | Error (f, Retry_if_idempotent) when idem -> go (k + 1) (Some f)
      | Error (f, (Retry_if_idempotent | Final)) -> Error f
    end
  in
  go 0 None
