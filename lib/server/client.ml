type t = { io : Lineio.t; mutable seq : int }

let connect_sockaddr sa =
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa with e -> Unix.close fd; raise e);
  { io = Lineio.make fd; seq = 0 }

let connect_addr = function
  | Listener.Unix_path p -> connect_sockaddr (Unix.ADDR_UNIX p)
  | Listener.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith ("unknown host: " ^ host))
      in
      connect_sockaddr (Unix.ADDR_INET (inet, port))

let connect s =
  (* a dead server must not kill the client process on write *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Listener.parse_addr s with
  | Ok addr -> connect_addr addr
  | Error msg -> failwith msg

let request t ?id ?rewrite sql =
  let id =
    match id with
    | Some id -> id
    | None ->
        t.seq <- t.seq + 1;
        Obs.Json.Int t.seq
  in
  let rq = { Wire.rq_id = id; rq_sql = sql; rq_rewrite = rewrite } in
  Lineio.write_line t.io (Obs.Json.to_string (Wire.request_to_json rq));
  match Lineio.read_line t.io with
  | None -> raise End_of_file
  | Some line -> (
      match Wire.response_of_line line with
      | Ok (Wire.Reply r) -> Ok r
      | Ok (Wire.Failed (_, e)) -> Error e
      | Error msg -> failwith ("malformed response: " ^ msg))

let close t = Lineio.close t.io
