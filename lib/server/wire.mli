(** The astql wire protocol: one JSON value per line, both directions.

    {2 Requests}

    {[ {"id": <any>, "sql": "<statements>", "opts": {...}} ]}

    - [id] is echoed verbatim in the response (clients correlate; [null]
      when omitted).
    - [sql] is a semicolon-separated script, executed statement by
      statement exactly like a REPL line.
    - [opts] is optional; recognized fields: ["rewrite"] ([bool], default
      true) disables transparent summary-table routing for this request
      only, and ["deadline_ms"] (positive number) bounds planning and
      rewritten execution for this request — on expiry the server answers
      from the degradation ladder (best plan found so far, falling back to
      the base plan) rather than failing. Unknown fields are ignored
      (forward compatibility), but a {e recognized} field with the wrong
      type is a ["bad_request"]: silently ignoring it would execute the
      request under different semantics than the client asked for.

    {2 Responses}

    Success:
    {[ {"id": <echo>, "ok": true, "ms": <float>,
        "degraded": [<string>...],           (only when non-empty)
        "results": [<outcome>...]} ]}
    where an outcome is one of
    {[ {"type": "msg", "text": <string>}
       {"type": "table", "columns": [<string>...], "rows": [[<value>...]...]}
       {"type": "plan", "text": <string>} ]}
    ["degraded"] lists why the answer was served below full quality —
    budget-exhaustion reasons (["deadline"], ["match-budget"], ...) and/or
    ["overload"] when the server was shedding rewrite work under queue
    pressure. The results themselves are always correct (the ladder floor
    is the base plan); the annotation tells the client the answer may have
    been slower than a fully-rewritten one.

    Failure — the structured error record carries the same taxonomy the
    sandbox uses internally ({!Guard.Error}), so a client can distinguish
    a parse error from an injected fault from resource exhaustion without
    string matching:
    {[ {"id": <echo>, "ok": false,
        "error": {"code": <string>, "msg": <string>,
                  "stage": <string|null>, "kind": <string|null>,
                  "mv": <string|null>, "statement": <string|null>,
                  "retry_after_ms": <int>}} ]}
    ([retry_after_ms] only on ["overloaded"]: the client should back off
    at least that long before reconnecting.)

    Codes: ["bad_request"] (not JSON / missing [sql] / wrong-typed
    recognized opt / oversize frame), ["session_error"] (parse/semantic/
    runtime statement failure), ["fatal"] (resource exhaustion,
    {!Guard.Error.Fatal}), ["overloaded"] (queue full — sent before any
    request is read, [id] is [null]), ["fault_injected"] (armed test
    fault), ["error"] (anything else, classified).

    {2 Values}

    SQL values marshal as the natural JSON scalar; the two cases JSON
    cannot express directly are tagged one-field objects so a typed
    round-trip is exact: dates as [{"date": yyyymmdd}] and non-finite
    floats as [{"float": "nan"|"inf"|"-inf"}]. *)

type error = {
  we_code : string;
  we_msg : string;
  we_stage : string option;
  we_kind : string option;
  we_mv : string option;
  we_statement : string option;
  we_retry_after_ms : int option;
      (** backoff hint, only on ["overloaded"] *)
}

type request = {
  rq_id : Obs.Json.t;  (** echoed verbatim; [Null] when absent *)
  rq_sql : string;
  rq_rewrite : bool option;  (** [opts.rewrite] *)
  rq_deadline_ms : float option;  (** [opts.deadline_ms] *)
}

(** Client-side decoded outcome (mirrors {!Mvstore.Session.outcome} without
    depending on engine internals). *)
type outcome =
  | Msg of string
  | Table of string list * Data.Value.t array list
  | Plan of string

type reply = {
  rp_id : Obs.Json.t;
  rp_ms : float;
  rp_results : outcome list;
  rp_degraded : string list;  (** [[]] = full-quality answer *)
}

(** A decoded response line. *)
type response = Reply of reply | Failed of Obs.Json.t * error

val value_to_json : Data.Value.t -> Obs.Json.t
val value_of_json : Obs.Json.t -> (Data.Value.t, string) result

(** Build an error record; [code] then [msg]. *)
val mk_error :
  ?stage:string ->
  ?kind:string ->
  ?mv:string ->
  ?statement:string ->
  ?retry_after_ms:int ->
  string ->
  string ->
  error

(** Parse one request line. On error, a ["bad_request"] record (with the
    offending line as [we_statement]) ready to send back. *)
val request_of_line : string -> (request, error) result

val request_to_json : request -> Obs.Json.t

val response_ok :
  ?degraded:string list ->
  id:Obs.Json.t ->
  ms:float ->
  Mvstore.Session.outcome list ->
  Obs.Json.t

val response_error : id:Obs.Json.t -> error -> Obs.Json.t

(** Decode one response line (client side). *)
val response_of_line : string -> (response, string) result

(** Classify an exception raised while serving [sql] into a wire error.
    [Session_error] keeps its message; {!Guard.Error.Fatal} and everything
    else marshal the {!Guard.Error} taxonomy. *)
val error_of_exn : sql:string -> exn -> error

val overloaded_error : queue_depth:int -> retry_after_ms:int -> error
val error_to_string : error -> string
