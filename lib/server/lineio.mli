(** Line-delimited IO on raw file descriptors.

    The wire protocol is one JSON value per line, so this is the only IO
    primitive the server and client need. It works on raw [Unix.file_descr]
    deliberately: wrapping a socket in a pair of buffered channels invites
    double-close (and worse, close-after-reuse of the fd number) bugs —
    here one [close] on the reader closes exactly one fd, once.

    Reads are buffered; writes loop until every byte is out (handling short
    writes and [EINTR]). Callers must ignore [SIGPIPE] process-wide (the
    server and client entry points do); a peer that vanished then surfaces
    as [Unix.Unix_error (EPIPE, _, _)] from {!write_line} instead of
    killing the process. *)

type t

(** Raised by {!read_line} when a single line exceeds {!max_line_bytes} —
    a malformed or hostile peer, not a legitimate request. *)
exception Line_too_long

val max_line_bytes : int

val make : Unix.file_descr -> t
val fd : t -> Unix.file_descr

(** Next line without its ['\n'] (a trailing ['\r'] is also stripped, so
    CRLF peers work). [None] on clean EOF; a final unterminated line is
    returned as-is. *)
val read_line : t -> string option

(** Writes [s] plus ['\n'] fully. *)
val write_line : t -> string -> unit

(** Closes the underlying fd (idempotent). *)
val close : t -> unit
