(** Line-delimited IO on raw file descriptors.

    The wire protocol is one JSON value per line, so this is the only IO
    primitive the server and client need. It works on raw [Unix.file_descr]
    deliberately: wrapping a socket in a pair of buffered channels invites
    double-close (and worse, close-after-reuse of the fd number) bugs —
    here one [close] on the reader closes exactly one fd, once.

    Reads are buffered; writes loop until every byte is out (handling short
    writes and [EINTR]). Callers must ignore [SIGPIPE] process-wide (the
    server and client entry points do); a peer that vanished then surfaces
    as [Unix.Unix_error (EPIPE, _, _)] from {!write_line} instead of
    killing the process.

    {2 Timeouts}

    Two independent select-based timeouts, both off by default
    ({!set_timeouts}): the {e idle} timeout bounds how long {!read_line}
    waits for the {e first} byte of a line (a quiet peer between
    requests — the server's idle-connection reaper), and the {e io}
    timeout bounds mid-line reads (a peer that stalls inside a frame) and
    writes (a peer that stops draining its socket). On expiry
    {!Read_timeout} carries whether the line was already partially
    received, so the caller can tell a harmlessly idle peer from a
    misbehaving one. *)

type t

(** Raised by {!read_line} when a single line exceeds {!max_line_bytes} —
    a malformed or hostile peer, not a legitimate request. The oversize
    line has been consumed through its terminating newline (nothing of it
    is buffered), so the stream is already resynchronized: the next
    {!read_line} returns the next frame. *)
exception Line_too_long

(** Raised by {!read_line} when the configured timeout expires.
    [rt_partial] is [false] when no byte of the line had arrived (idle
    peer), [true] when the peer stalled mid-frame. *)
exception Read_timeout of { rt_partial : bool }

(** Raised by the write path when the peer stops draining for longer than
    the io timeout. *)
exception Write_timeout

val max_line_bytes : int

val make : Unix.file_descr -> t
val fd : t -> Unix.file_descr

(** [set_timeouts ?idle_ms ?io_ms t] — [0.] disables (block forever),
    which is also the initial state. Omitted arguments are left
    unchanged. Raises [Invalid_argument] on negative values. *)
val set_timeouts : ?idle_ms:float -> ?io_ms:float -> t -> unit

(** Next line without its ['\n'] (a trailing ['\r'] is also stripped, so
    CRLF peers work). [None] on clean EOF; a final unterminated line is
    returned as-is. May raise {!Line_too_long}, {!Read_timeout}. *)
val read_line : t -> string option

(** Writes [s] plus ['\n'] fully. May raise {!Write_timeout}. *)
val write_line : t -> string -> unit

(** Writes [s] without a newline terminator — only the fault-injection
    path uses this, to put a deliberately torn frame on the wire. *)
val write_raw : t -> string -> unit

(** Closes the underlying fd (idempotent). *)
val close : t -> unit
