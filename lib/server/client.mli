(** Client side of the wire protocol: connect, send one request line,
    read one response line — plus a retrying request that survives the
    network faults the chaos harness injects.

    A connection is not thread-safe (one outstanding request at a time);
    that mirrors the server, which serves a connection's requests strictly
    in order. Concurrent load wants one connection per thread/domain.

    {2 Retry discipline}

    {!request_robust} splits failures three ways:
    - the request line never made it out intact (connect/write failure):
      the server cannot execute a partial, newline-less line, so the retry
      is always safe;
    - a decoded typed error: definitive (failed statements publish
      nothing). [overloaded] and [fault_injected] retry — an overloaded
      server's [retry_after_ms] hint is honored as the backoff floor; the
      other codes would fail identically again and do not;
    - anything between a written request and a decoded reply (EOF,
      response timeout, corrupted reply): the acknowledgement is
      {e ambiguous}, so the retry happens only for idempotent scripts —
      by default, scripts whose statements are all reads
      ({!sql_idempotent}); a DML script whose fate is unknown surfaces the
      failure instead of risking a double execution.

    Reconnects between attempts use bounded exponential backoff with
    jitter (50-100% of the computed delay), so a fleet of shed clients
    does not reconverge in one synchronized wave. *)

type t

type failure =
  | Server_error of Wire.error  (** decoded typed error reply *)
  | Conn_error of string        (** client-local: connect, send, await *)

val failure_to_string : failure -> string

(** [connect addr] — same address syntax as the server
    ({!Listener.parse_addr}): ["host:port"] or a Unix-socket path.
    Raises [Failure] on a bad address, [Unix.Unix_error] when the
    connection is refused.

    [?retries] (default 0) retries connection establishment with bounded
    exponential backoff (50ms doubling, capped at 1s per wait) — for
    scripts racing a server that is still booting or recovering a WAL.
    The same budget governs each reconnect {!request_robust} makes.

    [?timeout_ms] (default [0.] = block forever) bounds the wait for each
    response — first byte and every later chunk — and the client's own
    writes. On expiry {!request} raises {!Lineio.Read_timeout};
    {!request_robust} turns it into a retryable/final {!failure}. *)
val connect : ?retries:int -> ?timeout_ms:float -> string -> t

val connect_addr : ?retries:int -> ?timeout_ms:float -> Listener.addr -> t

(** Adjust the response timeout ([0.] disables). *)
val set_timeout_ms : t -> float -> unit

(** [request t sql] sends one request and blocks for its response — one
    attempt, no retries. [Ok reply] on success; [Error err] is the
    server's typed error (including [overloaded]). Raises [End_of_file]
    if the server hangs up without answering, {!Lineio.Read_timeout} on
    response timeout, [Failure] on a malformed response line.
    [?deadline_ms] is sent as the request's [opts.deadline_ms]. *)
val request :
  t ->
  ?id:Obs.Json.t ->
  ?rewrite:bool ->
  ?deadline_ms:float ->
  string ->
  (Wire.reply, Wire.error) result

(** [request_robust t sql] — up to [?attempts] (default 5) tries under the
    retry discipline above. Never raises for transport or server
    conditions: every outcome is [Ok reply] or [Error failure] (the last
    failure, when attempts run out or the failure is not retryable).
    [?idempotent] overrides {!sql_idempotent} when the caller knows
    better. *)
val request_robust :
  t ->
  ?id:Obs.Json.t ->
  ?rewrite:bool ->
  ?deadline_ms:float ->
  ?idempotent:bool ->
  ?attempts:int ->
  string ->
  (Wire.reply, failure) result

(** [true] when every statement of the script is read-only (so a blind
    resend cannot double-apply anything). Unparseable scripts are
    conservatively treated as writes. *)
val sql_idempotent : string -> bool

val close : t -> unit
