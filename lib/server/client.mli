(** Client side of the wire protocol: connect, send one request line,
    read one response line.

    A connection is not thread-safe (one outstanding request at a time);
    that mirrors the server, which serves a connection's requests strictly
    in order. Concurrent load wants one connection per thread/domain. *)

type t

(** [connect addr] — same address syntax as the server
    ({!Listener.parse_addr}): ["host:port"] or a Unix-socket path.
    Raises [Failure] on a bad address, [Unix.Unix_error] when the
    connection is refused.

    [?retries] (default 0) retries connection establishment with bounded
    exponential backoff (50ms doubling, capped at 1s per wait) — for
    scripts racing a server that is still booting or recovering a WAL.
    Only connect-time failures (refused, socket file not there yet,
    host lookup) retry; errors after a successful connect never do. *)
val connect : ?retries:int -> string -> t

val connect_addr : Listener.addr -> t

(** [request t ?id ?rewrite sql] sends one request and blocks for its
    response. [Ok reply] on success; [Error err] is the server's typed
    error (including [overloaded]). Raises [End_of_file] if the server
    hangs up without answering, [Failure] on a malformed response line. *)
val request :
  t -> ?id:Obs.Json.t -> ?rewrite:bool -> string -> (Wire.reply, Wire.error) result

val close : t -> unit
