let m_worker_errors = Obs.Metrics.counter "server.worker_errors"
let g_queue_depth = Obs.Metrics.gauge "server.queue_depth"

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : (unit -> unit) Queue.t;
  depth : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let worker t () =
  let rec loop () =
    let job =
      Mutex.protect t.m (fun () ->
          while Queue.is_empty t.q && not t.stopping do
            Condition.wait t.nonempty t.m
          done;
          if Queue.is_empty t.q then None
          else begin
            let j = Queue.pop t.q in
            Obs.Metrics.gauge_add g_queue_depth (-1.);
            Some j
          end)
    in
    match job with
    | None -> () (* stopping and drained *)
    | Some j ->
        (try j ()
         with _ -> Obs.Metrics.incr m_worker_errors);
        loop ()
  in
  loop ()

let create ~domains ~queue_depth () =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  if queue_depth < 0 then invalid_arg "Pool.create: queue_depth < 0";
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      q = Queue.create ();
      depth = queue_depth;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (worker t));
  t

let submit t job =
  let accepted =
    Mutex.protect t.m (fun () ->
        if t.stopping || Queue.length t.q >= t.depth then false
        else begin
          Queue.push job t.q;
          Obs.Metrics.gauge_add g_queue_depth 1.;
          true
        end)
  in
  if accepted then Condition.signal t.nonempty;
  accepted

let queued t = Mutex.protect t.m (fun () -> Queue.length t.q)

let shutdown t =
  let ws =
    Mutex.protect t.m (fun () ->
        t.stopping <- true;
        let ws = t.workers in
        t.workers <- [];
        ws)
  in
  Condition.broadcast t.nonempty;
  List.iter Domain.join ws
