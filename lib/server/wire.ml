(* Request/response marshalling. The error record follows the structured
   style of client libraries that wrap server errors in one flat struct
   (code, message, where, what, which object, which statement) instead of
   a bare string — the client can switch on [we_code]/[we_stage] without
   parsing prose. *)

module J = Obs.Json

type error = {
  we_code : string;
  we_msg : string;
  we_stage : string option;
  we_kind : string option;
  we_mv : string option;
  we_statement : string option;
  we_retry_after_ms : int option;
}

type request = {
  rq_id : J.t;
  rq_sql : string;
  rq_rewrite : bool option;
  rq_deadline_ms : float option;
}

type outcome =
  | Msg of string
  | Table of string list * Data.Value.t array list
  | Plan of string

type reply = {
  rp_id : J.t;
  rp_ms : float;
  rp_results : outcome list;
  rp_degraded : string list;
}

type response = Reply of reply | Failed of J.t * error

(* --- values ------------------------------------------------------------- *)

let value_to_json (v : Data.Value.t) : J.t =
  match v with
  | Data.Value.Null -> J.Null
  | Data.Value.Int n -> J.Int n
  | Data.Value.Float x ->
      if Float.is_finite x then J.Float x
      else
        J.Obj
          [
            ( "float",
              J.Str
                (if Float.is_nan x then "nan"
                 else if x > 0. then "inf"
                 else "-inf") );
          ]
  | Data.Value.Str s -> J.Str s
  | Data.Value.Bool b -> J.Bool b
  | Data.Value.Date d -> J.Obj [ ("date", J.Int d) ]

let value_of_json (j : J.t) : (Data.Value.t, string) result =
  match j with
  | J.Null -> Ok Data.Value.Null
  | J.Int n -> Ok (Data.Value.Int n)
  | J.Float x | J.Num x -> Ok (Data.Value.Float x)
  | J.Str s -> Ok (Data.Value.Str s)
  | J.Bool b -> Ok (Data.Value.Bool b)
  | J.Obj [ ("date", J.Int d) ] -> Ok (Data.Value.Date d)
  | J.Obj [ ("float", J.Str "nan") ] -> Ok (Data.Value.Float Float.nan)
  | J.Obj [ ("float", J.Str "inf") ] -> Ok (Data.Value.Float Float.infinity)
  | J.Obj [ ("float", J.Str "-inf") ] ->
      Ok (Data.Value.Float Float.neg_infinity)
  | other -> Error ("not a value: " ^ J.to_string other)

(* --- errors ------------------------------------------------------------- *)

let kind_name (k : Guard.Error.kind) =
  match k with
  | Guard.Error.Injected -> "injected"
  | Guard.Error.Assertion -> "assertion"
  | Guard.Error.Invalid _ -> "invalid_argument"
  | Guard.Error.Div_zero -> "div_zero"
  | Guard.Error.Failed _ -> "failed"
  | Guard.Error.Resource _ -> "resource"
  | Guard.Error.Ill_formed _ -> "ill_formed"
  | Guard.Error.Unexpected _ -> "unexpected"

let mk_error ?stage ?kind ?mv ?statement ?retry_after_ms code msg =
  {
    we_code = code;
    we_msg = msg;
    we_stage = stage;
    we_kind = kind;
    we_mv = mv;
    we_statement = statement;
    we_retry_after_ms = retry_after_ms;
  }

let of_classified ~code ~sql (e : Guard.Error.t) =
  mk_error
    ~stage:(Guard.Error.stage_name e.Guard.Error.err_stage)
    ~kind:(kind_name e.Guard.Error.err_kind)
    ?mv:e.Guard.Error.err_mv ~statement:sql code (Guard.Error.to_string e)

let error_of_exn ~sql exn =
  match exn with
  | Mvstore.Session.Session_error msg ->
      mk_error ~statement:sql "session_error" msg
  | Guard.Error.Fatal e -> of_classified ~code:"fatal" ~sql e
  | exn ->
      let e = Guard.Error.classify ~stage:Guard.Error.Accept exn in
      let code =
        match e.Guard.Error.err_kind with
        | Guard.Error.Injected -> "fault_injected"
        | _ -> "error"
      in
      of_classified ~code ~sql e

let overloaded_error ~queue_depth ~retry_after_ms =
  mk_error ~retry_after_ms "overloaded"
    (Printf.sprintf
       "server overloaded: all workers busy and the waiting queue (depth \
        %d) is full; retry in %d ms"
       queue_depth retry_after_ms)

let opt_str = function None -> J.Null | Some s -> J.Str s

let error_to_json e =
  J.Obj
    ([
       ("code", J.Str e.we_code);
       ("msg", J.Str e.we_msg);
       ("stage", opt_str e.we_stage);
       ("kind", opt_str e.we_kind);
       ("mv", opt_str e.we_mv);
       ("statement", opt_str e.we_statement);
     ]
    @
    match e.we_retry_after_ms with
    | None -> []
    | Some ms -> [ ("retry_after_ms", J.Int ms) ])

let error_to_string e =
  let ctx =
    List.filter_map
      (fun (k, v) -> Option.map (fun v -> k ^ "=" ^ v) v)
      [
        ("stage", e.we_stage);
        ("kind", e.we_kind);
        ("mv", e.we_mv);
        ( "retry_after_ms",
          Option.map string_of_int e.we_retry_after_ms );
      ]
  in
  Printf.sprintf "%s: %s%s" e.we_code e.we_msg
    (if ctx = [] then "" else " [" ^ String.concat ", " ctx ^ "]")

(* --- requests ----------------------------------------------------------- *)

let request_to_json r =
  let opts =
    (match r.rq_rewrite with
    | None -> []
    | Some b -> [ ("rewrite", J.Bool b) ])
    @
    match r.rq_deadline_ms with
    | None -> []
    | Some d -> [ ("deadline_ms", J.Float d) ]
  in
  let base = [ ("id", r.rq_id); ("sql", J.Str r.rq_sql) ] in
  match opts with
  | [] -> J.Obj base
  | opts -> J.Obj (base @ [ ("opts", J.Obj opts) ])

(* Strict typing on the recognized opts: a client that sends
   {"rewrite": "yes"} or a negative deadline made a mistake, and silently
   ignoring it would execute the request under different semantics than
   the client asked for. Unknown opts fields stay ignored (forward
   compatibility) — only a recognized name with a wrong type is an
   error. *)
let request_of_line line =
  let bad msg = Error (mk_error ~statement:line "bad_request" msg) in
  match J.of_string line with
  | Error msg -> bad ("request is not valid JSON: " ^ msg)
  | Ok (J.Obj _ as obj) -> (
      let id = Option.value ~default:J.Null (J.member "id" obj) in
      match J.member "sql" obj with
      | Some (J.Str sql) -> (
          let opts =
            match J.member "opts" obj with
            | None -> Ok (None, None)
            | Some (J.Obj _ as opts) -> (
                let rewrite =
                  match J.member "rewrite" opts with
                  | None -> Ok None
                  | Some (J.Bool b) -> Ok (Some b)
                  | Some _ -> Error "\"opts.rewrite\" must be a boolean"
                in
                let deadline =
                  match J.member "deadline_ms" opts with
                  | None -> Ok None
                  | Some (J.Int n) when n > 0 -> Ok (Some (float_of_int n))
                  | Some (J.Float x | J.Num x) when x > 0. -> Ok (Some x)
                  | Some _ ->
                      Error "\"opts.deadline_ms\" must be a positive number"
                in
                match (rewrite, deadline) with
                | Ok r, Ok d -> Ok (r, d)
                | Error m, _ | _, Error m -> Error m)
            | Some _ -> Error "\"opts\" must be an object"
          in
          match opts with
          | Error m -> bad m
          | Ok (rewrite, deadline_ms) ->
              Ok
                {
                  rq_id = id;
                  rq_sql = sql;
                  rq_rewrite = rewrite;
                  rq_deadline_ms = deadline_ms;
                })
      | Some _ -> bad "\"sql\" must be a string"
      | None -> bad "request object has no \"sql\" field")
  | Ok _ -> bad "request must be a JSON object"

(* --- responses ---------------------------------------------------------- *)

let outcome_to_json (o : Mvstore.Session.outcome) =
  match o with
  | Mvstore.Session.Msg s ->
      J.Obj [ ("type", J.Str "msg"); ("text", J.Str s) ]
  | Mvstore.Session.Plan s ->
      J.Obj [ ("type", J.Str "plan"); ("text", J.Str s) ]
  | Mvstore.Session.Table rel ->
      let cols =
        Array.to_list (Data.Relation.columns rel)
        |> List.map (fun c -> J.Str c)
      in
      let rows =
        List.map
          (fun row ->
            J.List (Array.to_list (Array.map value_to_json row)))
          (Data.Relation.rows rel)
      in
      J.Obj
        [ ("type", J.Str "table"); ("columns", J.List cols);
          ("rows", J.List rows) ]

let response_ok ?(degraded = []) ~id ~ms outcomes =
  J.Obj
    ([ ("id", id); ("ok", J.Bool true); ("ms", J.Float ms) ]
    @ (match degraded with
      | [] -> []
      | ds -> [ ("degraded", J.List (List.map (fun d -> J.Str d) ds)) ])
    @ [ ("results", J.List (List.map outcome_to_json outcomes)) ])

let response_error ~id e =
  J.Obj [ ("id", id); ("ok", J.Bool false); ("error", error_to_json e) ]

let decode_row j =
  match j with
  | J.List vs ->
      let arr = Array.of_list vs in
      let out = Array.make (Array.length arr) Data.Value.Null in
      let rec go i =
        if i >= Array.length arr then Ok out
        else
          match value_of_json arr.(i) with
          | Ok v ->
              out.(i) <- v;
              go (i + 1)
          | Error _ as e -> e
      in
      go 0
  | _ -> Error "row is not an array"

let decode_outcome j =
  match J.member "type" j with
  | Some (J.Str "msg") -> (
      match J.member "text" j with
      | Some (J.Str s) -> Ok (Msg s)
      | _ -> Error "msg outcome has no text")
  | Some (J.Str "plan") -> (
      match J.member "text" j with
      | Some (J.Str s) -> Ok (Plan s)
      | _ -> Error "plan outcome has no text")
  | Some (J.Str "table") -> (
      match (J.member "columns" j, J.member "rows" j) with
      | Some (J.List cols), Some (J.List rows) ->
          let col_names =
            List.map
              (function J.Str s -> Ok s | _ -> Error "bad column name")
              cols
          in
          if List.exists Result.is_error col_names then
            Error "bad column name"
          else
            let cols = List.map Result.get_ok col_names in
            let rec go acc = function
              | [] -> Ok (Table (cols, List.rev acc))
              | r :: rest -> (
                  match decode_row r with
                  | Ok row -> go (row :: acc) rest
                  | Error _ as e -> e)
            in
            go [] rows
      | _ -> Error "table outcome missing columns/rows")
  | _ -> Error "outcome has no recognized type"

let decode_error j =
  let str k = match J.member k j with Some (J.Str s) -> Some s | _ -> None in
  {
    we_code = Option.value ~default:"error" (str "code");
    we_msg = Option.value ~default:"" (str "msg");
    we_stage = str "stage";
    we_kind = str "kind";
    we_mv = str "mv";
    we_statement = str "statement";
    we_retry_after_ms =
      (match J.member "retry_after_ms" j with
      | Some (J.Int n) -> Some n
      | Some (J.Float x | J.Num x) -> Some (int_of_float x)
      | _ -> None);
  }

let response_of_line line =
  match J.of_string line with
  | Error msg -> Error ("response is not valid JSON: " ^ msg)
  | Ok obj -> (
      let id = Option.value ~default:J.Null (J.member "id" obj) in
      match J.member "ok" obj with
      | Some (J.Bool true) -> (
          let ms =
            match J.member "ms" obj with
            | Some (J.Float x | J.Num x) -> x
            | Some (J.Int n) -> float_of_int n
            | _ -> 0.
          in
          let degraded =
            match J.member "degraded" obj with
            | Some (J.List ds) ->
                List.filter_map
                  (function J.Str s -> Some s | _ -> None)
                  ds
            | _ -> []
          in
          match J.member "results" obj with
          | Some (J.List rs) ->
              let rec go acc = function
                | [] ->
                    Ok
                      (Reply
                         {
                           rp_id = id;
                           rp_ms = ms;
                           rp_results = List.rev acc;
                           rp_degraded = degraded;
                         })
                | r :: rest -> (
                    match decode_outcome r with
                    | Ok o -> go (o :: acc) rest
                    | Error _ as e -> e)
              in
              go [] rs
          | _ -> Error "ok response has no results array")
      | Some (J.Bool false) -> (
          match J.member "error" obj with
          | Some e -> Ok (Failed (id, decode_error e))
          | None -> Error "error response has no error object")
      | _ -> Error "response has no \"ok\" field")
