(** Bounded domain pool: [domains] OCaml 5 domains draining a waiting
    queue of at most [queue_depth] jobs.

    The bound is the backpressure mechanism — {!submit} never blocks and
    never queues unboundedly; when every worker is busy and the queue is
    full it returns [false] and the caller sheds load (the listener turns
    that into a typed [overloaded] wire error). A job that raises is
    contained: the exception is counted ([server.worker_errors]) and the
    worker keeps serving. *)

type t

(** [create ~domains ~queue_depth ()] spawns the worker domains
    immediately. [domains >= 1], [queue_depth >= 0] ([0] = reject whenever
    no worker is idle... strictly: whenever the queue cannot hold the
    job). *)
val create : domains:int -> queue_depth:int -> unit -> t

(** [submit t job] enqueues [job] unless the queue is full or the pool is
    shutting down; [true] iff accepted. *)
val submit : t -> (unit -> unit) -> bool

(** Jobs waiting (not yet picked up by a worker). *)
val queued : t -> int

(** Signal shutdown, wait for workers to finish the jobs already accepted,
    and join the domains. Idempotent. *)
val shutdown : t -> unit
