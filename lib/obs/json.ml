(* Hand-rolled JSON: flat scalars, escaped strings, no dependencies. The
   single JSON implementation shared by the metrics exporter and the bench
   harness, so BENCH_results.json and live `\metrics` dumps render through
   exactly the same code and schema conventions. *)

type t =
  | Null
  | Str of string
  | Num of float
  | Float of float
  | Int of int
  | Bool of bool
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Full-precision float rendering (the wire protocol round-trips values);
   always keeps a decimal point or exponent so a reader can tell a float
   from an integer. *)
let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    let s = Printf.sprintf "%.17g" x in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Num x ->
      Buffer.add_string buf
        (if Float.is_finite x then Printf.sprintf "%.4f" x else "null")
  | Float x -> Buffer.add_string buf (float_repr x)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          render buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          render buf (Str k);
          Buffer.add_string buf ": ";
          render buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  render buf t;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* UTF-8 encode one code point into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let next p =
  match peek p with
  | Some c ->
      p.pos <- p.pos + 1;
      c
  | None -> parse_error "unexpected end of input at offset %d" p.pos

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
        p.pos <- p.pos + 1;
        true
    | _ -> false
  do
    ()
  done

let expect p c =
  let got = next p in
  if got <> c then
    parse_error "expected '%c' but found '%c' at offset %d" c got (p.pos - 1)

let literal p word v =
  let n = String.length word in
  if
    p.pos + n <= String.length p.src && String.sub p.src p.pos n = word
  then begin
    p.pos <- p.pos + n;
    v
  end
  else parse_error "invalid literal at offset %d" p.pos

let hex4 p =
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = next p in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> parse_error "bad \\u escape at offset %d" (p.pos - 1)
    in
    v := (!v * 16) + d
  done;
  !v

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match next p with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        (match next p with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let cp = hex4 p in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* high surrogate: require the low half *)
              expect p '\\';
              expect p 'u';
              let lo = hex4 p in
              if lo < 0xDC00 || lo > 0xDFFF then
                parse_error "unpaired surrogate at offset %d" p.pos
              else
                add_utf8 buf
                  (0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00)))
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then
              parse_error "unpaired surrogate at offset %d" p.pos
            else add_utf8 buf cp
        | c -> parse_error "bad escape '\\%c' at offset %d" c (p.pos - 1));
        loop ())
    | c when Char.code c < 0x20 ->
        parse_error "unescaped control character at offset %d" (p.pos - 1)
    | c ->
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  if peek p = Some '-' then ignore (next p);
  let digits () =
    let n = ref 0 in
    while match peek p with Some '0' .. '9' -> true | _ -> false do
      ignore (next p);
      incr n
    done;
    if !n = 0 then parse_error "malformed number at offset %d" p.pos
  in
  digits ();
  if peek p = Some '.' then begin
    is_float := true;
    ignore (next p);
    digits ()
  end;
  (match peek p with
  | Some ('e' | 'E') ->
      is_float := true;
      ignore (next p);
      (match peek p with
      | Some ('+' | '-') -> ignore (next p)
      | _ -> ());
      digits ()
  | _ -> ());
  let s = String.sub p.src start (p.pos - start) in
  if !is_float then Float (float_of_string s)
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> Float (float_of_string s)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> parse_error "unexpected end of input at offset %d" p.pos
  | Some '{' ->
      ignore (next p);
      skip_ws p;
      if peek p = Some '}' then begin
        ignore (next p);
        Obj []
      end
      else
        let rec fields acc =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match next p with
          | ',' -> fields ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | c -> parse_error "expected ',' or '}' but found '%c'" c
        in
        fields []
  | Some '[' ->
      ignore (next p);
      skip_ws p;
      if peek p = Some ']' then begin
        ignore (next p);
        List []
      end
      else
        let rec elems acc =
          let v = parse_value p in
          skip_ws p;
          match next p with
          | ',' -> elems (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | c -> parse_error "expected ',' or ']' but found '%c'" c
        in
        elems []
  | Some '"' -> Str (parse_string p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> parse_error "unexpected character '%c' at offset %d" c p.pos

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
      else Ok v
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_file path t =
  let buf = Buffer.create 4096 in
  render buf t;
  Buffer.add_char buf '\n';
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))
