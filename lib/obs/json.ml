(* Hand-rolled JSON: flat scalars, escaped strings, no dependencies. The
   single JSON implementation shared by the metrics exporter and the bench
   harness, so BENCH_results.json and live `\metrics` dumps render through
   exactly the same code and schema conventions. *)

type t =
  | Str of string
  | Num of float
  | Int of int
  | Bool of bool
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render buf = function
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Num x ->
      Buffer.add_string buf
        (if Float.is_finite x then Printf.sprintf "%.4f" x else "null")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          render buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          render buf (Str k);
          Buffer.add_string buf ": ";
          render buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  render buf t;
  Buffer.contents buf

let to_file path t =
  let buf = Buffer.create 4096 in
  render buf t;
  Buffer.add_char buf '\n';
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))
