(** Process-wide metrics registry: named monotonic counters, gauges, and
    fixed-bucket latency histograms, cheap enough to leave on.

    A handle ([counter]/[gauge]/[histogram]) is interned by name once —
    typically at module initialization — and every update is a plain
    mutable store on the handle: no hashing, no allocation. Exporters walk
    the registry sorted by name, optionally filtered by a name prefix.

    The registry is deliberately global: the planning layers tick it
    unconditionally, so live sessions ([\metrics], [--metrics-out]) and the
    bench harness ([BENCH_results.json]) report through one schema.

    Safe for concurrent writers: counters, gauges and histogram buckets are
    atomic cells and interning/export is serialized on a registry mutex, so
    parallel server domains never tear an update — N domains doing K
    increments each always total N*K. *)

type counter
type gauge
type histogram

(** Interns (or returns the existing) metric of that name. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit

(** Atomic relative adjustment (e.g. active-connection counts: [+1.] on
    accept, [-1.] on close, correct under concurrency). *)
val gauge_add : gauge -> float -> unit

val gauge_value : gauge -> float

(** [bounds] are inclusive upper bucket bounds in milliseconds; the default
    spans ~10us to 1s plus an overflow bucket. Bounds are fixed at first
    interning. *)
val histogram : ?bounds:float array -> string -> histogram

(** Record one observation, in milliseconds. *)
val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

(** Per-bucket counts; the final entry is the overflow bucket. *)
val bucket_counts : histogram -> int array

(** Wall-clock milliseconds (for manual timing). *)
val now_ms : unit -> float

(** [time h f] runs [f] and records its wall-clock duration in [h] — also
    on exception, which is re-raised. *)
val time : histogram -> (unit -> 'a) -> 'a

(** Zero every registered metric (registrations and handles survive). *)
val reset : unit -> unit

(** The metrics object schema, shared with [BENCH_results.json]:
    [{"counters": {..}, "gauges": {..}, "histograms": {name: {"count",
    "sum_ms", "buckets": [{"le_ms", "count"}...], "overflow"}}}]. *)
val to_json : ?prefix:string -> unit -> Json.t

val to_text : ?prefix:string -> unit -> string

(** Write {!to_json} to a file. *)
val dump : ?prefix:string -> string -> unit
