(** Minimal JSON rendering (no parser, no dependencies). The bench harness
    and the metrics exporter share this module, so their output follows one
    schema convention: [Num] renders with four decimals (null when not
    finite), strings are escaped, objects preserve field order. *)

type t =
  | Str of string
  | Num of float
  | Int of int
  | Bool of bool
  | List of t list
  | Obj of (string * t) list

val render : Buffer.t -> t -> unit
val to_string : t -> string

(** Renders with a trailing newline. *)
val to_file : string -> t -> unit
