(** Minimal JSON rendering (no parser, no dependencies). The bench harness
    and the metrics exporter share this module, so their output follows one
    schema convention: [Num] renders with four decimals (null when not
    finite), strings are escaped, objects preserve field order. *)

type t =
  | Null
  | Str of string
  | Num of float   (** fixed four-decimal rendering (bench/metrics schema) *)
  | Float of float (** full-precision rendering (wire protocol round-trips) *)
  | Int of int
  | Bool of bool
  | List of t list
  | Obj of (string * t) list

val render : Buffer.t -> t -> unit
val to_string : t -> string

(** Renders with a trailing newline. *)
val to_file : string -> t -> unit

(** Recursive-descent parser for the same value type (the server wire
    protocol parses requests with it — no external JSON dependency).
    Numbers without a fraction or exponent that fit in an OCaml [int]
    parse as [Int]; all other numbers parse as [Float]. [\uXXXX] escapes
    decode to UTF-8 (surrogate pairs included). Trailing garbage after
    the top-level value is an error. *)
val of_string : string -> (t, string) result

(** Object-field lookup helper ([None] when not an object or absent). *)
val member : string -> t -> t option
