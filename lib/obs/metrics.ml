(* The process-wide metrics registry: named monotonic counters, gauges and
   fixed-bucket latency histograms.

   Hot-path discipline: a handle is interned once (usually at module
   initialization) and every update is a plain mutable-int/float store on
   the handle — no hashing, no allocation, no formatting. Export walks the
   registry and is the only place that allocates. The registry is global on
   purpose: the planning layers (navigator, match function, plan cache,
   executor) tick it unconditionally so that `\metrics`, `--metrics-out`
   and the bench all read the same numbers. *)

type counter = { c_name : string; mutable c_v : int }
type gauge = { g_name : string; mutable g_v : float }

type histogram = {
  h_name : string;
  h_bounds : float array;  (* inclusive upper bounds, milliseconds *)
  h_counts : int array;    (* length = Array.length h_bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;   (* milliseconds *)
}

(* Latency buckets in ms: ~10us .. 1s, then overflow. *)
let default_bounds =
  [| 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. |]

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_v = 0 } in
      Hashtbl.replace counters name c;
      c

let incr c = c.c_v <- c.c_v + 1
let add c n = c.c_v <- c.c_v + n
let counter_value c = c.c_v

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_v = 0. } in
      Hashtbl.replace gauges name g;
      g

let set g v = g.g_v <- v
let gauge_value g = g.g_v

let histogram ?(bounds = default_bounds) name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_bounds = bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_count = 0;
          h_sum = 0.;
        }
      in
      Hashtbl.replace histograms name h;
      h

let observe h ms =
  let n = Array.length h.h_bounds in
  let rec slot i = if i >= n || ms <= h.h_bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. ms

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let bucket_counts h = Array.copy h.h_counts

let now_ms () = Unix.gettimeofday () *. 1000.

let time h f =
  let t0 = now_ms () in
  match f () with
  | v ->
      observe h (now_ms () -. t0);
      v
  | exception e ->
      observe h (now_ms () -. t0);
      raise e

let reset () =
  Hashtbl.iter (fun _ c -> c.c_v <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_v <- 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_count <- 0;
      h.h_sum <- 0.)
    histograms

(* ---------------- export ---------------- *)

let selected ?(prefix = "") tbl =
  Hashtbl.fold
    (fun name v acc ->
      if String.starts_with ~prefix name then (name, v) :: acc else acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* The metrics JSON schema (shared verbatim by BENCH_results.json's
   "metrics" object and the `\metrics` / --metrics-out dumps):
   { "counters":   { name: int, ... },
     "gauges":     { name: num, ... },
     "histograms": { name: { "count": int, "sum_ms": num,
                             "buckets": [ { "le_ms": num, "count": int } ... ],
                             "overflow": int }, ... } } *)
let to_json ?prefix () =
  let hist_json h =
    Json.Obj
      [
        ("count", Json.Int h.h_count);
        ("sum_ms", Json.Num h.h_sum);
        ( "buckets",
          Json.List
            (List.mapi
               (fun i b ->
                 Json.Obj
                   [ ("le_ms", Json.Num b); ("count", Json.Int h.h_counts.(i)) ])
               (Array.to_list h.h_bounds)) );
        ("overflow", Json.Int h.h_counts.(Array.length h.h_bounds));
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (n, c) -> (n, Json.Int c.c_v)) (selected ?prefix counters)) );
      ( "gauges",
        Json.Obj
          (List.map (fun (n, g) -> (n, Json.Num g.g_v)) (selected ?prefix gauges)) );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, h) -> (n, hist_json h)) (selected ?prefix histograms)) );
    ]

let to_text ?prefix () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (n, c) -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" n c.c_v))
    (selected ?prefix counters);
  List.iter
    (fun (n, g) -> Buffer.add_string buf (Printf.sprintf "%-40s %g\n" n g.g_v))
    (selected ?prefix gauges);
  List.iter
    (fun (n, h) ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s count=%d sum=%.3fms avg=%.3fms\n" n h.h_count
           h.h_sum
           (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count)))
    (selected ?prefix histograms);
  Buffer.contents buf

let dump ?prefix path = Json.to_file path (to_json ?prefix ())
