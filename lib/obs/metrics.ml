(* The process-wide metrics registry: named monotonic counters, gauges and
   fixed-bucket latency histograms.

   Hot-path discipline: a handle is interned once (usually at module
   initialization) and every update is one (now atomic) store on the
   handle — no hashing, no allocation, no formatting, no lock. Export
   walks the registry and is the only place that allocates. The registry
   is global on purpose: the planning layers (navigator, match function,
   plan cache, executor) tick it unconditionally so that `\metrics`,
   `--metrics-out` and the bench all read the same numbers.

   Concurrency: the server runs query sessions on parallel domains, all
   ticking the same handles. Counters and gauges are Atomic cells
   (fetch-and-add / CAS), histogram buckets are per-bucket Atomic cells,
   and the interning tables are guarded by one registry mutex — so totals
   always add up: N domains doing K increments each always read N*K, never
   a torn in-between. Exports are taken without stopping writers; a
   histogram snapshot can be mid-observation (count ahead of sum by one
   in-flight update) but individual cells are never corrupt. *)

type counter = { c_name : string; c_v : int Atomic.t }
type gauge = { g_name : string; g_v : float Atomic.t }

type histogram = {
  h_name : string;
  h_bounds : float array;           (* inclusive upper bounds, milliseconds *)
  h_counts : int Atomic.t array;    (* length = Array.length h_bounds + 1 (overflow) *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;           (* milliseconds *)
}

(* Latency buckets in ms: ~10us .. 1s, then overflow. *)
let default_bounds =
  [| 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. |]

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

(* Guards the interning tables (lookup-or-create and export walks), never
   the handles themselves — updates through a handle are lock-free. *)
let registry = Mutex.create ()

let with_registry f = Mutex.protect registry f

let counter name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_v = Atomic.make 0 } in
      Hashtbl.replace counters name c;
      c

let incr c = ignore (Atomic.fetch_and_add c.c_v 1)
let add c n = ignore (Atomic.fetch_and_add c.c_v n)
let counter_value c = Atomic.get c.c_v

let gauge name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_v = Atomic.make 0. } in
      Hashtbl.replace gauges name g;
      g

let set g v = Atomic.set g.g_v v
let gauge_value g = Atomic.get g.g_v

(* CAS add for float cells (no float fetch_and_add in the stdlib). *)
let rec atomic_addf cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. x)) then atomic_addf cell x

let gauge_add g x = atomic_addf g.g_v x

let histogram ?(bounds = default_bounds) name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_bounds = bounds;
          h_counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.;
        }
      in
      Hashtbl.replace histograms name h;
      h

let observe h ms =
  let n = Array.length h.h_bounds in
  let rec slot i = if i >= n || ms <= h.h_bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  ignore (Atomic.fetch_and_add h.h_counts.(i) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  atomic_addf h.h_sum ms

let hist_count h = Atomic.get h.h_count
let hist_sum h = Atomic.get h.h_sum
let bucket_counts h = Array.map Atomic.get h.h_counts

let now_ms () = Unix.gettimeofday () *. 1000.

let time h f =
  let t0 = now_ms () in
  match f () with
  | v ->
      observe h (now_ms () -. t0);
      v
  | exception e ->
      observe h (now_ms () -. t0);
      raise e

let reset () =
  with_registry @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.c_v 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.g_v 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun cell -> Atomic.set cell 0) h.h_counts;
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0.)
    histograms

(* ---------------- export ---------------- *)

let selected ?(prefix = "") tbl =
  with_registry (fun () ->
      Hashtbl.fold
        (fun name v acc ->
          if String.starts_with ~prefix name then (name, v) :: acc else acc)
        tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* The metrics JSON schema (shared verbatim by BENCH_results.json's
   "metrics" object and the `\metrics` / --metrics-out dumps):
   { "counters":   { name: int, ... },
     "gauges":     { name: num, ... },
     "histograms": { name: { "count": int, "sum_ms": num,
                             "buckets": [ { "le_ms": num, "count": int } ... ],
                             "overflow": int }, ... } } *)
let to_json ?prefix () =
  let hist_json h =
    Json.Obj
      [
        ("count", Json.Int (Atomic.get h.h_count));
        ("sum_ms", Json.Num (Atomic.get h.h_sum));
        ( "buckets",
          Json.List
            (List.mapi
               (fun i b ->
                 Json.Obj
                   [
                     ("le_ms", Json.Num b);
                     ("count", Json.Int (Atomic.get h.h_counts.(i)));
                   ])
               (Array.to_list h.h_bounds)) );
        ("overflow", Json.Int (Atomic.get h.h_counts.(Array.length h.h_bounds)));
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map
             (fun (n, c) -> (n, Json.Int (Atomic.get c.c_v)))
             (selected ?prefix counters)) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (n, g) -> (n, Json.Num (Atomic.get g.g_v)))
             (selected ?prefix gauges)) );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, h) -> (n, hist_json h)) (selected ?prefix histograms)) );
    ]

let to_text ?prefix () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (n, c) ->
      Buffer.add_string buf (Printf.sprintf "%-40s %d\n" n (Atomic.get c.c_v)))
    (selected ?prefix counters);
  List.iter
    (fun (n, g) ->
      Buffer.add_string buf (Printf.sprintf "%-40s %g\n" n (Atomic.get g.g_v)))
    (selected ?prefix gauges);
  List.iter
    (fun (n, h) ->
      let count = Atomic.get h.h_count and sum = Atomic.get h.h_sum in
      Buffer.add_string buf
        (Printf.sprintf "%-40s count=%d sum=%.3fms avg=%.3fms\n" n count sum
           (if count = 0 then 0. else sum /. float_of_int count)))
    (selected ?prefix histograms);
  Buffer.contents buf

let dump ?prefix path = Json.to_file path (to_json ?prefix ())
