(** Structured planning traces: a span tree per planning attempt
    (navigate -> candidate -> match pattern -> compensation -> translate ->
    cost) where every rejection carries a typed reason.

    Traces are threaded as [t option]; [None] (production) costs a pattern
    match per hook and allocates nothing. Sessions keep recent traces in a
    {!ring}; [EXPLAIN REWRITE VERBOSE] and astql [\trace show] render
    them. *)

(** Why a candidate pair, match pattern, or whole summary-table candidate
    was rejected — the machine-readable counterparts of the match
    conditions of paper sections 4.1-4.2 and 5.1 plus the planner-level
    verdicts (index filter, quarantine, cost). *)
type reason =
  | Child_mismatch              (** no child pairing exists (4.1.1 cond. 1) *)
  | Outputs_not_covered         (** interior match can't replace the box *)
  | Distinct_incompatible of string  (** DISTINCT asymmetry (footnote 2) *)
  | Duplicate_loss of string    (** rejoin/extras would lose duplicate rows *)
  | Extra_not_lossless          (** extra subsumer child not RI-lossless *)
  | Summary_pred_unmatched      (** summary filtered rows away (cond. 2) *)
  | Pred_not_derivable of string   (** conditions 3/5 *)
  | Output_not_derivable        (** condition 4, applied lazily *)
  | Grouping_not_translatable   (** grouping column lost (4.1.2) *)
  | Agg_not_preserved           (** aggregate argument lost (4.1.2) *)
  | Agg_rule_inapplicable of string  (** derivation rules (a)-(g) all fail *)
  | No_covering_cuboid          (** 5.1/5.2 cuboid selection failed *)
  | Cost_not_better of float * float  (** candidate cost, current cost *)
  | Filtered_by_index           (** plancache candidate filter *)
  | Quarantined                 (** guard quarantine for this fingerprint *)
  | Contained_error of string   (** sandboxed exception (lib/guard) *)
  | Ir_invalid of string        (** static IR validation failed (lib/lint) *)
  | Unsupported of string       (** a shape the matcher deliberately rejects *)
  | Prove_unknown of string     (** static prover could not certify a rewrite *)

(** Stable kebab-case identifier, e.g. ["predicate-not-derivable"]. *)
val reason_code : reason -> string

(** Human-readable sentence (what EXPLAIN prints). *)
val describe : reason -> string

type outcome = Step | Accepted of string | Rejected of reason

type span = {
  sp_kind : string;             (** e.g. "navigate", "candidate", "pattern" *)
  sp_label : string;
  mutable sp_ms : float;        (** 0 for leaf events *)
  mutable sp_outcome : outcome;
  mutable sp_children : span list;  (** newest first *)
}

type t

val create : unit -> t

(** Run [f] inside a new child span of the innermost open span; the span's
    wall-clock duration is recorded, also on exception. [result] maps the
    value of [f] to the span's outcome. With [None] as the trace this is
    exactly [f ()]. *)
val with_span :
  t option -> kind:string -> label:string -> ?result:('a -> outcome) ->
  (unit -> 'a) -> 'a

(** Leaf spans. Consecutive identical leaves under one parent are deduped. *)
val event : t option -> kind:string -> label:string -> unit

val accept : t option -> kind:string -> label:string -> string -> unit
val reject : t option -> kind:string -> label:string -> reason -> unit

(** Top-level spans, oldest first. *)
val roots : t -> span list

(** Every typed rejection in the trace, pre-order. *)
val rejections : t -> reason list

(** Indented tree rendering. *)
val render : t -> string

(** Bounded buffer of recent labelled traces (per session). *)
type ring

val ring : ?capacity:int -> unit -> ring
val push : ring -> string -> t -> unit

(** Oldest first. *)
val items : ring -> (string * t) list

val ring_length : ring -> int
val clear : ring -> unit
