(* Structured planning traces: a tree of spans recording one planning
   attempt — navigate -> candidate -> match pattern -> compensation ->
   translate -> cost — where every rejection carries a typed reason.

   A trace is threaded as a [t option]: [None] is the always-on production
   mode and costs nothing (every hook is a match on [None]); [Some t]
   records spans with wall-clock timings. Sessions keep recent traces in a
   ring buffer (astql \trace show); EXPLAIN REWRITE VERBOSE renders one. *)

(* Why a candidate pair, pattern, or whole summary table was rejected.
   These are the machine-readable counterparts of the conditions in paper
   sections 4.1-4.2 and 5.1: every [None] in the match function's rejection
   paths maps to exactly one constructor, so EXPLAIN and the trace agree. *)
type reason =
  | Child_mismatch
  | Outputs_not_covered
  | Distinct_incompatible of string
  | Duplicate_loss of string
  | Extra_not_lossless
  | Summary_pred_unmatched
  | Pred_not_derivable of string
  | Output_not_derivable
  | Grouping_not_translatable
  | Agg_not_preserved
  | Agg_rule_inapplicable of string
  | No_covering_cuboid
  | Cost_not_better of float * float
  | Filtered_by_index
  | Quarantined
  | Contained_error of string
  | Ir_invalid of string
  | Unsupported of string
  | Prove_unknown of string

let reason_code = function
  | Child_mismatch -> "child-mismatch"
  | Outputs_not_covered -> "outputs-not-covered"
  | Distinct_incompatible _ -> "distinct-incompatible"
  | Duplicate_loss _ -> "duplicate-loss"
  | Extra_not_lossless -> "extra-not-lossless"
  | Summary_pred_unmatched -> "summary-pred-unmatched"
  | Pred_not_derivable _ -> "predicate-not-derivable"
  | Output_not_derivable -> "output-not-derivable"
  | Grouping_not_translatable -> "grouping-not-translatable"
  | Agg_not_preserved -> "aggregate-not-preserved"
  | Agg_rule_inapplicable _ -> "aggregate-rule-inapplicable"
  | No_covering_cuboid -> "no-covering-cuboid"
  | Cost_not_better _ -> "cost-not-better"
  | Filtered_by_index -> "filtered-by-index"
  | Quarantined -> "quarantined"
  | Contained_error _ -> "contained-error"
  | Ir_invalid _ -> "invalid-ir"
  | Unsupported _ -> "unsupported-shape"
  | Prove_unknown _ -> "proof-unknown"

let describe = function
  | Child_mismatch -> "no pairing of query children with summary children matches"
  | Outputs_not_covered ->
      "the match does not reproduce every output column of the replaced box"
  | Distinct_incompatible d -> d
  | Duplicate_loss d -> d
  | Extra_not_lossless ->
      "an extra summary-side join could not be proven lossless (no RI key \
       join, or extra predicates on the extra table)"
  | Summary_pred_unmatched ->
      "a summary predicate has no matching query predicate (the summary \
       filtered away rows the query needs)"
  | Pred_not_derivable p ->
      Printf.sprintf
        "query predicate %s is not derivable from the summary's outputs" p
  | Output_not_derivable ->
      "none of the query's output columns are derivable from the summary"
  | Grouping_not_translatable ->
      "a grouping column of the query cannot be translated into the \
       summary's context"
  | Agg_not_preserved ->
      "an aggregate argument of the query is not preserved by the summary"
  | Agg_rule_inapplicable a ->
      Printf.sprintf "no aggregate derivation rule (a)-(g) applies to %s" a
  | No_covering_cuboid ->
      "no summary grouping set covers the query's grouping columns, \
       pulled-up predicates and aggregates simultaneously"
  | Cost_not_better (cand, cur) ->
      Printf.sprintf
        "estimated cost %.0f does not beat the current plan's %.0f" cand cur
  | Filtered_by_index ->
      "filtered by the candidate index (footprint or eligibility bits)"
  | Quarantined -> "held in quarantine for this query fingerprint"
  | Contained_error e -> Printf.sprintf "contained error: %s" e
  | Ir_invalid v ->
      Printf.sprintf "static IR validation failed: %s" v
  | Unsupported d -> d
  | Prove_unknown w ->
      Printf.sprintf "static proof unavailable: %s" w

(* ---------------- spans ---------------- *)

type outcome = Step | Accepted of string | Rejected of reason

type span = {
  sp_kind : string;
  sp_label : string;
  mutable sp_ms : float;
  mutable sp_outcome : outcome;
  mutable sp_children : span list;  (* newest first; render reverses *)
}

type t = {
  mutable tr_roots : span list;  (* newest first *)
  mutable tr_stack : span list;  (* innermost open span first *)
}

let create () = { tr_roots = []; tr_stack = [] }

let attach tr sp =
  match tr.tr_stack with
  | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
  | [] -> tr.tr_roots <- sp :: tr.tr_roots

let with_span trace ~kind ~label ?result f =
  match trace with
  | None -> f ()
  | Some tr ->
      let sp =
        { sp_kind = kind; sp_label = label; sp_ms = 0.; sp_outcome = Step;
          sp_children = [] }
      in
      attach tr sp;
      tr.tr_stack <- sp :: tr.tr_stack;
      let t0 = Unix.gettimeofday () in
      let finish () =
        sp.sp_ms <- (Unix.gettimeofday () -. t0) *. 1000.;
        tr.tr_stack <- List.tl tr.tr_stack
      in
      let v = try f () with e -> finish (); raise e in
      (match result with Some r -> sp.sp_outcome <- r v | None -> ());
      finish ();
      v

let leaf trace ~kind ~label outcome =
  match trace with
  | None -> ()
  | Some tr ->
      (* dedup: the match function legitimately re-derives the same verdict
         for sibling attempts; an identical leaf under the same parent says
         nothing new *)
      let dup =
        let head =
          match tr.tr_stack with
          | parent :: _ -> parent.sp_children
          | [] -> tr.tr_roots
        in
        match head with
        | s :: _ ->
            s.sp_kind = kind && s.sp_label = label && s.sp_outcome = outcome
            && s.sp_children = []
        | [] -> false
      in
      if not dup then
        attach tr
          { sp_kind = kind; sp_label = label; sp_ms = 0.; sp_outcome = outcome;
            sp_children = [] }

let event trace ~kind ~label = leaf trace ~kind ~label Step
let accept trace ~kind ~label detail = leaf trace ~kind ~label (Accepted detail)
let reject trace ~kind ~label reason = leaf trace ~kind ~label (Rejected reason)

let roots tr = List.rev tr.tr_roots

let rejections tr =
  let rec go acc sp =
    let acc =
      match sp.sp_outcome with Rejected r -> r :: acc | Step | Accepted _ -> acc
    in
    List.fold_left go acc (List.rev sp.sp_children)
  in
  List.rev (List.fold_left go [] (roots tr))

let render tr =
  let buf = Buffer.create 512 in
  let rec go depth sp =
    Buffer.add_string buf (String.make (depth * 2) ' ');
    let head =
      if sp.sp_label = "" then sp.sp_kind
      else Printf.sprintf "%s %s" sp.sp_kind sp.sp_label
    in
    Buffer.add_string buf head;
    (match sp.sp_outcome with
    | Step -> ()
    | Accepted "" -> Buffer.add_string buf ": accepted"
    | Accepted d -> Buffer.add_string buf (Printf.sprintf ": accepted (%s)" d)
    | Rejected r ->
        Buffer.add_string buf
          (Printf.sprintf ": rejected — %s [%s]" (describe r) (reason_code r)));
    if sp.sp_ms > 0. then
      Buffer.add_string buf (Printf.sprintf "  (%.2fms)" sp.sp_ms);
    Buffer.add_char buf '\n';
    List.iter (go (depth + 1)) (List.rev sp.sp_children)
  in
  List.iter (go 0) (roots tr);
  Buffer.contents buf

(* ---------------- per-session ring buffer ---------------- *)

type ring = {
  rg_capacity : int;
  mutable rg_items : (string * t) list;  (* newest first *)
}

let ring ?(capacity = 16) () = { rg_capacity = max 1 capacity; rg_items = [] }

let push rg label tr =
  let items = (label, tr) :: rg.rg_items in
  rg.rg_items <-
    (if List.length items > rg.rg_capacity then
       List.filteri (fun i _ -> i < rg.rg_capacity) items
     else items)

let items rg = List.rev rg.rg_items
let ring_length rg = List.length rg.rg_items
let clear rg = rg.rg_items <- []
