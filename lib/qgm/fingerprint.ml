module B = Box
module G = Graph

let norm = String.lowercase_ascii

(* Render an expression after alpha-renaming its column references through
   [ren] (quantifier id -> positional index). Renaming happens *before*
   Expr.normalize so that the commutative-operand sort works on canonical
   indices rather than builder-assigned quantifier ids. *)
let render_expr ren e =
  e
  |> Expr.map_col (fun { B.quant; col } -> (ren quant, norm col))
  |> Expr.normalize
  |> Expr.to_string (fun (i, c) -> Printf.sprintf "q%d.%s" i c)

let canonical g =
  let memo = Hashtbl.create 16 in
  let rec ser id =
    match Hashtbl.find_opt memo id with
    | Some s -> s
    | None ->
        (* guard against (invalid) cycles: a box being serialized renders
           as a back-reference rather than recursing forever *)
        Hashtbl.replace memo id (Printf.sprintf "(cycle %d)" id);
        let s = ser_body id in
        Hashtbl.replace memo id s;
        s
  and ser_body id =
    match G.box_opt g id with
    | None -> Printf.sprintf "(dangling %d)" id
    | Some b -> (
        match b.B.body with
        | B.Base { bt_table; bt_cols } ->
            Printf.sprintf "(base %s (%s))" (norm bt_table)
              (String.concat " " (List.map norm bt_cols))
        | B.Select s ->
            let qix = List.mapi (fun i q -> (q.B.q_id, i)) s.B.sel_quants in
            let ren qid = Option.value ~default:(-1) (List.assoc_opt qid qix) in
            let quants =
              List.map
                (fun q ->
                  Printf.sprintf "(%s %s)"
                    (match q.B.q_kind with B.Foreach -> "F" | B.Scalar -> "S")
                    (ser q.B.q_box))
                s.B.sel_quants
            in
            let preds =
              List.sort compare (List.map (render_expr ren) s.B.sel_preds)
            in
            let outs =
              List.map
                (fun (n, e) -> Printf.sprintf "%s=%s" n (render_expr ren e))
                s.B.sel_outs
            in
            Printf.sprintf "(select%s (q %s) (p %s) (o %s))"
              (if s.B.sel_distinct then "-distinct" else "")
              (String.concat " " quants)
              (String.concat " " preds)
              (String.concat " " outs)
        | B.Group grp ->
            let keys =
              match grp.B.grp_grouping with
              | B.Simple ks -> Printf.sprintf "(simple %s)" (String.concat " " (List.map norm ks))
              | B.Gsets sets ->
                  Printf.sprintf "(gsets %s)"
                    (String.concat " "
                       (List.map
                          (fun s ->
                            "(" ^ String.concat " " (List.map norm s) ^ ")")
                          sets))
            in
            let aggs =
              List.map
                (fun (n, { B.agg; arg }) ->
                  Printf.sprintf "%s=%s%s(%s)" n
                    (Expr.agg_fn_to_string agg.Expr.fn)
                    (if agg.Expr.distinct then "-distinct" else "")
                    (match (agg.Expr.fn, arg) with
                    | Expr.Count_star, _ -> "*"
                    | _, Some a -> norm a
                    | _, None -> "?"))
                grp.B.grp_aggs
            in
            Printf.sprintf "(group (%s %s) %s (a %s))"
              (match grp.B.grp_quant.B.q_kind with
              | B.Foreach -> "F"
              | B.Scalar -> "S")
              (ser grp.B.grp_quant.B.q_box)
              keys
              (String.concat " " aggs)
        | B.Union u ->
            let quants = List.map (fun q -> ser q.B.q_box) u.B.un_quants in
            Printf.sprintf "(union%s (cols %s) (q %s))"
              (if u.B.un_all then "-all" else "")
              (String.concat " " u.B.un_cols)
              (String.concat " " quants))
  in
  let body = ser (G.root g) in
  let pres = G.presentation g in
  let order =
    List.map
      (fun (c, asc) -> Printf.sprintf "%s:%s" (norm c) (if asc then "a" else "d"))
      pres.G.order_by
  in
  Printf.sprintf "%s (pres (order %s) (limit %s))" body
    (String.concat " " order)
    (match pres.G.limit with Some n -> string_of_int n | None -> "-")

let of_graph g = Digest.to_hex (Digest.string (canonical g))
