(** Canonical QGM fingerprints for plan caching.

    Two graphs with the same fingerprint must be plan-interchangeable: a
    rewrite chosen for one is a correct plan for the other, producing the
    same output columns in the same order. The canonical form therefore
    alpha-renames quantifiers (per-box positional indices, so builder
    counters never leak into the key), normalizes and *sorts* predicates
    (WHERE is an order-free conjunction), and keeps everything whose order
    is observable — output columns, grouping keys, UNION branches and the
    presentation (ORDER BY / LIMIT) — exactly as written. Table and column
    *references* are case-folded (the catalog is case-insensitive) while
    output display names are preserved verbatim. *)

(** The canonical serialized form (stable across processes; useful for
    debugging cache behaviour). *)
val canonical : Graph.t -> string

(** MD5 hex digest of {!canonical} — the plan-cache key. *)
val of_graph : Graph.t -> string
