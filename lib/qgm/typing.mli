(** Lightweight output-type inference for QGM graphs.

    Used to register materialized summary tables in the catalog with
    sensible column types. Falls back to [Tfloat] for arithmetic over mixed
    numerics and to [Tstr] when nothing better is known. *)

val infer_outputs : Catalog.t -> Graph.t -> (string * Data.Value.ty) list

(** Type of one output column of a box. Lenient: unknown tables, columns
    or boxes come back as [Tstr]. *)
val col_type : Catalog.t -> Graph.t -> Box.box_id -> string -> Data.Value.ty

(** Type of an expression evaluated in a box that declares [quants].
    Same leniency as {!col_type}; used by the static validator to flag
    predicates that are definitely non-boolean. *)
val expr_type :
  Catalog.t -> Graph.t -> Box.quant list -> Box.qref Expr.t -> Data.Value.ty
