exception Sem_error of string

let err fmt = Format.kasprintf (fun s -> raise (Sem_error s)) fmt

(* Re-raise semantic errors from a nested block prefixed with the subquery
   it happened in, so "unknown column" names the right scope; nesting
   chains the contexts outermost-first. *)
let in_context ctx f =
  try f () with Sem_error m -> err "in %s: %s" ctx m

let norm = String.lowercase_ascii

module A = Sqlsyn.Ast

type binding = { b_name : string; b_quant : Box.quant; b_cols : string list }

type build_state = {
  mutable g : Graph.t;
  cat : Catalog.t;
  mutable base_cache : (string * Box.box_id) list; (* shared base boxes *)
}

let new_box st body =
  let g, id = Graph.add_box st.g body in
  st.g <- g;
  id

let new_quant st box_id kind =
  let g, q = Graph.fresh_quant st.g box_id kind in
  st.g <- g;
  q

let base_box st table =
  match List.assoc_opt (norm table) st.base_cache with
  | Some id -> id
  | None ->
      let tbl =
        match Catalog.find_table st.cat table with
        | Some t -> t
        | None -> err "unknown table %s" table
      in
      let id =
        new_box st
          (Box.Base { bt_table = tbl.Catalog.tbl_name; bt_cols = Catalog.column_names tbl })
      in
      st.base_cache <- (norm table, id) :: st.base_cache;
      id

(* Unique output-name generation. *)
let uniquify taken proposal =
  let taken = List.map norm taken in
  if not (List.mem (norm proposal) taken) then proposal
  else
    let rec try_n i =
      let cand = Printf.sprintf "%s_%d" proposal i in
      if List.mem (norm cand) taken then try_n (i + 1) else cand
    in
    try_n 1

(* ------------------------------------------------------------------ *)
(* Expression resolution                                               *)
(* ------------------------------------------------------------------ *)

(* Resolution happens within one query block. Scalar subqueries create
   additional scalar quantifiers collected in [extra_quants]. *)
type resolver = {
  st : build_state;
  bindings : binding list;
  mutable extra_quants : Box.quant list;
}

let find_binding r qual =
  match
    List.filter (fun b -> norm b.b_name = norm qual) r.bindings
  with
  | [ b ] -> b
  | [] -> err "unknown table or alias %s (correlated references are not supported)" qual
  | _ -> err "ambiguous table or alias %s" qual

let resolve_col r qual col =
  match qual with
  | Some q ->
      let b = find_binding r q in
      if List.exists (fun c -> norm c = norm col) b.b_cols then
        Expr.Col { Box.quant = b.b_quant.Box.q_id; col }
      else err "column %s not found in %s" col q
  | None -> (
      let hits =
        List.filter
          (fun b -> List.exists (fun c -> norm c = norm col) b.b_cols)
          r.bindings
      in
      match hits with
      | [ b ] -> Expr.Col { Box.quant = b.b_quant.Box.q_id; col }
      | [] ->
          err "unknown column %s (correlated references are not supported)" col
      | _ -> err "ambiguous column %s" col)

let rec resolve r (e : A.expr) : Box.qref Expr.t =
  match e with
  | A.Lit v -> Expr.Const v
  | A.Ref (qual, col) -> resolve_col r qual col
  | A.Unop (op, e) -> Expr.Unop (op, resolve r e)
  | A.Binop (op, a, b) -> Expr.Binop (op, resolve r a, resolve r b)
  | A.Fncall (f, args) -> Expr.Fncall (f, List.map (resolve r) args)
  | A.Agg (name, distinct, arg) ->
      let fn =
        match (name, arg) with
        | A.Count, None -> Expr.Count_star
        | A.Count, Some _ -> Expr.Count
        | A.Sum, _ -> Expr.Sum
        | A.Avg, _ -> Expr.Avg
        | A.Min, _ -> Expr.Min
        | A.Max, _ -> Expr.Max
      in
      Expr.Agg ({ Expr.fn; distinct }, Option.map (resolve r) arg)
  | A.Is_null (e, pos) -> Expr.Is_null (resolve r e, pos)
  | A.Between (e, lo, hi) ->
      let e' = resolve r e in
      Expr.Binop
        ( "AND",
          Expr.Binop (">=", e', resolve r lo),
          Expr.Binop ("<=", e', resolve r hi) )
  | A.In_list (e, items, positive) ->
      let e' = resolve r e in
      let eqs =
        List.map (fun it -> Expr.Binop ("=", e', resolve r it)) items
      in
      let ored =
        match eqs with
        | [] -> err "empty IN list"
        | first :: rest ->
            List.fold_left (fun acc x -> Expr.Binop ("OR", acc, x)) first rest
      in
      if positive then ored else Expr.Unop ("NOT", ored)
  | A.Case (arms, els) ->
      Expr.Case
        ( List.map (fun (c, v) -> (resolve r c, resolve r v)) arms,
          Option.map (resolve r) els )
  | A.Scalar_sub q ->
      let sub_root =
        in_context "scalar subquery" (fun () -> build_block r.st q ~top:false)
      in
      let cols = Box.output_cols (Graph.box r.st.g sub_root) in
      let col =
        match cols with
        | [ c ] -> c
        | _ -> err "scalar subquery must return exactly one column"
      in
      let quant = new_quant r.st sub_root Box.Scalar in
      r.extra_quants <- r.extra_quants @ [ quant ];
      Expr.Col { Box.quant = quant.Box.q_id; col }

and split_conjuncts e =
  match e with
  | Expr.Binop ("AND", a, b) -> split_conjuncts a @ split_conjuncts b
  | e -> [ e ]

(* ------------------------------------------------------------------ *)
(* Grouping canonicalization (section 5)                               *)
(* ------------------------------------------------------------------ *)

(* Expand the GROUP BY item list into canonical grouping sets over resolved
   expressions: the cross product of each item's set list, per SQL. *)
and canonical_grouping_sets r items =
  let expand_item = function
    | A.G_expr e -> [ [ resolve r e ] ]
    | A.G_rollup es ->
        let es = List.map (resolve r) es in
        let rec prefixes = function
          | [] -> [ [] ]
          | x :: rest -> (x :: rest) :: prefixes rest
        in
        prefixes (List.rev es) |> List.map List.rev |> fun l ->
        (* prefixes of es, longest first, ending with [] *)
        List.sort (fun a b -> compare (List.length b) (List.length a)) l
    | A.G_cube es ->
        let es = List.map (resolve r) es in
        let rec subsets = function
          | [] -> [ [] ]
          | x :: rest ->
              let s = subsets rest in
              List.map (fun t -> x :: t) s @ s
        in
        subsets es
    | A.G_sets sets -> List.map (List.map (resolve r)) sets
  in
  let cross acc item_sets =
    List.concat_map (fun a -> List.map (fun s -> a @ s) item_sets) acc
  in
  let sets = List.fold_left cross [ [] ] (List.map expand_item items) in
  (* Dedup exprs within a set and duplicate sets (by normalized form). *)
  let dedup_exprs set =
    let rec go acc = function
      | [] -> List.rev acc
      | e :: rest ->
          if List.exists (Expr.equal_norm e) acc then go acc rest
          else go (e :: acc) rest
    in
    go [] set
  in
  let sets = List.map dedup_exprs sets in
  let rec dedup_sets acc = function
    | [] -> List.rev acc
    | s :: rest ->
        let key s = List.map Expr.normalize s in
        if List.exists (fun s' -> key s' = key s) acc then dedup_sets acc rest
        else dedup_sets (s :: acc) rest
  in
  dedup_sets [] sets

(* ------------------------------------------------------------------ *)
(* Block construction                                                  *)
(* ------------------------------------------------------------------ *)

and output_name_of_item taken i (it : A.select_item) resolved =
  let proposal =
    match it.A.item_alias with
    | Some a -> a
    | None -> (
        match resolved with
        | Expr.Col { Box.col; _ } -> col
        | Expr.Agg ({ Expr.fn; _ }, _) ->
            String.lowercase_ascii (Expr.agg_fn_to_string fn)
        | _ -> Printf.sprintf "c%d" (i + 1))
  in
  uniquify taken proposal

and build_block st (q : A.query) ~top : Box.box_id =
  let head = build_plain_block st { q with A.unions = [] } ~top in
  (* UNION chains fold left-associatively; each connector decides whether
     that step eliminates duplicates *)
  List.fold_left
    (fun acc (all, bq) ->
      let branch = build_block st bq ~top:false in
      let head_cols = Box.output_cols (Graph.box st.g acc) in
      let branch_cols = Box.output_cols (Graph.box st.g branch) in
      if List.length head_cols <> List.length branch_cols then
        err "UNION branches have different numbers of columns (%d vs %d)"
          (List.length head_cols) (List.length branch_cols);
      let qa = new_quant st acc Box.Foreach in
      let qb = new_quant st branch Box.Foreach in
      new_box st
        (Box.Union { un_quants = [ qa; qb ]; un_all = all; un_cols = head_cols }))
    head q.A.unions

and build_plain_block st (q : A.query) ~top : Box.box_id =
  ignore top;
  if q.A.from = [] then err "FROM clause is required";
  (* 1. children and bindings *)
  let bindings =
    List.map
      (fun item ->
        match item with
        | A.From_table (t, alias) ->
            let id = base_box st t in
            let cols =
              match Graph.box st.g id with
              | { Box.body = Box.Base { bt_cols; _ }; _ } -> bt_cols
              | _ -> assert false
            in
            let quant = new_quant st id Box.Foreach in
            { b_name = Option.value ~default:t alias; b_quant = quant; b_cols = cols }
        | A.From_sub (sub, alias) ->
            let sub_root =
              in_context
                (Printf.sprintf "subquery %s" alias)
                (fun () -> build_block st sub ~top:false)
            in
            let cols = Box.output_cols (Graph.box st.g sub_root) in
            let quant = new_quant st sub_root Box.Foreach in
            { b_name = alias; b_quant = quant; b_cols = cols })
      q.A.from
  in
  let dup_names =
    let names = List.map (fun b -> norm b.b_name) bindings in
    List.length (List.sort_uniq compare names) <> List.length names
  in
  if dup_names then err "duplicate table name or alias in FROM";
  let r = { st; bindings; extra_quants = [] } in
  (* 2. WHERE *)
  let where_preds =
    match q.A.where with
    | None -> []
    | Some w ->
        let p = resolve r w in
        if Expr.contains_agg p then err "aggregates are not allowed in WHERE";
        split_conjuncts p
  in
  (* 3. select items *)
  let star_items =
    if q.A.select_star then
      List.concat_map
        (fun b ->
          List.map
            (fun c ->
              {
                A.item_expr = A.Ref (Some b.b_name, c);
                item_alias = Some c;
              })
            b.b_cols)
        bindings
    else q.A.select
  in
  let resolved_items = List.map (fun it -> (it, resolve r it.A.item_expr)) star_items in
  let having = Option.map (resolve r) q.A.having in
  let gsets = canonical_grouping_sets r q.A.group_by in
  let has_group = q.A.group_by <> [] in
  let has_agg =
    List.exists (fun (_, e) -> Expr.contains_agg e) resolved_items
    || Option.fold ~none:false ~some:Expr.contains_agg having
  in
  let has_having = Option.is_some q.A.having in
  let root =
    (* a HAVING clause without GROUP BY aggregates over the grand total *)
    if (not has_group) && (not has_agg) && not has_having then begin
      (* plain select-project-join block *)
      let outs, _ =
        List.fold_left
          (fun (outs, i) (it, e) ->
            let name = output_name_of_item (List.map fst outs) i it e in
            (outs @ [ (name, e) ], i + 1))
          ([], 0) resolved_items
      in
      let quants = List.map (fun b -> b.b_quant) bindings @ r.extra_quants in
      new_box st
        (Box.Select { sel_quants = quants; sel_preds = where_preds; sel_outs = outs; sel_distinct = q.A.distinct })
    end
    else
      build_aggregate_block st r ~bindings ~where_preds ~resolved_items ~having
        ~gsets ~distinct:q.A.distinct
  in
  root

(* Aggregate block: lower SELECT computes grouping expressions and aggregate
   arguments; GROUP BY groups and aggregates; upper SELECT applies HAVING and
   computes the final output expressions (paper Figure 3). *)
and build_aggregate_block st r ~bindings ~where_preds ~resolved_items ~having
    ~gsets ~distinct =
  let union_exprs =
    (* grouping expressions, deduped by normalized form, in first-seen order *)
    let rec add acc = function
      | [] -> acc
      | e :: rest ->
          if List.exists (Expr.equal_norm e) acc then add acc rest
          else add (acc @ [ e ]) rest
    in
    List.fold_left add [] gsets
  in
  (* name each grouping expression *)
  let alias_for e =
    List.find_map
      (fun (it, re) ->
        match it.A.item_alias with
        | Some a when Expr.equal_norm re e -> Some a
        | _ -> None)
      resolved_items
  in
  let grouping_outs =
    List.fold_left
      (fun acc e ->
        let taken = List.map fst acc in
        let proposal =
          match alias_for e with
          | Some a -> a
          | None -> (
              match e with
              | Expr.Col { Box.col; _ } -> col
              | _ -> Printf.sprintf "g%d" (List.length acc + 1))
        in
        acc @ [ (uniquify taken proposal, e) ])
      [] union_exprs
  in
  let group_col_of e =
    List.find_map
      (fun (n, ge) -> if Expr.equal_norm ge e then Some n else None)
      grouping_outs
  in
  (* collect distinct aggregate applications from select items + having *)
  let aggs = ref [] in
  let rec collect e =
    match e with
    | Expr.Agg (a, arg) ->
        if
          not
            (List.exists
               (fun (a', arg') ->
                 a' = a
                 &&
                 match (arg, arg') with
                 | None, None -> true
                 | Some x, Some y -> Expr.equal_norm x y
                 | _ -> false)
               !aggs)
        then aggs := !aggs @ [ (a, arg) ]
    | e -> List.iter collect (Expr.children e)
  in
  List.iter (fun (_, e) -> collect e) resolved_items;
  Option.iter collect having;
  List.iter
    (fun (a, arg) ->
      ignore a;
      match arg with
      | Some arg when Expr.contains_agg arg -> err "nested aggregates"
      | _ -> ())
    !aggs;
  (* arguments computed in the lower select *)
  let arg_outs = ref [] in
  let arg_col arg =
    match group_col_of arg with
    | Some n -> n
    | None -> (
        match
          List.find_map
            (fun (n, e) -> if Expr.equal_norm e arg then Some n else None)
            !arg_outs
        with
        | Some n -> n
        | None ->
            let taken = List.map fst grouping_outs @ List.map fst !arg_outs in
            let proposal =
              match arg with
              | Expr.Col { Box.col; _ } -> col
              | _ -> Printf.sprintf "a%d" (List.length !arg_outs + 1)
            in
            let n = uniquify taken proposal in
            arg_outs := !arg_outs @ [ (n, arg) ];
            n)
  in
  let agg_apps =
    List.map
      (fun (a, arg) ->
        let app =
          match arg with
          | None -> { Box.agg = a; arg = None }
          | Some arg -> { Box.agg = a; arg = Some (arg_col arg) }
        in
        ((a, arg), app))
      !aggs
  in
  (* scalar-subquery columns referenced above the GROUP BY must be routed
     through the lower select and (being per-query constants) silently join
     the grouping columns — mirroring the paper's Q10/NewQ10 *)
  let quants = List.map (fun b -> b.b_quant) bindings @ r.extra_quants in
  let scalar_quant_ids =
    List.filter_map
      (fun q -> if q.Box.q_kind = Box.Scalar then Some q.Box.q_id else None)
      r.extra_quants
  in
  let scalar_outs = ref [] in
  let scalar_route = ref [] in
  let rec collect_scalar_refs e =
    match e with
    | Expr.Agg (_, _) -> () (* scalar refs inside agg args flow via arg_outs *)
    | Expr.Col ({ Box.quant; col } as qr) when List.mem quant scalar_quant_ids
      ->
        if not (List.mem_assoc qr !scalar_route) then begin
          let taken =
            List.map fst grouping_outs
            @ List.map fst !arg_outs
            @ List.map fst !scalar_outs
          in
          let n = uniquify taken col in
          scalar_outs := !scalar_outs @ [ (n, Expr.Col qr) ];
          scalar_route := (qr, n) :: !scalar_route
        end
    | e -> List.iter collect_scalar_refs (Expr.children e)
  in
  List.iter (fun (_, e) -> collect_scalar_refs e) resolved_items;
  Option.iter collect_scalar_refs having;
  (* aggregate output naming: use a select-item alias when the item is
     exactly this aggregate *)
  let agg_outs =
    List.fold_left
      (fun acc ((a, arg), app) ->
        let taken =
          List.map fst grouping_outs
          @ List.map fst !arg_outs
          @ List.map fst !scalar_outs
          @ List.map (fun (_, n, _) -> n) acc
        in
        let alias =
          List.find_map
            (fun (it, re) ->
              match (it.A.item_alias, re) with
              | Some al, Expr.Agg (a', arg') when a' = a -> (
                  match (arg, arg') with
                  | None, None -> Some al
                  | Some x, Some y when Expr.equal_norm x y -> Some al
                  | _ -> None)
              | _ -> None)
            resolved_items
        in
        let proposal =
          match alias with
          | Some al -> al
          | None ->
              String.lowercase_ascii (Expr.agg_fn_to_string a.Expr.fn)
        in
        acc @ [ ((a, arg), uniquify taken proposal, app) ])
      [] agg_apps
  in
  (* build boxes *)
  let lower_outs = grouping_outs @ !arg_outs @ !scalar_outs in
  let lower_id =
    new_box st
      (Box.Select { sel_quants = quants; sel_preds = where_preds; sel_outs = lower_outs; sel_distinct = false })
  in
  let gquant = new_quant st lower_id Box.Foreach in
  (* grouping structure over column names; scalar-subquery outputs referenced
     above the GROUP BY are implicitly added as grouping columns (they are
     per-query constants), mirroring the paper's Q10/NewQ10. *)
  let scalar_cols = List.map fst !scalar_outs in
  let name_sets =
    List.map
      (fun set ->
        let names =
          List.map
            (fun e ->
              match group_col_of e with Some n -> n | None -> assert false)
            set
        in
        names @ List.filter (fun c -> not (List.mem c names)) scalar_cols)
      gsets
  in
  let name_sets = if name_sets = [] then [ scalar_cols ] else name_sets in
  let grouping =
    match name_sets with
    | [ one ] -> Box.Simple one
    | many -> Box.Gsets many
  in
  let group_id =
    new_box st
      (Box.Group
         {
           grp_quant = gquant;
           grp_grouping = grouping;
           grp_aggs = List.map (fun (_, n, app) -> (n, app)) agg_outs;
         })
  in
  let uquant = new_quant st group_id Box.Foreach in
  (* substitute grouping expressions and aggregates in an upper expression *)
  let group_union_cols = Box.grouping_union grouping in
  let rec to_upper e =
    match group_col_of e with
    | Some n when List.mem n group_union_cols ->
        Expr.Col { Box.quant = uquant.Box.q_id; col = n }
    | _ -> (
        match e with
        | Expr.Agg (a, arg) -> (
            match
              List.find_map
                (fun ((a', arg'), n, _) ->
                  if
                    a' = a
                    &&
                    match (arg, arg') with
                    | None, None -> true
                    | Some x, Some y -> Expr.equal_norm x y
                    | _ -> false
                  then Some n
                  else None)
                agg_outs
            with
            | Some n -> Expr.Col { Box.quant = uquant.Box.q_id; col = n }
            | None -> assert false)
        | Expr.Col qr when List.mem_assoc qr !scalar_route ->
            Expr.Col
              { Box.quant = uquant.Box.q_id; col = List.assoc qr !scalar_route }
        | Expr.Col { Box.col; _ } ->
            err "column %s must appear in the GROUP BY clause" col
        | Expr.Const v -> Expr.Const v
        | e -> Expr.with_children e (List.map to_upper (Expr.children e)))
  in
  let upper_outs, _ =
    List.fold_left
      (fun (outs, i) (it, e) ->
        let name = output_name_of_item (List.map fst outs) i it e in
        (outs @ [ (name, to_upper e) ], i + 1))
      ([], 0) resolved_items
  in
  let upper_preds =
    match having with None -> [] | Some h -> split_conjuncts (to_upper h)
  in
  new_box st
    (Box.Select { sel_quants = [ uquant ]; sel_preds = upper_preds; sel_outs = upper_outs; sel_distinct = distinct })

(* ------------------------------------------------------------------ *)

let build cat (q : A.query) =
  let st = { g = Graph.empty; cat; base_cache = [] } in
  let root = build_block st q ~top:true in
  let g = Graph.set_root st.g root in
  let root_cols = Box.output_cols (Graph.box g root) in
  let order_by =
    List.map
      (fun (e, asc) ->
        match e with
        | A.Ref (None, c)
          when List.exists (fun rc -> norm rc = norm c) root_cols ->
            (c, asc)
        | A.Lit (Data.Value.Int i) when i >= 1 && i <= List.length root_cols ->
            (List.nth root_cols (i - 1), asc)
        | _ ->
            err
              "ORDER BY must reference an output column name or position")
      q.A.order_by
  in
  Graph.set_presentation g { Graph.order_by; limit = q.A.limit }

let output_columns g = Box.output_cols (Graph.box g (Graph.root g))
