(** The logical write-ahead log: framed, checksummed, torn-tail tolerant.

    One record per committed write statement, one line per record:

    {v <len-hex-8>:<crc-hex-8>:<payload-json>\n v}

    [len] is the byte length of the JSON payload, [crc] its CRC-32
    ({!Crc32}). The reader stops at the first frame that is short,
    mis-checksummed or unparseable and reports how many bytes were valid —
    a process killed mid-append leaves a torn tail, which recovery
    truncates away rather than treating as corruption. What a record
    {e means} (LSN, statement, rows) is the {!Manager}'s business; this
    module only moves checksummed JSON lines safely.

    Crash-injection points ({!Guard.Fault}): an armed [Wal_append] writes
    half a frame and SIGKILLs (a torn tail, exactly what recovery must
    tolerate); an armed [Wal_fsync] SIGKILLs after the write but before the
    fsync. *)

type fsync_policy =
  | Always          (** fsync after every append (group of one) *)
  | Interval of int (** fsync every N appends *)
  | Off             (** never fsync; the OS decides when data reaches disk *)

(** Parses ["always"], ["off"], and ["interval:N"] / ["interval=N"] / a bare
    positive integer [N]. *)
val fsync_policy_of_string : string -> (fsync_policy, string) result

val fsync_policy_to_string : fsync_policy -> string

type writer

(** Open (creating if needed) a WAL for appending. *)
val open_writer : ?policy:fsync_policy -> string -> writer

(** Append one record and apply the fsync policy. Raises [Unix.Unix_error]
    on I/O failure — callers treat that as statement failure
    (append-before-publish). *)
val append : writer -> Obs.Json.t -> unit

(** Force an fsync regardless of policy (no-op on a clean log). *)
val sync : writer -> unit

val close : writer -> unit
val policy : writer -> fsync_policy

(** One framed line, newline included (for tests and {!replace}). *)
val frame : Obs.Json.t -> string

type read_result = {
  records : Obs.Json.t list;  (** valid records, in log order *)
  valid_bytes : int;          (** file prefix covered by valid records *)
  torn_bytes : int;           (** trailing bytes past the last valid record *)
}

(** Read a WAL leniently. A missing file reads as empty; a torn or
    corrupted tail ends the log instead of failing it. *)
val read : string -> read_result

(** Truncate a file to [len] bytes (recovery chops the torn tail before
    appending resumes). *)
val truncate : string -> int -> unit

(** Atomically replace the WAL's contents with the given records (tmp file
    + fsync + rename) — used to drop records a checkpoint now covers. *)
val replace : string -> Obs.Json.t list -> unit
