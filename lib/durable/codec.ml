(* JSON codec for WAL records and checkpoints. Mirrors the server wire
   conventions (Server.Wire) without depending on lib/server: dates as
   {"date": n}, non-finite floats as {"float": "nan"|"inf"|"-inf"}. *)

module J = Obs.Json
module V = Data.Value

let value_to_json (v : V.t) : J.t =
  match v with
  | V.Null -> J.Null
  | V.Int n -> J.Int n
  | V.Float x ->
      if Float.is_finite x then J.Float x
      else
        J.Obj
          [
            ( "float",
              J.Str
                (if Float.is_nan x then "nan"
                 else if x > 0. then "inf"
                 else "-inf") );
          ]
  | V.Str s -> J.Str s
  | V.Bool b -> J.Bool b
  | V.Date d -> J.Obj [ ("date", J.Int d) ]

let value_of_json (j : J.t) : (V.t, string) result =
  match j with
  | J.Null -> Ok V.Null
  | J.Int n -> Ok (V.Int n)
  | J.Float x | J.Num x -> Ok (V.Float x)
  | J.Str s -> Ok (V.Str s)
  | J.Bool b -> Ok (V.Bool b)
  | J.Obj [ ("date", J.Int d) ] -> Ok (V.Date d)
  | J.Obj [ ("float", J.Str "nan") ] -> Ok (V.Float Float.nan)
  | J.Obj [ ("float", J.Str "inf") ] -> Ok (V.Float Float.infinity)
  | J.Obj [ ("float", J.Str "-inf") ] -> Ok (V.Float Float.neg_infinity)
  | other -> Error ("not a value: " ^ J.to_string other)

let row_to_json (row : Data.Relation.row) : J.t =
  J.List (Array.to_list (Array.map value_to_json row))

let row_of_json (j : J.t) : (Data.Relation.row, string) result =
  match j with
  | J.List vs ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | v :: rest -> (
            match value_of_json v with
            | Ok v -> go (v :: acc) rest
            | Error _ as e -> e)
      in
      go [] vs
  | other -> Error ("not a row: " ^ J.to_string other)

let rows_to_json rows = J.List (List.map row_to_json rows)

let rows_of_json (j : J.t) : (Data.Relation.row list, string) result =
  match j with
  | J.List rs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
            match row_of_json r with
            | Ok row -> go (row :: acc) rest
            | Error _ as e -> e)
      in
      go [] rs
  | other -> Error ("not a row list: " ^ J.to_string other)
