(** Checkpoints: atomic snapshots of the whole database state.

    A checkpoint file [ckpt-<lsn>.json] holds the catalog, every base
    table's rows, and every summary table's definition, freshness and
    payload, as of WAL position [lsn]. It is written to a temp file,
    fsynced and renamed into place, so a crash at any point leaves either
    the previous checkpoint set or the previous set plus one complete new
    file — never a half checkpoint under the real name. The newest two
    checkpoints are retained (the newest could be the one a crash
    interrupted the WAL truncation of).

    Crash-injection points ({!Guard.Fault}): an armed [Checkpoint_write]
    SIGKILLs half-way through writing the temp file; an armed
    [Checkpoint_rename] SIGKILLs just before the rename. Recovery must
    survive both, falling back to the previous checkpoint + longer WAL
    suffix. *)

type summary = {
  ck_name : string;
  ck_sql : string;          (** defining query, re-elaborated at recovery *)
  ck_fresh : bool;
  ck_srows : Data.Relation.row list;
}

type table = {
  ck_table : Catalog.table;  (** full schema incl. keys and FKs *)
  ck_rows : Data.Relation.row list;
}

type t = {
  ck_lsn : int;              (** WAL records with lsn <= this are covered *)
  ck_tables : table list;    (** base tables only *)
  ck_summaries : summary list;
}

(** The on-disk JSON encoding (format-versioned; for tests). *)
val to_json : t -> Obs.Json.t

(** [write dir t] writes [ckpt-<lsn>.json] atomically and prunes all but
    the two newest checkpoints. Raises on I/O failure. *)
val write : string -> t -> unit

(** Decode one checkpoint file. *)
val load_file : string -> (t, string) result

(** Newest checkpoint in [dir] that decodes cleanly, skipping over invalid
    or torn ones; [snd] is the number of candidates skipped. *)
val load_latest : string -> t option * int

(** [ckpt-<lsn>.json] paths in [dir], newest first (by lsn). *)
val files : string -> string list
