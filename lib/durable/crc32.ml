(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table driven.
   OCaml ints are at least 63 bits on every supported platform, so the
   32-bit arithmetic is done in plain ints masked to 32 bits. *)

let mask = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub s pos len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub";
  let t = Lazy.force table in
  let c = ref mask in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor mask

let string s = sub s 0 (String.length s)
