(* Framed, checksummed, torn-tail-tolerant write-ahead log.

   Each record is one line: <len-hex-8>:<crc-hex-8>:<json>\n. Appends go
   straight to the fd (no channel buffering) so a crash can only lose or
   tear the record being written, never reorder earlier ones; the reader
   stops at the first invalid frame and reports the valid prefix length. *)

module J = Obs.Json

type fsync_policy = Always | Interval of int | Off

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "off" | "none" -> Ok Off
  | s -> (
      let num =
        if String.length s > 9 && String.sub s 0 9 = "interval:" then
          Some (String.sub s 9 (String.length s - 9))
        else if String.length s > 9 && String.sub s 0 9 = "interval=" then
          Some (String.sub s 9 (String.length s - 9))
        else Some s
      in
      match Option.bind num int_of_string_opt with
      | Some n when n > 0 -> Ok (Interval n)
      | _ ->
          Error
            (Printf.sprintf
               "bad fsync policy %S (expected always, off, or interval:N)" s))

let fsync_policy_to_string = function
  | Always -> "always"
  | Off -> "off"
  | Interval n -> Printf.sprintf "interval:%d" n

type writer = {
  w_fd : Unix.file_descr;
  w_policy : fsync_policy;
  mutable w_unsynced : int;  (* appends since the last fsync *)
}

let open_writer ?(policy = Always) path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  { w_fd = fd; w_policy = policy; w_unsynced = 0 }

let policy w = w.w_policy

let write_fully fd s pos len =
  let b = Bytes.unsafe_of_string s in
  let off = ref pos and left = ref len in
  while !left > 0 do
    let n = Unix.write fd b !off !left in
    off := !off + n;
    left := !left - n
  done

let frame json =
  let payload = J.to_string json in
  Printf.sprintf "%08x:%08x:%s\n" (String.length payload)
    (Crc32.string payload) payload

let m_fsyncs = Obs.Metrics.counter "durable.wal_fsyncs"

let do_sync w =
  Guard.Fault.crash_hit Guard.Fault.Wal_fsync;
  Unix.fsync w.w_fd;
  Obs.Metrics.incr m_fsyncs;
  w.w_unsynced <- 0

let sync w = if w.w_unsynced > 0 then do_sync w

let append w json =
  let line = frame json in
  if Guard.Fault.crash_fire Guard.Fault.Wal_append then begin
    (* torn write: half the frame reaches the file, then kill -9 *)
    write_fully w.w_fd line 0 (String.length line / 2);
    Guard.Fault.crash_now ()
  end;
  (* an append that fails part-way (e.g. ENOSPC) must not leave a torn
     record mid-file — the reader would treat everything after it as lost.
     Chop back to the pre-append length before re-raising. *)
  let start = (Unix.fstat w.w_fd).Unix.st_size in
  (try write_fully w.w_fd line 0 (String.length line)
   with e ->
     (try Unix.ftruncate w.w_fd start with Unix.Unix_error _ -> ());
     raise e);
  w.w_unsynced <- w.w_unsynced + 1;
  match w.w_policy with
  | Always -> do_sync w
  | Interval n -> if w.w_unsynced >= n then do_sync w
  | Off -> ()

let close w =
  (try sync w with Unix.Unix_error _ -> ());
  Unix.close w.w_fd

(* ---------------- reading ---------------- *)

type read_result = {
  records : J.t list;
  valid_bytes : int;
  torn_bytes : int;
}

let hex8 s pos =
  let ok = ref true in
  for i = pos to pos + 7 do
    match s.[i] with
    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
    | _ -> ok := false
  done;
  if !ok then int_of_string_opt ("0x" ^ String.sub s pos 8) else None

let read path =
  match
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic))))
    else None
  with
  | None -> { records = []; valid_bytes = 0; torn_bytes = 0 }
  | Some s ->
      let size = String.length s in
      let records = ref [] in
      let pos = ref 0 in
      let stop = ref false in
      while not !stop do
        let o = !pos in
        (* header is "llllllll:cccccccc:" = 18 bytes *)
        if o + 18 > size then stop := true
        else if s.[o + 8] <> ':' || s.[o + 17] <> ':' then stop := true
        else
          match (hex8 s o, hex8 s (o + 9)) with
          | Some len, Some crc when o + 18 + len < size ->
              if s.[o + 18 + len] <> '\n' then stop := true
              else
                let payload = String.sub s (o + 18) len in
                if Crc32.string payload <> crc then stop := true
                else (
                  match J.of_string payload with
                  | Ok json ->
                      records := json :: !records;
                      pos := o + 18 + len + 1
                  | Error _ -> stop := true)
          | _ -> stop := true
      done;
      {
        records = List.rev !records;
        valid_bytes = !pos;
        torn_bytes = size - !pos;
      }

let truncate path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()  (* not fsyncable on this platform *)
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let replace path records =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      List.iter
        (fun json ->
          let line = frame json in
          write_fully fd line 0 (String.length line))
        records;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir path
