(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), as used by gzip/zip.

    Guards every WAL record against torn writes and bit rot: the frame
    carries the checksum of its payload, and the recovery reader treats a
    mismatch as end-of-log (torn tail) rather than data. Pure OCaml, table
    driven; checksums are returned as non-negative [int]s in
    [0, 0xFFFFFFFF]. *)

(** Checksum of a whole string. *)
val string : string -> int

(** [sub s pos len] checksums a substring. Raises [Invalid_argument] on an
    out-of-bounds range. *)
val sub : string -> int -> int -> int
