(* The durability manager: ties the WAL and checkpoints to the shared
   database state.

   Write path (the commit hook, running inside the shared writer lock,
   after the statement body and before the atomic publish):

     1. every [checkpoint_every] commits, first fold the log into a fresh
        checkpoint of the *latest published* snapshot — consistent with
        every WAL record so far, because appends are serialized here;
     2. assign the next LSN and append one record;
     3. apply the fsync policy.

   A failure anywhere aborts the statement (nothing publishes), so no
   acknowledged write exists without its log record. Recovery is the
   mirror image: newest decodable checkpoint, then the WAL suffix replayed
   through the ordinary statement path, then the degraded-recovery ladder
   over summary payloads. *)

module J = Obs.Json
module R = Data.Relation
module Sh = Mvstore.Shared
module St = Mvstore.Store
module Se = Mvstore.Session

let norm = String.lowercase_ascii

type config = {
  c_dir : string;
  c_fsync : Wal.fsync_policy;
  c_checkpoint_every : int;
}

let default_config dir =
  { c_dir = dir; c_fsync = Wal.Always; c_checkpoint_every = 64 }

let config_of_env () =
  match Sys.getenv_opt "ASTQL_DURABILITY" with
  | None | Some "" -> Ok None
  | Some dir -> (
      let fsync =
        match Sys.getenv_opt "ASTQL_FSYNC" with
        | None | Some "" -> Ok Wal.Always
        | Some s -> Wal.fsync_policy_of_string s
      in
      match fsync with
      | Error e -> Error e
      | Ok f -> (
          match Sys.getenv_opt "ASTQL_CHECKPOINT_EVERY" with
          | None | Some "" ->
              Ok (Some { c_dir = dir; c_fsync = f; c_checkpoint_every = 64 })
          | Some s -> (
              match int_of_string_opt s with
              | Some n when n >= 0 ->
                  Ok (Some { c_dir = dir; c_fsync = f; c_checkpoint_every = n })
              | _ ->
                  Error
                    (Printf.sprintf "bad ASTQL_CHECKPOINT_EVERY %S (expected \
                                     a non-negative integer)" s))))

type report = {
  r_ckpt_lsn : int option;
  r_ckpt_skipped : int;
  r_wal_records : int;
  r_replayed : int;
  r_replay_errors : int;
  r_torn_bytes : int;
  r_quarantined : string list;
  r_dropped : string list;
}

let describe_report r =
  let buf = Buffer.create 128 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match r.r_ckpt_lsn with
  | Some lsn -> addf "checkpoint: recovered at lsn %d" lsn
  | None -> addf "checkpoint: none");
  if r.r_ckpt_skipped > 0 then addf " (%d invalid skipped)" r.r_ckpt_skipped;
  addf "; wal: %d record(s), %d replayed" r.r_wal_records r.r_replayed;
  if r.r_replay_errors > 0 then addf ", %d failed" r.r_replay_errors;
  if r.r_torn_bytes > 0 then addf ", torn tail of %d byte(s) truncated"
      r.r_torn_bytes;
  if r.r_quarantined <> [] then
    addf "; quarantined for rebuild: %s" (String.concat ", " r.r_quarantined);
  if r.r_dropped <> [] then
    addf "; dropped: %s" (String.concat ", " r.r_dropped);
  Buffer.contents buf

type t = {
  m_cfg : config;
  m_wal_path : string;
  m_shared : Sh.t;
  mutable m_wal : Wal.writer;
  mutable m_lsn : int;       (* last assigned LSN *)
  mutable m_ckpt_lsn : int;  (* LSN the newest checkpoint covers *)
  mutable m_since : int;     (* commits since that checkpoint *)
}

let config t = t.m_cfg
let last_lsn t = t.m_lsn
let checkpoint_lsn t = t.m_ckpt_lsn

(* ---------------- metrics ---------------- *)

let m_appends = Obs.Metrics.counter "durable.wal_appends"
let m_checkpoints = Obs.Metrics.counter "durable.checkpoints"
let m_replay_records = Obs.Metrics.counter "durable.replay_records"
let m_replay_errors = Obs.Metrics.counter "durable.replay_errors"
let m_rebuilds = Obs.Metrics.counter "durable.recovery_rebuilds"
let g_lsn = Obs.Metrics.gauge "durable.wal_lsn"
let h_ckpt = Obs.Metrics.histogram "durable.checkpoint_ms"

(* ---------------- WAL records ---------------- *)

let record_to_json lsn (c : Se.commit) =
  match c with
  | Se.Commit_sql sql ->
      J.Obj [ ("lsn", J.Int lsn); ("kind", J.Str "sql"); ("sql", J.Str sql) ]
  | Se.Commit_rows { cr_table; cr_rows } ->
      J.Obj
        [
          ("lsn", J.Int lsn);
          ("kind", J.Str "rows");
          ("table", J.Str cr_table);
          ("rows", Codec.rows_to_json cr_rows);
        ]

type record = Rec_sql of string | Rec_rows of string * R.row list

let record_of_json j =
  match (J.member "lsn" j, J.member "kind" j) with
  | Some (J.Int lsn), Some (J.Str "sql") -> (
      match J.member "sql" j with
      | Some (J.Str sql) -> Ok (lsn, Rec_sql sql)
      | _ -> Error "sql record without a sql field")
  | Some (J.Int lsn), Some (J.Str "rows") -> (
      match (J.member "table" j, J.member "rows" j) with
      | Some (J.Str table), Some rows -> (
          match Codec.rows_of_json rows with
          | Ok rows -> Ok (lsn, Rec_rows (table, rows))
          | Error e -> Error e)
      | _ -> Error "rows record without table/rows fields")
  | _ -> Error "record without lsn/kind fields"

(* ---------------- checkpointing ---------------- *)

let checkpoint_of_snapshot ~lsn (snap : Sh.snapshot) =
  let db = snap.Sh.sn_db in
  let entries = St.entries snap.Sh.sn_store in
  let sum_names = List.map (fun e -> norm e.St.e_name) entries in
  let rows_of name =
    match Engine.Db.get db name with Some r -> R.rows r | None -> []
  in
  {
    Checkpoint.ck_lsn = lsn;
    ck_tables =
      Catalog.tables (Engine.Db.catalog db)
      |> List.filter (fun tb ->
             not (List.mem (norm tb.Catalog.tbl_name) sum_names))
      |> List.map (fun tb ->
             {
               Checkpoint.ck_table = tb;
               ck_rows = rows_of tb.Catalog.tbl_name;
             });
    ck_summaries =
      List.map
        (fun e ->
          {
            Checkpoint.ck_name = e.St.e_name;
            ck_sql = e.St.e_sql;
            ck_fresh = e.St.e_fresh;
            ck_srows = rows_of e.St.e_name;
          })
        entries;
  }

(* Requires exclusivity over writers (called from inside the commit hook,
   or from [checkpoint] below which takes the writer lock itself). Every
   WAL record so far has lsn <= m_lsn, so once the checkpoint lands the
   whole log is covered and reset to empty. *)
let do_checkpoint_locked t snap =
  let ck = checkpoint_of_snapshot ~lsn:t.m_lsn snap in
  Obs.Metrics.time h_ckpt (fun () -> Checkpoint.write t.m_cfg.c_dir ck);
  Obs.Metrics.incr m_checkpoints;
  Wal.close t.m_wal;
  Wal.replace t.m_wal_path [];
  t.m_wal <- Wal.open_writer ~policy:t.m_cfg.c_fsync t.m_wal_path;
  t.m_ckpt_lsn <- t.m_lsn;
  t.m_since <- 0

let checkpoint t =
  Sh.with_write t.m_shared (fun snap ->
      do_checkpoint_locked t snap;
      (snap, ()))

(* ---------------- the commit hook ---------------- *)

let log t commit =
  (* checkpoint first: the latest *published* snapshot is consistent with
     every record logged so far, not with the one being committed now *)
  if t.m_cfg.c_checkpoint_every > 0 && t.m_since >= t.m_cfg.c_checkpoint_every
  then do_checkpoint_locked t (Sh.snapshot t.m_shared);
  let lsn = t.m_lsn + 1 in
  Wal.append t.m_wal (record_to_json lsn commit);
  t.m_lsn <- lsn;
  t.m_since <- t.m_since + 1;
  Obs.Metrics.incr m_appends;
  Obs.Metrics.set g_lsn (float_of_int lsn)

let bind t sess = Se.set_on_commit sess (Some (log t))

let close t = Wal.close t.m_wal

(* ---------------- recovery ---------------- *)

let rec mkdirs d =
  if d = "/" || d = "." || d = "" || Sys.file_exists d then ()
  else begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Catalog rebuild honours FK declaration order by fixpoint: keep adding
   tables whose FK targets already exist; anything left over (dangling or
   cyclic references) is retried with its FKs stripped rather than
   dropped — losing an FK declaration only weakens rewrite matching,
   losing a table loses data. *)
let rebuild_catalog tables =
  let cat = ref Catalog.empty in
  let dropped = ref [] in
  let pending = ref tables and progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    pending :=
      List.filter
        (fun (ct : Checkpoint.table) ->
          match Catalog.add_table !cat ct.Checkpoint.ck_table with
          | cat' ->
              cat := cat';
              progress := true;
              false
          | exception Invalid_argument _ -> true)
        !pending
  done;
  List.iter
    (fun (ct : Checkpoint.table) ->
      let tbl = { ct.Checkpoint.ck_table with Catalog.foreign_keys = [] } in
      match Catalog.add_table !cat tbl with
      | cat' -> cat := cat'
      | exception Invalid_argument _ ->
          dropped := tbl.Catalog.tbl_name :: !dropped)
    !pending;
  (!cat, List.rev !dropped)

let rebuild_db cat tables dropped_tables =
  List.fold_left
    (fun db (ct : Checkpoint.table) ->
      let name = ct.Checkpoint.ck_table.Catalog.tbl_name in
      if List.mem name dropped_tables then db
      else
        let cols = Catalog.column_names ct.Checkpoint.ck_table in
        let rel =
          try R.create cols ct.Checkpoint.ck_rows
          with Invalid_argument _ -> R.empty cols
        in
        Engine.Db.put db name rel)
    (Engine.Db.create cat) tables

(* Summary restore by fixpoint too: a summary defined over another summary
   elaborates only once its dependency is registered. Entries that never
   elaborate (their definition no longer parses or type-checks against the
   recovered catalog) are dropped — summaries are derived state. *)
let restore_summaries store db summaries =
  let store = ref store and db = ref db in
  let dropped = ref [] in
  let pending = ref summaries and progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    pending :=
      List.filter
        (fun (s : Checkpoint.summary) ->
          match
            St.restore !store !db ~name:s.Checkpoint.ck_name
              ~sql:s.Checkpoint.ck_sql ~fresh:s.Checkpoint.ck_fresh
              ~rows:s.Checkpoint.ck_srows
          with
          | store', db' ->
              store := store';
              db := db';
              progress := true;
              false
          | exception St.Mv_error _ -> true)
        !pending
  done;
  List.iter
    (fun (s : Checkpoint.summary) ->
      dropped := s.Checkpoint.ck_name :: !dropped)
    !pending;
  (!store, !db, List.rev !dropped)

(* The degraded-recovery ladder, final rung: every fresh summary payload
   must agree with a re-derivation from the recovered base tables. Small
   payloads are bag-compared exactly; payloads beyond [verify_cap] rows
   degrade to a cardinality check (full comparison would double recovery
   time for the biggest tables — the cheap check still catches truncation
   and wholesale corruption). A mismatch empties and quarantines the
   summary: correctness of future answers over availability of one
   rewrite. *)
let verify_cap = 10_000

let payload_matches stored derived =
  if R.cardinality stored <= verify_cap then
    R.bag_equal_approx stored derived
  else R.cardinality derived = R.cardinality stored

let verify_summaries shared =
  let quarantined = ref [] in
  Sh.with_write shared (fun snap ->
      let db = ref snap.Sh.sn_db and store = ref snap.Sh.sn_store in
      List.iter
        (fun (e : St.entry) ->
          if e.St.e_fresh then
            let name = e.St.e_name in
            match Engine.Exec.run !db e.St.e_graph with
            | exception _ ->
                (* cannot re-derive right now (e.g. resource pressure):
                   keep the payload; runtime verification still guards
                   individual answers *)
                ()
            | derived ->
                let stored =
                  match Engine.Db.get !db name with
                  | Some r -> r
                  | None -> R.empty (List.map fst e.St.e_cols)
                in
                if not (payload_matches stored derived) then begin
                  let store', db' = St.quarantine_payload !store !db name in
                  store := store';
                  db := db';
                  quarantined := name :: !quarantined;
                  Obs.Metrics.incr m_rebuilds
                end)
        (St.entries !store);
      ({ Sh.sn_db = !db; sn_store = !store }, ()));
  List.rev !quarantined

let recover cfg =
  mkdirs cfg.c_dir;
  let wal_path = Filename.concat cfg.c_dir "wal.log" in
  (* 1. newest checkpoint that decodes *)
  let ckpt, skipped = Checkpoint.load_latest cfg.c_dir in
  let ckpt_lsn = match ckpt with Some c -> c.Checkpoint.ck_lsn | None -> 0 in
  let store, db, dropped =
    match ckpt with
    | None -> (St.empty, Engine.Db.create Catalog.empty, [])
    | Some c ->
        let cat, dropped_tables = rebuild_catalog c.Checkpoint.ck_tables in
        let db = rebuild_db cat c.Checkpoint.ck_tables dropped_tables in
        let store, db, dropped_sums =
          restore_summaries St.empty db c.Checkpoint.ck_summaries
        in
        (store, db, dropped_tables @ dropped_sums)
  in
  let shared = Sh.create db store in
  (* 2. WAL: truncate the torn tail, replay the suffix beyond the
     checkpoint through the ordinary statement path *)
  let wal = Wal.read wal_path in
  if wal.Wal.torn_bytes > 0 then
    Wal.truncate wal_path wal.Wal.valid_bytes;
  let sess = Se.attach ~rewrite:false ~auto_maint:false shared in
  let last = ref ckpt_lsn in
  let replayed = ref 0 and errors = ref 0 in
  List.iter
    (fun json ->
      match record_of_json json with
      | Error msg ->
          incr errors;
          Obs.Metrics.incr m_replay_errors;
          Printf.eprintf "astql durable: unreadable WAL record (%s)\n%!" msg
      | Ok (lsn, _) when lsn <= ckpt_lsn ->
          (* covered by the checkpoint (crash between checkpoint rename and
             WAL truncation): replay would double-apply, skip *)
          ()
      | Ok (lsn, op) -> (
          last := max !last lsn;
          Obs.Metrics.incr m_replay_records;
          match
            match op with
            | Rec_sql sql -> ignore (Se.exec_sql sess sql)
            | Rec_rows (table, rows) -> Se.replay_rows sess ~table ~rows
          with
          | () -> incr replayed
          | exception e ->
              incr errors;
              Obs.Metrics.incr m_replay_errors;
              Printf.eprintf
                "astql durable: replay of lsn %d failed (%s)\n%!" lsn
                (Printexc.to_string e)))
    wal.Wal.records;
  (* 3. degraded-recovery ladder over summary payloads *)
  let quarantined = verify_summaries shared in
  let t =
    {
      m_cfg = cfg;
      m_wal_path = wal_path;
      m_shared = shared;
      m_wal = Wal.open_writer ~policy:cfg.c_fsync wal_path;
      m_lsn = !last;
      m_ckpt_lsn = ckpt_lsn;
      m_since = !replayed;
    }
  in
  Obs.Metrics.set g_lsn (float_of_int t.m_lsn);
  (* 4. bootstrap checkpoint: collapse a replayed/damaged log so the next
     boot starts clean *)
  if !replayed > 0 || quarantined <> [] || wal.Wal.torn_bytes > 0 then
    checkpoint t;
  ( t,
    shared,
    {
      r_ckpt_lsn = Option.map (fun c -> c.Checkpoint.ck_lsn) ckpt;
      r_ckpt_skipped = skipped;
      r_wal_records = List.length wal.Wal.records;
      r_replayed = !replayed;
      r_replay_errors = !errors;
      r_torn_bytes = wal.Wal.torn_bytes;
      r_quarantined = quarantined;
      r_dropped = dropped;
    } )

let describe t =
  Printf.sprintf
    "durability:       on (dir=%s, fsync=%s, checkpoint_every=%d)\n\
     wal:              lsn %d, %d commit(s) since checkpoint (covers lsn %d)"
    t.m_cfg.c_dir
    (Wal.fsync_policy_to_string t.m_cfg.c_fsync)
    t.m_cfg.c_checkpoint_every t.m_lsn t.m_since t.m_ckpt_lsn
