(* Atomic JSON checkpoints of {catalog, base tables, summary tables}.

   Validity = the file parses and decodes; a torn temp file never carries
   the real name, and a file corrupted in place fails decode and is skipped
   by [load_latest] in favour of an older one. *)

module J = Obs.Json
module V = Data.Value

type summary = {
  ck_name : string;
  ck_sql : string;
  ck_fresh : bool;
  ck_srows : Data.Relation.row list;
}

type table = { ck_table : Catalog.table; ck_rows : Data.Relation.row list }
type t = { ck_lsn : int; ck_tables : table list; ck_summaries : summary list }

let format_version = 1

(* ---------------- encode ---------------- *)

let strings ss = J.List (List.map (fun s -> J.Str s) ss)

let table_to_json { ck_table = tbl; ck_rows } =
  J.Obj
    [
      ("name", J.Str tbl.Catalog.tbl_name);
      ( "cols",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("name", J.Str c.Catalog.col_name);
                   ("ty", J.Str (V.ty_to_string c.Catalog.col_ty));
                   ("nullable", J.Bool c.Catalog.nullable);
                 ])
             tbl.Catalog.tbl_cols) );
      ("pk", strings tbl.Catalog.primary_key);
      ("unique", J.List (List.map strings tbl.Catalog.unique_keys));
      ( "fks",
        J.List
          (List.map
             (fun fk ->
               J.Obj
                 [
                   ("cols", strings fk.Catalog.fk_cols);
                   ("ref_table", J.Str fk.Catalog.fk_ref_table);
                   ("ref_cols", strings fk.Catalog.fk_ref_cols);
                 ])
             tbl.Catalog.foreign_keys) );
      ("rows", Codec.rows_to_json ck_rows);
    ]

let summary_to_json s =
  J.Obj
    [
      ("name", J.Str s.ck_name);
      ("sql", J.Str s.ck_sql);
      ("fresh", J.Bool s.ck_fresh);
      ("rows", Codec.rows_to_json s.ck_srows);
    ]

let to_json t =
  J.Obj
    [
      ("format", J.Int format_version);
      ("lsn", J.Int t.ck_lsn);
      ("tables", J.List (List.map table_to_json t.ck_tables));
      ("summaries", J.List (List.map summary_to_json t.ck_summaries));
    ]

(* ---------------- decode ---------------- *)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_str = function J.Str s -> Ok s | _ -> Error "expected a string"
let as_int = function J.Int n -> Ok n | _ -> Error "expected an integer"
let as_bool = function J.Bool b -> Ok b | _ -> Error "expected a boolean"
let as_list = function J.List l -> Ok l | _ -> Error "expected a list"

let map_m f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] l

let str_list j =
  let* l = as_list j in
  map_m as_str l

let col_of_json j =
  let* name = Result.bind (field "name" j) as_str in
  let* ty_s = Result.bind (field "ty" j) as_str in
  let* nullable = Result.bind (field "nullable" j) as_bool in
  match V.ty_of_string ty_s with
  | Some ty -> Ok { Catalog.col_name = name; col_ty = ty; nullable }
  | None -> Error (Printf.sprintf "unknown column type %S" ty_s)

let fk_of_json j =
  let* cols = Result.bind (field "cols" j) str_list in
  let* ref_table = Result.bind (field "ref_table" j) as_str in
  let* ref_cols = Result.bind (field "ref_cols" j) str_list in
  Ok { Catalog.fk_cols = cols; fk_ref_table = ref_table; fk_ref_cols = ref_cols }

let table_of_json j =
  let* name = Result.bind (field "name" j) as_str in
  let* cols = Result.bind (Result.bind (field "cols" j) as_list) (map_m col_of_json) in
  let* pk = Result.bind (field "pk" j) str_list in
  let* unique = Result.bind (Result.bind (field "unique" j) as_list) (map_m str_list) in
  let* fks = Result.bind (Result.bind (field "fks" j) as_list) (map_m fk_of_json) in
  let* rows = Result.bind (field "rows" j) Codec.rows_of_json in
  Ok
    {
      ck_table =
        {
          Catalog.tbl_name = name;
          tbl_cols = cols;
          primary_key = pk;
          unique_keys = unique;
          foreign_keys = fks;
        };
      ck_rows = rows;
    }

let summary_of_json j =
  let* name = Result.bind (field "name" j) as_str in
  let* sql = Result.bind (field "sql" j) as_str in
  let* fresh = Result.bind (field "fresh" j) as_bool in
  let* rows = Result.bind (field "rows" j) Codec.rows_of_json in
  Ok { ck_name = name; ck_sql = sql; ck_fresh = fresh; ck_srows = rows }

let of_json j =
  let* fmt = Result.bind (field "format" j) as_int in
  if fmt <> format_version then
    Error (Printf.sprintf "unsupported checkpoint format %d" fmt)
  else
    let* lsn = Result.bind (field "lsn" j) as_int in
    let* tables =
      Result.bind (Result.bind (field "tables" j) as_list) (map_m table_of_json)
    in
    let* summaries =
      Result.bind
        (Result.bind (field "summaries" j) as_list)
        (map_m summary_of_json)
    in
    Ok { ck_lsn = lsn; ck_tables = tables; ck_summaries = summaries }

(* ---------------- files ---------------- *)

let name_of_lsn lsn = Printf.sprintf "ckpt-%d.json" lsn

let lsn_of_name name =
  if
    String.length name > 10
    && String.sub name 0 5 = "ckpt-"
    && Filename.check_suffix name ".json"
  then int_of_string_opt (String.sub name 5 (String.length name - 10))
  else None

let files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             Option.map (fun lsn -> (lsn, n)) (lsn_of_name n))
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> List.map (fun (_, n) -> Filename.concat dir n)

let write_fully fd s =
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 and left = ref (String.length s) in
  while !left > 0 do
    let n = Unix.write fd b !off !left in
    off := !off + n;
    left := !left - n
  done

let prune dir =
  (* stray .tmp files are torn checkpoints from a crash mid-write *)
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun n ->
          if Filename.check_suffix n ".tmp" then
            try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        names);
  match files dir with
  | _ :: _ :: old -> List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) old
  | _ -> ()

let write dir t =
  let body = J.to_string (to_json t) ^ "\n" in
  let final = Filename.concat dir (name_of_lsn t.ck_lsn) in
  let tmp = final ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      if Guard.Fault.crash_fire Guard.Fault.Checkpoint_write then begin
        (* torn checkpoint: half the bytes land in the temp file, then
           kill -9 — the real name never appears *)
        write_fully fd (String.sub body 0 (String.length body / 2));
        Guard.Fault.crash_now ()
      end;
      write_fully fd body;
      Unix.fsync fd);
  Guard.Fault.crash_hit Guard.Fault.Checkpoint_rename;
  Unix.rename tmp final;
  (match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      Fun.protect
        ~finally:(fun () -> Unix.close dfd)
        (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ()));
  prune dir

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | body -> Result.bind (J.of_string body) of_json

let load_latest dir =
  let rec go skipped = function
    | [] -> (None, skipped)
    | path :: rest -> (
        match load_file path with
        | Ok t -> (Some t, skipped)
        | Error _ -> go (skipped + 1) rest)
  in
  go 0 (files dir)
