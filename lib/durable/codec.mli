(** JSON codec for the on-disk durability formats (WAL records and
    checkpoints).

    Values follow the same conventions as the server wire protocol so the
    two on-disk/on-wire schemas stay mutually readable: dates as
    [{"date": yyyymmdd}], non-finite floats as [{"float": "nan"|"inf"|"-inf"}],
    everything else as the corresponding JSON scalar. The durability layer
    keeps its own copy rather than depending on [lib/server] — a headless
    (no-server) build must still recover its data. *)

val value_to_json : Data.Value.t -> Obs.Json.t
val value_of_json : Obs.Json.t -> (Data.Value.t, string) result

(** Rows are arrays of values rendered as JSON lists. *)
val row_to_json : Data.Relation.row -> Obs.Json.t

val row_of_json : Obs.Json.t -> (Data.Relation.row, string) result
val rows_to_json : Data.Relation.row list -> Obs.Json.t
val rows_of_json : Obs.Json.t -> (Data.Relation.row list, string) result
