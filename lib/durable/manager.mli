(** The durability manager: WAL + checkpoints + boot-time recovery.

    {2 Write path}

    {!bind} installs a commit hook on a session ({!Mvstore.Session.set_on_commit}).
    The hook runs inside the shared writer lock, after the statement body
    succeeds and {e before} the atomic publish: it assigns the next LSN,
    appends one WAL record ({!Wal}), applies the fsync policy, and — every
    [checkpoint_every] commits — first folds the log so far into a fresh
    checkpoint ({!Checkpoint}). A hook failure aborts the statement
    (append-before-publish), so no acknowledged write exists without its
    log record. A crash {e between} append and publish can leave a logged
    but unacknowledged statement, which replay applies — duplicates are
    impossible beyond that one in-flight statement, and it was never
    acknowledged.

    {2 Recovery}

    {!recover} loads the newest checkpoint that decodes cleanly (skipping
    torn/corrupt ones), rebuilds the catalog, base tables and summary
    tables without re-running any defining query ({!Mvstore.Store.restore}),
    truncates the WAL's torn tail, and replays the suffix of records with
    LSN beyond the checkpoint through the ordinary statement path — so
    statement-rollback semantics and incremental summary maintenance apply
    to replay exactly as they did to the original execution. Then the
    degraded-recovery ladder runs: every fresh summary payload is verified
    against a re-derivation from the recovered base tables; a mismatch
    empties and quarantines that summary ({!Mvstore.Store.quarantine_payload})
    and reports it for a deferred rebuild ([r_quarantined] — callers
    enqueue these into {!Mvstore.Maint}), and a summary whose definition no
    longer elaborates is dropped ([r_dropped]). Recovery never refuses to
    boot over summary damage: summaries are derived state. *)

type config = {
  c_dir : string;              (** directory for wal.log + ckpt-*.json *)
  c_fsync : Wal.fsync_policy;
  c_checkpoint_every : int;    (** commits between auto-checkpoints; 0 = never *)
}

val default_config : string -> config

(** [ASTQL_DURABILITY] (directory; unset = durability off), [ASTQL_FSYNC]
    (see {!Wal.fsync_policy_of_string}, default always) and
    [ASTQL_CHECKPOINT_EVERY] (default 64). *)
val config_of_env : unit -> (config option, string) result

type report = {
  r_ckpt_lsn : int option;     (** checkpoint recovered from, if any *)
  r_ckpt_skipped : int;        (** invalid checkpoint files skipped over *)
  r_wal_records : int;         (** valid WAL records on disk *)
  r_replayed : int;            (** records applied (LSN beyond checkpoint) *)
  r_replay_errors : int;       (** records that failed to apply *)
  r_torn_bytes : int;          (** torn WAL tail truncated away *)
  r_quarantined : string list; (** summaries emptied by payload verification *)
  r_dropped : string list;     (** summaries dropped (defs no longer elaborate) *)
}

val describe_report : report -> string

type t

(** Recover (or initialize) the durability directory and return the manager
    plus the shared database state every session should attach to. *)
val recover : config -> t * Mvstore.Shared.t * report

(** Install the commit hook on a session attached to this manager's shared
    state. *)
val bind : t -> Mvstore.Session.t -> unit

(** The raw hook, for callers managing sessions themselves. *)
val log : t -> Mvstore.Session.commit -> unit

(** Take a checkpoint of the current shared snapshot now (serializes with
    writers), then drop the WAL records it covers. The server calls this on
    drain-complete SIGTERM shutdown. *)
val checkpoint : t -> unit

(** Fsync the WAL regardless of policy, close it. *)
val close : t -> unit

val config : t -> config

(** Last LSN assigned (0 before any commit). *)
val last_lsn : t -> int

(** LSN the newest checkpoint covers. *)
val checkpoint_lsn : t -> int

(** Multi-line durability block for [\health]. *)
val describe : t -> string
