(** Scalar expression evaluation.

    Evaluates a QGM expression over a column-lookup environment. Aggregate
    nodes must not appear (the executor computes aggregates in GROUP BY
    boxes); hitting one raises [Invalid_argument]. *)

exception Eval_error of string

(** [eval lookup e] evaluates [e], resolving each column reference with
    [lookup]. Built-in scalar functions: [year], [month], [day], [float], [abs],
    [mod], [length], [upper], [lower], [coalesce].

    Integer division/modulo by zero raises the raw [Division_by_zero];
    statement-level callers ({!Mvstore.Session}) convert it into a session
    error with statement context rather than letting it crash the caller. *)
val eval : ('c -> Data.Value.t) -> 'c Qgm.Expr.t -> Data.Value.t

(** The scalar kernels behind {!eval}, exposed for the vectorized
    executor's boxed fallback paths so both engines share one semantics
    (same results, same error messages) for operators and functions. *)
val apply_binop : string -> Data.Value.t -> Data.Value.t -> Data.Value.t

val apply_fn : string -> Data.Value.t list -> Data.Value.t

(** [is_satisfied lookup p] — SQL predicate test: true only when [p]
    evaluates to a definite TRUE. *)
val is_satisfied : ('c -> Data.Value.t) -> 'c Qgm.Expr.t -> bool
