(** Vectorized (batch-at-a-time) QGM operators (DESIGN.md §15).

    Each operator consumes and produces {!Column.batch} values. The
    dispatcher in {!Exec} calls {!box_supported} per box and falls back to
    the row interpreter for anything outside the vectorized subset
    (DISTINCT aggregates, CASE expressions, UNION bodies), so engines mix
    freely within one plan. *)

exception Error of string

(** Can this box body run on the vectorized path? *)
val box_supported : Qgm.Box.body -> bool

(** Scan a base table through the columnar decode cache, projected to the
    box's columns. Raises [Not_found] on a missing column, like the row
    engine's [Relation.project]. *)
val exec_base : Db.t -> Qgm.Box.base_body -> Column.batch

(** [exec_select ~child body] — filters, incremental hash joins, output
    projection, DISTINCT. [child] resolves a quantifier to its input
    batch. Output row order matches the row engine (left-major joins,
    build-side order within a probe match). *)
val exec_select :
  child:(Qgm.Box.quant -> Column.batch) -> Qgm.Box.select_body -> Column.batch

(** [exec_group ~child body] — dense group ids in first-seen order, then
    typed per-aggregate folds; grouping-set cuboids are concatenated in
    declaration order with NULL-padded union columns. *)
val exec_group :
  child:(Qgm.Box.quant -> Column.batch) -> Qgm.Box.group_body -> Column.batch
