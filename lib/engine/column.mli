(** Typed column vectors for the vectorized executor (DESIGN.md §15).

    A column holds one unboxed buffer per runtime type — an int Bigarray
    for INT/DATE, a float64 Bigarray for FLOAT (and INT/FLOAT mixes,
    promoted), dictionary-encoded strings, a byte vector for booleans —
    plus an optional byte-per-row validity mask (['\001'] = NULL). Columns
    that defy classification stay boxed, and the executor's kernels
    degrade per column rather than rejecting the batch.

    Numeric data lives in Bigarrays (outside the OCaml heap) so the GC
    neither scans column payloads nor paces collection against the large
    transient buffers produced per batch. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Uninitialized buffers (contents unspecified until written). *)
val icreate : int -> ints

val fcreate : int -> floats

(** {2 Scratch arena}

    Kernel-transient buffers are bump-allocated from pooled chunks while a
    domain-local arena is armed — zero allocation in steady state. Arm it
    for the duration of one executor run; buffers handed out in between
    must not escape the [scratch_begin]/[scratch_end] bracket. Nestable;
    the outermost [scratch_end] recycles every chunk. Without an armed
    arena, scratch requests fall back to permanent allocations. *)

val scratch_begin : unit -> unit
val scratch_end : unit -> unit

(** Uninitialized scratch buffers (arena-backed when armed). *)
val scratch_ints : int -> ints

val scratch_floats : int -> floats

type data =
  | Ints of ints
  | Floats of floats
  | Dates of ints  (** yyyymmdd, as in {!Data.Value.Date} *)
  | Bools of Bytes.t  (** ['\001'] = true *)
  | Dict of ints * string array  (** per-row code, dictionary *)
  | Boxed of Data.Value.t array

type t = { data : data; nulls : Bytes.t option }
(** [nulls = None] means no NULL anywhere; data under a set mask byte is
    zero padding. *)

type batch = { names : string array; cols : t array; nrows : int }

val length : t -> int
val is_null : t -> int -> bool

(** Boxed view of one slot (NULL-aware). *)
val get : t -> int -> Data.Value.t

val of_values : Data.Value.t array -> t
val to_values : t -> Data.Value.t array

(** [const v n] broadcasts a scalar to an [n]-row column. *)
val const : Data.Value.t -> int -> t

(** One-pass columnar decode of a relation (no caching). *)
val of_relation : Data.Relation.t -> batch

val to_relation : batch -> Data.Relation.t

(** [gather c idx k] takes rows of [c] at [idx.(0..k-1)], in order. *)
val gather : t -> ints -> int -> t

(** Decode through the process-wide LRU cache, keyed by
    {!Data.Relation.id}. Safe to call from multiple domains. *)
val cached : Data.Relation.t -> batch

(** Drop every cached decode (tests / memory pressure). *)
val cache_clear : unit -> unit
