exception Eval_error of string

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

module V = Data.Value
module E = Qgm.Expr

let apply_fn name args =
  match (name, args) with
  | "year", [ v ] -> V.year v
  | "month", [ v ] -> V.month v
  | "day", [ v ] -> V.day v
  | "float", [ V.Int x ] -> V.Float (float_of_int x)
  | "float", [ V.Float x ] -> V.Float x
  | "float", [ V.Null ] -> V.Null
  | "abs", [ V.Int x ] -> V.Int (abs x)
  | "abs", [ V.Float x ] -> V.Float (Float.abs x)
  | "abs", [ V.Null ] -> V.Null
  | "mod", [ V.Int x; V.Int y ] ->
      if y = 0 then raise Division_by_zero else V.Int (x mod y)
  | "mod", [ V.Null; _ ] | "mod", [ _; V.Null ] -> V.Null
  | "length", [ V.Str s ] -> V.Int (String.length s)
  | "length", [ V.Null ] -> V.Null
  | "upper", [ V.Str s ] -> V.Str (String.uppercase_ascii s)
  | "upper", [ V.Null ] -> V.Null
  | "lower", [ V.Str s ] -> V.Str (String.lowercase_ascii s)
  | "lower", [ V.Null ] -> V.Null
  | "coalesce", args -> (
      match List.find_opt (fun v -> not (V.is_null v)) args with
      | Some v -> v
      | None -> V.Null)
  | name, args -> err "unknown function %s/%d" name (List.length args)

let apply_binop op a b =
  match op with
  | "+" -> V.add a b
  | "-" -> V.sub a b
  | "*" -> V.mul a b
  | "/" -> V.div a b
  | "%" -> (
      match (a, b) with
      | V.Null, _ | _, V.Null -> V.Null
      | V.Int x, V.Int y ->
          if y = 0 then raise Division_by_zero else V.Int (x mod y)
      | _ -> err "%% requires integer operands")
  | "||" -> V.concat a b
  | "=" -> V.sql_eq a b
  | "<>" -> V.sql_neq a b
  | "<" -> V.sql_lt a b
  | "<=" -> V.sql_le a b
  | ">" -> V.sql_gt a b
  | ">=" -> V.sql_ge a b
  | op -> err "unknown operator %s" op

let rec eval lookup e =
  match e with
  | E.Const v -> v
  | E.Col c -> lookup c
  | E.Unop ("-", e) -> V.neg (eval lookup e)
  | E.Unop ("NOT", e) -> V.sql_not (eval lookup e)
  | E.Unop (op, _) -> err "unknown unary operator %s" op
  | E.Binop ("AND", a, b) ->
      (* short-circuit on definite FALSE, preserving 3VL *)
      let va = eval lookup a in
      if va = V.Bool false then V.Bool false else V.sql_and va (eval lookup b)
  | E.Binop ("OR", a, b) ->
      let va = eval lookup a in
      if va = V.Bool true then V.Bool true else V.sql_or va (eval lookup b)
  | E.Binop (op, a, b) -> apply_binop op (eval lookup a) (eval lookup b)
  | E.Fncall (f, args) -> apply_fn f (List.map (eval lookup) args)
  | E.Agg _ -> invalid_arg "Eval.eval: aggregate outside a GROUP BY box"
  | E.Is_null (e, positive) ->
      let v = eval lookup e in
      V.Bool (if positive then V.is_null v else not (V.is_null v))
  | E.Case (arms, els) -> (
      let rec try_arms = function
        | [] -> ( match els with Some e -> eval lookup e | None -> V.Null)
        | (c, v) :: rest ->
            if V.is_true (eval lookup c) then eval lookup v else try_arms rest
      in
      try_arms arms)

let is_satisfied lookup p = V.is_true (eval lookup p)
