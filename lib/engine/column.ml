(* Typed column vectors for the vectorized executor (DESIGN.md §15).

   A column is one unboxed buffer per runtime type plus an optional
   byte-per-row validity mask (1 = NULL; the data slot under a set byte is
   zero padding). A batch is a set of equal-length columns with names — the
   columnar mirror of a [Data.Relation.t].

   Numeric buffers are Bigarrays, not OCaml arrays, deliberately: column
   data lives outside the OCaml heap, so the garbage collector neither
   scans it during marking nor paces major slices against the multi-
   megabyte transient buffers a scan produces. With heap arrays the
   executor's cost was dominated by GC work proportional to allocation
   size times live-heap size; with Bigarrays a batch costs a malloc.

   Decoding a relation classifies each column in one pass (all-Int, numeric
   Int/Float mix promoted to float, dictionary-encoded strings, booleans,
   dates) and falls back to a boxed [Value.t array] for anything mixed —
   the executor's kernels then degrade gracefully per column instead of
   refusing the whole batch. Base-table decodes are cached process-wide,
   keyed by the relation's unique stamp ([Relation.id]): relations are
   immutable, so a stamp fully identifies the payload, and DML produces a
   fresh relation (fresh stamp) whose old columns simply age out of the
   LRU. The cache is mutex-protected — executor domains share it. *)

module V = Data.Value
module R = Data.Relation
module BA1 = Bigarray.Array1

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) BA1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t

let icreate n : ints = BA1.create Bigarray.int Bigarray.c_layout n
let fcreate n : floats = BA1.create Bigarray.float64 Bigarray.c_layout n

(* ------------------------------------------------------------------ *)
(* Scratch arena                                                       *)
(* ------------------------------------------------------------------ *)

(* Executing one query allocates tens of megabytes of short-lived numeric
   buffers (selections, gathered columns, kernel outputs). Allocating each
   as a fresh Bigarray is correct but slow for two compounding reasons:
   the runtime charges out-of-heap custom memory to the major GC, whose
   marking slices then repeatedly traverse the (large, boxed, static)
   database heap; and once freed, multi-megabyte blocks go back to the OS,
   so the next query pays kernel zeroing and page faults again.

   Instead, scratch buffers are bump-allocated from pooled chunks. A
   domain-local arena is armed for the duration of one [Exec.run]
   ([scratch_begin]/[scratch_end], nestable); every chunk returns to a
   process-wide pool at the end of the run, so steady state allocates
   nothing. Scratch buffers must not outlive the run — executor results
   are converted to boxed relations before the arena resets, and the
   decode cache uses permanent allocations ([icreate]/[fcreate]). When no
   arena is armed (unit tests driving kernels directly), scratch requests
   degrade to permanent allocations. *)

let chunk_elems = 1 lsl 20 (* 8 MB *)
let pool_max_chunks = 24 (* per kind: bounds idle pool at ~192 MB *)

let ipool : ints list ref = ref []
let fpool : floats list ref = ref []
let pool_mutex = Mutex.create ()

let take_chunk pool n =
  Mutex.lock pool_mutex;
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | c :: rest ->
        if BA1.dim c >= n then (Some c, List.rev_append acc rest)
        else go (c :: acc) rest
  in
  let found, rest = go [] !pool in
  pool := rest;
  Mutex.unlock pool_mutex;
  found

let give_chunks pool cs =
  Mutex.lock pool_mutex;
  List.iter
    (fun c -> if List.length !pool < pool_max_chunks then pool := c :: !pool)
    cs;
  Mutex.unlock pool_mutex

type arena = {
  mutable icur : ints;
  mutable ioff : int;
  mutable iused : ints list;
  mutable fcur : floats;
  mutable foff : int;
  mutable fused : floats list;
  mutable depth : int;
}

let arena_key =
  Domain.DLS.new_key (fun () ->
      {
        icur = icreate 0;
        ioff = 0;
        iused = [];
        fcur = fcreate 0;
        foff = 0;
        fused = [];
        depth = 0;
      })

let scratch_begin () =
  let a = Domain.DLS.get arena_key in
  a.depth <- a.depth + 1

let scratch_end () =
  let a = Domain.DLS.get arena_key in
  a.depth <- a.depth - 1;
  if a.depth <= 0 then begin
    a.depth <- 0;
    let is = if BA1.dim a.icur > 0 then a.icur :: a.iused else a.iused in
    let fs = if BA1.dim a.fcur > 0 then a.fcur :: a.fused else a.fused in
    a.icur <- icreate 0;
    a.ioff <- 0;
    a.iused <- [];
    a.fcur <- fcreate 0;
    a.foff <- 0;
    a.fused <- [];
    give_chunks ipool is;
    give_chunks fpool fs
  end

let scratch_ints n : ints =
  let a = Domain.DLS.get arena_key in
  if a.depth = 0 then icreate n
  else begin
    if n > BA1.dim a.icur - a.ioff then begin
      if BA1.dim a.icur > 0 then a.iused <- a.icur :: a.iused;
      let cap = max chunk_elems n in
      a.icur <-
        (match take_chunk ipool cap with Some c -> c | None -> icreate cap);
      a.ioff <- 0
    end;
    let b = BA1.sub a.icur a.ioff n in
    a.ioff <- a.ioff + n;
    b
  end

let scratch_floats n : floats =
  let a = Domain.DLS.get arena_key in
  if a.depth = 0 then fcreate n
  else begin
    if n > BA1.dim a.fcur - a.foff then begin
      if BA1.dim a.fcur > 0 then a.fused <- a.fcur :: a.fused;
      let cap = max chunk_elems n in
      a.fcur <-
        (match take_chunk fpool cap with Some c -> c | None -> fcreate cap);
      a.foff <- 0
    end;
    let b = BA1.sub a.fcur a.foff n in
    a.foff <- a.foff + n;
    b
  end

type data =
  | Ints of ints
  | Floats of floats
  | Dates of ints               (* yyyymmdd encoding, as in Value.Date *)
  | Bools of Bytes.t            (* '\001' = true *)
  | Dict of ints * string array (* per-row code into the dictionary *)
  | Boxed of V.t array          (* mixed / unclassified *)

type t = { data : data; nulls : Bytes.t option }

type batch = { names : string array; cols : t array; nrows : int }

let length c =
  match c.data with
  | Ints a | Dates a -> BA1.dim a
  | Floats a -> BA1.dim a
  | Bools b -> Bytes.length b
  | Dict (codes, _) -> BA1.dim codes
  | Boxed a -> Array.length a

let is_null c i =
  match c.nulls with None -> false | Some m -> Bytes.unsafe_get m i = '\001'

let get c i =
  if is_null c i then V.Null
  else
    match c.data with
    | Ints a -> V.Int (BA1.get a i)
    | Floats a -> V.Float (BA1.get a i)
    | Dates a -> V.Date (BA1.get a i)
    | Bools b -> V.Bool (Bytes.get b i = '\001')
    | Dict (codes, dict) -> V.Str dict.(BA1.get codes i)
    | Boxed a -> a.(i)

(* ------------------------------------------------------------------ *)
(* Classification / decode                                             *)
(* ------------------------------------------------------------------ *)

let no_nulls m = Bytes.for_all (fun c -> c = '\000') m

let of_values (vals : V.t array) : t =
  let n = Array.length vals in
  let ints = ref 0 and floats = ref 0 and strs = ref 0 and bools = ref 0 in
  let dates = ref 0 and nulls = ref 0 in
  for i = 0 to n - 1 do
    match vals.(i) with
    | V.Null -> incr nulls
    | V.Int _ -> incr ints
    | V.Float _ -> incr floats
    | V.Str _ -> incr strs
    | V.Bool _ -> incr bools
    | V.Date _ -> incr dates
  done;
  let nonnull = n - !nulls in
  let mask = if !nulls > 0 then Some (Bytes.make n '\000') else None in
  let set_null i = match mask with Some m -> Bytes.set m i '\001' | None -> () in
  let data =
    if nonnull = 0 then begin
      (match mask with Some m -> Bytes.fill m 0 n '\001' | None -> ());
      Boxed (Array.map (fun _ -> V.Null) vals)
    end
    else if !ints = nonnull then begin
      let a = icreate n in
      for i = 0 to n - 1 do
        match vals.(i) with
        | V.Int x -> BA1.unsafe_set a i x
        | _ ->
            BA1.unsafe_set a i 0;
            set_null i
      done;
      Ints a
    end
    else if !ints + !floats = nonnull then begin
      let a = fcreate n in
      for i = 0 to n - 1 do
        match vals.(i) with
        | V.Int x -> BA1.unsafe_set a i (float_of_int x)
        | V.Float x -> BA1.unsafe_set a i x
        | _ ->
            BA1.unsafe_set a i 0.0;
            set_null i
      done;
      Floats a
    end
    else if !strs = nonnull then begin
      let codes = icreate n in
      let tbl = Hashtbl.create 64 in
      let dict = ref [] and next = ref 0 in
      for i = 0 to n - 1 do
        match vals.(i) with
        | V.Str s ->
            let code =
              match Hashtbl.find_opt tbl s with
              | Some c -> c
              | None ->
                  let c = !next in
                  Hashtbl.add tbl s c;
                  dict := s :: !dict;
                  incr next;
                  c
            in
            BA1.unsafe_set codes i code
        | _ ->
            BA1.unsafe_set codes i 0;
            set_null i
      done;
      Dict (codes, Array.of_list (List.rev !dict))
    end
    else if !dates = nonnull then begin
      let a = icreate n in
      for i = 0 to n - 1 do
        match vals.(i) with
        | V.Date x -> BA1.unsafe_set a i x
        | _ ->
            BA1.unsafe_set a i 0;
            set_null i
      done;
      Dates a
    end
    else if !bools = nonnull then begin
      let b = Bytes.make n '\000' in
      for i = 0 to n - 1 do
        match vals.(i) with
        | V.Bool true -> Bytes.set b i '\001'
        | V.Bool false -> ()
        | _ -> set_null i
      done;
      Bools b
    end
    else begin
      (* mixed tags: keep boxed, but still record the mask for kernels *)
      for i = 0 to n - 1 do
        if V.is_null vals.(i) then set_null i
      done;
      Boxed (Array.copy vals)
    end
  in
  { data; nulls = mask }

let to_values c =
  let n = length c in
  Array.init n (get c)

let const v n : t =
  match v with
  | V.Null -> { data = Boxed (Array.make n V.Null); nulls = Some (Bytes.make n '\001') }
  | V.Int x ->
      let a = scratch_ints n in
      BA1.fill a x;
      { data = Ints a; nulls = None }
  | V.Float x ->
      let a = scratch_floats n in
      BA1.fill a x;
      { data = Floats a; nulls = None }
  | V.Date x ->
      let a = scratch_ints n in
      BA1.fill a x;
      { data = Dates a; nulls = None }
  | V.Bool b -> { data = Bools (Bytes.make n (if b then '\001' else '\000')); nulls = None }
  | V.Str s ->
      let codes = scratch_ints n in
      BA1.fill codes 0;
      { data = Dict (codes, [| s |]); nulls = None }

(* ------------------------------------------------------------------ *)
(* Batch <-> relation                                                  *)
(* ------------------------------------------------------------------ *)

let decodes = Obs.Metrics.counter "exec.col_decodes"
let decode_hits = Obs.Metrics.counter "exec.col_decode_hits"
let decode_ms = Obs.Metrics.histogram "exec.col_decode_ms"
let decoded_rows = Obs.Metrics.counter "exec.col_decoded_rows"

let of_relation (r : R.t) : batch =
  Obs.Metrics.incr decodes;
  Obs.Metrics.add decoded_rows (R.cardinality r);
  Obs.Metrics.time decode_ms @@ fun () ->
  let rows = R.rows_array r in
  let names = R.columns r in
  let n = Array.length rows in
  let cols =
    Array.mapi
      (fun ci _ -> of_values (Array.init n (fun i -> rows.(i).(ci))))
      names
  in
  { names; cols; nrows = n }

let to_relation (b : batch) : R.t =
  let rows =
    List.init b.nrows (fun i ->
        Array.map (fun c -> get c i) b.cols)
  in
  R.create (Array.to_list b.names) rows

(* ------------------------------------------------------------------ *)
(* Gather (row selection by index)                                     *)
(* ------------------------------------------------------------------ *)

let gather (c : t) (idx : ints) (k : int) : t =
  let data =
    match c.data with
    | Ints a ->
        let out = scratch_ints k in
        for i = 0 to k - 1 do
          BA1.unsafe_set out i (BA1.unsafe_get a (BA1.unsafe_get idx i))
        done;
        Ints out
    | Dates a ->
        let out = scratch_ints k in
        for i = 0 to k - 1 do
          BA1.unsafe_set out i (BA1.unsafe_get a (BA1.unsafe_get idx i))
        done;
        Dates out
    | Floats a ->
        let out = scratch_floats k in
        for i = 0 to k - 1 do
          BA1.unsafe_set out i (BA1.unsafe_get a (BA1.unsafe_get idx i))
        done;
        Floats out
    | Bools b -> Bools (Bytes.init k (fun i -> Bytes.unsafe_get b (BA1.unsafe_get idx i)))
    | Dict (codes, dict) ->
        let out = scratch_ints k in
        for i = 0 to k - 1 do
          BA1.unsafe_set out i (BA1.unsafe_get codes (BA1.unsafe_get idx i))
        done;
        Dict (out, dict)
    | Boxed a -> Boxed (Array.init k (fun i -> Array.unsafe_get a (BA1.unsafe_get idx i)))
  in
  let nulls =
    match c.nulls with
    | None -> None
    | Some m ->
        let m' = Bytes.init k (fun i -> Bytes.unsafe_get m (BA1.unsafe_get idx i)) in
        if no_nulls m' then None else Some m'
  in
  { data; nulls }

(* ------------------------------------------------------------------ *)
(* Decode cache                                                        *)
(* ------------------------------------------------------------------ *)

let cache_cap = 16
let cache : (int, batch * int ref) Hashtbl.t = Hashtbl.create 32
let cache_mutex = Mutex.create ()
let cache_tick = ref 0

let cached (r : R.t) : batch =
  let key = R.id r in
  let hit =
    Mutex.lock cache_mutex;
    let res =
      match Hashtbl.find_opt cache key with
      | Some (b, stamp) ->
          incr cache_tick;
          stamp := !cache_tick;
          Some b
      | None -> None
    in
    Mutex.unlock cache_mutex;
    res
  in
  match hit with
  | Some b ->
      Obs.Metrics.incr decode_hits;
      b
  | None ->
      let b = of_relation r in
      Mutex.lock cache_mutex;
      incr cache_tick;
      Hashtbl.replace cache key (b, ref !cache_tick);
      if Hashtbl.length cache > cache_cap then begin
        (* evict the least-recently-used entry *)
        let victim = ref (-1) and oldest = ref max_int in
        Hashtbl.iter
          (fun k (_, stamp) ->
            if !stamp < !oldest then begin
              oldest := !stamp;
              victim := k
            end)
          cache;
        if !victim >= 0 then Hashtbl.remove cache !victim
      end;
      Mutex.unlock cache_mutex;
      b

let cache_clear () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex
