(* Vectorized (batch-at-a-time) QGM operators over typed column vectors.

   Execution here is column-at-a-time over whole-relation batches: scan
   decodes a base table once (through Column's LRU cache), filter evaluates
   predicates as vector kernels producing selection indices, joins build
   hash tables on key columns and gather matching rows, and aggregation
   assigns dense group ids in one pass then folds each aggregate in a tight
   typed loop. Everything that falls outside the kernels — DISTINCT
   aggregates, CASE expressions, UNION — is left to the row interpreter:
   Exec dispatches per box, so a single exotic operator degrades only
   itself, not the plan.

   Semantics notes (kept bit-compatible with the row engine, which the
   3-engine differential fuzz in test/test_differential.ml enforces):
   - AND/OR evaluate their right operand only on rows the row interpreter
     would (left ≠ FALSE for AND, ≠ TRUE for OR), so data-dependent errors
     (division by zero) surface identically.
   - Join and group hash keys honor SQL grouping equality: NULL groups
     with NULL, Int and Float compare numerically.
   - Operator output row order matches the row engine exactly (left-major
     joins, first-seen group order), so ORDER BY ties break the same way.
   - Boxed fallback kernels route through Eval's scalar kernels, so error
     messages and 3VL corner cases cannot drift between engines. *)

module V = Data.Value
module R = Data.Relation
module E = Qgm.Expr
module B = Qgm.Box
module C = Column
module BA1 = Bigarray.Array1

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let x_batch_rows = Obs.Metrics.counter "exec.batch_rows"

(* ------------------------------------------------------------------ *)
(* Shared hashing on boxed values (SQL grouping equality)              *)
(* ------------------------------------------------------------------ *)

module Vkey = struct
  type t = V.t list

  let equal a b = List.length a = List.length b && List.for_all2 V.equal a b
  let hash k = List.fold_left (fun h v -> (h * 31) + V.hash v) 17 k
end

module VH = Hashtbl.Make (Vkey)

(* ------------------------------------------------------------------ *)
(* Growable int buffer (join outputs, selections)                      *)
(* ------------------------------------------------------------------ *)

(* Backed by a Bigarray, like column data: index buffers reach millions of
   entries, and keeping them off the OCaml heap keeps the GC out of the
   executor's inner loops. *)
type ibuf = { mutable ib_arr : C.ints; mutable ib_len : int }

let ibuf_create n = { ib_arr = C.scratch_ints (max 16 n); ib_len = 0 }

let ibuf_push b x =
  if b.ib_len = BA1.dim b.ib_arr then begin
    let bigger = C.scratch_ints (2 * b.ib_len) in
    BA1.blit b.ib_arr (BA1.sub bigger 0 b.ib_len);
    b.ib_arr <- bigger
  end;
  BA1.unsafe_set b.ib_arr b.ib_len x;
  b.ib_len <- b.ib_len + 1

(* The buffer's live prefix, zero-copy: (indices, count). *)
let ibuf_sel b = (b.ib_arr, b.ib_len)

(* ------------------------------------------------------------------ *)
(* Which expression shapes the kernels cover                           *)
(* ------------------------------------------------------------------ *)

(* CASE is the one value shape left to the row interpreter: its arms are
   evaluated lazily per row, and replicating that masking for arbitrary
   nesting buys little (CASE predicates are rare in this workload).
   Aggregates never appear in scalar position. Everything else either has
   a typed kernel or a boxed per-row fallback through Eval. *)
let rec expr_ok = function
  | E.Const _ | E.Col _ -> true
  | E.Unop (("-" | "NOT"), e) -> expr_ok e
  | E.Unop _ -> false
  | E.Binop (_, a, b) -> expr_ok a && expr_ok b
  | E.Fncall (_, es) -> List.for_all expr_ok es
  | E.Is_null (e, _) -> expr_ok e
  | E.Agg _ -> false
  | E.Case _ -> false

let box_supported (body : B.body) =
  match body with
  | B.Base _ -> true
  | B.Select s ->
      List.for_all expr_ok s.sel_preds
      && List.for_all (fun (_, e) -> expr_ok e) s.sel_outs
  | B.Group g ->
      (* DISTINCT aggregates keep a per-group seen-set: row path *)
      List.for_all (fun (_, a) -> not a.B.agg.E.distinct) g.grp_aggs
  | B.Union _ -> false

(* ------------------------------------------------------------------ *)
(* Vectorized expression evaluation                                    *)
(* ------------------------------------------------------------------ *)

(* A select box's working set: columns addressed by (quantifier, column)
   like the row engine's layout, one column vector per slot. *)
type lbatch = { lay : (int * string) array; lcols : C.t array; ln : int }

type vv = Vec of C.t | Scal of V.t

let vv_get ctx_n v i =
  ignore ctx_n;
  match v with Vec c -> C.get c i | Scal s -> s

let vv_null v i =
  match v with Vec c -> C.is_null c i | Scal s -> V.is_null s

let vv_col n = function Vec c -> c | Scal s -> C.const s n

let lay_index (lay : (int * string) array) quant col =
  let col = String.lowercase_ascii col in
  let n = Array.length lay in
  let rec go i =
    if i >= n then None
    else
      let q, c = lay.(i) in
      if q = quant && c = col then Some i else go (i + 1)
  in
  go 0

let lookup_col ctx { B.quant; col } =
  match lay_index ctx.lay quant col with
  | Some i -> ctx.lcols.(i)
  | None -> err "unresolved column reference q%d.%s" quant col

(* Merge null masks of two operands into a fresh result mask. *)
let merged_nulls n a b =
  let any =
    (match a with Vec { C.nulls = Some _; _ } -> true | Scal s -> V.is_null s | _ -> false)
    || (match b with Vec { C.nulls = Some _; _ } -> true | Scal s -> V.is_null s | _ -> false)
  in
  if not any then None
  else begin
    let m = Bytes.make n '\000' in
    for i = 0 to n - 1 do
      if vv_null a i || vv_null b i then Bytes.unsafe_set m i '\001'
    done;
    Some m
  end

type nview =
  | NIv of C.ints
  | NFv of C.floats
  | NIs of int
  | NFs of float
  | NNull
  | NOther

let num_view = function
  | Vec { C.data = C.Ints a; _ } -> NIv a
  | Vec { C.data = C.Floats a; _ } -> NFv a
  | Scal (V.Int x) -> NIs x
  | Scal (V.Float x) -> NFs x
  | Scal V.Null -> NNull
  | _ -> NOther

let all_null n = { C.data = C.Boxed (Array.make n V.Null); nulls = Some (Bytes.make n '\001') }

let int_ops = function
  | "+" -> Some ( + )
  | "-" -> Some ( - )
  | "*" -> Some ( * )
  | "/" -> Some (fun x y -> if y = 0 then raise Division_by_zero else x / y)
  | "%" -> Some (fun x y -> if y = 0 then raise Division_by_zero else x mod y)
  | _ -> None

let float_ops = function
  | "+" -> Some ( +. )
  | "-" -> Some ( -. )
  | "*" -> Some ( *. )
  | "/" -> Some ( /. )
  | _ -> None

let cmp_test = function
  | "=" -> Some (fun c -> c = 0)
  | "<>" -> Some (fun c -> c <> 0)
  | "<" -> Some (fun c -> c < 0)
  | "<=" -> Some (fun c -> c <= 0)
  | ">" -> Some (fun c -> c > 0)
  | ">=" -> Some (fun c -> c >= 0)
  | _ -> None

(* Per-row fallback through the scalar kernel: exact row-engine semantics
   (including error messages) at boxed speed, for odd type combinations. *)
let boxed_binop op n a b =
  let va = Array.init n (fun i -> Eval.apply_binop op (vv_get n a i) (vv_get n b i)) in
  Vec (C.of_values va)

(* Materialize a numeric operand as a full-width typed buffer, so the op
   loops below run closure-free (composing accessor closures would box
   floats at every call). Padding under a null mask stays 0/0.0. *)
let int_coerce n = function
  | NIv a -> a
  | NIs x ->
      let out = C.scratch_ints n in
      BA1.fill out x;
      out
  | _ -> assert false

let float_coerce n = function
  | NFv a -> a
  | NIv a ->
      let out = C.scratch_floats n in
      for i = 0 to n - 1 do
        BA1.unsafe_set out i (float_of_int (BA1.unsafe_get a i))
      done;
      out
  | NFs x ->
      let out = C.scratch_floats n in
      BA1.fill out x;
      out
  | NIs x ->
      let out = C.scratch_floats n in
      BA1.fill out (float_of_int x);
      out
  | _ -> assert false

let arith op n a b =
  match (int_ops op, float_ops op, num_view a, num_view b) with
  | _, _, NNull, _ | _, _, _, NNull ->
      (* NULL absorbs before any type checking, as in Value.arith *)
      Vec (all_null n)
  | Some fi, _, ((NIv _ | NIs _) as va), ((NIv _ | NIs _) as vb) ->
      let x = int_coerce n va and y = int_coerce n vb in
      let out = C.scratch_ints n in
      let nulls = merged_nulls n a b in
      (match (op, nulls) with
      | "+", None ->
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (BA1.unsafe_get x i + BA1.unsafe_get y i)
          done
      | "-", None ->
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (BA1.unsafe_get x i - BA1.unsafe_get y i)
          done
      | "*", None ->
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (BA1.unsafe_get x i * BA1.unsafe_get y i)
          done
      | _, None ->
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (fi (BA1.unsafe_get x i) (BA1.unsafe_get y i))
          done
      | _, Some m ->
          (* masked rows are skipped, not computed: 0 padding under the
             mask must not raise Division_by_zero *)
          for i = 0 to n - 1 do
            if Bytes.unsafe_get m i = '\000' then
              BA1.unsafe_set out i (fi (BA1.unsafe_get x i) (BA1.unsafe_get y i))
            else BA1.unsafe_set out i 0
          done);
      Vec { C.data = C.Ints out; nulls }
  | _, Some _, ((NIv _ | NIs _ | NFv _ | NFs _) as va), ((NIv _ | NIs _ | NFv _ | NFs _) as vb)
    ->
      let x = float_coerce n va and y = float_coerce n vb in
      let out = C.scratch_floats n in
      let nulls = merged_nulls n a b in
      (* float ops cannot raise: compute every row branch-free, then zero
         the padding under the mask *)
      (match op with
      | "+" ->
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (BA1.unsafe_get x i +. BA1.unsafe_get y i)
          done
      | "-" ->
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (BA1.unsafe_get x i -. BA1.unsafe_get y i)
          done
      | "*" ->
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (BA1.unsafe_get x i *. BA1.unsafe_get y i)
          done
      | "/" ->
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (BA1.unsafe_get x i /. BA1.unsafe_get y i)
          done
      | _ -> assert false);
      (match nulls with
      | Some m ->
          for i = 0 to n - 1 do
            if Bytes.unsafe_get m i = '\001' then BA1.unsafe_set out i 0.0
          done
      | None -> ());
      Vec { C.data = C.Floats out; nulls }
  | _ -> boxed_binop op n a b

let compare_kernel a b =
  (* Returns [Some at] where [at i] is a V.compare-compatible int for
     non-null rows, or [None] when no typed comparison applies. *)
  match (a, b) with
  | Vec { C.data = C.Dates x; _ }, Vec { C.data = C.Dates y; _ } ->
      Some (fun i -> compare (BA1.unsafe_get x i) (BA1.unsafe_get y i))
  | Vec { C.data = C.Dates x; _ }, Scal (V.Date y) ->
      Some (fun i -> compare (BA1.unsafe_get x i) y)
  | Scal (V.Date x), Vec { C.data = C.Dates y; _ } ->
      Some (fun i -> compare x (BA1.unsafe_get y i))
  | Vec { C.data = C.Dict (xc, xd); _ }, Vec { C.data = C.Dict (yc, yd); _ } ->
      Some
        (fun i -> String.compare xd.(BA1.unsafe_get xc i) yd.(BA1.unsafe_get yc i))
  | Vec { C.data = C.Dict (xc, xd); _ }, Scal (V.Str s) ->
      (* precompute per-dictionary-code comparisons once *)
      let byc = Array.map (fun d -> String.compare d s) xd in
      Some (fun i -> byc.(BA1.unsafe_get xc i))
  | Scal (V.Str s), Vec { C.data = C.Dict (yc, yd); _ } ->
      let byc = Array.map (fun d -> String.compare s d) yd in
      Some (fun i -> byc.(BA1.unsafe_get yc i))
  | _ -> (
      (* one monomorphic closure per operand-shape pair: composing generic
         accessor closures would box every float crossing the boundary,
         which dominates the kernel at batch sizes *)
      match (num_view a, num_view b) with
      | NIv x, NIv y ->
          Some (fun i -> compare (BA1.unsafe_get x i) (BA1.unsafe_get y i))
      | NIv x, NIs y -> Some (fun i -> compare (BA1.unsafe_get x i) y)
      | NIs x, NIv y -> Some (fun i -> compare x (BA1.unsafe_get y i))
      | NIs x, NIs y ->
          let c = compare x y in
          Some (fun _ -> c)
      | NFv x, NFv y ->
          Some (fun i -> Float.compare (BA1.unsafe_get x i) (BA1.unsafe_get y i))
      | NFv x, NFs y -> Some (fun i -> Float.compare (BA1.unsafe_get x i) y)
      | NFs x, NFv y -> Some (fun i -> Float.compare x (BA1.unsafe_get y i))
      | NFs x, NFs y ->
          let c = Float.compare x y in
          Some (fun _ -> c)
      | NFv x, NIv y ->
          Some
            (fun i ->
              Float.compare (BA1.unsafe_get x i) (float_of_int (BA1.unsafe_get y i)))
      | NIv x, NFv y ->
          Some
            (fun i ->
              Float.compare (float_of_int (BA1.unsafe_get x i)) (BA1.unsafe_get y i))
      | NFv x, NIs y ->
          let yf = float_of_int y in
          Some (fun i -> Float.compare (BA1.unsafe_get x i) yf)
      | NIs x, NFv y ->
          let xf = float_of_int x in
          Some (fun i -> Float.compare xf (BA1.unsafe_get y i))
      | NIv x, NFs y ->
          Some (fun i -> Float.compare (float_of_int (BA1.unsafe_get x i)) y)
      | NFs x, NIv y ->
          Some (fun i -> Float.compare x (float_of_int (BA1.unsafe_get y i)))
      | NIs x, NFs y ->
          let c = Float.compare (float_of_int x) y in
          Some (fun _ -> c)
      | NFs x, NIs y ->
          let c = Float.compare x (float_of_int y) in
          Some (fun _ -> c)
      | (NNull | NOther), _ | _, (NNull | NOther) -> None)

let cmp op n a b =
  match cmp_test op with
  | None -> boxed_binop op n a b
  | Some test -> (
      match compare_kernel a b with
      | None -> boxed_binop op n a b
      | Some at ->
          let bits = Bytes.make n '\000' in
          let nulls = merged_nulls n a b in
          (match nulls with
          | None ->
              for i = 0 to n - 1 do
                if test (at i) then Bytes.unsafe_set bits i '\001'
              done
          | Some m ->
              for i = 0 to n - 1 do
                if Bytes.unsafe_get m i = '\000' && test (at i) then
                  Bytes.unsafe_set bits i '\001'
              done);
          Vec { C.data = C.Bools bits; nulls })

(* three-valued truth of a row: 0 = FALSE, 1 = TRUE, 2 = NULL; raises on
   non-boolean exactly where the scalar kernel would *)
let tri_of_value op = function
  | V.Bool true -> 1
  | V.Bool false -> 0
  | V.Null -> 2
  | _ -> raise (V.Type_error (op ^ " applied to non-boolean value"))

let tri_at op v =
  match v with
  | Scal s ->
      let t = tri_of_value op s in
      fun _ -> t
  | Vec ({ C.data = C.Bools bits; _ } as c) ->
      fun i -> if C.is_null c i then 2 else Char.code (Bytes.unsafe_get bits i)
  | Vec c -> fun i -> tri_of_value op (C.get c i)

(* Compact a select working set down to the columns [e] references and the
   rows of [sel] — the sub-batch on which a lazily-evaluated operand runs. *)
let compact_for ctx (sel, k) e =
  let refs =
    List.sort_uniq compare
      (List.map (fun r -> (r.B.quant, String.lowercase_ascii r.B.col)) (E.cols e))
  in
  let pairs =
    List.filter_map
      (fun (q, c) ->
        match lay_index ctx.lay q c with
        | Some i -> Some ((q, c), C.gather ctx.lcols.(i) sel k)
        | None -> None)
      refs
  in
  {
    lay = Array.of_list (List.map fst pairs);
    lcols = Array.of_list (List.map snd pairs);
    ln = k;
  }

let rec eval (ctx : lbatch) (e : B.qref E.t) : vv =
  let n = ctx.ln in
  match e with
  | E.Const v -> Scal v
  | E.Col r -> Vec (lookup_col ctx r)
  | E.Unop ("-", e') -> (
      let v = eval ctx e' in
      match v with
      | Scal s -> Scal (V.neg s)
      | Vec ({ C.data = C.Ints a; _ } as c) ->
          let out = C.scratch_ints n in
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (-BA1.unsafe_get a i)
          done;
          Vec { c with C.data = C.Ints out }
      | Vec ({ C.data = C.Floats a; _ } as c) ->
          let out = C.scratch_floats n in
          for i = 0 to n - 1 do
            BA1.unsafe_set out i (-.BA1.unsafe_get a i)
          done;
          Vec { c with C.data = C.Floats out }
      | Vec c -> Vec (C.of_values (Array.init n (fun i -> V.neg (C.get c i)))))
  | E.Unop ("NOT", e') ->
      let v = eval ctx e' in
      let at = tri_at "NOT" v in
      let bits = Bytes.make n '\000' in
      let nulls = ref None in
      for i = 0 to n - 1 do
        match at i with
        | 0 -> Bytes.unsafe_set bits i '\001'
        | 1 -> ()
        | _ ->
            (match !nulls with
            | None -> nulls := Some (Bytes.make n '\000')
            | Some _ -> ());
            Bytes.set (Option.get !nulls) i '\001'
      done;
      Vec { C.data = C.Bools bits; nulls = !nulls }
  | E.Unop (op, _) -> err "unknown unary operator %s" op
  | E.Binop ("AND", a, b) -> and_or ctx ~op:"AND" a b
  | E.Binop ("OR", a, b) -> and_or ctx ~op:"OR" a b
  | E.Binop (op, a, b) -> (
      let va = eval ctx a in
      let vb = eval ctx b in
      match (va, vb) with
      | Scal x, Scal y -> Scal (Eval.apply_binop op x y)
      | _ ->
          if cmp_test op <> None then cmp op n va vb
          else if int_ops op <> None || float_ops op <> None then arith op n va vb
          else boxed_binop op n va vb)
  | E.Fncall (f, args) -> eval_fn ctx f args
  | E.Agg _ -> invalid_arg "Vexec.eval: aggregate outside a GROUP BY box"
  | E.Is_null (e', positive) -> (
      let v = eval ctx e' in
      match v with
      | Scal s -> Scal (V.Bool (if positive then V.is_null s else not (V.is_null s)))
      | Vec c ->
          let bits = Bytes.make n '\000' in
          for i = 0 to n - 1 do
            if C.is_null c i = positive then Bytes.unsafe_set bits i '\001'
          done;
          Vec { C.data = C.Bools bits; nulls = None })
  | E.Case _ -> err "CASE is not vectorized (row fallback expected)"

(* AND/OR with the row engine's short-circuit: the right operand is only
   evaluated on rows where the left side does not already decide. *)
and and_or ctx ~op a b =
  let n = ctx.ln in
  let va = eval ctx a in
  let short = if op = "AND" then 0 else 1 in
  let ta = tri_at op va in
  (* rows the row engine would evaluate [b] on *)
  let live = ibuf_create n in
  let tas = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    let t = ta i in
    Bytes.unsafe_set tas i (Char.unsafe_chr t);
    if t <> short then ibuf_push live i
  done;
  let sel, k = ibuf_sel live in
  let tb_of =
    if k = 0 then fun _ -> 0 (* never consulted *)
    else if k = n then
      let vb = eval ctx b in
      tri_at op vb
    else begin
      let sub = compact_for ctx (sel, k) b in
      let vb = eval sub b in
      let at = tri_at op vb in
      (* scatter: row index -> tri *)
      let by_row = Bytes.make n '\000' in
      for j = 0 to k - 1 do
        Bytes.unsafe_set by_row (BA1.unsafe_get sel j) (Char.unsafe_chr (at j))
      done;
      fun i -> Char.code (Bytes.unsafe_get by_row i)
    end
  in
  let bits = Bytes.make n '\000' in
  let nulls = ref None in
  let set_null i =
    (match !nulls with None -> nulls := Some (Bytes.make n '\000') | Some _ -> ());
    Bytes.set (Option.get !nulls) i '\001'
  in
  for i = 0 to n - 1 do
    let a_t = Char.code (Bytes.unsafe_get tas i) in
    let t =
      if a_t = short then short
      else
        let tb = tb_of i in
        if op = "AND" then
          match (a_t, tb) with
          | 1, x -> x
          | 2, 0 -> 0
          | 2, _ -> 2
          | _ -> assert false
        else
          match (a_t, tb) with
          | 0, x -> x
          | 2, 1 -> 1
          | 2, _ -> 2
          | _ -> assert false
    in
    if t = 1 then Bytes.unsafe_set bits i '\001' else if t = 2 then set_null i
  done;
  Vec { C.data = C.Bools bits; nulls = !nulls }

and eval_fn ctx f args =
  let n = ctx.ln in
  let vs = List.map (eval ctx) args in
  let boxed () =
    if List.for_all (function Scal _ -> true | Vec _ -> false) vs then
      Scal (Eval.apply_fn f (List.map (fun v -> vv_get n v 0) vs))
    else
      Vec
        (C.of_values
           (Array.init n (fun i -> Eval.apply_fn f (List.map (fun v -> vv_get n v i) vs))))
  in
  let imap a f =
    let k = BA1.dim a in
    let out = C.scratch_ints k in
    for i = 0 to k - 1 do
      BA1.unsafe_set out i (f (BA1.unsafe_get a i))
    done;
    out
  in
  match (String.lowercase_ascii f, vs) with
  | ("year" | "month" | "day"), [ Vec ({ C.data = C.Dates a; _ } as c) ] ->
      let proj =
        match String.lowercase_ascii f with
        | "year" -> fun e -> e / 10000
        | "month" -> fun e -> e / 100 mod 100
        | _ -> fun e -> e mod 100
      in
      Vec { C.data = C.Ints (imap a proj); nulls = c.C.nulls }
  | "float", [ Vec ({ C.data = C.Ints a; _ } as c) ] ->
      let k = BA1.dim a in
      let out = C.scratch_floats k in
      for i = 0 to k - 1 do
        BA1.unsafe_set out i (float_of_int (BA1.unsafe_get a i))
      done;
      Vec { C.data = C.Floats out; nulls = c.C.nulls }
  | "float", [ (Vec { C.data = C.Floats _; _ } as v) ] -> v
  | "abs", [ Vec ({ C.data = C.Ints a; _ } as c) ] ->
      Vec { C.data = C.Ints (imap a abs); nulls = c.C.nulls }
  | "abs", [ Vec ({ C.data = C.Floats a; _ } as c) ] ->
      let k = BA1.dim a in
      let out = C.scratch_floats k in
      for i = 0 to k - 1 do
        BA1.unsafe_set out i (Float.abs (BA1.unsafe_get a i))
      done;
      Vec { C.data = C.Floats out; nulls = c.C.nulls }
  | _ -> boxed ()

(* Selection: indices (ascending) of rows where [p] is definitely TRUE,
   as a (buffer, count) pair. *)
let select_rows ctx p =
  let n = ctx.ln in
  match eval ctx p with
  | Scal s ->
      if V.is_true s then begin
        let idx = C.scratch_ints n in
        for i = 0 to n - 1 do
          BA1.unsafe_set idx i i
        done;
        (idx, n)
      end
      else (C.scratch_ints 0, 0)
  | Vec ({ C.data = C.Bools bits; _ } as c) ->
      (* exact two-pass: count survivors, then fill a right-sized buffer *)
      let k = ref 0 in
      for i = 0 to n - 1 do
        if Bytes.unsafe_get bits i = '\001' && not (C.is_null c i) then incr k
      done;
      let idx = C.scratch_ints !k in
      let j = ref 0 in
      for i = 0 to n - 1 do
        if Bytes.unsafe_get bits i = '\001' && not (C.is_null c i) then begin
          BA1.unsafe_set idx !j i;
          incr j
        end
      done;
      (idx, !k)
  | Vec c ->
      let buf = ibuf_create (n / 2) in
      for i = 0 to n - 1 do
        if V.is_true (C.get c i) then ibuf_push buf i
      done;
      ibuf_sel buf

let gather_lbatch ctx (sel, k) =
  {
    lay = ctx.lay;
    lcols = Array.map (fun c -> C.gather c sel k) ctx.lcols;
    ln = k;
  }

(* ------------------------------------------------------------------ *)
(* Base scan                                                           *)
(* ------------------------------------------------------------------ *)

let batch_col_index (b : C.batch) name =
  let lname = String.lowercase_ascii name in
  let n = Array.length b.C.names in
  let rec go i =
    if i >= n then raise Not_found
    else if String.lowercase_ascii b.C.names.(i) = lname then i
    else go (i + 1)
  in
  go 0

let exec_base db { B.bt_table; bt_cols } : C.batch =
  let rel = Db.get_exn db bt_table in
  let full = C.cached rel in
  {
    C.names = Array.of_list bt_cols;
    cols = Array.of_list (List.map (fun c -> full.C.cols.(batch_col_index full c)) bt_cols);
    nrows = full.C.nrows;
  }

(* ------------------------------------------------------------------ *)
(* Select box: incremental hash join over batches                      *)
(* ------------------------------------------------------------------ *)

let pred_quant_set p = List.sort_uniq compare (List.map (fun r -> r.B.quant) (E.cols p))

(* Predicates safe to evaluate on rows a join might later discard: anything
   free of integer division/modulo, whose Division_by_zero would otherwise
   depend on which rows the join keeps. *)
let rec pred_safe = function
  | E.Const _ | E.Col _ -> true
  | E.Unop (_, e) | E.Is_null (e, _) -> pred_safe e
  | E.Binop (("/" | "%"), _, _) -> false
  | E.Binop (_, a, b) -> pred_safe a && pred_safe b
  | E.Fncall ("mod", _) -> false
  | E.Fncall (_, args) -> List.for_all pred_safe args
  | E.Agg _ | E.Case _ -> false

(* Single-int-key hash join: head table plus a next-index chain, built back
   to front so each chain enumerates build rows in ascending order (the row
   engine's match order). Pushes (probe, build) index pairs onto [li]/[ri].
   Probe rows with [probe_null] are skipped; a [probe_key] with no build
   entry (e.g. the -1 sentinel from dictionary translation) simply misses. *)
let chain_join (build : C.ints) (bnulls : Bytes.t option) n_build
    (probe_null : int -> bool) (probe_key : int -> int) n_probe li ri =
  let head = Hashtbl.create (max 16 n_build) in
  let next = Array.make (max 1 n_build) (-1) in
  for i = n_build - 1 downto 0 do
    let isnull =
      match bnulls with Some m -> Bytes.unsafe_get m i = '\001' | None -> false
    in
    if not isnull then begin
      let k = BA1.unsafe_get build i in
      (match Hashtbl.find_opt head k with
      | Some j -> Array.unsafe_set next i j
      | None -> ());
      Hashtbl.replace head k i
    end
  done;
  for l = 0 to n_probe - 1 do
    if not (probe_null l) then
      match Hashtbl.find_opt head (probe_key l) with
      | None -> ()
      | Some j0 ->
          let j = ref j0 in
          while !j >= 0 do
            ibuf_push li l;
            ibuf_push ri !j;
            j := Array.unsafe_get next !j
          done
  done

let generic_join_matches (build_key : int -> V.t list option) n_build
    (probe_key : int -> V.t list option) : int -> int list =
  let ht = VH.create (max 16 n_build) in
  for i = 0 to n_build - 1 do
    match build_key i with None -> () | Some k -> VH.add ht k i
  done;
  fun p ->
    match probe_key p with None -> [] | Some k -> List.rev (VH.find_all ht k)

let exec_select ~(child : B.quant -> C.batch) (sel : B.select_body) : C.batch =
  let { B.sel_quants = quants; sel_preds = preds; sel_outs = outs; sel_distinct = distinct } =
    sel
  in
  (* initial working set: scalar-subquery columns as single-row constants *)
  let init_lay = ref [] and init_cols = ref [] in
  List.iter
    (fun q ->
      if q.B.q_kind = B.Scalar then begin
        let cb = child q in
        let value ci =
          match cb.C.nrows with
          | 0 -> V.Null
          | 1 -> C.get cb.C.cols.(ci) 0
          | n -> err "scalar subquery returned %d rows" n
        in
        Array.iteri
          (fun ci col ->
            init_lay := !init_lay @ [ (q.B.q_id, String.lowercase_ascii col) ];
            init_cols := !init_cols @ [ C.of_values [| value ci |] ])
          cb.C.names
      end)
    quants;
  let ctx =
    ref
      {
        lay = Array.of_list !init_lay;
        lcols = Array.of_list !init_cols;
        ln = 1;
      }
  in
  let pending = ref (List.map (fun p -> (p, pred_quant_set p)) preds) in
  (* Columns the rest of the pipeline still needs: the outputs plus every
     pending predicate. Join keys live in [pending] until consumed, so a
     column is only pruned once nothing downstream can reference it. *)
  let needed () =
    let tbl = Hashtbl.create 32 in
    let note e =
      List.iter
        (fun r ->
          Hashtbl.replace tbl (r.B.quant, String.lowercase_ascii r.B.col) ())
        (E.cols e)
    in
    List.iter (fun (_, e) -> note e) outs;
    List.iter (fun (p, _) -> note p) !pending;
    tbl
  in
  let prune_lbatch tbl b =
    let ks = ref [] in
    Array.iteri
      (fun i key -> if Hashtbl.mem tbl key then ks := i :: !ks)
      b.lay;
    let ks = Array.of_list (List.rev !ks) in
    if Array.length ks = Array.length b.lay then b
    else
      {
        lay = Array.map (fun i -> b.lay.(i)) ks;
        lcols = Array.map (fun i -> b.lcols.(i)) ks;
        ln = b.ln;
      }
  in
  let lay_quants () =
    Array.to_list !ctx.lay |> List.map fst |> List.sort_uniq compare
  in
  let apply_applicable () =
    let avail = lay_quants () in
    let applicable, rest =
      List.partition
        (fun (_, qs) -> List.for_all (fun q -> List.mem q avail) qs)
        !pending
    in
    pending := rest;
    List.iter
      (fun (p, _) ->
        let (_, k) as sel = select_rows !ctx p in
        if k <> !ctx.ln then ctx := gather_lbatch !ctx sel)
      applicable
  in
  apply_applicable ();
  List.iter
    (fun q ->
      if q.B.q_kind = B.Foreach then begin
        let cb = child q in
        let cb_lnames = Array.map String.lowercase_ascii cb.C.names in
        let col_idx name =
          let name = String.lowercase_ascii name in
          let n = Array.length cb_lnames in
          let rec go i =
            if i >= n then
              err "column %s missing in child of quantifier %d" name q.B.q_id
            else if cb_lnames.(i) = name then i
            else go (i + 1)
          in
          go 0
        in
        (* usable equi-join keys: new-side col = working-set ref *)
        let keys = ref [] in
        pending :=
          List.filter
            (fun (p, _) ->
              match p with
              | E.Binop ("=", E.Col a, E.Col b) ->
                  let try_pair x y =
                    if
                      x.B.quant = q.B.q_id
                      && lay_index !ctx.lay y.B.quant y.B.col <> None
                    then begin
                      (* validate now, look the column up by name later:
                         pruning below shifts indices *)
                      let _ : int = col_idx x.B.col in
                      keys := (x.B.col, y) :: !keys;
                      true
                    end
                    else false
                  in
                  not (try_pair a b || try_pair b a)
              | _ -> true)
            !pending;
        (* push single-quant predicates below the join: filtering one input
           keeps both the probe-major and per-chain orders, so results match
           the row engine row for row *)
        let pushed, rest =
          List.partition (fun (p, qs) -> qs = [ q.B.q_id ] && pred_safe p) !pending
        in
        pending := rest;
        (* drop child columns nothing can touch anymore — before the
           pushdown filter materializes them *)
        let need0 =
          let tbl = needed () in
          let note e =
            List.iter
              (fun r ->
                Hashtbl.replace tbl (r.B.quant, String.lowercase_ascii r.B.col) ())
              (E.cols e)
          in
          List.iter (fun (p, _) -> note p) pushed;
          List.iter
            (fun (nm, _) ->
              Hashtbl.replace tbl (q.B.q_id, String.lowercase_ascii nm) ())
            !keys;
          tbl
        in
        let cbatch =
          ref
            (prune_lbatch need0
               {
                 lay = Array.map (fun nm -> (q.B.q_id, nm)) cb_lnames;
                 lcols = cb.C.cols;
                 ln = cb.C.nrows;
               })
        in
        List.iter
          (fun (p, _) ->
            let (_, k) as s = select_rows !cbatch p in
            if k <> !cbatch.ln then cbatch := gather_lbatch !cbatch s)
          pushed;
        let key_pairs =
          List.map
            (fun (nm, yref) ->
              let bc =
                match lay_index !cbatch.lay q.B.q_id nm with
                | Some i -> !cbatch.lcols.(i)
                | None -> err "join key %s pruned (internal error)" nm
              in
              (bc, lookup_col !ctx yref))
            !keys
        in
        let need = needed () in
        let cpruned = prune_lbatch need !cbatch in
        if Array.length !ctx.lay = 0 && !ctx.ln = 1 && key_pairs = [] then
          (* first scan over the unit row: adopt the filtered, pruned child
             wholesale instead of gathering a cross product *)
          ctx := cpruned
        else begin
          let lpruned = prune_lbatch need !ctx in
          let nl = !ctx.ln and nr = !cbatch.ln in
          let li = ibuf_create (max 16 (max nl nr)) in
          let ri = ibuf_create (max 16 (max nl nr)) in
          (match key_pairs with
          | [] ->
              (* cross product, left-major like the row engine *)
              for l = 0 to nl - 1 do
                for r = 0 to nr - 1 do
                  ibuf_push li l;
                  ibuf_push ri r
                done
              done
          | [ (bc, pc) ] -> (
              (* single-key fast paths on physical representation *)
              match (bc.C.data, pc.C.data) with
              | C.Ints ba, C.Ints pa | C.Dates ba, C.Dates pa ->
                  chain_join ba bc.C.nulls nr
                    (fun l -> C.is_null pc l)
                    (fun l -> BA1.unsafe_get pa l)
                    nl li ri
              | C.Dict (bcodes, bdict), C.Dict (pcodes, pdict) ->
                  (* translate probe codes into the build dictionary; bdict
                     has unique strings by construction, but Dict columns
                     built via [const] may repeat — first wins *)
                  let by_str = Hashtbl.create (Array.length bdict) in
                  Array.iteri
                    (fun code s ->
                      if not (Hashtbl.mem by_str s) then Hashtbl.add by_str s code)
                    bdict;
                  let trans =
                    Array.map
                      (fun s ->
                        match Hashtbl.find_opt by_str s with
                        | Some c -> c
                        | None -> -1)
                      pdict
                  in
                  chain_join bcodes bc.C.nulls nr
                    (fun l -> C.is_null pc l)
                    (fun l -> Array.unsafe_get trans (BA1.unsafe_get pcodes l))
                    nl li ri
              | _ ->
                  let matches =
                    generic_join_matches
                      (fun i ->
                        let v = C.get bc i in
                        if V.is_null v then None else Some [ v ])
                      nr
                      (fun i ->
                        let v = C.get pc i in
                        if V.is_null v then None else Some [ v ])
                  in
                  for l = 0 to nl - 1 do
                    List.iter
                      (fun r ->
                        ibuf_push li l;
                        ibuf_push ri r)
                      (matches l)
                  done)
          | _ ->
              let key_of cols i =
                let vs = List.map (fun c -> C.get c i) cols in
                if List.exists V.is_null vs then None else Some vs
              in
              let bcols = List.map fst key_pairs
              and pcols = List.map snd key_pairs in
              let matches = generic_join_matches (key_of bcols) nr (key_of pcols) in
              for l = 0 to nl - 1 do
                List.iter
                  (fun r ->
                    ibuf_push li l;
                    ibuf_push ri r)
                  (matches l)
              done);
          let lsel, lk = ibuf_sel li and rsel, _ = ibuf_sel ri in
          ctx :=
            {
              lay = Array.append lpruned.lay cpruned.lay;
              lcols =
                Array.append
                  (Array.map (fun c -> C.gather c lsel lk) lpruned.lcols)
                  (Array.map (fun c -> C.gather c rsel lk) cpruned.lcols);
              ln = lk;
            }
        end;
        apply_applicable ()
      end)
    quants;
  if !pending <> [] then
    err "predicate references unavailable quantifier (internal error)";
  Obs.Metrics.add x_batch_rows !ctx.ln;
  (* project outputs *)
  let out_names = List.map fst outs in
  let out_cols =
    List.map (fun (_, e) -> vv_col !ctx.ln (eval !ctx e)) outs
  in
  let result =
    {
      C.names = Array.of_list out_names;
      cols = Array.of_list out_cols;
      nrows = !ctx.ln;
    }
  in
  if not distinct then result
  else begin
    let seen = VH.create 64 in
    let keep = ibuf_create result.C.nrows in
    for i = 0 to result.C.nrows - 1 do
      let key = Array.to_list (Array.map (fun c -> C.get c i) result.C.cols) in
      if not (VH.mem seen key) then begin
        VH.add seen key ();
        ibuf_push keep i
      end
    done;
    let sel, k = ibuf_sel keep in
    {
      result with
      C.cols = Array.map (fun c -> C.gather c sel k) result.C.cols;
      nrows = k;
    }
  end

(* ------------------------------------------------------------------ *)
(* Group box: dense group ids + typed aggregate folds                  *)
(* ------------------------------------------------------------------ *)

(* Pass 1 result: per-row dense group id (first-seen order), the boxed key
   per group (for output), and the group count. *)
let group_ids (cb : C.batch) (key_idx : int list) : C.ints * V.t list array * int =
  let n = cb.C.nrows in
  let gids = C.scratch_ints n in
  let keys = ref [] and ngroups = ref 0 in
  (match key_idx with
  | [ ki ] -> (
      let c = cb.C.cols.(ki) in
      match c.C.data with
      | C.Ints a | C.Dates a ->
          let mk =
            match c.C.data with C.Dates _ -> fun x -> V.Date x | _ -> fun x -> V.Int x
          in
          let ht = Hashtbl.create 256 in
          let null_gid = ref (-1) in
          for i = 0 to n - 1 do
            if C.is_null c i then begin
              if !null_gid < 0 then begin
                null_gid := !ngroups;
                keys := [ V.Null ] :: !keys;
                incr ngroups
              end;
              BA1.unsafe_set gids i !null_gid
            end
            else
              let k = BA1.unsafe_get a i in
              match Hashtbl.find_opt ht k with
              | Some g -> BA1.unsafe_set gids i g
              | None ->
                  Hashtbl.add ht k !ngroups;
                  BA1.unsafe_set gids i !ngroups;
                  keys := [ mk k ] :: !keys;
                  incr ngroups
          done
      | C.Dict (codes, dict) ->
          (* dictionary codes are already dense group candidates *)
          let by_code = Array.make (Array.length dict + 1) (-1) in
          let nullslot = Array.length dict in
          for i = 0 to n - 1 do
            let slot = if C.is_null c i then nullslot else BA1.unsafe_get codes i in
            if by_code.(slot) < 0 then begin
              by_code.(slot) <- !ngroups;
              keys :=
                (if slot = nullslot then [ V.Null ] else [ V.Str dict.(slot) ]) :: !keys;
              incr ngroups
            end;
            BA1.unsafe_set gids i by_code.(slot)
          done
      | _ ->
          let ht = VH.create 256 in
          for i = 0 to n - 1 do
            let k = [ C.get c i ] in
            match VH.find_opt ht k with
            | Some g -> BA1.unsafe_set gids i g
            | None ->
                VH.add ht k !ngroups;
                BA1.unsafe_set gids i !ngroups;
                keys := k :: !keys;
                incr ngroups
          done)
  | _ ->
      let cols = List.map (fun i -> cb.C.cols.(i)) key_idx in
      let ht = VH.create 256 in
      for i = 0 to n - 1 do
        let k = List.map (fun c -> C.get c i) cols in
        match VH.find_opt ht k with
        | Some g -> BA1.unsafe_set gids i g
        | None ->
            VH.add ht k !ngroups;
            BA1.unsafe_set gids i !ngroups;
            keys := k :: !keys;
            incr ngroups
      done);
  (gids, Array.of_list (List.rev !keys), !ngroups)

(* Fold one aggregate over the batch in a typed loop; yields per-gid V.t. *)
let fold_agg (cb : C.batch) (gids : C.ints) ngroups (agg : E.agg)
    (arg_i : int option) counts : int -> V.t =
  let n = cb.C.nrows in
  match agg.E.fn with
  | E.Count_star -> fun g -> V.Int counts.(g)
  | _ -> (
      match arg_i with
      | None ->
          (* COUNT/SUM/... over no argument: every input is NULL *)
          fun _ ->
            (match agg.E.fn with E.Count -> V.Int 0 | _ -> V.Null)
      | Some ci -> (
          let c = cb.C.cols.(ci) in
          let nonnull = Array.make ngroups 0 in
          let tally i g = if not (C.is_null c i) then nonnull.(g) <- nonnull.(g) + 1 in
          for i = 0 to n - 1 do
            tally i (BA1.unsafe_get gids i)
          done;
          match agg.E.fn with
          | E.Count_star -> assert false
          | E.Count -> fun g -> V.Int nonnull.(g)
          | E.Sum | E.Avg -> (
              let finish_sum g sum_int sum_float is_int =
                if nonnull.(g) = 0 then V.Null
                else if agg.E.fn = E.Sum then
                  if is_int then V.Int sum_int else V.Float sum_float
                else
                  V.Float
                    ((if is_int then float_of_int sum_int else sum_float)
                    /. float_of_int nonnull.(g))
              in
              match c.C.data with
              | C.Ints a ->
                  let sums = Array.make ngroups 0 in
                  for i = 0 to n - 1 do
                    if not (C.is_null c i) then begin
                      let g = BA1.unsafe_get gids i in
                      sums.(g) <- sums.(g) + BA1.unsafe_get a i
                    end
                  done;
                  fun g -> finish_sum g sums.(g) 0.0 true
              | C.Floats a ->
                  let sums = Array.make ngroups 0.0 in
                  for i = 0 to n - 1 do
                    if not (C.is_null c i) then begin
                      let g = BA1.unsafe_get gids i in
                      sums.(g) <- sums.(g) +. BA1.unsafe_get a i
                    end
                  done;
                  fun g -> finish_sum g 0 sums.(g) false
              | _ ->
                  (* boxed fallback: same V.add fold as the row engine *)
                  let sums = Array.make ngroups V.Null in
                  for i = 0 to n - 1 do
                    if not (C.is_null c i) then begin
                      let g = BA1.unsafe_get gids i in
                      let v = C.get c i in
                      sums.(g) <- (if V.is_null sums.(g) then v else V.add sums.(g) v)
                    end
                  done;
                  fun g ->
                    if V.is_null sums.(g) then V.Null
                    else if agg.E.fn = E.Sum then sums.(g)
                    else V.Float (V.to_float sums.(g) /. float_of_int nonnull.(g)))
          | E.Min | E.Max -> (
              let better =
                if agg.E.fn = E.Min then fun c -> c < 0 else fun c -> c > 0
              in
              match c.C.data with
              | C.Ints a | C.Dates a ->
                  let best = Array.make ngroups 0 in
                  let seen = Array.make ngroups false in
                  for i = 0 to n - 1 do
                    if not (C.is_null c i) then begin
                      let g = BA1.unsafe_get gids i in
                      let x = BA1.unsafe_get a i in
                      if (not seen.(g)) || better (compare x best.(g)) then begin
                        best.(g) <- x;
                        seen.(g) <- true
                      end
                    end
                  done;
                  let mk =
                    match c.C.data with
                    | C.Dates _ -> fun x -> V.Date x
                    | _ -> fun x -> V.Int x
                  in
                  fun g -> if seen.(g) then mk best.(g) else V.Null
              | C.Floats a ->
                  let best = Array.make ngroups 0.0 in
                  let seen = Array.make ngroups false in
                  for i = 0 to n - 1 do
                    if not (C.is_null c i) then begin
                      let g = BA1.unsafe_get gids i in
                      let x = BA1.unsafe_get a i in
                      if (not seen.(g)) || better (Float.compare x best.(g)) then begin
                        best.(g) <- x;
                        seen.(g) <- true
                      end
                    end
                  done;
                  fun g -> if seen.(g) then V.Float best.(g) else V.Null
              | C.Dict (codes, dict) ->
                  let best = Array.make ngroups "" in
                  let seen = Array.make ngroups false in
                  for i = 0 to n - 1 do
                    if not (C.is_null c i) then begin
                      let g = BA1.unsafe_get gids i in
                      let s = dict.(BA1.unsafe_get codes i) in
                      if (not seen.(g)) || better (String.compare s best.(g)) then begin
                        best.(g) <- s;
                        seen.(g) <- true
                      end
                    end
                  done;
                  fun g -> if seen.(g) then V.Str best.(g) else V.Null
              | _ ->
                  let best = Array.make ngroups V.Null in
                  for i = 0 to n - 1 do
                    if not (C.is_null c i) then begin
                      let g = BA1.unsafe_get gids i in
                      let v = C.get c i in
                      if V.is_null best.(g) || better (V.compare v best.(g)) then
                        best.(g) <- v
                    end
                  done;
                  fun g -> best.(g))))

let exec_group ~(child : B.quant -> C.batch) (grp : B.group_body) : C.batch =
  let cb = child grp.B.grp_quant in
  let idx name = batch_col_index cb name in
  let union_cols = B.grouping_union grp.B.grp_grouping in
  let out_names = union_cols @ List.map fst grp.B.grp_aggs in
  let agg_specs =
    List.map (fun (_, { B.agg; arg }) -> (agg, Option.map idx arg)) grp.B.grp_aggs
  in
  Obs.Metrics.add x_batch_rows cb.C.nrows;
  let cuboid set : V.t array list (* per output column, per-gid values *) * int =
    let set_l = List.map String.lowercase_ascii set in
    let key_idx = List.map idx set in
    let gids, keys, ngroups = group_ids cb key_idx in
    let keys, ngroups =
      if ngroups = 0 && set = [] then ([| [] |], 1) else (keys, ngroups)
    in
    let counts = Array.make ngroups 0 in
    let n = cb.C.nrows in
    for i = 0 to n - 1 do
      let g = BA1.unsafe_get gids i in
      counts.(g) <- counts.(g) + 1
    done;
    let union_vals =
      List.map
        (fun col ->
          match
            List.find_index (fun c -> c = String.lowercase_ascii col) set_l
          with
          | Some j -> Array.map (fun key -> List.nth key j) keys
          | None -> Array.make ngroups V.Null)
        union_cols
    in
    let agg_vals =
      List.map
        (fun (agg, arg_i) ->
          let at = fold_agg cb gids ngroups agg arg_i counts in
          Array.init ngroups at)
        agg_specs
    in
    (union_vals @ agg_vals, ngroups)
  in
  let pieces = List.map cuboid (B.grouping_sets grp.B.grp_grouping) in
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 pieces in
  let ncols = List.length out_names in
  let out_cols =
    List.init ncols (fun ci ->
        let vals = Array.make total V.Null in
        let off = ref 0 in
        List.iter
          (fun (cols, k) ->
            Array.blit (List.nth cols ci) 0 vals !off k;
            off := !off + k)
          pieces;
        C.of_values vals)
  in
  { C.names = Array.of_list out_names; cols = Array.of_list out_cols; nrows = total }
