(** QGM executor (engine dispatcher).

    Executes a QGM graph directly against a {!Db}: base-table scans,
    select-project-join with incremental hash joins on equality predicates,
    scalar subqueries, DISTINCT, hash aggregation, and multidimensional
    grouping sets (one cuboid per set, NULL-padded to the union of grouping
    columns, per the paper's section 5 semantics). The root's presentation
    (ORDER BY / LIMIT) is applied last.

    Three interchangeable engines implement the operators — vectorized
    columnar ({!Vexec}, the default), the original row-at-a-time
    interpreter, and the naive {!Reference} oracle — selected per process
    via [ASTQL_EXEC=vector|row|reference] or per call site via
    {!with_engine}. All three share one memoized recursion, so budget
    enforcement, metrics, and per-box memoization behave identically;
    results agree bag-wise (enforced by the differential fuzz suite). *)

exception Exec_error of string

type engine =
  | Vector  (** batch-at-a-time over typed columns; row fallback per box *)
  | Row  (** original tuple-at-a-time interpreter *)
  | Reference  (** naive oracle operators; testing only *)

(** [engine_of_string "vector" | "row" | "reference"] (case-insensitive);
    [None] for anything else. *)
val engine_of_string : string -> engine option

val engine_to_string : engine -> string

(** The process default: [ASTQL_EXEC] at startup, or [Vector]. *)
val default_engine : engine

(** Current engine ({!set_engine} overrides the default). *)
val engine : unit -> engine

val set_engine : engine -> unit

(** [with_engine e f] runs [f] under engine [e], restoring the previous
    engine afterwards (also on exception). The knob is process-global:
    don't interleave with concurrent queries that assume another engine. *)
val with_engine : engine -> (unit -> 'a) -> 'a

(** Execute the graph's root box and apply its presentation. With
    [budget], operator boundaries check the deadline and meter produced
    rows against it, raising {!Govern.Budget.Budget_exhausted} — callers
    that budget execution must be prepared to fall back (the session falls
    back to the unbudgeted base plan). *)
val run : ?budget:Govern.Budget.t -> Db.t -> Qgm.Graph.t -> Data.Relation.t

(** Execute an arbitrary box of the graph (no presentation applied). *)
val run_box :
  ?budget:Govern.Budget.t -> Db.t -> Qgm.Graph.t -> Qgm.Box.box_id ->
  Data.Relation.t
