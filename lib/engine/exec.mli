(** QGM interpreter.

    Executes a QGM graph directly against a {!Db}: base-table scans,
    select-project-join with incremental hash joins on equality predicates,
    scalar subqueries, DISTINCT, hash aggregation, and multidimensional
    grouping sets (one cuboid per set, NULL-padded to the union of grouping
    columns, per the paper's section 5 semantics). The root's presentation
    (ORDER BY / LIMIT) is applied last. *)

exception Exec_error of string

(** Execute the graph's root box and apply its presentation. With
    [budget], operator boundaries check the deadline and meter produced
    rows against it, raising {!Govern.Budget.Budget_exhausted} — callers
    that budget execution must be prepared to fall back (the session falls
    back to the unbudgeted base plan). *)
val run : ?budget:Govern.Budget.t -> Db.t -> Qgm.Graph.t -> Data.Relation.t

(** Execute an arbitrary box of the graph (no presentation applied). *)
val run_box :
  ?budget:Govern.Budget.t -> Db.t -> Qgm.Graph.t -> Qgm.Box.box_id ->
  Data.Relation.t
