(** A deliberately naive QGM evaluator, kept as simple as possible so that
    its correctness is evident by inspection: nested-loop joins (no hashing,
    no predicate push-down ordering), per-group rescans for aggregation, no
    memoization. It exists solely as a differential-testing oracle for
    {!Exec} — see [test/test_differential.ml]. Quadratic and worse;
    never use it on real data. *)

(** Raised (with the offending box/quantifier/column named) instead of bare
    [Failure] on unbound quantifiers, unknown columns, and scalar
    subqueries of cardinality > 1, so oracle failures in differential tests
    are diagnosable. *)
exception Reference_error of string

val run : Db.t -> Qgm.Graph.t -> Data.Relation.t

(** The oracle's operators, parameterized over child resolution so
    {!Exec}'s dispatcher can run them per box (with memoized children)
    under [ASTQL_EXEC=reference]. [run] itself stays the plain
    whole-plan recursion described above. *)

val eval_select :
  child:(Qgm.Box.quant -> Data.Relation.t) ->
  Qgm.Box.select_body ->
  Data.Relation.t

val eval_group :
  child:(Qgm.Box.quant -> Data.Relation.t) ->
  Qgm.Box.group_body ->
  Data.Relation.t

val eval_union :
  child:(Qgm.Box.quant -> Data.Relation.t) ->
  Qgm.Box.union_body ->
  Data.Relation.t
