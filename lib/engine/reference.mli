(** A deliberately naive QGM evaluator, kept as simple as possible so that
    its correctness is evident by inspection: nested-loop joins (no hashing,
    no predicate push-down ordering), per-group rescans for aggregation, no
    memoization. It exists solely as a differential-testing oracle for
    {!Exec} — see [test/test_differential.ml]. Quadratic and worse;
    never use it on real data. *)

(** Raised (with the offending box/quantifier/column named) instead of bare
    [Failure] on unbound quantifiers, unknown columns, and scalar
    subqueries of cardinality > 1, so oracle failures in differential tests
    are diagnosable. *)
exception Reference_error of string

val run : Db.t -> Qgm.Graph.t -> Data.Relation.t
