(* Engine dispatcher.

   Three engines implement the QGM operators:
   - [Vector] (default): batch-at-a-time over typed columns ({!Vexec}),
     falling back per box to the row interpreter for anything outside the
     vectorized subset;
   - [Row]: the original tuple-at-a-time interpreter, kept in this file;
   - [Reference]: the naive oracle's operators ({!Reference}), runnable
     under the same memoized recursion so the full test suite can exercise
     it via [ASTQL_EXEC=reference].

   The recursion skeleton ([run_box_memo]) is engine-agnostic: one memo
   slot per box (holding the result as a relation, a column batch, or
   lazily both), deadline checks and row metering at operator boundaries,
   per-operator metrics. Engines interoperate within a plan because slots
   convert between representations on demand. *)

exception Exec_error of string

let err fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

module V = Data.Value
module R = Data.Relation
module E = Qgm.Expr
module B = Qgm.Box
module G = Qgm.Graph
module C = Column

(* ------------------------------------------------------------------ *)
(* Engine selection                                                    *)
(* ------------------------------------------------------------------ *)

type engine = Vector | Row | Reference

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "vector" | "vectorized" -> Some Vector
  | "row" -> Some Row
  | "reference" | "ref" -> Some Reference
  | _ -> None

let engine_to_string = function
  | Vector -> "vector"
  | Row -> "row"
  | Reference -> "reference"

let default_engine =
  (* unknown values fall back to the default rather than failing startup:
     the knob is a perf switch, not a correctness switch *)
  match Option.bind (Sys.getenv_opt "ASTQL_EXEC") engine_of_string with
  | Some e -> e
  | None -> Vector

let current_engine = Atomic.make default_engine
let engine () = Atomic.get current_engine
let set_engine e = Atomic.set current_engine e

let with_engine e f =
  let saved = Atomic.get current_engine in
  Atomic.set current_engine e;
  Fun.protect ~finally:(fun () -> Atomic.set current_engine saved) f

(* Hash table keyed by value lists, honoring SQL grouping equality
   (NULL groups with NULL; Int and Float compare numerically). *)
module Vkey = struct
  type t = V.t list

  let equal a b = List.length a = List.length b && List.for_all2 V.equal a b
  let hash k = List.fold_left (fun h v -> (h * 31) + V.hash v) 17 k
end

module VH = Hashtbl.Make (Vkey)

(* ------------------------------------------------------------------ *)
(* Aggregate accumulators (row engine)                                 *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable cnt : int;
  mutable nonnull : int;
  mutable sum : V.t;
  mutable mn : V.t;
  mutable mx : V.t;
  mutable seen : unit VH.t option;  (* for DISTINCT: keys are [v] singletons *)
}

let new_acc (agg : E.agg) =
  {
    cnt = 0;
    nonnull = 0;
    sum = V.Null;
    mn = V.Null;
    mx = V.Null;
    seen = (if agg.E.distinct then Some (VH.create 8) else None);
  }

let acc_add acc v =
  acc.cnt <- acc.cnt + 1;
  (* constructor test, not polymorphic compare: a NaN inside [Float] makes
     [v <> V.Null] unreliable (structural (=) on nan is false for equal
     boxes), which silently corrupted NaN-carrying aggregates *)
  if not (V.is_null v) then begin
    let fresh =
      match acc.seen with
      | None -> true
      | Some tbl ->
          if VH.mem tbl [ v ] then false
          else begin
            VH.add tbl [ v ] ();
            true
          end
    in
    if fresh then begin
      acc.nonnull <- acc.nonnull + 1;
      acc.sum <- (if V.is_null acc.sum then v else V.add acc.sum v);
      acc.mn <- (if V.is_null acc.mn || V.compare v acc.mn < 0 then v else acc.mn);
      acc.mx <- (if V.is_null acc.mx || V.compare v acc.mx > 0 then v else acc.mx)
    end
  end

let acc_result (agg : E.agg) acc =
  match agg.E.fn with
  | E.Count_star -> V.Int acc.cnt
  | E.Count -> V.Int acc.nonnull
  | E.Sum -> acc.sum
  | E.Min -> acc.mn
  | E.Max -> acc.mx
  | E.Avg ->
      if acc.nonnull = 0 then V.Null
      else V.Float (V.to_float acc.sum /. float_of_int acc.nonnull)

(* ------------------------------------------------------------------ *)
(* Row-engine select box: incremental hash join                        *)
(* ------------------------------------------------------------------ *)

type layout = (int * string) array  (* (quant_id, lowercased column) *)

let layout_index (layout : layout) quant col =
  let col = String.lowercase_ascii col in
  let n = Array.length layout in
  let rec go i =
    if i >= n then None
    else
      let q, c = layout.(i) in
      if q = quant && c = col then Some i else go (i + 1)
  in
  go 0

let lookup_in layout tuple { B.quant; col } =
  match layout_index layout quant col with
  | Some i -> tuple.(i)
  | None -> err "unresolved column reference q%d.%s" quant col

let pred_quant_set p = List.sort_uniq compare (List.map (fun r -> r.B.quant) (E.cols p))

let row_select ~(child : B.quant -> R.t) (sel : B.select_body) : R.t =
  let { B.sel_quants = quants; sel_preds = preds; sel_outs = outs; sel_distinct = distinct } =
    sel
  in
  (* initial layout: all scalar-subquery columns as constants *)
  let init_layout = ref [] and init_tuple = ref [] in
  List.iter
    (fun q ->
      if q.B.q_kind = B.Scalar then begin
        let rel = child q in
        let row =
          match R.cardinality rel with
          | 0 -> Array.make (R.arity rel) V.Null
          | 1 -> (R.rows_array rel).(0)
          | n -> err "scalar subquery returned %d rows" n
        in
        Array.iteri
          (fun i col ->
            init_layout :=
              !init_layout @ [ (q.B.q_id, String.lowercase_ascii col) ];
            init_tuple := !init_tuple @ [ row.(i) ])
          (R.columns rel)
      end)
    quants;
  let layout = ref (Array.of_list !init_layout) in
  let tuples = ref [ Array.of_list !init_tuple ] in
  (* predicate bookkeeping *)
  let pending = ref (List.map (fun p -> (p, pred_quant_set p)) preds) in
  let layout_quants () =
    Array.to_list !layout |> List.map fst |> List.sort_uniq compare
  in
  let apply_applicable () =
    let avail = layout_quants () in
    let applicable, rest =
      List.partition
        (fun (_, qs) -> List.for_all (fun q -> List.mem q avail) qs)
        !pending
    in
    pending := rest;
    List.iter
      (fun (p, _) ->
        let l = !layout in
        tuples :=
          List.filter
            (fun t -> Eval.is_satisfied (lookup_in l t) p)
            !tuples)
      applicable
  in
  apply_applicable ();
  (* join in the foreach quantifiers one by one *)
  List.iter
    (fun q ->
      if q.B.q_kind = B.Foreach then begin
        let rel = child q in
        let rel_cols =
          Array.map String.lowercase_ascii (R.columns rel)
        in
        let col_idx name =
          let name = String.lowercase_ascii name in
          let n = Array.length rel_cols in
          let rec go i =
            if i >= n then err "column %s missing in child of quantifier %d" name q.B.q_id
            else if rel_cols.(i) = name then i
            else go (i + 1)
          in
          go 0
        in
        (* find usable equi-join predicates: new-side col = layout-side ref *)
        let keys = ref [] in
        pending :=
          List.filter
            (fun (p, _) ->
              match p with
              | E.Binop ("=", E.Col a, E.Col b) ->
                  let try_pair x y =
                    if
                      x.B.quant = q.B.q_id
                      && layout_index !layout y.B.quant y.B.col <> None
                    then begin
                      keys := (col_idx x.B.col, y) :: !keys;
                      true
                    end
                    else false
                  in
                  not (try_pair a b || try_pair b a)
              | _ -> true)
            !pending;
        let new_layout =
          Array.append !layout
            (Array.map (fun c -> (q.B.q_id, c)) rel_cols)
        in
        let joined =
          if !keys = [] then
            (* cross product *)
            List.concat_map
              (fun t ->
                List.map (fun row -> Array.append t row) (R.rows rel))
              !tuples
          else begin
            let key_idxs = List.map fst !keys in
            let probe_refs = List.map snd !keys in
            let ht = VH.create (max 16 (R.cardinality rel)) in
            Array.iter
              (fun row ->
                let kv = List.map (fun i -> row.(i)) key_idxs in
                if not (List.exists V.is_null kv) then
                  VH.add ht kv row)
              (R.rows_array rel);
            List.concat_map
              (fun t ->
                let kv =
                  List.map (fun r -> lookup_in !layout t r) probe_refs
                in
                if List.exists V.is_null kv then []
                else
                  List.rev_map
                    (fun row -> Array.append t row)
                    (VH.find_all ht kv))
              !tuples
          end
        in
        layout := new_layout;
        tuples := joined;
        apply_applicable ()
      end)
    quants;
  if !pending <> [] then
    err "predicate references unavailable quantifier (internal error)";
  (* project outputs *)
  let l = !layout in
  let out_names = List.map fst outs in
  let out_exprs = List.map snd outs in
  let rows =
    List.map
      (fun t ->
        Array.of_list
          (List.map (fun e -> Eval.eval (lookup_in l t) e) out_exprs))
      !tuples
  in
  let rel = R.create out_names rows in
  if distinct then R.distinct rel else rel

(* ------------------------------------------------------------------ *)
(* Row-engine group box                                                *)
(* ------------------------------------------------------------------ *)

let row_group ~(child : B.quant -> R.t) (grp : B.group_body) : R.t =
  let { B.grp_quant = quant; grp_grouping = grouping; grp_aggs = aggs } = grp in
  let child = child quant in
  let idx name = R.column_index child name in
  let union_cols = B.grouping_union grouping in
  let out_names = union_cols @ List.map fst aggs in
  let agg_specs =
    List.map
      (fun (_, { B.agg; arg }) -> (agg, Option.map idx arg))
      aggs
  in
  let cuboid set =
    let set_l = List.map String.lowercase_ascii set in
    let key_idx = List.map idx set in
    let groups = VH.create 64 in
    let order = ref [] in
    Array.iter
      (fun row ->
        let key = List.map (fun i -> row.(i)) key_idx in
        let accs =
          match VH.find_opt groups key with
          | Some a -> a
          | None ->
              let a = List.map (fun (agg, _) -> new_acc agg) agg_specs in
              VH.add groups key a;
              order := key :: !order;
              a
        in
        List.iter2
          (fun acc (_, arg_i) ->
            let v = match arg_i with Some i -> row.(i) | None -> V.Null in
            acc_add acc v)
          accs agg_specs)
      (R.rows_array child);
    let keys =
      if VH.length groups = 0 && set = [] then begin
        (* grand total over empty input still produces one row *)
        VH.add groups [] (List.map (fun (agg, _) -> new_acc agg) agg_specs);
        [ [] ]
      end
      else List.rev !order
    in
    List.map
      (fun key ->
        let accs = VH.find groups key in
        let union_vals =
          List.map
            (fun col ->
              match
                List.find_index
                  (fun c -> c = String.lowercase_ascii col)
                  set_l
              with
              | Some j -> List.nth key j
              | None -> V.Null)
            union_cols
        in
        let agg_vals =
          List.map2 (fun acc (agg, _) -> acc_result agg acc) accs agg_specs
        in
        Array.of_list (union_vals @ agg_vals))
      keys
  in
  let rows = List.concat_map cuboid (B.grouping_sets grouping) in
  R.create out_names rows

let row_union ~(child : B.quant -> R.t) (u : B.union_body) : R.t =
  let rows =
    List.concat_map
      (fun q ->
        let rel = child q in
        if R.arity rel <> List.length u.B.un_cols then
          err "UNION branch arity mismatch";
        R.rows rel)
      u.B.un_quants
  in
  let rel = R.create u.B.un_cols rows in
  if u.B.un_all then rel else R.distinct rel

(* ------------------------------------------------------------------ *)
(* Memoized recursion over boxes                                       *)
(* ------------------------------------------------------------------ *)

(* A memo slot holds a box's result in whichever representation the engine
   produced, converting (and caching the conversion) on demand — so a
   vectorized parent can consume a row-engine fallback child and vice
   versa. *)
type slot = { mutable srel : R.t option; mutable sbat : C.batch option }

let slot_of_rel r = { srel = Some r; sbat = None }
let slot_of_batch b = { srel = None; sbat = Some b }

let slot_rel s =
  match s.srel with
  | Some r -> r
  | None ->
      let r = C.to_relation (Option.get s.sbat) in
      s.srel <- Some r;
      r

let slot_batch s =
  match s.sbat with
  | Some b -> b
  | None ->
      let b = C.of_relation (Option.get s.srel) in
      s.sbat <- Some b;
      b

let slot_cardinality s =
  match s.sbat with
  | Some b -> b.C.nrows
  | None -> R.cardinality (Option.get s.srel)

(* Operator-level metrics, ticked only on the compute path (memo hits are
   free and counted separately). Timings are wall-clock and include the
   recursive children, so the per-operator histograms report inclusive
   operator latency. *)
let x_boxes = Obs.Metrics.counter "exec.boxes"
let x_vec_boxes = Obs.Metrics.counter "exec.vec_boxes"
let x_fallback_boxes = Obs.Metrics.counter "exec.fallback_boxes"
let x_memo_hits = Obs.Metrics.counter "exec.memo_hits"
let x_rows = Obs.Metrics.counter "exec.rows"
let x_base_ms = Obs.Metrics.histogram "exec.base_ms"
let x_select_ms = Obs.Metrics.histogram "exec.select_ms"
let x_group_ms = Obs.Metrics.histogram "exec.group_ms"
let x_union_ms = Obs.Metrics.histogram "exec.union_ms"
let x_runs = Obs.Metrics.counter "exec.runs"
let x_run_ms = Obs.Metrics.histogram "exec.run_ms"

(* Vectorized operators report internal invariant violations through their
   own exception; surface them as executor errors. Reference operators
   likewise, so [ASTQL_EXEC=reference] behaves as a drop-in engine. *)
let vex f = try f () with Vexec.Error m -> raise (Exec_error m)
let refx f = try f () with Reference.Reference_error m -> raise (Exec_error m)

let rec run_box_memo ?budget db g memo id : slot =
  match Hashtbl.find_opt memo id with
  | Some s ->
      Obs.Metrics.incr x_memo_hits;
      s
  | None ->
      (* operator boundary: the cheapest place to notice a blown deadline
         before starting (possibly expensive) work on this box *)
      Govern.Budget.check_deadline budget;
      Obs.Metrics.incr x_boxes;
      let child_rel q = slot_rel (run_box_memo ?budget db g memo q.B.q_box) in
      let child_batch q = slot_batch (run_box_memo ?budget db g memo q.B.q_box) in
      let eng = engine () in
      let body = (G.box g id).B.body in
      (* a box runs vectorized iff the engine is [Vector] and the body is
         inside the vectorized subset; otherwise it degrades to the row
         operator (counted), keeping the rest of the plan vectorized *)
      let vectorized = eng = Vector && Vexec.box_supported body in
      if vectorized then Obs.Metrics.incr x_vec_boxes
      else if eng = Vector then Obs.Metrics.incr x_fallback_boxes;
      let s =
        match body with
        | B.Base ({ bt_table; bt_cols } as bt) ->
            Obs.Metrics.time x_base_ms (fun () ->
                if vectorized then slot_of_batch (vex (fun () -> Vexec.exec_base db bt))
                else slot_of_rel (R.project (Db.get_exn db bt_table) bt_cols))
        | B.Select sel ->
            Obs.Metrics.time x_select_ms (fun () ->
                if vectorized then
                  slot_of_batch
                    (vex (fun () -> Vexec.exec_select ~child:child_batch sel))
                else if eng = Reference then
                  slot_of_rel
                    (refx (fun () -> Reference.eval_select ~child:child_rel sel))
                else slot_of_rel (row_select ~child:child_rel sel))
        | B.Group grp ->
            Obs.Metrics.time x_group_ms (fun () ->
                if vectorized then
                  slot_of_batch
                    (vex (fun () -> Vexec.exec_group ~child:child_batch grp))
                else if eng = Reference then
                  slot_of_rel
                    (refx (fun () -> Reference.eval_group ~child:child_rel grp))
                else slot_of_rel (row_group ~child:child_rel grp))
        | B.Union u ->
            Obs.Metrics.time x_union_ms (fun () ->
                if eng = Reference then
                  slot_of_rel
                    (refx (fun () -> Reference.eval_union ~child:child_rel u))
                else slot_of_rel (row_union ~child:child_rel u))
      in
      Obs.Metrics.add x_rows (slot_cardinality s);
      Govern.Budget.tick_rows budget (slot_cardinality s);
      Hashtbl.add memo id s;
      s

(* ------------------------------------------------------------------ *)

let run_box ?budget db g id =
  (* arm the scratch arena for this run: every kernel buffer allocated
     below dies when the memo does, so the outermost bracket recycles the
     chunks wholesale (results are boxed relations by then) *)
  C.scratch_begin ();
  Fun.protect ~finally:C.scratch_end @@ fun () ->
  slot_rel (run_box_memo ?budget db g (Hashtbl.create 16) id)

let run ?budget db g =
  Obs.Metrics.incr x_runs;
  Obs.Metrics.time x_run_ms @@ fun () ->
  let rel = run_box ?budget db g (G.root g) in
  let { G.order_by; limit } = G.presentation g in
  let rel =
    if order_by = [] then rel
    else
      let idx = List.map (fun (c, asc) -> (R.column_index rel c, asc)) order_by in
      R.sort
        (fun a b ->
          let rec go = function
            | [] -> 0
            | (i, asc) :: rest ->
                let c = V.compare a.(i) b.(i) in
                if c <> 0 then if asc then c else -c else go rest
          in
          go idx)
        rel
  in
  match limit with
  | None -> rel
  | Some n ->
      let rows = R.rows rel in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      R.create (Array.to_list (R.columns rel)) (take n rows)
