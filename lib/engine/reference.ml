module V = Data.Value
module R = Data.Relation
module E = Qgm.Expr
module B = Qgm.Box
module G = Qgm.Graph

exception Reference_error of string

let err fmt = Format.kasprintf (fun s -> raise (Reference_error s)) fmt

(* An environment binds quantifier ids to (column names, row). *)
type env = (int * (string array * V.t array)) list

let lookup (env : env) { B.quant; col } =
  match List.assoc_opt quant env with
  | None -> err "unbound quantifier %d (column %s)" quant col
  | Some (cols, row) -> (
      let lcol = String.lowercase_ascii col in
      let rec go i =
        if i >= Array.length cols then
          err "unknown column %s of quantifier %d (has: %s)" col quant
            (String.concat ", " (Array.to_list cols))
        else if String.lowercase_ascii cols.(i) = lcol then row.(i)
        else go (i + 1)
      in
      go 0)

(* The operators take their inputs through a [child] callback (quantifier ->
   relation) rather than recursing themselves, so {!Exec}'s dispatcher can
   reuse them per box with memoized children. [run] below wires them into
   the naive whole-plan recursion. *)

let eval_union ~(child : B.quant -> R.t) (u : B.union_body) : R.t =
  let rows = List.concat_map (fun q -> R.rows (child q)) u.B.un_quants in
  let rel = R.create u.B.un_cols rows in
  if u.B.un_all then rel else R.distinct rel

(* Cross product of all foreach children, then filter with the full
   conjunction, then project. Scalar children contribute one (possibly
   NULL-padded) row. *)
let eval_select ~(child : B.quant -> R.t) (sel : B.select_body) : R.t =
  let bind q =
    let rel = child q in
    let cols = R.columns rel in
    match q.B.q_kind with
    | B.Foreach -> (q.B.q_id, cols, R.rows rel)
    | B.Scalar ->
        let row =
          match R.rows rel with
          | [] -> Array.make (Array.length cols) V.Null
          | [ r ] -> r
          | rows ->
              err "scalar subquery (quantifier %d, box %d) returned %d rows"
                q.B.q_id q.B.q_box (List.length rows)
        in
        (q.B.q_id, cols, [ row ])
  in
  let children = List.map bind sel.B.sel_quants in
  let rec cross acc = function
    | [] -> [ List.rev acc ]
    | (qid, cols, rows) :: rest ->
        List.concat_map
          (fun row -> cross ((qid, (cols, row)) :: acc) rest)
          rows
  in
  let envs = cross [] children in
  let keep env =
    List.for_all (fun p -> V.is_true (Eval.eval (lookup env) p)) sel.B.sel_preds
  in
  let rows =
    List.filter_map
      (fun env ->
        if keep env then
          Some
            (Array.of_list
               (List.map (fun (_, e) -> Eval.eval (lookup env) e) sel.B.sel_outs))
        else None)
      envs
  in
  let rel = R.create (List.map fst sel.B.sel_outs) rows in
  if sel.B.sel_distinct then R.distinct rel else rel

(* Grouping by rescanning: distinct keys first, then one pass per group per
   aggregate. *)
let eval_group ~(child : B.quant -> R.t) (grp : B.group_body) : R.t =
  let child = child grp.B.grp_quant in
  let idx name = R.column_index child name in
  let union = B.grouping_union grp.B.grp_grouping in
  let out_names = union @ List.map fst grp.B.grp_aggs in
  let cuboid set =
    let set_idx = List.map idx set in
    let key_of row = List.map (fun i -> row.(i)) set_idx in
    let keys =
      let rec dedup seen = function
        | [] -> List.rev seen
        | r :: rest ->
            let k = key_of r in
            if List.exists (fun k' -> List.for_all2 V.equal k k') seen then
              dedup seen rest
            else dedup (k :: seen) rest
      in
      dedup [] (R.rows child)
    in
    let keys = if keys = [] && set = [] then [ [] ] else keys in
    List.map
      (fun key ->
        let members =
          List.filter
            (fun row -> List.for_all2 V.equal (key_of row) key)
            (R.rows child)
        in
        let agg_value (_, { B.agg; arg }) =
          let values =
            match arg with
            | None -> List.map (fun _ -> V.Int 1) members
            | Some a -> List.map (fun row -> row.(idx a)) members
          in
          let non_null = List.filter (fun v -> not (V.is_null v)) values in
          let non_null =
            if agg.E.distinct then
              let rec dedup seen = function
                | [] -> List.rev seen
                | v :: rest ->
                    if List.exists (V.equal v) seen then dedup seen rest
                    else dedup (v :: seen) rest
              in
              dedup [] non_null
            else non_null
          in
          match agg.E.fn with
          | E.Count_star -> V.Int (List.length members)
          | E.Count -> V.Int (List.length non_null)
          | E.Sum -> (
              match non_null with
              | [] -> V.Null
              | v :: rest -> List.fold_left V.add v rest)
          | E.Min -> (
              match non_null with
              | [] -> V.Null
              | v :: rest ->
                  List.fold_left (fun a b -> if V.compare b a < 0 then b else a) v rest)
          | E.Max -> (
              match non_null with
              | [] -> V.Null
              | v :: rest ->
                  List.fold_left (fun a b -> if V.compare b a > 0 then b else a) v rest)
          | E.Avg -> (
              match non_null with
              | [] -> V.Null
              | vs ->
                  let total =
                    List.fold_left (fun a v -> a +. V.to_float v) 0.0 vs
                  in
                  V.Float (total /. float_of_int (List.length vs)))
        in
        let union_vals =
          List.map
            (fun c ->
              match
                List.find_index
                  (fun c' ->
                    String.lowercase_ascii c' = String.lowercase_ascii c)
                  set
              with
              | Some j -> List.nth key j
              | None -> V.Null)
            union
        in
        Array.of_list (union_vals @ List.map agg_value grp.B.grp_aggs))
      keys
  in
  R.create out_names
    (List.concat_map cuboid (B.grouping_sets grp.B.grp_grouping))

let rec eval_box db g id : R.t =
  let child q = eval_box db g q.B.q_box in
  match (G.box g id).B.body with
  | B.Base { bt_table; bt_cols } -> R.project (Db.get_exn db bt_table) bt_cols
  | B.Select sel -> eval_select ~child sel
  | B.Group grp -> eval_group ~child grp
  | B.Union u -> eval_union ~child u

let run db g =
  let rel = eval_box db g (G.root g) in
  let { G.order_by; limit } = G.presentation g in
  let rel =
    if order_by = [] then rel
    else
      let idx = List.map (fun (c, asc) -> (R.column_index rel c, asc)) order_by in
      R.sort
        (fun a b ->
          let rec go = function
            | [] -> 0
            | (i, asc) :: rest ->
                let c = V.compare a.(i) b.(i) in
                if c <> 0 then if asc then c else -c else go rest
          in
          go idx)
        rel
  in
  match limit with
  | None -> rel
  | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      R.create (Array.to_list (R.columns rel)) (take n (R.rows rel))
