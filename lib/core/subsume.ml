module E = Qgm.Expr
module V = Data.Value

(* After E.normalize, [>] and [>=] have been flipped into [<] / [<=], so a
   comparison is [lhs OP rhs]. We handle the constant-vs-expression cases. *)
let bounds e =
  match e with
  | E.Binop ("<", E.Const c, x) -> Some (`Lower (x, c, `Open))   (* c < x *)
  | E.Binop ("<=", E.Const c, x) -> Some (`Lower (x, c, `Closed))
  | E.Binop ("<", x, E.Const c) -> Some (`Upper (x, c, `Open))   (* x < c *)
  | E.Binop ("<=", x, E.Const c) -> Some (`Upper (x, c, `Closed))
  | _ -> None

(* On a discrete (INT/DATE) column a strict bound equals the non-strict
   bound on the adjacent point: [x > 9] is [x >= 10].  Normalizing the
   open endpoint through the type oracle is what relates such pairs; for
   dense or untyped columns the bound is left alone (sound). *)
let norm_bound ty = function
  | `Lower (x, c, `Open) as b -> (
      match Prove.Domain.succ_value (ty x) c with
      | Some c' -> `Lower (x, c', `Closed)
      | None -> b)
  | `Upper (x, c, `Open) as b -> (
      match Prove.Domain.pred_value (ty x) c with
      | Some c' -> `Upper (x, c', `Closed)
      | None -> b)
  | b -> b

let no_ty _ = None

let subsumes ~ty ~weak ~strong =
  (* lift the column oracle to (sub)expressions once *)
  let ety = Prove.key_ty ~col:ty in
  let weak = E.normalize weak and strong = E.normalize strong in
  if weak = strong then true
  else
    let single_bound () =
      match (Option.map (norm_bound ety) (bounds weak),
             Option.map (norm_bound ety) (bounds strong))
      with
      | Some (`Lower (x, c1, k1)), Some (`Lower (y, c2, k2)) when x = y ->
          (* c1 < x subsumes c2 < x iff c1 <= c2 (strictness permitting) *)
          let c = V.compare c1 c2 in
          c < 0 || (c = 0 && (k1 = k2 || (k1 = `Closed && k2 = `Open)))
      | Some (`Upper (x, c1, k1)), Some (`Upper (y, c2, k2)) when x = y ->
          let c = V.compare c1 c2 in
          c > 0 || (c = 0 && (k1 = k2 || (k1 = `Closed && k2 = `Open)))
      | _ -> false
    in
    single_bound ()
    || (Prove.Level.rewrite_on ()
       && Prove.is_proved
            (Prove.subsumed ~ty:ety ~weak:[ weak ] ~strong:[ strong ]))
