(* The match function (paper sections 3, 4 and 5).

   [match_boxes ctx e r] decides whether subsumee box [e] (query graph)
   matches subsumer box [r] (AST graph) and, if so, produces the
   compensation. The function is memoized per (e, r) pair and recurses into
   child pairs, which realizes the navigator's bottom-up discipline: by the
   time a pair is judged, all child pair-wise combinations have been judged.

   Pattern coverage:
   - base tables                                 (leaf seeding)
   - SELECT/SELECT, exact child matches          (4.1.1)
   - SELECT/SELECT, SELECT-only child comp       (4.2.3)
   - SELECT/SELECT, grouping child comp          (4.2.4)
   - GROUP-BY/GROUP-BY, exact child matches      (4.1.2)
   - GROUP-BY/GROUP-BY, SELECT-only child comp   (4.2.1)
   - GROUP-BY/GROUP-BY, GROUP-BY child comp      (4.2.2, recursive)
   - simple or cube query vs. cube AST           (5.1, 5.2)

   Deliberate rejections, documented in DESIGN.md: correlated queries
   (excluded upstream), outer joins, DISTINCT asymmetries, ambiguous
   self-join pairings (paper footnote 3). *)

module E = Qgm.Expr
module B = Qgm.Box
module G = Qgm.Graph
module M = Mtypes
module V = Data.Value

let norm = String.lowercase_ascii
let col_mem c cols = List.exists (fun x -> norm x = norm c) cols
let canon_tx equiv e = E.normalize (Equiv.canon equiv e)

let show_tx e = E.to_string (Format.asprintf "%a" M.pp_txref) e

let show_q e =
  E.to_string (fun { B.quant; col } -> Printf.sprintf "q%d.%s" quant col) e

(* ------------------------------------------------------------------ *)
(* Pure helpers (no recursion into match_boxes)                        *)
(* ------------------------------------------------------------------ *)

let child_comp_levels (asg : Mctx.assignment) =
  List.concat_map
    (fun (_, rq, res) ->
      match res with M.Exact _ -> [] | M.Comp levels -> [ (rq, levels) ])
    asg.Mctx.pairs

(* All predicates of a compensation stack, each lifted into subsumer-input
   space: expanded through the levels below it, then Below -> Rin. *)
let lifted_comp_preds ~rq levels =
  let rec go below_levels = function
    | [] -> []
    | level :: above ->
        let here =
          match level with
          | M.L_select { ls_preds; _ } ->
              List.filter_map
                (fun p ->
                  Option.map (Translate.lift_cref ~rq)
                    (Translate.through_comp below_levels p))
                ls_preds
          | M.L_group _ -> []
        in
        here @ go (below_levels @ [ level ]) above
  in
  go [] levels

let comp_rejoins levels =
  List.concat_map
    (function
      | M.L_select { ls_rejoins; _ } -> ls_rejoins | M.L_group _ -> [])
    levels

let refs_quants quant_ids p =
  List.exists
    (fun c ->
      match c with
      | M.Rin { B.quant; _ } -> List.mem quant quant_ids
      | M.Rj _ -> false)
    (E.cols p)

(* Extra subsumer children must be provably lossless (4.1.1 condition 1):
   the join can neither eliminate nor duplicate subsumer rows. Scalar
   subqueries contribute exactly one row. Base-table extras are peeled
   iteratively: an extra is removable when every remaining predicate that
   touches it is an equality onto its unique key carried by a declared RI
   constraint from a single (base-table) foreign side; removing it also
   removes those predicates, which unlocks chains like
   Trans -> Acct -> Cust (snowflake dimensions). *)
let extras_lossless (ctx : Mctx.t) (r_sel : B.select_body)
    (extras : B.quant list) =
  let scalar, foreach =
    List.partition (fun q -> q.B.q_kind = B.Scalar) extras
  in
  ignore scalar;
  let quant_box qid =
    List.find_opt (fun q -> q.B.q_id = qid) r_sel.B.sel_quants
  in
  let rec peel remaining preds =
    match remaining with
    | [] -> true
    | _ ->
        let removable x =
          match Props.base_table_of ctx.Mctx.ag x.B.q_box with
          | None -> None
          | Some extra_table -> (
              let touching, rest =
                List.partition
                  (fun p ->
                    List.exists (fun r -> r.B.quant = x.B.q_id) (E.cols p))
                  preds
              in
              let pairs =
                List.map
                  (fun p ->
                    match p with
                    | E.Binop ("=", E.Col a, E.Col b) ->
                        if a.B.quant = x.B.q_id && b.B.quant <> x.B.q_id then
                          Some (a.B.col, b)
                        else if
                          b.B.quant = x.B.q_id && a.B.quant <> x.B.q_id
                        then Some (b.B.col, a)
                        else None
                    | _ -> None)
                  touching
              in
              if List.exists (fun p -> p = None) pairs then None
              else
                let pairs = List.filter_map (fun p -> p) pairs in
                if pairs = [] then None
                else
                  let fk_quants =
                    List.sort_uniq compare
                      (List.map (fun (_, b) -> b.B.quant) pairs)
                  in
                  match fk_quants with
                  | [ fq ] -> (
                      match quant_box fq with
                      | None -> None
                      | Some fquant -> (
                          match
                            Props.base_table_of ctx.Mctx.ag fquant.B.q_box
                          with
                          | None -> None
                          | Some fk_table ->
                              let to_cols = List.map fst pairs in
                              let from_cols =
                                List.map (fun (_, b) -> b.B.col) pairs
                              in
                              if
                                Catalog.ri_holds ctx.Mctx.cat
                                  ~from_table:fk_table ~from_cols
                                  ~to_table:extra_table ~to_cols
                              then Some rest
                              else None))
                  | _ -> None)
        in
        let rec try_each tried = function
          | [] -> false
          | x :: rest -> (
              match removable x with
              | Some preds' -> peel (tried @ rest) preds'
              | None -> try_each (tried @ [ x ]) rest)
        in
        try_each [] remaining
  in
  peel foreach r_sel.B.sel_preds

(* ------------------------------------------------------------------ *)
(* The recursive match function                                        *)
(* ------------------------------------------------------------------ *)

(* Instrumentation: every match_boxes invocation (memo hits included) ticks
   this counter. Tests and the bench read it to prove that a plan served
   from a warm cache performs no matching work at all. Atomic because
   server domains plan in parallel against the same process-wide count. *)
let calls = Atomic.make 0
let match_count () = Atomic.get calls
let reset_match_count () = Atomic.set calls 0

let m_calls = Obs.Metrics.counter "match.calls"
let m_memo_hits = Obs.Metrics.counter "match.memo_hits"
let m_accepts = Obs.Metrics.counter "match.accepts"

let res_outcome = function
  | Some (M.Exact _) -> Obs.Trace.Accepted "exact"
  | Some (M.Comp _) -> Obs.Trace.Accepted "compensated"
  | None -> Obs.Trace.Step

(* ---------------- static certification ---------------- *)

(* Column-type oracle over the translated predicate space: [Rin] references
   resolve against the summary graph, [Rj] (rejoin) references against the
   query graph.  Feeds the prover's discrete-bound normalization. *)
let txref_ty ctx (r_sel : B.select_body) (asg : Mctx.assignment)
    (c : M.txref) =
  match c with
  | M.Rin { B.quant; col } ->
      Option.map
        (fun q -> Qgm.Typing.col_type ctx.Mctx.cat ctx.Mctx.ag q.B.q_box col)
        (List.find_opt (fun q -> q.B.q_id = quant) r_sel.B.sel_quants)
  | M.Rj { B.quant; col } ->
      Option.map
        (fun q -> Qgm.Typing.col_type ctx.Mctx.cat ctx.Mctx.qg q.B.q_box col)
        (List.find_opt (fun q -> q.B.q_id = quant) asg.Mctx.rejoins)

(* Region-equality certificate for a flat SELECT/SELECT match.  Given all
   child pairs certified, [summary AND compensation] selects exactly the
   query's rows over the shared child space iff (1) every summary predicate
   is entailed by the query side, (2) every compensation predicate is
   entailed by the query side, and (3) every query-side predicate is
   entailed by summary + compensation.  Anything short of three [Proved]s
   leaves the match usable but uncertified (runtime verification applies). *)
let certify_select_flat ctx asg ~equiv ~r_outs ~r_preds_canon ~strong_canon
    ~comp_preds (r_sel : B.select_body) =
  if not (Prove.Level.rewrite_on ()) then
    Prove.Unknown "prover off (ASTQL_PROVE=0)"
  else if Govern.Budget.deadline_spent ctx.Mctx.budget then
    Prove.Unknown "planning deadline spent"
  else
    let child =
      List.fold_left
        (fun acc (qe, qr, _) ->
          Prove.both acc
            (match
               Hashtbl.find_opt ctx.Mctx.proofs (qe.B.q_box, qr.B.q_box)
             with
            | Some p -> p
            | None -> Prove.Unknown "child pair not certified"))
        Prove.Proved asg.Mctx.pairs
    in
    match child with
    | Prove.Unknown _ -> child
    | Prove.Proved ->
        (* compensation predicates live over the summary's outputs (Below)
           and rejoin columns; map them back into the shared txref space to
           compare regions *)
        let back p =
          E.subst_col
            (function
              | M.Below n ->
                  Option.map snd
                    (List.find_opt (fun (m, _) -> norm m = norm n) r_outs)
              | M.Rejoin r -> Some (E.Col (M.Rj r)))
            p
        in
        let comp_tx = List.map back comp_preds in
        if List.exists Option.is_none comp_tx then
          Prove.Unknown
            "a compensation predicate does not map back to summary inputs"
        else
          let comp_canon =
            List.map (fun p -> canon_tx equiv (Option.get p)) comp_tx
          in
          let ty = Prove.key_ty ~col:(txref_ty ctx r_sel asg) in
          Prove.all_proved
            [
              Prove.subsumed ~ty ~weak:r_preds_canon ~strong:strong_canon;
              Prove.subsumed ~ty ~weak:comp_canon ~strong:strong_canon;
              Prove.subsumed ~ty ~weak:strong_canon
                ~strong:(r_preds_canon @ comp_canon);
            ]

(* Deposit a pattern's certificate for [match_boxes] to ledger, tracing the
   typed reason when the proof came back [Unknown]. *)
let set_proof ctx proof =
  (match proof with
  | Prove.Proved -> ()
  | Prove.Unknown w ->
      Obs.Trace.event ctx.Mctx.trace ~kind:"prove"
        ~label:(Obs.Trace.describe (Obs.Trace.Prove_unknown w)));
  ctx.Mctx.pending_proof <- Some proof

(* Span around one box-pair judgment; a rejection leaf inside names the
   violated condition, this span names the pair and its shapes. *)
let pair_span ctx e_id r_id shapes f =
  Obs.Trace.with_span ctx.Mctx.trace ~kind:"match"
    ~label:(Printf.sprintf "query box %d vs summary box %d (%s)" e_id r_id shapes)
    ~result:res_outcome f

(* Leaf marker naming the paper pattern about to be attempted, so the trace
   reads "which pattern, then why it failed". *)
let pattern ctx label =
  Obs.Trace.event ctx.Mctx.trace ~kind:"pattern" ~label

let rec match_boxes (ctx : Mctx.t) e_id r_id =
  ignore (Atomic.fetch_and_add calls 1);
  Obs.Metrics.incr m_calls;
  Guard.Fault.hit Guard.Fault.Match;
  Guard.Fault.maybe_delay ();
  Govern.Budget.tick_match ctx.Mctx.budget;
  match Hashtbl.find_opt ctx.Mctx.memo (e_id, r_id) with
  | Some res ->
      Obs.Metrics.incr m_memo_hits;
      res
  | None ->
      Hashtbl.replace ctx.Mctx.memo (e_id, r_id) None;
      let e_box = G.box ctx.Mctx.qg e_id in
      let r_box = G.box ctx.Mctx.ag r_id in
      let res =
        match (e_box.B.body, r_box.B.body) with
        | B.Base { bt_table = t1; _ }, B.Base { bt_table = t2; bt_cols } ->
            if norm t1 = norm t2 then begin
              (* same base relation verbatim: trivially certified *)
              ctx.Mctx.pending_proof <- Some Prove.Proved;
              Some (M.Exact (List.map (fun c -> (c, c)) bt_cols))
            end
            else None
        | B.Select e_sel, B.Select r_sel ->
            pair_span ctx e_id r_id "SELECT/SELECT" (fun () ->
                match_select_select ctx e_sel r_sel)
        | B.Group e_grp, B.Group r_grp ->
            pair_span ctx e_id r_id "GROUP-BY/GROUP-BY" (fun () ->
                match_group_group ctx e_grp r_grp)
        | B.Select e_sel, B.Group r_grp when e_sel.B.sel_distinct ->
            pair_span ctx e_id r_id "DISTINCT/GROUP-BY" (fun () ->
                match_distinct_vs_group ctx e_sel r_grp)
        | B.Group e_grp, B.Select r_sel when r_sel.B.sel_distinct ->
            pair_span ctx e_id r_id "GROUP-BY/DISTINCT" (fun () ->
                match_group_vs_distinct ctx e_grp r_sel)
        | _ -> None
      in
      (* Move the pattern's certificate (if any) into the proof ledger;
         every frame clears [pending_proof] so an outer pattern can never
         read a stale inner certificate. *)
      let proof =
        match ctx.Mctx.pending_proof with
        | Some p -> p
        | None -> Prove.Unknown "match pattern not certified"
      in
      ctx.Mctx.pending_proof <- None;
      if res <> None then begin
        Obs.Metrics.incr m_accepts;
        Hashtbl.replace ctx.Mctx.proofs (e_id, r_id) proof
      end;
      Hashtbl.replace ctx.Mctx.memo (e_id, r_id) res;
      res

(* ---------------- child pairing ---------------- *)

and pair_children ctx (e_quants : B.quant list) (r_quants : B.quant list) :
    Mctx.assignment option =
  let candidates qe =
    List.filter_map
      (fun qr ->
        if qr.B.q_kind <> qe.B.q_kind then None
        else
          match match_boxes ctx qe.B.q_box qr.B.q_box with
          | Some res -> Some (qr, res)
          | None -> None)
      r_quants
  in
  let all = List.map (fun qe -> (qe, candidates qe)) e_quants in
  let used = Hashtbl.create 8 in
  let assigned = Hashtbl.create 8 in
  let pairs = ref [] in
  let take qe (qr, res) =
    Hashtbl.replace used qr.B.q_id ();
    Hashtbl.replace assigned qe.B.q_id ();
    pairs := !pairs @ [ (qe, qr, res) ]
  in
  (* pass 1: unique candidates first *)
  List.iter
    (fun (qe, cands) ->
      match cands with
      | [ (qr, res) ] when not (Hashtbl.mem used qr.B.q_id) -> take qe (qr, res)
      | _ -> ())
    all;
  (* pass 2: greedy, preferring exact child matches *)
  List.iter
    (fun (qe, cands) ->
      if not (Hashtbl.mem assigned qe.B.q_id) then begin
        let avail =
          List.filter (fun (qr, _) -> not (Hashtbl.mem used qr.B.q_id)) cands
        in
        let pick =
          match
            List.find_opt
              (fun (_, res) -> match res with M.Exact _ -> true | _ -> false)
              avail
          with
          | Some c -> Some c
          | None -> ( match avail with c :: _ -> Some c | [] -> None)
        in
        match pick with Some c -> take qe c | None -> ()
      end)
    all;
  let rejoins =
    List.filter (fun qe -> not (Hashtbl.mem assigned qe.B.q_id)) e_quants
  in
  let extras =
    List.filter (fun qr -> not (Hashtbl.mem used qr.B.q_id)) r_quants
  in
  if !pairs = [] then None
  else Some { Mctx.pairs = !pairs; rejoins; extras }

(* ---------------- SELECT / SELECT ---------------- *)

and match_select_select ctx (e_sel : B.select_body) (r_sel : B.select_body) =
  if e_sel.B.sel_distinct <> r_sel.B.sel_distinct then
    (* footnote 2: a DISTINCT subsumee can still be answered when the
       subsumer is a plain projection over a GROUP BY *)
    if e_sel.B.sel_distinct && not r_sel.B.sel_distinct then
      match match_distinct_vs_group_through ctx e_sel r_sel with
      | Some r -> Some r
      | None ->
          Mctx.reject ctx
            (Obs.Trace.Distinct_incompatible
               "the DISTINCT subsumee does not project the subsumer's \
                grouping set");
          None
    else begin
      Mctx.reject ctx
        (Obs.Trace.Distinct_incompatible
           "the subsumer is DISTINCT but the subsumee is not");
      None
    end
  else
    match pair_children ctx e_sel.B.sel_quants r_sel.B.sel_quants with
    | None ->
        Mctx.reject ctx Obs.Trace.Child_mismatch;
        None
    | Some asg ->
        if
          e_sel.B.sel_distinct
          && (asg.Mctx.rejoins <> [] || asg.Mctx.extras <> [])
        then begin
          Mctx.reject ctx
            (Obs.Trace.Duplicate_loss
               "rejoined or extra children under DISTINCT would change \
                duplicate multiplicities");
          None
        end
        else if not (extras_lossless ctx r_sel asg.Mctx.extras) then begin
          Mctx.reject ctx Obs.Trace.Extra_not_lossless;
          None
        end
        else begin
          let grouping_pairs =
            List.filter
              (fun (_, _, res) ->
                match res with
                | M.Comp levels -> M.comp_has_group levels
                | M.Exact _ -> false)
              asg.Mctx.pairs
          in
          match grouping_pairs with
          | [] -> select_select_flat ctx asg e_sel r_sel
          | [ _ ] when List.length asg.Mctx.pairs = 1 ->
              select_select_grouped ctx asg e_sel r_sel
          | _ ->
              Mctx.reject ctx
                (Obs.Trace.Unsupported
                   "more than one matched child carries a grouping \
                    compensation");
              None
        end

(* 4.1.1 and 4.2.3: no grouping in any child compensation. *)
and select_select_flat ctx asg (e_sel : B.select_body) (r_sel : B.select_body)
    =
  pattern ctx "4.1.1/4.2.3 SELECT compensation over matched children";
  let equiv =
    if !Config.equivalence_classes then
      Equiv.of_preds (List.map (E.map_col (fun q -> M.Rin q)) r_sel.B.sel_preds)
    else Equiv.of_equalities []
  in
  let r_outs =
    List.map (fun (n, e) -> (n, E.map_col (fun q -> M.Rin q) e)) r_sel.B.sel_outs
  in
  let extra_ids = List.map (fun q -> q.B.q_id) asg.Mctx.extras in
  let r_preds =
    List.map (E.map_col (fun q -> M.Rin q)) r_sel.B.sel_preds
    |> List.filter (fun p -> not (refs_quants extra_ids p))
  in
  let r_preds_canon = List.map (canon_tx equiv) r_preds in
  let e_preds_t =
    List.map (fun p -> (p, Translate.to_subsumer asg p)) e_sel.B.sel_preds
  in
  if List.exists (fun (_, t) -> t = None) e_preds_t then begin
    (match List.find_opt (fun (_, t) -> t = None) e_preds_t with
    | Some (p, _) -> Mctx.reject ctx (Obs.Trace.Pred_not_derivable (show_q p))
    | None -> ());
    None
  end
  else
    let e_preds_t = List.map (fun (_, t) -> Option.get t) e_preds_t in
    let cc_preds =
      List.concat_map
        (fun (rq, levels) -> lifted_comp_preds ~rq levels)
        (child_comp_levels asg)
    in
    let strong_canon = List.map (canon_tx equiv) (e_preds_t @ cc_preds) in
    (* condition 2: every remaining subsumer predicate matches or subsumes a
       subsumee / child-compensation predicate.  With the prover on, a
       conjunction-level entailment pass additionally catches bounds split
       across conjuncts (a BETWEEN conjunct vs two comparisons). *)
    let tyo = txref_ty ctx r_sel asg in
    let pstate =
      if
        !Config.predicate_subsumption
        && Prove.Level.rewrite_on ()
        && not (Govern.Budget.deadline_spent ctx.Mctx.budget)
      then Some (Prove.state_of ~ty:(Prove.key_ty ~col:tyo) strong_canon)
      else None
    in
    let cond2 =
      List.for_all
        (fun pr ->
          List.exists
            (fun pe ->
               pr = pe
               || (!Config.predicate_subsumption
                  && Subsume.subsumes ~ty:tyo ~weak:pr ~strong:pe))
            strong_canon
          ||
          match pstate with
          | Some st -> Prove.entails ~ty:(Prove.key_ty ~col:tyo) st pr
          | None -> false)
        r_preds_canon
    in
    if not cond2 then begin
      Mctx.reject ctx Obs.Trace.Summary_pred_unmatched;
      None
    end
    else begin
      (* conditions 3 and 5: unmatched predicates must be derivable and go
         into the compensation *)
      let comp_preds = ref [] in
      let ok = ref true in
      List.iter
        (fun t ->
          if not (List.mem (canon_tx equiv t) r_preds_canon) then
            match Derive.scalar ~equiv ~r_outs t with
            | Some d -> comp_preds := !comp_preds @ [ d ]
            | None ->
                Mctx.reject ctx (Obs.Trace.Pred_not_derivable (show_tx t));
                ok := false)
        (e_preds_t @ cc_preds);
      if not !ok then None
      else begin
        (* condition 4, applied lazily (section 6: QCLs are created as a
           side effect of deriving the parent's expressions): output
           columns that cannot be derived are simply not exported by the
           compensation, so only parents that consume them fail *)
        let outs =
          List.filter_map
            (fun (n, e) ->
              match Translate.to_subsumer asg e with
              | None -> None
              | Some t ->
                  Option.map (fun d -> (n, d)) (Derive.scalar ~equiv ~r_outs t))
            e_sel.B.sel_outs
        in
        if outs = [] && e_sel.B.sel_outs <> [] then begin
          Mctx.reject ctx Obs.Trace.Output_not_derivable;
          None
        end
        else begin
          set_proof ctx
            (certify_select_flat ctx asg ~equiv ~r_outs ~r_preds_canon
               ~strong_canon ~comp_preds:!comp_preds r_sel);
          let rejoins =
            List.map (fun q -> { M.rc_quant = q }) asg.Mctx.rejoins
            @ List.concat_map
                (fun (_, levels) -> comp_rejoins levels)
                (child_comp_levels asg)
          in
          let pure_rename =
            rejoins = [] && !comp_preds = []
            && List.length outs = List.length e_sel.B.sel_outs
            && List.for_all
                 (fun (_, d) ->
                   match d with E.Col (M.Below _) -> true | _ -> false)
                 outs
          in
          if pure_rename then
            Some
              (M.Exact
                 (List.map
                    (fun (n, d) ->
                      match d with
                      | E.Col (M.Below m) -> (n, m)
                      | _ -> assert false)
                    outs))
          else
            Some
              (M.Comp
                 [
                   M.L_select
                     {
                       ls_rejoins = rejoins;
                       ls_preds = !comp_preds;
                       ls_outs = outs;
                     };
                 ])
        end
      end
    end

(* 4.2.4: a single matched child whose compensation contains grouping. The
   child compensation stack is pulled up (level-0 references rewired from
   subsumer-child outputs to subsumer outputs), topped by a SELECT for the
   subsumee's own predicates and outputs. *)
and select_select_grouped ctx asg (e_sel : B.select_body)
    (r_sel : B.select_body) =
  pattern ctx "4.2.4 SELECT over a grouping child compensation";
  match asg.Mctx.pairs with
  | [ (qe, rq, M.Comp levels) ] -> (
      let equiv =
        if !Config.equivalence_classes then
          Equiv.of_preds
            (List.map (E.map_col (fun q -> M.Rin q)) r_sel.B.sel_preds)
        else Equiv.of_equalities []
      in
      let r_outs =
        List.map
          (fun (n, e) -> (n, E.map_col (fun q -> M.Rin q) e))
          r_sel.B.sel_outs
      in
      let extra_ids = List.map (fun q -> q.B.q_id) asg.Mctx.extras in
      let r_preds =
        List.map (E.map_col (fun q -> M.Rin q)) r_sel.B.sel_preds
        |> List.filter (fun p -> not (refs_quants extra_ids p))
      in
      let r_preds_canon = List.map (canon_tx equiv) r_preds in
      let e_preds_t =
        List.map (fun p -> (p, Translate.to_subsumer asg p)) e_sel.B.sel_preds
      in
      if List.exists (fun (_, t) -> t = None) e_preds_t then begin
        (match List.find_opt (fun (_, t) -> t = None) e_preds_t with
        | Some (p, _) ->
            Mctx.reject ctx (Obs.Trace.Pred_not_derivable (show_q p))
        | None -> ());
        None
      end
      else
        let e_preds_t = List.map (fun (p, t) -> (p, Option.get t)) e_preds_t in
        let cc_preds = lifted_comp_preds ~rq levels in
        let strong_canon =
          List.map (fun (_, t) -> canon_tx equiv t) e_preds_t
          @ List.map (canon_tx equiv) cc_preds
        in
        let cond2 =
          List.for_all
            (fun pr ->
              List.exists
                (fun pe ->
               pr = pe
               || (!Config.predicate_subsumption
                  && Subsume.subsumes ~ty:(txref_ty ctx r_sel asg) ~weak:pr
                       ~strong:pe))
                strong_canon)
            r_preds_canon
        in
        if not cond2 then begin
          Mctx.reject ctx Obs.Trace.Summary_pred_unmatched;
          None
        end
        else
          (* pull-up: rewire level 0 from subsumer-child outputs to subsumer
             outputs; every referenced column must be preserved (condition 5
             of 4.2.3, extended to grouping columns in 4.2.4) *)
          let r_out_name_of x =
            let target =
              canon_tx equiv (E.Col (M.Rin { B.quant = rq.B.q_id; col = x }))
            in
            List.find_map
              (fun (m, o) -> if canon_tx equiv o = target then Some m else None)
              r_outs
          in
          let rewire_expr e =
            E.subst_col
              (fun c ->
                match c with
                | M.Rejoin _ -> Some (E.Col c)
                | M.Below x ->
                    Option.map (fun m -> E.Col (M.Below m)) (r_out_name_of x))
              e
          in
          let rewire_level0 level =
            match level with
            | M.L_select { ls_rejoins; ls_preds; ls_outs } -> (
                let preds = List.map rewire_expr ls_preds in
                let outs =
                  List.map (fun (n, e) -> (n, rewire_expr e)) ls_outs
                in
                if
                  List.exists (fun p -> p = None) preds
                  || List.exists (fun (_, o) -> o = None) outs
                then None
                else
                  Some
                    (M.L_select
                       {
                         ls_rejoins;
                         ls_preds = List.filter_map (fun p -> p) preds;
                         ls_outs =
                           List.map (fun (n, o) -> (n, Option.get o)) outs;
                       }))
            | M.L_group { lg_grouping; lg_aggs } -> (
                let map_names cols =
                  let mapped = List.map r_out_name_of cols in
                  if List.exists (fun m -> m = None) mapped then None
                  else Some (List.filter_map (fun m -> m) mapped)
                in
                let grouping' =
                  match lg_grouping with
                  | B.Simple cols ->
                      Option.map (fun c -> B.Simple c) (map_names cols)
                  | B.Gsets sets ->
                      let sets' = List.map map_names sets in
                      if List.exists (fun s -> s = None) sets' then None
                      else Some (B.Gsets (List.filter_map (fun s -> s) sets'))
                in
                let aggs' =
                  List.map
                    (fun (n, agg, arg) ->
                      match arg with
                      | None -> Some (n, agg, None)
                      | Some a ->
                          Option.map (fun a -> (n, agg, Some a)) (rewire_expr a))
                    lg_aggs
                in
                match grouping' with
                | Some gpg when List.for_all (fun a -> a <> None) aggs' ->
                    Some
                      (M.L_group
                         {
                           lg_grouping = gpg;
                           lg_aggs = List.filter_map (fun a -> a) aggs';
                         })
                | _ -> None)
          in
          match levels with
          | [] -> None
          | level0 :: rest -> (
              match rewire_level0 level0 with
              | None ->
                  Mctx.reject ctx
                    (Obs.Trace.Unsupported
                       "the grouping child compensation references a column \
                        not preserved at the subsumer's output");
                  None
              | Some level0' ->
                  let to_cref e =
                    E.subst_col
                      (fun ({ B.quant; col } as qref) ->
                        if quant = qe.B.q_id then Some (E.Col (M.Below col))
                        else if
                          List.exists
                            (fun q -> q.B.q_id = quant)
                            asg.Mctx.rejoins
                        then Some (E.Col (M.Rejoin qref))
                        else None)
                      e
                  in
                  let top_preds =
                    List.filter_map
                      (fun (p, t) ->
                        if List.mem (canon_tx equiv t) r_preds_canon then None
                        else Some (to_cref p))
                      e_preds_t
                  in
                  let top_outs =
                    List.map (fun (n, e) -> (n, to_cref e)) e_sel.B.sel_outs
                  in
                  if
                    List.exists (fun p -> p = None) top_preds
                    || List.exists (fun (_, o) -> o = None) top_outs
                  then None
                  else begin
                    let top =
                      M.L_select
                        {
                          ls_rejoins =
                            List.map
                              (fun q -> { M.rc_quant = q })
                              asg.Mctx.rejoins;
                          ls_preds = List.filter_map (fun p -> p) top_preds;
                          ls_outs =
                            List.map (fun (n, o) -> (n, Option.get o)) top_outs;
                        }
                    in
                    set_proof ctx
                      (Prove.Unknown
                         "4.2.4 grouping pull-up rewrite not certified");
                    Some (M.Comp ((level0' :: rest) @ [ top ]))
                  end))
  | _ -> None

(* ---------------- GROUP BY / GROUP BY ---------------- *)

and match_group_group ctx (e_grp : B.group_body) (r_grp : B.group_body) =
  match match_boxes ctx e_grp.B.grp_quant.B.q_box r_grp.B.grp_quant.B.q_box with
  | None ->
      Mctx.reject ctx Obs.Trace.Child_mismatch;
      None
  | Some child_res ->
      let levels =
        match child_res with M.Exact _ -> [] | M.Comp levels -> levels
      in
      if not (M.comp_has_group levels) then begin
        pattern ctx "4.1.2/4.2.1 regroupable GROUP BY over matched child";
        (* 4.1.2 / 4.2.1 / 5.x: child compensation is at most a SELECT *)
        let pulled_preds =
          List.concat_map
            (function
              | M.L_select { ls_preds; _ } -> ls_preds | M.L_group _ -> [])
            levels
        in
        let rejoins = comp_rejoins levels in
        let keys =
          List.map
            (fun k -> (k, Translate.child_col child_res k))
            (B.grouping_union e_grp.B.grp_grouping)
        in
        let e_child = e_grp.B.grp_quant.B.q_box in
        let aggs =
          List.map
            (fun (n, { B.agg; arg }) ->
              match arg with
              | None -> Some (n, agg, None)
              | Some a -> (
                  match Translate.child_col child_res a with
                  | Some t -> Some (n, agg, Some t)
                  | None ->
                      (* rule (b), second sentence: COUNT(x) over a
                         non-nullable x equals COUNT-star even when x itself
                         is not preserved by the subsumer *)
                      if
                        agg.E.fn = E.Count
                        && (not agg.E.distinct)
                        && not
                             (Props.column_nullable ctx.Mctx.cat ctx.Mctx.qg
                                e_child a)
                      then
                        Some
                          (n, { E.fn = E.Count_star; distinct = false }, None)
                      else None))
            e_grp.B.grp_aggs
        in
        if List.exists (fun (_, t) -> t = None) keys then begin
          Mctx.reject ctx Obs.Trace.Grouping_not_translatable;
          None
        end
        else if List.exists (fun a -> a = None) aggs then begin
          Mctx.reject ctx Obs.Trace.Agg_not_preserved;
          None
        end
        else begin
          let res =
            match_group_spec ctx
              ~keys:(List.map (fun (k, t) -> (k, Option.get t)) keys)
              ~sets:(B.grouping_sets e_grp.B.grp_grouping)
              ~simple:
                (match e_grp.B.grp_grouping with
                | B.Simple _ -> true
                | B.Gsets _ -> false)
              ~aggs:(List.filter_map (fun a -> a) aggs)
              ~pulled_preds ~rejoins ~r_grp
          in
          (* Regrouping is exact whenever the child regions are provably
             equal and both groupings are plain (a cube slice synthesizes
             IS NULL predicates the certificate does not cover), so the
             child pair's certificate transfers to this pair. *)
          (match res with
          | None -> ()
          | Some _ ->
              set_proof ctx
                (if not (Prove.Level.rewrite_on ()) then
                   Prove.Unknown "prover off (ASTQL_PROVE=0)"
                 else
                   let both_simple =
                     (match e_grp.B.grp_grouping with
                     | B.Simple _ -> true
                     | B.Gsets _ -> false)
                     &&
                     match r_grp.B.grp_grouping with
                     | B.Simple _ -> true
                     | B.Gsets _ -> false
                   in
                   if not both_simple then
                     Prove.Unknown
                       "grouping-sets (cube) rewrite not certified"
                   else
                     match
                       Hashtbl.find_opt ctx.Mctx.proofs
                         ( e_grp.B.grp_quant.B.q_box,
                           r_grp.B.grp_quant.B.q_box )
                     with
                     | Some p -> p
                     | None -> Prove.Unknown "child pair not certified"));
          res
        end
      end
      else match_group_nested ctx ~levels ~e_grp ~r_grp

(* 4.2.2: split the child compensation at its lowest GROUP BY level; match
   that level against the subsumer; stack the remaining levels and a
   transcription of the subsumee on top. *)
and match_group_nested ctx ~levels ~(e_grp : B.group_body)
    ~(r_grp : B.group_body) =
  pattern ctx "4.2.2 nested regroup through a grouping child compensation";
  let rec split below = function
    | [] -> None
    | M.L_group { lg_grouping; lg_aggs } :: above ->
        Some (List.rev below, lg_grouping, lg_aggs, above)
    | (M.L_select _ as l) :: above -> split (l :: below) above
  in
  match split [] levels with
  | None -> None
  | Some (below, low_grouping, low_aggs, above) -> (
      let expand e = Translate.through_comp below e in
      let keys =
        List.map
          (fun k -> (k, expand (E.Col (M.Below k))))
          (B.grouping_union low_grouping)
      in
      let aggs =
        List.map
          (fun (n, agg, arg) ->
            match arg with
            | None -> Some (n, agg, None)
            | Some a -> Option.map (fun t -> (n, agg, Some t)) (expand a))
          low_aggs
      in
      let pulled_preds =
        List.concat_map
          (function
            | M.L_select { ls_preds; _ } -> ls_preds | M.L_group _ -> [])
          below
      in
      if List.exists (fun (_, t) -> t = None) keys then begin
        Mctx.reject ctx Obs.Trace.Grouping_not_translatable;
        None
      end
      else if List.exists (fun a -> a = None) aggs then begin
        Mctx.reject ctx Obs.Trace.Agg_not_preserved;
        None
      end
      else
        match
          match_group_spec ctx
            ~keys:(List.map (fun (k, t) -> (k, Option.get t)) keys)
            ~sets:(B.grouping_sets low_grouping)
            ~simple:(match low_grouping with B.Simple _ -> true | _ -> false)
            ~aggs:(List.filter_map (fun a -> a) aggs)
            ~pulled_preds ~rejoins:(comp_rejoins below) ~r_grp
        with
        | None -> None
        | Some intermediate ->
            let inter_levels =
              match intermediate with
              | M.Comp ls -> ls
              | M.Exact cmap ->
                  [
                    M.L_select
                      {
                        ls_rejoins = [];
                        ls_preds = [];
                        ls_outs =
                          List.map (fun (n, m) -> (n, E.Col (M.Below m))) cmap;
                      };
                  ]
            in
            let final_group =
              M.L_group
                {
                  lg_grouping = e_grp.B.grp_grouping;
                  lg_aggs =
                    List.map
                      (fun (n, { B.agg; arg }) ->
                        (n, agg, Option.map (fun a -> E.Col (M.Below a)) arg))
                      e_grp.B.grp_aggs;
                }
            in
            set_proof ctx
              (Prove.Unknown "4.2.2 nested regroup not certified");
            Some (M.Comp (inter_levels @ above @ [ final_group ])))

(* The engine room for 4.1.2 / 4.2.1 / 5.1 / 5.2. The subsumee grouping
   spec (keys, sets, aggs) is in subsumer-child output space: key and
   aggregate-argument expressions are over [Below] of the subsumer-child's
   outputs plus [Rejoin] references. *)
and match_group_spec ctx ~keys ~sets ~simple ~aggs ~pulled_preds ~rejoins
    ~(r_grp : B.group_body) =
  let equiv =
    if !Config.equivalence_classes then Equiv.of_preds pulled_preds
    else Equiv.of_equalities []
  in
  let r_sets = B.grouping_sets r_grp.B.grp_grouping in
  let r_union = B.grouping_union r_grp.B.grp_grouping in
  let r_is_cube =
    match r_grp.B.grp_grouping with B.Gsets _ -> true | B.Simple _ -> false
  in
  let r_child = r_grp.B.grp_quant.B.q_box in
  let r_aggs =
    List.map (fun (n, { B.agg; arg }) -> (n, agg, arg)) r_grp.B.grp_aggs
  in
  let arg_nullable c =
    Props.column_nullable ctx.Mctx.cat ctx.Mctx.ag r_child c
  in
  (* 1:N rejoin test (4.2.1): every rejoined child must be joined on a
     unique key of its base table *)
  let rejoins_one_sided () =
    List.for_all
      (fun (rc : M.rejoin_child) ->
        let qid = rc.M.rc_quant.B.q_id in
        let join_cols =
          List.filter_map
            (fun p ->
              match p with
              | E.Binop ("=", E.Col (M.Rejoin a), E.Col (M.Below _))
                when a.B.quant = qid ->
                  Some a.B.col
              | E.Binop ("=", E.Col (M.Below _), E.Col (M.Rejoin a))
                when a.B.quant = qid ->
                  Some a.B.col
              | _ -> None)
            pulled_preds
        in
        join_cols <> []
        && Props.cols_are_key ctx.Mctx.cat ctx.Mctx.qg rc.M.rc_quant.B.q_box
             join_cols)
      rejoins
  in
  let slice_conj cuboid =
    if not r_is_cube then None
    else
      List.fold_left
        (fun acc col ->
          let t = E.Is_null (E.Col (M.Below col), not (col_mem col cuboid)) in
          match acc with
          | None -> Some t
          | Some a -> Some (E.Binop ("AND", a, t)))
        None r_union
  in
  let restrict cuboid e = Derive.restrict_to_cols equiv cuboid e in
  (* exact-cuboid attempt: the selected keys, restricted to the cuboid, must
     cover it column-for-column; pulled predicates must restrict; aggregates
     must match subsumer aggregates directly *)
  let try_exact_cuboid sel_key_names cuboid =
    let sel_keys =
      List.filter (fun (k, _) -> col_mem k sel_key_names) keys
    in
    (* rejoin-valued keys count as cuboid columns when the pulled join
       predicates make them equivalent to one (Figure 8's lid = flid) *)
    let to_below t =
      E.map_col
        (fun c ->
          match c with
          | M.Below _ -> c
          | M.Rejoin _ -> (
              match
                List.find_opt
                  (fun m ->
                    match m with
                    | M.Below y -> col_mem y cuboid
                    | M.Rejoin _ -> false)
                  (Equiv.members equiv c)
              with
              | Some b -> b
              | None -> c))
        t
    in
    let rkeys =
      List.map (fun (k, t) -> (k, restrict cuboid (to_below t))) sel_keys
    in
    let rpreds = List.map (restrict cuboid) pulled_preds in
    if
      List.exists (fun (_, t) -> t = None) rkeys
      || List.exists (fun p -> p = None) rpreds
    then None
    else
      let rkeys = List.map (fun (k, t) -> (k, Option.get t)) rkeys in
      let key_cols =
        List.map
          (fun (k, t) ->
            match t with E.Col (M.Below x) -> Some (k, x) | _ -> None)
          rkeys
      in
      if List.exists (fun c -> c = None) key_cols then None
      else
        let key_cols = List.filter_map (fun c -> c) key_cols in
        let covers =
          List.sort_uniq compare (List.map (fun (_, x) -> norm x) key_cols)
          = List.sort_uniq compare (List.map norm cuboid)
        in
        if not covers then None
        else if rejoins <> [] && not (rejoins_one_sided ()) then None
        else
          let env =
            {
              Derive.ge_equiv = equiv;
              ge_cuboid = cuboid;
              ge_r_aggs = r_aggs;
              ge_arg_nullable = arg_nullable;
              ge_ekey_cols = Some (List.map snd key_cols);
            }
          in
          let direct =
            List.map
              (fun (n, agg, arg) -> (n, Derive.agg_direct env agg arg))
              aggs
          in
          if List.exists (fun (_, d) -> d = None) direct then None
          else
            Some
              ( key_cols,
                List.filter_map (fun p -> p) rpreds,
                List.map (fun (n, d) -> (n, Option.get d)) direct )
  in
  let key_out k =
    (* prefer the untouched translated key when all of its references
       survive at the subsumer's output (keeps rejoin-side names, Fig. 8) *)
    let orig = List.assoc k keys in
    let usable =
      List.for_all
        (fun c ->
          match c with
          | M.Below x -> col_mem x r_union
          | M.Rejoin _ -> true)
        (E.cols orig)
    in
    if usable then Some orig else None
  in
  if simple then begin
    let exact_hit =
      List.find_map
        (fun cuboid ->
          Option.map
            (fun x -> (cuboid, x))
            (try_exact_cuboid (List.map fst keys) cuboid))
        r_sets
    in
    match exact_hit with
    | Some (cuboid, (key_cols, preds', direct)) ->
        let all_preds = Option.to_list (slice_conj cuboid) @ preds' in
        let outs =
          List.map
            (fun (k, x) ->
              match key_out k with
              | Some orig -> (k, orig)
              | None -> (k, E.Col (M.Below x)))
            key_cols
          @ List.map (fun (n, m) -> (n, E.Col (M.Below m))) direct
        in
        if
          rejoins = [] && all_preds = []
          && List.for_all
               (fun (_, d) ->
                 match d with E.Col (M.Below _) -> true | _ -> false)
               outs
        then
          Some
            (M.Exact
               (List.map
                  (fun (n, d) ->
                    match d with
                    | E.Col (M.Below m) -> (n, m)
                    | _ -> assert false)
                  outs))
        else
          Some
            (M.Comp
               [
                 M.L_select
                   { ls_rejoins = rejoins; ls_preds = all_preds; ls_outs = outs };
               ])
    | None ->
        regroup_compensation ctx ~keys
          ~regroup_grouping:(B.Simple (List.map fst keys))
          ~aggs ~equiv ~r_sets ~r_aggs ~arg_nullable ~rejoins ~pulled_preds
          ~slice_conj ~restrict
  end
  else begin
    (* 5.2: cube query against cube AST *)
    let per_set =
      List.map
        (fun set ->
          List.find_map
            (fun cuboid ->
              Option.map (fun x -> (cuboid, x)) (try_exact_cuboid set cuboid))
            r_sets)
        sets
    in
    let all_exact = List.for_all (fun x -> x <> None) per_set in
    if all_exact && rejoins = [] then begin
      let hits = List.filter_map (fun x -> x) per_set in
      (* key -> subsumer column mappings and aggregate mappings must agree
         across the chosen cuboids, and pulled predicates must restrict
         identically *)
      let merged_keys = Hashtbl.create 8 in
      let consistent = ref true in
      List.iter
        (fun (_, (key_cols, _, _)) ->
          List.iter
            (fun (k, x) ->
              match Hashtbl.find_opt merged_keys (norm k) with
              | None -> Hashtbl.replace merged_keys (norm k) x
              | Some x' -> if norm x <> norm x' then consistent := false)
            key_cols)
        hits;
      let _, (_, preds0, direct0) = ((), List.hd hits |> snd) in
      List.iter
        (fun (_, (_, p, d)) ->
          if p <> preds0 || d <> direct0 then consistent := false)
        hits;
      if not !consistent then None
      else
        let slices = List.filter_map (fun (c, _) -> slice_conj c) hits in
        let disj =
          match slices with
          | [] -> []
          | first :: rest ->
              [ List.fold_left (fun acc s -> E.Binop ("OR", acc, s)) first rest ]
        in
        let outs =
          List.map
            (fun (k, _) ->
              match Hashtbl.find_opt merged_keys (norm k) with
              | Some x -> (k, E.Col (M.Below x))
              | None -> (k, E.Const V.Null))
            keys
          @ List.map (fun (n, m) -> (n, E.Col (M.Below m))) direct0
        in
        Some
          (M.Comp
             [
               M.L_select
                 { ls_rejoins = []; ls_preds = disj @ preds0; ls_outs = outs };
             ])
    end
    else
      regroup_compensation ctx ~keys ~regroup_grouping:(B.Gsets sets) ~aggs
        ~equiv ~r_sets ~r_aggs ~arg_nullable ~rejoins ~pulled_preds ~slice_conj
        ~restrict
  end

(* The [select; group; select] compensation for the regrouping cases of
   4.1.2 / 4.2.1 / 5.1 / 5.2: slice and filter the smallest usable cuboid,
   regroup by the subsumee's grouping, re-derive the aggregates. *)
and regroup_compensation ctx ~keys ~regroup_grouping ~aggs ~equiv ~r_sets
    ~r_aggs ~arg_nullable ~rejoins ~pulled_preds ~slice_conj ~restrict =
  pattern ctx "5.1/5.2 regroup from a covering cuboid";
  let candidates =
    List.filter_map
      (fun cuboid ->
        let rkeys = List.map (fun (k, t) -> (k, restrict cuboid t)) keys in
        let rpreds = List.map (restrict cuboid) pulled_preds in
        if
          List.exists (fun (_, t) -> t = None) rkeys
          || List.exists (fun p -> p = None) rpreds
        then None
        else
          let rkeys = List.map (fun (k, t) -> (k, Option.get t)) rkeys in
          let key_cols =
            List.filter_map
              (fun (_, t) ->
                match t with E.Col (M.Below x) -> Some x | _ -> None)
              rkeys
          in
          (* rule f's exactness shortcut (COUNT(DISTINCT x) as plain
             COUNT(y)) presumes the compensation groups by ALL the keys;
             under a grouping-sets regroup the coarser cuboids group by
             fewer, so only the general DISTINCT form is sound there *)
          let ekey_cols =
            match regroup_grouping with
            | B.Gsets _ -> None
            | B.Simple _ ->
                if List.length key_cols = List.length rkeys then Some key_cols
                else None
          in
          let env =
            {
              Derive.ge_equiv = equiv;
              ge_cuboid = cuboid;
              ge_r_aggs = r_aggs;
              ge_arg_nullable = arg_nullable;
              ge_ekey_cols = ekey_cols;
            }
          in
          let derived =
            List.map
              (fun (n, agg, arg) -> (n, Derive.agg_regroup env agg arg))
              aggs
          in
          if List.exists (fun (_, d) -> d = None) derived then begin
            (match List.find_opt (fun (_, d) -> d = None) derived with
            | Some (n, _) ->
                Mctx.reject ctx (Obs.Trace.Agg_rule_inapplicable n)
            | None -> ());
            None
          end
          else
            Some
              ( cuboid,
                rkeys,
                List.filter_map (fun p -> p) rpreds,
                List.map (fun (n, d) -> (n, Option.get d)) derived ))
      r_sets
  in
  let smallest =
    if !Config.smallest_cuboid then
      List.sort
        (fun (a, _, _, _) (b, _, _, _) ->
          compare (List.length a) (List.length b))
        candidates
    else candidates
  in
  match smallest with
  | [] ->
      Mctx.reject ctx Obs.Trace.No_covering_cuboid;
      None
  | (cuboid, rkeys, preds', derived) :: _ ->
      let key_names = List.map fst rkeys in
      (* passthroughs of subsumer outputs consumed by the derived
         aggregates, renamed on collision with key names *)
      let needed_below =
        List.sort_uniq compare
          (List.concat_map
             (fun (_, d) ->
               List.filter_map
                 (fun c ->
                   match c with M.Below x -> Some x | M.Rejoin _ -> None)
                 (E.cols d))
             derived)
      in
      let pass_name =
        List.fold_left
          (fun acc x ->
            let taken = key_names @ List.map snd acc in
            let n =
              if List.exists (fun t -> norm t = norm x) taken then
                let rec fresh i =
                  let cand = Printf.sprintf "%s_p%d" x i in
                  if List.exists (fun t -> norm t = norm cand) taken then
                    fresh (i + 1)
                  else cand
                in
                fresh 1
              else x
            in
            acc @ [ (x, n) ])
          [] needed_below
      in
      let l0_outs =
        rkeys @ List.map (fun (x, n) -> (n, E.Col (M.Below x))) pass_name
      in
      let l0 =
        M.L_select
          {
            ls_rejoins = rejoins;
            ls_preds = Option.to_list (slice_conj cuboid) @ preds';
            ls_outs = l0_outs;
          }
      in
      let rebase e =
        E.map_col
          (fun c ->
            match c with
            | M.Below x -> (
                match
                  List.find_opt (fun (y, _) -> norm y = norm x) pass_name
                with
                | Some (_, n) -> M.Below n
                | None -> M.Below x)
            | M.Rejoin r -> M.Rejoin r)
          e
      in
      let l1_aggs = ref [] in
      let rec extract_aggs e =
        match e with
        | E.Agg (agg, arg) -> (
            let arg' = Option.map rebase arg in
            let key = (agg, Option.map E.normalize arg') in
            match List.find_opt (fun (_, k, _) -> k = key) !l1_aggs with
            | Some (n, _, _) -> E.Col (M.Below n)
            | None ->
                let n = Printf.sprintf "agg_c%d" (List.length !l1_aggs + 1) in
                l1_aggs := !l1_aggs @ [ (n, key, (agg, arg')) ];
                E.Col (M.Below n))
        | E.Const v -> E.Const v
        | E.Col c -> E.Col c
        | e -> E.with_children e (List.map extract_aggs (E.children e))
      in
      let top_exprs = List.map (fun (n, d) -> (n, extract_aggs d)) derived in
      let l1 =
        M.L_group
          {
            lg_grouping = regroup_grouping;
            lg_aggs =
              List.map (fun (n, _, (agg, arg)) -> (n, agg, arg)) !l1_aggs;
          }
      in
      let l2_outs =
        List.map (fun (k, _) -> (k, E.Col (M.Below k))) keys @ top_exprs
      in
      let l2 =
        M.L_select { ls_rejoins = []; ls_preds = []; ls_outs = l2_outs }
      in
      Some (M.Comp [ l0; l1; l2 ])

(* ------------------------------------------------------------------ *)
(* Footnote 2 extension: SELECT DISTINCT vs. GROUP BY cross-matching    *)
(* ------------------------------------------------------------------ *)

(* SELECT DISTINCT subsumee against the usual AST shape: a plain rename
   SELECT over a GROUP BY. Match against the GROUP BY and rewire the
   compensation through the subsumer's output names. *)
and match_distinct_vs_group_through ctx (e_sel : B.select_body)
    (r_sel : B.select_body) =
  match r_sel.B.sel_quants with
  | [ rq ]
    when rq.B.q_kind = B.Foreach
         && r_sel.B.sel_preds = []
         && not r_sel.B.sel_distinct -> (
      match (G.box ctx.Mctx.ag rq.B.q_box).B.body with
      | B.Group r_grp -> (
          (* subsumer outputs must be pure renames of group columns *)
          let rename =
            List.filter_map
              (fun (n, e) ->
                match e with
                | E.Col { B.col; _ } -> Some (col, n)
                | _ -> None)
              r_sel.B.sel_outs
          in
          if List.length rename <> List.length r_sel.B.sel_outs then None
          else
            match match_distinct_vs_group ctx e_sel r_grp with
            | Some (M.Comp levels) ->
                let rewire e =
                  E.subst_col
                    (fun c ->
                      match c with
                      | M.Rejoin _ -> Some (E.Col c)
                      | M.Below g ->
                          List.find_map
                            (fun (src, out) ->
                              if norm src = norm g then
                                Some (E.Col (M.Below out))
                              else None)
                            rename)
                    e
                in
                let rewire_level = function
                  | M.L_select { ls_rejoins; ls_preds; ls_outs } ->
                      let preds = List.map rewire ls_preds in
                      let outs =
                        List.map (fun (n, e) -> (n, rewire e)) ls_outs
                      in
                      if
                        List.exists (fun p -> p = None) preds
                        || List.exists (fun (_, o) -> o = None) outs
                      then None
                      else
                        Some
                          (M.L_select
                             {
                               ls_rejoins;
                               ls_preds = List.filter_map (fun p -> p) preds;
                               ls_outs =
                                 List.map (fun (n, o) -> (n, Option.get o)) outs;
                             })
                  | M.L_group _ -> None
                in
                let levels' = List.map rewire_level levels in
                if List.exists (fun l -> l = None) levels' then None
                else Some (M.Comp (List.filter_map (fun l -> l) levels'))
            | other -> other)
      | _ -> None)
  | _ -> None

(* SELECT DISTINCT k1..kn matches GROUP BY k1..kn: the distinct tuples
   are exactly the groups. The DISTINCT select merges what the subsumer
   splits into a lower SELECT and a GROUP BY, so the select-level match
   runs against the grouping's child; its result must project onto the
   full grouping set, with any residual predicates confined to grouping
   columns. Rejoins are rejected (re-introduced duplicates could not be
   collapsed again). *)
and match_distinct_vs_group ctx (e_sel : B.select_body) (r_grp : B.group_body)
    =
  pattern ctx "footnote-2 SELECT DISTINCT vs GROUP BY";
  match r_grp.B.grp_grouping with
  | B.Gsets _ -> None
  | B.Simple r_keys -> (
      match (G.box ctx.Mctx.ag r_grp.B.grp_quant.B.q_box).B.body with
      | B.Select r_child_sel -> (
          let as_projection outs_preds =
            let outs, preds = outs_preds in
            let cols =
              List.map
                (fun (n, e) ->
                  match e with
                  | E.Col (M.Below m) when col_mem m r_keys -> Some (n, m)
                  | _ -> None)
                outs
            in
            if List.exists (fun c -> c = None) cols then None
            else
              let cols = List.filter_map (fun c -> c) cols in
              let covering =
                List.sort_uniq compare (List.map (fun (_, m) -> norm m) cols)
                = List.sort_uniq compare (List.map norm r_keys)
              in
              let preds_ok =
                List.for_all
                  (fun p ->
                    List.for_all
                      (fun c ->
                        match c with
                        | M.Below m -> col_mem m r_keys
                        | M.Rejoin _ -> false)
                      (E.cols p))
                  preds
              in
              if covering && preds_ok then begin
                (* Override whatever the inner select-level match deposited:
                   the DISTINCT/GROUP BY duplicate-collapse step is not
                   modelled by the prover's region certificates. *)
                set_proof ctx
                  (Prove.Unknown "DISTINCT cross-match not certified");
                Some
                  (M.Comp
                     [
                       M.L_select
                         {
                           ls_rejoins = [];
                           ls_preds = preds;
                           ls_outs =
                             List.map
                               (fun (n, m) -> (n, E.Col (M.Below m)))
                               cols;
                         };
                     ])
              end
              else begin
                Mctx.reject ctx
                  (Obs.Trace.Distinct_incompatible
                     "the DISTINCT projection does not cover the summary's \
                      grouping set");
                None
              end
          in
          match
            match_select_select ctx
              { e_sel with B.sel_distinct = false }
              r_child_sel
          with
          | Some (M.Exact cmap) ->
              as_projection
                (List.map (fun (n, m) -> (n, E.Col (M.Below m))) cmap, [])
          | Some (M.Comp [ M.L_select { ls_rejoins = []; ls_preds; ls_outs } ])
            ->
              as_projection (ls_outs, ls_preds)
          | _ -> None)
      | _ -> None)

(* GROUP BY k1..kn with no aggregates matches SELECT DISTINCT k1..kn: the
   groups are exactly the distinct tuples. The subsumee's child must match
   the subsumer as if the latter were not DISTINCT (duplicates are about to
   be discarded by the grouping anyway). *)
and match_group_vs_distinct ctx (e_grp : B.group_body) (r_sel : B.select_body)
    =
  pattern ctx "footnote-2 GROUP BY vs SELECT DISTINCT";
  if e_grp.B.grp_aggs <> [] then None
  else
    match e_grp.B.grp_grouping with
    | B.Gsets _ -> None
    | B.Simple e_keys -> (
        match (G.box ctx.Mctx.qg e_grp.B.grp_quant.B.q_box).B.body with
        | B.Select ce_sel -> (
            match
              match_select_select ctx ce_sel
                { r_sel with B.sel_distinct = ce_sel.B.sel_distinct }
            with
            | Some (M.Exact cmap) ->
                let mapped =
                  List.map
                    (fun k ->
                      List.find_map
                        (fun (a, b) -> if norm a = norm k then Some (k, b) else None)
                        cmap)
                    e_keys
                in
                if List.exists (fun m -> m = None) mapped then None
                else
                  let mapped = List.filter_map (fun m -> m) mapped in
                  (* the grouping keys must cover the subsumer's whole
                     output (otherwise the projection re-introduces
                     duplicate tuples the subsumee would have collapsed) *)
                  let covered =
                    List.sort_uniq compare
                      (List.map (fun (_, m) -> norm m) mapped)
                    = List.sort_uniq compare
                        (List.map (fun (n, _) -> norm n) (List.map (fun (n, e) -> (n, e)) r_sel.B.sel_outs))
                  in
                  if not covered then begin
                    Mctx.reject ctx
                      (Obs.Trace.Duplicate_loss
                         "the grouping keys do not cover the summary's whole \
                          output (the projection would re-introduce \
                          duplicates)");
                    None
                  end
                  else begin
                    set_proof ctx
                      (Prove.Unknown "DISTINCT cross-match not certified");
                    Some
                      (M.Comp
                         [
                           M.L_select
                             {
                               ls_rejoins = [];
                               ls_preds = [];
                               ls_outs =
                                 List.map
                                   (fun (k, m) -> (k, E.Col (M.Below m)))
                                   mapped;
                             };
                         ])
                  end
            | _ -> None)
        | _ -> None)
