module E = Qgm.Expr
module B = Qgm.Box
module M = Mtypes

let norm = String.lowercase_ascii

let tr_calls = Obs.Metrics.counter "translate.calls"

let through_comp levels e =
  Guard.Fault.hit Guard.Fault.Translate;
  Obs.Metrics.incr tr_calls;
  (* Walk from the top level down, substituting Below references with the
     level's defining expression; Rejoin references pass through. *)
  let subst_level level e =
    E.subst_col
      (fun c ->
        match c with
        | M.Rejoin _ -> Some (E.Col c)
        | M.Below col -> M.level_out_expr level col)
      e
  in
  List.fold_right
    (fun level acc -> Option.bind acc (subst_level level))
    levels (Some e)

let child_col result col =
  match result with
  | M.Exact cmap ->
      List.find_map
        (fun (e_col, r_col) ->
          if norm e_col = norm col then Some (E.Col (M.Below r_col)) else None)
        cmap
  | M.Comp levels -> through_comp levels (E.Col (M.Below col))

let lift_cref ~rq e =
  E.map_col
    (fun c ->
      match c with
      | M.Below col -> M.Rin { B.quant = rq.B.q_id; col }
      | M.Rejoin r -> M.Rj r)
    e

let to_subsumer (asg : Mctx.assignment) e =
  E.subst_col
    (fun ({ B.quant; col } as qref) ->
      if List.exists (fun q -> q.B.q_id = quant) asg.Mctx.rejoins then
        Some (E.Col (M.Rj qref))
      else
        match
          List.find_opt (fun (qe, _, _) -> qe.B.q_id = quant) asg.Mctx.pairs
        with
        | None -> None
        | Some (_, rq, result) ->
            Option.map (lift_cref ~rq) (child_col result col))
    e

let subsumer_outs (box : B.box) =
  let to_rin e = E.map_col (fun q -> M.Rin q) e in
  match box.B.body with
  | B.Base { bt_cols = cols; _ } ->
      (* leaves never act as subsumers in derivation, but give a sane view *)
      List.map (fun c -> (c, E.Col (M.Rin { B.quant = -1; col = c }))) cols
  | B.Select { sel_outs = outs; _ } -> List.map (fun (n, e) -> (n, to_rin e)) outs
  | B.Union u ->
      (* a UNION subsumer exposes no derivable structure *)
      List.map
        (fun c -> (c, E.Col (M.Rin { B.quant = -1; col = c })))
        u.B.un_cols
  | B.Group { grp_quant = quant; grp_grouping = grouping; grp_aggs = aggs } ->
      let key_outs =
        List.map
          (fun c ->
            (c, E.Col (M.Rin { B.quant = quant.B.q_id; col = c })))
          (B.grouping_union grouping)
      in
      let agg_outs =
        List.map
          (fun (n, { B.agg; arg }) ->
            let arg_e =
              Option.map
                (fun c -> E.Col (M.Rin { B.quant = quant.B.q_id; col = c }))
                arg
            in
            (n, E.Agg (agg, arg_e)))
          aggs
      in
      key_outs @ agg_outs

let subsumer_preds (box : B.box) =
  match box.B.body with
  | B.Base _ | B.Group _ | B.Union _ -> []
  | B.Select { sel_preds = preds; _ } -> List.map (E.map_col (fun q -> M.Rin q)) preds

let subsumer_equiv (box : B.box) = Equiv.of_preds (subsumer_preds box)
