type site = {
  site_box : Qgm.Box.box_id;
  site_result : Mtypes.result;
  site_proof : Prove.status;
}

let nav_runs = Obs.Metrics.counter "navigator.runs"
let nav_sites = Obs.Metrics.counter "navigator.sites"
let nav_ms = Obs.Metrics.histogram "navigator.ms"

(* Since derivation of output columns is lazy (section 6), an interior
   match may legitimately cover only part of a box's outputs — but a match
   that is to REPLACE a box must reproduce every output column. *)
let covers_outputs g e_id (res : Mtypes.result) =
  let norm = String.lowercase_ascii in
  let wanted =
    List.map norm (Qgm.Box.output_cols (Qgm.Graph.box g e_id))
  in
  let produced =
    match res with
    | Mtypes.Exact cmap -> List.map (fun (n, _) -> norm n) cmap
    | Mtypes.Comp [] -> []
    | Mtypes.Comp levels ->
        List.map norm (Mtypes.level_outs (List.nth levels (List.length levels - 1)))
  in
  List.for_all (fun c -> List.mem c produced) wanted

let find_matches ?trace ?budget cat ~query ~ast =
  Guard.Fault.hit Guard.Fault.Navigate;
  Obs.Metrics.incr nav_runs;
  Obs.Metrics.time nav_ms (fun () ->
      Obs.Trace.with_span trace ~kind:"navigate" ~label:"bottom-up over query boxes"
        (fun () ->
          let ctx = Mctx.create ?trace ?budget cat ~query ~ast in
          let r_root = Qgm.Graph.root ast in
          let boxes = Qgm.Graph.reachable query (Qgm.Graph.root query) in
          let sites =
            List.filter_map
              (fun e_id ->
                match Patterns.match_boxes ctx e_id r_root with
                | Some res when covers_outputs query e_id res ->
                    Obs.Trace.accept trace ~kind:"site"
                      ~label:(Printf.sprintf "query box %d" e_id)
                      (match res with
                      | Mtypes.Exact _ -> "exact"
                      | Mtypes.Comp _ -> "compensated");
                    let proof =
                      match Hashtbl.find_opt ctx.Mctx.proofs (e_id, r_root) with
                      | Some p -> p
                      | None -> Prove.Unknown "no certificate recorded"
                    in
                    Some { site_box = e_id; site_result = res; site_proof = proof }
                | Some _ ->
                    (* an interior match exists but can't replace the box *)
                    Obs.Trace.reject trace ~kind:"site"
                      ~label:(Printf.sprintf "query box %d" e_id)
                      Obs.Trace.Outputs_not_covered;
                    None
                | None -> None)
              boxes
          in
          Obs.Metrics.add nav_sites (List.length sites);
          sites))

let matches cat ~query ~ast = find_matches cat ~query ~ast <> []
