(** Predicate subsumption (paper section 4.1.1, footnote 4).

    [p1] subsumes [p2] when every row eliminated by [p1] is also eliminated
    by [p2] — e.g. [x > 10] subsumes [x > 20]. Used on predicates already
    translated into a common reference space and canonicalized. *)

(** The unknown-type oracle: no bound normalization. *)
val no_ty : 'c -> Data.Value.ty option

(** [subsumes ~ty ~weak ~strong] — does [weak] subsume [strong]? Recognizes
    syntactic equality (after normalization), constant relaxation of
    comparisons over the same expression, and — when [ASTQL_PROVE] is on —
    anything the static prover can certify ([weak] entailed by [strong] as
    single-predicate conjunctions, e.g. an equality inside a range).

    [ty] is a column-type oracle; when it identifies an INT or DATE typed
    column, strict and non-strict bounds on adjacent points compare equal
    ([x > 9] vs [x >= 10]). Pass {!no_ty} when types are unavailable. *)
val subsumes :
  ty:('c -> Data.Value.ty option) ->
  weak:'c Qgm.Expr.t -> strong:'c Qgm.Expr.t -> bool
