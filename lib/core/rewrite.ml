module E = Qgm.Expr
module B = Qgm.Box
module G = Qgm.Graph
module M = Mtypes

type mv = { mv_name : string; mv_graph : G.t; mv_version : int }
type step = {
  used_mv : string;
  target : B.box_id;
  exact : bool;
  proved : Prove.status;
}

(* A plan is statically certified only when every applied step is. *)
let steps_proof steps =
  Prove.all_proved (List.map (fun s -> s.proved) steps)


(* Build one SELECT body from an L_select level sitting on [below]. *)
let build_select g ~below ~(level_rejoins : M.rejoin_child list) ~preds ~outs =
  let g, qb = G.fresh_quant g below B.Foreach in
  let g, rejoin_quants =
    List.fold_left
      (fun (g, acc) (rc : M.rejoin_child) ->
        let orig = rc.M.rc_quant in
        let g, q = G.fresh_quant g orig.B.q_box orig.B.q_kind in
        (g, acc @ [ (orig.B.q_id, q) ]))
      (g, []) level_rejoins
  in
  let map_ref c =
    match c with
    | M.Below col -> { B.quant = qb.B.q_id; col }
    | M.Rejoin { B.quant; col } -> (
        match List.assoc_opt quant rejoin_quants with
        | Some q -> { B.quant = q.B.q_id; col }
        | None ->
            invalid_arg
              (Printf.sprintf "Rewrite: unbound rejoin quantifier %d" quant))
  in
  let body =
    B.Select
      {
        sel_quants = (qb :: List.map snd rejoin_quants);
        sel_preds = List.map (E.map_col map_ref) preds;
        sel_outs = List.map (fun (n, e) -> (n, E.map_col map_ref e)) outs;
        sel_distinct = false;
      }
  in
  (g, body)

(* Build a GROUP BY from an L_group level; when an aggregate argument is not
   a plain column of [below], interpose a SELECT computing it. *)
let build_group g ~below ~below_cols ~grouping ~(aggs : (string * E.agg * M.cref E.t option) list) =
  let plain =
    List.for_all
      (fun (_, _, arg) ->
        match arg with
        | None | Some (E.Col (M.Below _)) -> true
        | Some _ -> false)
      aggs
  in
  let g, child, col_of_arg =
    if plain then
      ( g,
        below,
        fun arg ->
          match arg with
          | None -> None
          | Some (E.Col (M.Below c)) -> Some c
          | Some _ -> assert false )
    else begin
      (* interpose a SELECT: pass all below columns through, compute complex
         arguments under fresh names *)
      let g, qb = G.fresh_quant g below B.Foreach in
      let pass =
        List.map
          (fun c -> (c, E.Col { B.quant = qb.B.q_id; col = c }))
          below_cols
      in
      let complex = ref [] in
      let col_of arg =
        match arg with
        | None -> None
        | Some (E.Col (M.Below c)) -> Some c
        | Some e -> (
            match List.find_opt (fun (_, e') -> e' = e) !complex with
            | Some (n, _) -> Some n
            | None ->
                let n = Printf.sprintf "arg_c%d" (List.length !complex + 1) in
                complex := !complex @ [ (n, e) ];
                Some n)
      in
      (* force evaluation of all arguments to populate [complex] *)
      let resolved = List.map (fun (_, _, arg) -> col_of arg) aggs in
      ignore resolved;
      let to_qref e =
        E.map_col
          (fun c ->
            match c with
            | M.Below col -> { B.quant = qb.B.q_id; col }
            | M.Rejoin _ ->
                invalid_arg "Rewrite: rejoin reference in aggregate argument")
          e
      in
      let outs = pass @ List.map (fun (n, e) -> (n, to_qref e)) !complex in
      let g, sel_id =
        G.add_box g
          (B.Select
             { sel_quants = [ qb ]; sel_preds = []; sel_outs = outs; sel_distinct = false })
      in
      (g, sel_id, col_of)
    end
  in
  let g, gq = G.fresh_quant g child B.Foreach in
  let body =
    B.Group
      {
        grp_quant = gq;
        grp_grouping = grouping;
        grp_aggs =
          List.map
            (fun (n, agg, arg) -> (n, { B.agg; arg = col_of_arg arg }))
            aggs;
      }
  in
  (g, body)

(* Plan-time graph corruption for the Corrupt injection point: repoint the
   compensation's first quantifier at a box id that does not exist. Every
   compensated box has at least one quantifier (the one ranging over the
   summary table), so the damage is always present and always statically
   detectable (validator code V103) — no runtime oracle needed. *)
let corrupt_compensation g target =
  let b = G.box g target in
  let dangle q = { q with B.q_box = 1_000_000 + q.B.q_box } in
  let body =
    match b.B.body with
    | B.Select s -> (
        match s.B.sel_quants with
        | q :: rest -> B.Select { s with B.sel_quants = dangle q :: rest }
        | [] -> b.B.body)
    | B.Group grp -> B.Group { grp with B.grp_quant = dangle grp.B.grp_quant }
    | B.Union u -> (
        match u.B.un_quants with
        | q :: rest -> B.Union { u with B.un_quants = dangle q :: rest }
        | [] -> b.B.body)
    | B.Base _ -> b.B.body
  in
  G.update_box g target body

let apply ~query ~target ~result ~mv_table ~mv_cols =
  Guard.Fault.hit Guard.Fault.Compensate;
  let g, mv_box =
    G.add_box query (B.Base { bt_table = mv_table; bt_cols = mv_cols })
  in
  let levels =
    match result with
    | M.Exact cmap ->
        [
          M.L_select
            {
              ls_rejoins = [];
              ls_preds = [];
              ls_outs = List.map (fun (n, m) -> (n, E.Col (M.Below m))) cmap;
            };
        ]
    | M.Comp levels -> levels
  in
  let rec install g below below_cols = function
    | [] -> invalid_arg "Rewrite.apply: empty compensation"
    | [ last ] ->
        (* the top level takes over the subsumee's box id *)
        let g, body =
          match last with
          | M.L_select { ls_rejoins; ls_preds; ls_outs } ->
              build_select g ~below ~level_rejoins:ls_rejoins ~preds:ls_preds
                ~outs:ls_outs
          | M.L_group { lg_grouping; lg_aggs } ->
              build_group g ~below ~below_cols ~grouping:lg_grouping
                ~aggs:lg_aggs
        in
        G.update_box g target body
    | level :: rest ->
        let g, body =
          match level with
          | M.L_select { ls_rejoins; ls_preds; ls_outs } ->
              build_select g ~below ~level_rejoins:ls_rejoins ~preds:ls_preds
                ~outs:ls_outs
          | M.L_group { lg_grouping; lg_aggs } ->
              build_group g ~below ~below_cols ~grouping:lg_grouping
                ~aggs:lg_aggs
        in
        let g, id = G.add_box g body in
        install g id (B.output_cols (G.box g id)) rest
  in
  let g' = install g mv_box mv_cols levels in
  (* When the validator checks every candidate (ASTQL_VALIDATE=2), an
     armed Corrupt fault strikes *here*, at the translate/compensate
     product, and must be caught statically by Lint.Validate. At lower
     levels the fault stays armed for the runtime site in Session, where
     the verify oracle catches it dynamically. *)
  if Lint.Level.candidates_on () && Guard.Fault.fire Guard.Fault.Corrupt then
    corrupt_compensation g' target
  else g'

(* ------------------------------------------------------------------ *)
(* Cost-based routing                                                  *)
(* ------------------------------------------------------------------ *)


(* With [on_error], a failure while judging one summary table (navigator,
   match function, compensation construction, translation — anything up to
   and including building the candidate graph) is reported and that summary
   table contributes no candidates, instead of the exception voiding the
   whole planning; the remaining summary tables are still tried. Without
   it, exceptions propagate (the historical behaviour, kept for direct
   callers and tests). *)
let guarded on_error mv_name fallback f =
  match on_error with
  | None -> f ()
  | Some h -> (
      match f () with
      | v -> v
      | exception ((Sys.Break | Guard.Error.Fatal _
                   | Govern.Budget.Budget_exhausted _) as e) ->
          raise e
      | exception ((Out_of_memory | Stack_overflow) as e) ->
          raise
            (Guard.Error.Fatal
               (Guard.Error.classify ~stage:Guard.Error.Match ~mv:mv_name e))
      | exception e ->
          h mv_name e;
          fallback)

let rw_candidates = Obs.Metrics.counter "rewrite.candidates"
let rw_steps = Obs.Metrics.counter "rewrite.steps"
let rw_route_ms = Obs.Metrics.histogram "rewrite.route_ms"
let rw_lint_rejects = Obs.Metrics.counter "lint.candidate_rejects"

(* Level-2 static check of one candidate graph. A violation is recorded as
   a typed trace reject and raised as Guard.Error.Invalid_ir so the
   planner's containment path classifies it (stage Validate) and
   quarantines the (fingerprint x summary x version) pair. *)
let validate_candidate ?trace cat mv_name g' =
  if Lint.Level.candidates_on () then
    match Lint.Validate.check ~cat g' with
    | [] -> ()
    | vs ->
        Obs.Metrics.incr rw_lint_rejects;
        let msg = Lint.Validate.summary vs in
        Obs.Trace.reject trace ~kind:"validate" ~label:mv_name
          (Obs.Trace.Ir_invalid msg);
        raise (Guard.Error.Invalid_ir msg)

let rewrite_candidates ?on_error ?trace ?budget cat g mvs =
  List.concat_map
    (fun mv ->
      Obs.Trace.with_span trace ~kind:"candidate" ~label:mv.mv_name
        ~result:(fun cands ->
          if cands = [] then Obs.Trace.Step
          else
            Obs.Trace.Accepted
              (Printf.sprintf "%d site(s)" (List.length cands)))
        (fun () ->
          guarded on_error mv.mv_name [] (fun () ->
              let sites =
                Navigator.find_matches ?trace ?budget cat ~query:g
                  ~ast:mv.mv_graph
              in
              List.map
                (fun { Navigator.site_box; site_result; site_proof } ->
                  Govern.Budget.tick_candidate budget;
                  let mv_cols =
                    B.output_cols (G.box mv.mv_graph (G.root mv.mv_graph))
                  in
                  let g' =
                    Obs.Trace.with_span trace ~kind:"compensate"
                      ~label:(Printf.sprintf "query box %d" site_box)
                      (fun () ->
                        apply ~query:g ~target:site_box ~result:site_result
                          ~mv_table:mv.mv_name ~mv_cols)
                  in
                  validate_candidate ?trace cat mv.mv_name g';
                  ( g',
                    {
                      used_mv = mv.mv_name;
                      target = site_box;
                      exact =
                        (match site_result with
                        | M.Exact _ -> true
                        | M.Comp _ -> false);
                      proved = site_proof;
                    } ))
                sites)))
    mvs

let best ~cat ?on_error ?trace ?budget g mvs =
  (* Iterative multi-AST routing (section 7): keep applying the cheapest
     strictly-improving rewrite. The same AST may serve several query
     blocks (e.g. two FROM subqueries); termination is guaranteed because
     every accepted step strictly lowers the estimated cost.

     Budget exhaustion is caught at round granularity: the routing state
     reached so far is already a correct (if possibly improvable) rewrite,
     so the best-so-far graph is returned — graceful degradation, never an
     error. The reason stays recorded on the budget for the planner. *)
  Obs.Metrics.time rw_route_ms (fun () ->
      let round g =
        let candidates = rewrite_candidates ?on_error ?trace ?budget cat g mvs in
        Obs.Metrics.add rw_candidates (List.length candidates);
        let current = Cost.graph_cost cat g in
        let better =
          List.filter_map
            (fun (g', step) ->
              guarded on_error step.used_mv None (fun () ->
                  let c = Cost.graph_cost cat g' in
                  if c < current then Some (c, g', step)
                  else begin
                    Obs.Trace.reject trace ~kind:"cost" ~label:step.used_mv
                      (Obs.Trace.Cost_not_better (c, current));
                    None
                  end))
            candidates
        in
        (current, List.sort (fun (a, _, _) (b, _, _) -> compare a b) better)
      in
      let rec loop g steps fuel =
        let finish () = if steps = [] then None else Some (g, List.rev steps) in
        if fuel = 0 then Some (g, List.rev steps)
        else
          match round g with
          | exception Govern.Budget.Budget_exhausted _ -> finish ()
          | _, [] -> finish ()
          | current, (c, g', step) :: _ ->
              Obs.Metrics.incr rw_steps;
              Obs.Trace.accept trace ~kind:"route" ~label:step.used_mv
                (Printf.sprintf "query box %d, cost %.0f -> %.0f" step.target
                   current c);
              loop g' (step :: steps) (fuel - 1)
      in
      loop g [] 16)
