(* The matching context: the two graphs, the catalog, and the memo table of
   box-pair match results. The navigator and the recursive match function
   (paper section 3) share this. *)

type t = {
  cat : Catalog.t;
  qg : Qgm.Graph.t;  (* query graph: subsumees *)
  ag : Qgm.Graph.t;  (* AST graph: subsumers *)
  memo : (int * int, Mtypes.result option) Hashtbl.t;
  trace : Obs.Trace.t option;  (* when set, spans and rejections recorded *)
  budget : Govern.Budget.t option;  (* when set, match calls are metered *)
  (* Static-proof ledger: per successful (subsumee, subsumer) pair, whether
     the rewrite region equality was certified by the prover.  A match
     pattern deposits its certificate in [pending_proof]; [match_boxes]
     moves it into [proofs] keyed like the memo table. *)
  proofs : (int * int, Prove.status) Hashtbl.t;
  mutable pending_proof : Prove.status option;
}

let create ?trace ?budget cat ~query ~ast =
  { cat; qg = query; ag = ast; memo = Hashtbl.create 64; trace; budget;
    proofs = Hashtbl.create 64; pending_proof = None }

(* Record the typed reason why the current candidate pair was rejected.
   Diagnostics only — never consulted by the algorithm. *)
let reject ctx reason = Obs.Trace.reject ctx.trace ~kind:"check" ~label:"" reason

(* A pairing of subsumee children with subsumer children (section 4's
   terminology): matched pairs, rejoin children (subsumee-only), and extra
   children (subsumer-only). *)
type assignment = {
  pairs : (Qgm.Box.quant * Qgm.Box.quant * Mtypes.result) list;
  rejoins : Qgm.Box.quant list;
  extras : Qgm.Box.quant list;
}
