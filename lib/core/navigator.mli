(** The navigator (paper section 3): drives the match function bottom-up
    over the query and AST graphs until the AST root is matched with one or
    more query boxes.

    The implementation realizes the bottom-up discipline through memoized
    recursion: judging a pair first judges all child pair combinations, so
    the set of visited pairs and their ordering coincide with the paper's
    worklist formulation. *)

type site = {
  site_box : Qgm.Box.box_id;       (** matched query (subsumee) box *)
  site_result : Mtypes.result;     (** compensation against the AST root *)
  site_proof : Prove.status;
      (** static certificate: [Proved] when the prover verified the rewrite
          region equality at match time, [Unknown why] otherwise *)
}

(** All query boxes that match the AST's root box. When [trace] is given,
    a [navigate] span with per-pair match spans and typed rejection reasons
    is recorded in it (diagnostics for EXPLAIN REWRITE and [\trace]).
    When [budget] is given, every match-function invocation is metered
    against it and may raise {!Govern.Budget.Budget_exhausted}. *)
val find_matches :
  ?trace:Obs.Trace.t -> ?budget:Govern.Budget.t -> Catalog.t ->
  query:Qgm.Graph.t -> ast:Qgm.Graph.t ->
  site list

(** Convenience: does any query box match the AST root? *)
val matches : Catalog.t -> query:Qgm.Graph.t -> ast:Qgm.Graph.t -> bool
