(** Query rewriting: materializing a match as a new QGM graph, and routing a
    query across the registered summary tables.

    The subsumee box is replaced in place: its body becomes the top of the
    compensation stack, whose leaf is a scan of the materialized summary
    table; rejoined children keep pointing at the original query subgraph.
    Parents (and the root/presentation) are untouched because the box keeps
    its identity and its output columns. *)

type mv = {
  mv_name : string;          (** table name under which the AST is stored *)
  mv_graph : Qgm.Graph.t;    (** the AST's defining query *)
  mv_version : int;          (** store epoch at definition/refresh; used to
                                 key quarantine observations to one
                                 incarnation of the table *)
}

type step = {
  used_mv : string;
  target : Qgm.Box.box_id;
  exact : bool;              (** empty compensation *)
  proved : Prove.status;     (** static certificate from the match *)
}

(** Combined certificate of an applied plan: [Proved] iff every step is;
    otherwise the first step's reason. *)
val steps_proof : step list -> Prove.status

(** [apply ~query ~target ~result ~mv_table ~mv_cols] builds the rewritten
    graph for one match. [mv_cols] are the stored table's columns (the AST
    root's outputs). *)
val apply :
  query:Qgm.Graph.t ->
  target:Qgm.Box.box_id ->
  result:Mtypes.result ->
  mv_table:string ->
  mv_cols:string list ->
  Qgm.Graph.t

(** [best ~cat query mvs] routes [query] through the available summary
    tables: among all matches of all ASTs, repeatedly applies the one with
    the lowest {!Cost.graph_cost} while it strictly improves on the current
    graph (the iterative multi-AST process of section 7; the same AST may
    answer several query blocks). Returns the rewritten graph and the
    applied steps; [None] when no AST matches or no rewrite is cheaper.

    With [on_error], any exception raised while judging one summary table
    (navigation, matching, compensation construction, translation, costing
    its candidates) is passed to [on_error mv_name exn] and that summary
    table simply contributes no candidates — the others are still tried
    and no exception escapes (except [Out_of_memory]/[Sys.Break]).
    Without it, exceptions propagate unchanged.

    With [trace], the whole routing attempt is recorded as a span tree
    (candidate -> navigate -> match -> compensation -> cost), every
    rejection carrying a typed {!Obs.Trace.reason}.

    With [budget], match invocations and candidates are metered; when the
    budget runs out mid-routing the best rewrite found so far is returned
    (or [None] if none was reached) — the exhaustion reason stays recorded
    on the budget ({!Govern.Budget.exhausted}) so the caller can mark the
    decision degraded. [Budget_exhausted] never escapes [best]. *)
val best :
  cat:Catalog.t ->
  ?on_error:(string -> exn -> unit) ->
  ?trace:Obs.Trace.t ->
  ?budget:Govern.Budget.t ->
  Qgm.Graph.t ->
  mv list ->
  (Qgm.Graph.t * step list) option
