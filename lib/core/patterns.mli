(** The match function (paper sections 3, 4 and 5).

    Decides whether a subsumee box (query graph) matches a subsumer box
    (AST graph) and, when it does, produces the compensation. Memoized per
    pair inside the {!Mctx.t}; judging a pair recursively judges all child
    pair combinations first, which realizes the navigator's bottom-up
    discipline.

    Pattern coverage: base-table leaves; SELECT/SELECT with exact (4.1.1),
    SELECT-only (4.2.3) and grouping (4.2.4) child compensation;
    GROUP-BY/GROUP-BY with exact (4.1.2), SELECT-only (4.2.1) and GROUP-BY
    (4.2.2, recursive) child compensation; simple and cube queries against
    cube ASTs (5.1, 5.2); and the footnote-2 DISTINCT/GROUP BY
    cross-matches. Deliberate rejections are listed in DESIGN.md. *)

val match_boxes :
  Mctx.t -> Qgm.Box.box_id -> Qgm.Box.box_id -> Mtypes.result option

(** Instrumentation: total {!match_boxes} invocations (recursive calls
    included) since start or the last reset. The plan-cache tests use this
    to assert that a warm cache performs zero matching work. *)
val match_count : unit -> int

val reset_match_count : unit -> unit
