(* Deterministic fault injection for the rewrite pipeline.

   Each injection point carries a one-shot countdown: [arm p ~after:n] makes
   the [n]th subsequent hit of [p] fire (raise {!Injected}, or — for
   [Corrupt], which is consumed with {!fire} rather than {!hit} — return
   true), after which the point disarms itself. Tests use this to prove the
   fallback/quarantine/verification invariants instead of hoping for them:
   the pipeline code calls [hit] unconditionally, so an armed fault strikes
   at an exact, reproducible call count. Disarmed hits cost one array read. *)

type point =
  | Navigate
  | Match
  | Compensate
  | Translate
  | Corrupt
  | Refresh
  | Delay
  | Accept
  | Wal_append
  | Wal_fsync
  | Checkpoint_write
  | Checkpoint_rename
  | Wire_partial_write
  | Wire_stall_read
  | Wire_disconnect
  | Wire_corrupt

exception Injected of point

let point_name = function
  | Navigate -> "navigate"
  | Match -> "match"
  | Compensate -> "compensate"
  | Translate -> "translate"
  | Corrupt -> "corrupt"
  | Refresh -> "refresh"
  | Delay -> "delay"
  | Accept -> "accept"
  | Wal_append -> "wal_append"
  | Wal_fsync -> "wal_fsync"
  | Checkpoint_write -> "checkpoint_write"
  | Checkpoint_rename -> "checkpoint_rename"
  | Wire_partial_write -> "wire_partial_write"
  | Wire_stall_read -> "wire_stall_read"
  | Wire_disconnect -> "wire_disconnect"
  | Wire_corrupt -> "wire_corrupt"

let all_points =
  [
    Navigate; Match; Compensate; Translate; Corrupt; Refresh; Delay; Accept;
    Wal_append; Wal_fsync; Checkpoint_write; Checkpoint_rename;
    Wire_partial_write; Wire_stall_read; Wire_disconnect; Wire_corrupt;
  ]

let idx = function
  | Navigate -> 0
  | Match -> 1
  | Compensate -> 2
  | Translate -> 3
  | Corrupt -> 4
  | Refresh -> 5
  | Delay -> 6
  | Accept -> 7
  | Wal_append -> 8
  | Wal_fsync -> 9
  | Checkpoint_write -> 10
  | Checkpoint_rename -> 11
  | Wire_partial_write -> 12
  | Wire_stall_read -> 13
  | Wire_disconnect -> 14
  | Wire_corrupt -> 15

let n_points = 16

(* remaining hits before the point fires; None = disarmed *)
let countdown : int option array = Array.make n_points None

let arm p ~after =
  if after <= 0 then invalid_arg "Fault.arm: after must be positive";
  countdown.(idx p) <- Some after

let disarm p = countdown.(idx p) <- None
let disarm_all () = Array.fill countdown 0 (Array.length countdown) None
let armed p = countdown.(idx p) <> None

let fire p =
  match countdown.(idx p) with
  | None -> false
  | Some 1 ->
      countdown.(idx p) <- None;
      true
  | Some n ->
      countdown.(idx p) <- Some (n - 1);
      false

let hit p = if fire p then raise (Injected p)

(* [Delay] does not raise: when it fires it stalls the caller, making
   wall-clock deadline paths deterministically reachable in tests. Unlike
   the other points it stays armed after firing (every subsequent hit of
   the site stalls too) so a single arming can push a whole planning pass
   past its deadline. *)

let delay_ms = ref 10.0

let set_delay_ms ms =
  if ms < 0. then invalid_arg "Fault.set_delay_ms: negative delay";
  delay_ms := ms

let maybe_delay () =
  match countdown.(idx Delay) with
  | None -> ()
  | Some 1 -> Unix.sleepf (!delay_ms /. 1000.)
  | Some n -> countdown.(idx Delay) <- Some (n - 1)

(* How long a fired [Wire_stall_read] stalls the serving loop before it
   reads the next request — long enough to trip a client-side response
   timeout when one is set, short enough that a 2 s liveness probe still
   answers after the one-shot stall clears. *)
let wire_stall_ms = ref 250.0

let set_wire_stall_ms ms =
  if ms < 0. then invalid_arg "Fault.set_wire_stall_ms: negative stall";
  wire_stall_ms := ms

(* ---------------- spec strings ---------------- *)

let point_of_name s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun p -> point_name p = s) all_points

let arm_spec spec =
  let arm_one item =
    let item = String.trim item in
    if item = "" then Ok ()
    else
      let name, after =
        match String.index_opt item ':' with
        | None -> (item, Some 1)
        | Some i ->
            ( String.sub item 0 i,
              int_of_string_opt
                (String.trim
                   (String.sub item (i + 1) (String.length item - i - 1))) )
      in
      match (point_of_name name, after) with
      | None, _ ->
          Error
            (Printf.sprintf
               "unknown injection point %S (expected one of: %s)" name
               (String.concat ", " (List.map point_name all_points)))
      | Some _, None ->
          Error (Printf.sprintf "bad count in %S (expected point:N, N >= 1)" item)
      | Some _, Some n when n <= 0 ->
          Error (Printf.sprintf "bad count in %S (expected point:N, N >= 1)" item)
      | Some p, Some n ->
          arm p ~after:n;
          Ok ()
  in
  List.fold_left
    (fun acc item -> match acc with Error _ -> acc | Ok () -> arm_one item)
    (Ok ())
    (String.split_on_char ',' spec)

let seed_of_env () =
  Option.bind (Sys.getenv_opt "ASTQL_FAULT_SEED") int_of_string_opt

(* ---------------- crash injection ---------------- *)

(* Crash points simulate a power-cut at an exact durability step: when an
   armed crash countdown reaches zero the process SIGKILLs itself — no
   handlers, no atexit, no flushing — exactly what kill -9 leaves behind.
   The torture harness arms these through ASTQL_CRASH and asserts that
   recovery replays every acknowledged write. Kept separate from the
   [countdown] array so exception-based tests ([arm]/[hit]) and
   crash-based runs ([arm_crash]) cannot interfere. *)

let crash_countdown : int option array = Array.make n_points None

let arm_crash p ~after =
  if after <= 0 then invalid_arg "Fault.arm_crash: after must be positive";
  crash_countdown.(idx p) <- Some after

let crash_armed p = crash_countdown.(idx p) <> None

let crash_fire p =
  match crash_countdown.(idx p) with
  | None -> false
  | Some 1 ->
      crash_countdown.(idx p) <- None;
      true
  | Some n ->
      crash_countdown.(idx p) <- Some (n - 1);
      false

let crash_now () =
  (* SIGKILL cannot be caught; the pause loop covers the delivery window *)
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  while true do
    Unix.sleepf 0.01
  done;
  assert false

let crash_hit p = if crash_fire p then crash_now ()

let arm_crash_spec spec =
  let arm_one item =
    let item = String.trim item in
    if item = "" then Ok ()
    else
      let name, after =
        match String.index_opt item ':' with
        | None -> (item, Some 1)
        | Some i ->
            ( String.sub item 0 i,
              int_of_string_opt
                (String.trim
                   (String.sub item (i + 1) (String.length item - i - 1))) )
      in
      match (point_of_name name, after) with
      | None, _ ->
          Error
            (Printf.sprintf
               "unknown crash point %S (expected one of: %s)" name
               (String.concat ", " (List.map point_name all_points)))
      | Some _, None ->
          Error (Printf.sprintf "bad count in %S (expected point:N, N >= 1)" item)
      | Some _, Some n when n <= 0 ->
          Error (Printf.sprintf "bad count in %S (expected point:N, N >= 1)" item)
      | Some p, Some n ->
          arm_crash p ~after:n;
          Ok ()
  in
  List.fold_left
    (fun acc item -> match acc with Error _ -> acc | Ok () -> arm_one item)
    (Ok ())
    (String.split_on_char ',' spec)

let arm_crash_env () =
  match Sys.getenv_opt "ASTQL_CRASH" with
  | None | Some "" -> Ok ()
  | Some spec -> arm_crash_spec spec

(* ---------------- result corruption ---------------- *)

(* A minimal, always-detectable perturbation: simulates a compensation that
   derives an aggregate column incorrectly. *)
let corrupt_value (v : Data.Value.t) : Data.Value.t =
  match v with
  | Data.Value.Int n -> Data.Value.Int (n + 1)
  | Data.Value.Float x -> Data.Value.Float (x +. 1.0)
  | Data.Value.Str s -> Data.Value.Str (s ^ "!")
  | Data.Value.Bool b -> Data.Value.Bool (not b)
  | Data.Value.Date d -> Data.Value.Date (d + 1)
  | Data.Value.Null -> Data.Value.Int 0
