(* Known-bad (query-fingerprint x summary-table x definition-version)
   triples.

   Keyed like the plan cache's negative entries by the canonical query
   fingerprint, but each quarantined summary table is stamped with the
   *store epoch at which that table was (re)defined or refreshed* — its
   definition version — rather than the global epoch at insertion. A
   lookup presents the current versions of the live candidates:

   - same version            -> still blocked (nothing about the table
                                changed; the failure observation stands);
   - different version       -> the table was refreshed, re-created or
                                rebuilt since the failure: the entry is
                                dropped and the candidate retried;
   - absent from the lookup  -> the table is stale or dropped right now;
                                the pair is retained but not reported.

   This fixes two defects of global-epoch stamping: unrelated DML no
   longer washes quarantine away (a bad compensation stays quarantined
   under write traffic), and DROP + re-CREATE of the same name can no
   longer resurrect a stale hit, because the re-created table carries a
   new definition version. Bounded by LRU eviction over fingerprints
   (same policy as Plancache.Cache). *)

type entry = {
  (* case-preserved summary-table name x definition version *)
  mutable q_mvs : (string * int) list;
  mutable q_last : int;
}

type t = {
  cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then
    invalid_arg "Quarantine.create: capacity must be positive";
  { cap = capacity; tbl = Hashtbl.create (min capacity 64); tick = 0 }

let length t = Hashtbl.length t.tbl

let entries t =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.q_mvs) t.tbl 0

let clear t = Hashtbl.reset t.tbl

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.q_last -> acc
        | _ -> Some (k, e.q_last))
      t.tbl None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let add t ~version ~fp ~mv =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.tbl fp with
  | Some e ->
      e.q_last <- t.tick;
      if List.mem (mv, version) e.q_mvs then false
      else begin
        (* a pair for the same table under an older version is superseded *)
        e.q_mvs <- (mv, version) :: List.remove_assoc mv e.q_mvs;
        true
      end
  | None ->
      if Hashtbl.length t.tbl >= t.cap then evict_lru t;
      Hashtbl.replace t.tbl fp { q_mvs = [ (mv, version) ]; q_last = t.tick };
      true

let blocked t ~versions ~fp =
  match Hashtbl.find_opt t.tbl fp with
  | None -> []
  | Some e ->
      t.tick <- t.tick + 1;
      e.q_last <- t.tick;
      let live, void =
        List.partition
          (fun (mv, v) ->
            match List.assoc_opt mv versions with
            | Some cur -> cur = v (* same definition: observation stands *)
            | None -> true (* table absent right now: keep, don't report *))
          e.q_mvs
      in
      if void <> [] then begin
        e.q_mvs <- live;
        if live = [] then Hashtbl.remove t.tbl fp
      end;
      List.filter_map
        (fun (mv, v) ->
          match List.assoc_opt mv versions with
          | Some cur when cur = v -> Some mv
          | _ -> None)
        live

let is_blocked t ~versions ~fp ~mv = List.mem mv (blocked t ~versions ~fp)
