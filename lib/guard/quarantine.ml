(* Known-bad (query-fingerprint x summary-table) pairs.

   Keyed like the plan cache's negative entries: the canonical query
   fingerprint, stamped with the store epoch at insertion. A lookup under
   any other epoch drops the entry — REFRESH/define/drop/DML all bump the
   epoch, and any of them can fix the condition that made the candidate
   fail, so quarantine never outlives the store state it was observed
   under. Bounded by LRU eviction (same policy as Plancache.Cache). *)

type entry = {
  q_epoch : int;
  mutable q_mvs : string list;  (* case-preserved summary-table names *)
  mutable q_last : int;
}

type t = {
  cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then
    invalid_arg "Quarantine.create: capacity must be positive";
  { cap = capacity; tbl = Hashtbl.create (min capacity 64); tick = 0 }

let length t = Hashtbl.length t.tbl

let entries t =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.q_mvs) t.tbl 0

let clear t = Hashtbl.reset t.tbl

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.q_last -> acc
        | _ -> Some (k, e.q_last))
      t.tbl None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let add t ~epoch ~fp ~mv =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.tbl fp with
  | Some e when e.q_epoch = epoch ->
      e.q_last <- t.tick;
      if List.mem mv e.q_mvs then false
      else begin
        e.q_mvs <- mv :: e.q_mvs;
        true
      end
  | stale ->
      if stale = None && Hashtbl.length t.tbl >= t.cap then evict_lru t;
      Hashtbl.replace t.tbl fp
        { q_epoch = epoch; q_mvs = [ mv ]; q_last = t.tick };
      true

let blocked t ~epoch ~fp =
  match Hashtbl.find_opt t.tbl fp with
  | None -> []
  | Some e when e.q_epoch <> epoch ->
      (* the store moved on; the failure observation is void *)
      Hashtbl.remove t.tbl fp;
      []
  | Some e ->
      t.tick <- t.tick + 1;
      e.q_last <- t.tick;
      e.q_mvs

let is_blocked t ~epoch ~fp ~mv = List.mem mv (blocked t ~epoch ~fp)
