(** Typed taxonomy for failures contained by the rewrite-pipeline sandbox.

    A classified error records {e where} the exception was caught
    ({!stage}), {e what} it was ({!kind}) and, when known, which summary
    table's candidacy triggered it — enough for EXPLAIN annotations and
    quarantine keying without re-raising anything. *)

type stage =
  | Navigate     (** navigator driving the match *)
  | Match        (** the match function proper *)
  | Compensate   (** compensation construction ({!Astmatch.Rewrite.apply}) *)
  | Translate    (** expression translation *)
  | Validate     (** static IR validation (lib/lint) *)
  | Plan         (** planning outside any one candidate (fingerprint, cost, cache) *)
  | Execute      (** executing the rewritten plan *)
  | Verify       (** runtime result verification *)
  | Refresh      (** summary-table maintenance (auto or manual refresh) *)
  | Accept       (** server connection accept/handler path *)
  | Durability   (** WAL append / fsync / checkpoint path (lib/durable) *)

type kind =
  | Injected              (** {!Fault.Injected}: deterministic test fault *)
  | Assertion             (** [Assert_failure] *)
  | Invalid of string     (** [Invalid_argument] *)
  | Div_zero              (** [Division_by_zero] (e.g. constant folding) *)
  | Failed of string      (** [Failure] *)
  | Resource of string    (** [Stack_overflow] / [Out_of_memory] *)
  | Ill_formed of string  (** {!Invalid_ir}: static IR validation failed *)
  | Unexpected of string  (** anything else, rendered via [Printexc] *)

type t = {
  err_stage : stage;
  err_kind : kind;
  err_mv : string option;  (** summary table being considered, when known *)
}

(** Raised (never returned) by {!Sandbox.protect} for asynchronous /
    unrecoverable conditions ([Stack_overflow], [Out_of_memory]): the
    classified context rides along so outer layers can report where the
    resource ran out, but no fallback path treats it as containable. *)
exception Fatal of t

(** Raised by the static IR validator (Lint.Validate) on a graph that
    breaks a QGM well-formedness invariant; {!classify} maps it to stage
    {!Validate} / kind {!Ill_formed} wherever it was caught. *)
exception Invalid_ir of string

(** [classify ~stage ?mv exn] — the stage is overridden by the injection
    point when [exn] is {!Fault.Injected} (the fault knows exactly where it
    struck). *)
val classify : stage:stage -> ?mv:string -> exn -> t

val stage_name : stage -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
