(** Typed taxonomy for failures contained by the rewrite-pipeline sandbox.

    A classified error records {e where} the exception was caught
    ({!stage}), {e what} it was ({!kind}) and, when known, which summary
    table's candidacy triggered it — enough for EXPLAIN annotations and
    quarantine keying without re-raising anything. *)

type stage =
  | Navigate     (** navigator driving the match *)
  | Match        (** the match function proper *)
  | Compensate   (** compensation construction ({!Astmatch.Rewrite.apply}) *)
  | Translate    (** expression translation *)
  | Plan         (** planning outside any one candidate (fingerprint, cost, cache) *)
  | Execute      (** executing the rewritten plan *)
  | Verify       (** runtime result verification *)

type kind =
  | Injected              (** {!Fault.Injected}: deterministic test fault *)
  | Assertion             (** [Assert_failure] *)
  | Invalid of string     (** [Invalid_argument] *)
  | Div_zero              (** [Division_by_zero] (e.g. constant folding) *)
  | Failed of string      (** [Failure] *)
  | Unexpected of string  (** anything else, rendered via [Printexc] *)

type t = {
  err_stage : stage;
  err_kind : kind;
  err_mv : string option;  (** summary table being considered, when known *)
}

(** [classify ~stage ?mv exn] — the stage is overridden by the injection
    point when [exn] is {!Fault.Injected} (the fault knows exactly where it
    struck). *)
val classify : stage:stage -> ?mv:string -> exn -> t

val stage_name : stage -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
