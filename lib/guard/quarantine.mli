(** Known-bad (query-fingerprint x summary-table x definition-version)
    triples.

    When a summary table's candidacy for a query failed (rewrite
    exception) or mis-verified (runtime result mismatch), the pair is
    quarantined: repeat plannings of the same query skip that candidate
    while still trying the others. Each pair is stamped with the table's
    {e definition version} — the store epoch at which it was last defined
    or refreshed — and expires exactly when that version moves: REFRESH,
    auto-refresh or DROP + re-CREATE void the observation, while
    unrelated DML (which bumps only the global epoch) leaves it standing.
    In particular, re-creating a same-named table can never resurrect a
    quarantine hit recorded against its previous incarnation. The table
    is bounded by LRU eviction over fingerprints. *)

type t

(** [create ?capacity ()] — [capacity] bounds the number of quarantined
    fingerprints (default 256). *)
val create : ?capacity:int -> unit -> t

(** [add t ~version ~fp ~mv] quarantines [mv], at definition version
    [version], for the query fingerprinted [fp]. Returns [true] when the
    triple was not already present; a pair for the same table under an
    older version is superseded. *)
val add : t -> version:int -> fp:string -> mv:string -> bool

(** [blocked t ~versions ~fp] — the summary tables still quarantined for
    this query, given the current definition versions of the live
    candidates ([versions]). Pairs whose table moved to a new version are
    dropped; pairs whose table is absent from [versions] (stale or
    dropped) are retained but not reported. *)
val blocked : t -> versions:(string * int) list -> fp:string -> string list

val is_blocked :
  t -> versions:(string * int) list -> fp:string -> mv:string -> bool

(** Quarantined fingerprints currently held. *)
val length : t -> int

(** Quarantined (fingerprint x summary-table) pairs currently held. *)
val entries : t -> int

val clear : t -> unit
