(** Known-bad (query-fingerprint x summary-table) pairs.

    When a summary table's candidacy for a query failed (rewrite exception)
    or mis-verified (runtime result mismatch), the pair is quarantined:
    repeat plannings of the same query skip that candidate while still
    trying the others. Entries are stamped with the store epoch at
    insertion and expire the moment the epoch moves (REFRESH, define/drop,
    DML, DDL — any of which can fix the underlying condition), and the
    table is bounded by LRU eviction, so quarantine can suppress at most a
    bounded amount of rewriting and never outlives the store state the
    failure was observed under. *)

type t

(** [create ?capacity ()] — [capacity] bounds the number of quarantined
    fingerprints (default 256). *)
val create : ?capacity:int -> unit -> t

(** [add t ~epoch ~fp ~mv] quarantines [mv] for the query fingerprinted
    [fp]. Returns [true] when the pair was not already present. *)
val add : t -> epoch:int -> fp:string -> mv:string -> bool

(** Summary tables quarantined for this query under this epoch (stale
    entries are dropped on lookup). *)
val blocked : t -> epoch:int -> fp:string -> string list

val is_blocked : t -> epoch:int -> fp:string -> mv:string -> bool

(** Quarantined fingerprints currently held. *)
val length : t -> int

(** Quarantined (fingerprint x summary-table) pairs currently held. *)
val entries : t -> int

val clear : t -> unit
