(** The containment boundary around the rewrite pipeline.

    [protect ~stage f] runs [f ()] and converts {e any} ordinary exception
    — [Assert_failure], [Invalid_argument], [Division_by_zero], injected
    faults — into a classified {!Error.t}.

    Three families re-raise instead: [Sys.Break] (user interrupt) and
    {!Govern.Budget.Budget_exhausted} (cooperative degradation signal,
    caught by the budget's owner) pass through unchanged; [Stack_overflow]
    and [Out_of_memory] re-raise as {!Error.Fatal} carrying the classified
    stage/mv context — typed, but never treated as a containable candidate
    failure. *)
val protect :
  stage:Error.stage -> ?mv:string -> (unit -> 'a) -> ('a, Error.t) result
