(** The containment boundary around the rewrite pipeline.

    [protect ~stage f] runs [f ()] and converts {e any} exception —
    [Assert_failure], [Invalid_argument], [Division_by_zero],
    [Stack_overflow], injected faults — into a classified {!Error.t}.
    Only [Out_of_memory] and [Sys.Break] re-raise: those are asynchronous
    conditions no fallback can answer. *)
val protect :
  stage:Error.stage -> ?mv:string -> (unit -> 'a) -> ('a, Error.t) result
