(* The containment boundary: run a pipeline fragment, converting any
   exception — including Assert_failure, Invalid_argument and injected
   faults — into a classified Error.t the caller can count, quarantine on,
   and fall back from.

   Three families pass through instead of being contained:
   - Sys.Break: user interrupt, nobody's to answer;
   - Govern.Budget.Budget_exhausted: a cooperative signal, not a failure —
     the budget's owner (Rewrite.best, Session.run_query, the maintenance
     drain) catches it at its own degradation point;
   - Stack_overflow / Out_of_memory: re-raised *typed*, as
     Error.Fatal with the stage/mv context, so outer layers can say where
     the resource ran out without any fallback path mistaking it for a
     containable candidate failure. An already-typed Fatal from a nested
     protect is re-raised unchanged. *)

let protect ~stage ?mv f =
  match f () with
  | v -> Ok v
  | exception ((Sys.Break | Error.Fatal _ | Govern.Budget.Budget_exhausted _)
               as e) ->
      raise e
  | exception ((Out_of_memory | Stack_overflow) as e) ->
      raise (Error.Fatal (Error.classify ~stage ?mv e))
  | exception e -> Error (Error.classify ~stage ?mv e)
