(* The containment boundary: run a pipeline fragment, converting any
   exception — including Assert_failure, Invalid_argument, Stack_overflow
   and injected faults — into a classified Error.t the caller can count,
   quarantine on, and fall back from. Only genuinely asynchronous /
   unrecoverable conditions pass through. *)

let protect ~stage ?mv f =
  match f () with
  | v -> Ok v
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception e -> Error (Error.classify ~stage ?mv e)
