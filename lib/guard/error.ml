(* Typed taxonomy for failures contained by the rewrite-pipeline sandbox.

   The stage says where in the planning/execution path the exception was
   caught (overridden by the injection point for injected faults, which
   know exactly where they struck); the kind preserves what the exception
   was, so EXPLAIN and \health output stays diagnosable without ever
   letting the raw exception escape to the user. *)

type stage =
  | Navigate
  | Match
  | Compensate
  | Translate
  | Validate
  | Plan
  | Execute
  | Verify
  | Refresh
  | Accept
  | Durability

type kind =
  | Injected                 (* Fault.Injected: deterministic test fault *)
  | Assertion                (* Assert_failure *)
  | Invalid of string        (* Invalid_argument *)
  | Div_zero                 (* Division_by_zero (e.g. constant folding) *)
  | Failed of string         (* Failure / failwith *)
  | Resource of string       (* Stack_overflow / Out_of_memory *)
  | Ill_formed of string     (* Invalid_ir: static IR validation failed *)
  | Unexpected of string     (* anything else, via Printexc *)

type t = { err_stage : stage; err_kind : kind; err_mv : string option }

exception Fatal of t

(* Raised by the static IR validator (Lint.Validate) when a graph breaks a
   QGM well-formedness invariant. Classified as stage Validate regardless
   of where it was caught, so EXPLAIN distinguishes a statically rejected
   candidate from a dynamically contained one. *)
exception Invalid_ir of string

let stage_name = function
  | Navigate -> "navigate"
  | Match -> "match"
  | Compensate -> "compensate"
  | Translate -> "translate"
  | Validate -> "validate"
  | Plan -> "plan"
  | Execute -> "execute"
  | Verify -> "verify"
  | Refresh -> "refresh"
  | Accept -> "accept"
  | Durability -> "durability"

let stage_of_point = function
  | Fault.Navigate -> Navigate
  | Fault.Match -> Match
  | Fault.Compensate -> Compensate
  | Fault.Translate -> Translate
  | Fault.Corrupt -> Verify
  | Fault.Refresh -> Refresh
  | Fault.Delay -> Match
  | Fault.Accept -> Accept
  (* wire faults strike while a connection is being served; same
     containment domain as the accept/handler path *)
  | Fault.Wire_partial_write | Fault.Wire_stall_read | Fault.Wire_disconnect
  | Fault.Wire_corrupt ->
      Accept
  | Fault.Wal_append | Fault.Wal_fsync | Fault.Checkpoint_write
  | Fault.Checkpoint_rename ->
      Durability

let kind_name = function
  | Injected -> "injected fault"
  | Assertion -> "assertion failure"
  | Invalid m -> Printf.sprintf "invalid argument (%s)" m
  | Div_zero -> "division by zero"
  | Failed m -> Printf.sprintf "failure (%s)" m
  | Resource m -> Printf.sprintf "resource exhaustion (%s)" m
  | Ill_formed m -> Printf.sprintf "ill-formed IR (%s)" m
  | Unexpected m -> Printf.sprintf "unexpected exception (%s)" m

let classify ~stage ?mv exn =
  let stage, kind =
    match exn with
    | Fault.Injected p -> (stage_of_point p, Injected)
    | Invalid_ir m -> (Validate, Ill_formed m)
    | Assert_failure _ -> (stage, Assertion)
    | Invalid_argument m -> (stage, Invalid m)
    | Division_by_zero -> (stage, Div_zero)
    | Failure m -> (stage, Failed m)
    | Stack_overflow -> (stage, Resource "stack overflow")
    | Out_of_memory -> (stage, Resource "out of memory")
    | e -> (stage, Unexpected (Printexc.to_string e))
  in
  { err_stage = stage; err_kind = kind; err_mv = mv }

let to_string e =
  Printf.sprintf "%s error%s: %s" (stage_name e.err_stage)
    (match e.err_mv with None -> "" | Some mv -> " on " ^ mv)
    (kind_name e.err_kind)

let pp fmt e = Format.pp_print_string fmt (to_string e)

let () =
  Printexc.register_printer (function
    | Fatal e -> Some (Printf.sprintf "Guard.Error.Fatal(%s)" (to_string e))
    | _ -> None)
