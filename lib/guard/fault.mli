(** Deterministic, seed-free fault injection for the rewrite pipeline.

    The pipeline calls {!hit} at fixed places (navigator entry, each
    match-function invocation, compensation construction, expression
    translation); tests {!arm} a point so that its [N]th subsequent hit
    raises {!Injected} — once — proving that the fallback, quarantine and
    verification invariants hold under failure at an exact, reproducible
    position. [Corrupt] is not raised but polled with {!fire} by the
    session's verification path to perturb a rewritten result. Disarmed
    hits cost one array read, so the hooks stay in production builds. *)

type point =
  | Navigate     (** {!Astmatch.Navigator.find_matches} entry *)
  | Match        (** each {!Astmatch.Patterns.match_boxes} call *)
  | Compensate   (** {!Astmatch.Rewrite.apply} (compensation construction) *)
  | Translate    (** {!Astmatch.Translate.through_comp} *)
  | Corrupt      (** result corruption under verification (via {!fire}) *)
  | Refresh      (** summary-table refresh (maintenance path) *)
  | Delay        (** stall at the match site (via {!maybe_delay}) *)
  | Accept       (** server connection accept/handler path *)
  | Wal_append   (** WAL record write (crash leaves a torn tail) *)
  | Wal_fsync    (** WAL fsync (crash loses the un-synced suffix) *)
  | Checkpoint_write   (** checkpoint temp-file write (crash mid-write) *)
  | Checkpoint_rename  (** checkpoint atomic rename (crash just before) *)
  | Wire_partial_write (** reply cut mid-line, then forced disconnect *)
  | Wire_stall_read    (** serving loop stalls before the next read *)
  | Wire_disconnect    (** connection dropped after execution, before reply *)
  | Wire_corrupt       (** reply bytes corrupted in flight (line intact) *)

exception Injected of point

val point_name : point -> string
val all_points : point list

(** [arm p ~after:n] — the [n]th subsequent hit of [p] fires, then the
    point disarms itself (one-shot). Raises [Invalid_argument] if
    [n <= 0]. *)
val arm : point -> after:int -> unit

val disarm : point -> unit
val disarm_all : unit -> unit
val armed : point -> bool

(** Consume one hit; [true] exactly when the armed countdown reaches zero. *)
val fire : point -> bool

(** [fire], raising {!Injected} when it fires. *)
val hit : point -> unit

(** Parse and arm a spec like ["match:3,compensate"] (missing count = 1).
    Point names: navigate, match, compensate, translate, corrupt, refresh,
    delay, accept, and the wire points (wire_partial_write,
    wire_stall_read, wire_disconnect, wire_corrupt). *)
val arm_spec : string -> (unit, string) result

(** How long a fired [Delay] point stalls (default 10 ms). *)
val set_delay_ms : float -> unit

(** The [Delay] hook: from its [N]th call on ([arm Delay ~after:N]), every
    call sleeps for the configured delay — [Delay] does not raise and,
    unlike the one-shot points, stays armed once reached, so deadline
    expiry is deterministically reachable however many match calls a plan
    needs. Disarmed calls cost one array read. *)
val maybe_delay : unit -> unit

(** How long a fired [Wire_stall_read] stalls the serving loop (default
    250 ms). The serving loop polls it with {!fire} — one-shot, like the
    other wire points. *)
val wire_stall_ms : float ref

val set_wire_stall_ms : float -> unit

(** [ASTQL_FAULT_SEED] from the environment, when set and numeric (used by
    the randomized fault-injection tests and the CI matrix job). *)
val seed_of_env : unit -> int option

(** {1 Crash injection}

    Crash points simulate [kill -9] at an exact durability step: when an
    armed crash countdown fires, the process SIGKILLs itself — no handlers
    run, nothing is flushed. The countdowns are independent of the
    exception-raising [arm]/[hit] machinery, so in-process tests and the
    crash-torture harness never interfere. The durability layer places
    [crash_fire]/[crash_hit] at WAL append, WAL fsync, checkpoint write and
    checkpoint rename. *)

(** Arm a crash at the [after]th subsequent crash-hit of [p] (one-shot). *)
val arm_crash : point -> after:int -> unit

val crash_armed : point -> bool

(** Consume one crash-hit; [true] exactly when the countdown reaches zero
    (the caller may first make the on-disk state deliberately torn, then
    call {!crash_now}). *)
val crash_fire : point -> bool

(** SIGKILL the current process (never returns). *)
val crash_now : unit -> 'a

(** [crash_fire], killing the process when it fires. *)
val crash_hit : point -> unit

(** Parse and arm a crash spec like ["wal_append:3,checkpoint_rename"]
    (missing count = 1). *)
val arm_crash_spec : string -> (unit, string) result

(** Arm from the [ASTQL_CRASH] environment variable, when set. *)
val arm_crash_env : unit -> (unit, string) result

(** A minimal always-detectable perturbation of one value (simulates a
    compensation deriving an aggregate column incorrectly). *)
val corrupt_value : Data.Value.t -> Data.Value.t
