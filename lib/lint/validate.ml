(* LLVM-verifier-style well-formedness checker for QGM graphs.

   The rewrite pipeline's correctness argument (paper sections 4.1-4.2)
   assumes the compensation constructor preserves a set of structural
   invariants: the graph stays a rooted DAG, every quantifier points at a
   live box, every QNC resolves to an output column of the quantifier's
   box, GROUP BY boxes emit only grouping keys and aggregates, and so on.
   This module checks those invariants *statically*, so a miscompiled
   rewrite is rejected at plan time instead of (or in addition to) being
   caught dynamically by the verify oracle after execution.

   Each invariant has a stable V-code used by tests, traces and docs:

     V101 root box missing from the graph
     V102 cycle among boxes (the graph must be a DAG)
     V103 quantifier bound to a dead box (dangling child reference)
     V104 expression references a quantifier the box does not declare
     V105 QNC names a column its quantifier's box does not produce
          (for compensations: translated expressions must reference only
          subsumer outputs -- a failure here is exactly that violation)
     V106 duplicate output column names on one box
     V107 aggregate expression inside a SELECT box
     V108 grouping key / aggregate argument not produced by the group child
     V109 aggregate arity: COUNT star with an argument, or any other
          aggregate without one
     V110 UNION branch arity differs from the declared column list
     V111 scalar quantifier in a GROUP BY / UNION box (dedup wiring:
          only SELECT boxes may own scalar-subquery quantifiers)
     V112 COUNT star carrying a DISTINCT bit (dedup-bit incoherence)
     V113 grouping sets not in canonical form (empty list, a singleton
          that should be Simple, or duplicate sets)
     V114 presentation names a column the root does not output, or a
          negative LIMIT
     V115 a predicate whose type is definitely non-boolean
     V116 root box produces no output columns
     V117 SELECT box with no quantifiers (nothing to range over)
     V118 statically-unsatisfiable predicate conjunction (deep mode only:
          the static prover certified the SELECT box can never produce a
          row — e.g. [x > 10 AND x < 5] — almost certainly a typo in the
          definition)

   [check ~deep:true] additionally runs the V118 prover pass (used by
   [astql lint]; the plan-time candidate validation stays shallow — an
   unsatisfiable predicate is legal IR, just useless).

   [check] walks only the boxes reachable from the root: the rewriter
   legitimately leaves disconnected subtrees behind when a compensation
   takes over a box id, and those orphans never execute. *)

module B = Qgm.Box
module E = Qgm.Expr
module G = Qgm.Graph
module V = Data.Value

type violation = { v_code : string; v_box : B.box_id option; v_msg : string }

let m_runs = Obs.Metrics.counter "lint.validate.runs"
let m_violations = Obs.Metrics.counter "lint.validate.violations"

let render v =
  match v.v_box with
  | Some id -> Printf.sprintf "%s box %d: %s" v.v_code id v.v_msg
  | None -> Printf.sprintf "%s: %s" v.v_code v.v_msg

(* One-line digest for trace reasons and contained errors. *)
let summary = function
  | [] -> "ok"
  | [ v ] -> render v
  | v :: rest ->
      Printf.sprintf "%s (+%d more)" (render v) (List.length rest)

let norm = String.lowercase_ascii

let check ?cat ?(deep = false) g =
  Obs.Metrics.incr m_runs;
  let problems = ref [] in
  let push ?box code fmt =
    Format.kasprintf
      (fun msg -> problems := { v_code = code; v_box = box; v_msg = msg } :: !problems)
      fmt
  in
  let root_id = G.root g in
  (match G.box_opt g root_id with
  | None -> push "V101" "root box %d is not in the graph" root_id
  | Some root_box ->
      (* V102/V103: DFS from the root with colors. *)
      let color = Hashtbl.create 16 in
      let rec dfs id =
        match Hashtbl.find_opt color id with
        | Some `Done -> ()
        | Some `Active -> push ~box:id "V102" "cycle through this box"
        | None -> (
            Hashtbl.replace color id `Active;
            (match G.box_opt g id with
            | None -> ()
            | Some b ->
                List.iter
                  (fun q ->
                    match G.box_opt g q.B.q_box with
                    | None ->
                        push ~box:id "V103"
                          "quantifier q%d is bound to dead box %d" q.B.q_id
                          q.B.q_box
                    | Some _ -> dfs q.B.q_box)
                  (B.quants_of b));
            Hashtbl.replace color id `Done)
      in
      dfs root_id;
      (* V116: the root must produce something. *)
      if B.output_cols root_box = [] then
        push ~box:root_id "V116" "root box produces no output columns";
      (* V114: presentation refers to root outputs only. *)
      let pres = G.presentation g in
      let root_cols = List.map norm (B.output_cols root_box) in
      List.iter
        (fun (c, _) ->
          if not (List.mem (norm c) root_cols) then
            push ~box:root_id "V114"
              "ORDER BY column %s is not an output of the root" c)
        pres.G.order_by;
      (match pres.G.limit with
      | Some n when n < 0 -> push ~box:root_id "V114" "negative LIMIT %d" n
      | _ -> ());
      (* Per-box structural checks over the reachable subgraph. *)
      let check_unique id cols =
        let sorted = List.sort compare (List.map norm cols) in
        let rec dup = function
          | a :: b :: _ when a = b -> Some a
          | _ :: rest -> dup rest
          | [] -> None
        in
        match dup sorted with
        | Some c -> push ~box:id "V106" "duplicate output column %s" c
        | None -> ()
      in
      let check_expr id quants ~where e =
        let find_quant qid =
          List.find_opt (fun q -> q.B.q_id = qid) quants
        in
        List.iter
          (fun { B.quant; col } ->
            match find_quant quant with
            | None ->
                push ~box:id "V104"
                  "%s references quantifier q%d which this box does not \
                   declare"
                  where quant
            | Some q -> (
                match G.box_opt g q.B.q_box with
                | None -> () (* already a V103 *)
                | Some child ->
                    let cols = List.map norm (B.output_cols child) in
                    if not (List.mem (norm col) cols) then
                      push ~box:id "V105"
                        "%s references q%d.%s but box %d produces no column \
                         %s"
                        where quant col q.B.q_box col))
          (E.cols e)
      in
      let check_pred_type id quants e =
        match cat with
        | None -> ()
        | Some cat -> (
            (* Qgm.Typing is lenient (unknowns come back Tstr), so only a
               definitely non-boolean type is a violation. Typing chases
               quantifiers into child boxes, so on a graph with dangling
               quantifiers (already a V103) it can raise — skip then. *)
            match
              try Some (Qgm.Typing.expr_type cat g quants e)
              with Invalid_argument _ -> None
            with
            | Some (V.Tint | V.Tfloat | V.Tdate) ->
                push ~box:id "V115" "predicate %s does not type as boolean"
                  (E.to_string
                     (fun { B.quant; col } -> Printf.sprintf "q%d.%s" quant col)
                     e)
            | Some (V.Tbool | V.Tstr) | None -> ())
      in
      List.iter
        (fun id ->
          let b = G.box g id in
          match b.B.body with
          | B.Base { bt_cols; _ } -> check_unique id bt_cols
          | B.Select s ->
              check_unique id (List.map fst s.B.sel_outs);
              if s.B.sel_quants = [] then
                push ~box:id "V117" "SELECT box has no quantifiers";
              List.iter
                (fun (n, e) ->
                  check_expr id s.B.sel_quants ~where:("output " ^ n) e;
                  if E.contains_agg e then
                    push ~box:id "V107"
                      "aggregate in SELECT box expression for output %s" n)
                s.B.sel_outs;
              List.iter
                (fun p ->
                  check_expr id s.B.sel_quants ~where:"predicate" p;
                  if E.contains_agg p then
                    push ~box:id "V107" "aggregate in SELECT box predicate";
                  check_pred_type id s.B.sel_quants p)
                s.B.sel_preds;
              if deep && Prove.Level.rewrite_on () && s.B.sel_preds <> []
              then begin
                let col_ty { B.quant; col } =
                  match cat with
                  | None -> None
                  | Some cat -> (
                      match
                        List.find_opt
                          (fun q -> q.B.q_id = quant)
                          s.B.sel_quants
                      with
                      | Some q -> (
                          try Some (Qgm.Typing.col_type cat g q.B.q_box col)
                          with Invalid_argument _ -> None)
                      | None -> None)
                in
                match
                  Prove.unsat ~ty:(Prove.key_ty ~col:col_ty) s.B.sel_preds
                with
                | Prove.Proved ->
                    push ~box:id "V118"
                      "predicate conjunction is statically unsatisfiable \
                       (this box can never produce a row)"
                | Prove.Unknown _ -> ()
              end
          | B.Union u ->
              check_unique id u.B.un_cols;
              List.iter
                (fun q ->
                  (if q.B.q_kind <> B.Foreach then
                     push ~box:id "V111"
                       "UNION consumes branch %d through a scalar quantifier"
                       q.B.q_box);
                  match G.box_opt g q.B.q_box with
                  | None -> ()
                  | Some child ->
                      let n = List.length (B.output_cols child) in
                      if n <> List.length u.B.un_cols then
                        push ~box:id "V110"
                          "UNION branch %d has arity %d, expected %d"
                          q.B.q_box n
                          (List.length u.B.un_cols))
                u.B.un_quants
          | B.Group grp -> (
              check_unique id (B.output_cols b);
              if grp.B.grp_quant.B.q_kind <> B.Foreach then
                push ~box:id "V111"
                  "GROUP BY consumes its child through a scalar quantifier";
              (match grp.B.grp_grouping with
              | B.Simple _ -> ()
              | B.Gsets [] ->
                  push ~box:id "V113" "empty grouping-set list"
              | B.Gsets [ _ ] ->
                  push ~box:id "V113"
                    "singleton grouping-set list (canonical form is Simple)"
              | B.Gsets sets ->
                  let keys =
                    List.map (fun s -> List.sort compare (List.map norm s)) sets
                  in
                  if List.length (List.sort_uniq compare keys)
                     <> List.length keys
                  then push ~box:id "V113" "duplicate grouping sets");
              match G.box_opt g grp.B.grp_quant.B.q_box with
              | None -> () (* already a V103 *)
              | Some child ->
                  let child_cols = List.map norm (B.output_cols child) in
                  let check_col code what c =
                    if not (List.mem (norm c) child_cols) then
                      push ~box:id code "%s column %s not produced by child"
                        what c
                  in
                  List.iter
                    (check_col "V108" "grouping")
                    (B.grouping_union grp.B.grp_grouping);
                  List.iter
                    (fun (n, { B.agg; arg }) ->
                      (match arg with
                      | Some c -> check_col "V108" ("aggregate " ^ n) c
                      | None ->
                          if agg.E.fn <> E.Count_star then
                            push ~box:id "V109"
                              "aggregate %s has no argument" n);
                      match (agg.E.fn, arg) with
                      | E.Count_star, Some _ ->
                          push ~box:id "V109" "COUNT star with an argument (%s)"
                            n
                      | E.Count_star, None ->
                          if agg.E.distinct then
                            push ~box:id "V112"
                              "COUNT star carries a DISTINCT bit (%s)" n
                      | _ -> ())
                    grp.B.grp_aggs))
        (G.reachable g root_id));
  let vs = List.rev !problems in
  Obs.Metrics.add m_violations (List.length vs);
  vs

let ok ?cat g = check ?cat g = []

(* Raise the guard-classifiable rejection the planner's containment
   machinery understands (stage Validate, kind Ill_formed). *)
let check_exn ?cat ~what g =
  match check ?cat g with
  | [] -> ()
  | vs ->
      raise (Guard.Error.Invalid_ir (Printf.sprintf "%s: %s" what (summary vs)))
