(* CREATE-SUMMARY-TABLE-time linter.

   The rewrite engine can only use a summary table if its definition keeps
   enough information around for the compensation rules of paper sections
   4.2 and 5.1: re-grouping needs COUNT star (rules (b)/(d)), AVG can only
   be re-derived alongside a COUNT (rule (e)), DISTINCT aggregates cannot
   be re-aggregated at all, and grouping-sets summaries distinguish their
   cuboids by NULLness of the rolled-up keys. This linter warns, at
   definition time, about summaries that will silently fail to match
   later. Codes:

     L101 avg-without-count          AVG stored without COUNT star or a
                                     COUNT over the same argument
     L102 distinct-agg               a DISTINCT aggregate blocks every
                                     re-aggregation rule
     L103 missing-count-star         grouped summary without COUNT star
     L104 grouping-sets-nullable-key grouping sets over a nullable key
                                     with no way to tell a rolled-up row
                                     from a genuine NULL group (sect. 5.1)
     L105 overlapping-summary        same base-table footprint and
                                     grouping as an existing summary
     L106 not-incrementally-maintainable  (caller-supplied verdict)

   Diagnostics are advisory: CREATE SUMMARY TABLE still succeeds. *)

module B = Qgm.Box
module E = Qgm.Expr
module G = Qgm.Graph

type diag = { d_code : string; d_slug : string; d_msg : string }

let m_diags = Obs.Metrics.counter "lint.advisor.diags"

let render d = Printf.sprintf "%s %s: %s" d.d_code d.d_slug d.d_msg
let norm = String.lowercase_ascii

(* Base-table footprint, the same notion Plancache.Candidates indexes on:
   the sorted set of base tables reachable from the root. *)
let footprint g =
  List.sort_uniq compare
    (List.filter_map
       (fun id ->
         match (G.box g id).B.body with
         | B.Base { bt_table; _ } -> Some (norm bt_table)
         | _ -> None)
       (G.base_leaves g (G.root g)))

(* The topmost GROUP BY box reachable from the root, if any. *)
let top_group g =
  let rec find id =
    let b = G.box g id in
    match b.B.body with
    | B.Group grp -> Some (b.B.id, grp)
    | B.Select _ | B.Union _ -> (
        let rec first = function
          | [] -> None
          | c :: rest -> ( match find c with Some x -> Some x | None -> first rest)
        in
        first (B.children_ids b))
    | B.Base _ -> None
  in
  find (G.root g)

let grouping_key g =
  match top_group g with
  | None -> None
  | Some (_, grp) ->
      Some (List.sort compare (List.map norm (B.grouping_union grp.B.grp_grouping)))

(* Is a grouping column nullable in the base table it comes from? The
   grouping keys of a summary are child columns of the group box; chase
   them down to base tables through select outputs when they are simple
   column passthroughs. *)
let col_nullable cat g box_id col =
  let rec chase box_id col =
    let b = G.box g box_id in
    match b.B.body with
    | B.Base { bt_table; _ } -> (
        match Catalog.find_table cat bt_table with
        | None -> false
        | Some tbl -> (
            match Catalog.find_column tbl col with
            | Some c -> c.Catalog.nullable
            | None -> false))
    | B.Select s -> (
        match
          List.find_opt (fun (n, _) -> norm n = norm col) s.B.sel_outs
        with
        | Some (_, E.Col { B.quant; col = c }) -> (
            match List.find_opt (fun q -> q.B.q_id = quant) s.B.sel_quants with
            | Some q -> chase q.B.q_box c
            | None -> false)
        | _ -> false)
    | B.Group grp ->
        if List.exists (fun c -> norm c = norm col)
             (B.grouping_union grp.B.grp_grouping)
        then chase grp.B.grp_quant.B.q_box col
        else false
    | B.Union _ -> false
  in
  chase box_id col

let lint ?(existing = []) ?incremental cat g =
  let diags = ref [] in
  let push code slug fmt =
    Format.kasprintf
      (fun msg -> diags := { d_code = code; d_slug = slug; d_msg = msg } :: !diags)
      fmt
  in
  (match top_group g with
  | None -> ()
  | Some (_, grp) ->
      let aggs = grp.B.grp_aggs in
      let has_count_star =
        List.exists (fun (_, a) -> a.B.agg.E.fn = E.Count_star) aggs
      in
      let has_count_of arg =
        List.exists
          (fun (_, a) ->
            a.B.agg.E.fn = E.Count && (not a.B.agg.E.distinct)
            && (match a.B.arg with
               | Some c -> norm c = norm arg
               | None -> false))
          aggs
      in
      List.iter
        (fun (n, a) ->
          (match (a.B.agg.E.fn, a.B.arg) with
          | E.Avg, Some arg when (not has_count_star) && not (has_count_of arg)
            ->
              push "L101" "avg-without-count"
                "%s stores AVG(%s) but no COUNT star or COUNT(%s); re-grouping \
                 rule (e) cannot re-derive the average at a coarser \
                 granularity"
                n arg arg
          | _ -> ());
          if a.B.agg.E.distinct then
            push "L102" "distinct-agg"
              "%s stores a DISTINCT aggregate; no re-aggregation rule \
               (a)-(g) applies, so only exact-granularity queries can use \
               this summary"
              n)
        aggs;
      if not has_count_star then
        push "L103" "missing-count-star"
          "no COUNT star column is stored; re-grouping (rules (b)/(d)), \
           delete folding and incremental maintenance all need the group \
           cardinality";
      (match grp.B.grp_grouping with
      | B.Simple _ -> ()
      | B.Gsets sets ->
          let union = B.grouping_union grp.B.grp_grouping in
          let rolled_up c =
            List.exists
              (fun set -> not (List.exists (fun x -> norm x = norm c) set))
              sets
          in
          List.iter
            (fun c ->
              if rolled_up c
                 && col_nullable cat g grp.B.grp_quant.B.q_box c
              then
                push "L104" "grouping-sets-nullable-key"
                  "grouping sets roll up nullable column %s; a rolled-up \
                   row is indistinguishable from a genuine NULL group \
                   without a grouping id (section 5.1)"
                  c)
            union));
  (* L105: same footprint and grouping as an existing summary. At
     ASTQL_PROVE=2 (define-time proving) the prover refines the verdict:
     two summaries whose restriction ranges are provably disjoint are
     complementary shards of one logical summary — not redundant, so no
     diagnostic; otherwise the message says the ranges were not provably
     disjoint. *)
  let fp = footprint g and key = grouping_key g in
  List.iter
    (fun (name, g') ->
      if footprint g' = fp && grouping_key g' = key then
        if Prove.Level.define_on () then begin
          let cert = Prove.disjoint_graphs ~cat g g' in
          match cert.Prove.pc_status with
          | Prove.Proved -> () (* provably disjoint shards — fine *)
          | Prove.Unknown _ ->
              push "L105" "overlapping-summary"
                "same base-table footprint and grouping as existing summary \
                 %s, and their restriction ranges are not provably \
                 disjoint; one of the two is likely redundant"
                name
        end
        else
          push "L105" "overlapping-summary"
            "same base-table footprint and grouping as existing summary %s; \
             one of the two is likely redundant"
            name)
    existing;
  (match incremental with
  | Some false ->
      push "L106" "not-incrementally-maintainable"
        "definition shape is outside the incremental-maintenance class; \
         base-table DML will mark this summary stale until the next \
         REFRESH"
  | Some true | None -> ());
  let ds = List.rev !diags in
  Obs.Metrics.add m_diags (List.length ds);
  ds
