(* Validation-level knob for the static IR checker (DESIGN.md section 12).

   Three levels, settable through ASTQL_VALIDATE or at runtime:

     0 / off             no validation at all; every hook is one int compare
     1 / final-plan      validate the final rewritten plan before it is
                         cached or executed (the default)
     2 / every-candidate validate builder output, every compensation the
                         rewriter constructs, and the final plan

   The knob is process-global (like Config's ablation switches) because
   validation is a property of the build, not of one session. *)

type t = Off | Final | Candidates

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "0" | "off" | "none" -> Some Off
  | "1" | "final" | "final-plan" -> Some Final
  | "2" | "candidates" | "every-candidate" | "all" -> Some Candidates
  | _ -> None

let to_string = function
  | Off -> "off"
  | Final -> "final-plan"
  | Candidates -> "every-candidate"

let to_int = function Off -> 0 | Final -> 1 | Candidates -> 2

let default =
  match Sys.getenv_opt "ASTQL_VALIDATE" with
  | Some s -> ( match of_string s with Some l -> l | None -> Final)
  | None -> Final

let level = ref default
let current () = !level
let set l = level := l

(* Validate the final chosen plan? (levels 1 and 2) *)
let final_on () = !level <> Off

(* Validate builder output and every candidate compensation? (level 2) *)
let candidates_on () = !level = Candidates

let with_level l f =
  let saved = !level in
  level := l;
  Fun.protect ~finally:(fun () -> level := saved) f
