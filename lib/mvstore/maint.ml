(* The deferred-maintenance queue: self-healing for stale summary tables.

   Staleness is observed by Store.apply_insert/apply_delete; the session
   enqueues the names here and drains the queue opportunistically at
   statement boundaries, under a maintenance budget. Time is counted in
   drain ticks (statement boundaries), not wall-clock, so backoff behaves
   identically under test and under load.

   A task's life: due -> refresh attempt ->
     - success: dequeued (the table is fresh and rewritable again);
     - budget exhausted: deferred one tick, no penalty (not a failure);
     - refresh error (via Guard.Error): attempt counted, next try delayed
       by backoff_base * 2^(attempts-1) ticks; after max_retries failed
       attempts the table is quarantined — taken off the queue and left
       stale until a manual REFRESH or DROP clears it. *)

type task = {
  mt_mv : string;
  mutable mt_attempts : int;    (* failed refresh attempts so far *)
  mutable mt_not_before : int;  (* earliest drain tick for the next try *)
}

type quarantined = { mq_mv : string; mq_error : Guard.Error.t }

type t = {
  max_retries : int;
  backoff_base : int;
  mutable tasks : task list;           (* FIFO within the same due tick *)
  mutable held : quarantined list;
  mutable tick : int;
  mutable refreshed : int;             (* lifetime successes *)
  mutable failures : int;              (* lifetime failed attempts *)
}

let create ?(max_retries = 3) ?(backoff_base = 2) () =
  if max_retries < 1 then invalid_arg "Maint.create: max_retries < 1";
  if backoff_base < 1 then invalid_arg "Maint.create: backoff_base < 1";
  {
    max_retries;
    backoff_base;
    tasks = [];
    held = [];
    tick = 0;
    refreshed = 0;
    failures = 0;
  }

let norm = String.lowercase_ascii
let same a b = norm a = norm b

let is_queued t name = List.exists (fun k -> same k.mt_mv name) t.tasks
let is_quarantined t name = List.exists (fun q -> same q.mq_mv name) t.held
let depth t = List.length t.tasks
let quarantined t = t.held
let tasks t = t.tasks
let refreshed t = t.refreshed
let failures t = t.failures

let enqueue t name =
  if not (is_queued t name || is_quarantined t name) then
    t.tasks <-
      t.tasks @ [ { mt_mv = name; mt_attempts = 0; mt_not_before = t.tick } ]

(* DROP or manual REFRESH: the table no longer needs (or can receive)
   auto-maintenance, and a quarantine hold is void. *)
let remove t name =
  t.tasks <- List.filter (fun k -> not (same k.mt_mv name)) t.tasks;
  t.held <- List.filter (fun q -> not (same q.mq_mv name)) t.held

let tick t = t.tick <- t.tick + 1

let due t =
  List.filter_map
    (fun k -> if k.mt_not_before <= t.tick then Some k.mt_mv else None)
    t.tasks

let find_task t name = List.find_opt (fun k -> same k.mt_mv name) t.tasks

let record_success t name =
  t.refreshed <- t.refreshed + 1;
  t.tasks <- List.filter (fun k -> not (same k.mt_mv name)) t.tasks

let defer t name =
  match find_task t name with
  | None -> ()
  | Some k -> k.mt_not_before <- t.tick + 1

let record_failure t name error =
  match find_task t name with
  | None -> ()
  | Some k ->
      t.failures <- t.failures + 1;
      k.mt_attempts <- k.mt_attempts + 1;
      if k.mt_attempts >= t.max_retries then begin
        t.tasks <- List.filter (fun k' -> not (same k'.mt_mv name)) t.tasks;
        t.held <- t.held @ [ { mq_mv = k.mt_mv; mq_error = error } ]
      end
      else
        (* exponential backoff: 1 failure -> base ticks, 2 -> 2*base, ... *)
        k.mt_not_before <-
          t.tick + (t.backoff_base * (1 lsl (k.mt_attempts - 1)))

let describe t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf
       "maintenance: %d queued, %d quarantined, %d auto-refreshed, %d failed \
        attempt(s)"
       (depth t) (List.length t.held) t.refreshed t.failures);
  List.iter
    (fun k ->
      Buffer.add_string b
        (Printf.sprintf "\n  queued %s: %d attempt(s), next at tick %d (now %d)"
           k.mt_mv k.mt_attempts k.mt_not_before t.tick))
    t.tasks;
  List.iter
    (fun q ->
      Buffer.add_string b
        (Printf.sprintf "\n  quarantined %s: %s" q.mq_mv
           (Guard.Error.to_string q.mq_error)))
    t.held;
  Buffer.contents b
