(** Statement-level driver: DDL, DML, summary-table management, querying
    with transparent rewriting. This is what the CLI and the examples sit
    on. *)

type t

type outcome =
  | Msg of string                 (** DDL/DML acknowledgement *)
  | Table of Data.Relation.t      (** query result *)
  | Plan of string                (** EXPLAIN REWRITE output *)

exception Session_error of string

(** [create ()] starts with an empty catalog. [?rewrite] (default true)
    controls transparent AST routing for SELECTs; [?plan_capacity] bounds
    the LRU plan cache (default 256 entries). *)
val create : ?rewrite:bool -> ?plan_capacity:int -> unit -> t

(** Start from an existing catalog and table contents. *)
val of_tables :
  ?rewrite:bool ->
  ?plan_capacity:int ->
  Catalog.t ->
  (string * Data.Relation.t) list ->
  t

val set_rewrite : t -> bool -> unit
val db : t -> Engine.Db.t
val store : t -> Store.t

(** The session's rewrite planner (candidate index + plan cache). *)
val planner : t -> Plancache.Planner.t

(** Snapshot of the planning counters: cache hits/misses, invalidations,
    evictions, candidates attempted vs. filtered. *)
val stats : t -> Plancache.Stats.t

(** Execute one statement. Raises {!Session_error} (with parse/semantic
    context) on bad input. *)
val exec_stmt : t -> Sqlsyn.Ast.stmt -> outcome

(** Execute a semicolon-separated script. *)
val exec_sql : t -> string -> outcome list

(** Run a query, returning the result plus the rewrite steps applied (empty
    when the original plan ran). *)
val run_query :
  t -> Sqlsyn.Ast.query -> Data.Relation.t * Astmatch.Rewrite.step list

(** Render an EXPLAIN REWRITE report for a query. *)
val explain : t -> Sqlsyn.Ast.query -> string
