(** Statement-level driver: DDL, DML, summary-table management, querying
    with transparent rewriting. This is what the CLI and the examples sit
    on. *)

type t

type outcome =
  | Msg of string                 (** DDL/DML acknowledgement *)
  | Table of Data.Relation.t      (** query result *)
  | Plan of string                (** EXPLAIN REWRITE output *)

exception Session_error of string

(** Runtime result verification of rewritten queries. [Sampled p] verifies
    a deterministic [p] fraction of rewritten queries (accumulator-based,
    no RNG: [Sampled 0.25] verifies exactly every 4th). A verified query
    executes the base plan too and bag-compares; on mismatch the summary
    tables used are quarantined and the base answer is served — graceful
    degradation, never a wrong result.

    [Static] verifies like [Always] {e except} when the static prover
    certified every applied rewrite step at match time ([Proved]): those
    queries skip the runtime re-execution entirely (counted in
    [verify_static_skips] and the [prove.verify_skips] metric). Requires
    [ASTQL_PROVE] ≥ 1 to ever skip. *)
type verify = Off | Sampled of float | Always | Static

(** [create ()] starts with an empty catalog. [?rewrite] (default true)
    controls transparent AST routing for SELECTs; [?plan_capacity] bounds
    the LRU plan cache (default 256 entries); [?verify] (default [Off])
    enables runtime result verification; [?verify_oracle] (default false)
    checks against the naive {!Engine.Reference} evaluator instead of the
    optimized executor (slow — differential tests only); [?budget] sets
    the per-statement resource limits (default
    {!Govern.Budget.default_limits}, i.e. unlimited unless the
    [ASTQL_DEADLINE_MS]/[ASTQL_MATCH_BUDGET] environment knobs say
    otherwise); [?auto_maint] (default false) drains the deferred
    maintenance queue at statement boundaries, auto-refreshing summary
    tables that DML left stale (with backoff and quarantine on repeated
    failure). *)
val create :
  ?rewrite:bool ->
  ?plan_capacity:int ->
  ?verify:verify ->
  ?verify_oracle:bool ->
  ?budget:Govern.Budget.limits ->
  ?auto_maint:bool ->
  unit ->
  t

(** Start from an existing catalog and table contents. *)
val of_tables :
  ?rewrite:bool ->
  ?plan_capacity:int ->
  ?verify:verify ->
  ?verify_oracle:bool ->
  ?budget:Govern.Budget.limits ->
  ?auto_maint:bool ->
  Catalog.t ->
  (string * Data.Relation.t) list ->
  t

(** [attach shared] creates a session bound to {!Shared} database state, so
    many sessions — typically one per server connection, running on
    different domains — serve the same catalog. In shared mode every
    statement runs against a consistent copy-on-write snapshot: reads take
    one atomic load and never block; mutating statements serialize through
    the shared writer lock and publish atomically (a failed write publishes
    nothing). The session object itself is {e not} thread-safe — use it
    from one domain at a time; the cross-domain safety lives entirely in
    {!Shared}. Planner, plan cache and quarantine stay per-session
    (epoch-keyed, so they self-invalidate when another session publishes a
    write). *)
val attach :
  ?rewrite:bool ->
  ?plan_capacity:int ->
  ?verify:verify ->
  ?verify_oracle:bool ->
  ?budget:Govern.Budget.limits ->
  ?auto_maint:bool ->
  Shared.t ->
  t

(** [share t] returns the session's shared state, promoting a private
    session to shared mode first if needed (its current db/store become the
    initial snapshot). Subsequent {!attach}es to the result serve the same
    data. *)
val share : t -> Shared.t

(** The shared state this session is bound to, if any. *)
val shared : t -> Shared.t option

(** One committed write statement, as the durability layer logs it.
    [Commit_sql] re-executes verbatim at replay; COPY FROM logs the rows it
    loaded ([Commit_rows]) because the source file may be gone by recovery
    time. *)
type commit =
  | Commit_sql of string
  | Commit_rows of { cr_table : string; cr_rows : Data.Relation.row list }

(** [set_on_commit t (Some hook)] installs the durability hook: it runs
    inside the write-snapshot closure after a mutating statement's body
    succeeds and {e before} the atomic publish, so a hook that raises
    aborts the whole statement (append-before-publish — no write is ever
    visible without its log record). Read-only statements never reach it.
    [None] uninstalls. *)
val set_on_commit : t -> (commit -> unit) option -> unit

(** WAL replay of a [Commit_rows] record: folds the rows through summary
    maintenance and appends them, without re-running integrity checks (they
    passed in the process that logged the record). Raises {!Session_error}
    if the table does not exist. *)
val replay_rows :
  t -> table:string -> rows:Data.Relation.row list -> unit

val set_rewrite : t -> bool -> unit
val rewrite_enabled : t -> bool
val set_verify : t -> verify -> unit

(** The session's default per-statement resource limits (admission
    control). [set_limits] takes effect from the next statement; it never
    interrupts one in flight. *)
val limits : t -> Govern.Budget.limits

val set_limits : t -> Govern.Budget.limits -> unit

(** Budget-degradation annotations. Whenever the ladder trades quality for
    survival — planning stopped at the best-so-far plan, or rewritten
    execution fell back to the (unbudgeted) base plan — the typed
    exhaustion reason ({!Govern.Budget.reason_name}: ["deadline"],
    ["match-budget"], ...) is recorded on the session. The server resets
    this before each request and folds what accumulated into the reply's
    ["degraded"] annotation. Deduplicated, oldest first. *)
val degraded_reasons : t -> string list

val reset_degraded : t -> unit

(** Statement classification for the shared-state discipline (and for
    client-side retry safety): [true] exactly for the statements that
    mutate the database, i.e. those that serialize through the writer lock
    and must not be blindly retried after an ambiguous acknowledgement. *)
val stmt_writes : Sqlsyn.Ast.stmt -> bool

(** Deferred-maintenance drain on/off (see [?auto_maint] above). Stale
    tables are {e always} enqueued; this only controls whether the queue
    drains automatically. *)
val auto_maint : t -> bool

val set_auto_maint : t -> bool -> unit

(** The session's deferred-maintenance queue (inspection; the astql
    [\health] command renders it). *)
val maint : t -> Maint.t

(** When enabled, every planning attempt records a structured span trace
    ({!Obs.Trace}) kept in a bounded per-session ring (the astql [\trace]
    command). Off by default: the production path passes [None] everywhere
    and pays nothing. *)
val set_trace : t -> bool -> unit

val trace_enabled : t -> bool

(** Recorded traces, oldest first, labelled with the planned query's SQL. *)
val traces : t -> (string * Obs.Trace.t) list

val clear_traces : t -> unit
val db : t -> Engine.Db.t
val store : t -> Store.t

(** Definition-time lint (Lint.Advisor) of every summary table currently
    in the store, in definition order: [(name, diagnostics)]. Also run
    automatically on CREATE SUMMARY TABLE, whose message carries the
    diagnostics as warnings. *)
val lint_summaries : t -> (string * Lint.Advisor.diag list) list

(** The session's rewrite planner (candidate index + plan cache). *)
val planner : t -> Plancache.Planner.t

(** Snapshot of the planning counters: cache hits/misses, invalidations,
    evictions, candidates attempted vs. filtered, contained rewrite errors,
    fallbacks, quarantine activity, verification runs/mismatches. *)
val stats : t -> Plancache.Stats.t

(** Human-readable fault-isolation report: fallbacks, contained rewrite
    errors, quarantine adds/holdings/skips, verification runs and
    mismatches (the astql [\health] command). *)
val health : t -> string

(** Execute one statement. Raises {!Session_error} (with parse/semantic
    context) on bad input. *)
val exec_stmt : t -> Sqlsyn.Ast.stmt -> outcome

(** Execute a semicolon-separated script. *)
val exec_sql : t -> string -> outcome list

(** Run a query, returning the result plus the rewrite steps applied (empty
    when the original plan ran — including when a contained rewrite failure
    or verification mismatch fell back to it). Never raises because of the
    rewrite pipeline: the only exceptions are those the base plan itself
    produces, exactly as a [~rewrite:false] session would.

    [?limits] overrides the session's default budget for this statement
    only. A budget exhausted during planning degrades to the best-so-far
    (possibly base) plan; exhausted during rewritten execution, the base
    plan is re-run unbudgeted — resource pressure can cost performance,
    never correctness. *)
val run_query :
  ?limits:Govern.Budget.limits ->
  t ->
  Sqlsyn.Ast.query ->
  Data.Relation.t * Astmatch.Rewrite.step list

(** Render an EXPLAIN REWRITE report for a query. With [~verbose:true]
    (EXPLAIN REWRITE VERBOSE) unmatched candidates print their full match
    span tree — every pattern attempted and the typed reason it was
    rejected — instead of the deduplicated reason list, and rewritten
    queries append the complete routing trace. *)
val explain : ?verbose:bool -> t -> Sqlsyn.Ast.query -> string
