(** The summary-table (AST) store: definitions, materialization, refresh.

    Each summary table is defined by a SQL query, materialized through the
    engine into an ordinary stored table, and registered in the catalog so
    rewritten queries can scan it. Inserts into base tables are folded into
    eligible summary tables incrementally (insert-delta aggregation); other
    summary tables over the changed table turn stale and are excluded from
    rewriting until refreshed (the paper's problem (c), after [10]). *)

type merge_fn = M_add | M_min | M_max

type incr_plan = {
  ip_keys : string list;                 (** MV columns that are group keys *)
  ip_aggs : (string * merge_fn) list;    (** MV aggregate columns *)
  ip_count : string option;
      (** a COUNT-star column, when present: required for delete
          maintenance (it detects emptied groups) *)
  ip_delete_safe : bool;
      (** no SUM over a nullable argument (subtraction cannot restore the
          NULL that an all-NULL group requires) *)
}

type entry = {
  e_name : string;
  e_sql : string;
  e_graph : Qgm.Graph.t;
  e_cols : (string * Data.Value.ty) list;
  e_tables : string list;        (** base tables the definition reads *)
  e_fresh : bool;
  e_incr : incr_plan option;     (** [None]: full refresh only *)
  e_version : int;
      (** definition version: the store epoch this incarnation of the
          table was last (re)defined or refreshed under — the quarantine
          key, stable across unrelated DML *)
}

type t

val empty : t
val entries : t -> entry list
val find : t -> string -> entry option

(** The store's planning epoch. Every operation that could change a
    routing decision — {!define}, {!drop}, {!refresh_full},
    {!apply_insert}, {!apply_delete}, and (via {!touch}) session-level
    DDL — bumps it; the plan cache refuses to serve a decision stamped
    with any other epoch, so a stale plan is never executed. *)
val epoch : t -> int

(** Bump the epoch without changing the entries (for invalidation events
    the store does not itself observe, e.g. CREATE TABLE). *)
val touch : t -> t

(** Names of entries currently stale (excluded from rewriting until
    refreshed; the maintenance queue's work list). *)
val stale : t -> string list

exception Mv_error of string

(** [define store db ~name ~sql] parses and elaborates the defining query,
    materializes it, registers the result as a catalog table, and stores the
    entry. Raises {!Mv_error} on name clashes or unsupported definitions. *)
val define : t -> Engine.Db.t -> name:string -> sql:string -> t * Engine.Db.t

val drop : t -> Engine.Db.t -> string -> t * Engine.Db.t

(** [restore store db ~name ~sql ~fresh ~rows] re-registers a summary table
    from checkpoint state {e without} executing the defining query: the
    graph, column types and incremental plan are rebuilt from [sql] against
    the recovered catalog, and [rows] become the payload as-is. Raises
    {!Mv_error} on name clashes, an unparseable definition, or a payload
    whose arity disagrees with the definition. The recovery ladder
    (Durable.Manager) verifies restored payloads afterwards and calls
    {!quarantine_payload} on mismatch. *)
val restore :
  t -> Engine.Db.t -> name:string -> sql:string -> fresh:bool ->
  rows:Data.Relation.row list -> t * Engine.Db.t

(** Degraded recovery: empty a summary table's payload and mark it stale,
    excluding it from rewriting until a refresh rebuilds it. *)
val quarantine_payload : t -> Engine.Db.t -> string -> t * Engine.Db.t

(** Recompute a summary table from scratch, mark it fresh and move its
    definition version (voiding quarantine observations against the old
    contents). Hits the [Refresh] fault-injection point. With [budget],
    the recomputation is metered ({!Engine.Exec.run}) and may raise
    [Budget_exhausted] — the caller (the maintenance drain) defers the
    refresh rather than failing it. *)
val refresh_full :
  ?budget:Govern.Budget.t -> t -> Engine.Db.t -> string -> t * Engine.Db.t

(** [apply_insert store db ~table ~rows] must be called *before* the rows
    are added to [table]: summary tables with an incremental plan absorb the
    delta; others over [table] become stale. The third component names the
    entries that {e newly} went stale (the maintenance queue's input). *)
val apply_insert :
  t -> Engine.Db.t -> table:string -> rows:Data.Relation.row list ->
  t * Engine.Db.t * string list

(** [apply_delete store db ~table ~rows] must be called with the deleted
    rows *before* they are removed from [table]. Summary tables whose plan
    has only subtractable aggregates (COUNT/SUM) and a COUNT-star column
    absorb the delta (groups whose count reaches zero disappear); MIN/MAX
    summaries and non-incremental ones become stale. The third component
    names the entries that {e newly} went stale. *)
val apply_delete :
  t -> Engine.Db.t -> table:string -> rows:Data.Relation.row list ->
  t * Engine.Db.t * string list

(** Fresh summary tables, packaged for the rewriter. *)
val rewritable : t -> Astmatch.Rewrite.mv list
