module A = Sqlsyn.Ast
module R = Data.Relation
module V = Data.Value

exception Session_error of string

let err fmt = Format.kasprintf (fun s -> raise (Session_error s)) fmt
let norm = String.lowercase_ascii

type verify = Off | Sampled of float | Always | Static

(* What the durability layer logs for one committed write statement. SQL
   statements re-execute verbatim at replay; COPY FROM logs the loaded rows
   themselves (the source file may be gone by recovery time). *)
type commit =
  | Commit_sql of string
  | Commit_rows of { cr_table : string; cr_rows : R.row list }

type t = {
  mutable sdb : Engine.Db.t;
  mutable sstore : Store.t;
  mutable sshared : Shared.t option;
      (* when set, [sdb]/[sstore] are a per-statement cache of the shared
         snapshot: refreshed at statement entry, published (atomically,
         under the writer lock) only by mutating statements *)
  mutable srewrite : bool;
  mutable sverify : verify;
  mutable sverify_acc : float;  (* deterministic sampling accumulator *)
  sverify_oracle : bool;
  splanner : Plancache.Planner.t;
  mutable strace : bool;        (* record a span trace per planning attempt *)
  straces : Obs.Trace.ring;     (* recent traces (astql \trace show) *)
  mutable slimits : Govern.Budget.limits;  (* per-statement default budget *)
  mutable sdegraded : string list;
      (* budget-exhaustion reasons recorded since the last [reset_degraded]
         — the server annotates replies with them so a client can tell a
         full-quality answer from a degraded-but-correct one *)
  mutable sauto_maint : bool;   (* drain the maintenance queue at boundaries *)
  smaint : Maint.t;             (* deferred-maintenance queue *)
  mutable son_commit : (commit -> unit) option;
      (* durability hook: called inside the write-snapshot closure after the
         statement body succeeds and before the atomic publish — if it
         raises, nothing publishes (statement rollback), so a write is never
         visible without its log record *)
  mutable scopy_rows : R.row list;
      (* rows loaded by the current COPY FROM, for the commit record *)
}

type outcome = Msg of string | Table of R.t | Plan of string

let create ?(rewrite = true) ?plan_capacity ?(verify = Off)
    ?(verify_oracle = false) ?budget ?(auto_maint = false) () =
  {
    sdb = Engine.Db.create Catalog.empty;
    sstore = Store.empty;
    sshared = None;
    srewrite = rewrite;
    sverify = verify;
    sverify_acc = 0.;
    sverify_oracle = verify_oracle;
    splanner = Plancache.Planner.create ?capacity:plan_capacity ();
    strace = false;
    straces = Obs.Trace.ring ();
    slimits =
      (match budget with
      | Some l -> l
      | None -> Govern.Budget.default_limits ());
    sdegraded = [];
    sauto_maint = auto_maint;
    smaint = Maint.create ();
    son_commit = None;
    scopy_rows = [];
  }

let of_tables ?(rewrite = true) ?plan_capacity ?(verify = Off)
    ?(verify_oracle = false) ?budget ?(auto_maint = false) cat tables =
  {
    sdb = Engine.Db.of_tables cat tables;
    sstore = Store.empty;
    sshared = None;
    srewrite = rewrite;
    sverify = verify;
    sverify_acc = 0.;
    sverify_oracle = verify_oracle;
    splanner = Plancache.Planner.create ?capacity:plan_capacity ();
    strace = false;
    straces = Obs.Trace.ring ();
    slimits =
      (match budget with
      | Some l -> l
      | None -> Govern.Budget.default_limits ());
    sdegraded = [];
    sauto_maint = auto_maint;
    smaint = Maint.create ();
    son_commit = None;
    scopy_rows = [];
  }

(* ---------------- shared-state binding ---------------- *)

(* A session bound to a Shared.t reads (db, store) as one consistent
   snapshot at statement entry and publishes — atomically, under the
   single writer lock — only from mutating statements. The session object
   itself stays single-threaded (one connection, one domain); parallelism
   comes from many sessions over one Shared.t. *)

let attach ?(rewrite = true) ?plan_capacity ?(verify = Off)
    ?(verify_oracle = false) ?budget ?(auto_maint = false) shared =
  let snap = Shared.snapshot shared in
  let t =
    create ~rewrite ?plan_capacity ~verify ~verify_oracle ?budget ~auto_maint
      ()
  in
  t.sdb <- snap.Shared.sn_db;
  t.sstore <- snap.Shared.sn_store;
  t.sshared <- Some shared;
  t

let share t =
  match t.sshared with
  | Some sh -> sh
  | None ->
      let sh = Shared.create t.sdb t.sstore in
      t.sshared <- Some sh;
      sh

let shared t = t.sshared

(* Run one statement's body against the right state. Reads take a lock-free
   snapshot; writes serialize on the shared writer lock and publish the
   session's (db, store) as one new snapshot — or, if the body raises,
   publish nothing, so a failed statement rolls back wholesale. *)
let with_snapshot t ~write f =
  match t.sshared with
  | None -> f ()
  | Some sh ->
      if write then
        Shared.with_write sh (fun snap ->
            t.sdb <- snap.Shared.sn_db;
            t.sstore <- snap.Shared.sn_store;
            let r = f () in
            ({ Shared.sn_db = t.sdb; sn_store = t.sstore }, r))
      else begin
        let snap = Shared.snapshot sh in
        t.sdb <- snap.Shared.sn_db;
        t.sstore <- snap.Shared.sn_store;
        f ()
      end

let set_on_commit t hook = t.son_commit <- hook
let set_rewrite t b = t.srewrite <- b
let rewrite_enabled t = t.srewrite
let limits t = t.slimits
let set_limits t l = t.slimits <- l
let auto_maint t = t.sauto_maint
let set_auto_maint t b = t.sauto_maint <- b
let maint t = t.smaint
let set_trace t b = t.strace <- b
let trace_enabled t = t.strace
let traces t = Obs.Trace.items t.straces
let clear_traces t = Obs.Trace.clear t.straces

let set_verify t v =
  t.sverify <- v;
  t.sverify_acc <- 0.

(* Degradation annotations: every place the budget ladder trades quality
   for survival records the typed reason here; the server resets before a
   request and folds what accumulated into the reply. Deduplicated — one
   request can exhaust the same budget in planning and execution. *)
let note_degraded t reason =
  if not (List.mem reason t.sdegraded) then
    t.sdegraded <- reason :: t.sdegraded

let degraded_reasons t = List.rev t.sdegraded
let reset_degraded t = t.sdegraded <- []

let db t = t.sdb
let store t = t.sstore
let planner t = t.splanner
let stats t = Plancache.Stats.copy (Plancache.Planner.stats t.splanner)
let touch_store t = t.sstore <- Store.touch t.sstore

let health t =
  let st = Plancache.Planner.stats t.splanner in
  Printf.sprintf
    "fallbacks:        %d\n\
     rewrite errors:   %d\n\
     quarantined:      %d pair(s) added, %d held now\n\
     quarantine skips: %d\n\
     verification:     %d run(s), %d mismatch(es), %d static skip(s)\n\
     budget:           %s (%d degraded plan(s))\n\
     %s"
    st.Plancache.Stats.fallbacks st.Plancache.Stats.rw_errors
    st.Plancache.Stats.quarantined
    (Plancache.Planner.quarantine_length t.splanner)
    st.Plancache.Stats.quarantine_skips st.Plancache.Stats.verify_runs
    st.Plancache.Stats.verify_mismatches
    st.Plancache.Stats.verify_static_skips
    (Govern.Budget.describe t.slimits)
    st.Plancache.Stats.degraded
    (Maint.describe t.smaint)

(* ---------------- DDL ---------------- *)

let do_create_table t name (cols : A.col_def list) constraints =
  let pk =
    List.concat_map
      (function A.C_primary_key ks -> [ ks ] | _ -> [])
      constraints
  in
  let primary_key = match pk with [] -> [] | [ ks ] -> ks | _ -> err "multiple primary keys" in
  let tbl =
    {
      Catalog.tbl_name = name;
      tbl_cols =
        List.map
          (fun c ->
            {
              Catalog.col_name = c.A.cd_name;
              col_ty = c.A.cd_ty;
              nullable =
                (not c.A.cd_not_null)
                && not (List.exists (fun k -> norm k = norm c.A.cd_name) primary_key);
            })
          cols;
      primary_key;
      unique_keys =
        List.concat_map
          (function A.C_unique ks -> [ ks ] | _ -> [])
          constraints;
      foreign_keys =
        List.concat_map
          (function
            | A.C_foreign_key (ks, rt, rks) ->
                [ { Catalog.fk_cols = ks; fk_ref_table = rt; fk_ref_cols = rks } ]
            | _ -> [])
          constraints;
    }
  in
  let cat =
    try Catalog.add_table (Engine.Db.catalog t.sdb) tbl
    with Invalid_argument m -> err "%s" m
  in
  t.sdb <- Engine.Db.put (Engine.Db.with_catalog t.sdb cat) name
             (R.empty (Catalog.column_names tbl));
  touch_store t;  (* DDL invalidates cached plans *)
  Msg (Printf.sprintf "table %s created" name)

(* ---------------- DML ---------------- *)

let const_eval (e : A.expr) =
  (* resolve the literal-only expression through the builder's core and
     evaluate it with no column environment *)
  let rec conv e =
    match e with
    | A.Lit v -> Qgm.Expr.Const v
    | A.Unop (op, e) -> Qgm.Expr.Unop (op, conv e)
    | A.Binop (op, a, b) -> Qgm.Expr.Binop (op, conv a, conv b)
    | A.Fncall (f, args) -> Qgm.Expr.Fncall (f, List.map conv args)
    | A.Case (arms, els) ->
        Qgm.Expr.Case
          (List.map (fun (c, v) -> (conv c, conv v)) arms, Option.map conv els)
    | A.Is_null (e, pos) -> Qgm.Expr.Is_null (conv e, pos)
    | _ -> err "INSERT values must be constant expressions"
  in
  try Engine.Eval.eval (fun (_ : unit) -> V.Null) (conv e)
  with Engine.Eval.Eval_error m -> err "bad INSERT value: %s" m

let do_insert t table cols_opt rows =
  let cat = Engine.Db.catalog t.sdb in
  let tbl =
    match Catalog.find_table cat table with
    | Some tbl -> tbl
    | None -> err "unknown table %s" table
  in
  let all_cols = Catalog.column_names tbl in
  let target_cols = Option.value ~default:all_cols cols_opt in
  let positions =
    List.map
      (fun c ->
        match
          List.find_index (fun x -> norm x = norm c) all_cols
        with
        | Some i -> i
        | None -> err "column %s not in table %s" c table)
      target_cols
  in
  let width = List.length all_cols in
  let mkrow exprs =
    if List.length exprs <> List.length target_cols then
      err "INSERT row arity mismatch";
    let row = Array.make width V.Null in
    List.iter2 (fun i e -> row.(i) <- const_eval e) positions exprs;
    (* light integrity enforcement: reject NULL in NOT NULL columns *)
    List.iteri
      (fun i c ->
        match Catalog.find_column tbl c with
        | Some col when (not col.Catalog.nullable) && row.(i) = V.Null ->
            err "NULL value for NOT NULL column %s.%s" table c
        | _ -> ())
      all_cols;
    row
  in
  let new_rows = List.map mkrow rows in
  (* incremental maintenance first (needs the delta in isolation) *)
  let store', db', went_stale =
    Store.apply_insert t.sstore t.sdb ~table ~rows:new_rows
  in
  t.sstore <- store';
  List.iter (Maint.enqueue t.smaint) went_stale;
  let current =
    match Engine.Db.get db' table with
    | Some r -> r
    | None -> R.empty all_cols
  in
  t.sdb <- Engine.Db.put db' table (R.append current new_rows);
  Msg (Printf.sprintf "%d row(s) inserted into %s" (List.length new_rows) table)

let do_delete t table where =
  let cat = Engine.Db.catalog t.sdb in
  if not (Catalog.mem_table cat table) then err "unknown table %s" table;
  let current =
    match Engine.Db.get t.sdb table with
    | Some r -> r
    | None -> R.empty (Catalog.column_names (Catalog.table_exn cat table))
  in
  (* rows to delete = the table filtered by the predicate *)
  let doomed_query =
    {
      A.empty_query with
      A.select_star = true;
      from = [ A.From_table (table, None) ];
      where;
    }
  in
  let g =
    try Qgm.Builder.build cat doomed_query
    with Qgm.Builder.Sem_error m -> err "semantic error: %s" m
  in
  let doomed = Engine.Exec.run t.sdb g in
  (* maintain summaries with the delta before mutating the table *)
  let store', db', went_stale =
    Store.apply_delete t.sstore t.sdb ~table ~rows:(R.rows doomed)
  in
  t.sstore <- store';
  List.iter (Maint.enqueue t.smaint) went_stale;
  t.sdb <- Engine.Db.put db' table (R.bag_diff current doomed);
  Msg
    (Printf.sprintf "%d row(s) deleted from %s" (R.cardinality doomed) table)

(* COPY: CSV bulk load/unload. Loads route through the same integrity and
   summary-maintenance path as INSERT. *)
let do_copy_from t table path header =
  let cat = Engine.Db.catalog t.sdb in
  let tbl =
    match Catalog.find_table cat table with
    | Some tbl -> tbl
    | None -> err "unknown table %s" table
  in
  let types = List.map (fun c -> c.Catalog.col_ty) tbl.Catalog.tbl_cols in
  let rows =
    try Data.Csv.load_file ~types ~header path with
    | Data.Csv.Csv_error m -> err "COPY %s: %s" table m
    | Sys_error m -> err "COPY %s: %s" table m
  in
  List.iter
    (fun row ->
      List.iteri
        (fun i c ->
          if (not c.Catalog.nullable) && row.(i) = V.Null then
            err "NULL value for NOT NULL column %s.%s" table
              c.Catalog.col_name)
        tbl.Catalog.tbl_cols;
      ignore row)
    rows;
  let store', db', went_stale = Store.apply_insert t.sstore t.sdb ~table ~rows in
  t.sstore <- store';
  List.iter (Maint.enqueue t.smaint) went_stale;
  let current =
    match Engine.Db.get db' table with
    | Some r -> r
    | None -> R.empty (Catalog.column_names tbl)
  in
  t.sdb <- Engine.Db.put db' table (R.append current rows);
  (* stash for the commit record: the CSV file may not exist at replay *)
  t.scopy_rows <- rows;
  Msg (Printf.sprintf "%d row(s) copied into %s" (List.length rows) table)

let do_copy_to t table path =
  match Engine.Db.get t.sdb table with
  | None -> err "unknown table %s" table
  | Some rel -> (
      try
        Data.Csv.save_file rel path;
        Msg
          (Printf.sprintf "%d row(s) copied from %s to %s" (R.cardinality rel)
             table path)
      with Sys_error m -> err "COPY %s: %s" table m)

(* ---------------- queries ---------------- *)

let build_query t q =
  let g =
    try Qgm.Builder.build (Engine.Db.catalog t.sdb) q
    with Qgm.Builder.Sem_error m -> err "semantic error: %s" m
  in
  (* At ASTQL_VALIDATE=2 the builder's output is held to the same static
     invariants as every rewrite candidate; a failure here is an engine
     bug surfaced as a session error, not a crash. *)
  if Lint.Level.candidates_on () then
    (match Lint.Validate.check ~cat:(Engine.Db.catalog t.sdb) g with
    | [] -> ()
    | vs ->
        err "internal error: builder produced ill-formed IR (%s)"
          (Lint.Validate.summary vs));
  g

(* The single planning entry point: run_query, EXPLAIN REWRITE and EXPLAIN
   all route through here, so what EXPLAIN reports is exactly what
   execution does — including cache behaviour and budget degradation. *)
let plan_query ?budget t g =
  let trace = if t.strace then Some (Obs.Trace.create ()) else None in
  let r =
    Plancache.Planner.plan ?trace ?budget t.splanner
      ~cat:(Engine.Db.catalog t.sdb) ~epoch:(Store.epoch t.sstore)
      ~mvs:(Store.rewritable t.sstore) g
  in
  (match trace with
  | Some tr -> Obs.Trace.push t.straces (Qgm.Unparse.to_sql g) tr
  | None -> ());
  r

(* Admission control: a statement gets a budget only when its limits say
   so — the unlimited case stays on the zero-cost [None] path. *)
let budget_of_limits l =
  if Govern.Budget.is_unlimited l then None else Some (Govern.Budget.start l)

(* ---------------- deferred maintenance ---------------- *)

let m_auto_refreshes = Obs.Metrics.counter "govern.maint.auto_refreshes"
let m_refresh_failures = Obs.Metrics.counter "govern.maint.refresh_failures"
let m_maint_quarantined = Obs.Metrics.counter "govern.maint.quarantined"
let m_maint_deferred = Obs.Metrics.counter "govern.maint.deferred"
let m_exec_degraded = Obs.Metrics.counter "govern.exec_degraded"

(* Drain the maintenance queue at a statement boundary: refresh every due
   stale summary table under the session's maintenance budget. Failures are
   classified and backed off (quarantine after max retries); a refresh cut
   short by the budget is deferred to the next boundary without penalty. *)
let drain_due t due =
  let budget = budget_of_limits t.slimits in
  List.iter
    (fun name ->
      match Store.find t.sstore name with
      | None -> Maint.remove t.smaint name (* dropped meanwhile *)
      | Some e when e.Store.e_fresh ->
          Maint.remove t.smaint name (* refreshed manually meanwhile *)
      | Some _ -> (
          match
            Guard.Sandbox.protect ~stage:Guard.Error.Refresh ~mv:name
              (fun () -> Store.refresh_full ?budget t.sstore t.sdb name)
          with
          | exception Govern.Budget.Budget_exhausted _ ->
              Obs.Metrics.incr m_maint_deferred;
              Maint.defer t.smaint name
          | Ok (store', db') ->
              t.sstore <- store';
              t.sdb <- db';
              Obs.Metrics.incr m_auto_refreshes;
              Maint.record_success t.smaint name
          | Error err ->
              Obs.Metrics.incr m_refresh_failures;
              Printf.eprintf
                "astrw maint: auto-refresh of %s failed (%s)\n%!" name
                (Guard.Error.to_string err);
              Maint.record_failure t.smaint name err;
              if Maint.is_quarantined t.smaint name then begin
                Obs.Metrics.incr m_maint_quarantined;
                Printf.eprintf
                  "astrw maint: %s quarantined after repeated refresh \
                   failures; REFRESH or DROP it manually\n\
                   %!"
                  name
              end))
    due

(* In shared mode the drain is a write: refreshed summaries must publish
   atomically with the store that considers them fresh. *)
let drain_maintenance t =
  if t.sauto_maint then begin
    Maint.tick t.smaint;
    match Maint.due t.smaint with
    | [] -> ()
    | due -> with_snapshot t ~write:true (fun () -> drain_due t due)
  end

(* Deterministic sampling: verify whenever the accumulated rate crosses an
   integer boundary, so [Sampled 0.25] verifies exactly every 4th rewritten
   query — reproducible, no RNG state. *)
let m_static_skips = Obs.Metrics.counter "prove.verify_skips"

let should_verify t =
  match t.sverify with
  | Off -> false
  | Always -> true
  | Static -> true (* the proved-plan skip is decided at the call site *)
  | Sampled p ->
      let p = Float.min 1.0 (Float.max 0.0 p) in
      t.sverify_acc <- t.sverify_acc +. p;
      if t.sverify_acc >= 1.0 then begin
        t.sverify_acc <- t.sverify_acc -. 1.0;
        true
      end
      else false

(* Fault.Corrupt support: perturb one value of the first row (simulates a
   compensation that derives an aggregate column incorrectly). *)
let corrupt_relation rel =
  let first = ref true in
  R.map_rows
    (fun row ->
      if !first && Array.length row > 0 then begin
        first := false;
        let row = Array.copy row in
        let j = Array.length row - 1 in
        row.(j) <- Guard.Fault.corrupt_value row.(j);
        row
      end
      else row)
    rel

(* The fallback contract: whatever happens inside the rewrite pipeline —
   planning already degrades inside Planner.plan; here a rewritten plan
   that fails to execute, or whose result fails verification, quarantines
   the summary tables it used and the base plan's answer is served. The
   only exceptions that can escape are the ones the base plan itself
   raises, exactly as a rewrite:false session would. *)
let run_query_unrewritten t g = (Engine.Exec.run t.sdb g, [])

let run_query_routed ?budget t g =
  let r = plan_query ?budget t g in
  (match r.Plancache.Planner.pr_degraded with
  | Some reason -> note_degraded t (Govern.Budget.reason_name reason)
  | None -> ());
  match r.Plancache.Planner.pr_steps with
  | [] -> run_query_unrewritten t g
  | steps -> (
      let st = Plancache.Planner.stats t.splanner in
      let quarantine_used () =
        Plancache.Planner.quarantine t.splanner ~fp:r.pr_fingerprint
          (List.filter_map
             (fun (s : Astmatch.Rewrite.step) ->
               Option.map
                 (fun (e : Store.entry) -> (s.used_mv, e.Store.e_version))
                 (Store.find t.sstore s.used_mv))
             steps)
      in
      match
        Guard.Sandbox.protect ~stage:Guard.Error.Execute (fun () ->
            Engine.Exec.run ?budget t.sdb r.pr_graph)
      with
      | exception Govern.Budget.Budget_exhausted reason ->
          (* the rewritten plan ran out of road mid-execution: containment
             path, minus the quarantine — the plan is fine, the budget was
             not. The base plan runs unbudgeted: correctness first. *)
          note_degraded t (Govern.Budget.reason_name reason);
          Obs.Metrics.incr m_exec_degraded;
          st.Plancache.Stats.fallbacks <- st.Plancache.Stats.fallbacks + 1;
          run_query_unrewritten t g
      | Error e ->
          Printf.eprintf "astrw guard: %s; serving the base plan\n%!"
            (Guard.Error.to_string e);
          st.Plancache.Stats.rw_errors <- st.Plancache.Stats.rw_errors + 1;
          st.Plancache.Stats.fallbacks <- st.Plancache.Stats.fallbacks + 1;
          quarantine_used ();
          run_query_unrewritten t g
      | Ok rel ->
          let rel =
            if Guard.Fault.fire Guard.Fault.Corrupt then corrupt_relation rel
            else rel
          in
          let static_skip =
            t.sverify = Static
            && Prove.is_proved (Astmatch.Rewrite.steps_proof steps)
          in
          if static_skip then begin
            (* every applied step carries a static certificate: the rewrite
               is equivalent by construction, so the runtime re-execution
               would only confirm what is already proved *)
            st.Plancache.Stats.verify_static_skips <-
              st.Plancache.Stats.verify_static_skips + 1;
            Obs.Metrics.incr m_static_skips;
            (rel, steps)
          end
          else if not (should_verify t) then (rel, steps)
          else begin
            st.Plancache.Stats.verify_runs <-
              st.Plancache.Stats.verify_runs + 1;
            let reference =
              if t.sverify_oracle then Engine.Reference.run t.sdb g
              else Engine.Exec.run t.sdb g
            in
            if R.bag_equal_approx rel reference then (rel, steps)
            else begin
              Printf.eprintf
                "astrw guard: verification mismatch (rewrite via %s); \
                 quarantined, serving the base plan\n\
                 %!"
                (String.concat ", "
                   (List.map
                      (fun (s : Astmatch.Rewrite.step) -> s.used_mv)
                      steps));
              st.Plancache.Stats.verify_mismatches <-
                st.Plancache.Stats.verify_mismatches + 1;
              st.Plancache.Stats.fallbacks <-
                st.Plancache.Stats.fallbacks + 1;
              quarantine_used ();
              (reference, [])
            end
          end)

let run_query ?limits t q =
  drain_maintenance t;
  let limits = Option.value ~default:t.slimits limits in
  with_snapshot t ~write:false (fun () ->
      try
        let g = build_query t q in
        if not t.srewrite then run_query_unrewritten t g
        else run_query_routed ?budget:(budget_of_limits limits) t g
      with Division_by_zero -> err "division by zero in SELECT")

let explain_in_snapshot ?(verbose = false) t q =
  let g = build_query t q in
  let cat = Engine.Db.catalog t.sdb in
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "original cost estimate: %.0f\n" (Astmatch.Cost.graph_cost cat g);
  (* plan under the session's limits, so what EXPLAIN reports — including
     budget degradation — is what an execution right now would do *)
  let r = plan_query ?budget:(budget_of_limits t.slimits) t g in
  let fresh = Store.rewritable t.sstore in
  addf "cache: %s\n" (if r.Plancache.Planner.pr_hit then "hit" else "miss");
  addf "candidates: %d attempted, %d filtered (of %d fresh)\n" r.pr_attempted
    r.pr_filtered (List.length fresh);
  addf "validated: %s%s\n"
    (Lint.Level.to_string (Lint.Level.current ()))
    (if r.pr_validated > 0 then
       Printf.sprintf " (%d graph(s) checked)" r.pr_validated
     else "");
  if r.pr_quarantined > 0 then
    addf "quarantine: %d candidate(s) held\n" r.pr_quarantined;
  (match r.pr_degraded with
  | Some reason ->
      addf "degraded: %s (plan is best-so-far, not cached)\n"
        (Govern.Budget.reason_name reason)
  | None -> ());
  (match Maint.depth t.smaint with
  | 0 -> ()
  | n -> addf "maintenance: queued(%d)\n" n);
  List.iter
    (fun e -> addf "guard: contained %s\n" (Guard.Error.to_string e))
    r.pr_errors;
  (match r.pr_steps with
  | [] ->
      addf "no beneficial summary-table rewrite found\n";
      (* per-summary diagnostics; the filter verdicts come from the same
         candidate index the planner used, the rejection reasons from the
         same typed trace the matcher records *)
      let _, skipped =
        Plancache.Planner.classify t.splanner ~cat
          ~epoch:(Store.epoch t.sstore) ~mvs:fresh g
      in
      let was_skipped (mv : Astmatch.Rewrite.mv) =
        List.exists
          (fun (s : Astmatch.Rewrite.mv) -> s.mv_name = mv.mv_name)
          skipped
      in
      List.iter
        (fun (mv : Astmatch.Rewrite.mv) ->
          if was_skipped mv then
            addf "  %s: %s\n" mv.mv_name
              (Obs.Trace.describe Obs.Trace.Filtered_by_index)
          else
            let trace = Obs.Trace.create () in
            let sites =
              Astmatch.Navigator.find_matches ~trace cat ~query:g
                ~ast:mv.mv_graph
            in
            if sites <> [] then (
              (* a contained error is the real story, not cost *)
              match
                List.find_opt
                  (fun (e : Guard.Error.t) -> e.err_mv = Some mv.mv_name)
                  r.pr_errors
              with
              | Some e ->
                  let reason =
                    match e.Guard.Error.err_kind with
                    | Guard.Error.Ill_formed m -> Obs.Trace.Ir_invalid m
                    | _ -> Obs.Trace.Contained_error (Guard.Error.to_string e)
                  in
                  addf "  %s: rejected — %s [%s]\n" mv.mv_name
                    (Obs.Trace.describe reason)
                    (Obs.Trace.reason_code reason)
              | None ->
                  addf
                    "  %s: matches, but the rewrite is not estimated cheaper\n"
                    mv.mv_name)
            else begin
              addf "  %s: no match\n" mv.mv_name;
              if verbose then
                String.split_on_char '\n' (Obs.Trace.render trace)
                |> List.filter (fun l -> l <> "")
                |> List.iter (fun l -> addf "    %s\n" l)
              else
                Obs.Trace.rejections trace
                |> List.map (fun reason ->
                       Printf.sprintf "%s [%s]" (Obs.Trace.describe reason)
                         (Obs.Trace.reason_code reason))
                |> List.sort_uniq compare
                |> List.iter (fun l -> addf "    - %s\n" l)
            end)
        fresh
  | steps ->
      List.iter
        (fun (s : Astmatch.Rewrite.step) ->
          addf "rewrite: box %d answered from %s (%s match%s)\n" s.target
            s.used_mv
            (if s.exact then "exact" else "compensated")
            (if Prove.is_proved s.proved then ", proved" else ""))
        steps;
      addf "proved: %s\n"
        (match Astmatch.Rewrite.steps_proof steps with
        | Prove.Proved -> "yes — static certificate on every step"
        | Prove.Unknown why -> "no — " ^ why);
      addf "rewritten cost estimate: %.0f\n"
        (Astmatch.Cost.graph_cost cat r.pr_graph);
      addf "rewritten SQL: %s\n" (Qgm.Unparse.to_sql r.pr_graph);
      if verbose then begin
        (* re-run routing (uncached) with a full trace: the span tree shows
           every candidate's navigate/match/cost verdicts, not just the
           winning steps *)
        let tr = Obs.Trace.create () in
        ignore (Astmatch.Rewrite.best ~cat ~trace:tr g fresh);
        addf "trace:\n";
        String.split_on_char '\n' (Obs.Trace.render tr)
        |> List.filter (fun l -> l <> "")
        |> List.iter (fun l -> addf "  %s\n" l)
      end);
  Buffer.contents buf

let explain ?verbose t q =
  with_snapshot t ~write:false (fun () -> explain_in_snapshot ?verbose t q)

(* ---------------- statements ---------------- *)

(* Definition-time lint of one stored summary against the rest of the
   store (overlap detection) and its maintainability verdict. *)
let lint_entry t (e : Store.entry) =
  let existing =
    List.filter_map
      (fun (o : Store.entry) ->
        if o.Store.e_name = e.Store.e_name then None
        else Some (o.Store.e_name, o.Store.e_graph))
      (Store.entries t.sstore)
  in
  Lint.Advisor.lint ~existing
    ~incremental:(e.Store.e_incr <> None)
    (Engine.Db.catalog t.sdb) e.Store.e_graph

let lint_summaries t =
  List.map
    (fun (e : Store.entry) -> (e.Store.e_name, lint_entry t e))
    (Store.entries t.sstore)

let stmt_label = function
  | A.Create_table _ -> "CREATE TABLE"
  | A.Insert _ -> "INSERT"
  | A.Delete _ -> "DELETE"
  | A.Copy_from _ -> "COPY FROM"
  | A.Copy_to _ -> "COPY TO"
  | A.Create_summary _ -> "CREATE SUMMARY TABLE"
  | A.Drop_summary _ -> "DROP SUMMARY TABLE"
  | A.Refresh_summary _ -> "REFRESH SUMMARY TABLE"
  | A.Select _ -> "SELECT"
  | A.Explain_rewrite _ -> "EXPLAIN REWRITE"
  | A.Explain_plan _ -> "EXPLAIN"

let exec_stmt_dispatch t stmt =
  match stmt with
  | A.Create_table { ct_name; ct_cols; ct_constraints } ->
      do_create_table t ct_name ct_cols ct_constraints
  | A.Insert { ins_table; ins_cols; ins_rows } ->
      do_insert t ins_table ins_cols ins_rows
  | A.Delete { del_table; del_where } -> do_delete t del_table del_where
  | A.Copy_from { cf_table; cf_path; cf_header } ->
      do_copy_from t cf_table cf_path cf_header
  | A.Copy_to { ct2_table; ct2_path } -> do_copy_to t ct2_table ct2_path
  | A.Create_summary { cs_name; cs_query } -> (
      let sql = Sqlsyn.Pretty.query_to_string cs_query in
      try
        let store', db' = Store.define t.sstore t.sdb ~name:cs_name ~sql in
        t.sstore <- store';
        t.sdb <- db';
        let e = Option.get (Store.find store' cs_name) in
        let warnings =
          List.map
            (fun d -> "\n  lint " ^ Lint.Advisor.render d)
            (lint_entry t e)
        in
        Msg
          (Printf.sprintf "summary table %s created (%d rows%s)%s" cs_name
             (R.cardinality (Engine.Db.get_exn db' cs_name))
             (match e.Store.e_incr with
             | Some _ -> ", incrementally maintainable"
             | None -> "")
             (String.concat "" warnings))
      with Store.Mv_error m -> err "%s" m)
  | A.Drop_summary name -> (
      try
        let store', db' = Store.drop t.sstore t.sdb name in
        t.sstore <- store';
        t.sdb <- db';
        Maint.remove t.smaint name;
        Msg (Printf.sprintf "summary table %s dropped" name)
      with Store.Mv_error m -> err "%s" m)
  | A.Refresh_summary name -> (
      try
        let store', db' = Store.refresh_full t.sstore t.sdb name in
        t.sstore <- store';
        t.sdb <- db';
        (* a manual refresh clears any pending or quarantined auto-task *)
        Maint.remove t.smaint name;
        Msg (Printf.sprintf "summary table %s refreshed" name)
      with Store.Mv_error m -> err "%s" m)
  | A.Select q ->
      let rel, _ = run_query t q in
      Table rel
  | A.Explain_rewrite (q, verbose) -> Plan (explain ~verbose t q)
  | A.Explain_plan q ->
      let g = build_query t q in
      let cat = Engine.Db.catalog t.sdb in
      (* show the plan that would actually run, after routing *)
      let g =
        if not t.srewrite then g
        else (plan_query t g).Plancache.Planner.pr_graph
      in
      Plan (Astmatch.Cost.explain cat g)

(* Statement classification for the shared-state discipline: mutating
   statements serialize through the writer lock and publish atomically;
   everything else runs against a lock-free snapshot. *)
let stmt_writes = function
  | A.Create_table _ | A.Insert _ | A.Delete _ | A.Copy_from _
  | A.Create_summary _ | A.Drop_summary _ | A.Refresh_summary _ ->
      true
  | A.Copy_to _ | A.Select _ | A.Explain_rewrite _ | A.Explain_plan _ ->
      false

(* The durability record for a just-executed write statement. COPY FROM
   logs the rows it loaded (stashed by do_copy_from); everything else
   round-trips through the pretty-printer and re-executes at replay. *)
let commit_of t stmt =
  match stmt with
  | A.Copy_from { cf_table; _ } ->
      Commit_rows { cr_table = cf_table; cr_rows = t.scopy_rows }
  | _ -> Commit_sql (Sqlsyn.Pretty.stmt_to_string stmt)

(* Division_by_zero is a raw OCaml exception wherever the engine evaluates
   expressions (constant folding, INSERT values, predicates, outputs);
   surface it as a proper session error with statement context. *)
let exec_stmt t stmt =
  drain_maintenance t;
  let write = stmt_writes stmt in
  with_snapshot t ~write (fun () ->
      t.scopy_rows <- [];
      let out =
        try exec_stmt_dispatch t stmt
        with Division_by_zero -> err "division by zero in %s" (stmt_label stmt)
      in
      (* append-before-publish: a hook failure aborts the whole statement
         (nothing publishes), so no write is ever visible without its log
         record. Read-only statements never reach the hook. *)
      (match t.son_commit with
      | Some hook when write -> hook (commit_of t stmt)
      | _ -> ());
      t.scopy_rows <- [];
      out)

(* WAL replay of a [Commit_rows] record: the integrity checks and the
   acknowledged outcome already happened in the crashed process — just fold
   the rows through summary maintenance and append them. Runs before the
   durability hook is installed, so nothing is re-logged. *)
let replay_rows t ~table ~rows =
  with_snapshot t ~write:true (fun () ->
      let cat = Engine.Db.catalog t.sdb in
      let tbl =
        match Catalog.find_table cat table with
        | Some tbl -> tbl
        | None -> err "unknown table %s" table
      in
      let store', db', went_stale =
        Store.apply_insert t.sstore t.sdb ~table ~rows
      in
      t.sstore <- store';
      List.iter (Maint.enqueue t.smaint) went_stale;
      let current =
        match Engine.Db.get db' table with
        | Some r -> r
        | None -> R.empty (Catalog.column_names tbl)
      in
      t.sdb <- Engine.Db.put db' table (R.append current rows))

let exec_sql t sql =
  (* statement-at-a-time: statements before a syntax error have executed
     and their effects persist; the error then surfaces *)
  let cursor =
    try Sqlsyn.Parser.script_start sql
    with Sqlsyn.Lexer.Lex_error (m, p) -> err "lexical error at offset %d: %s" p m
  in
  let rec loop acc =
    match
      try Sqlsyn.Parser.script_next cursor with
      | Sqlsyn.Parser.Parse_error (m, p) ->
          err "parse error at offset %d: %s" p m
    with
    | None -> List.rev acc
    | Some stmt -> loop (exec_stmt t stmt :: acc)
  in
  loop []
