module E = Qgm.Expr
module B = Qgm.Box
module G = Qgm.Graph
module R = Data.Relation
module V = Data.Value

exception Mv_error of string

let err fmt = Format.kasprintf (fun s -> raise (Mv_error s)) fmt
let norm = String.lowercase_ascii

type merge_fn = M_add | M_min | M_max

type incr_plan = {
  ip_keys : string list;
  ip_aggs : (string * merge_fn) list;
  ip_count : string option;
  ip_delete_safe : bool;
}

type entry = {
  e_name : string;
  e_sql : string;
  e_graph : G.t;
  e_cols : (string * V.ty) list;
  e_tables : string list;
  e_fresh : bool;
  e_incr : incr_plan option;
  e_version : int;
}

module Smap = Map.Make (String)

(* The epoch counts planning-relevant changes: summary DDL/refresh, DML
   folded through the store, and (via [touch]) table DDL in the session.
   The plan cache stamps every decision with the epoch it was made under
   and refuses to serve it under any other — see Plancache.Cache. *)
type t = { s_map : entry Smap.t; s_epoch : int }

let empty = { s_map = Smap.empty; s_epoch = 0 }
let entries t = List.map snd (Smap.bindings t.s_map)
let find t name = Smap.find_opt (norm name) t.s_map
let epoch t = t.s_epoch
let touch t = { t with s_epoch = t.s_epoch + 1 }

let stale t =
  List.filter_map
    (fun e -> if e.e_fresh then None else Some e.e_name)
    (entries t)
let base_tables g = Plancache.Candidates.footprint g

(* Detect the insert-incremental shape: a single SELECT / GROUP BY / SELECT
   block over base tables, simple grouping, no HAVING, additive-mergeable
   aggregates (COUNT/SUM/MIN/MAX without DISTINCT), outputs that are plain
   renames, and each base table scanned at most once. *)
let incr_plan_of cat g =
  let root = G.box g (G.root g) in
  match root.B.body with
  | B.Select u -> (
      match (u.B.sel_preds, u.B.sel_quants, u.B.sel_distinct) with
      | [], [ uq ], false -> (
          match (G.box g uq.B.q_box).B.body with
          | B.Group grp -> (
              match grp.B.grp_grouping with
              | B.Gsets _ -> None
              | B.Simple keys -> (
                  match (G.box g grp.B.grp_quant.B.q_box).B.body with
                  | B.Select low
                    when List.for_all
                           (fun q ->
                             q.B.q_kind = B.Foreach
                             && B.is_base (G.box g q.B.q_box))
                           low.B.sel_quants ->
                      let tables =
                        List.map
                          (fun q ->
                            match (G.box g q.B.q_box).B.body with
                            | B.Base { bt_table; _ } -> norm bt_table
                            | _ -> assert false)
                          low.B.sel_quants
                      in
                      if
                        List.length tables
                        <> List.length (List.sort_uniq compare tables)
                      then None
                      else
                        (* every root output must be a plain rename *)
                        let rename_of (n, e) =
                          match e with
                          | E.Col { B.col; _ } -> Some (n, col)
                          | _ -> None
                        in
                        let renames = List.map rename_of u.B.sel_outs in
                        if List.exists (fun r -> r = None) renames then None
                        else
                          let renames = List.filter_map (fun r -> r) renames in
                          let merge_of col =
                            List.find_map
                              (fun (n, { B.agg; _ }) ->
                                if norm n = norm col then
                                  match (agg.E.fn, agg.E.distinct) with
                                  | (E.Count | E.Count_star | E.Sum), false ->
                                      Some (Some M_add)
                                  | E.Min, false -> Some (Some M_min)
                                  | E.Max, false -> Some (Some M_max)
                                  | _ -> Some None
                                else None)
                              grp.B.grp_aggs
                          in
                          let keys_out = ref [] and aggs_out = ref [] in
                          let ok = ref true in
                          List.iter
                            (fun (out_name, src) ->
                              if List.exists (fun k -> norm k = norm src) keys
                              then keys_out := !keys_out @ [ out_name ]
                              else
                                match merge_of src with
                                | Some (Some m) ->
                                    aggs_out := !aggs_out @ [ (out_name, m) ]
                                | Some None | None -> ok := false)
                            renames;
                          (* every grouping key must survive at the output,
                             otherwise merging by key is ambiguous *)
                          let all_keys_out =
                            List.for_all
                              (fun k ->
                                List.exists
                                  (fun (_, src) -> norm src = norm k)
                                  renames)
                              keys
                          in
                          if !ok && all_keys_out then begin
                            let count_col =
                              List.find_map
                                (fun (out_name, src) ->
                                  List.find_map
                                    (fun (n, { B.agg; _ }) ->
                                      if
                                        norm n = norm src
                                        && agg.E.fn = E.Count_star
                                      then Some out_name
                                      else None)
                                    grp.B.grp_aggs)
                                renames
                            in
                            (* deletion can only be folded in when every
                               SUM argument is non-nullable: subtracting
                               from a sum cannot restore the NULL that a
                               group of all-NULL arguments requires *)
                            let sums_nonnull =
                              List.for_all
                                (fun (n, { B.agg; arg }) ->
                                  ignore n;
                                  match (agg.E.fn, arg) with
                                  | E.Sum, Some a ->
                                      not
                                        (Astmatch.Props.column_nullable cat g
                                           grp.B.grp_quant.B.q_box a)
                                  | _ -> true)
                                grp.B.grp_aggs
                            in
                            Some
                              {
                                ip_keys = !keys_out;
                                ip_aggs = !aggs_out;
                                ip_count = count_col;
                                ip_delete_safe = sums_nonnull;
                              }
                          end
                          else None
                  | _ -> None))
          | _ -> None)
      | _ -> None)
  | _ -> None

let register_catalog db name cols =
  let cat = Engine.Db.catalog db in
  let tbl =
    {
      Catalog.tbl_name = name;
      tbl_cols =
        List.map
          (fun (n, ty) -> { Catalog.col_name = n; col_ty = ty; nullable = true })
          cols;
      primary_key = [];
      unique_keys = [];
      foreign_keys = [];
    }
  in
  Engine.Db.with_catalog db (Catalog.add_table cat tbl)

let define store db ~name ~sql =
  if Smap.mem (norm name) store.s_map then
    err "summary table %s already exists" name;
  if Catalog.mem_table (Engine.Db.catalog db) name then
    err "a table named %s already exists" name;
  let ast_q =
    try Sqlsyn.Parser.parse_query sql
    with Sqlsyn.Parser.Parse_error (m, p) ->
      err "parse error in summary definition at offset %d: %s" p m
  in
  let graph =
    try Qgm.Builder.build (Engine.Db.catalog db) ast_q
    with Qgm.Builder.Sem_error m -> err "invalid summary definition: %s" m
  in
  (if Lint.Level.candidates_on () then
     match Lint.Validate.check ~cat:(Engine.Db.catalog db) graph with
     | [] -> ()
     | vs ->
         err "summary definition produced ill-formed IR (%s)"
           (Lint.Validate.summary vs));
  let cols = Qgm.Typing.infer_outputs (Engine.Db.catalog db) graph in
  let contents = Engine.Exec.run db graph in
  let db = register_catalog db name cols in
  let db = Engine.Db.put db name contents in
  let entry =
    {
      e_name = name;
      e_sql = sql;
      e_graph = graph;
      e_cols = cols;
      e_tables = base_tables graph;
      e_fresh = true;
      e_incr = incr_plan_of (Engine.Db.catalog db) graph;
      (* the definition version is the epoch this incarnation first exists
         under; a re-CREATE after DROP necessarily gets a fresh one *)
      e_version = store.s_epoch + 1;
    }
  in
  (touch { store with s_map = Smap.add (norm name) entry store.s_map }, db)

(* Recovery path: re-register a summary table from its definition SQL and
   a recovered payload, WITHOUT executing the defining query. The graph and
   incremental plan are rebuilt against the recovered catalog (they are
   derived state); the payload rows are trusted as-is — the recovery ladder
   in Durable.Manager verifies them against a re-derivation afterwards and
   degrades the entry if they fail. *)
let restore store db ~name ~sql ~fresh ~rows =
  if Smap.mem (norm name) store.s_map then
    err "summary table %s already exists" name;
  if Catalog.mem_table (Engine.Db.catalog db) name then
    err "a table named %s already exists" name;
  let ast_q =
    try Sqlsyn.Parser.parse_query sql
    with
    | Sqlsyn.Parser.Parse_error (m, p) ->
        err "parse error in recovered summary definition at offset %d: %s" p m
    | Sqlsyn.Lexer.Lex_error (m, p) ->
        err "lexical error in recovered summary definition at offset %d: %s" p m
  in
  let graph =
    try Qgm.Builder.build (Engine.Db.catalog db) ast_q
    with Qgm.Builder.Sem_error m -> err "invalid recovered summary definition: %s" m
  in
  let cols = Qgm.Typing.infer_outputs (Engine.Db.catalog db) graph in
  let contents =
    try R.create (List.map fst cols) rows
    with Invalid_argument m -> err "recovered payload for %s: %s" name m
  in
  let db = register_catalog db name cols in
  let db = Engine.Db.put db name contents in
  let entry =
    {
      e_name = name;
      e_sql = sql;
      e_graph = graph;
      e_cols = cols;
      e_tables = base_tables graph;
      e_fresh = fresh;
      e_incr = incr_plan_of (Engine.Db.catalog db) graph;
      e_version = store.s_epoch + 1;
    }
  in
  (touch { store with s_map = Smap.add (norm name) entry store.s_map }, db)

(* Degraded recovery: drop a payload that failed post-recovery verification
   and leave the entry stale — excluded from rewriting until the deferred
   maintenance queue (or a manual REFRESH) rebuilds it. *)
let quarantine_payload store db name =
  match find store name with
  | None -> err "unknown summary table %s" name
  | Some e ->
      let db = Engine.Db.put db e.e_name (R.empty (List.map fst e.e_cols)) in
      ( touch
          {
            store with
            s_map =
              Smap.add (norm name) { e with e_fresh = false } store.s_map;
          },
        db )

let drop store db name =
  match find store name with
  | None -> err "unknown summary table %s" name
  | Some e ->
      let db = Engine.Db.drop db name in
      let db =
        Engine.Db.with_catalog db
          (Catalog.remove_table (Engine.Db.catalog db) e.e_name)
      in
      (touch { store with s_map = Smap.remove (norm name) store.s_map }, db)

let refresh_full ?budget store db name =
  match find store name with
  | None -> err "unknown summary table %s" name
  | Some e ->
      Guard.Fault.hit Guard.Fault.Refresh;
      let contents = Engine.Exec.run ?budget db e.e_graph in
      let db = Engine.Db.put db e.e_name contents in
      ( touch
          {
            store with
            s_map =
              Smap.add (norm name)
                { e with e_fresh = true; e_version = store.s_epoch + 1 }
                store.s_map;
          },
        db )

(* Merge a delta aggregation into the stored contents, by group key.
   [sign = -1] subtracts (delete maintenance); groups whose COUNT-star
   column reaches zero are dropped. *)
let merge_delta ?(sign = 1) plan current delta =
  let cols = Array.to_list (R.columns current) in
  let key_idx = List.map (R.column_index current) plan.ip_keys in
  let agg_idx =
    List.map (fun (n, m) -> (R.column_index current n, m)) plan.ip_aggs
  in
  let tbl = Hashtbl.create (R.cardinality current) in
  let keyed row = List.map (fun i -> row.(i)) key_idx in
  let order = ref [] in
  Array.iter
    (fun row ->
      let k = keyed row in
      Hashtbl.replace tbl k (Array.copy row);
      order := k :: !order)
    (R.rows_array current);
  let new_keys = ref [] in
  Array.iter
    (fun drow ->
      let k = keyed drow in
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.replace tbl k (Array.copy drow);
          new_keys := k :: !new_keys
      | Some row ->
          List.iter
            (fun (i, m) ->
              row.(i) <-
                (match m with
                | M_add ->
                    let d =
                      if sign >= 0 then drow.(i)
                      else if drow.(i) = V.Null then V.Null
                      else V.neg drow.(i)
                    in
                    if row.(i) = V.Null then d
                    else if d = V.Null then row.(i)
                    else V.add row.(i) d
                | M_min ->
                    if row.(i) = V.Null then drow.(i)
                    else if drow.(i) = V.Null then row.(i)
                    else if V.compare drow.(i) row.(i) < 0 then drow.(i)
                    else row.(i)
                | M_max ->
                    if row.(i) = V.Null then drow.(i)
                    else if drow.(i) = V.Null then row.(i)
                    else if V.compare drow.(i) row.(i) > 0 then drow.(i)
                    else row.(i)))
            agg_idx)
    (R.rows_array delta);
  let rows =
    List.rev_map (fun k -> Hashtbl.find tbl k) !order
    @ List.rev_map (fun k -> Hashtbl.find tbl k) !new_keys
  in
  let rows =
    match plan.ip_count with
    | Some c when sign < 0 ->
        let ci = R.column_index current c in
        List.filter
          (fun row ->
            match row.(ci) with V.Int n -> n > 0 | _ -> true)
          rows
    | _ -> rows
  in
  R.create cols rows

let apply_insert store db ~table ~rows =
  let table = norm table in
  let went_stale = ref [] in
  let smap, db =
    Smap.fold
      (fun key e (smap, db) ->
        if not (List.mem table e.e_tables) then (smap, db)
        else
          match (e.e_incr, e.e_fresh) with
          | Some plan, true ->
              (* evaluate the definition against a database where the changed
                 table holds only the delta *)
              let cols =
                match Catalog.find_table (Engine.Db.catalog db) table with
                | Some t -> Catalog.column_names t
                | None -> []
              in
              let delta_db = Engine.Db.put db table (R.create cols rows) in
              let delta = Engine.Exec.run delta_db e.e_graph in
              let current = Engine.Db.get_exn db e.e_name in
              let merged = merge_delta plan current delta in
              (smap, Engine.Db.put db e.e_name merged)
          | _ ->
              if e.e_fresh then went_stale := e.e_name :: !went_stale;
              (Smap.add key { e with e_fresh = false } smap, db))
      store.s_map (store.s_map, db)
  in
  (touch { store with s_map = smap }, db, List.rev !went_stale)

let deletable plan =
  plan.ip_count <> None
  && plan.ip_delete_safe
  && List.for_all (fun (_, m) -> m = M_add) plan.ip_aggs

let apply_delete store db ~table ~rows =
  let table = norm table in
  let went_stale = ref [] in
  let smap, db =
    Smap.fold
      (fun key e (smap, db) ->
        if not (List.mem table e.e_tables) then (smap, db)
        else
          match (e.e_incr, e.e_fresh) with
          | Some plan, true when deletable plan ->
              let cols =
                match Catalog.find_table (Engine.Db.catalog db) table with
                | Some t -> Catalog.column_names t
                | None -> []
              in
              let delta_db = Engine.Db.put db table (R.create cols rows) in
              let delta = Engine.Exec.run delta_db e.e_graph in
              let current = Engine.Db.get_exn db e.e_name in
              let merged = merge_delta ~sign:(-1) plan current delta in
              (smap, Engine.Db.put db e.e_name merged)
          | _ ->
              if e.e_fresh then went_stale := e.e_name :: !went_stale;
              (Smap.add key { e with e_fresh = false } smap, db))
      store.s_map (store.s_map, db)
  in
  (touch { store with s_map = smap }, db, List.rev !went_stale)

let rewritable store =
  List.filter_map
    (fun e ->
      if e.e_fresh then
        Some
          {
            Astmatch.Rewrite.mv_name = e.e_name;
            mv_graph = e.e_graph;
            mv_version = e.e_version;
          }
      else None)
    (entries store)
