(** Concurrency-safe shared database state for multi-session serving.

    A {!t} owns the canonical pair (engine database, summary-table store) as
    one immutable {!snapshot} behind an atomic cell. Because {!Engine.Db}
    and {!Store} are functional values, publishing a new snapshot is a
    single atomic pointer store — copy-on-write at the statement
    granularity:

    - {e Readers} ({!snapshot}) take the current pair with one atomic load
      and never block, never lock, and never observe a half-applied
      statement: a DML statement's base-table change and its incremental
      summary maintenance land in the {e same} snapshot or not at all.
      The {!Store.epoch} of the pair they got identifies exactly which
      version of the world they are planning against (the plan caches are
      keyed by it already).
    - {e Writers} ({!with_write}) serialize on one mutex, transform the
      latest snapshot, and publish the result atomically. Every mutating
      path already bumps the store epoch ({!Store.apply_insert},
      {!Store.define}, {!Store.touch}, ...), so a published write
      invalidates stale cached plans in every session. A writer that
      raises publishes {e nothing} — the failed statement rolls back
      wholesale.

    Sessions bind to a [t] with {!Session.attach} (or convert with
    {!Session.share}); each session keeps its own planner, plan cache and
    quarantine (domain-local, epoch-keyed), so the only cross-domain
    mutable state is this snapshot cell plus the atomic metrics
    registry. *)

type snapshot = { sn_db : Engine.Db.t; sn_store : Store.t }

type t

val create : Engine.Db.t -> Store.t -> t

(** One atomic load: a consistent (db, store) pair. *)
val snapshot : t -> snapshot

(** The {!Store.epoch} of the current snapshot. *)
val epoch : t -> int

(** [with_write t f] runs [f] on the latest snapshot with the writer lock
    held and atomically publishes the snapshot [f] returns. If [f] raises,
    nothing is published and the exception propagates. *)
val with_write : t -> (snapshot -> snapshot * 'a) -> 'a

(** Serialized writes published so far (monotonic; diagnostics). *)
val writes : t -> int
