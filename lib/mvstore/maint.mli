(** The deferred-maintenance queue: self-healing for stale summary tables.

    When DML makes a summary table stale (observed by
    {!Store.apply_insert}/{!Store.apply_delete}), the session enqueues it
    here and the queue is drained opportunistically at statement
    boundaries, under the session's maintenance budget. Time is counted in
    drain ticks (one per statement boundary), not wall-clock, so the
    backoff schedule is deterministic under test.

    Refresh failures are classified ({!Guard.Error}) and retried with
    exponential backoff ([backoff_base * 2^(attempts-1)] ticks); after
    [max_retries] failed attempts the table is {e quarantined}: dropped
    from the queue and left stale until a manual [REFRESH] or [DROP]
    ({!remove}) clears the hold. A refresh stopped by budget exhaustion is
    {e deferred} (retried next tick) without counting as a failure. *)

type t

type task = {
  mt_mv : string;
  mutable mt_attempts : int;    (** failed refresh attempts so far *)
  mutable mt_not_before : int;  (** earliest drain tick for the next try *)
}

type quarantined = { mq_mv : string; mq_error : Guard.Error.t }

(** [create ?max_retries ?backoff_base ()] — defaults: 3 retries, base
    backoff of 2 ticks. *)
val create : ?max_retries:int -> ?backoff_base:int -> unit -> t

(** Idempotent; a quarantined table is not re-enqueued. *)
val enqueue : t -> string -> unit

(** Forget a table entirely (queue and quarantine) — on DROP or manual
    REFRESH. *)
val remove : t -> string -> unit

(** Advance the clock one statement boundary. *)
val tick : t -> unit

(** Tables whose next attempt is due at the current tick. *)
val due : t -> string list

val record_success : t -> string -> unit
val record_failure : t -> string -> Guard.Error.t -> unit

(** Budget ran out before the refresh finished: retry next tick, no
    penalty. *)
val defer : t -> string -> unit

val is_queued : t -> string -> bool
val is_quarantined : t -> string -> bool

(** Tables currently awaiting auto-refresh. *)
val depth : t -> int

val tasks : t -> task list
val quarantined : t -> quarantined list

(** Lifetime successful auto-refreshes / failed attempts. *)
val refreshed : t -> int

val failures : t -> int

(** Multi-line rendering for [\health]. *)
val describe : t -> string
