(* Shared database state: an atomic snapshot cell plus one writer mutex.

   The whole concurrency story hangs on Db.t and Store.t being functional:
   a snapshot is just a pair of pointers, so readers pay one Atomic.get
   and writers publish with one Atomic.set under the lock. The store epoch
   inside the snapshot is what ties this to the rest of the system — every
   plan-cache entry and quarantine observation is stamped with it, so
   sessions on other domains notice a published write the moment they plan
   against the new snapshot. *)

type snapshot = { sn_db : Engine.Db.t; sn_store : Store.t }

type t = {
  state : snapshot Atomic.t;
  write_lock : Mutex.t;
  writes : int Atomic.t;
}

let m_writes = Obs.Metrics.counter "shared.writes"
let m_snapshots = Obs.Metrics.counter "shared.snapshot_reads"

let create db store =
  {
    state = Atomic.make { sn_db = db; sn_store = store };
    write_lock = Mutex.create ();
    writes = Atomic.make 0;
  }

let snapshot t =
  Obs.Metrics.incr m_snapshots;
  Atomic.get t.state

let epoch t = Store.epoch (Atomic.get t.state).sn_store

let with_write t f =
  Mutex.protect t.write_lock (fun () ->
      let snap, r = f (Atomic.get t.state) in
      Atomic.set t.state snap;
      ignore (Atomic.fetch_and_add t.writes 1);
      Obs.Metrics.incr m_writes;
      r)

let writes t = Atomic.get t.writes
