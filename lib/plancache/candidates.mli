(** The candidate index: cheap eligibility filtering over the MV store,
    run before any pair-wise matching (the analogue of DB2's filtering
    phase that precedes the paper's navigator).

    Each summary table is keyed by its *base-table footprint* (the sorted
    set of base tables its definition reads) and a *dedup bit* (whether the
    definition aggregates or eliminates duplicates anywhere: GROUP BY,
    SELECT DISTINCT, or a duplicate-removing UNION). A candidate is
    eligible for a query when

    - every footprint table is either read by the query too, or is the
      parent of an RI (foreign-key) join from another footprint table —
      the only situation in which the matcher can prove an AST-only join
      lossless (section 4.1.1's extra children); and
    - if the candidate dedups, the query has a dedup path as well — a
      summary that has collapsed duplicates can never answer a query that
      still observes them, while the converse (query aggregates, summary
      does not) remains matchable.

    Eligibility is decided once per distinct (footprint, bit) key and
    shared by all candidates under that key. *)

type t

(** Build the index over the rewritable (fresh) summary tables. *)
val build : Astmatch.Rewrite.mv list -> t

val size : t -> int

(** Names of the indexed candidates, in store order. *)
val names : t -> string list

(** Sorted, case-folded base tables read by a graph. *)
val footprint : Qgm.Graph.t -> string list

(** Does the graph aggregate or eliminate duplicates anywhere? *)
val dedups : Qgm.Graph.t -> bool

(** [eligible t cat query] partitions the candidates into (kept, skipped),
    preserving store order within each side. *)
val eligible :
  t ->
  Catalog.t ->
  Qgm.Graph.t ->
  Astmatch.Rewrite.mv list * Astmatch.Rewrite.mv list
