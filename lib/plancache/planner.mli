(** The rewrite-planning entry point: candidate filtering + memoized
    routing decisions + fault isolation.

    [plan] fingerprints the query ({!Qgm.Fingerprint}), serves a cached
    decision when the store epoch still matches, and otherwise filters the
    summary tables through the candidate index ({!Candidates}) and the
    quarantine ({!Guard.Quarantine}) before handing only the plausible ones
    to {!Astmatch.Rewrite.best}. Negative decisions ("no beneficial
    rewrite") are cached too, so a hot query that cannot be rewritten stops
    paying for matching as well.

    Planning never raises: any exception inside the rewrite pipeline is
    contained ({!Guard.Sandbox}), classified, counted, quarantines the
    offending (fingerprint x summary-table) pair, and at worst degrades the
    report to the unrewritten input graph. *)

type t

type decision =
  | No_rewrite
  | Rewrite of Qgm.Graph.t * Astmatch.Rewrite.step list

type report = {
  pr_graph : Qgm.Graph.t;  (** graph to execute (the input when unrewritten) *)
  pr_steps : Astmatch.Rewrite.step list;
  pr_hit : bool;           (** served from the plan cache *)
  pr_fingerprint : string; (** [""] only when planning itself fell over *)
  pr_attempted : int;      (** candidates that reached the matcher *)
  pr_filtered : int;       (** candidates skipped by the index *)
  pr_quarantined : int;    (** candidates skipped by the quarantine *)
  pr_errors : Guard.Error.t list;
      (** failures contained during {e this} planning ([] on a hit) *)
  pr_degraded : Govern.Budget.reason option;
      (** when set, the resource budget ran out mid-planning: the decision
          is best-so-far (possibly the base plan), was {e not} cached, and
          a re-plan under an adequate budget will try again *)
  pr_validated : int;
      (** static-validator runs during this planning (candidates plus the
          final plan, per the ASTQL_VALIDATE level; 0 on a hit) *)
}
(** On a cache hit, [pr_attempted]/[pr_filtered]/[pr_quarantined] report
    the counts from the planning that produced the entry (nothing was
    attempted now). *)

(** [create ?capacity ?quarantine_capacity ()] — [capacity] bounds the LRU
    plan cache (default 256); [quarantine_capacity] bounds the quarantine
    (default 256 fingerprints). *)
val create : ?capacity:int -> ?quarantine_capacity:int -> unit -> t

(** [plan t ~cat ~epoch ~mvs g] routes [g] through the fresh summary
    tables [mvs]. [epoch] must change whenever [mvs], their contents, the
    catalog, or base-table data change (see {!Cache}); the candidate index
    is rebuilt lazily per epoch. Never raises (see above).

    With [trace], the attempt is recorded as a [plan] span whose children
    are the per-candidate verdicts: index-filtered and quarantined
    candidates appear as typed rejections, and the ones handed to the
    matcher carry the full navigate/match/cost sub-tree.

    With [budget], matching/routing is metered; if the budget runs out the
    best-so-far decision is served with [pr_degraded] set and is {e not}
    cached. [Budget_exhausted] never escapes [plan]. *)
val plan :
  ?trace:Obs.Trace.t ->
  ?budget:Govern.Budget.t ->
  t ->
  cat:Catalog.t ->
  epoch:int ->
  mvs:Astmatch.Rewrite.mv list ->
  Qgm.Graph.t ->
  report

(** Partition [mvs] as the planner's candidate filter would for this query
    (diagnostics for EXPLAIN REWRITE). *)
val classify :
  t ->
  cat:Catalog.t ->
  epoch:int ->
  mvs:Astmatch.Rewrite.mv list ->
  Qgm.Graph.t ->
  Astmatch.Rewrite.mv list * Astmatch.Rewrite.mv list

(** [quarantine t ~fp mvs] quarantines each [(summary table, definition
    version)] pair in [mvs] for the query fingerprinted [fp] (used by the
    session when a rewritten plan failed at execution or mis-verified),
    counts the newly added pairs in the stats, and drops the
    now-discredited cache entry for [fp]. Entries expire when the table's
    definition version moves (REFRESH / re-CREATE), not on unrelated
    epoch churn. *)
val quarantine : t -> fp:string -> (string * int) list -> unit

(** Live counters (mutated by subsequent planning; {!Stats.copy} to
    snapshot). *)
val stats : t -> Stats.t

(** Entries currently cached. *)
val cache_length : t -> int

(** Quarantined (fingerprint x summary-table) pairs currently held. *)
val quarantine_length : t -> int
