(** The rewrite-planning entry point: candidate filtering + memoized
    routing decisions.

    [plan] fingerprints the query ({!Qgm.Fingerprint}), serves a cached
    decision when the store epoch still matches, and otherwise filters the
    summary tables through the candidate index ({!Candidates}) before
    handing only the plausible ones to {!Astmatch.Rewrite.best}. Negative
    decisions ("no beneficial rewrite") are cached too, so a hot query
    that cannot be rewritten stops paying for matching as well. *)

type t

type decision =
  | No_rewrite
  | Rewrite of Qgm.Graph.t * Astmatch.Rewrite.step list

type report = {
  pr_graph : Qgm.Graph.t;  (** graph to execute (the input when unrewritten) *)
  pr_steps : Astmatch.Rewrite.step list;
  pr_hit : bool;           (** served from the plan cache *)
  pr_fingerprint : string;
  pr_attempted : int;      (** candidates that reached the matcher *)
  pr_filtered : int;       (** candidates skipped by the index *)
}
(** On a cache hit, [pr_attempted]/[pr_filtered] report the counts from
    the planning that produced the entry (nothing was attempted now). *)

(** [create ?capacity ()] — [capacity] bounds the LRU plan cache
    (default 256). *)
val create : ?capacity:int -> unit -> t

(** [plan t ~cat ~epoch ~mvs g] routes [g] through the fresh summary
    tables [mvs]. [epoch] must change whenever [mvs], their contents, the
    catalog, or base-table data change (see {!Cache}); the candidate index
    is rebuilt lazily per epoch. *)
val plan :
  t ->
  cat:Catalog.t ->
  epoch:int ->
  mvs:Astmatch.Rewrite.mv list ->
  Qgm.Graph.t ->
  report

(** Partition [mvs] as the planner's candidate filter would for this query
    (diagnostics for EXPLAIN REWRITE). *)
val classify :
  t ->
  cat:Catalog.t ->
  epoch:int ->
  mvs:Astmatch.Rewrite.mv list ->
  Qgm.Graph.t ->
  Astmatch.Rewrite.mv list * Astmatch.Rewrite.mv list

(** Live counters (mutated by subsequent planning; {!Stats.copy} to
    snapshot). *)
val stats : t -> Stats.t

(** Entries currently cached. *)
val cache_length : t -> int
