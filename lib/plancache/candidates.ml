module B = Qgm.Box
module G = Qgm.Graph

let norm = String.lowercase_ascii

let footprint g =
  G.base_leaves g (G.root g)
  |> List.filter_map (fun id ->
         match (G.box g id).B.body with
         | B.Base { bt_table; _ } -> Some (norm bt_table)
         | _ -> None)
  |> List.sort_uniq compare

let dedups g =
  List.exists
    (fun id ->
      match (G.box g id).B.body with
      | B.Group _ -> true
      | B.Select { sel_distinct = true; _ } -> true
      | B.Union { un_all = false; _ } -> true
      | _ -> false)
    (G.reachable g (G.root g))

type item = {
  it_mv : Astmatch.Rewrite.mv;
  it_key : string list * bool; (* footprint, dedup bit *)
}

type t = item list

let build mvs =
  List.map
    (fun (mv : Astmatch.Rewrite.mv) ->
      { it_mv = mv; it_key = (footprint mv.mv_graph, dedups mv.mv_graph) })
    mvs

let size t = List.length t
let names t = List.map (fun it -> it.it_mv.Astmatch.Rewrite.mv_name) t

(* Every AST footprint table must be read by the query, or joinable
   losslessly: the parent side of a foreign key declared on another
   footprint table. This over-approximates the matcher's extras_lossless
   test (which additionally checks the join predicate), so filtering here
   never rejects a candidate the matcher could accept. *)
let footprint_ok cat ~query_tables ~ast_tables =
  let referenced_extra extra =
    List.exists
      (fun src ->
        src <> extra
        &&
        match Catalog.find_table cat src with
        | Some tbl ->
            List.exists
              (fun fk -> norm fk.Catalog.fk_ref_table = extra)
              tbl.Catalog.foreign_keys
        | None -> false)
      ast_tables
  in
  List.for_all
    (fun t -> List.mem t query_tables || referenced_extra t)
    ast_tables

let eligible t cat g =
  let query_tables = footprint g in
  let query_dedups = dedups g in
  let verdicts = Hashtbl.create 8 in
  let key_ok ((ast_tables, ast_dedups) as key) =
    match Hashtbl.find_opt verdicts key with
    | Some v -> v
    | None ->
        let v =
          footprint_ok cat ~query_tables ~ast_tables
          && ((not ast_dedups) || query_dedups)
        in
        Hashtbl.add verdicts key v;
        v
  in
  let kept, skipped = List.partition (fun it -> key_ok it.it_key) t in
  (List.map (fun it -> it.it_mv) kept, List.map (fun it -> it.it_mv) skipped)
