(** A bounded LRU map from fingerprint to cached value, with epoch-based
    invalidation: every entry is stamped with the store epoch at insertion
    and is dropped (never served) when looked up under a different epoch.
    The epoch is bumped by everything that could change planning inputs
    (summary DDL, refresh, DML, table DDL), so a stale plan cannot
    survive a lookup. *)

type 'a t

(** [create ~capacity] — capacity must be positive. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int
val clear : 'a t -> unit

(** Drop one entry (no-op when absent). Used when a cached decision is
    discredited after the fact — e.g. its plan mis-verified at runtime. *)
val remove : 'a t -> string -> unit

type 'a lookup =
  | Hit of 'a
  | Stale  (** present but from an older epoch; the entry was dropped *)
  | Absent

val find : 'a t -> epoch:int -> string -> 'a lookup

(** [put t ~epoch key v] inserts (or replaces) and returns the number of
    LRU evictions performed to stay within capacity (0 or 1). *)
val put : 'a t -> epoch:int -> string -> 'a -> int
