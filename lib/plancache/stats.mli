(** Planning-observability counters, accumulated over a planner's life.

    All counts are monotonic except through {!reset}. [hits]/[misses] are
    plan-cache lookups (a hit serves a memoized decision — positive or
    negative — with no matching work); [invalidated] counts cached entries
    dropped because the store epoch moved; [evicted] counts LRU evictions;
    [attempted]/[filtered] count summary-table candidates that respectively
    reached the match function or were rejected by the candidate index
    before any matching ran. *)

type t = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidated : int;
  mutable evicted : int;
  mutable inserted : int;
  mutable attempted : int;
  mutable filtered : int;
}

val create : unit -> t
val reset : t -> unit

(** An independent snapshot (callers may keep it across planner activity). *)
val copy : t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
