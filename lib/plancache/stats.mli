(** Planning-observability counters, accumulated over a planner's life.

    All counts are monotonic except through {!reset}. [hits]/[misses] are
    plan-cache lookups (a hit serves a memoized decision — positive or
    negative — with no matching work); [invalidated] counts cached entries
    dropped because the store epoch moved; [evicted] counts LRU evictions;
    [attempted]/[filtered] count summary-table candidates that respectively
    reached the match function or were rejected by the candidate index
    before any matching ran.

    The guard counters: [rw_errors] counts exceptions contained inside the
    rewrite pipeline (each attributed to one summary-table candidate);
    [fallbacks] counts queries that were answered by the base plan because
    of a contained failure (planning, execution of the rewritten plan, or a
    verification mismatch); [quarantined] counts
    (query-fingerprint x summary-table) pairs newly quarantined;
    [quarantine_skips] counts candidates skipped on later plannings because
    they were quarantined. [verify_runs]/[verify_mismatches] count runtime
    result verifications and the mismatches they caught;
    [verify_static_skips] counts verifications skipped because the static
    prover certified every applied rewrite step ([verify:Static]).

    [degraded] counts plannings truncated by a resource budget (deadline
    or work cap): the decision served was best-so-far, was {e not} cached,
    and a later planning with an adequate budget will re-attempt it. *)

type t = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidated : int;
  mutable evicted : int;
  mutable inserted : int;
  mutable attempted : int;
  mutable filtered : int;
  mutable rw_errors : int;
  mutable fallbacks : int;
  mutable quarantined : int;
  mutable quarantine_skips : int;
  mutable verify_runs : int;
  mutable verify_mismatches : int;
  mutable verify_static_skips : int;
  mutable degraded : int;
}

val create : unit -> t
val reset : t -> unit

(** An independent snapshot (callers may keep it across planner activity). *)
val copy : t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
