type 'a slot = { s_value : 'a; s_epoch : int; mutable s_last : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a slot) Hashtbl.t;
  mutable tick : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { cap = capacity; tbl = Hashtbl.create (min capacity 64); tick = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let clear t = Hashtbl.reset t.tbl
let remove t key = Hashtbl.remove t.tbl key

type 'a lookup = Hit of 'a | Stale | Absent

let find t ~epoch key =
  match Hashtbl.find_opt t.tbl key with
  | None -> Absent
  | Some s when s.s_epoch <> epoch ->
      Hashtbl.remove t.tbl key;
      Stale
  | Some s ->
      t.tick <- t.tick + 1;
      s.s_last <- t.tick;
      Hit s.s_value

let put t ~epoch key v =
  let evicted = ref 0 in
  if (not (Hashtbl.mem t.tbl key)) && Hashtbl.length t.tbl >= t.cap then begin
    (* evict the least recently used slot (linear scan: capacities are
       small and eviction is off the hit path) *)
    let victim =
      Hashtbl.fold
        (fun k s acc ->
          match acc with
          | Some (_, best) when best <= s.s_last -> acc
          | _ -> Some (k, s.s_last))
        t.tbl None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        incr evicted
    | None -> ()
  end;
  t.tick <- t.tick + 1;
  Hashtbl.replace t.tbl key { s_value = v; s_epoch = epoch; s_last = t.tick };
  !evicted
