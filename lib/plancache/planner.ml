type decision =
  | No_rewrite
  | Rewrite of Qgm.Graph.t * Astmatch.Rewrite.step list

type entry = {
  en_decision : decision;
  en_attempted : int;
  en_filtered : int;
  en_quarantined : int;
}

type t = {
  p_cache : entry Cache.t;
  p_stats : Stats.t;
  p_quarantine : Guard.Quarantine.t;
  mutable p_index : Candidates.t;
  mutable p_index_epoch : int;
}

type report = {
  pr_graph : Qgm.Graph.t;
  pr_steps : Astmatch.Rewrite.step list;
  pr_hit : bool;
  pr_fingerprint : string;
  pr_attempted : int;
  pr_filtered : int;
  pr_quarantined : int;
  pr_errors : Guard.Error.t list;
  pr_degraded : Govern.Budget.reason option;
  pr_validated : int;  (* static validator runs during this planning *)
}

let create ?(capacity = 256) ?quarantine_capacity () =
  {
    p_cache = Cache.create ~capacity;
    p_stats = Stats.create ();
    p_quarantine = Guard.Quarantine.create ?capacity:quarantine_capacity ();
    p_index = Candidates.build [];
    p_index_epoch = min_int;
  }

let stats t = t.p_stats
let cache_length t = Cache.length t.p_cache
let quarantine_length t = Guard.Quarantine.entries t.p_quarantine

let quarantine t ~fp mvs =
  List.iter
    (fun (mv, version) ->
      if Guard.Quarantine.add t.p_quarantine ~version ~fp ~mv then
        t.p_stats.Stats.quarantined <- t.p_stats.Stats.quarantined + 1)
    mvs;
  (* the cached decision (if any) embeds the now-discredited candidate *)
  Cache.remove t.p_cache fp

let versions_of (mvs : Astmatch.Rewrite.mv list) =
  List.map (fun (mv : Astmatch.Rewrite.mv) -> (mv.mv_name, mv.mv_version)) mvs

let index t ~epoch mvs =
  if t.p_index_epoch <> epoch then begin
    t.p_index <- Candidates.build mvs;
    t.p_index_epoch <- epoch
  end;
  t.p_index

let classify t ~cat ~epoch ~mvs g = Candidates.eligible (index t ~epoch mvs) cat g

let report_of g fp ~hit ~errors ?(validated = 0) (e : entry) =
  let graph, steps =
    match e.en_decision with
    | No_rewrite -> (g, [])
    | Rewrite (g', steps) -> (g', steps)
  in
  {
    pr_graph = graph;
    pr_steps = steps;
    pr_hit = hit;
    pr_fingerprint = fp;
    pr_attempted = e.en_attempted;
    pr_filtered = e.en_filtered;
    pr_quarantined = e.en_quarantined;
    pr_errors = errors;
    pr_degraded = None;
    pr_validated = validated;
  }

let m_requests = Obs.Metrics.counter "plan.requests"
let m_hits = Obs.Metrics.counter "plan.cache_hits"
let m_misses = Obs.Metrics.counter "plan.cache_misses"
let m_rewrites = Obs.Metrics.counter "plan.rewrites"
let m_filtered = Obs.Metrics.counter "plan.filtered"
let m_quarantine_skips = Obs.Metrics.counter "plan.quarantine_skips"
let m_errors = Obs.Metrics.counter "plan.contained_errors"
let m_plan_ms = Obs.Metrics.histogram "plan.ms"
let m_degraded = Obs.Metrics.counter "govern.degraded_plans"
let m_lint_runs = Obs.Metrics.counter "lint.validate.runs"
let m_lint_final = Obs.Metrics.counter "lint.final_rejects"

let plan_raw ?trace ?budget t ~cat ~epoch ~mvs g =
  let st = t.p_stats in
  let fp = Qgm.Fingerprint.of_graph g in
  match Cache.find t.p_cache ~epoch fp with
  | Cache.Hit e ->
      st.Stats.hits <- st.Stats.hits + 1;
      Obs.Metrics.incr m_hits;
      Obs.Trace.accept trace ~kind:"cache" ~label:fp "hit";
      report_of g fp ~hit:true ~errors:[] e
  | (Cache.Stale | Cache.Absent) as l ->
      if l = Cache.Stale then st.Stats.invalidated <- st.Stats.invalidated + 1;
      st.Stats.misses <- st.Stats.misses + 1;
      Obs.Metrics.incr m_misses;
      let versions = versions_of mvs in
      let kept, skipped = classify t ~cat ~epoch ~mvs g in
      let held_names = Guard.Quarantine.blocked t.p_quarantine ~versions ~fp in
      let kept, held =
        List.partition
          (fun (mv : Astmatch.Rewrite.mv) ->
            not (List.mem mv.mv_name held_names))
          kept
      in
      List.iter
        (fun (mv : Astmatch.Rewrite.mv) ->
          Obs.Trace.reject trace ~kind:"candidate" ~label:mv.mv_name
            Obs.Trace.Filtered_by_index)
        skipped;
      List.iter
        (fun (mv : Astmatch.Rewrite.mv) ->
          Obs.Trace.reject trace ~kind:"candidate" ~label:mv.mv_name
            Obs.Trace.Quarantined)
        held;
      st.Stats.quarantine_skips <-
        st.Stats.quarantine_skips + List.length held;
      st.Stats.attempted <- st.Stats.attempted + List.length kept;
      st.Stats.filtered <- st.Stats.filtered + List.length skipped;
      Obs.Metrics.add m_filtered (List.length skipped);
      Obs.Metrics.add m_quarantine_skips (List.length held);
      (* contained failures: the offending summary table is quarantined for
         this fingerprint and planning continues with the others *)
      let errors = ref [] in
      let on_error mv_name exn =
        let err = Guard.Error.classify ~stage:Guard.Error.Match ~mv:mv_name exn in
        errors := err :: !errors;
        st.Stats.rw_errors <- st.Stats.rw_errors + 1;
        Obs.Metrics.incr m_errors;
        Obs.Trace.reject trace ~kind:"candidate" ~label:mv_name
          (Obs.Trace.Contained_error (Guard.Error.to_string err));
        match List.assoc_opt mv_name versions with
        | Some version ->
            if Guard.Quarantine.add t.p_quarantine ~version ~fp ~mv:mv_name
            then st.Stats.quarantined <- st.Stats.quarantined + 1
        | None -> ()
      in
      let v_runs0 = Obs.Metrics.counter_value m_lint_runs in
      let decision =
        match Astmatch.Rewrite.best ~cat ~on_error ?trace ?budget g kept with
        | None -> No_rewrite
        | Some (g', steps) ->
            Obs.Metrics.incr m_rewrites;
            Rewrite (g', steps)
      in
      (* final-plan static check (ASTQL_VALIDATE >= 1): a rewritten plan
         that fails validation never executes — its summaries are
         quarantined and the query degrades to the base plan. Candidates
         were already checked individually at level 2, so at that level
         this is a cheap re-check of the winner. *)
      let decision =
        match decision with
        | Rewrite (g', steps) when Lint.Level.final_on () -> (
            match Lint.Validate.check ~cat g' with
            | [] -> decision
            | vs ->
                Obs.Metrics.incr m_lint_final;
                let msg = Lint.Validate.summary vs in
                let mv0 =
                  match steps with
                  | (s : Astmatch.Rewrite.step) :: _ -> Some s.used_mv
                  | [] -> None
                in
                errors :=
                  {
                    Guard.Error.err_stage = Guard.Error.Validate;
                    err_kind = Guard.Error.Ill_formed msg;
                    err_mv = mv0;
                  }
                  :: !errors;
                st.Stats.rw_errors <- st.Stats.rw_errors + 1;
                Obs.Metrics.incr m_errors;
                Obs.Trace.reject trace ~kind:"plan" ~label:"final plan"
                  (Obs.Trace.Ir_invalid msg);
                List.iter
                  (fun (s : Astmatch.Rewrite.step) ->
                    match List.assoc_opt s.used_mv versions with
                    | Some version ->
                        if
                          Guard.Quarantine.add t.p_quarantine ~version ~fp
                            ~mv:s.used_mv
                        then
                          st.Stats.quarantined <- st.Stats.quarantined + 1
                    | None -> ())
                  steps;
                No_rewrite)
        | _ -> decision
      in
      let validated = Obs.Metrics.counter_value m_lint_runs - v_runs0 in
      (* a contained failure that left the query unrewritten is a fallback
         to the base plan; if another AST still served it, it is not *)
      if !errors <> [] && decision = No_rewrite then
        st.Stats.fallbacks <- st.Stats.fallbacks + 1;
      let e =
        {
          en_decision = decision;
          en_attempted = List.length kept;
          en_filtered = List.length skipped;
          en_quarantined = List.length held;
        }
      in
      let degraded = Option.bind budget Govern.Budget.exhausted in
      (* a budget-truncated decision is best-so-far, not the planner's
         answer for this query: serving it again from the cache would make
         a transient resource shortage permanent, so it is never stored *)
      if degraded = None then begin
        st.Stats.evicted <- st.Stats.evicted + Cache.put t.p_cache ~epoch fp e;
        st.Stats.inserted <- st.Stats.inserted + 1
      end
      else begin
        st.Stats.degraded <- st.Stats.degraded + 1;
        Obs.Metrics.incr m_degraded;
        Obs.Trace.event trace ~kind:"budget"
          ~label:
            (Printf.sprintf "degraded: %s"
               (Govern.Budget.reason_name (Option.get degraded)))
      end;
      { (report_of g fp ~hit:false ~errors:(List.rev !errors) ~validated e) with
        pr_degraded = degraded }

let base_report g ~errors ~degraded =
  {
    pr_graph = g;
    pr_steps = [];
    pr_hit = false;
    pr_fingerprint = "";
    pr_attempted = 0;
    pr_filtered = 0;
    pr_quarantined = 0;
    pr_errors = errors;
    pr_degraded = degraded;
    pr_validated = 0;
  }

let plan ?trace ?budget t ~cat ~epoch ~mvs g =
  (* the outer sandbox: even a failure outside any one candidate
     (fingerprinting, the candidate index, base-graph costing, the cache
     itself) degrades to the unrewritten plan, never to an exception *)
  Obs.Metrics.incr m_requests;
  match
    Obs.Metrics.time m_plan_ms (fun () ->
        Guard.Sandbox.protect ~stage:Guard.Error.Plan (fun () ->
            Obs.Trace.with_span trace ~kind:"plan" ~label:""
              ~result:(fun r ->
                match r.pr_steps with
                | [] -> Obs.Trace.Step
                | steps ->
                    Obs.Trace.Accepted
                      (Printf.sprintf "rewritten via %s"
                         (String.concat ", "
                            (List.map
                               (fun (s : Astmatch.Rewrite.step) -> s.used_mv)
                               steps))))
              (fun () -> plan_raw ?trace ?budget t ~cat ~epoch ~mvs g)))
  with
  | Ok r -> r
  | Error err ->
      let st = t.p_stats in
      st.Stats.rw_errors <- st.Stats.rw_errors + 1;
      st.Stats.fallbacks <- st.Stats.fallbacks + 1;
      base_report g ~errors:[ err ] ~degraded:None
  | exception Govern.Budget.Budget_exhausted reason ->
      (* belt and braces: Rewrite.best already absorbs exhaustion, so this
         only triggers if a budget check fires outside the routing loop —
         still a graceful base-plan degradation, never an error *)
      let st = t.p_stats in
      st.Stats.degraded <- st.Stats.degraded + 1;
      Obs.Metrics.incr m_degraded;
      base_report g ~errors:[] ~degraded:(Some reason)
