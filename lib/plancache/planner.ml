type decision =
  | No_rewrite
  | Rewrite of Qgm.Graph.t * Astmatch.Rewrite.step list

type entry = {
  en_decision : decision;
  en_attempted : int;
  en_filtered : int;
  en_quarantined : int;
}

type t = {
  p_cache : entry Cache.t;
  p_stats : Stats.t;
  p_quarantine : Guard.Quarantine.t;
  mutable p_index : Candidates.t;
  mutable p_index_epoch : int;
}

type report = {
  pr_graph : Qgm.Graph.t;
  pr_steps : Astmatch.Rewrite.step list;
  pr_hit : bool;
  pr_fingerprint : string;
  pr_attempted : int;
  pr_filtered : int;
  pr_quarantined : int;
  pr_errors : Guard.Error.t list;
}

let create ?(capacity = 256) ?quarantine_capacity () =
  {
    p_cache = Cache.create ~capacity;
    p_stats = Stats.create ();
    p_quarantine = Guard.Quarantine.create ?capacity:quarantine_capacity ();
    p_index = Candidates.build [];
    p_index_epoch = min_int;
  }

let stats t = t.p_stats
let cache_length t = Cache.length t.p_cache
let quarantine_length t = Guard.Quarantine.entries t.p_quarantine

let quarantine t ~epoch ~fp mvs =
  List.iter
    (fun mv ->
      if Guard.Quarantine.add t.p_quarantine ~epoch ~fp ~mv then
        t.p_stats.Stats.quarantined <- t.p_stats.Stats.quarantined + 1)
    mvs;
  (* the cached decision (if any) embeds the now-discredited candidate *)
  Cache.remove t.p_cache fp

let index t ~epoch mvs =
  if t.p_index_epoch <> epoch then begin
    t.p_index <- Candidates.build mvs;
    t.p_index_epoch <- epoch
  end;
  t.p_index

let classify t ~cat ~epoch ~mvs g = Candidates.eligible (index t ~epoch mvs) cat g

let report_of g fp ~hit ~errors (e : entry) =
  let graph, steps =
    match e.en_decision with
    | No_rewrite -> (g, [])
    | Rewrite (g', steps) -> (g', steps)
  in
  {
    pr_graph = graph;
    pr_steps = steps;
    pr_hit = hit;
    pr_fingerprint = fp;
    pr_attempted = e.en_attempted;
    pr_filtered = e.en_filtered;
    pr_quarantined = e.en_quarantined;
    pr_errors = errors;
  }

let m_requests = Obs.Metrics.counter "plan.requests"
let m_hits = Obs.Metrics.counter "plan.cache_hits"
let m_misses = Obs.Metrics.counter "plan.cache_misses"
let m_rewrites = Obs.Metrics.counter "plan.rewrites"
let m_filtered = Obs.Metrics.counter "plan.filtered"
let m_quarantine_skips = Obs.Metrics.counter "plan.quarantine_skips"
let m_errors = Obs.Metrics.counter "plan.contained_errors"
let m_plan_ms = Obs.Metrics.histogram "plan.ms"

let plan_raw ?trace t ~cat ~epoch ~mvs g =
  let st = t.p_stats in
  let fp = Qgm.Fingerprint.of_graph g in
  match Cache.find t.p_cache ~epoch fp with
  | Cache.Hit e ->
      st.Stats.hits <- st.Stats.hits + 1;
      Obs.Metrics.incr m_hits;
      Obs.Trace.accept trace ~kind:"cache" ~label:fp "hit";
      report_of g fp ~hit:true ~errors:[] e
  | (Cache.Stale | Cache.Absent) as l ->
      if l = Cache.Stale then st.Stats.invalidated <- st.Stats.invalidated + 1;
      st.Stats.misses <- st.Stats.misses + 1;
      Obs.Metrics.incr m_misses;
      let kept, skipped = classify t ~cat ~epoch ~mvs g in
      let held_names = Guard.Quarantine.blocked t.p_quarantine ~epoch ~fp in
      let kept, held =
        List.partition
          (fun (mv : Astmatch.Rewrite.mv) ->
            not (List.mem mv.mv_name held_names))
          kept
      in
      List.iter
        (fun (mv : Astmatch.Rewrite.mv) ->
          Obs.Trace.reject trace ~kind:"candidate" ~label:mv.mv_name
            Obs.Trace.Filtered_by_index)
        skipped;
      List.iter
        (fun (mv : Astmatch.Rewrite.mv) ->
          Obs.Trace.reject trace ~kind:"candidate" ~label:mv.mv_name
            Obs.Trace.Quarantined)
        held;
      st.Stats.quarantine_skips <-
        st.Stats.quarantine_skips + List.length held;
      st.Stats.attempted <- st.Stats.attempted + List.length kept;
      st.Stats.filtered <- st.Stats.filtered + List.length skipped;
      Obs.Metrics.add m_filtered (List.length skipped);
      Obs.Metrics.add m_quarantine_skips (List.length held);
      (* contained failures: the offending summary table is quarantined for
         this fingerprint and planning continues with the others *)
      let errors = ref [] in
      let on_error mv_name exn =
        let err = Guard.Error.classify ~stage:Guard.Error.Match ~mv:mv_name exn in
        errors := err :: !errors;
        st.Stats.rw_errors <- st.Stats.rw_errors + 1;
        Obs.Metrics.incr m_errors;
        Obs.Trace.reject trace ~kind:"candidate" ~label:mv_name
          (Obs.Trace.Contained_error (Guard.Error.to_string err));
        if Guard.Quarantine.add t.p_quarantine ~epoch ~fp ~mv:mv_name then
          st.Stats.quarantined <- st.Stats.quarantined + 1
      in
      let decision =
        match Astmatch.Rewrite.best ~cat ~on_error ?trace g kept with
        | None -> No_rewrite
        | Some (g', steps) ->
            Obs.Metrics.incr m_rewrites;
            Rewrite (g', steps)
      in
      (* a contained failure that left the query unrewritten is a fallback
         to the base plan; if another AST still served it, it is not *)
      if !errors <> [] && decision = No_rewrite then
        st.Stats.fallbacks <- st.Stats.fallbacks + 1;
      let e =
        {
          en_decision = decision;
          en_attempted = List.length kept;
          en_filtered = List.length skipped;
          en_quarantined = List.length held;
        }
      in
      st.Stats.evicted <- st.Stats.evicted + Cache.put t.p_cache ~epoch fp e;
      st.Stats.inserted <- st.Stats.inserted + 1;
      report_of g fp ~hit:false ~errors:(List.rev !errors) e

let plan ?trace t ~cat ~epoch ~mvs g =
  (* the outer sandbox: even a failure outside any one candidate
     (fingerprinting, the candidate index, base-graph costing, the cache
     itself) degrades to the unrewritten plan, never to an exception *)
  Obs.Metrics.incr m_requests;
  match
    Obs.Metrics.time m_plan_ms (fun () ->
        Guard.Sandbox.protect ~stage:Guard.Error.Plan (fun () ->
            Obs.Trace.with_span trace ~kind:"plan" ~label:""
              ~result:(fun r ->
                match r.pr_steps with
                | [] -> Obs.Trace.Step
                | steps ->
                    Obs.Trace.Accepted
                      (Printf.sprintf "rewritten via %s"
                         (String.concat ", "
                            (List.map
                               (fun (s : Astmatch.Rewrite.step) -> s.used_mv)
                               steps))))
              (fun () -> plan_raw ?trace t ~cat ~epoch ~mvs g)))
  with
  | Ok r -> r
  | Error err ->
      let st = t.p_stats in
      st.Stats.rw_errors <- st.Stats.rw_errors + 1;
      st.Stats.fallbacks <- st.Stats.fallbacks + 1;
      {
        pr_graph = g;
        pr_steps = [];
        pr_hit = false;
        pr_fingerprint = "";
        pr_attempted = 0;
        pr_filtered = 0;
        pr_quarantined = 0;
        pr_errors = [ err ];
      }
