type decision =
  | No_rewrite
  | Rewrite of Qgm.Graph.t * Astmatch.Rewrite.step list

type entry = { en_decision : decision; en_attempted : int; en_filtered : int }

type t = {
  p_cache : entry Cache.t;
  p_stats : Stats.t;
  mutable p_index : Candidates.t;
  mutable p_index_epoch : int;
}

type report = {
  pr_graph : Qgm.Graph.t;
  pr_steps : Astmatch.Rewrite.step list;
  pr_hit : bool;
  pr_fingerprint : string;
  pr_attempted : int;
  pr_filtered : int;
}

let create ?(capacity = 256) () =
  {
    p_cache = Cache.create ~capacity;
    p_stats = Stats.create ();
    p_index = Candidates.build [];
    p_index_epoch = min_int;
  }

let stats t = t.p_stats
let cache_length t = Cache.length t.p_cache

let index t ~epoch mvs =
  if t.p_index_epoch <> epoch then begin
    t.p_index <- Candidates.build mvs;
    t.p_index_epoch <- epoch
  end;
  t.p_index

let classify t ~cat ~epoch ~mvs g = Candidates.eligible (index t ~epoch mvs) cat g

let report_of g fp ~hit (e : entry) =
  let graph, steps =
    match e.en_decision with
    | No_rewrite -> (g, [])
    | Rewrite (g', steps) -> (g', steps)
  in
  {
    pr_graph = graph;
    pr_steps = steps;
    pr_hit = hit;
    pr_fingerprint = fp;
    pr_attempted = e.en_attempted;
    pr_filtered = e.en_filtered;
  }

let plan t ~cat ~epoch ~mvs g =
  let st = t.p_stats in
  let fp = Qgm.Fingerprint.of_graph g in
  match Cache.find t.p_cache ~epoch fp with
  | Cache.Hit e ->
      st.Stats.hits <- st.Stats.hits + 1;
      report_of g fp ~hit:true e
  | (Cache.Stale | Cache.Absent) as l ->
      if l = Cache.Stale then st.Stats.invalidated <- st.Stats.invalidated + 1;
      st.Stats.misses <- st.Stats.misses + 1;
      let kept, skipped = classify t ~cat ~epoch ~mvs g in
      st.Stats.attempted <- st.Stats.attempted + List.length kept;
      st.Stats.filtered <- st.Stats.filtered + List.length skipped;
      let decision =
        match Astmatch.Rewrite.best ~cat g kept with
        | None -> No_rewrite
        | Some (g', steps) -> Rewrite (g', steps)
      in
      let e =
        {
          en_decision = decision;
          en_attempted = List.length kept;
          en_filtered = List.length skipped;
        }
      in
      st.Stats.evicted <- st.Stats.evicted + Cache.put t.p_cache ~epoch fp e;
      st.Stats.inserted <- st.Stats.inserted + 1;
      report_of g fp ~hit:false e
