type t = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidated : int;
  mutable evicted : int;
  mutable inserted : int;
  mutable attempted : int;
  mutable filtered : int;
}

let create () =
  {
    hits = 0;
    misses = 0;
    invalidated = 0;
    evicted = 0;
    inserted = 0;
    attempted = 0;
    filtered = 0;
  }

let reset t =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidated <- 0;
  t.evicted <- 0;
  t.inserted <- 0;
  t.attempted <- 0;
  t.filtered <- 0

let copy t = { t with hits = t.hits }

let pp fmt t =
  Format.fprintf fmt
    "plan cache: %d hit(s), %d miss(es), %d invalidated, %d evicted@\n\
     candidates: %d attempted, %d filtered"
    t.hits t.misses t.invalidated t.evicted t.attempted t.filtered

let to_string t = Format.asprintf "%a" pp t
