type t = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidated : int;
  mutable evicted : int;
  mutable inserted : int;
  mutable attempted : int;
  mutable filtered : int;
  mutable rw_errors : int;
  mutable fallbacks : int;
  mutable quarantined : int;
  mutable quarantine_skips : int;
  mutable verify_runs : int;
  mutable verify_mismatches : int;
  mutable verify_static_skips : int;
  mutable degraded : int;
}

let create () =
  {
    hits = 0;
    misses = 0;
    invalidated = 0;
    evicted = 0;
    inserted = 0;
    attempted = 0;
    filtered = 0;
    rw_errors = 0;
    fallbacks = 0;
    quarantined = 0;
    quarantine_skips = 0;
    verify_runs = 0;
    verify_mismatches = 0;
    verify_static_skips = 0;
    degraded = 0;
  }

let reset t =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidated <- 0;
  t.evicted <- 0;
  t.inserted <- 0;
  t.attempted <- 0;
  t.filtered <- 0;
  t.rw_errors <- 0;
  t.fallbacks <- 0;
  t.quarantined <- 0;
  t.quarantine_skips <- 0;
  t.verify_runs <- 0;
  t.verify_mismatches <- 0;
  t.verify_static_skips <- 0;
  t.degraded <- 0

let copy t = { t with hits = t.hits }

let pp fmt t =
  Format.fprintf fmt
    "plan cache: %d hit(s), %d miss(es), %d invalidated, %d evicted@\n\
     candidates: %d attempted, %d filtered@\n\
     guard: %d rewrite error(s), %d fallback(s), %d quarantined, %d \
     quarantine skip(s)@\n\
     verify: %d run(s), %d mismatch(es), %d static skip(s)@\n\
     govern: %d degraded plan(s)"
    t.hits t.misses t.invalidated t.evicted t.attempted t.filtered t.rw_errors
    t.fallbacks t.quarantined t.quarantine_skips t.verify_runs
    t.verify_mismatches t.verify_static_skips t.degraded

let to_string t = Format.asprintf "%a" pp t
