type reason = Deadline | Match_budget | Candidate_budget | Row_budget

exception Budget_exhausted of reason

let reason_name = function
  | Deadline -> "deadline"
  | Match_budget -> "match-budget"
  | Candidate_budget -> "candidate-budget"
  | Row_budget -> "row-budget"

type limits = {
  bl_deadline_ms : float option;
  bl_matches : int option;
  bl_candidates : int option;
  bl_rows : int option;
}

let unlimited =
  { bl_deadline_ms = None; bl_matches = None; bl_candidates = None;
    bl_rows = None }

let is_unlimited l = l = unlimited

let limits ?deadline_ms ?matches ?candidates ?rows () =
  { bl_deadline_ms = deadline_ms; bl_matches = matches;
    bl_candidates = candidates; bl_rows = rows }

let env_float name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> float_of_string_opt s

let env_int name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> int_of_string_opt s

let default_limits () =
  { unlimited with
    bl_deadline_ms = env_float "ASTQL_DEADLINE_MS";
    bl_matches = env_int "ASTQL_MATCH_BUDGET" }

let describe l =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (fun d -> Printf.sprintf "deadline=%gms" d)
          l.bl_deadline_ms;
        Option.map (Printf.sprintf "matches=%d") l.bl_matches;
        Option.map (Printf.sprintf "candidates=%d") l.bl_candidates;
        Option.map (Printf.sprintf "rows=%d") l.bl_rows;
      ]
  in
  if parts = [] then "unlimited" else String.concat " " parts

type t = {
  b_limits : limits;
  b_start_ms : float;
  mutable b_matches : int;
  mutable b_candidates : int;
  mutable b_rows : int;
  mutable b_exhausted : reason option;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let start l =
  { b_limits = l; b_start_ms = now_ms (); b_matches = 0; b_candidates = 0;
    b_rows = 0; b_exhausted = None }

let exhausted b = b.b_exhausted

let m_exhausted = Obs.Metrics.counter "govern.budget_exhausted"

let exhaust b reason =
  (* Count each statement's exhaustion once, not every unwinding check. *)
  if b.b_exhausted = None then begin
    b.b_exhausted <- Some reason;
    Obs.Metrics.incr m_exhausted
  end;
  raise (Budget_exhausted reason)

let check_deadline = function
  | None -> ()
  | Some b -> (
      match b.b_limits.bl_deadline_ms with
      | None -> ()
      | Some d -> if now_ms () -. b.b_start_ms > d then exhaust b Deadline)

let deadline_spent = function
  | None -> false
  | Some b -> (
      match b.b_limits.bl_deadline_ms with
      | None -> false
      | Some d -> now_ms () -. b.b_start_ms > d)

let over limit count = match limit with Some l -> count > l | None -> false

let tick_match bo =
  match bo with
  | None -> ()
  | Some b ->
      b.b_matches <- b.b_matches + 1;
      if over b.b_limits.bl_matches b.b_matches then exhaust b Match_budget;
      check_deadline bo

let tick_candidate bo =
  match bo with
  | None -> ()
  | Some b ->
      b.b_candidates <- b.b_candidates + 1;
      if over b.b_limits.bl_candidates b.b_candidates then
        exhaust b Candidate_budget;
      check_deadline bo

let tick_rows bo n =
  match bo with
  | None -> ()
  | Some b ->
      b.b_rows <- b.b_rows + n;
      if over b.b_limits.bl_rows b.b_rows then exhaust b Row_budget;
      check_deadline bo
