(** Resource budgets for planning and execution.

    A {!t} is a per-statement account: a wall-clock deadline plus caps on
    the dominant units of work in the rewrite pipeline (match-function
    invocations, routing candidates, executor row ticks).  Work sites call
    the [tick_*]/[check_deadline] helpers with a [t option]; [None] means
    "ungoverned" and costs nothing, so the hooks can stay in place
    unconditionally.

    Exhaustion is cooperative: the first check past a limit records the
    {!reason} on the budget and raises {!Budget_exhausted}.  Catchers
    (e.g. [Rewrite.best], [Session.run_query]) unwind to a safe point and
    degrade gracefully — best-so-far plan, or the unbudgeted base plan.
    The recorded reason survives the unwind so reports can say {i why} a
    plan was truncated. *)

type reason =
  | Deadline          (** wall-clock deadline passed *)
  | Match_budget      (** too many [Patterns.match_boxes] calls *)
  | Candidate_budget  (** too many routing candidates considered *)
  | Row_budget        (** executor produced too many rows *)

exception Budget_exhausted of reason

val reason_name : reason -> string
(** ["deadline" | "match-budget" | "candidate-budget" | "row-budget"] *)

type limits = {
  bl_deadline_ms : float option;  (** wall-clock budget for the statement *)
  bl_matches : int option;        (** max match-function invocations *)
  bl_candidates : int option;     (** max routing candidates costed *)
  bl_rows : int option;           (** max rows produced by the executor *)
}

val unlimited : limits

val is_unlimited : limits -> bool

val limits :
  ?deadline_ms:float -> ?matches:int -> ?candidates:int -> ?rows:int ->
  unit -> limits

val default_limits : unit -> limits
(** {!unlimited} overridden by the environment: [ASTQL_DEADLINE_MS]
    (float, milliseconds) and [ASTQL_MATCH_BUDGET] (int).  Read on every
    call so tests can adjust the environment. *)

val describe : limits -> string
(** One-line human rendering, e.g. ["deadline=10ms matches=5000"];
    ["unlimited"] when nothing is set. *)

type t

val start : limits -> t
(** Open an account: stamps the current time for the deadline. *)

val exhausted : t -> reason option
(** The first reason this budget ran out, if it did. *)

(** {2 Work-site hooks}

    Each takes [t option]; [None] is free.  All raise {!Budget_exhausted}
    (after recording the reason) when a limit is crossed, including on
    repeated calls after the first exhaustion. *)

val check_deadline : t option -> unit

val deadline_spent : t option -> bool
(** Non-raising probe for optional work (e.g. static proving): [true] when
    the wall-clock deadline has already passed, so the caller should skip
    the work instead of failing the statement.  Never records exhaustion. *)

val tick_match : t option -> unit
(** One [Patterns.match_boxes] invocation; also checks the deadline. *)

val tick_candidate : t option -> unit
(** One routing candidate considered; also checks the deadline. *)

val tick_rows : t option -> int -> unit
(** [n] rows produced at an executor operator boundary; also checks the
    deadline. *)
