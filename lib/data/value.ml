type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int

type ty = Tint | Tfloat | Tstr | Tbool | Tdate

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let ty_to_string = function
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Tstr -> "VARCHAR"
  | Tbool -> "BOOLEAN"
  | Tdate -> "DATE"

let ty_of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> Some Tint
  | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> Some Tfloat
  | "VARCHAR" | "CHAR" | "TEXT" | "STRING" -> Some Tstr
  | "BOOLEAN" | "BOOL" -> Some Tbool
  | "DATE" -> Some Tdate
  | _ -> None

let date y m d =
  if m < 1 || m > 12 then invalid_arg "Value.date: month out of range";
  if d < 1 || d > 31 then invalid_arg "Value.date: day out of range";
  Date (((y * 100) + m) * 100 + d)

let year = function
  | Date e -> Int (e / 10000)
  | Null -> Null
  | _ -> type_error "year() applied to non-date value"

let month = function
  | Date e -> Int (e / 100 mod 100)
  | Null -> Null
  | _ -> type_error "month() applied to non-date value"

let day = function
  | Date e -> Int (e mod 100)
  | Null -> Null
  | _ -> type_error "day() applied to non-date value"

let tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3
  | Date _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | a, b -> Stdlib.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash (float_of_int x)
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b
  | Date d -> Hashtbl.hash (`Date d)

(* Constructor match, NOT polymorphic [v = Null]: structural equality
   descends into boxed floats, where a NaN payload makes (=) lie
   (nan = nan is false), and costs a generic compare per call on the
   aggregation hot path. *)
let is_null = function Null -> true | _ -> false

let cmp3 op a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _ -> Bool (op (compare a b) 0)

let sql_eq = cmp3 ( = )
let sql_neq = cmp3 ( <> )
let sql_lt = cmp3 ( < )
let sql_le = cmp3 ( <= )
let sql_gt = cmp3 ( > )
let sql_ge = cmp3 ( >= )

let sql_and a b =
  match (a, b) with
  | Bool false, _ | _, Bool false -> Bool false
  | Bool true, Bool true -> Bool true
  | (Null | Bool _), (Null | Bool _) -> Null
  | _ -> type_error "AND applied to non-boolean value"

let sql_or a b =
  match (a, b) with
  | Bool true, _ | _, Bool true -> Bool true
  | Bool false, Bool false -> Bool false
  | (Null | Bool _), (Null | Bool _) -> Null
  | _ -> type_error "OR applied to non-boolean value"

let sql_not = function
  | Bool b -> Bool (not b)
  | Null -> Null
  | _ -> type_error "NOT applied to non-boolean value"

let arith name fi ff a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (fi x y)
  | Float x, Float y -> Float (ff x y)
  | Int x, Float y -> Float (ff (float_of_int x) y)
  | Float x, Int y -> Float (ff x (float_of_int y))
  | _ -> type_error "%s applied to non-numeric value" name

let add = arith "+" ( + ) ( +. )
let sub = arith "-" ( - ) ( -. )
let mul = arith "*" ( * ) ( *. )

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y ->
      if y = 0 then raise Division_by_zero else Int (x / y)
  | _ -> arith "/" (fun _ _ -> assert false) ( /. ) a b

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | _ -> type_error "unary - applied to non-numeric value"

let concat a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Str x, Str y -> Str (x ^ y)
  | _ -> type_error "|| applied to non-string value"

let is_true = function Bool true -> true | _ -> false

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Null -> nan
  | _ -> type_error "numeric value expected"

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x ->
      if Float.is_integer x && Float.abs x < 1e15 then
        Printf.sprintf "%.1f" x
      else Printf.sprintf "%g" x
  | Str s -> s
  | Bool b -> if b then "TRUE" else "FALSE"
  | Date e ->
      Printf.sprintf "%04d-%02d-%02d" (e / 10000) (e / 100 mod 100) (e mod 100)

let pp fmt v = Format.pp_print_string fmt (to_string v)
