(** In-memory relations: a named-column schema plus a bag of rows.

    Rows are value arrays positionally aligned with the schema. Relations use
    bag (multiset) semantics throughout, matching SQL. *)

type row = Value.t array

type t

(** [create cols rows] builds a relation. Raises [Invalid_argument] if any
    row's width differs from the schema width. *)
val create : string list -> row list -> t

val empty : string list -> t

(** Process-unique stamp of this relation's payload. Relations are
    immutable, so the stamp is a sound cache key (the columnar decoder in
    [Engine.Column] keys its decode cache on it); any derived relation —
    filter, sort, append, DML result — carries a fresh stamp. *)
val id : t -> int

val columns : t -> string array
val arity : t -> int
val cardinality : t -> int
val rows : t -> row list
val rows_array : t -> row array

(** [column_index r name] is the position of [name] (case-insensitive).
    Raises [Not_found] if absent. *)
val column_index : t -> string -> int

val mem_column : t -> string -> bool

(** [project r names] keeps (and reorders to) the given columns. *)
val project : t -> string list -> t

val append : t -> row list -> t
val filter : (row -> bool) -> t -> t
val map_rows : (row -> row) -> t -> t

(** Stable sort by the given comparison on rows. *)
val sort : (row -> row -> int) -> t -> t

(** Remove duplicate rows (bag -> set), preserving first occurrences. *)
val distinct : t -> t

(** Multiset difference: remove one occurrence of each row of [b] from [a]
    (rows of [b] absent from [a] are ignored). Column names must agree. *)
val bag_diff : t -> t -> t

(** Bag equality: same columns (order-sensitive) and same multiset of rows. *)
val bag_equal : t -> t -> bool

(** Bag equality tolerating relative floating-point error [rel_eps]
    (default 1e-9) on float values — re-aggregating partial sums in a
    different order legitimately perturbs low bits. *)
val bag_equal_approx : ?rel_eps:float -> t -> t -> bool

(** Bag equality after reordering [b]'s columns to match [a]'s names.
    Returns [false] when the column name sets differ. *)
val bag_equal_by_name : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
