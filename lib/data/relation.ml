type row = Value.t array

(* [rid] is a process-unique stamp used as a cache key by the columnar
   decoder (Engine.Column): relations are immutable, so a stamp identifies
   the payload for the relation's whole lifetime. Every construction —
   including derived relations that share [cols] — gets a fresh stamp. *)
type t = { cols : string array; data : row array; rid : int }

let next_rid = Atomic.make 1
let make cols data = { cols; data; rid = Atomic.fetch_and_add next_rid 1 }
let id r = r.rid

let check_width cols rows =
  let n = Array.length cols in
  List.iter
    (fun r ->
      if Array.length r <> n then
        invalid_arg
          (Printf.sprintf "Relation.create: row width %d, schema width %d"
             (Array.length r) n))
    rows

let create cols rows =
  let cols = Array.of_list cols in
  check_width cols rows;
  make cols (Array.of_list rows)

let empty cols = make (Array.of_list cols) [||]
let columns r = Array.copy r.cols
let arity r = Array.length r.cols
let cardinality r = Array.length r.data
let rows r = Array.to_list r.data
let rows_array r = r.data

let column_index r name =
  let lname = String.lowercase_ascii name in
  let n = Array.length r.cols in
  let rec loop i =
    if i >= n then raise Not_found
    else if String.lowercase_ascii r.cols.(i) = lname then i
    else loop (i + 1)
  in
  loop 0

let mem_column r name =
  match column_index r name with _ -> true | exception Not_found -> false

let project r names =
  let idx = List.map (column_index r) names in
  let pick row = Array.of_list (List.map (fun i -> row.(i)) idx) in
  make (Array.of_list names) (Array.map pick r.data)

let append r extra =
  check_width r.cols extra;
  make r.cols (Array.append r.data (Array.of_list extra))

let filter p r = make r.cols (Array.of_seq (Seq.filter p (Array.to_seq r.data)))
let map_rows f r = make r.cols (Array.map f r.data)

let sort cmp r =
  let data = Array.copy r.data in
  Array.stable_sort cmp data;
  make r.cols data

let row_compare a b =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i =
    if i >= n then Stdlib.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let distinct r =
  let seen = Hashtbl.create 64 in
  let keep row =
    let key = Array.to_list row in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  filter keep r

let bag_diff a b =
  if
    Array.length a.cols <> Array.length b.cols
    || not
         (Array.for_all2
            (fun x y -> String.lowercase_ascii x = String.lowercase_ascii y)
            a.cols b.cols)
  then invalid_arg "Relation.bag_diff: schema mismatch";
  let pending = Hashtbl.create 16 in
  Array.iter
    (fun row ->
      let key = Array.to_list row in
      let n = Option.value ~default:0 (Hashtbl.find_opt pending key) in
      Hashtbl.replace pending key (n + 1))
    b.data;
  let keep row =
    let key = Array.to_list row in
    match Hashtbl.find_opt pending key with
    | Some n when n > 0 ->
        Hashtbl.replace pending key (n - 1);
        false
    | _ -> true
  in
  make a.cols (Array.of_seq (Seq.filter keep (Array.to_seq a.data)))

let bag_equal a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2
       (fun x y -> String.lowercase_ascii x = String.lowercase_ascii y)
       a.cols b.cols
  && Array.length a.data = Array.length b.data
  &&
  let sa = Array.copy a.data and sb = Array.copy b.data in
  Array.sort row_compare sa;
  Array.sort row_compare sb;
  let n = Array.length sa in
  let rec loop i =
    i >= n || (row_compare sa.(i) sb.(i) = 0 && loop (i + 1))
  in
  loop 0

let value_close rel_eps x y =
  match (x, y) with
  | Value.Float _, (Value.Float _ | Value.Int _)
  | Value.Int _, Value.Float _ ->
      let fa = Value.to_float x and fb = Value.to_float y in
      Float.abs (fa -. fb)
      <= rel_eps *. Float.max 1.0 (Float.max (Float.abs fa) (Float.abs fb))
  | _ -> Value.equal x y

let bag_equal_approx ?(rel_eps = 1e-9) a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2
       (fun x y -> String.lowercase_ascii x = String.lowercase_ascii y)
       a.cols b.cols
  && Array.length a.data = Array.length b.data
  &&
  let sa = Array.copy a.data and sb = Array.copy b.data in
  Array.sort row_compare sa;
  Array.sort row_compare sb;
  let rows_close ra rb =
    Array.length ra = Array.length rb
    && Array.for_all2 (value_close rel_eps) ra rb
  in
  let n = Array.length sa in
  let rec loop i = i >= n || (rows_close sa.(i) sb.(i) && loop (i + 1)) in
  loop 0

let bag_equal_by_name a b =
  let names = Array.to_list a.cols in
  let lower = List.map String.lowercase_ascii in
  let same_set =
    List.sort compare (lower names)
    = List.sort compare (lower (Array.to_list b.cols))
  in
  same_set
  && Array.length a.cols = Array.length b.cols
  && match project b names with
     | b' -> bag_equal a b'
     | exception Not_found -> false

let pp fmt r =
  let ncols = Array.length r.cols in
  let width = Array.make ncols 0 in
  Array.iteri (fun i c -> width.(i) <- String.length c) r.cols;
  Array.iter
    (fun row ->
      Array.iteri
        (fun i v -> width.(i) <- max width.(i) (String.length (Value.to_string v)))
        row)
    r.data;
  let line ch =
    for i = 0 to ncols - 1 do
      Format.pp_print_char fmt '+';
      Format.pp_print_string fmt (String.make (width.(i) + 2) ch)
    done;
    Format.fprintf fmt "+@\n"
  in
  let cell i s = Format.fprintf fmt "| %-*s " width.(i) s in
  line '-';
  Array.iteri (fun i c -> cell i c) r.cols;
  Format.fprintf fmt "|@\n";
  line '-';
  Array.iter
    (fun row ->
      Array.iteri (fun i v -> cell i (Value.to_string v)) row;
      Format.fprintf fmt "|@\n")
    r.data;
  line '-';
  Format.fprintf fmt "(%d rows)" (Array.length r.data)

let to_string r = Format.asprintf "%a" pp r
