exception Parse_error of string * int

type state = { mutable toks : (Token.t * int) list }

let error st msg =
  let pos = match st.toks with (_, p) :: _ -> p | [] -> 0 in
  raise (Parse_error (msg, pos))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Token.Eof

let peek2 st =
  match st.toks with _ :: (t, _) :: _ -> t | _ -> Token.Eof

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok what =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s, found %s" what (Token.to_string (peek st)))

(* Case-insensitive keyword handling. *)
let kw_is t kw =
  match t with
  | Token.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let at_kw st kw = kw_is (peek st) kw

let eat_kw st kw =
  if at_kw st kw then begin advance st; true end else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    error st
      (Printf.sprintf "expected %s, found %s" kw (Token.to_string (peek st)))

let reserved =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "LIMIT"; "AND";
    "OR"; "NOT"; "AS"; "ON"; "JOIN"; "INNER"; "BY"; "DISTINCT"; "IS"; "NULL";
    "IN"; "BETWEEN"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END"; "UNION"; "ASC";
    "DESC"; "VALUES"; "INSERT"; "CREATE"; "DROP"; "TABLE"; "SET"; "LEFT";
    "RIGHT"; "FULL"; "OUTER"; "CROSS"; "EXPLAIN"; "DELETE"; "COPY"; "PLAN";
  ]

let ident st what =
  match peek st with
  | Token.Ident s when not (List.mem (String.uppercase_ascii s) reserved) ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected %s, found %s" what (Token.to_string t))

let agg_of_name s =
  match String.uppercase_ascii s with
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let parse_date_literal st s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some y, Some m, Some d -> Data.Value.date y m d
      | _ -> error st (Printf.sprintf "malformed date literal '%s'" s))
  | _ -> error st (Printf.sprintf "malformed date literal '%s'" s)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_or st =
  let lhs = parse_and st in
  if eat_kw st "OR" then Ast.Binop ("OR", lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if eat_kw st "AND" then Ast.Binop ("AND", lhs, parse_and st) else lhs

and parse_not st =
  if eat_kw st "NOT" then Ast.Unop ("NOT", parse_not st) else parse_predicate st

and parse_predicate st =
  let lhs = parse_additive st in
  match peek st with
  | Token.Eq -> advance st; Ast.Binop ("=", lhs, parse_additive st)
  | Token.Neq -> advance st; Ast.Binop ("<>", lhs, parse_additive st)
  | Token.Lt -> advance st; Ast.Binop ("<", lhs, parse_additive st)
  | Token.Le -> advance st; Ast.Binop ("<=", lhs, parse_additive st)
  | Token.Gt -> advance st; Ast.Binop (">", lhs, parse_additive st)
  | Token.Ge -> advance st; Ast.Binop (">=", lhs, parse_additive st)
  | t when kw_is t "IS" ->
      advance st;
      let positive = not (eat_kw st "NOT") in
      expect_kw st "NULL";
      Ast.Is_null (lhs, positive)
  | t when kw_is t "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      expect_kw st "AND";
      let hi = parse_additive st in
      Ast.Between (lhs, lo, hi)
  | t when kw_is t "IN" || kw_is t "NOT" ->
      let positive = not (eat_kw st "NOT") in
      expect_kw st "IN";
      expect st Token.Lparen "(";
      let items = parse_expr_list st in
      expect st Token.Rparen ")";
      Ast.In_list (lhs, items, positive)
  | _ -> lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Plus -> advance st; lhs := Ast.Binop ("+", !lhs, parse_multiplicative st)
    | Token.Minus -> advance st; lhs := Ast.Binop ("-", !lhs, parse_multiplicative st)
    | Token.Concat -> advance st; lhs := Ast.Binop ("||", !lhs, parse_multiplicative st)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Star -> advance st; lhs := Ast.Binop ("*", !lhs, parse_unary st)
    | Token.Slash -> advance st; lhs := Ast.Binop ("/", !lhs, parse_unary st)
    | Token.Percent -> advance st; lhs := Ast.Binop ("%", !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Token.Minus -> advance st; Ast.Unop ("-", parse_unary st)
  | Token.Plus -> advance st; parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.Int_lit i -> advance st; Ast.Lit (Data.Value.Int i)
  | Token.Float_lit f -> advance st; Ast.Lit (Data.Value.Float f)
  | Token.Str_lit s -> advance st; Ast.Lit (Data.Value.Str s)
  | Token.Lparen ->
      advance st;
      if at_kw st "SELECT" then begin
        let q = parse_query_body st in
        expect st Token.Rparen ")";
        Ast.Scalar_sub q
      end
      else begin
        let e = parse_or st in
        expect st Token.Rparen ")";
        e
      end
  | Token.Ident s when kw_is (peek st) "CASE" -> ignore s; parse_case st
  | Token.Ident _ when kw_is (peek st) "NULL" -> advance st; Ast.Lit Data.Value.Null
  | Token.Ident _ when kw_is (peek st) "TRUE" -> advance st; Ast.Lit (Data.Value.Bool true)
  | Token.Ident _ when kw_is (peek st) "FALSE" -> advance st; Ast.Lit (Data.Value.Bool false)
  | Token.Ident s
    when kw_is (peek st) "DATE"
         && match peek2 st with Token.Str_lit _ -> true | _ -> false -> (
      ignore s;
      advance st;
      match peek st with
      | Token.Str_lit d -> advance st; Ast.Lit (parse_date_literal st d)
      | _ -> assert false)
  | Token.Ident name -> (
      match peek2 st with
      | Token.Lparen -> (
          advance st;
          advance st;
          (* aggregate or scalar function call *)
          match agg_of_name name with
          | Some Ast.Count when peek st = Token.Star ->
              advance st;
              expect st Token.Rparen ")";
              Ast.Agg (Ast.Count, false, None)
          | Some agg ->
              let distinct = eat_kw st "DISTINCT" in
              let arg = parse_or st in
              expect st Token.Rparen ")";
              Ast.Agg (agg, distinct, Some arg)
          | None ->
              let args =
                if peek st = Token.Rparen then [] else parse_expr_list st
              in
              expect st Token.Rparen ")";
              Ast.Fncall (String.lowercase_ascii name, args))
      | Token.Dot ->
          advance st;
          advance st;
          let col = ident st "column name" in
          Ast.Ref (Some name, col)
      | _ ->
          if List.mem (String.uppercase_ascii name) reserved then
            error st (Printf.sprintf "unexpected keyword %s" name)
          else begin
            advance st;
            Ast.Ref (None, name)
          end)
  | t -> error st (Printf.sprintf "unexpected token %s" (Token.to_string t))

and parse_case st =
  expect_kw st "CASE";
  let arms = ref [] in
  while at_kw st "WHEN" do
    advance st;
    let c = parse_or st in
    expect_kw st "THEN";
    let v = parse_or st in
    arms := (c, v) :: !arms
  done;
  let els = if eat_kw st "ELSE" then Some (parse_or st) else None in
  expect_kw st "END";
  if !arms = [] then error st "CASE requires at least one WHEN arm";
  Ast.Case (List.rev !arms, els)

and parse_expr_list st =
  let e = parse_or st in
  if peek st = Token.Comma then begin
    advance st;
    e :: parse_expr_list st
  end
  else [ e ]

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

and parse_select_item st =
  let e = parse_or st in
  if eat_kw st "AS" then { Ast.item_expr = e; item_alias = Some (ident st "alias") }
  else
    match peek st with
    | Token.Ident s
      when (not (List.mem (String.uppercase_ascii s) reserved))
           && peek2 st <> Token.Lparen && peek2 st <> Token.Dot ->
        advance st;
        { Ast.item_expr = e; item_alias = Some s }
    | _ -> { Ast.item_expr = e; item_alias = None }

and parse_from_item st =
  if peek st = Token.Lparen then begin
    advance st;
    let q = parse_query_body st in
    expect st Token.Rparen ")";
    ignore (eat_kw st "AS");
    let alias = ident st "subquery alias" in
    Ast.From_sub (q, alias)
  end
  else
    let name = ident st "table name" in
    if eat_kw st "AS" then Ast.From_table (name, Some (ident st "alias"))
    else
      match peek st with
      | Token.Ident s when not (List.mem (String.uppercase_ascii s) reserved)
        ->
          advance st;
          Ast.From_table (name, Some s)
      | _ -> Ast.From_table (name, None)

and parse_from_clause st =
  (* Comma-separated items; INNER JOIN ... ON is folded into the item list,
     with the ON condition returned to be AND-ed into WHERE. *)
  let conds = ref [] in
  let rec joins acc =
    if eat_kw st "INNER" then begin
      expect_kw st "JOIN";
      join_tail acc
    end
    else if at_kw st "JOIN" then begin
      advance st;
      join_tail acc
    end
    else if at_kw st "CROSS" then begin
      advance st;
      expect_kw st "JOIN";
      joins (parse_from_item st :: acc)
    end
    else if at_kw st "LEFT" || at_kw st "RIGHT" || at_kw st "FULL" then
      error st "outer joins are not supported (paper scope: inner joins)"
    else acc
  and join_tail acc =
    let item = parse_from_item st in
    expect_kw st "ON";
    let c = parse_or st in
    conds := c :: !conds;
    joins (item :: acc)
  in
  let rec items acc =
    let acc = joins (parse_from_item st :: acc) in
    if peek st = Token.Comma then begin
      advance st;
      items acc
    end
    else List.rev acc
  in
  let fs = items [] in
  (fs, List.rev !conds)

and parse_group_item st =
  if at_kw st "ROLLUP" then begin
    advance st;
    expect st Token.Lparen "(";
    let es = parse_expr_list st in
    expect st Token.Rparen ")";
    Ast.G_rollup es
  end
  else if at_kw st "CUBE" then begin
    advance st;
    expect st Token.Lparen "(";
    let es = parse_expr_list st in
    expect st Token.Rparen ")";
    Ast.G_cube es
  end
  else if at_kw st "GROUPING" then begin
    advance st;
    expect_kw st "SETS";
    expect st Token.Lparen "(";
    let parse_set () =
      if peek st = Token.Lparen then begin
        advance st;
        let es = if peek st = Token.Rparen then [] else parse_expr_list st in
        expect st Token.Rparen ")";
        es
      end
      else [ parse_or st ]
    in
    let rec sets acc =
      let s = parse_set () in
      if peek st = Token.Comma then begin
        advance st;
        sets (s :: acc)
      end
      else List.rev (s :: acc)
    in
    let ss = sets [] in
    expect st Token.Rparen ")";
    Ast.G_sets ss
  end
  else Ast.G_expr (parse_or st)

and parse_select_core st =
  expect_kw st "SELECT";
  let distinct = eat_kw st "DISTINCT" in
  let select_star = peek st = Token.Star in
  let select =
    if select_star then begin
      advance st;
      []
    end
    else
      let rec items acc =
        let it = parse_select_item st in
        if peek st = Token.Comma then begin
          advance st;
          items (it :: acc)
        end
        else List.rev (it :: acc)
      in
      items []
  in
  expect_kw st "FROM";
  let from, join_conds = parse_from_clause st in
  let where = if eat_kw st "WHERE" then Some (parse_or st) else None in
  let where =
    match (join_conds, where) with
    | [], w -> w
    | cs, w ->
        let conj =
          List.fold_left (fun acc c -> Ast.Binop ("AND", acc, c)) (List.hd cs)
            (List.tl cs)
        in
        Some (match w with None -> conj | Some w -> Ast.Binop ("AND", conj, w))
  in
  let group_by =
    if eat_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec items acc =
        let g = parse_group_item st in
        if peek st = Token.Comma then begin
          advance st;
          items (g :: acc)
        end
        else List.rev (g :: acc)
      in
      items []
    end
    else []
  in
  let having = if eat_kw st "HAVING" then Some (parse_or st) else None in
  {
    Ast.distinct;
    select_star;
    select;
    from;
    where;
    group_by;
    having;
    order_by = [];
    limit = None;
    unions = [];
  }

(* A full query: a select core, optional UNION [ALL] chain (left-
   associative), then ORDER BY / LIMIT applying to the whole union. *)
and parse_query_body st =
  let head = parse_select_core st in
  let unions =
    let rec loop acc =
      if at_kw st "UNION" then begin
        advance st;
        let all = eat_kw st "ALL" in
        let q = parse_union_branch st in
        loop (acc @ [ (all, q) ])
      end
      else acc
    in
    loop []
  in
  let order_by =
    if eat_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec items acc =
        let e = parse_or st in
        let asc =
          if eat_kw st "DESC" then false
          else begin
            ignore (eat_kw st "ASC");
            true
          end
        in
        if peek st = Token.Comma then begin
          advance st;
          items ((e, asc) :: acc)
        end
        else List.rev ((e, asc) :: acc)
      in
      items []
    end
    else []
  in
  let limit =
    if eat_kw st "LIMIT" then
      match peek st with
      | Token.Int_lit i -> advance st; Some i
      | _ -> error st "expected integer after LIMIT"
    else None
  in
  { head with Ast.order_by; limit; unions }

(* a UNION branch: a select core, or a parenthesized sub-union *)
and parse_union_branch st =
  if peek st = Token.Lparen then begin
    advance st;
    let q = parse_query_body st in
    expect st Token.Rparen ")";
    q
  end
  else parse_select_core st

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_ident_list st =
  let rec loop acc =
    let i = ident st "column name" in
    if peek st = Token.Comma then begin
      advance st;
      loop (i :: acc)
    end
    else List.rev (i :: acc)
  in
  loop []

let parse_create_table st =
  let name = ident st "table name" in
  expect st Token.Lparen "(";
  let cols = ref [] and constraints = ref [] in
  let parse_entry () =
    if at_kw st "PRIMARY" then begin
      advance st;
      expect_kw st "KEY";
      expect st Token.Lparen "(";
      let ks = parse_ident_list st in
      expect st Token.Rparen ")";
      constraints := Ast.C_primary_key ks :: !constraints
    end
    else if at_kw st "UNIQUE" then begin
      advance st;
      expect st Token.Lparen "(";
      let ks = parse_ident_list st in
      expect st Token.Rparen ")";
      constraints := Ast.C_unique ks :: !constraints
    end
    else if at_kw st "FOREIGN" then begin
      advance st;
      expect_kw st "KEY";
      expect st Token.Lparen "(";
      let ks = parse_ident_list st in
      expect st Token.Rparen ")";
      expect_kw st "REFERENCES";
      let ref_table = ident st "referenced table" in
      expect st Token.Lparen "(";
      let rks = parse_ident_list st in
      expect st Token.Rparen ")";
      constraints := Ast.C_foreign_key (ks, ref_table, rks) :: !constraints
    end
    else begin
      let cname = ident st "column name" in
      let tyname = ident st "type name" in
      let ty =
        match Data.Value.ty_of_string tyname with
        | Some t -> t
        | None -> error st (Printf.sprintf "unknown type %s" tyname)
      in
      (* tolerate a parenthesized precision, e.g. VARCHAR(20) *)
      if peek st = Token.Lparen then begin
        advance st;
        (match peek st with
        | Token.Int_lit _ -> advance st
        | _ -> error st "expected integer precision");
        if peek st = Token.Comma then begin
          advance st;
          match peek st with
          | Token.Int_lit _ -> advance st
          | _ -> error st "expected integer scale"
        end;
        expect st Token.Rparen ")"
      end;
      let not_null = ref false in
      let inline_pk = ref false in
      let progress = ref true in
      while !progress do
        if at_kw st "NOT" then begin
          advance st;
          expect_kw st "NULL";
          not_null := true
        end
        else if at_kw st "PRIMARY" then begin
          advance st;
          expect_kw st "KEY";
          inline_pk := true
        end
        else progress := false
      done;
      cols :=
        { Ast.cd_name = cname; cd_ty = ty; cd_not_null = !not_null || !inline_pk }
        :: !cols;
      if !inline_pk then constraints := Ast.C_primary_key [ cname ] :: !constraints
    end
  in
  let rec entries () =
    parse_entry ();
    if peek st = Token.Comma then begin
      advance st;
      entries ()
    end
  in
  entries ();
  expect st Token.Rparen ")";
  Ast.Create_table
    { ct_name = name; ct_cols = List.rev !cols; ct_constraints = List.rev !constraints }

let parse_insert st =
  expect_kw st "INTO";
  let table = ident st "table name" in
  let cols =
    if peek st = Token.Lparen then begin
      advance st;
      let cs = parse_ident_list st in
      expect st Token.Rparen ")";
      Some cs
    end
    else None
  in
  expect_kw st "VALUES";
  let parse_row () =
    expect st Token.Lparen "(";
    let es = parse_expr_list st in
    expect st Token.Rparen ")";
    es
  in
  let rec rows acc =
    let r = parse_row () in
    if peek st = Token.Comma then begin
      advance st;
      rows (r :: acc)
    end
    else List.rev (r :: acc)
  in
  Ast.Insert { ins_table = table; ins_cols = cols; ins_rows = rows [] }

let parse_stmt_body st =
  if at_kw st "CREATE" then begin
    advance st;
    if at_kw st "TABLE" then begin
      advance st;
      parse_create_table st
    end
    else if at_kw st "SUMMARY" || at_kw st "MATERIALIZED" then begin
      let matview = at_kw st "MATERIALIZED" in
      advance st;
      if matview then expect_kw st "VIEW" else expect_kw st "TABLE";
      let name = ident st "summary table name" in
      expect_kw st "AS";
      let wrapped = peek st = Token.Lparen && kw_is (peek2 st) "SELECT" in
      if wrapped then advance st;
      let q = parse_query_body st in
      if wrapped then expect st Token.Rparen ")";
      Ast.Create_summary { cs_name = name; cs_query = q }
    end
    else error st "expected TABLE, SUMMARY TABLE or MATERIALIZED VIEW"
  end
  else if at_kw st "INSERT" then begin
    advance st;
    parse_insert st
  end
  else if at_kw st "COPY" then begin
    advance st;
    let table = ident st "table name" in
    if eat_kw st "FROM" then begin
      let path =
        match peek st with
        | Token.Str_lit p -> advance st; p
        | _ -> error st "expected a quoted file path"
      in
      let header =
        if eat_kw st "WITH" then begin
          expect_kw st "HEADER";
          true
        end
        else false
      in
      Ast.Copy_from { cf_table = table; cf_path = path; cf_header = header }
    end
    else begin
      expect_kw st "TO";
      match peek st with
      | Token.Str_lit p -> advance st; Ast.Copy_to { ct2_table = table; ct2_path = p }
      | _ -> error st "expected a quoted file path"
    end
  end
  else if at_kw st "DELETE" then begin
    advance st;
    expect_kw st "FROM";
    let table = ident st "table name" in
    let where = if eat_kw st "WHERE" then Some (parse_or st) else None in
    Ast.Delete { del_table = table; del_where = where }
  end
  else if at_kw st "DROP" then begin
    advance st;
    ignore (eat_kw st "SUMMARY");
    ignore (eat_kw st "TABLE");
    Ast.Drop_summary (ident st "summary table name")
  end
  else if at_kw st "REFRESH" then begin
    advance st;
    ignore (eat_kw st "SUMMARY");
    ignore (eat_kw st "TABLE");
    Ast.Refresh_summary (ident st "summary table name")
  end
  else if at_kw st "EXPLAIN" then begin
    advance st;
    if eat_kw st "REWRITE" then begin
      let verbose = eat_kw st "VERBOSE" in
      Ast.Explain_rewrite (parse_query_body st, verbose)
    end
    else begin
      ignore (eat_kw st "PLAN");
      Ast.Explain_plan (parse_query_body st)
    end
  end
  else if at_kw st "SELECT" then Ast.Select (parse_query_body st)
  else error st "expected a statement"

let init src = { toks = Lexer.tokenize src }

let finish st what =
  (match peek st with Token.Semi -> advance st | _ -> ());
  match peek st with
  | Token.Eof -> ()
  | t ->
      error st
        (Printf.sprintf "trailing input after %s: %s" what (Token.to_string t))

let parse_query src =
  let st = init src in
  let q = parse_query_body st in
  finish st "query";
  q

let parse_stmt src =
  let st = init src in
  let s = parse_stmt_body st in
  finish st "statement";
  s

(* Stepping interface: parse one statement at a time so a caller can
   execute each before the next is even parsed — a syntax error later in a
   script then cannot retroactively void earlier statements. *)
type cursor = state

let script_start src = init src

let script_next st =
  let rec skip () =
    match peek st with
    | Token.Semi -> advance st; skip ()
    | _ -> ()
  in
  skip ();
  match peek st with
  | Token.Eof -> None
  | _ ->
      let s = parse_stmt_body st in
      (match peek st with
      | Token.Semi -> advance st
      | Token.Eof -> ()
      | t ->
          error st
            (Printf.sprintf "expected ';' between statements, found %s"
               (Token.to_string t)));
      Some s

let parse_script src =
  let st = script_start src in
  let rec loop acc =
    match script_next st with None -> List.rev acc | Some s -> loop (s :: acc)
  in
  loop []

let parse_expr src =
  let st = init src in
  let e = parse_or st in
  finish st "expression";
  e
