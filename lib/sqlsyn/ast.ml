(* Abstract syntax of the SQL dialect.

   The dialect covers what the paper's examples need and a bit more:
   select/project/join blocks, WHERE/HAVING, aggregation with DISTINCT,
   multidimensional grouping (ROLLUP / CUBE / GROUPING SETS), table
   subqueries in FROM, non-correlated scalar subqueries in expressions,
   ORDER BY / LIMIT, plus the DDL and DML needed to drive the engine. *)

type ident = string

type agg_name = Count | Sum | Avg | Min | Max

type expr =
  | Lit of Data.Value.t
  | Ref of ident option * ident          (* [qualifier.]column *)
  | Unop of string * expr                (* "-" | "NOT" *)
  | Binop of string * expr * expr        (* arithmetic, comparison, AND/OR, "||" *)
  | Fncall of string * expr list         (* scalar functions: year, month, ... *)
  | Agg of agg_name * bool * expr option (* aggregate, DISTINCT flag; None = COUNT star *)
  | Is_null of expr * bool               (* expr IS [NOT(false)] NULL; bool = positive *)
  | In_list of expr * expr list * bool   (* expr [NOT(false)] IN (e1, ..., en) *)
  | Between of expr * expr * expr
  | Case of (expr * expr) list * expr option
  | Scalar_sub of query

and select_item = { item_expr : expr; item_alias : ident option }

and from_item =
  | From_table of ident * ident option
  | From_sub of query * ident

and group_item =
  | G_expr of expr
  | G_rollup of expr list
  | G_cube of expr list
  | G_sets of expr list list

and query = {
  distinct : bool;
  select_star : bool;
  select : select_item list;             (* empty iff select_star *)
  from : from_item list;
  where : expr option;
  group_by : group_item list;
  having : expr option;
  order_by : (expr * bool) list;         (* bool = ascending *)
  limit : int option;
  unions : (bool * query) list;
      (* further UNION [ALL(true)] branches; ORDER BY/LIMIT of the head
         query apply to the whole union *)
}

type col_def = {
  cd_name : ident;
  cd_ty : Data.Value.ty;
  cd_not_null : bool;
}

type table_constraint =
  | C_primary_key of ident list
  | C_unique of ident list
  | C_foreign_key of ident list * ident * ident list

type stmt =
  | Create_table of {
      ct_name : ident;
      ct_cols : col_def list;
      ct_constraints : table_constraint list;
    }
  | Insert of {
      ins_table : ident;
      ins_cols : ident list option;
      ins_rows : expr list list;
    }
  | Delete of { del_table : ident; del_where : expr option }
  | Copy_from of { cf_table : ident; cf_path : string; cf_header : bool }
  | Copy_to of { ct2_table : ident; ct2_path : string }
  | Create_summary of { cs_name : ident; cs_query : query }
  | Drop_summary of ident
  | Refresh_summary of ident
  | Select of query
  | Explain_rewrite of (query * bool)  (* true = VERBOSE (full span trace) *)
  | Explain_plan of query

let empty_query =
  {
    distinct = false;
    select_star = false;
    select = [];
    from = [];
    where = None;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
    unions = [];
  }

let agg_name_to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

(* Fold over all immediate sub-expressions (not descending into subqueries). *)
let sub_exprs = function
  | Lit _ | Ref _ | Scalar_sub _ -> []
  | Unop (_, e) | Is_null (e, _) -> [ e ]
  | Binop (_, a, b) -> [ a; b ]
  | Fncall (_, es) -> es
  | Agg (_, _, e) -> Option.to_list e
  | In_list (e, es, _) -> e :: es
  | Between (e, lo, hi) -> [ e; lo; hi ]
  | Case (arms, els) ->
      List.concat_map (fun (c, v) -> [ c; v ]) arms @ Option.to_list els

let rec contains_agg e =
  match e with
  | Agg _ -> true
  | Scalar_sub _ -> false
  | e -> List.exists contains_agg (sub_exprs e)
