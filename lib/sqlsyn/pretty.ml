open Format

let prec_of_binop = function
  | "OR" -> 1
  | "AND" -> 2
  | "=" | "<>" | "<" | "<=" | ">" | ">=" -> 4
  | "+" | "-" | "||" -> 5
  | "*" | "/" | "%" -> 6
  | _ -> 7

let lit_to_string v =
  match v with
  | Data.Value.Str s ->
      let b = Buffer.create (String.length s + 2) in
      Buffer.add_char b '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
        s;
      Buffer.add_char b '\'';
      Buffer.contents b
  | Data.Value.Date _ -> "DATE '" ^ Data.Value.to_string v ^ "'"
  | v -> Data.Value.to_string v

let rec pp_expr_prec prec fmt e =
  match e with
  | Ast.Lit v -> pp_print_string fmt (lit_to_string v)
  | Ast.Ref (None, c) -> pp_print_string fmt c
  | Ast.Ref (Some q, c) -> fprintf fmt "%s.%s" q c
  | Ast.Unop ("NOT", e) ->
      let s = prec_of_binop "AND" in
      if prec > 2 then fprintf fmt "(NOT %a)" (pp_expr_prec s) e
      else fprintf fmt "NOT %a" (pp_expr_prec s) e
  | Ast.Unop ("-", e) ->
      (* avoid "--", which lexes as a line comment *)
      let s = asprintf "%a" (pp_expr_prec 7) e in
      if String.length s > 0 && s.[0] = '-' then fprintf fmt "-(%s)" s
      else fprintf fmt "-%s" s
  | Ast.Unop (op, e) -> fprintf fmt "%s%a" op (pp_expr_prec 7) e
  | Ast.Binop (op, a, b) ->
      let p = prec_of_binop op in
      (* comparisons are non-associative: parenthesize nested ones *)
      let lp = match op with "=" | "<>" | "<" | "<=" | ">" | ">=" -> p + 1 | _ -> p in
      let body fmt () =
        fprintf fmt "%a %s %a" (pp_expr_prec lp) a op (pp_expr_prec (p + 1)) b
      in
      if p < prec then fprintf fmt "(%a)" body () else body fmt ()
  | Ast.Fncall (f, args) ->
      fprintf fmt "%s(%a)" f
        (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") (pp_expr_prec 0))
        args
  | Ast.Agg (a, _, None) -> fprintf fmt "%s(*)" (Ast.agg_name_to_string a)
  | Ast.Agg (a, distinct, Some e) ->
      fprintf fmt "%s(%s%a)" (Ast.agg_name_to_string a)
        (if distinct then "DISTINCT " else "")
        (pp_expr_prec 0) e
  | Ast.Is_null (e, positive) ->
      (* postfix predicates sit at comparison level: parenthesize as an
         operand of anything tighter *)
      let body fmt () =
        fprintf fmt "%a IS %sNULL" (pp_expr_prec 5) e
          (if positive then "" else "NOT ")
      in
      if prec > 4 then fprintf fmt "(%a)" body () else body fmt ()
  | Ast.In_list (e, items, positive) ->
      let body fmt () =
        fprintf fmt "%a %sIN (%a)" (pp_expr_prec 5) e
          (if positive then "" else "NOT ")
          (pp_print_list
             ~pp_sep:(fun fmt () -> fprintf fmt ", ")
             (pp_expr_prec 0))
          items
      in
      if prec > 4 then fprintf fmt "(%a)" body () else body fmt ()
  | Ast.Between (e, lo, hi) ->
      let body fmt () =
        fprintf fmt "%a BETWEEN %a AND %a" (pp_expr_prec 5) e (pp_expr_prec 5)
          lo (pp_expr_prec 5) hi
      in
      if prec > 4 then fprintf fmt "(%a)" body () else body fmt ()
  | Ast.Case (arms, els) ->
      fprintf fmt "CASE";
      List.iter
        (fun (c, v) ->
          fprintf fmt " WHEN %a THEN %a" (pp_expr_prec 0) c (pp_expr_prec 0) v)
        arms;
      (match els with
      | Some e -> fprintf fmt " ELSE %a" (pp_expr_prec 0) e
      | None -> ());
      fprintf fmt " END"
  | Ast.Scalar_sub q -> fprintf fmt "(%a)" pp_query q

and pp_select_item fmt { Ast.item_expr; item_alias } =
  match item_alias with
  | None -> pp_expr_prec 0 fmt item_expr
  | Some a -> fprintf fmt "%a AS %s" (pp_expr_prec 0) item_expr a

and pp_from_item fmt = function
  | Ast.From_table (t, None) -> pp_print_string fmt t
  | Ast.From_table (t, Some a) ->
      if String.lowercase_ascii t = String.lowercase_ascii a then
        pp_print_string fmt t
      else fprintf fmt "%s AS %s" t a
  | Ast.From_sub (q, a) -> fprintf fmt "(%a) AS %s" pp_query q a

and pp_group_item fmt = function
  | Ast.G_expr e -> pp_expr_prec 0 fmt e
  | Ast.G_rollup es ->
      fprintf fmt "ROLLUP(%a)"
        (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") (pp_expr_prec 0))
        es
  | Ast.G_cube es ->
      fprintf fmt "CUBE(%a)"
        (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") (pp_expr_prec 0))
        es
  | Ast.G_sets sets ->
      let pp_set fmt es =
        fprintf fmt "(%a)"
          (pp_print_list
             ~pp_sep:(fun fmt () -> fprintf fmt ", ")
             (pp_expr_prec 0))
          es
      in
      fprintf fmt "GROUPING SETS(%a)"
        (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_set)
        sets

and pp_query fmt (q : Ast.query) =
  fprintf fmt "SELECT %s" (if q.distinct then "DISTINCT " else "");
  if q.select_star then pp_print_string fmt "*"
  else
    pp_print_list
      ~pp_sep:(fun fmt () -> fprintf fmt ", ")
      pp_select_item fmt q.select;
  fprintf fmt " FROM %a"
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_from_item)
    q.from;
  (match q.where with
  | Some w -> fprintf fmt " WHERE %a" (pp_expr_prec 0) w
  | None -> ());
  if q.group_by <> [] then
    fprintf fmt " GROUP BY %a"
      (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_group_item)
      q.group_by;
  (match q.having with
  | Some h -> fprintf fmt " HAVING %a" (pp_expr_prec 0) h
  | None -> ());
  if q.order_by <> [] then begin
    let pp_ord fmt (e, asc) =
      fprintf fmt "%a%s" (pp_expr_prec 0) e (if asc then "" else " DESC")
    in
    fprintf fmt " ORDER BY %a"
      (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_ord)
      q.order_by
  end;
  (match q.limit with Some l -> fprintf fmt " LIMIT %d" l | None -> ());
  List.iter
    (fun (all, branch) ->
      fprintf fmt " UNION %s%a" (if all then "ALL " else "") pp_query branch)
    q.unions

let pp_expr fmt e = pp_expr_prec 0 fmt e
let expr_to_string e = asprintf "%a" pp_expr e
let query_to_string q = asprintf "%a" pp_query q

let stmt_to_string = function
  | Ast.Select q -> query_to_string q
  | Ast.Explain_rewrite (q, verbose) ->
      "EXPLAIN REWRITE "
      ^ (if verbose then "VERBOSE " else "")
      ^ query_to_string q
  | Ast.Explain_plan q -> "EXPLAIN " ^ query_to_string q
  | Ast.Create_summary { cs_name; cs_query } ->
      Printf.sprintf "CREATE SUMMARY TABLE %s AS %s" cs_name
        (query_to_string cs_query)
  | Ast.Drop_summary n -> "DROP SUMMARY TABLE " ^ n
  | Ast.Refresh_summary n -> "REFRESH SUMMARY TABLE " ^ n
  | Ast.Create_table { ct_name; ct_cols; ct_constraints } ->
      let col c =
        Printf.sprintf "%s %s%s" c.Ast.cd_name
          (Data.Value.ty_to_string c.Ast.cd_ty)
          (if c.Ast.cd_not_null then " NOT NULL" else "")
      in
      let con = function
        | Ast.C_primary_key ks ->
            Printf.sprintf "PRIMARY KEY (%s)" (String.concat ", " ks)
        | Ast.C_unique ks -> Printf.sprintf "UNIQUE (%s)" (String.concat ", " ks)
        | Ast.C_foreign_key (ks, t, rks) ->
            Printf.sprintf "FOREIGN KEY (%s) REFERENCES %s (%s)"
              (String.concat ", " ks) t (String.concat ", " rks)
      in
      Printf.sprintf "CREATE TABLE %s (%s)" ct_name
        (String.concat ", " (List.map col ct_cols @ List.map con ct_constraints))
  | Ast.Copy_from { cf_table; cf_path; cf_header } ->
      Printf.sprintf "COPY %s FROM '%s'%s" cf_table cf_path
        (if cf_header then " WITH HEADER" else "")
  | Ast.Copy_to { ct2_table; ct2_path } ->
      Printf.sprintf "COPY %s TO '%s'" ct2_table ct2_path
  | Ast.Delete { del_table; del_where } ->
      Printf.sprintf "DELETE FROM %s%s" del_table
        (match del_where with
        | None -> ""
        | Some w -> " WHERE " ^ expr_to_string w)
  | Ast.Insert { ins_table; ins_cols; ins_rows } ->
      let cols =
        match ins_cols with
        | None -> ""
        | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
      in
      let row es =
        Printf.sprintf "(%s)" (String.concat ", " (List.map expr_to_string es))
      in
      Printf.sprintf "INSERT INTO %s%s VALUES %s" ins_table cols
        (String.concat ", " (List.map row ins_rows))
