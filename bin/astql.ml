(* astql — interactive shell / script runner for the summary-table rewriter.

   Subcommands:
     astql run FILE...      execute SQL scripts (DDL, DML, summary tables,
                            queries, EXPLAIN REWRITE)
     astql repl             interactive shell (empty database)
     astql demo             interactive shell preloaded with the paper's
                            star schema and generated data
     astql advise FILE      recommend summary tables for a query workload *)

let print_outcome = function
  | Mvstore.Session.Msg m -> print_endline m
  | Mvstore.Session.Table rel ->
      print_endline (Data.Relation.to_string rel)
  | Mvstore.Session.Plan p -> print_string p

(* Execute statements one at a time, printing each outcome as it happens,
   so output (and effects) of statements before a failure are preserved.
   Returns false when anything failed. *)
let exec_text session text =
  match Sqlsyn.Parser.script_start text with
  | exception Sqlsyn.Lexer.Lex_error (m, p) ->
      Printf.printf "lexical error at offset %d: %s\n" p m;
      false
  | cursor ->
      let rec loop ok =
        match Sqlsyn.Parser.script_next cursor with
        | None -> ok
        | exception Sqlsyn.Parser.Parse_error (m, p) ->
            Printf.printf "parse error at offset %d: %s\n" p m;
            false
        | exception Sqlsyn.Lexer.Lex_error (m, p) ->
            Printf.printf "lexical error at offset %d: %s\n" p m;
            false
        | Some stmt -> (
            match print_outcome (Mvstore.Session.exec_stmt session stmt) with
            | () -> loop ok
            | exception Mvstore.Session.Session_error m ->
                Printf.printf "error: %s\n" m;
                loop false
            | exception Engine.Exec.Exec_error m ->
                Printf.printf "execution error: %s\n" m;
                loop false
            | exception Engine.Eval.Eval_error m ->
                Printf.printf "evaluation error: %s\n" m;
                loop false)
      in
      loop true

let print_stats session =
  print_endline (Plancache.Stats.to_string (Mvstore.Session.stats session))

let repl session =
  print_endline
    "astql — type SQL statements ending with ';'  (\\q to quit, \\stats for \
     planner counters)";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "astql> " else "   ...> ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let trimmed = String.trim line in
        if trimmed = "\\q" || trimmed = "quit" then ()
        else if trimmed = "\\stats" then begin
          print_stats session;
          loop ()
        end
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if String.contains line ';' then begin
            let text = Buffer.contents buf in
            Buffer.clear buf;
            ignore (exec_text session text)
          end;
          loop ()
        end
  in
  loop ()

let make_session ~rewrite ~demo ~scale =
  if demo then begin
    let params = Workload.Star_schema.scaled scale in
    let tables = Workload.Star_schema.generate params in
    let session =
      Mvstore.Session.of_tables ~rewrite (Workload.Star_schema.catalog ()) tables
    in
    Printf.printf "loaded star schema (%d transactions)\n"
      (Data.Relation.cardinality (List.assoc "Trans" tables));
    session
  end
  else Mvstore.Session.create ~rewrite ()

open Cmdliner

let rewrite_flag =
  let doc = "Disable transparent summary-table rewriting." in
  Arg.(value & flag & info [ "no-rewrite" ] ~doc)

let scale_arg =
  let doc = "Demo data scale factor." in
  Arg.(value & opt int 1 & info [ "scale" ] ~doc)

let files_arg =
  Arg.(value & pos_all non_dir_file [] & info [] ~docv:"FILE")

let stats_flag =
  let doc = "Print rewrite-planner counters (cache hits/misses, filtered candidates) after execution." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let run_cmd =
  let doc = "Execute SQL script files." in
  let run no_rewrite stats files =
    let session = make_session ~rewrite:(not no_rewrite) ~demo:false ~scale:1 in
    let ok =
      List.fold_left
        (fun ok f ->
          exec_text session (In_channel.with_open_text f In_channel.input_all)
          && ok)
        true files
    in
    if stats then print_stats session;
    if not ok then Stdlib.exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ rewrite_flag $ stats_flag $ files_arg)

let repl_cmd =
  let doc = "Interactive shell over an empty database." in
  let run no_rewrite = repl (make_session ~rewrite:(not no_rewrite) ~demo:false ~scale:1) in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const run $ rewrite_flag)

let demo_cmd =
  let doc = "Interactive shell preloaded with the paper's star schema." in
  let run no_rewrite scale =
    repl (make_session ~rewrite:(not no_rewrite) ~demo:true ~scale)
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ rewrite_flag $ scale_arg)

let advise_cmd =
  let doc =
    "Recommend summary tables for a workload (one SELECT per statement)."
  in
  let run files =
    let queries =
      List.concat_map
        (fun f ->
          In_channel.with_open_text f In_channel.input_all
          |> String.split_on_char ';'
          |> List.map String.trim
          |> List.filter (fun s -> s <> ""))
        files
    in
    let recs = Mvstore.Advisor.recommend Catalog.empty queries in
    if recs = [] then print_endline "no recommendations (no aggregate queries found)"
    else
      List.iter
        (fun (r : Mvstore.Advisor.recommendation) ->
          Printf.printf "-- serves %d workload quer%s\n"
            (List.length r.rec_serves)
            (if List.length r.rec_serves = 1 then "y" else "ies");
          Printf.printf "CREATE SUMMARY TABLE %s AS %s;\n\n" r.rec_name r.rec_sql)
        recs
  in
  Cmd.v (Cmd.info "advise" ~doc) Term.(const run $ files_arg)

let () =
  let doc = "answering complex SQL queries using automatic summary tables" in
  let info = Cmd.info "astql" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; repl_cmd; demo_cmd; advise_cmd ]))
