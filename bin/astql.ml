(* astql — interactive shell / script runner for the summary-table rewriter.

   Subcommands:
     astql run FILE...      execute SQL scripts (DDL, DML, summary tables,
                            queries, EXPLAIN REWRITE)
     astql repl             interactive shell (empty database)
     astql demo             interactive shell preloaded with the paper's
                            star schema and generated data
     astql advise FILE      recommend summary tables for a query workload
     astql lint FILE        static checks: queries are elaborated to QGM
                            and validated (Lint.Validate) without running;
                            summary-table definitions get definition-time
                            diagnostics (Lint.Advisor)

   Error containment: a failing statement mid-script — lexical, parse,
   semantic or runtime — prints a classified error with line/column context
   and execution continues with the next statement; the REPL never dies on
   bad input. Non-interactive runs exit non-zero at end-of-script when
   anything failed. *)

let print_outcome = function
  | Mvstore.Session.Msg m -> print_endline m
  | Mvstore.Session.Table rel ->
      print_endline (Data.Relation.to_string rel)
  | Mvstore.Session.Plan p -> print_string p

(* line/column of a byte offset, for error context *)
let pos_context text off =
  let off = min (max off 0) (String.length text) in
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < off && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    text;
  Printf.sprintf "line %d, column %d" !line (off - !bol + 1)

(* Execute one parsed statement; print its outcome or a classified error.
   Returns false when the statement failed. Nothing may escape: an
   unclassified exception is reported as internal and the script goes on. *)
let exec_one session stmt =
  match print_outcome (Mvstore.Session.exec_stmt session stmt) with
  | () -> true
  | exception Mvstore.Session.Session_error m ->
      Printf.printf "error: %s\n" m;
      false
  | exception Engine.Exec.Exec_error m ->
      Printf.printf "execution error: %s\n" m;
      false
  | exception Engine.Eval.Eval_error m ->
      Printf.printf "evaluation error: %s\n" m;
      false
  | exception Engine.Reference.Reference_error m ->
      Printf.printf "reference-engine error: %s\n" m;
      false
  | exception Mvstore.Store.Mv_error m ->
      Printf.printf "summary-table error: %s\n" m;
      false
  | exception Division_by_zero ->
      print_endline "error: division by zero";
      false
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception e ->
      Printf.printf "internal error: %s (statement skipped)\n"
        (Printexc.to_string e);
      false

(* Walk a script statement by statement, calling [on_stmt] on each parsed
   statement (returning false marks failure). On a lexical/parse error,
   [on_syntax_error] is told the kind, message and line/column context,
   then scanning resumes after the next ';' — a broken statement never
   aborts the rest of the script. Returns false when anything failed. *)
let walk_script ~on_stmt ~on_syntax_error text =
  let n = String.length text in
  (* resume after the next ';' at or beyond [off] *)
  let resume_point off =
    match String.index_from_opt text (min off (n - 1)) ';' with
    | Some i -> Some (i + 1)
    | None | (exception Invalid_argument _) -> None
  in
  let rec from_offset start ok =
    if start >= n || String.trim (String.sub text start (n - start)) = "" then
      ok
    else
      match Sqlsyn.Parser.script_start (String.sub text start (n - start)) with
      | cursor -> statements cursor start ok
      | exception Sqlsyn.Lexer.Lex_error (m, p) ->
          syntax_error "lexical error" m (start + p)
  and statements cursor base ok =
    match Sqlsyn.Parser.script_next cursor with
    | None -> ok
    | Some stmt -> statements cursor base (on_stmt stmt && ok)
    | exception Sqlsyn.Parser.Parse_error (m, p) ->
        syntax_error "parse error" m (base + p)
    | exception Sqlsyn.Lexer.Lex_error (m, p) ->
        syntax_error "lexical error" m (base + p)
  and syntax_error label m off =
    on_syntax_error label m (pos_context text off);
    match resume_point off with
    | Some next -> from_offset next false
    | None -> false
  in
  from_offset 0 true

(* Execute statements one at a time, printing each outcome as it happens. *)
let exec_text session text =
  walk_script
    ~on_stmt:(exec_one session)
    ~on_syntax_error:(fun label m ctx ->
      Printf.printf "%s at %s: %s\n" label ctx m)
    text

let print_stats session =
  print_endline (Plancache.Stats.to_string (Mvstore.Session.stats session))

let print_health ?durable session =
  print_endline (Mvstore.Session.health session);
  match durable with
  | Some mgr -> print_endline (Durable.Manager.describe mgr)
  | None -> ()

let print_metrics () = print_string (Obs.Metrics.to_text ())

let print_limits session =
  Printf.printf "limits: %s\n"
    (Govern.Budget.describe (Mvstore.Session.limits session))

(* \limits [off | deadline MS | matches N | candidates N | rows N] *)
let set_limits session args =
  let module B = Govern.Budget in
  let cur = Mvstore.Session.limits session in
  let bad () =
    print_endline
      "usage: \\limits [off | deadline MS | matches N | candidates N | rows N]"
  in
  (match args with
  | [] -> ()
  | [ "off" ] -> Mvstore.Session.set_limits session B.unlimited
  | [ "deadline"; v ] -> (
      match float_of_string_opt v with
      | Some ms when ms > 0. ->
          Mvstore.Session.set_limits session
            { cur with B.bl_deadline_ms = Some ms }
      | _ -> bad ())
  | [ key; v ] -> (
      match (key, int_of_string_opt v) with
      | "matches", Some n when n > 0 ->
          Mvstore.Session.set_limits session { cur with B.bl_matches = Some n }
      | "candidates", Some n when n > 0 ->
          Mvstore.Session.set_limits session
            { cur with B.bl_candidates = Some n }
      | "rows", Some n when n > 0 ->
          Mvstore.Session.set_limits session { cur with B.bl_rows = Some n }
      | _ -> bad ())
  | _ -> bad ());
  print_limits session

let print_lint session =
  match Mvstore.Session.lint_summaries session with
  | [] -> print_endline "no summary tables defined"
  | entries ->
      let clean = ref 0 in
      List.iter
        (fun (name, diags) ->
          match diags with
          | [] -> incr clean
          | ds ->
              List.iter
                (fun d ->
                  Printf.printf "%s: %s\n" name (Lint.Advisor.render d))
                ds)
        entries;
      if !clean > 0 then
        Printf.printf "%d summary table%s clean\n" !clean
          (if !clean = 1 then "" else "s")

(* One statement of [astql lint]: DDL executes quietly so later statements
   resolve against the right catalog; DML is skipped (table contents don't
   matter statically); queries are elaborated to QGM and validated without
   running; summary definitions additionally collect Advisor diagnostics.
   Returns false on a hard failure (semantic error, validator violation). *)
let lint_stmt session ~file ~stmt_no ~warnings stmt =
  let module A = Sqlsyn.Ast in
  let cat () = Engine.Db.catalog (Mvstore.Session.db session) in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "%s: %s\n" file m;
        false)
      fmt
  in
  let validate_query what q =
    match Qgm.Builder.build (cat ()) q with
    | exception Qgm.Builder.Sem_error m ->
        fail "%s: semantic error: %s" what m
    | g -> (
        (* deep mode adds the V118 prover pass (statically-unsatisfiable
           predicates) on top of the structural checks *)
        match Lint.Validate.check ~cat:(cat ()) ~deep:true g with
        | [] -> true
        | vs ->
            List.iter
              (fun v ->
                Printf.printf "%s: %s: %s\n" file what
                  (Lint.Validate.render v))
              vs;
            false)
  in
  let exec_quiet () =
    match Mvstore.Session.exec_stmt session stmt with
    | _ -> true
    | exception Mvstore.Session.Session_error m -> fail "error: %s" m
    | exception Mvstore.Store.Mv_error m -> fail "summary-table error: %s" m
  in
  match stmt with
  | A.Create_table _ | A.Drop_summary _ -> exec_quiet ()
  | A.Insert _ | A.Delete _ | A.Copy_from _ | A.Copy_to _
  | A.Refresh_summary _ ->
      true
  | A.Create_summary { cs_name; cs_query } ->
      validate_query (Printf.sprintf "summary %s" cs_name) cs_query
      && exec_quiet ()
      &&
      ((match
          List.assoc_opt cs_name (Mvstore.Session.lint_summaries session)
        with
       | Some ds ->
           List.iter
             (fun d ->
               incr warnings;
               Printf.printf "%s: summary %s: %s\n" file cs_name
                 (Lint.Advisor.render d))
             ds
       | None -> ());
       true)
  | A.Select q | A.Explain_rewrite (q, _) | A.Explain_plan q ->
      validate_query (Printf.sprintf "statement %d" stmt_no) q

let print_traces session =
  match Mvstore.Session.traces session with
  | [] ->
      print_endline
        "no traces recorded (\\trace on, then run a SELECT or EXPLAIN)"
  | traces ->
      List.iter
        (fun (label, tr) ->
          Printf.printf "-- %s\n" label;
          print_string (Obs.Trace.render tr))
        traces

let repl ?durable session =
  print_endline
    "astql — type SQL statements ending with ';'  (\\q to quit, \\stats for \
     planner counters, \\health for fault-isolation and maintenance \
     counters, \\limits to show/set per-statement resource budgets, \\trace \
     on|off|show for planning traces, \\metrics [json] for the metrics \
     registry, \\lint for summary-table diagnostics)";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "astql> " else "   ...> ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let trimmed = String.trim line in
        if trimmed = "\\q" || trimmed = "quit" then ()
        else if trimmed = "\\stats" then begin
          print_stats session;
          loop ()
        end
        else if trimmed = "\\health" then begin
          print_health ?durable session;
          loop ()
        end
        else if trimmed = "\\limits" then begin
          print_limits session;
          loop ()
        end
        else if
          String.length trimmed > 8 && String.sub trimmed 0 8 = "\\limits "
        then begin
          set_limits session
            (String.sub trimmed 8 (String.length trimmed - 8)
            |> String.split_on_char ' '
            |> List.map String.trim
            |> List.filter (fun s -> s <> ""));
          loop ()
        end
        else if trimmed = "\\lint" then begin
          print_lint session;
          loop ()
        end
        else if trimmed = "\\trace on" then begin
          Mvstore.Session.set_trace session true;
          print_endline "planning traces on";
          loop ()
        end
        else if trimmed = "\\trace off" then begin
          Mvstore.Session.set_trace session false;
          Mvstore.Session.clear_traces session;
          print_endline "planning traces off";
          loop ()
        end
        else if trimmed = "\\trace show" || trimmed = "\\trace" then begin
          print_traces session;
          loop ()
        end
        else if trimmed = "\\metrics json" then begin
          print_endline (Obs.Json.to_string (Obs.Metrics.to_json ()));
          loop ()
        end
        else if trimmed = "\\metrics" then begin
          print_metrics ();
          loop ()
        end
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if String.contains line ';' then begin
            let text = Buffer.contents buf in
            Buffer.clear buf;
            ignore (exec_text session text)
          end;
          loop ()
        end
  in
  loop ()

(* Per-statement resource limits: the environment defaults
   (ASTQL_DEADLINE_MS / ASTQL_MATCH_BUDGET) overridden by the flags. *)
let limits_of ~deadline_ms ~match_budget =
  let module B = Govern.Budget in
  let l = B.default_limits () in
  let l =
    match deadline_ms with
    | None -> l
    | Some ms -> { l with B.bl_deadline_ms = Some ms }
  in
  match match_budget with
  | None -> l
  | Some n -> { l with B.bl_matches = Some n }

let make_session ~rewrite ~verify ~budget ~auto_maint ~demo ~scale =
  if demo then begin
    let params = Workload.Star_schema.scaled scale in
    let tables = Workload.Star_schema.generate params in
    let session =
      Mvstore.Session.of_tables ~rewrite ~verify ~budget ~auto_maint
        (Workload.Star_schema.catalog ()) tables
    in
    Printf.printf "loaded star schema (%d transactions)\n"
      (Data.Relation.cardinality (List.assoc "Trans" tables));
    session
  end
  else Mvstore.Session.create ~rewrite ~verify ~budget ~auto_maint ()

(* With --durability, the recovered shared state is canonical: demo seed
   data only applies when the database was recovered empty (and is folded
   into a checkpoint immediately so it survives a crash before the first
   commit). *)
let state_empty shared =
  let snap = Mvstore.Shared.snapshot shared in
  Catalog.tables (Engine.Db.catalog snap.Mvstore.Shared.sn_db) = []

(* Build the session for run/repl/demo and hand it to [k] together with
   the durability manager when one is active. Without --durability this
   is the ordinary private in-process session. With it, boot-time
   recovery runs first, the session attaches to the recovered shared
   state with the commit hook installed (every committed write statement
   is WAL-logged before it is published), quarantined summaries from
   degraded recovery are queued for self-healing rebuild, and — however
   [k] returns or raises — a final checkpoint folds the WAL away so the
   next boot replays nothing. *)
let with_session ~rewrite ~verify ~budget ~auto_maint ~demo ~scale
    ~durability ~fsync ~checkpoint_every k =
  match durability with
  | None ->
      k (make_session ~rewrite ~verify ~budget ~auto_maint ~demo ~scale) None
  | Some dir ->
      let cfg =
        {
          Durable.Manager.c_dir = dir;
          c_fsync = fsync;
          c_checkpoint_every = checkpoint_every;
        }
      in
      let mgr, shared, report = Durable.Manager.recover cfg in
      Printf.eprintf "durability on — %s\n%!"
        (Durable.Manager.describe_report report);
      if demo then
        if state_empty shared then begin
          let seed =
            make_session ~rewrite ~verify ~budget ~auto_maint ~demo ~scale
          in
          Mvstore.Shared.with_write shared (fun _ ->
              ( {
                  Mvstore.Shared.sn_db = Mvstore.Session.db seed;
                  sn_store = Mvstore.Session.store seed;
                },
                () ));
          Durable.Manager.checkpoint mgr
        end
        else
          Printf.eprintf
            "recovered state is non-empty; ignoring demo seed data\n%!";
      let session =
        Mvstore.Session.attach ~rewrite ~verify ~budget ~auto_maint shared
      in
      Durable.Manager.bind mgr session;
      List.iter
        (Mvstore.Maint.enqueue (Mvstore.Session.maint session))
        report.Durable.Manager.r_quarantined;
      Fun.protect
        ~finally:(fun () ->
          Durable.Manager.checkpoint mgr;
          Durable.Manager.close mgr)
        (fun () -> k session (Some mgr))

open Cmdliner

let rewrite_flag =
  let doc = "Disable transparent summary-table rewriting." in
  Arg.(value & flag & info [ "no-rewrite" ] ~doc)

let verify_conv =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "off" -> Ok Mvstore.Session.Off
    | "always" -> Ok Mvstore.Session.Always
    | "static" -> Ok Mvstore.Session.Static
    | s when String.length s > 7 && String.sub s 0 7 = "sample:" -> (
        match float_of_string_opt (String.sub s 7 (String.length s - 7)) with
        | Some p when p > 0. && p <= 1. -> Ok (Mvstore.Session.Sampled p)
        | _ -> Error (`Msg "expected sample:P with 0 < P <= 1"))
    | _ -> Error (`Msg "expected off, always, static, or sample:P")
  in
  let print fmt = function
    | Mvstore.Session.Off -> Format.pp_print_string fmt "off"
    | Mvstore.Session.Always -> Format.pp_print_string fmt "always"
    | Mvstore.Session.Static -> Format.pp_print_string fmt "static"
    | Mvstore.Session.Sampled p -> Format.fprintf fmt "sample:%g" p
  in
  Arg.conv (parse, print)

let verify_arg =
  let doc =
    "Runtime result verification of rewritten queries: $(b,off), \
     $(b,always), $(b,static) (verify unless the static prover certified \
     every applied rewrite step — needs ASTQL_PROVE >= 1), or $(b,sample:P) \
     (verify a deterministic fraction P of rewritten queries). On mismatch \
     the summary table is quarantined and the base plan's answer is served."
  in
  Arg.(value & opt verify_conv Mvstore.Session.Off & info [ "verify" ] ~doc)

let fault_arg =
  let doc =
    "Arm deterministic fault-injection points (testing): comma-separated \
     $(i,point)[:$(i,N)] where point is navigate, match, compensate, \
     translate, corrupt, refresh, delay or accept — the Nth hit of that \
     point fails (default 1; $(b,delay) instead stalls every hit from the \
     Nth on, for exercising deadlines; $(b,accept) crashes a server \
     connection handler, for exercising containment)."
  in
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC" ~doc)

let deadline_arg =
  let doc =
    "Per-statement wall-clock deadline in milliseconds. When planning \
     overruns it, the best-so-far (possibly unrewritten) plan is used and \
     EXPLAIN REWRITE reports $(b,degraded); when rewritten execution \
     overruns it, the base plan is re-run unbudgeted. Defaults to \
     $(b,ASTQL_DEADLINE_MS) from the environment, else unlimited."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let match_budget_arg =
  let doc =
    "Per-statement cap on match-function invocations during rewrite \
     planning. Defaults to $(b,ASTQL_MATCH_BUDGET) from the environment, \
     else unlimited."
  in
  Arg.(value & opt (some int) None & info [ "match-budget" ] ~docv:"N" ~doc)

let validate_conv =
  let parse s =
    match Lint.Level.of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg "expected 0|off, 1|final-plan, or 2|every-candidate")
  in
  let print fmt l = Format.pp_print_string fmt (Lint.Level.to_string l) in
  Arg.conv (parse, print)

let validate_arg =
  let doc =
    "Static IR validation level: $(b,0)/$(b,off) disables it, \
     $(b,1)/$(b,final-plan) checks the final rewritten plan before it is \
     cached or executed (the default), $(b,2)/$(b,every-candidate) also \
     checks builder output and every compensation the rewriter builds \
     (an ill-formed candidate is rejected and its summary table \
     quarantined). Defaults to $(b,ASTQL_VALIDATE) from the environment."
  in
  Arg.(
    value
    & opt (some validate_conv) None
    & info [ "validate" ] ~docv:"LEVEL" ~doc)

let set_validate = function None -> () | Some l -> Lint.Level.set l

let auto_maint_flag =
  let doc =
    "Self-healing maintenance: auto-refresh summary tables that DML left \
     stale, at statement boundaries under the session budget, with \
     exponential backoff and quarantine after repeated refresh failures."
  in
  Arg.(value & flag & info [ "auto-maint" ] ~doc)

let engine_conv =
  let parse s =
    match Engine.Exec.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg "expected vector, row, or reference")
  in
  let print fmt e =
    Format.pp_print_string fmt (Engine.Exec.engine_to_string e)
  in
  Arg.conv (parse, print)

let engine_arg =
  let doc =
    "Executor engine: $(b,vector) (batch-at-a-time over typed column \
     vectors; the default), $(b,row) (the tuple-at-a-time interpreter), or \
     $(b,reference) (the naive differential-testing oracle — quadratic, \
     testing only). All three produce bag-equal results. Defaults to \
     $(b,ASTQL_EXEC) from the environment."
  in
  Arg.(value & opt (some engine_conv) None & info [ "exec" ] ~docv:"ENGINE" ~doc)

let set_exec_engine = function
  | None -> ()
  | Some e -> Engine.Exec.set_engine e

let arm_faults = function
  | None -> ()
  | Some spec -> (
      match Guard.Fault.arm_spec spec with
      | Ok () -> ()
      | Error m ->
          Printf.eprintf "bad --fault spec: %s\n" m;
          Stdlib.exit 2)

let crash_arg =
  let doc =
    "Arm crash-injection points (testing): comma-separated \
     $(i,point)[:$(i,N)] over $(b,wal_append), $(b,wal_fsync), \
     $(b,checkpoint_write), $(b,checkpoint_rename) — the Nth hit SIGKILLs \
     the process at that exact durability step, exactly like kill -9."
  in
  let env = Cmd.Env.info "ASTQL_CRASH" ~doc:"Default crash spec." in
  Arg.(value & opt (some string) None & info [ "crash" ] ~env ~docv:"SPEC" ~doc)

let arm_crashes = function
  | None -> ()
  | Some spec -> (
      match Guard.Fault.arm_crash_spec spec with
      | Ok () -> ()
      | Error m ->
          Printf.eprintf "bad --crash spec: %s\n" m;
          Stdlib.exit 2)

let durability_arg =
  let doc =
    "Durability directory (WAL + checkpoints). On boot the newest valid \
     checkpoint is loaded and the WAL suffix replayed; afterwards every \
     committed write statement is logged before it is published, and a \
     final checkpoint is taken on exit. Unset = in-memory only."
  in
  let env =
    Cmd.Env.info "ASTQL_DURABILITY" ~doc:"Default durability directory."
  in
  Arg.(
    value & opt (some string) None & info [ "durability" ] ~env ~docv:"DIR" ~doc)

let fsync_conv =
  let parse s =
    match Durable.Wal.fsync_policy_of_string s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  let print fmt p =
    Format.pp_print_string fmt (Durable.Wal.fsync_policy_to_string p)
  in
  Arg.conv (parse, print)

let fsync_arg =
  let doc =
    "WAL fsync policy: $(b,always) (every commit), $(b,interval:N) (every \
     N commits), or $(b,off) (the OS decides)."
  in
  let env = Cmd.Env.info "ASTQL_FSYNC" ~doc:"Default WAL fsync policy." in
  Arg.(
    value
    & opt fsync_conv Durable.Wal.Always
    & info [ "fsync" ] ~env ~docv:"POLICY" ~doc)

let checkpoint_every_arg =
  let doc =
    "Fold the WAL into a fresh checkpoint every $(docv) commits (0 = only \
     at exit)."
  in
  let env =
    Cmd.Env.info "ASTQL_CHECKPOINT_EVERY" ~doc:"Default checkpoint interval."
  in
  Arg.(value & opt int 64 & info [ "checkpoint-every" ] ~env ~docv:"N" ~doc)

let scale_arg =
  let doc = "Demo data scale factor." in
  Arg.(value & opt int 1 & info [ "scale" ] ~doc)

let files_arg =
  Arg.(value & pos_all non_dir_file [] & info [] ~docv:"FILE")

let stats_flag =
  let doc = "Print rewrite-planner counters (cache hits/misses, filtered candidates) after execution." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let health_flag =
  let doc =
    "Print fault-isolation counters (fallbacks, quarantines, verification \
     mismatches) after execution."
  in
  Arg.(value & flag & info [ "health" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics registry (planner, matcher, executor counters and \
     latency histograms) to $(docv) as JSON on exit. The schema is the one \
     embedded in the bench harness's BENCH_results.json."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let dump_metrics = function
  | None -> ()
  | Some path ->
      (try Obs.Metrics.dump path
       with Sys_error m -> Printf.eprintf "cannot write metrics: %s\n" m)

let run_cmd =
  let doc = "Execute SQL script files." in
  let run no_rewrite verify fault crash deadline_ms match_budget auto_maint
      validate exec_engine stats health metrics_out durability fsync
      checkpoint_every files =
    arm_faults fault;
    arm_crashes crash;
    set_validate validate;
    set_exec_engine exec_engine;
    let ok =
      with_session ~rewrite:(not no_rewrite) ~verify
        ~budget:(limits_of ~deadline_ms ~match_budget)
        ~auto_maint ~demo:false ~scale:1 ~durability ~fsync ~checkpoint_every
        (fun session durable ->
          let ok =
            List.fold_left
              (fun ok f ->
                exec_text session
                  (In_channel.with_open_text f In_channel.input_all)
                && ok)
              true files
          in
          if stats then print_stats session;
          if health then print_health ?durable session;
          ok)
    in
    dump_metrics metrics_out;
    if not ok then Stdlib.exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ rewrite_flag $ verify_arg $ fault_arg $ crash_arg
      $ deadline_arg $ match_budget_arg $ auto_maint_flag $ validate_arg
      $ engine_arg $ stats_flag $ health_flag $ metrics_out_arg
      $ durability_arg $ fsync_arg $ checkpoint_every_arg $ files_arg)

let repl_cmd =
  let doc = "Interactive shell over an empty database." in
  let run no_rewrite verify fault crash deadline_ms match_budget auto_maint
      validate exec_engine metrics_out durability fsync checkpoint_every =
    arm_faults fault;
    arm_crashes crash;
    set_validate validate;
    set_exec_engine exec_engine;
    with_session ~rewrite:(not no_rewrite) ~verify
      ~budget:(limits_of ~deadline_ms ~match_budget)
      ~auto_maint ~demo:false ~scale:1 ~durability ~fsync ~checkpoint_every
      (fun session durable -> repl ?durable session);
    dump_metrics metrics_out
  in
  Cmd.v (Cmd.info "repl" ~doc)
    Term.(
      const run $ rewrite_flag $ verify_arg $ fault_arg $ crash_arg
      $ deadline_arg $ match_budget_arg $ auto_maint_flag $ validate_arg
      $ engine_arg $ metrics_out_arg $ durability_arg $ fsync_arg
      $ checkpoint_every_arg)

let demo_cmd =
  let doc = "Interactive shell preloaded with the paper's star schema." in
  let run no_rewrite verify fault crash deadline_ms match_budget auto_maint
      validate exec_engine scale metrics_out durability fsync checkpoint_every
      =
    arm_faults fault;
    arm_crashes crash;
    set_validate validate;
    set_exec_engine exec_engine;
    with_session ~rewrite:(not no_rewrite) ~verify
      ~budget:(limits_of ~deadline_ms ~match_budget)
      ~auto_maint ~demo:true ~scale ~durability ~fsync ~checkpoint_every
      (fun session durable -> repl ?durable session);
    dump_metrics metrics_out
  in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(
      const run $ rewrite_flag $ verify_arg $ fault_arg $ crash_arg
      $ deadline_arg $ match_budget_arg $ auto_maint_flag $ validate_arg
      $ engine_arg $ scale_arg $ metrics_out_arg $ durability_arg $ fsync_arg
      $ checkpoint_every_arg)

let advise_cmd =
  let doc =
    "Recommend summary tables for a workload (one SELECT per statement)."
  in
  let run files =
    let queries =
      List.concat_map
        (fun f ->
          In_channel.with_open_text f In_channel.input_all
          |> String.split_on_char ';'
          |> List.map String.trim
          |> List.filter (fun s -> s <> ""))
        files
    in
    let recs = Mvstore.Advisor.recommend Catalog.empty queries in
    if recs = [] then print_endline "no recommendations (no aggregate queries found)"
    else
      List.iter
        (fun (r : Mvstore.Advisor.recommendation) ->
          Printf.printf "-- serves %d workload quer%s\n"
            (List.length r.rec_serves)
            (if List.length r.rec_serves = 1 then "y" else "ies");
          Printf.printf "CREATE SUMMARY TABLE %s AS %s;\n\n" r.rec_name r.rec_sql)
        recs
  in
  Cmd.v (Cmd.info "advise" ~doc) Term.(const run $ files_arg)

let strict_flag =
  let doc =
    "Treat summary-table lint warnings (L-codes) as errors: exit non-zero \
     when any are reported."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let lint_cmd =
  let doc =
    "Statically check SQL scripts without executing queries: every SELECT \
     / EXPLAIN is elaborated to QGM and run through the structural \
     validator (V-codes); CREATE SUMMARY TABLE definitions get \
     definition-time diagnostics (L-codes). DDL is applied to an empty \
     in-memory catalog so names resolve; DML is skipped. Exits non-zero \
     on syntax errors, semantic errors or validator violations."
  in
  let run strict files =
    let session = Mvstore.Session.create ~rewrite:false () in
    let warnings = ref 0 in
    let checked = ref 0 in
    let ok =
      List.fold_left
        (fun ok f ->
          let text = In_channel.with_open_text f In_channel.input_all in
          let stmt_no = ref 0 in
          walk_script
            ~on_stmt:(fun stmt ->
              incr stmt_no;
              incr checked;
              lint_stmt session ~file:f ~stmt_no:!stmt_no ~warnings stmt)
            ~on_syntax_error:(fun label m ctx ->
              Printf.printf "%s: %s at %s: %s\n" f label ctx m)
            text
          && ok)
        true files
    in
    Printf.printf "lint: %d statement%s checked, %d warning%s%s\n" !checked
      (if !checked = 1 then "" else "s")
      !warnings
      (if !warnings = 1 then "" else "s")
      (if ok then "" else ", errors found");
    if (not ok) || (strict && !warnings > 0) then Stdlib.exit 1
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run $ strict_flag $ files_arg)

(* --- connect: remote shell over the wire protocol ----------------------- *)

let print_wire_outcome = function
  | Server.Wire.Msg m -> print_endline m
  | Server.Wire.Plan p -> print_string p
  | Server.Wire.Table (cols, rows) ->
      print_endline (Data.Relation.to_string (Data.Relation.create cols rows))

(* Send one script to the server; print outcomes or the typed error.
   Returns false when the request failed. With [attempts > 1] the robust
   path is used: transport faults and overload shed retry under the
   client's idempotency discipline instead of raising. *)
let remote_exec ?(attempts = 1) client sql =
  let print_reply (r : Server.Wire.reply) =
    (match r.Server.Wire.rp_degraded with
    | [] -> ()
    | ds ->
        Printf.eprintf "note: degraded answer (%s)\n%!"
          (String.concat ", " ds));
    List.iter print_wire_outcome r.Server.Wire.rp_results;
    true
  in
  if attempts <= 1 then
    match Server.Client.request client sql with
    | Ok r -> print_reply r
    | Error e ->
        Printf.printf "error: %s\n" (Server.Wire.error_to_string e);
        false
    | exception Server.Lineio.Read_timeout _ ->
        Printf.printf "error: no response within the timeout\n";
        false
  else
    match Server.Client.request_robust client ~attempts sql with
    | Ok r -> print_reply r
    | Error f ->
        Printf.printf "error: %s\n" (Server.Client.failure_to_string f);
        false

(* The remote REPL reuses the local shell's read-accumulate-until-';'
   loop, but each complete buffer travels the wire instead of hitting a
   local session. A typed error never kills the shell. *)
let remote_repl ~attempts client =
  print_endline
    "astql — connected; type SQL statements ending with ';'  (\\q to quit)";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "astql> " else "   ...> ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let trimmed = String.trim line in
        if trimmed = "\\q" || trimmed = "quit" then ()
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if String.contains line ';' then begin
            let text = Buffer.contents buf in
            Buffer.clear buf;
            match remote_exec ~attempts client text with
            | (_ : bool) -> ()
            | exception End_of_file ->
                print_endline "server closed the connection";
                raise Exit
          end;
          loop ()
        end
  in
  (try loop () with Exit -> ());
  Server.Client.close client

let connect_cmd =
  let doc =
    "Connect to a running astql-server: an interactive remote shell, or \
     non-interactive execution of $(b,--execute) SQL and script FILEs \
     (exits non-zero if any request failed)."
  in
  let addr_pos =
    let doc = "Server address: $(i,HOST:PORT) or a Unix-socket path." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR" ~doc)
  in
  let exec_arg =
    let doc = "Execute $(docv) remotely and exit." in
    Arg.(value & opt (some string) None & info [ "e"; "execute" ] ~docv:"SQL" ~doc)
  in
  let conn_files =
    Arg.(value & pos_right 0 non_dir_file [] & info [] ~docv:"FILE")
  in
  let retry_arg =
    let doc =
      "Retry connection establishment up to $(docv) times with bounded \
       exponential backoff (50ms doubling, capped at 1s) — for scripts \
       racing a server that is still booting or recovering a WAL. Also \
       budgets each reconnect the $(b,--retries) path makes."
    in
    Arg.(value & opt int 0 & info [ "retry" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-request response timeout in milliseconds (0 = wait forever). A \
       server that stalls past it counts as a transport failure — \
       retryable under $(b,--retries) when the script is read-only."
    in
    Arg.(value & opt float 0. & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let retries_arg =
    let doc =
      "Request-level resilience: try each request up to $(docv) times, \
       reconnecting with jittered exponential backoff (honoring the \
       server's $(b,retry_after_ms) hint when shed). Typed definitive \
       errors never retry; ambiguous transport failures retry only for \
       read-only scripts — a write whose fate is unknown fails instead of \
       risking double execution."
    in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let run addr retries timeout_ms attempts sql files =
    if attempts < 1 then begin
      Printf.eprintf "--retries must be >= 1\n";
      Stdlib.exit 2
    end;
    let client =
      try Server.Client.connect ~retries ~timeout_ms addr
      with
      | Unix.Unix_error (e, _, _) ->
          Printf.eprintf "cannot connect to %s: %s\n" addr
            (Unix.error_message e);
          Stdlib.exit 1
      | Failure m ->
          Printf.eprintf "cannot connect to %s: %s\n" addr m;
          Stdlib.exit 1
    in
    let scripts =
      (match sql with Some s -> [ s ] | None -> [])
      @ List.map
          (fun f -> In_channel.with_open_text f In_channel.input_all)
          files
    in
    if scripts = [] then remote_repl ~attempts client
    else begin
      let ok =
        try
          List.fold_left
            (fun ok s -> remote_exec ~attempts client s && ok)
            true scripts
        with End_of_file ->
          Printf.eprintf "server closed the connection\n";
          false
      in
      Server.Client.close client;
      if not ok then Stdlib.exit 1
    end
  in
  Cmd.v (Cmd.info "connect" ~doc)
    Term.(
      const run $ addr_pos $ retry_arg $ timeout_arg $ retries_arg $ exec_arg
      $ conn_files)

let () =
  let doc = "answering complex SQL queries using automatic summary tables" in
  let info = Cmd.info "astql" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; repl_cmd; demo_cmd; advise_cmd; lint_cmd; connect_cmd ]))
