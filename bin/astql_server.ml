(* astql-server — multi-core query serving over the line-JSON protocol.

   One process owns the database; clients connect over a Unix or TCP
   socket and speak one JSON request per line (see Server.Wire). Each
   connection gets its own session bound to the shared snapshot state, a
   bounded pool of OCaml 5 domains serves connections in parallel, and
   overload is shed with a typed error instead of an unbounded queue.

   The database starts empty unless preloaded: positional FILE arguments
   are SQL scripts executed before serving begins; --demo loads the
   paper's star schema. There is no persistence — this is a serving
   harness for the rewriter, not a storage engine. *)

let limits_of ~deadline_ms ~match_budget =
  let module B = Govern.Budget in
  let l = B.default_limits () in
  let l =
    match deadline_ms with
    | None -> l
    | Some ms -> { l with B.bl_deadline_ms = Some ms }
  in
  match match_budget with
  | None -> l
  | Some n -> { l with B.bl_matches = Some n }

let arm_faults = function
  | None -> ()
  | Some spec -> (
      match Guard.Fault.arm_spec spec with
      | Ok () -> ()
      | Error m ->
          Printf.eprintf "bad --fault spec: %s\n" m;
          Stdlib.exit 2)

let arm_crashes = function
  | None -> ()
  | Some spec -> (
      match Guard.Fault.arm_crash_spec spec with
      | Ok () -> ()
      | Error m ->
          Printf.eprintf "bad --crash spec: %s\n" m;
          Stdlib.exit 2)

let set_validate = function None -> () | Some l -> Lint.Level.set l

let preload session file =
  let text = In_channel.with_open_text file In_channel.input_all in
  match Mvstore.Session.exec_sql session text with
  | _ -> ()
  | exception Mvstore.Session.Session_error m ->
      Printf.eprintf "%s: %s\n" file m;
      Stdlib.exit 1

let seed_session ~rewrite ~budget ~auto_maint ~demo ~scale files =
  let session =
    if demo then begin
      let params = Workload.Star_schema.scaled scale in
      let tables = Workload.Star_schema.generate params in
      let session =
        Mvstore.Session.of_tables ~rewrite ~budget ~auto_maint
          (Workload.Star_schema.catalog ()) tables
      in
      Printf.eprintf "loaded star schema (%d transactions)\n%!"
        (Data.Relation.cardinality (List.assoc "Trans" tables));
      session
    end
    else Mvstore.Session.create ~rewrite ~budget ~auto_maint ()
  in
  List.iter (preload session) files;
  session

(* With durability on, the recovered shared state is canonical. Seed data
   (demo/FILEs) only applies to a database recovered empty — the WAL and
   checkpoints already hold everything else — and is folded into a
   checkpoint immediately so it survives a crash before the first commit. *)
let state_empty shared =
  let snap = Mvstore.Shared.snapshot shared in
  Catalog.tables (Engine.Db.catalog snap.Mvstore.Shared.sn_db) = []

let m_ckpt_skipped = Obs.Metrics.counter "durable.checkpoint_skipped"

let serve addr domains queue_depth backlog no_rewrite auto_maint deadline_ms
    match_budget request_deadline_ms idle_timeout_ms io_timeout_ms
    degrade_watermark retry_after_ms validate exec_engine fault crash
    metrics_out demo scale durability fsync checkpoint_every drain_ms files =
  arm_faults fault;
  arm_crashes crash;
  set_validate validate;
  (* chaos-harness knob: how long an armed wire_stall_read fault stalls *)
  (match Sys.getenv_opt "ASTQL_WIRE_STALL_MS" with
  | Some s -> (
      match float_of_string_opt s with
      | Some ms when ms >= 0. -> Guard.Fault.set_wire_stall_ms ms
      | _ -> ())
  | None -> ());
  (match exec_engine with
  | None -> ()
  | Some e -> Engine.Exec.set_engine e);
  let rewrite = not no_rewrite in
  let budget = limits_of ~deadline_ms ~match_budget in
  let cf_addr =
    match Server.Listener.parse_addr addr with
    | Ok a -> a
    | Error m ->
        Printf.eprintf "bad --addr %S: %s\n" addr m;
        Stdlib.exit 2
  in
  let durable =
    match durability with
    | None -> None
    | Some dir ->
        let cfg =
          {
            Durable.Manager.c_dir = dir;
            c_fsync = fsync;
            c_checkpoint_every = checkpoint_every;
          }
        in
        let mgr, shared, report = Durable.Manager.recover cfg in
        Printf.eprintf "astql-server: durability on — %s\n%!"
          (Durable.Manager.describe_report report);
        Some (mgr, shared, report)
  in
  let shared =
    match durable with
    | None ->
        Mvstore.Session.share
          (seed_session ~rewrite ~budget ~auto_maint ~demo ~scale files)
    | Some (mgr, shared, _) ->
        if demo || files <> [] then
          if state_empty shared then begin
            let seed =
              seed_session ~rewrite ~budget ~auto_maint ~demo ~scale files
            in
            Mvstore.Shared.with_write shared (fun _ ->
                ( {
                    Mvstore.Shared.sn_db = Mvstore.Session.db seed;
                    sn_store = Mvstore.Session.store seed;
                  },
                  () ));
            Durable.Manager.checkpoint mgr
          end
          else
            Printf.eprintf
              "astql-server: recovered state is non-empty; ignoring seed \
               data (--demo/FILE)\n\
               %!";
        shared
  in
  let quarantined =
    match durable with Some (_, _, r) -> r.Durable.Manager.r_quarantined | None -> []
  in
  let mk_session () =
    let s = Mvstore.Session.attach ~rewrite ~budget ~auto_maint shared in
    (match durable with
    | Some (mgr, _, _) -> Durable.Manager.bind mgr s
    | None -> ());
    (* summaries the recovery ladder emptied: enqueue for self-healing
       rebuild (idempotent — the first session to refresh wins, the rest
       observe freshness and drop the task) *)
    List.iter (Mvstore.Maint.enqueue (Mvstore.Session.maint s)) quarantined;
    s
  in
  (* the first overload rung defaults to half the queue: plenty of slack
     absorbed at full quality, degraded-but-correct service beyond *)
  let degrade_watermark =
    match degrade_watermark with
    | Some w -> w
    | None -> max 1 (queue_depth / 2)
  in
  let srv =
    match
      Server.Listener.start
        (Server.Listener.config ~addr:cf_addr ~domains
           ~queue_depth ~backlog ~degrade_watermark ~retry_after_ms
           ~idle_timeout_ms ~io_timeout_ms
           ~request_deadline_ms ())
        ~mk_session
    with
    | srv -> srv
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot listen on %s: %s\n" addr
          (Unix.error_message e);
        Stdlib.exit 1
  in
  let bound =
    match (cf_addr, Server.Listener.port srv) with
    | Server.Listener.Tcp (h, _), Some p -> Printf.sprintf "%s:%d" h p
    | _ -> Server.Listener.addr_to_string cf_addr
  in
  Printf.eprintf
    "astql-server listening on %s (%d domain%s, queue depth %d)\n%!" bound
    domains
    (if domains = 1 then "" else "s")
    queue_depth;
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Printf.eprintf "astql-server: shutting down (draining up to %d ms)\n%!"
    drain_ms;
  let t_stop = Obs.Metrics.now_ms () in
  Server.Listener.stop ~drain_ms srv;
  let drain_elapsed_ms = Obs.Metrics.now_ms () -. t_stop in
  (match durable with
  | None -> ()
  | Some (mgr, _, _) ->
      (* every request is done or disconnected: fold the log into a final
         checkpoint so the next boot skips replay entirely — unless the
         drain already consumed the shutdown window. A supervisor that
         sent SIGTERM follows with SIGKILL; a checkpoint cut down by it
         would be discarded at recovery anyway, while the WAL already
         holds every acknowledged write. Skipping is safe (recovery
         replays), so spend no time we were not given. *)
      if drain_ms > 0 && drain_elapsed_ms >= float_of_int drain_ms then begin
        Obs.Metrics.incr m_ckpt_skipped;
        Printf.eprintf
          "astql-server: durable.checkpoint_skipped — drain consumed the \
           shutdown window (%.0f of %d ms); WAL replay covers the rest\n\
           %!"
          drain_elapsed_ms drain_ms
      end
      else begin
        Durable.Manager.checkpoint mgr;
        Printf.eprintf "astql-server: final checkpoint at lsn %d\n%!"
          (Durable.Manager.checkpoint_lsn mgr)
      end;
      Durable.Manager.close mgr);
  match metrics_out with
  | None -> ()
  | Some path -> (
      try Obs.Metrics.dump path
      with Sys_error m -> Printf.eprintf "cannot write metrics: %s\n" m)

open Cmdliner

let addr_arg =
  let doc =
    "Listen address: $(i,HOST:PORT) for TCP (port 0 picks an ephemeral \
     port, printed on stderr) or a filesystem path for a Unix-domain \
     socket."
  in
  let env = Cmd.Env.info "ASTQL_ADDR" ~doc:"Default listen address." in
  Arg.(
    value & opt string "127.0.0.1:7433" & info [ "a"; "addr" ] ~env ~docv:"ADDR" ~doc)

let domains_arg =
  let doc = "Worker domains serving connections in parallel." in
  let env = Cmd.Env.info "ASTQL_DOMAINS" ~doc:"Default worker domain count." in
  Arg.(value & opt int 4 & info [ "domains" ] ~env ~docv:"N" ~doc)

let queue_depth_arg =
  let doc =
    "Accepted connections waiting for a worker beyond this are refused \
     with a typed $(b,overloaded) error — backpressure is explicit, the \
     queue never grows without bound."
  in
  let env = Cmd.Env.info "ASTQL_QUEUE_DEPTH" ~doc:"Default waiting-queue depth." in
  Arg.(value & opt int 64 & info [ "queue-depth" ] ~env ~docv:"N" ~doc)

let backlog_arg =
  let doc = "listen(2) backlog for connection bursts." in
  Arg.(value & opt int 64 & info [ "backlog" ] ~docv:"N" ~doc)

let no_rewrite_flag =
  let doc = "Disable transparent summary-table rewriting." in
  Arg.(value & flag & info [ "no-rewrite" ] ~doc)

let auto_maint_flag =
  let doc =
    "Self-healing maintenance: auto-refresh summary tables that DML left \
     stale, at statement boundaries."
  in
  Arg.(value & flag & info [ "auto-maint" ] ~doc)

let deadline_arg =
  let doc = "Per-statement wall-clock deadline in milliseconds." in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let match_budget_arg =
  let doc = "Per-statement cap on match-function invocations." in
  Arg.(value & opt (some int) None & info [ "match-budget" ] ~docv:"N" ~doc)

let request_deadline_arg =
  let doc =
    "Default per-request deadline in milliseconds (a request's own \
     $(b,opts.deadline_ms) takes precedence; either can only tighten \
     $(b,--deadline-ms)). On expiry the request degrades to the best plan \
     found — annotated in the reply — instead of failing. 0 disables."
  in
  let env =
    Cmd.Env.info "ASTQL_REQUEST_DEADLINE_MS" ~doc:"Default request deadline."
  in
  Arg.(
    value & opt float 0. & info [ "request-deadline-ms" ] ~env ~docv:"MS" ~doc)

let idle_timeout_arg =
  let doc =
    "Reap connections idle between requests after $(docv) milliseconds, \
     freeing their worker (quiet close, counted in \
     $(b,server.idle_reaped)). 0 disables."
  in
  let env = Cmd.Env.info "ASTQL_IDLE_TIMEOUT_MS" ~doc:"Default idle timeout." in
  Arg.(value & opt float 0. & info [ "idle-timeout-ms" ] ~env ~docv:"MS" ~doc)

let io_timeout_arg =
  let doc =
    "Bound mid-frame reads and response writes to $(docv) milliseconds: a \
     peer that stalls inside a request line or stops draining its socket \
     costs one connection, never a worker. 0 disables."
  in
  let env = Cmd.Env.info "ASTQL_IO_TIMEOUT_MS" ~doc:"Default io timeout." in
  Arg.(value & opt float 0. & info [ "io-timeout-ms" ] ~env ~docv:"MS" ~doc)

let degrade_watermark_arg =
  let doc =
    "First overload rung: with at least $(docv) jobs waiting, requests \
     are served from base plans (the rewrite search is skipped) and \
     replies carry a $(b,degraded) annotation. Defaults to half the queue \
     depth; -1 disables the rung."
  in
  let env =
    Cmd.Env.info "ASTQL_DEGRADE_WATERMARK" ~doc:"Default degrade watermark."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "degrade-watermark" ] ~env ~docv:"N" ~doc)

let retry_after_arg =
  let doc =
    "Backoff hint (milliseconds) carried by $(b,overloaded) rejections; \
     well-behaved clients wait at least this long before reconnecting."
  in
  let env = Cmd.Env.info "ASTQL_RETRY_AFTER_MS" ~doc:"Default backoff hint." in
  Arg.(value & opt int 50 & info [ "retry-after-ms" ] ~env ~docv:"MS" ~doc)

let validate_conv =
  let parse s =
    match Lint.Level.of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg "expected 0|off, 1|final-plan, or 2|every-candidate")
  in
  let print fmt l = Format.pp_print_string fmt (Lint.Level.to_string l) in
  Arg.conv (parse, print)

let validate_arg =
  let doc = "Static IR validation level (see astql --help)." in
  Arg.(
    value
    & opt (some validate_conv) None
    & info [ "validate" ] ~docv:"LEVEL" ~doc)

let engine_conv =
  let parse s =
    match Engine.Exec.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg "expected vector, row, or reference")
  in
  let print fmt e =
    Format.pp_print_string fmt (Engine.Exec.engine_to_string e)
  in
  Arg.conv (parse, print)

let engine_arg =
  let doc =
    "Executor engine: $(b,vector), $(b,row), or $(b,reference) (see astql \
     --help). Defaults to $(b,ASTQL_EXEC) from the environment."
  in
  Arg.(value & opt (some engine_conv) None & info [ "exec" ] ~docv:"ENGINE" ~doc)

let fault_arg =
  let doc =
    "Arm deterministic fault-injection points (testing): comma-separated \
     $(i,point)[:$(i,N)] — point names include $(b,accept), which crashes \
     the Nth accepted connection's handler to exercise containment."
  in
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC" ~doc)

let crash_arg =
  let doc =
    "Arm crash-injection points (testing): comma-separated \
     $(i,point)[:$(i,N)] over $(b,wal_append), $(b,wal_fsync), \
     $(b,checkpoint_write), $(b,checkpoint_rename) — the Nth hit SIGKILLs \
     the process at that exact durability step, exactly like kill -9."
  in
  let env = Cmd.Env.info "ASTQL_CRASH" ~doc:"Default crash spec." in
  Arg.(value & opt (some string) None & info [ "crash" ] ~env ~docv:"SPEC" ~doc)

let durability_arg =
  let doc =
    "Durability directory (WAL + checkpoints). On boot the newest valid \
     checkpoint is loaded and the WAL suffix replayed; afterwards every \
     committed write statement is logged before it is published. Unset = \
     in-memory only."
  in
  let env = Cmd.Env.info "ASTQL_DURABILITY" ~doc:"Default durability directory." in
  Arg.(
    value & opt (some string) None & info [ "durability" ] ~env ~docv:"DIR" ~doc)

let fsync_conv =
  let parse s =
    match Durable.Wal.fsync_policy_of_string s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  let print fmt p =
    Format.pp_print_string fmt (Durable.Wal.fsync_policy_to_string p)
  in
  Arg.conv (parse, print)

let fsync_arg =
  let doc =
    "WAL fsync policy: $(b,always) (every commit), $(b,interval:N) (every \
     N commits), or $(b,off) (the OS decides)."
  in
  let env = Cmd.Env.info "ASTQL_FSYNC" ~doc:"Default WAL fsync policy." in
  Arg.(
    value
    & opt fsync_conv Durable.Wal.Always
    & info [ "fsync" ] ~env ~docv:"POLICY" ~doc)

let checkpoint_every_arg =
  let doc =
    "Fold the WAL into a fresh checkpoint every $(docv) commits (0 = only \
     at shutdown)."
  in
  let env =
    Cmd.Env.info "ASTQL_CHECKPOINT_EVERY" ~doc:"Default checkpoint interval."
  in
  Arg.(
    value & opt int 64 & info [ "checkpoint-every" ] ~env ~docv:"N" ~doc)

let drain_ms_arg =
  let doc =
    "On SIGTERM/SIGINT, give requests already executing up to $(docv) \
     milliseconds to finish and flush before forcing disconnection."
  in
  let env = Cmd.Env.info "ASTQL_DRAIN_MS" ~doc:"Default drain bound." in
  Arg.(value & opt int 2000 & info [ "drain-ms" ] ~env ~docv:"MS" ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics registry (including the $(b,server.*) serving \
     metrics) to $(docv) as JSON on shutdown."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let demo_flag =
  let doc = "Preload the paper's star schema and generated data." in
  Arg.(value & flag & info [ "demo" ] ~doc)

let scale_arg =
  let doc = "Demo data scale factor." in
  Arg.(value & opt int 1 & info [ "scale" ] ~doc)

let files_arg =
  Arg.(value & pos_all non_dir_file [] & info [] ~docv:"FILE")

let () =
  let doc = "serve astql over a socket with a pool of domains" in
  let info = Cmd.info "astql-server" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const serve $ addr_arg $ domains_arg $ queue_depth_arg
            $ backlog_arg $ no_rewrite_flag $ auto_maint_flag $ deadline_arg
            $ match_budget_arg $ request_deadline_arg $ idle_timeout_arg
            $ io_timeout_arg $ degrade_watermark_arg $ retry_after_arg
            $ validate_arg $ engine_arg $ fault_arg
            $ crash_arg $ metrics_out_arg $ demo_flag $ scale_arg
            $ durability_arg $ fsync_arg $ checkpoint_every_arg $ drain_ms_arg
            $ files_arg)))
