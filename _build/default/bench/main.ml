(* Benchmark harness: regenerates every figure/table of the paper.

   For each figure: verify the match decision, verify result equivalence of
   the rewritten query, and time original vs. rewritten execution — one
   Bechamel Test.make per figure (plus the PERF rows of DESIGN.md). The
   ablation section re-runs the match decisions with individual design
   features disabled.

     dune exec bench/main.exe                (scale 1, ~60k fact rows)
     ASTRW_SCALE=4 dune exec bench/main.exe  (bigger) *)

module R = Data.Relation
module W = Workload.Star_schema

let scale =
  match Sys.getenv_opt "ASTRW_SCALE" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
  | None -> 1

let build cat sql = Qgm.Builder.build cat (Sqlsyn.Parser.parse_query sql)

type prepared = {
  p_case : Workload.Paper_queries.case;
  p_query : Qgm.Graph.t;
  p_rewritten : Qgm.Graph.t option;  (* None: no match (expected for some) *)
  p_db : Engine.Db.t;
}

let prepare db (c : Workload.Paper_queries.case) =
  let cat = Engine.Db.catalog db in
  let qg = build cat c.query in
  let ag = build cat c.ast in
  let mv_rel = Engine.Exec.run db ag in
  let cols = Qgm.Typing.infer_outputs cat ag in
  let cat2 =
    if Catalog.mem_table cat c.ast_name then cat
    else
      Catalog.add_table cat
        {
          Catalog.tbl_name = c.ast_name;
          tbl_cols =
            List.map
              (fun (n, ty) ->
                { Catalog.col_name = n; col_ty = ty; nullable = true })
              cols;
          primary_key = [];
          unique_keys = [];
          foreign_keys = [];
        }
  in
  let db = Engine.Db.put (Engine.Db.with_catalog db cat2) c.ast_name mv_rel in
  let cat2 = Engine.Db.catalog db in
  let rewritten =
    match Astmatch.Navigator.find_matches cat2 ~query:qg ~ast:ag with
    | [] -> None
    | sites ->
        (* replace the highest matched box (fewest remaining operators) *)
        let { Astmatch.Navigator.site_box; site_result } =
          List.nth sites (List.length sites - 1)
        in
        Some
          (Astmatch.Rewrite.apply ~query:qg ~target:site_box
             ~result:site_result ~mv_table:c.ast_name
             ~mv_cols:(Array.to_list (R.columns mv_rel)))
  in
  (db, { p_case = c; p_query = qg; p_rewritten = rewritten; p_db = db })

let time_ms f =
  (* median of five *)
  let runs =
    List.init 5 (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  List.nth (List.sort compare runs) 2

let () =
  Printf.printf "=== astrw bench: scale %d ===\n%!" scale;
  let params = W.scaled scale in
  let tables = W.generate params in
  let db0 = Engine.Db.of_tables (W.catalog ()) tables in
  Printf.printf "Trans rows: %d\n\n%!"
    (R.cardinality (List.assoc "Trans" tables));

  (* ---------------- per-figure verification + timing ---------------- *)
  let _, prepared =
    List.fold_left
      (fun (db, acc) c ->
        let db, p = prepare db c in
        (db, acc @ [ p ]))
      (db0, []) Workload.Paper_queries.cases
  in
  Printf.printf "%-10s %-14s %-9s %-7s %10s %10s %9s\n" "figure" "case"
    "rewrite" "correct" "orig(ms)" "mv(ms)" "speedup";
  let fails = ref 0 in
  List.iter
    (fun p ->
      let c = p.p_case in
      match p.p_rewritten with
      | None ->
          if c.Workload.Paper_queries.expect_rewrite then incr fails;
          Printf.printf "%-10s %-14s %-9s %-7s %10s %10s %9s\n" c.fig c.name
            (if c.expect_rewrite then "MISSING!" else "no (ok)")
            "-" "-" "-" "-"
      | Some g' ->
          if not c.Workload.Paper_queries.expect_rewrite then incr fails;
          let orig = Engine.Exec.run p.p_db p.p_query in
          let via = Engine.Exec.run p.p_db g' in
          let correct = R.bag_equal_approx orig via in
          if not correct then incr fails;
          let t_orig = time_ms (fun () -> Engine.Exec.run p.p_db p.p_query) in
          let t_mv = time_ms (fun () -> Engine.Exec.run p.p_db g') in
          Printf.printf "%-10s %-14s %-9s %-7s %10.2f %10.2f %8.1fx\n" c.fig
            c.name
            (if c.expect_rewrite then "yes" else "UNEXPECTED")
            (if correct then "yes" else "NO")
            t_orig t_mv (t_orig /. t_mv))
    prepared;
  Printf.printf "\nverification failures: %d\n\n%!" !fails;

  (* ---------------- PERF1: the 100x size claim (section 1.1) -------- *)
  Printf.printf "=== PERF1: summary-table size ratio (paper: about 100x) ===\n";
  Printf.printf "%-6s %12s %12s %8s\n" "scale" "Trans" "AST1" "ratio";
  List.iter
    (fun s ->
      let tables = W.generate (W.scaled s) in
      let db = Engine.Db.of_tables (W.catalog ()) tables in
      let ag = build (Engine.Db.catalog db) Workload.Paper_queries.ast1 in
      let mv = Engine.Exec.run db ag in
      let nt = R.cardinality (List.assoc "Trans" tables) in
      let na = R.cardinality mv in
      Printf.printf "%-6d %12d %12d %7.1fx\n" s nt na
        (float_of_int nt /. float_of_int na))
    [ 1; 2; 4 ];
  print_newline ();

  (* ---------------- PERF3: workload-level speedup (section 8) -------- *)
  Printf.printf
    "=== PERF3: decision-support workload, 3 summary tables (section 8) ===\n";
  let sn =
    Mvstore.Session.of_tables (W.catalog ()) tables
  in
  List.iter
    (fun (name, sql) ->
      ignore
        (Mvstore.Session.exec_sql sn
           (Printf.sprintf "CREATE SUMMARY TABLE %s AS %s" name sql)))
    Workload.Decision_support.summary_tables;
  Printf.printf "%-24s %10s %10s %9s  %s\n" "query" "base(ms)" "mv(ms)"
    "speedup" "routed via";
  let tot_base = ref 0. and tot_mv = ref 0. in
  List.iter
    (fun (q : Workload.Decision_support.query) ->
      let parsed = Sqlsyn.Parser.parse_query q.dq_sql in
      Mvstore.Session.set_rewrite sn false;
      let t_base =
        time_ms (fun () -> fst (Mvstore.Session.run_query sn parsed))
      in
      Mvstore.Session.set_rewrite sn true;
      let routed = ref "(base tables)" in
      let t_mv =
        time_ms (fun () ->
            let _, steps = Mvstore.Session.run_query sn parsed in
            (match steps with
            | s :: _ -> routed := s.Astmatch.Rewrite.used_mv
            | [] -> ());
            ())
      in
      tot_base := !tot_base +. t_base;
      tot_mv := !tot_mv +. t_mv;
      Printf.printf "%-24s %10.1f %10.1f %8.1fx  %s\n" q.dq_name t_base t_mv
        (t_base /. t_mv) !routed)
    Workload.Decision_support.queries;
  Printf.printf "%-24s %10.1f %10.1f %8.1fx\n" "TOTAL" !tot_base !tot_mv
    (!tot_base /. !tot_mv);
  print_newline ();

  (* ---------------- ablations (DESIGN.md section 5) ------------------ *)
  Printf.printf
    "=== ablations: figure rewrites surviving with a feature off ===\n";
  let positive =
    List.filter
      (fun (c : Workload.Paper_queries.case) -> c.expect_rewrite)
      Workload.Paper_queries.cases
  in
  let decide () =
    (* cheap decision run on a small database *)
    let tables =
      W.generate { W.default_params with n_custs = 2; trans_per_acct_year = 10 }
    in
    let db = Engine.Db.of_tables (W.catalog ()) tables in
    List.map
      (fun (c : Workload.Paper_queries.case) ->
        let cat = Engine.Db.catalog db in
        let qg = build cat c.query in
        let ag = build cat c.ast in
        (c.name, Astmatch.Navigator.find_matches cat ~query:qg ~ast:ag <> []))
      positive
  in
  let baseline = decide () in
  let ablations =
    [
      ("equivalence classes", Astmatch.Config.equivalence_classes);
      ("predicate subsumption", Astmatch.Config.predicate_subsumption);
      ("greedy derivation", Astmatch.Config.greedy_derivation);
      ("smallest cuboid", Astmatch.Config.smallest_cuboid);
    ]
  in
  Printf.printf "%-24s %9s   lost rewrites\n" "feature disabled" "matches";
  Printf.printf "%-24s %6d/%d\n" "(none: baseline)"
    (List.length (List.filter snd baseline))
    (List.length baseline);
  List.iter
    (fun (label, switch) ->
      let rows = Astmatch.Config.without switch decide in
      let lost =
        List.filter_map
          (fun ((name, ok), (_, ok0)) ->
            if ok0 && not ok then Some name else None)
          (List.combine rows baseline)
      in
      Printf.printf "%-24s %6d/%d   %s\n" label
        (List.length (List.filter snd rows))
        (List.length rows)
        (String.concat ", " lost))
    ablations;
  print_newline ();

  (* ---------------- bechamel: one Test.make per figure --------------- *)
  Printf.printf "=== bechamel timings (monotonic clock, ns/run) ===\n%!";
  let open Bechamel in
  let tests =
    List.concat_map
      (fun p ->
        match p.p_rewritten with
        | None -> []
        | Some g' ->
            [
              Test.make
                ~name:(p.p_case.Workload.Paper_queries.name ^ "/original")
                (Staged.stage (fun () -> Engine.Exec.run p.p_db p.p_query));
              Test.make
                ~name:(p.p_case.Workload.Paper_queries.name ^ "/rewritten")
                (Staged.stage (fun () -> Engine.Exec.run p.p_db g'));
            ])
      prepared
  in
  let grouped = Test.make_grouped ~name:"figures" ~fmt:"%s %s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n" name est
      | _ -> Printf.printf "%-40s %14s\n" name "n/a")
    (List.sort compare rows);
  Printf.printf "\ndone.\n"
