(* A retail dashboard answered from one multidimensional summary table.

   One grouping-sets AST (the paper's section 5) materializes several
   granularities at once; each dashboard panel is a different query and all
   of them route to the same summary table — some by slicing a cuboid, some
   by slicing and re-grouping.

     dune exec examples/retail_dashboard.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let () =
  let tables = Workload.Star_schema.generate (Workload.Star_schema.scaled 2) in
  let session =
    Mvstore.Session.of_tables (Workload.Star_schema.catalog ()) tables
  in
  let say = function
    | Mvstore.Session.Msg m -> print_endline m
    | _ -> ()
  in
  List.iter say
    (Mvstore.Session.exec_sql session
       "CREATE SUMMARY TABLE sales_cube AS \
        SELECT flid, fpgid, year(date) AS year, month(date) AS month, \
        COUNT(*) AS cnt, SUM(qty * price * (1 - disc)) AS revenue \
        FROM Trans \
        GROUP BY GROUPING SETS((flid, year(date), month(date)), \
        (flid, year(date)), (fpgid, year(date)), (year(date), month(date)), \
        (year(date)))");
  print_newline ();

  let panels =
    [
      ( "monthly revenue trend",
        "SELECT year(date) AS year, month(date) AS month, \
         SUM(qty * price * (1 - disc)) AS revenue \
         FROM Trans GROUP BY year(date), month(date) ORDER BY year, month \
         LIMIT 5" );
      ( "yearly totals",
        "SELECT year(date) AS year, COUNT(*) AS transactions, \
         SUM(qty * price * (1 - disc)) AS revenue \
         FROM Trans GROUP BY year(date) ORDER BY year" );
      ( "top product groups (regrouped from (fpgid, year))",
        "SELECT fpgid, SUM(qty * price * (1 - disc)) AS revenue \
         FROM Trans GROUP BY fpgid ORDER BY revenue DESC LIMIT 5" );
      ( "busy locations in recent years (cuboid slice + filter)",
        "SELECT flid, year(date) AS year, COUNT(*) AS cnt \
         FROM Trans WHERE year(date) >= 1995 GROUP BY flid, year(date) \
         HAVING COUNT(*) > 400 ORDER BY cnt DESC LIMIT 5" );
    ]
  in
  List.iter
    (fun (title, sql) ->
      Printf.printf "=== %s ===\n" title;
      let q = Sqlsyn.Parser.parse_query sql in
      Mvstore.Session.set_rewrite session false;
      let direct, ms_direct = time (fun () -> fst (Mvstore.Session.run_query session q)) in
      Mvstore.Session.set_rewrite session true;
      let (via, steps), ms_mv =
        time (fun () -> Mvstore.Session.run_query session q)
      in
      (match steps with
      | [] -> Printf.printf "(not rewritten)\n"
      | s :: _ ->
          Printf.printf "answered from %s: %.1f ms vs %.1f ms direct (%.0fx)\n"
            s.Astmatch.Rewrite.used_mv ms_mv ms_direct (ms_direct /. ms_mv));
      assert (Data.Relation.bag_equal_approx direct via);
      print_endline (Data.Relation.to_string via);
      print_newline ())
    panels
