(* Quickstart: define a summary table over the paper's star schema and watch
   a query get answered from it.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A database: the paper's Figure-1 schema, synthetic transactions. *)
  let params = Workload.Star_schema.default_params in
  let tables = Workload.Star_schema.generate params in
  let session =
    Mvstore.Session.of_tables (Workload.Star_schema.catalog ()) tables
  in
  Printf.printf "Trans has %d rows\n\n"
    (Data.Relation.cardinality (List.assoc "Trans" tables));

  (* 2. Create AST1 (the paper's Figure 2): transactions per account,
     location, and year. *)
  List.iter
    (fun o ->
      match o with
      | Mvstore.Session.Msg m -> print_endline m
      | _ -> ())
    (Mvstore.Session.exec_sql session
       ("CREATE SUMMARY TABLE AST1 AS " ^ Workload.Paper_queries.ast1));

  (* 3. Q1 asks for per-account, per-state, per-year counts over USA
     locations — a different grouping, an extra join, and a HAVING clause.
     The rewriter answers it from AST1 anyway. *)
  let q = Sqlsyn.Parser.parse_query Workload.Paper_queries.q1 in
  print_newline ();
  print_string (Mvstore.Session.explain session q);

  (* 4. Run it both ways and compare. *)
  let t0 = Unix.gettimeofday () in
  Mvstore.Session.set_rewrite session false;
  let direct, _ = Mvstore.Session.run_query session q in
  let t1 = Unix.gettimeofday () in
  Mvstore.Session.set_rewrite session true;
  let rewritten, steps = Mvstore.Session.run_query session q in
  let t2 = Unix.gettimeofday () in
  Printf.printf
    "\ndirect: %.1f ms   via %s: %.1f ms   speedup: %.1fx   results equal: %b\n"
    ((t1 -. t0) *. 1000.)
    (match steps with s :: _ -> s.Astmatch.Rewrite.used_mv | [] -> "?")
    ((t2 -. t1) *. 1000.)
    ((t1 -. t0) /. (t2 -. t1))
    (Data.Relation.bag_equal_approx direct rewritten)
