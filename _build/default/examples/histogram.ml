(* Multi-block matching: the paper's Figure 10 histogram queries.

   Q8 is a nested aggregate (aggregate over an aggregate): yearly
   transaction counts, then how many years achieved each count. The
   summary table stores the monthly histogram per year; matching recurses
   through the nested blocks (section 4.2.2) and re-derives the yearly
   counts as SUM(tcnt * mcnt).

     dune exec examples/histogram.exe *)

let () =
  let tables = Workload.Star_schema.generate Workload.Star_schema.default_params in
  let session =
    Mvstore.Session.of_tables (Workload.Star_schema.catalog ()) tables
  in
  List.iter
    (function Mvstore.Session.Msg m -> print_endline m | _ -> ())
    (Mvstore.Session.exec_sql session
       ("CREATE SUMMARY TABLE AST8 AS " ^ Workload.Paper_queries.ast8));
  print_newline ();

  let q = Sqlsyn.Parser.parse_query Workload.Paper_queries.q8 in
  print_endline "Q8 (yearly count histogram):";
  print_endline ("  " ^ Workload.Paper_queries.q8);
  print_newline ();
  print_string (Mvstore.Session.explain session q);
  print_newline ();

  Mvstore.Session.set_rewrite session false;
  let direct, _ = Mvstore.Session.run_query session q in
  Mvstore.Session.set_rewrite session true;
  let via, steps = Mvstore.Session.run_query session q in
  Printf.printf "rewritten: %b, results equal: %b\n" (steps <> [])
    (Data.Relation.bag_equal_approx direct via);
  print_endline (Data.Relation.to_string via)
