(* Summary-table maintenance under inserts (the paper's problem (c)).

   Plain aggregate summaries absorb insert deltas incrementally; summaries
   the planner cannot maintain (here: one with a HAVING clause) turn stale,
   drop out of rewriting, and return after REFRESH.

     dune exec examples/maintenance.exe *)

let say session sql =
  List.iter
    (function
      | Mvstore.Session.Msg m -> print_endline m
      | Mvstore.Session.Table rel -> print_endline (Data.Relation.to_string rel)
      | Mvstore.Session.Plan p -> print_string p)
    (Mvstore.Session.exec_sql session sql)

let used session sql =
  let q = Sqlsyn.Parser.parse_query sql in
  let _, steps = Mvstore.Session.run_query session q in
  match steps with
  | s :: _ -> Printf.sprintf "answered from %s" s.Astmatch.Rewrite.used_mv
  | [] -> "answered from base tables"

let () =
  let session = Mvstore.Session.create () in
  say session
    "CREATE TABLE sales (region VARCHAR NOT NULL, amount INT NOT NULL);\
     INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5);\
     CREATE SUMMARY TABLE by_region AS \
       SELECT region, COUNT(*) AS cnt, SUM(amount) AS total \
       FROM sales GROUP BY region;\
     CREATE SUMMARY TABLE big_regions AS \
       SELECT region, SUM(amount) AS total FROM sales \
       GROUP BY region HAVING SUM(amount) > 20;";
  print_newline ();

  let q = "SELECT region, SUM(amount) AS total FROM sales GROUP BY region" in
  Printf.printf "before insert: %s\n" (used session q);

  say session "INSERT INTO sales VALUES ('north', 100), ('east', 1);";
  Printf.printf "after insert:  %s (maintained incrementally)\n" (used session q);
  say session ("SELECT * FROM by_region");

  (* the HAVING summary could not absorb the delta: it is stale *)
  let fresh =
    List.filter_map
      (fun (e : Mvstore.Store.entry) ->
        if e.e_fresh then Some e.e_name else None)
      (Mvstore.Store.entries (Mvstore.Session.store session))
  in
  Printf.printf "\nfresh summaries after insert: %s\n" (String.concat ", " fresh);
  say session "REFRESH SUMMARY TABLE big_regions;";
  let fresh =
    List.filter_map
      (fun (e : Mvstore.Store.entry) ->
        if e.e_fresh then Some e.e_name else None)
      (Mvstore.Store.entries (Mvstore.Session.store session))
  in
  Printf.printf "fresh summaries after refresh: %s\n" (String.concat ", " fresh)
