examples/quickstart.mli:
