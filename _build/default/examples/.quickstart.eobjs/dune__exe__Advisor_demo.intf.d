examples/advisor_demo.mli:
