examples/retail_dashboard.ml: Astmatch Data List Mvstore Printf Sqlsyn Unix Workload
