examples/maintenance.mli:
