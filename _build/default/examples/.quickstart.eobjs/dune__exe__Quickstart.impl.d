examples/quickstart.ml: Astmatch Data List Mvstore Printf Sqlsyn Unix Workload
