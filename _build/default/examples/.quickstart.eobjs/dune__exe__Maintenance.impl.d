examples/maintenance.ml: Astmatch Data List Mvstore Printf Sqlsyn String
