examples/advisor_demo.ml: Astmatch Engine List Mvstore Printf Sqlsyn String Workload
