examples/histogram.mli:
