examples/histogram.ml: Data List Mvstore Printf Sqlsyn Workload
