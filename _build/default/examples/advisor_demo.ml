(* Workload-driven summary-table advice (the paper's problem (a)).

   Give the advisor a mixed workload; it clusters queries by join core,
   unions their grouping needs, and proposes CREATE SUMMARY TABLE
   statements. Creating the recommendation makes the whole cluster
   rewritable.

     dune exec examples/advisor_demo.exe *)

let () =
  let tables = Workload.Star_schema.generate Workload.Star_schema.default_params in
  let session =
    Mvstore.Session.of_tables (Workload.Star_schema.catalog ()) tables
  in
  let workload =
    [
      "SELECT year(date) AS year, COUNT(*) AS cnt FROM Trans GROUP BY year(date)";
      "SELECT flid, year(date) AS year, SUM(qty * price) AS rev FROM Trans \
       GROUP BY flid, year(date)";
      "SELECT flid, COUNT(*) AS cnt FROM Trans WHERE month(date) >= 6 GROUP BY flid";
      "SELECT state, COUNT(*) AS cnt FROM Trans, Loc WHERE flid = lid \
       GROUP BY state";
    ]
  in
  let recs =
    Mvstore.Advisor.recommend
      (Engine.Db.catalog (Mvstore.Session.db session))
      workload
  in
  List.iter
    (fun (r : Mvstore.Advisor.recommendation) ->
      Printf.printf "-- serves %d queries\nCREATE SUMMARY TABLE %s AS\n  %s;\n\n"
        (List.length r.rec_serves) r.rec_name r.rec_sql)
    recs;

  (* create them and check the workload routes through them *)
  List.iter
    (fun (r : Mvstore.Advisor.recommendation) ->
      List.iter
        (function Mvstore.Session.Msg m -> print_endline m | _ -> ())
        (Mvstore.Session.exec_sql session
           (Printf.sprintf "CREATE SUMMARY TABLE %s AS %s" r.rec_name r.rec_sql)))
    recs;
  print_newline ();
  List.iter
    (fun sql ->
      let q = Sqlsyn.Parser.parse_query sql in
      let _, steps = Mvstore.Session.run_query session q in
      Printf.printf "%-70s -> %s\n"
        (String.sub sql 0 (min 70 (String.length sql)))
        (match steps with
        | s :: _ -> s.Astmatch.Rewrite.used_mv
        | [] -> "(base tables)"))
    workload
