lib/sqlsyn/token.ml: Printf
