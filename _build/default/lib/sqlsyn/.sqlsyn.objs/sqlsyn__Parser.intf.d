lib/sqlsyn/parser.mli: Ast
