lib/sqlsyn/lexer.ml: List Printf String Token
