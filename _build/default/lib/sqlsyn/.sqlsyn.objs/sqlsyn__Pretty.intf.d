lib/sqlsyn/pretty.mli: Ast Format
