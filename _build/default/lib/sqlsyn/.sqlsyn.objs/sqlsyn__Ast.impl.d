lib/sqlsyn/ast.ml: Data List Option
