lib/sqlsyn/pretty.ml: Ast Buffer Data Format List Printf String
