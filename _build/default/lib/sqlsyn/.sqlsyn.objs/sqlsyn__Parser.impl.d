lib/sqlsyn/parser.ml: Ast Data Lexer List Printf String Token
