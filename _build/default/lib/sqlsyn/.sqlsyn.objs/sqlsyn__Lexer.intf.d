lib/sqlsyn/lexer.mli: Token
