(** Hand-written SQL lexer.

    Supports identifiers, integer/float literals, single-quoted string
    literals (with [''] escaping), [--] line comments, [/* ... */] block
    comments, and the operator/punctuation set of {!Token.t}. *)

exception Lex_error of string * int  (** message, byte offset *)

(** [tokenize src] is the token stream of [src], each token paired with its
    starting byte offset, ending with [(Token.Eof, _)].
    Raises {!Lex_error} on unexpected characters or unterminated literals. *)
val tokenize : string -> (Token.t * int) list
