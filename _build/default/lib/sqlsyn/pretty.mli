(** SQL rendering of the {!Ast} types (parse/print round-trips). *)

val expr_to_string : Ast.expr -> string
val query_to_string : Ast.query -> string
val stmt_to_string : Ast.stmt -> string
val pp_query : Format.formatter -> Ast.query -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
