exception Lex_error of string * int

let error msg pos = raise (Lex_error (msg, pos))

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit tok pos = toks := (tok, pos) :: !toks in
  let rec skip_block_comment i depth start =
    if i + 1 >= n then error "unterminated block comment" start
    else if src.[i] = '*' && src.[i + 1] = '/' then
      if depth = 1 then i + 2 else skip_block_comment (i + 2) (depth - 1) start
    else if src.[i] = '/' && src.[i + 1] = '*' then
      skip_block_comment (i + 2) (depth + 1) start
    else skip_block_comment (i + 1) depth start
  in
  let rec scan_string i acc start =
    if i >= n then error "unterminated string literal" start
    else if src.[i] = '\'' then
      if i + 1 < n && src.[i + 1] = '\'' then
        scan_string (i + 2) (acc ^ "'") start
      else begin
        emit (Token.Str_lit acc) start;
        i + 1
      end
    else scan_string (i + 1) (acc ^ String.make 1 src.[i]) start
  in
  let rec loop i =
    if i >= n then emit Token.Eof i
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (i + 1)
      else if c = '-' && i + 1 < n && src.[i + 1] = '-' then begin
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        loop (eol (i + 2))
      end
      else if c = '/' && i + 1 < n && src.[i + 1] = '*' then
        loop (skip_block_comment (i + 2) 1 i)
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        emit (Token.Ident (String.sub src i (!j - i))) i;
        loop !j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do incr j done;
        let is_float =
          !j + 1 < n && src.[!j] = '.' && is_digit src.[!j + 1]
        in
        if is_float then begin
          incr j;
          while !j < n && is_digit src.[!j] do incr j done;
          if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
            incr j;
            if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
            while !j < n && is_digit src.[!j] do incr j done
          end;
          emit (Token.Float_lit (float_of_string (String.sub src i (!j - i)))) i
        end
        else emit (Token.Int_lit (int_of_string (String.sub src i (!j - i)))) i;
        loop !j
      end
      else if c = '\'' then loop (scan_string (i + 1) "" i)
      else begin
        let two tok = emit tok i; loop (i + 2) in
        let one tok = emit tok i; loop (i + 1) in
        if i + 1 < n then
          match (c, src.[i + 1]) with
          | '<', '=' -> two Token.Le
          | '>', '=' -> two Token.Ge
          | '<', '>' -> two Token.Neq
          | '!', '=' -> two Token.Neq
          | '|', '|' -> two Token.Concat
          | _ -> single c one i
        else single c one i
      end
  and single c one pos =
    match c with
    | '(' -> one Token.Lparen
    | ')' -> one Token.Rparen
    | ',' -> one Token.Comma
    | '.' -> one Token.Dot
    | ';' -> one Token.Semi
    | '*' -> one Token.Star
    | '+' -> one Token.Plus
    | '-' -> one Token.Minus
    | '/' -> one Token.Slash
    | '%' -> one Token.Percent
    | '=' -> one Token.Eq
    | '<' -> one Token.Lt
    | '>' -> one Token.Gt
    | c -> error (Printf.sprintf "unexpected character %C" c) pos
  in
  loop 0;
  List.rev !toks
