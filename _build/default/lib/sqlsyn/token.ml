(* Lexical tokens. Keywords are not distinguished at the lexer level: the
   parser matches [Ident] text case-insensitively, so identifiers and
   keywords share one token and context decides (standard SQL practice). *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Semi
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Concat
  | Eof

let to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Semi -> ";"
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Concat -> "||"
  | Eof -> "<eof>"
