(** Recursive-descent SQL parser over {!Lexer} tokens. *)

exception Parse_error of string * int  (** message, byte offset *)

(** Parse a single query (no trailing semicolon required). *)
val parse_query : string -> Ast.query

(** Parse a single statement (optionally semicolon-terminated). *)
val parse_stmt : string -> Ast.stmt

(** Parse a script: a sequence of semicolon-separated statements. *)
val parse_script : string -> Ast.stmt list

(** Incremental script parsing: {!script_next} yields one statement at a
    time (and [None] at end of input), so callers can execute statements as
    they parse — a later syntax error then cannot void earlier ones. *)
type cursor

val script_start : string -> cursor
val script_next : cursor -> Ast.stmt option

(** Parse a standalone scalar expression (for tests and tools). *)
val parse_expr : string -> Ast.expr
