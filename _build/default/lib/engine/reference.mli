(** A deliberately naive QGM evaluator, kept as simple as possible so that
    its correctness is evident by inspection: nested-loop joins (no hashing,
    no predicate push-down ordering), per-group rescans for aggregation, no
    memoization. It exists solely as a differential-testing oracle for
    {!Exec} — see [test/test_differential.ml]. Quadratic and worse;
    never use it on real data. *)

val run : Db.t -> Qgm.Graph.t -> Data.Relation.t
