(** An in-memory database: a catalog plus one relation per table.

    Functional updates; callers thread the value (the CLI session holds a
    ref). Summary-table contents live here too, under their table name. *)

type t

val create : Catalog.t -> t
val catalog : t -> Catalog.t
val with_catalog : t -> Catalog.t -> t

(** [put db name rel] installs or replaces a table's contents and refreshes
    its row-count statistic. *)
val put : t -> string -> Data.Relation.t -> t

val get : t -> string -> Data.Relation.t option
val get_exn : t -> string -> Data.Relation.t
val drop : t -> string -> t

(** [of_tables cat tables] bulk-loads [(name, relation)] pairs. *)
val of_tables : Catalog.t -> (string * Data.Relation.t) list -> t
