lib/engine/db.mli: Catalog Data
