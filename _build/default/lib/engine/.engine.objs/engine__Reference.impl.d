lib/engine/reference.ml: Array Data Db Eval List Qgm String
