lib/engine/reference.mli: Data Db Qgm
