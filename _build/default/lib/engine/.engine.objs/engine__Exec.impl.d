lib/engine/exec.ml: Array Data Db Eval Format Hashtbl List Option Qgm String
