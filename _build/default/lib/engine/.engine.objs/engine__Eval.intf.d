lib/engine/eval.mli: Data Qgm
