lib/engine/eval.ml: Data Float Format List Qgm String
