lib/engine/exec.mli: Data Db Qgm
