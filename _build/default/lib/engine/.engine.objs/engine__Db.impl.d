lib/engine/db.ml: Array Catalog Data Hashtbl List Map Printf Stdlib String
