module Smap = Map.Make (String)

type t = { cat : Catalog.t; tables : Data.Relation.t Smap.t }

let norm = String.lowercase_ascii
let create cat = { cat; tables = Smap.empty }
let catalog db = db.cat
let with_catalog db cat = { db with cat }

let recompute_ndvs cat name rel =
  Array.to_list (Data.Relation.columns rel)
  |> List.fold_left
       (fun cat col ->
         let seen = Hashtbl.create 64 in
         let i = Data.Relation.column_index rel col in
         Array.iter
           (fun row -> Hashtbl.replace seen row.(i) ())
           (Data.Relation.rows_array rel);
         Catalog.set_col_ndv cat name col (Hashtbl.length seen))
       cat

let put db name rel =
  let n = Data.Relation.cardinality rel in
  (* Distinct-count statistics are exact but only refreshed when the table
     changed materially since the last scan (>5% or 100 rows), so a stream
     of small INSERT/DELETE statements stays linear instead of rescanning
     the whole relation each time. *)
  let stale =
    match Catalog.row_count db.cat name with
    | None -> true
    | Some old -> abs (n - old) > Stdlib.max 100 (old / 20)
  in
  let cat = Catalog.set_row_count db.cat name n in
  let cat = if stale then recompute_ndvs cat name rel else cat in
  { cat; tables = Smap.add (norm name) rel db.tables }

let get db name = Smap.find_opt (norm name) db.tables

let get_exn db name =
  match get db name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Db: no contents for table %s" name)

let drop db name = { db with tables = Smap.remove (norm name) db.tables }

let of_tables cat tables =
  List.fold_left (fun db (n, r) -> put db n r) (create cat) tables
