module IM = Map.Make (Int)

type presentation = {
  order_by : (string * bool) list;
  limit : int option;
}

type t = {
  boxes : Box.box IM.t;
  root_id : Box.box_id;
  next_box : int;
  next_quant : int;
  pres : presentation;
}

let no_pres = { order_by = []; limit = None }

let empty =
  { boxes = IM.empty; root_id = -1; next_box = 0; next_quant = 0; pres = no_pres }

let add_box g body =
  let id = g.next_box in
  let box = { Box.id; body } in
  ({ g with boxes = IM.add id box g.boxes; next_box = id + 1 }, id)

let fresh_quant g box_id kind =
  let q = { Box.q_id = g.next_quant; q_box = box_id; q_kind = kind } in
  ({ g with next_quant = g.next_quant + 1 }, q)

let set_root g id = { g with root_id = id }
let root g = g.root_id
let box_opt g id = IM.find_opt id g.boxes

let box g id =
  match box_opt g id with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Graph.box: unknown box %d" id)

let update_box g id body =
  match IM.find_opt id g.boxes with
  | None -> invalid_arg (Printf.sprintf "Graph.update_box: unknown box %d" id)
  | Some _ -> { g with boxes = IM.add id { Box.id; body } g.boxes }

let set_presentation g pres = { g with pres }
let presentation g = g.pres
let box_ids g = List.map fst (IM.bindings g.boxes)

let reachable g start =
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match box_opt g id with
      | None -> ()
      | Some b -> List.iter visit (Box.children_ids b)
    end
  in
  visit start;
  List.filter (Hashtbl.mem seen) (box_ids g)

let parents g =
  let tbl = Hashtbl.create 16 in
  IM.iter
    (fun id b ->
      List.iter
        (fun child ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt tbl child) in
          if not (List.mem id cur) then Hashtbl.replace tbl child (id :: cur))
        (Box.children_ids b))
    g.boxes;
  tbl

let base_leaves g start =
  List.filter (fun id -> Box.is_base (box g id)) (reachable g start)

let quant_in b qid = List.find_opt (fun q -> q.Box.q_id = qid) (Box.quants_of b)

let quant_cols g q = Box.output_cols (box g q.Box.q_box)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate g =
  let problems = ref [] in
  let complain fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  if box_opt g g.root_id = None then complain "root box %d missing" g.root_id;
  (* acyclicity via DFS with colors *)
  let color = Hashtbl.create 16 in
  let rec dfs id =
    match Hashtbl.find_opt color id with
    | Some `Done -> ()
    | Some `Active -> complain "cycle through box %d" id
    | None -> (
        Hashtbl.replace color id `Active;
        (match box_opt g id with
        | None -> complain "dangling box reference %d" id
        | Some b -> List.iter dfs (Box.children_ids b));
        Hashtbl.replace color id `Done)
  in
  IM.iter (fun id _ -> dfs id) g.boxes;
  let check_unique_outs id cols =
    let sorted = List.sort compare (List.map String.lowercase_ascii cols) in
    let rec dup = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> dup rest
      | [] -> None
    in
    match dup sorted with
    | Some c -> complain "box %d: duplicate output column %s" id c
    | None -> ()
  in
  let check_expr id quants ~allow_agg e =
    let find_quant qid = List.find_opt (fun q -> q.Box.q_id = qid) quants in
    List.iter
      (fun { Box.quant; col } ->
        match find_quant quant with
        | None -> complain "box %d: reference to foreign quantifier %d" id quant
        | Some q -> (
            match box_opt g q.Box.q_box with
            | None -> ()
            | Some child ->
                let cols = List.map String.lowercase_ascii (Box.output_cols child) in
                if not (List.mem (String.lowercase_ascii col) cols) then
                  complain "box %d: column %s not produced by child box %d" id
                    col q.Box.q_box))
      (Expr.cols e);
    if (not allow_agg) && Expr.contains_agg e then
      complain "box %d: aggregate in SELECT box expression" id
  in
  IM.iter
    (fun id b ->
      match b.Box.body with
      | Box.Base { bt_cols; _ } -> check_unique_outs id bt_cols
      | Box.Select s ->
          check_unique_outs id (List.map fst s.sel_outs);
          List.iter (fun (_, e) -> check_expr id s.sel_quants ~allow_agg:false e) s.sel_outs;
          List.iter (check_expr id s.sel_quants ~allow_agg:false) s.sel_preds
      | Box.Union u ->
          check_unique_outs id u.un_cols;
          List.iter
            (fun q ->
              match box_opt g q.Box.q_box with
              | None -> ()
              | Some child ->
                  if
                    List.length (Box.output_cols child)
                    <> List.length u.un_cols
                  then
                    complain "box %d: UNION branch %d has mismatched arity" id
                      q.Box.q_box)
            u.un_quants
      | Box.Group grp -> (
          check_unique_outs id (Box.output_cols b);
          match box_opt g grp.grp_quant.Box.q_box with
          | None -> complain "box %d: dangling group child" id
          | Some child ->
              let child_cols =
                List.map String.lowercase_ascii (Box.output_cols child)
              in
              let check_col what c =
                if not (List.mem (String.lowercase_ascii c) child_cols) then
                  complain "box %d: %s column %s not produced by child" id what c
              in
              List.iter (check_col "grouping")
                (Box.grouping_union grp.grp_grouping);
              List.iter
                (fun (_, { Box.agg; arg }) ->
                  (match arg with
                  | Some c -> check_col "aggregate" c
                  | None ->
                      if agg.Expr.fn <> Expr.Count_star then
                        complain "box %d: aggregate without argument" id);
                  match (agg.Expr.fn, arg) with
                  | Expr.Count_star, Some _ ->
                      complain "box %d: COUNT(*) with argument" id
                  | _ -> ())
                grp.grp_aggs))
    g.boxes;
  List.rev !problems

(* ------------------------------------------------------------------ *)
(* Debug printing                                                      *)
(* ------------------------------------------------------------------ *)

let pp_qref fmt { Box.quant; col } = Format.fprintf fmt "q%d.%s" quant col

let pp fmt g =
  let pp_expr = Expr.pp pp_qref in
  IM.iter
    (fun id b ->
      let mark = if id = g.root_id then "*" else " " in
      match b.Box.body with
      | Box.Base { bt_table = table; bt_cols = cols } ->
          Format.fprintf fmt "%s[%d] BASE %s (%s)@\n" mark id table
            (String.concat ", " cols)
      | Box.Select s ->
          Format.fprintf fmt "%s[%d] SELECT%s@\n" mark id
            (if s.sel_distinct then " DISTINCT" else "");
          List.iter
            (fun q ->
              Format.fprintf fmt "      quant q%d -> box %d%s@\n" q.Box.q_id
                q.Box.q_box
                (match q.Box.q_kind with
                | Box.Scalar -> " (scalar)"
                | Box.Foreach -> ""))
            s.sel_quants;
          List.iter
            (fun p -> Format.fprintf fmt "      pred %a@\n" pp_expr p)
            s.sel_preds;
          List.iter
            (fun (n, e) -> Format.fprintf fmt "      out %s = %a@\n" n pp_expr e)
            s.sel_outs
      | Box.Union u ->
          Format.fprintf fmt "%s[%d] UNION%s (%s)@\n" mark id
            (if u.un_all then " ALL" else "")
            (String.concat ", "
               (List.map (fun q -> string_of_int q.Box.q_box) u.un_quants))
      | Box.Group grp ->
          Format.fprintf fmt "%s[%d] GROUP BY (quant q%d -> box %d)@\n" mark id
            grp.grp_quant.Box.q_id grp.grp_quant.Box.q_box;
          (match grp.grp_grouping with
          | Box.Simple cols ->
              Format.fprintf fmt "      keys: %s@\n" (String.concat ", " cols)
          | Box.Gsets sets ->
              Format.fprintf fmt "      grouping sets: %s@\n"
                (String.concat "; "
                   (List.map (fun s -> "(" ^ String.concat ", " s ^ ")") sets)));
          List.iter
            (fun (n, { Box.agg; arg }) ->
              Format.fprintf fmt "      agg %s = %s(%s%s)@\n" n
                (Expr.agg_fn_to_string agg.Expr.fn)
                (if agg.Expr.distinct then "DISTINCT " else "")
                (match arg with Some a -> a | None -> "*"))
            grp.grp_aggs)
    g.boxes
