module E = Expr
module B = Box
module V = Data.Value

let norm = String.lowercase_ascii

let rec col_type cat g box_id col =
  let box = Graph.box g box_id in
  match box.B.body with
  | B.Base { bt_table; _ } -> (
      match Catalog.find_table cat bt_table with
      | None -> V.Tstr
      | Some tbl -> (
          match Catalog.find_column tbl col with
          | Some c -> c.Catalog.col_ty
          | None -> V.Tstr))
  | B.Select sel -> (
      match
        List.find_opt (fun (n, _) -> norm n = norm col) sel.B.sel_outs
      with
      | Some (_, e) -> expr_type cat g sel.B.sel_quants e
      | None -> V.Tstr)
  | B.Union u -> (
      match u.B.un_quants with
      | q :: _ ->
          let child_cols = B.output_cols (Graph.box g q.B.q_box) in
          let idx =
            let rec find i = function
              | [] -> None
              | c :: rest ->
                  if norm c = norm col then Some i else (ignore rest; find (i + 1) rest)
            in
            find 0 u.B.un_cols
          in
          (match idx with
          | Some i when i < List.length child_cols ->
              col_type cat g q.B.q_box (List.nth child_cols i)
          | _ -> V.Tstr)
      | [] -> V.Tstr)
  | B.Group grp ->
      let child = grp.B.grp_quant.B.q_box in
      if List.exists (fun c -> norm c = norm col) (B.grouping_union grp.B.grp_grouping)
      then col_type cat g child col
      else (
        match
          List.find_opt (fun (n, _) -> norm n = norm col) grp.B.grp_aggs
        with
        | Some (_, { B.agg; arg }) -> (
            match agg.E.fn with
            | E.Count_star | E.Count -> V.Tint
            | E.Avg -> V.Tfloat
            | E.Sum | E.Min | E.Max -> (
                match arg with
                | Some a -> col_type cat g child a
                | None -> V.Tint))
        | None -> V.Tstr)

and expr_type cat g quants e =
  let of_col { B.quant; col } =
    match List.find_opt (fun q -> q.B.q_id = quant) quants with
    | Some q -> col_type cat g q.B.q_box col
    | None -> V.Tstr
  in
  match e with
  | E.Const (V.Int _) -> V.Tint
  | E.Const (V.Float _) -> V.Tfloat
  | E.Const (V.Str _) -> V.Tstr
  | E.Const (V.Bool _) -> V.Tbool
  | E.Const (V.Date _) -> V.Tdate
  | E.Const V.Null -> V.Tstr
  | E.Col c -> of_col c
  | E.Unop ("NOT", _) -> V.Tbool
  | E.Unop (_, e) -> expr_type cat g quants e
  | E.Binop (("AND" | "OR" | "=" | "<>" | "<" | "<=" | ">" | ">="), _, _) ->
      V.Tbool
  | E.Binop ("||", _, _) -> V.Tstr
  | E.Binop ("/", a, b) | E.Binop ("*", a, b) | E.Binop ("+", a, b)
  | E.Binop ("-", a, b) -> (
      match (expr_type cat g quants a, expr_type cat g quants b) with
      | V.Tint, V.Tint -> V.Tint
      | (V.Tint | V.Tfloat), (V.Tint | V.Tfloat) -> V.Tfloat
      | t, _ -> t)
  | E.Binop ("%", _, _) -> V.Tint
  | E.Binop (_, a, _) -> expr_type cat g quants a
  | E.Fncall (("year" | "month" | "day" | "length" | "mod"), _) -> V.Tint
  | E.Fncall ("float", _) -> V.Tfloat
  | E.Fncall (("upper" | "lower"), _) -> V.Tstr
  | E.Fncall ("coalesce", args) -> (
      match args with
      | a :: _ -> expr_type cat g quants a
      | [] -> V.Tstr)
  | E.Fncall ("abs", [ a ]) -> expr_type cat g quants a
  | E.Fncall (_, _) -> V.Tstr
  | E.Agg ({ E.fn = E.Count | E.Count_star; _ }, _) -> V.Tint
  | E.Agg ({ E.fn = E.Avg; _ }, _) -> V.Tfloat
  | E.Agg (_, Some a) -> expr_type cat g quants a
  | E.Agg (_, None) -> V.Tint
  | E.Is_null _ -> V.Tbool
  | E.Case (arms, els) -> (
      match (arms, els) with
      | (_, v) :: _, _ -> expr_type cat g quants v
      | [], Some e -> expr_type cat g quants e
      | [], None -> V.Tstr)

let infer_outputs cat g =
  let root = Graph.root g in
  List.map
    (fun c -> (c, col_type cat g root c))
    (B.output_cols (Graph.box g root))
