(* QGM structural types (shared type-only module).

   A query is a rooted DAG of boxes. Leaves are base tables; interior boxes
   are SELECT (select-project-join, WHERE/HAVING predicates, scalar
   computation) or GROUP BY (grouping + aggregation, possibly
   multidimensional). Boxes consume their children's output columns (QCLs)
   through quantifiers; a quantifier-column pair is a QNC. *)

type box_id = int
type quant_id = int

(* A QNC: input column [col] of the box, flowing from quantifier [quant]. *)
type qref = { quant : quant_id; col : string }

type quant_kind =
  | Foreach  (* regular join operand: iterate over all rows *)
  | Scalar   (* scalar subquery: exactly one row expected (empty -> NULL) *)

type quant = { q_id : quant_id; q_box : box_id; q_kind : quant_kind }

type grouping =
  | Simple of string list          (* grouping column names (child QCLs) *)
  | Gsets of string list list      (* canonical grouping sets (paper, section 5) *)

(* Aggregate application inside a GROUP BY box: argument is a child column
   (simple QNC), per the QGM restriction the paper states in section 2. *)
type agg_app = { agg : Expr.agg; arg : string option }

type base_body = { bt_table : string; bt_cols : string list }

type select_body = {
  sel_quants : quant list;
  sel_preds : qref Expr.t list;            (* implicit conjunction *)
  sel_outs : (string * qref Expr.t) list;  (* output name -> defining expr *)
  sel_distinct : bool;
}

type group_body = {
  grp_quant : quant;
  grp_grouping : grouping;
  grp_aggs : (string * agg_app) list;      (* output name -> aggregate *)
}

(* UNION [ALL]: children must agree in arity; output column names come
   from the declared list (the first branch's names). *)
type union_body = {
  un_quants : quant list;
  un_all : bool;            (* false: UNION (duplicates eliminated) *)
  un_cols : string list;
}

type body =
  | Base of base_body
  | Select of select_body
  | Group of group_body
  | Union of union_body

type box = { id : box_id; body : body }

(* The union of grouping columns: for [Simple g] it is [g]; for [Gsets] the
   (order-preserving) union of all sets. *)
let grouping_union = function
  | Simple g -> g
  | Gsets sets ->
      List.fold_left
        (fun acc set ->
          List.fold_left
            (fun acc c -> if List.mem c acc then acc else acc @ [ c ])
            acc set)
        [] sets

let grouping_sets = function Simple g -> [ g ] | Gsets sets -> sets

(* Output column names of a box, in order. *)
let output_cols box =
  match box.body with
  | Base b -> b.bt_cols
  | Select s -> List.map fst s.sel_outs
  | Group g -> grouping_union g.grp_grouping @ List.map fst g.grp_aggs
  | Union u -> u.un_cols

let quants_of box =
  match box.body with
  | Base _ -> []
  | Select s -> s.sel_quants
  | Group g -> [ g.grp_quant ]
  | Union u -> u.un_quants

let children_ids box = List.map (fun q -> q.q_box) (quants_of box)

let is_select box = match box.body with Select _ -> true | _ -> false
let is_group box = match box.body with Group _ -> true | _ -> false
let is_base box = match box.body with Base _ -> true | _ -> false
