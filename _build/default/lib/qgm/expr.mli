(** QGM scalar expressions, generic over the column-reference type.

    The same expression shape is reused in three contexts: box expressions
    over quantifier inputs ([Qref.t]), translated expressions over subsumer
    inputs, and compensation expressions over below-level outputs. [Between],
    [IN]-lists and [NOT] are desugared by the builder, so the matcher only
    sees this small core. *)

type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type agg = { fn : agg_fn; distinct : bool }

type 'c t =
  | Const of Data.Value.t
  | Col of 'c
  | Unop of string * 'c t                  (** "-" or "NOT" *)
  | Binop of string * 'c t * 'c t
  | Fncall of string * 'c t list
  | Agg of agg * 'c t option               (** [None] only for COUNT star *)
  | Is_null of 'c t * bool                 (** [true] = IS NULL *)
  | Case of ('c t * 'c t) list * 'c t option

val agg_fn_to_string : agg_fn -> string

(** {1 Traversals} *)

val map_col : ('a -> 'b) -> 'a t -> 'b t

(** Column substitution that may fail; [None] leaves propagate. *)
val subst_col : ('a -> 'b t option) -> 'a t -> 'b t option

(** Total column substitution by expressions. *)
val subst_col_exn : ('a -> 'b t) -> 'a t -> 'b t

val fold_cols : ('acc -> 'c -> 'acc) -> 'acc -> 'c t -> 'acc
val cols : 'c t -> 'c list
val contains_agg : 'c t -> bool
val exists_sub : ('c t -> bool) -> 'c t -> bool

(** Direct sub-expressions of a node. *)
val children : 'c t -> 'c t list

(** Rebuild a node with new children (same arity required). *)
val with_children : 'c t -> 'c t list -> 'c t

(** {1 Semantic normalization}

    Constant folding, flattening and sorting of commutative operator chains
    ([+], [*], [AND], [OR], [=], [<>]), and direction-normalization of
    comparisons ([>] becomes flipped [<], [>=] becomes flipped [<=]). Two
    expressions are semantically compared by normalizing both and testing
    structural equality; column references should be canonicalized (e.g. to
    equivalence-class representatives) beforehand. *)
val normalize : 'c t -> 'c t

val equal_norm : 'c t -> 'c t -> bool

(** Pretty-print with a column renderer (for diagnostics). *)
val pp : (Format.formatter -> 'c -> unit) -> Format.formatter -> 'c t -> unit

val to_string : ('c -> string) -> 'c t -> string
