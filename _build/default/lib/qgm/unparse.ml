module A = Sqlsyn.Ast
module E = Expr
module B = Box

let norm = String.lowercase_ascii

(* Naming: each foreach quantifier of a block gets a FROM binding; base
   tables keep their name when it is unambiguous within the block,
   otherwise (and for subqueries) a synthetic alias [t<box>_<quant>]. *)

let rec to_query_of_box g id : A.query =
  let box = Graph.box g id in
  match box.B.body with
  | B.Base { bt_table; _ } ->
      {
        A.empty_query with
        A.select_star = true;
        from = [ A.From_table (bt_table, None) ];
      }
  | B.Group _ -> group_query g id None
  | B.Union u ->
      let branches = List.map (fun q -> to_query_of_box g q.B.q_box) u.B.un_quants in
      (match branches with
      | first :: rest ->
          {
            first with
            A.unions = List.map (fun q -> (u.B.un_all, q)) rest;
          }
      | [] -> A.empty_query)
  | B.Select sel -> (
      (* merge a SELECT over a single GROUP BY child *)
      match sel.B.sel_quants with
      | [ q ]
        when q.B.q_kind = B.Foreach
             && B.is_group (Graph.box g q.B.q_box)
             && not sel.B.sel_distinct ->
          group_query g q.B.q_box (Some (sel, q))
      | _ -> select_query g sel)

and select_query g (sel : B.select_body) : A.query =
  let foreach =
    List.filter (fun q -> q.B.q_kind = B.Foreach) sel.B.sel_quants
  in
  let base_name q =
    match (Graph.box g q.B.q_box).B.body with
    | B.Base { bt_table; _ } -> Some bt_table
    | _ -> None
  in
  (* choose binding names *)
  let names =
    List.map
      (fun q ->
        match base_name q with
        | Some t
          when List.length
                 (List.filter
                    (fun q' ->
                      match base_name q' with
                      | Some t' -> norm t' = norm t
                      | None -> false)
                    foreach)
               = 1 ->
            (q.B.q_id, t, `Table t)
        | Some t ->
            let alias = Printf.sprintf "%s_q%d" (String.lowercase_ascii t) q.B.q_id in
            (q.B.q_id, alias, `Aliased t)
        | None -> (q.B.q_id, Printf.sprintf "t%d" q.B.q_box, `Sub))
      foreach
  in
  let from =
    List.map2
      (fun q (_, name, kind) ->
        match kind with
        | `Table t -> A.From_table (t, None)
        | `Aliased t -> A.From_table (t, Some name)
        | `Sub -> A.From_sub (to_query_of_box g q.B.q_box, name))
      foreach names
  in
  let conv = conv_expr g sel.B.sel_quants names in
  let where =
    match List.map conv sel.B.sel_preds with
    | [] -> None
    | first :: rest ->
        Some (List.fold_left (fun acc p -> A.Binop ("AND", acc, p)) first rest)
  in
  {
    A.empty_query with
    A.distinct = sel.B.sel_distinct;
    select =
      List.map
        (fun (n, e) -> { A.item_expr = conv e; item_alias = Some n })
        sel.B.sel_outs;
    from;
    where;
  }

(* A GROUP BY box, optionally merged with the SELECT box above it. The
   grouping/aggregation expressions are inlined from the child select when
   the child is a SELECT box; otherwise the child becomes a subquery. *)
and group_query g id upper : A.query =
  let grp =
    match (Graph.box g id).B.body with B.Group grp -> grp | _ -> assert false
  in
  let child_id = grp.B.grp_quant.B.q_box in
  let child_box = Graph.box g child_id in
  let base, col_expr =
    match child_box.B.body with
    | B.Select csel ->
        let q = select_query g csel in
        let lookup c =
          List.find_map
            (fun { A.item_expr; item_alias } ->
              match item_alias with
              | Some a when norm a = norm c -> Some item_expr
              | _ -> None)
            q.A.select
        in
        (q, lookup)
    | _ ->
        let sub = to_query_of_box g child_id in
        let alias = Printf.sprintf "t%d" child_id in
        ( {
            A.empty_query with
            A.select_star = true;
            from = [ A.From_sub (sub, alias) ];
          },
          fun c -> Some (A.Ref (Some alias, c)) )
  in
  let col_expr c =
    match col_expr c with Some e -> e | None -> A.Ref (None, c)
  in
  let group_by =
    match grp.B.grp_grouping with
    | B.Simple cols -> List.map (fun c -> A.G_expr (col_expr c)) cols
    | B.Gsets sets -> [ A.G_sets (List.map (List.map col_expr) sets) ]
  in
  let agg_expr { B.agg; arg } =
    let name =
      match agg.E.fn with
      | E.Count_star | E.Count -> A.Count
      | E.Sum -> A.Sum
      | E.Avg -> A.Avg
      | E.Min -> A.Min
      | E.Max -> A.Max
    in
    A.Agg (name, agg.E.distinct, Option.map col_expr arg)
  in
  let group_outs =
    List.map
      (fun c -> (c, col_expr c))
      (B.grouping_union grp.B.grp_grouping)
    @ List.map (fun (n, app) -> (n, agg_expr app)) grp.B.grp_aggs
  in
  let lookup_group_col c =
    match List.find_opt (fun (n, _) -> norm n = norm c) group_outs with
    | Some (_, e) -> e
    | None -> A.Ref (None, c)
  in
  match upper with
  | None ->
      {
        base with
        A.select =
          List.map
            (fun (n, e) -> { A.item_expr = e; item_alias = Some n })
            group_outs;
        select_star = false;
        group_by;
      }
  | Some (usel, uq) ->
      let rec conv e =
        match e with
        | E.Const v -> A.Lit v
        | E.Col { B.quant; col } when quant = uq.B.q_id -> lookup_group_col col
        | E.Col { B.col; _ } -> A.Ref (None, col)
        | E.Unop (op, e) -> A.Unop (op, conv e)
        | E.Binop (op, a, b) -> A.Binop (op, conv a, conv b)
        | E.Fncall (f, args) -> A.Fncall (f, List.map conv args)
        | E.Agg _ -> A.Ref (None, "_agg_")
        | E.Is_null (e, pos) -> A.Is_null (conv e, pos)
        | E.Case (arms, els) ->
            A.Case
              ( List.map (fun (c, v) -> (conv c, conv v)) arms,
                Option.map conv els )
      in
      let having =
        match List.map conv usel.B.sel_preds with
        | [] -> None
        | first :: rest ->
            Some
              (List.fold_left (fun acc p -> A.Binop ("AND", acc, p)) first rest)
      in
      {
        base with
        A.select =
          List.map
            (fun (n, e) -> { A.item_expr = conv e; item_alias = Some n })
            usel.B.sel_outs;
        select_star = false;
        group_by;
        having;
      }

(* Expression conversion within a plain SELECT block: quantifier references
   become (possibly qualified) column refs; scalar quantifiers are
   re-inlined as scalar subqueries. *)
and conv_expr g quants names e =
  let qualifier qid =
    match List.find_opt (fun (q, _, _) -> q = qid) names with
    | Some (_, name, `Table t) ->
        ignore t;
        Some name
    | Some (_, name, _) -> Some name
    | None -> None
  in
  let rec conv e =
    match e with
    | E.Const v -> A.Lit v
    | E.Col { B.quant; col } -> (
        match List.find_opt (fun q -> q.B.q_id = quant) quants with
        | Some q when q.B.q_kind = B.Scalar ->
            A.Scalar_sub (to_query_of_box g q.B.q_box)
        | _ -> A.Ref (qualifier quant, col))
    | E.Unop (op, e) -> A.Unop (op, conv e)
    | E.Binop (op, a, b) -> A.Binop (op, conv a, conv b)
    | E.Fncall (f, args) -> A.Fncall (f, List.map conv args)
    | E.Agg (agg, arg) ->
        let name =
          match agg.E.fn with
          | E.Count_star | E.Count -> A.Count
          | E.Sum -> A.Sum
          | E.Avg -> A.Avg
          | E.Min -> A.Min
          | E.Max -> A.Max
        in
        A.Agg (name, agg.E.distinct, Option.map conv arg)
    | E.Is_null (e, pos) -> A.Is_null (conv e, pos)
    | E.Case (arms, els) ->
        A.Case
          (List.map (fun (c, v) -> (conv c, conv v)) arms, Option.map conv els)
  in
  conv e

let to_query g =
  let q = to_query_of_box g (Graph.root g) in
  let { Graph.order_by; limit } = Graph.presentation g in
  {
    q with
    A.order_by = List.map (fun (c, asc) -> (A.Ref (None, c), asc)) order_by;
    limit;
  }

let to_sql g = Sqlsyn.Pretty.query_to_string (to_query g)
