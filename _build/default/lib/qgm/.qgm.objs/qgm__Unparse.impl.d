lib/qgm/unparse.ml: Box Expr Graph List Option Printf Sqlsyn String
