lib/qgm/builder.mli: Catalog Graph Sqlsyn
