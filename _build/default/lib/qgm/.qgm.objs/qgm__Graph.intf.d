lib/qgm/graph.mli: Box Format Hashtbl
