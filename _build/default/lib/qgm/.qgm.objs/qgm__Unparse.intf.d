lib/qgm/unparse.mli: Graph Sqlsyn
