lib/qgm/typing.mli: Catalog Data Graph
