lib/qgm/expr.ml: Data Format List Option Stdlib
