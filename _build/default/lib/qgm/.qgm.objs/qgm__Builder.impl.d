lib/qgm/builder.ml: Box Catalog Data Expr Format Graph List Option Printf Sqlsyn String
