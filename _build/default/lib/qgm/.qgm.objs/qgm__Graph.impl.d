lib/qgm/graph.ml: Box Expr Format Hashtbl Int List Map Option Printf String
