lib/qgm/expr.mli: Data Format
