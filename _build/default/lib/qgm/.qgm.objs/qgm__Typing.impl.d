lib/qgm/typing.ml: Box Catalog Data Expr Graph List String
