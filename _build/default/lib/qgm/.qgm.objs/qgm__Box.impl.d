lib/qgm/box.ml: Expr List
