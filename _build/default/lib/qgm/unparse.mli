(** QGM to SQL: render a graph back into the surface syntax.

    Each box becomes a query block; SELECT / GROUP BY / SELECT triples are
    re-merged into single blocks with GROUP BY and HAVING clauses (the
    inverse of {!Builder}'s decomposition), so rewritten queries read like
    the paper's NewQ examples. Scalar quantifiers are re-inlined as scalar
    subqueries. *)

(** Render the graph rooted at its root box. *)
val to_query : Graph.t -> Sqlsyn.Ast.query

val to_sql : Graph.t -> string
