type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type agg = { fn : agg_fn; distinct : bool }

type 'c t =
  | Const of Data.Value.t
  | Col of 'c
  | Unop of string * 'c t
  | Binop of string * 'c t * 'c t
  | Fncall of string * 'c t list
  | Agg of agg * 'c t option
  | Is_null of 'c t * bool
  | Case of ('c t * 'c t) list * 'c t option

let agg_fn_to_string = function
  | Count_star | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let rec map_col f = function
  | Const v -> Const v
  | Col c -> Col (f c)
  | Unop (op, e) -> Unop (op, map_col f e)
  | Binop (op, a, b) -> Binop (op, map_col f a, map_col f b)
  | Fncall (g, es) -> Fncall (g, List.map (map_col f) es)
  | Agg (a, e) -> Agg (a, Option.map (map_col f) e)
  | Is_null (e, pos) -> Is_null (map_col f e, pos)
  | Case (arms, els) ->
      Case
        ( List.map (fun (c, v) -> (map_col f c, map_col f v)) arms,
          Option.map (map_col f) els )

let rec subst_col f = function
  | Const v -> Some (Const v)
  | Col c -> f c
  | Unop (op, e) -> Option.map (fun e -> Unop (op, e)) (subst_col f e)
  | Binop (op, a, b) -> (
      match (subst_col f a, subst_col f b) with
      | Some a, Some b -> Some (Binop (op, a, b))
      | _ -> None)
  | Fncall (g, es) ->
      let es' = List.filter_map (subst_col f) es in
      if List.length es' = List.length es then Some (Fncall (g, es')) else None
  | Agg (a, None) -> Some (Agg (a, None))
  | Agg (a, Some e) -> Option.map (fun e -> Agg (a, Some e)) (subst_col f e)
  | Is_null (e, pos) -> Option.map (fun e -> Is_null (e, pos)) (subst_col f e)
  | Case (arms, els) -> (
      let arms' =
        List.filter_map
          (fun (c, v) ->
            match (subst_col f c, subst_col f v) with
            | Some c, Some v -> Some (c, v)
            | _ -> None)
          arms
      in
      if List.length arms' <> List.length arms then None
      else
        match els with
        | None -> Some (Case (arms', None))
        | Some e ->
            Option.map (fun e -> Case (arms', Some e)) (subst_col f e))

let subst_col_exn f e =
  match subst_col (fun c -> Some (f c)) e with
  | Some e -> e
  | None -> assert false

let rec fold_cols f acc = function
  | Const _ -> acc
  | Col c -> f acc c
  | Unop (_, e) | Is_null (e, _) | Agg (_, Some e) -> fold_cols f acc e
  | Agg (_, None) -> acc
  | Binop (_, a, b) -> fold_cols f (fold_cols f acc a) b
  | Fncall (_, es) -> List.fold_left (fold_cols f) acc es
  | Case (arms, els) ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> fold_cols f (fold_cols f acc c) v)
          acc arms
      in
      Option.fold ~none:acc ~some:(fold_cols f acc) els

let cols e = List.rev (fold_cols (fun acc c -> c :: acc) [] e)

let children = function
  | Const _ | Col _ | Agg (_, None) -> []
  | Unop (_, e) | Is_null (e, _) | Agg (_, Some e) -> [ e ]
  | Binop (_, a, b) -> [ a; b ]
  | Fncall (_, es) -> es
  | Case (arms, els) ->
      List.concat_map (fun (c, v) -> [ c; v ]) arms @ Option.to_list els

let with_children node kids =
  match (node, kids) with
  | (Const _ | Col _ | Agg (_, None)), [] -> node
  | Unop (op, _), [ e ] -> Unop (op, e)
  | Is_null (_, pos), [ e ] -> Is_null (e, pos)
  | Agg (a, Some _), [ e ] -> Agg (a, Some e)
  | Binop (op, _, _), [ a; b ] -> Binop (op, a, b)
  | Fncall (g, es), kids when List.length es = List.length kids -> Fncall (g, kids)
  | Case (arms, els), kids ->
      let rec split arms kids =
        match (arms, kids) with
        | [], rest -> ([], rest)
        | _ :: arms, c :: v :: rest ->
            let arms', rest' = split arms rest in
            ((c, v) :: arms', rest')
        | _ -> invalid_arg "Expr.with_children: arity mismatch"
      in
      let arms', rest = split arms kids in
      let els' =
        match (els, rest) with
        | None, [] -> None
        | Some _, [ e ] -> Some e
        | _ -> invalid_arg "Expr.with_children: arity mismatch"
      in
      Case (arms', els')
  | _ -> invalid_arg "Expr.with_children: arity mismatch"

let rec contains_agg = function
  | Agg _ -> true
  | e -> List.exists contains_agg (children e)

let rec exists_sub p e = p e || List.exists (exists_sub p) (children e)

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

let commutative = function "+" | "*" | "AND" | "OR" | "=" | "<>" -> true | _ -> false

(* Flatten an associative-commutative chain into its operand list. *)
let rec ac_operands op e =
  match e with
  | Binop (op', a, b) when op' = op && (op = "+" || op = "*" || op = "AND" || op = "OR")
    ->
      ac_operands op a @ ac_operands op b
  | e -> [ e ]

let try_fold_const op a b =
  match (a, b) with
  | Const x, Const y -> (
      let open Data.Value in
      match op with
      | "+" -> ( try Some (Const (add x y)) with _ -> None)
      | "-" -> ( try Some (Const (sub x y)) with _ -> None)
      | "*" -> ( try Some (Const (mul x y)) with _ -> None)
      | "/" -> ( try Some (Const (div x y)) with _ -> None)
      | "=" -> Some (Const (sql_eq x y))
      | "<>" -> Some (Const (sql_neq x y))
      | "<" -> Some (Const (sql_lt x y))
      | "<=" -> Some (Const (sql_le x y))
      | "AND" -> ( try Some (Const (sql_and x y)) with _ -> None)
      | "OR" -> ( try Some (Const (sql_or x y)) with _ -> None)
      | "||" -> ( try Some (Const (concat x y)) with _ -> None)
      | _ -> None)
  | _ -> None

let rec normalize e =
  match e with
  | Const _ | Col _ | Agg (_, None) -> e
  | Unop ("-", e') -> (
      match normalize e' with
      | Const v -> ( try Const (Data.Value.neg v) with _ -> Unop ("-", Const v))
      | e' -> Unop ("-", e'))
  | Unop ("NOT", e') -> (
      match normalize e' with
      | Const v -> (
          try Const (Data.Value.sql_not v) with _ -> Unop ("NOT", Const v))
      | Unop ("NOT", inner) -> inner
      | e' -> Unop ("NOT", e'))
  | Unop (op, e') -> Unop (op, normalize e')
  | Binop (">", a, b) -> normalize (Binop ("<", b, a))
  | Binop (">=", a, b) -> normalize (Binop ("<=", b, a))
  | Binop (op, a, b) when commutative op ->
      let ops =
        if op = "=" || op = "<>" then [ normalize a; normalize b ]
        else List.map normalize (ac_operands op (Binop (op, a, b)))
      in
      let ops = List.sort Stdlib.compare ops in
      let rebuilt =
        match ops with
        | [] -> assert false
        | first :: rest ->
            List.fold_left (fun acc x -> Binop (op, acc, x)) first rest
      in
      fold_chain op rebuilt
  | Binop (op, a, b) -> (
      let a = normalize a and b = normalize b in
      match try_fold_const op a b with Some e -> e | None -> Binop (op, a, b))
  | Fncall (g, es) -> Fncall (g, List.map normalize es)
  | Agg (a, Some e') -> Agg (a, Some (normalize e'))
  | Is_null (e', pos) -> Is_null (normalize e', pos)
  | Case (arms, els) ->
      Case
        ( List.map (fun (c, v) -> (normalize c, normalize v)) arms,
          Option.map normalize els )

and fold_chain op e =
  match e with
  | Binop (op', a, b) when op' = op -> (
      let a = fold_chain op a in
      match try_fold_const op a b with Some e -> e | None -> Binop (op, a, b))
  | e -> e

let equal_norm a b = normalize a = normalize b

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp pc fmt = function
  | Const v -> Data.Value.pp fmt v
  | Col c -> pc fmt c
  | Unop (op, e) -> Format.fprintf fmt "%s(%a)" op (pp pc) e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" (pp pc) a op (pp pc) b
  | Fncall (g, es) ->
      Format.fprintf fmt "%s(%a)" g
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           (pp pc))
        es
  | Agg (a, None) ->
      Format.fprintf fmt "%s(*)" (agg_fn_to_string a.fn)
  | Agg (a, Some e) ->
      Format.fprintf fmt "%s(%s%a)" (agg_fn_to_string a.fn)
        (if a.distinct then "DISTINCT " else "")
        (pp pc) e
  | Is_null (e, pos) ->
      Format.fprintf fmt "%a IS %sNULL" (pp pc) e (if pos then "" else "NOT ")
  | Case (arms, els) ->
      Format.fprintf fmt "CASE";
      List.iter
        (fun (c, v) ->
          Format.fprintf fmt " WHEN %a THEN %a" (pp pc) c (pp pc) v)
        arms;
      (match els with
      | Some e -> Format.fprintf fmt " ELSE %a" (pp pc) e
      | None -> ());
      Format.fprintf fmt " END"

let to_string render e =
  Format.asprintf "%a" (pp (fun fmt c -> Format.pp_print_string fmt (render c))) e
