(** Semantic analysis: SQL abstract syntax to QGM.

    Performs name resolution against the catalog, desugars [BETWEEN] /
    [IN]-lists, extracts aggregates and grouping expressions into the
    SELECT / GROUP BY / SELECT box triple the paper describes (Figure 3),
    canonicalizes ROLLUP / CUBE / GROUPING SETS into a single
    grouping-sets form (section 5), and attaches non-correlated scalar
    subqueries as scalar quantifiers.

    Correlated subqueries are rejected (paper footnote 1): a subquery is
    resolved only against its own FROM bindings, so an outer reference
    surfaces as an unknown-column error. *)

exception Sem_error of string

(** [build cat q] elaborates query [q] into a QGM graph whose root produces
    the query result. Raises {!Sem_error} on resolution or shape errors. *)
val build : Catalog.t -> Sqlsyn.Ast.query -> Graph.t

(** Output column names of the graph root, in SELECT-list order. *)
val output_columns : Graph.t -> string list
