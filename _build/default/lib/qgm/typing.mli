(** Lightweight output-type inference for QGM graphs.

    Used to register materialized summary tables in the catalog with
    sensible column types. Falls back to [Tfloat] for arithmetic over mixed
    numerics and to [Tstr] when nothing better is known. *)

val infer_outputs : Catalog.t -> Graph.t -> (string * Data.Value.ty) list
