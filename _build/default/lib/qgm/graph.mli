(** The QGM graph: an arena of boxes with a designated root.

    Graphs are immutable; construction threads the graph value. ORDER BY and
    LIMIT are presentation properties of the whole query (irrelevant to
    matching), kept alongside the root rather than as boxes. *)

type presentation = {
  order_by : (string * bool) list;  (** root output column, ascending flag *)
  limit : int option;
}

type t

val empty : t

(** [add_box g body] allocates a fresh box id. *)
val add_box : t -> Box.body -> t * Box.box_id

(** [fresh_quant g box kind] allocates a quantifier over [box]. *)
val fresh_quant : t -> Box.box_id -> Box.quant_kind -> t * Box.quant

val set_root : t -> Box.box_id -> t
val root : t -> Box.box_id
val box : t -> Box.box_id -> Box.box
val box_opt : t -> Box.box_id -> Box.box option

(** Replace a box's body in place (same id). *)
val update_box : t -> Box.box_id -> Box.body -> t

val set_presentation : t -> presentation -> t
val presentation : t -> presentation

(** All box ids, ascending. *)
val box_ids : t -> Box.box_id list

(** Boxes reachable from the root (set of ids). *)
val reachable : t -> Box.box_id -> Box.box_id list

(** [parents g] maps each box to the boxes that consume it. *)
val parents : t -> (Box.box_id, Box.box_id list) Hashtbl.t

(** Leaf (base-table) boxes reachable from the given root. *)
val base_leaves : t -> Box.box_id -> Box.box_id list

(** Find, within a box, the quantifier with the given id. *)
val quant_in : Box.box -> Box.quant_id -> Box.quant option

(** Output columns of the box a quantifier ranges over. *)
val quant_cols : t -> Box.quant -> string list

(** Structural validation; returns human-readable problems (empty = valid).
    Checks: root exists, quantifier targets exist, acyclicity, column
    references resolve against child outputs, aggregates appear only in
    GROUP BY boxes, grouping columns exist in the child, output names are
    unique. *)
val validate : t -> string list

(** Debug dump. *)
val pp : Format.formatter -> t -> unit
