type column = { col_name : string; col_ty : Data.Value.ty; nullable : bool }

type foreign_key = {
  fk_cols : string list;
  fk_ref_table : string;
  fk_ref_cols : string list;
}

type table = {
  tbl_name : string;
  tbl_cols : column list;
  primary_key : string list;
  unique_keys : string list list;
  foreign_keys : foreign_key list;
}

module Smap = Map.Make (String)

type t = { tabs : table Smap.t; counts : int Smap.t; ndvs : int Smap.t }

let empty = { tabs = Smap.empty; counts = Smap.empty; ndvs = Smap.empty }
let norm = String.lowercase_ascii
let norm_cols cols = List.sort compare (List.map norm cols)

let find_table cat name = Smap.find_opt (norm name) cat.tabs

let table_exn cat name =
  match find_table cat name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %s" name)

let remove_table cat name =
  let key = norm name in
  Smap.iter
    (fun _ tbl ->
      if norm tbl.tbl_name <> key then
        List.iter
          (fun fk ->
            if norm fk.fk_ref_table = key then
              invalid_arg
                (Printf.sprintf
                   "Catalog: cannot drop %s: table %s references it" name
                   tbl.tbl_name))
          tbl.foreign_keys)
    cat.tabs;
  let ndvs =
    Smap.filter
      (fun k _ -> not (String.length k > String.length key
                       && String.sub k 0 (String.length key + 1) = key ^ "."))
      cat.ndvs
  in
  { tabs = Smap.remove key cat.tabs; counts = Smap.remove key cat.counts; ndvs }

let tables cat = List.map snd (Smap.bindings cat.tabs)
let mem_table cat name = Smap.mem (norm name) cat.tabs

let find_column tbl name =
  let lname = norm name in
  List.find_opt (fun c -> norm c.col_name = lname) tbl.tbl_cols

let column_names tbl = List.map (fun c -> c.col_name) tbl.tbl_cols

let check_cols_exist tbl what cols =
  List.iter
    (fun c ->
      if find_column tbl c = None then
        invalid_arg
          (Printf.sprintf "Catalog: %s column %s not declared in table %s" what
             c tbl.tbl_name))
    cols

let keys_of tbl =
  (if tbl.primary_key = [] then [] else [ tbl.primary_key ]) @ tbl.unique_keys

let is_unique_key_tbl tbl cols =
  let cols = norm_cols cols in
  List.exists
    (fun key ->
      List.for_all (fun k -> List.mem (norm k) cols) (List.map norm key))
    (keys_of tbl)

let add_table cat tbl =
  if mem_table cat tbl.tbl_name then
    invalid_arg (Printf.sprintf "Catalog: duplicate table %s" tbl.tbl_name);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let k = norm c.col_name in
      if Hashtbl.mem seen k then
        invalid_arg
          (Printf.sprintf "Catalog: duplicate column %s in table %s" c.col_name
             tbl.tbl_name);
      Hashtbl.add seen k ())
    tbl.tbl_cols;
  check_cols_exist tbl "primary key" tbl.primary_key;
  List.iter (check_cols_exist tbl "unique key") tbl.unique_keys;
  List.iter
    (fun fk ->
      check_cols_exist tbl "foreign key" fk.fk_cols;
      (match find_table cat fk.fk_ref_table with
      | None ->
          invalid_arg
            (Printf.sprintf "Catalog: FK in %s references unknown table %s"
               tbl.tbl_name fk.fk_ref_table)
      | Some ref_tbl ->
          check_cols_exist ref_tbl "referenced" fk.fk_ref_cols;
          if not (is_unique_key_tbl ref_tbl fk.fk_ref_cols) then
            invalid_arg
              (Printf.sprintf
                 "Catalog: FK in %s references non-key columns of %s"
                 tbl.tbl_name fk.fk_ref_table));
      if List.length fk.fk_cols <> List.length fk.fk_ref_cols then
        invalid_arg
          (Printf.sprintf "Catalog: FK arity mismatch in table %s" tbl.tbl_name))
    tbl.foreign_keys;
  { cat with tabs = Smap.add (norm tbl.tbl_name) tbl cat.tabs }

let is_unique_key cat tname cols =
  match find_table cat tname with
  | None -> false
  | Some tbl -> is_unique_key_tbl tbl cols

let ri_holds cat ~from_table ~from_cols ~to_table ~to_cols =
  match find_table cat from_table with
  | None -> false
  | Some tbl ->
      let pairs fk = List.combine (List.map norm fk.fk_cols) (List.map norm fk.fk_ref_cols) in
      let wanted =
        List.sort compare (List.combine (List.map norm from_cols) (List.map norm to_cols))
      in
      List.exists
        (fun fk ->
          norm fk.fk_ref_table = norm to_table
          && List.sort compare (pairs fk) = wanted
          && List.for_all
               (fun c ->
                 match find_column tbl c with
                 | Some col -> not col.nullable
                 | None -> false)
               fk.fk_cols
          && is_unique_key cat to_table to_cols)
        tbl.foreign_keys

let column_nullable cat tname cname =
  match find_table cat tname with
  | None -> true
  | Some tbl -> (
      match find_column tbl cname with
      | Some c -> c.nullable
      | None -> true)

let set_row_count cat name n = { cat with counts = Smap.add (norm name) n cat.counts }
let row_count cat name = Smap.find_opt (norm name) cat.counts

let ndv_key t c = norm t ^ "." ^ norm c

let set_col_ndv cat t c n = { cat with ndvs = Smap.add (ndv_key t c) n cat.ndvs }
let col_ndv cat t c = Smap.find_opt (ndv_key t c) cat.ndvs

let pp fmt cat =
  Smap.iter
    (fun _ tbl ->
      Format.fprintf fmt "TABLE %s (@[" tbl.tbl_name;
      List.iteri
        (fun i c ->
          if i > 0 then Format.fprintf fmt ",@ ";
          Format.fprintf fmt "%s %s%s" c.col_name
            (Data.Value.ty_to_string c.col_ty)
            (if c.nullable then "" else " NOT NULL"))
        tbl.tbl_cols;
      if tbl.primary_key <> [] then
        Format.fprintf fmt ",@ PRIMARY KEY (%s)"
          (String.concat ", " tbl.primary_key);
      List.iter
        (fun fk ->
          Format.fprintf fmt ",@ FOREIGN KEY (%s) REFERENCES %s (%s)"
            (String.concat ", " fk.fk_cols)
            fk.fk_ref_table
            (String.concat ", " fk.fk_ref_cols))
        tbl.foreign_keys;
      Format.fprintf fmt "@])@\n")
    cat.tabs
