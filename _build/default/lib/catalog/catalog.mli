(** Schema catalog: table definitions, integrity constraints, statistics.

    The matching algorithm consults the catalog for the semantic facts it
    needs: primary/unique keys (losslessness and 1:N joins), referential
    integrity constraints (extra-join elimination, paper §4.1.1 condition 1),
    and column nullability (aggregate derivation rules, §4.1.2). *)

type column = { col_name : string; col_ty : Data.Value.ty; nullable : bool }

type foreign_key = {
  fk_cols : string list;       (** referencing columns, in this table *)
  fk_ref_table : string;       (** referenced table *)
  fk_ref_cols : string list;   (** referenced columns (a key of that table) *)
}

type table = {
  tbl_name : string;
  tbl_cols : column list;
  primary_key : string list;          (** [[]] when none *)
  unique_keys : string list list;     (** additional unique constraints *)
  foreign_keys : foreign_key list;
}

type t

val empty : t

(** [add_table cat tbl] registers a table. Raises [Invalid_argument] when a
    table of that name exists, when key/FK columns are undeclared, or when an
    FK references an unknown table or a non-key column set. *)
val add_table : t -> table -> t

val find_table : t -> string -> table option

(** [remove_table cat name] drops a table's definition and statistics.
    Raises [Invalid_argument] when another table declares a foreign key
    referencing it. *)
val remove_table : t -> string -> t
val table_exn : t -> string -> table
val tables : t -> table list
val mem_table : t -> string -> bool

(** Case-insensitive column lookup within a table. *)
val find_column : table -> string -> column option

val column_names : table -> string list

(** [is_unique_key cat tname cols] — do [cols] contain the primary key or a
    unique key of [tname]? (A superset of a key is still a key.) *)
val is_unique_key : t -> string -> string list -> bool

(** [ri_holds cat ~from_table ~from_cols ~to_table ~to_cols] — is there a
    declared RI constraint from [from_table].[from_cols] to
    [to_table].[to_cols], with all referencing columns non-nullable, and
    [to_cols] a unique key of [to_table]? Column-list order is normalized. *)
val ri_holds :
  t ->
  from_table:string ->
  from_cols:string list ->
  to_table:string ->
  to_cols:string list ->
  bool

val column_nullable : t -> string -> string -> bool

(** {1 Statistics} — simple per-table cardinalities for the cost model. *)

val set_row_count : t -> string -> int -> t
val row_count : t -> string -> int option

(** Approximate number of distinct values of a column (for the cost
    model). *)
val set_col_ndv : t -> string -> string -> int -> t

val col_ndv : t -> string -> string -> int option

val pp : Format.formatter -> t -> unit
