exception Csv_error of string

let err fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* --------------- decoding --------------- *)

(* Split into records of raw fields, honoring quotes. Returns fields as
   (content, was_quoted). *)
let split_records s =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted = ref false in
  let in_quotes = ref false in
  let n = String.length s in
  let flush_field () =
    fields := (Buffer.contents buf, !quoted) :: !fields;
    Buffer.clear buf;
    quoted := false
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec go i =
    if i >= n then begin
      if Buffer.length buf > 0 || !fields <> [] || !quoted then flush_record ()
    end
    else
      let c = s.[i] in
      if !in_quotes then
        if c = '"' then
          if i + 1 < n && s.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2)
          end
          else begin
            in_quotes := false;
            go (i + 1)
          end
        else begin
          Buffer.add_char buf c;
          go (i + 1)
        end
      else
        match c with
        | '"' ->
            in_quotes := true;
            quoted := true;
            go (i + 1)
        | ',' ->
            flush_field ();
            go (i + 1)
        | '\r' when i + 1 < n && s.[i + 1] = '\n' ->
            flush_record ();
            go (i + 2)
        | '\n' ->
            flush_record ();
            go (i + 1)
        | c ->
            Buffer.add_char buf c;
            go (i + 1)
  in
  go 0;
  if !in_quotes then err "unterminated quoted field";
  List.rev !records

let parse_date s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some y, Some m, Some d -> Value.date y m d
      | _ -> err "bad date %S" s)
  | _ -> err "bad date %S" s

let convert ty (content, was_quoted) =
  if content = "" && not was_quoted then Value.Null
  else
    match ty with
    | Value.Tint -> (
        match int_of_string_opt content with
        | Some i -> Value.Int i
        | None -> err "bad integer %S" content)
    | Value.Tfloat -> (
        match float_of_string_opt content with
        | Some f -> Value.Float f
        | None -> err "bad float %S" content)
    | Value.Tstr -> Value.Str content
    | Value.Tbool -> (
        match String.lowercase_ascii content with
        | "true" | "t" | "1" -> Value.Bool true
        | "false" | "f" | "0" -> Value.Bool false
        | _ -> err "bad boolean %S" content)
    | Value.Tdate -> parse_date content

let parse_string ~types ~header s =
  let records = split_records s in
  let records = if header then match records with _ :: r -> r | [] -> [] else records in
  let width = List.length types in
  List.map
    (fun fields ->
      if List.length fields <> width then
        err "record has %d fields, expected %d" (List.length fields) width;
      Array.of_list (List.map2 convert types fields))
    records

(* --------------- encoding --------------- *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let encode_field v =
  match v with
  | Value.Null -> ""
  | v ->
      let s = Value.to_string v in
      if needs_quoting s || s = "" then begin
        let b = Buffer.create (String.length s + 2) in
        Buffer.add_char b '"';
        String.iter
          (fun c ->
            if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
          s;
        Buffer.add_char b '"';
        Buffer.contents b
      end
      else s

let to_string rel =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (String.concat "," (Array.to_list (Relation.columns rel)));
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b
        (String.concat "," (List.map encode_field (Array.to_list row)));
      Buffer.add_char b '\n')
    (Relation.rows rel);
  Buffer.contents b

let load_file ~types ~header path =
  let content = In_channel.with_open_text path In_channel.input_all in
  parse_string ~types ~header content

let save_file rel path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string rel))
