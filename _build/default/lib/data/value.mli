(** SQL values with three-valued-logic comparison semantics.

    All scalar data flowing through relations, expressions and the engine is
    represented by {!t}. [Null] is the SQL NULL: comparisons involving it
    yield [Null] (unknown), and only a definite [Bool true] satisfies a
    predicate. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** encoded [yyyymmdd]; build with {!date} *)

type ty = Tint | Tfloat | Tstr | Tbool | Tdate

val ty_to_string : ty -> string
val ty_of_string : string -> ty option

(** [date y m d] encodes a calendar date. Raises [Invalid_argument] when the
    month or day is out of range (no per-month day validation). *)
val date : int -> int -> int -> t

val year : t -> t
val month : t -> t
val day : t -> t

(** Total order used for sorting and grouping. [Null] sorts first; values of
    different runtime types are ordered by type tag. Numeric [Int]/[Float]
    compare numerically. *)
val compare : t -> t -> int

(** Structural (grouping) equality: [Null] equals [Null]. Numeric values of
    mixed [Int]/[Float] type are equal when numerically equal. *)
val equal : t -> t -> bool

val hash : t -> int
val is_null : t -> bool

(** {1 SQL operational semantics} *)

(** 3VL comparison: any [Null] operand yields [Null], otherwise a [Bool]. *)
val sql_eq : t -> t -> t

val sql_neq : t -> t -> t
val sql_lt : t -> t -> t
val sql_le : t -> t -> t
val sql_gt : t -> t -> t
val sql_ge : t -> t -> t

(** 3VL connectives (Kleene logic). *)
val sql_and : t -> t -> t

val sql_or : t -> t -> t
val sql_not : t -> t

(** Arithmetic with numeric promotion; [Null] propagates. Raises
    [Type_error] on non-numeric operands. Integer division by zero raises
    [Division_by_zero]. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

(** String concatenation ([||] in SQL); [Null] propagates. *)
val concat : t -> t -> t

exception Type_error of string

(** [is_true v] holds only for [Bool true] — the SQL predicate test. *)
val is_true : t -> bool

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit
