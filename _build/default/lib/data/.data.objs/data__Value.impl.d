lib/data/value.ml: Float Format Hashtbl Printf Stdlib String
