lib/data/relation.ml: Array Float Format Hashtbl List Option Printf Seq Stdlib String Value
