lib/data/relation.mli: Format Value
