lib/data/csv.mli: Relation Value
