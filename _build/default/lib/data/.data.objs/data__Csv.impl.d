lib/data/csv.ml: Array Buffer Format In_channel List Out_channel Relation String Value
