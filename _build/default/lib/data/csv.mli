(** Minimal RFC-4180-style CSV reading and writing for relations.

    Values are quoted when they contain commas, quotes or newlines; embedded
    quotes are doubled. An empty unquoted field reads as NULL; typed parsing
    is driven by the expected column types. *)

exception Csv_error of string

(** [parse_string ~types ~header s] decodes CSV text into rows. When
    [header] is true the first record is skipped. Each field is converted
    per the corresponding type; an empty field becomes NULL. Raises
    {!Csv_error} on arity or conversion errors. *)
val parse_string :
  types:Value.ty list -> header:bool -> string -> Value.t array list

(** Render a relation as CSV text with a header row. *)
val to_string : Relation.t -> string

val load_file :
  types:Value.ty list -> header:bool -> string -> Value.t array list

val save_file : Relation.t -> string -> unit
