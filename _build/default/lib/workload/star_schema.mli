(** The paper's sample database (Figure 1): a credit-card-transactions star
    schema with fact table Trans and dimensions PGroup (product), Loc
    (location: city/state/country levels, denormalized), and the account
    hierarchy Acct -> Cust. Time is encoded in Trans.date and extracted
    with year()/month()/day().

    All foreign keys carry declared RI constraints, which the matcher uses
    to prove extra joins lossless. *)

val catalog : unit -> Catalog.t

(** The same schema as executable DDL (for the CLI and examples). *)
val ddl : string

type params = {
  n_pgroups : int;
  n_locs : int;
  n_custs : int;
  accts_per_cust : int;
  years : int list;                  (** e.g. [[1994; 1995; 1996]] *)
  trans_per_acct_year : int;         (** mean; actual count varies +-50% *)
  home_city_bias : float;            (** fraction of purchases in home city *)
  seed : int;
}

(** Defaults matching the paper's narrative: a few hundred transactions per
    account-year, almost all in the account's home city, so that AST1 is
    roughly two orders of magnitude smaller than Trans. *)
val default_params : params

(** [scaled n] multiplies the number of customers by [n] (n >= 1). *)
val scaled : int -> params

(** Generate table contents; deterministic in [params.seed]. *)
val generate : params -> (string * Data.Relation.t) list
