(* The queries and summary-table definitions from the paper's figures,
   verbatim modulo concrete syntax, against the Figure-1 star schema.

   Naming: [qN] / [astN] follow the paper's numbering; [fig] records which
   figure each pair illustrates; [expect] says whether a rewrite must be
   found. Tests assert both the match outcome and result equivalence;
   benches time original vs. rewritten. *)

type case = {
  name : string;
  fig : string;
  query : string;
  ast : string;          (* summary-table defining query *)
  ast_name : string;
  expect_rewrite : bool;
  note : string;
}

(* Figure 2 — regroup from (faid, flid, year) to (faid, state, year) with a
   Loc rejoin and HAVING re-derivation. *)
let q1 =
  "SELECT faid, state, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans, Loc WHERE flid = lid AND country = 'USA' \
   GROUP BY faid, state, year(date) HAVING COUNT(*) > 100"

let ast1 =
  "SELECT faid, flid, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans GROUP BY faid, flid, year(date)"

(* Figure 5 — single SELECT blocks: rejoin PGroup, extra (lossless) child
   Loc, derivation of qty*price*(1-disc) from value and disc. *)
let q2 =
  "SELECT aid, status, qty * price * (1 - disc) AS amt \
   FROM Trans, PGroup, Acct \
   WHERE pgid = fpgid AND faid = aid AND price > 100 AND disc > 0.1 \
   AND pgname = 'TV'"

let ast2 =
  "SELECT tid, faid, fpgid, status, country, price, qty, disc, \
   qty * price AS value \
   FROM Trans, Loc, Acct WHERE lid = flid AND faid = aid AND disc > 0.1"

(* Figure 6 — GROUP BY boxes with exact child matches: re-sum the AST's
   monthly sums into yearly sums. *)
let q4 =
  "SELECT year(date) AS year, SUM(qty * price) AS value \
   FROM Trans GROUP BY year(date)"

let ast4 =
  "SELECT year(date) AS year, month(date) AS month, SUM(qty * price) AS value \
   FROM Trans GROUP BY year(date), month(date)"

(* Figure 7 — GROUP BY boxes with SELECT-only child compensation: the
   month(date) >= 6 predicate is pulled up, then regroup by year % 100. *)
let q6 =
  "SELECT year(date) % 100 AS year2, SUM(qty * price) AS value \
   FROM Trans WHERE month(date) >= 6 GROUP BY year(date) % 100"

let ast6 =
  "SELECT year(date) AS year, month(date) AS month, SUM(qty * price) AS value \
   FROM Trans GROUP BY year(date), month(date)"

(* Figure 8 — rejoin child compensation; the 1:N rule makes regrouping
   unnecessary, but a regroup is still correct. *)
let q7 =
  "SELECT lid, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans, Loc WHERE flid = lid AND country = 'USA' \
   GROUP BY lid, year(date)"

let ast7 =
  "SELECT flid, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans GROUP BY flid, year(date)"

(* Figure 10 — nested aggregation (histogram queries), GROUP-BY child
   compensation handled by the recursive match. Note AST8's outer block
   keeps [year] as a grouping column: that is what lets the recursive
   sub-match derive the yearly transaction counts as SUM(tcnt * mcnt)
   (section 4.1.2 rule (c), second form — tcnt is a grouping column). *)
let q8 =
  "SELECT tcnt, COUNT(*) AS ycnt \
   FROM (SELECT year(date) AS year, COUNT(*) AS tcnt \
         FROM Trans GROUP BY year(date)) AS t \
   GROUP BY tcnt"

let ast8 =
  "SELECT year, tcnt, COUNT(*) AS mcnt \
   FROM (SELECT year(date) AS year, month(date) AS month, COUNT(*) AS tcnt \
         FROM Trans GROUP BY year(date), month(date)) AS t \
   GROUP BY year, tcnt"

(* Figure 11 — SELECT boxes with GROUP BY child compensation and a scalar
   subquery; the cnt/totcnt expression computing cntpct is section 6's
   running derivation example. *)
let q10 =
  "SELECT flid, COUNT(*) / (SELECT COUNT(*) FROM Trans) AS cntpct \
   FROM Trans, Loc WHERE flid = lid AND country = 'USA' \
   GROUP BY flid HAVING COUNT(*) > 2"

let ast10 =
  "SELECT flid, year(date) AS year, COUNT(*) AS cnt, \
   (SELECT COUNT(*) FROM Trans) AS totcnt \
   FROM Trans GROUP BY flid, year(date)"

(* Table 1 — same as AST10 but with a HAVING clause: translation must
   expose that the two count predicates differ semantically, so NO match. *)
let ast10_having =
  "SELECT flid, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans GROUP BY flid, year(date) HAVING COUNT(*) > 2"

let q10_simple =
  "SELECT flid, COUNT(*) AS cnt FROM Trans GROUP BY flid HAVING COUNT(*) > 2"

(* Figure 13 — simple GROUP BY queries against a cube AST. *)
let ast11 =
  "SELECT flid, faid, year(date) AS year, month(date) AS month, COUNT(*) AS cnt \
   FROM Trans \
   GROUP BY GROUPING SETS((flid, faid, year(date)), (flid, year(date)), \
   (flid, year(date), month(date)), (year(date), month(date)))"

let q11_1 =
  "SELECT flid, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans WHERE year(date) > 1990 GROUP BY flid, year(date)"

let q11_2 =
  "SELECT flid, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans WHERE month(date) >= 6 GROUP BY flid, year(date)"

let q11_3 =
  "SELECT flid, year(date) AS year, month(date) AS month, \
   COUNT(DISTINCT faid) AS custcnt \
   FROM Trans GROUP BY flid, year(date), month(date)"

(* Figure 14 — cube queries against a grouping-sets AST. *)
let ast12 =
  "SELECT flid, faid, year(date) AS year, month(date) AS month, COUNT(*) AS cnt \
   FROM Trans \
   GROUP BY GROUPING SETS((flid, faid, year(date)), (flid, year(date)), \
   (flid, year(date), month(date)), (year(date)))"

let q12_1 =
  "SELECT flid, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans WHERE year(date) > 1990 \
   GROUP BY GROUPING SETS((flid, year(date)), (year(date)))"

let q12_2 =
  "SELECT flid, year(date) AS year, COUNT(*) AS cnt \
   FROM Trans WHERE year(date) > 1990 \
   GROUP BY GROUPING SETS((flid), (year(date)))"

let cases =
  [
    {
      name = "fig2_q1";
      fig = "Figure 2";
      query = q1;
      ast = ast1;
      ast_name = "AST1";
      expect_rewrite = true;
      note = "regroup + Loc rejoin + HAVING over derived sum(cnt)";
    };
    {
      name = "fig5_q2";
      fig = "Figure 5";
      query = q2;
      ast = ast2;
      ast_name = "AST2";
      expect_rewrite = true;
      note = "SELECT/SELECT: rejoin PGroup, lossless extra child Loc";
    };
    {
      name = "fig6_q4";
      fig = "Figure 6";
      query = q4;
      ast = ast4;
      ast_name = "AST4";
      expect_rewrite = true;
      note = "re-sum monthly sums to yearly sums (rule c)";
    };
    {
      name = "fig7_q6";
      fig = "Figure 7";
      query = q6;
      ast = ast6;
      ast_name = "AST6";
      expect_rewrite = true;
      note = "predicate pull-up month >= 6, regroup by year % 100";
    };
    {
      name = "fig8_q7";
      fig = "Figure 8";
      query = q7;
      ast = ast7;
      ast_name = "AST7";
      expect_rewrite = true;
      note = "rejoin child compensation (1:N Loc join)";
    };
    {
      name = "fig10_q8";
      fig = "Figure 10";
      query = q8;
      ast = ast8;
      ast_name = "AST8";
      expect_rewrite = true;
      note = "nested aggregation: GROUP BY child compensation";
    };
    {
      name = "fig11_q10";
      fig = "Figure 11";
      query = q10;
      ast = ast10;
      ast_name = "AST10";
      expect_rewrite = true;
      note = "scalar subquery + cnt/totcnt derivation";
    };
    {
      name = "tab1_having";
      fig = "Table 1";
      query = q10_simple;
      ast = ast10_having;
      ast_name = "AST10H";
      expect_rewrite = false;
      note = "HAVING in the AST: syntactically equal, semantically different";
    };
    {
      name = "fig13_q11_1";
      fig = "Figure 13";
      query = q11_1;
      ast = ast11;
      ast_name = "AST11";
      expect_rewrite = true;
      note = "cuboid slice, no regroup";
    };
    {
      name = "fig13_q11_2";
      fig = "Figure 13";
      query = q11_2;
      ast = ast11;
      ast_name = "AST11";
      expect_rewrite = true;
      note = "cuboid slice + regroup over pulled-up month >= 6";
    };
    {
      name = "fig13_q11_3";
      fig = "Figure 13";
      query = q11_3;
      ast = ast11;
      ast_name = "AST11";
      expect_rewrite = false;
      note = "COUNT(DISTINCT faid) not derivable from any cuboid";
    };
    {
      name = "fig14_q12_1";
      fig = "Figure 14";
      query = q12_1;
      ast = ast12;
      ast_name = "AST12";
      expect_rewrite = true;
      note = "cube query: per-cuboid exact matches, disjunctive slice";
    };
    {
      name = "fig14_q12_2";
      fig = "Figure 14";
      query = q12_2;
      ast = ast12;
      ast_name = "AST12";
      expect_rewrite = true;
      note = "cube query fallback: slice smallest covering cuboid, regroup by gs";
    };
  ]
