module V = Data.Value
module R = Data.Relation

let col name ty nullable = { Catalog.col_name = name; col_ty = ty; nullable }

let catalog () =
  let open Catalog in
  empty
  |> fun cat ->
  add_table cat
    {
      tbl_name = "PGroup";
      tbl_cols = [ col "pgid" V.Tint false; col "pgname" V.Tstr false ];
      primary_key = [ "pgid" ];
      unique_keys = [];
      foreign_keys = [];
    }
  |> fun cat ->
  add_table cat
    {
      tbl_name = "Loc";
      tbl_cols =
        [
          col "lid" V.Tint false;
          col "city" V.Tstr false;
          col "state" V.Tstr true;
          col "country" V.Tstr false;
        ];
      primary_key = [ "lid" ];
      unique_keys = [];
      foreign_keys = [];
    }
  |> fun cat ->
  add_table cat
    {
      tbl_name = "Cust";
      tbl_cols =
        [
          col "cid" V.Tint false;
          col "cname" V.Tstr false;
          col "segment" V.Tstr false;
        ];
      primary_key = [ "cid" ];
      unique_keys = [];
      foreign_keys = [];
    }
  |> fun cat ->
  add_table cat
    {
      tbl_name = "Acct";
      tbl_cols =
        [
          col "aid" V.Tint false;
          col "cid" V.Tint false;
          col "status" V.Tstr false;
        ];
      primary_key = [ "aid" ];
      unique_keys = [];
      foreign_keys =
        [ { fk_cols = [ "cid" ]; fk_ref_table = "Cust"; fk_ref_cols = [ "cid" ] } ];
    }
  |> fun cat ->
  add_table cat
    {
      tbl_name = "Trans";
      tbl_cols =
        [
          col "tid" V.Tint false;
          col "faid" V.Tint false;
          col "flid" V.Tint false;
          col "fpgid" V.Tint false;
          col "date" V.Tdate false;
          col "qty" V.Tint false;
          col "price" V.Tfloat false;
          col "disc" V.Tfloat false;
        ];
      primary_key = [ "tid" ];
      unique_keys = [];
      foreign_keys =
        [
          { fk_cols = [ "faid" ]; fk_ref_table = "Acct"; fk_ref_cols = [ "aid" ] };
          { fk_cols = [ "flid" ]; fk_ref_table = "Loc"; fk_ref_cols = [ "lid" ] };
          {
            fk_cols = [ "fpgid" ];
            fk_ref_table = "PGroup";
            fk_ref_cols = [ "pgid" ];
          };
        ];
    }

let ddl =
  "CREATE TABLE PGroup (pgid INT NOT NULL PRIMARY KEY, pgname VARCHAR NOT NULL);\n\
   CREATE TABLE Loc (lid INT NOT NULL PRIMARY KEY, city VARCHAR NOT NULL, \
   state VARCHAR, country VARCHAR NOT NULL);\n\
   CREATE TABLE Cust (cid INT NOT NULL PRIMARY KEY, cname VARCHAR NOT NULL, \
   segment VARCHAR NOT NULL);\n\
   CREATE TABLE Acct (aid INT NOT NULL PRIMARY KEY, cid INT NOT NULL, status \
   VARCHAR NOT NULL, FOREIGN KEY (cid) REFERENCES Cust (cid));\n\
   CREATE TABLE Trans (tid INT NOT NULL PRIMARY KEY, faid INT NOT NULL, flid \
   INT NOT NULL, fpgid INT NOT NULL, date DATE NOT NULL, qty INT NOT NULL, \
   price FLOAT NOT NULL, disc FLOAT NOT NULL, FOREIGN KEY (faid) REFERENCES \
   Acct (aid), FOREIGN KEY (flid) REFERENCES Loc (lid), FOREIGN KEY (fpgid) \
   REFERENCES PGroup (pgid));\n"

type params = {
  n_pgroups : int;
  n_locs : int;
  n_custs : int;
  accts_per_cust : int;
  years : int list;
  trans_per_acct_year : int;
  home_city_bias : float;
  seed : int;
}

let default_params =
  {
    n_pgroups = 20;
    n_locs = 100;
    n_custs = 40;
    accts_per_cust = 2;
    years = [ 1994; 1995; 1996 ];
    trans_per_acct_year = 300;
    home_city_bias = 0.98;
    seed = 42;
  }

let scaled n = { default_params with n_custs = default_params.n_custs * max 1 n }

let product_names =
  [|
    "TV"; "Audio"; "Laptop"; "Phone"; "Camera"; "Tablet"; "Printer"; "Monitor";
    "Router"; "Console"; "Fridge"; "Oven"; "Washer"; "Dryer"; "Vacuum";
    "Toaster"; "Blender"; "Mixer"; "Kettle"; "Fan";
  |]

let countries = [| "USA"; "USA"; "USA"; "Canada"; "France"; "Germany"; "Japan" |]

let us_states =
  [| "CA"; "NY"; "TX"; "WA"; "IL"; "FL"; "MA"; "OR"; "CO"; "GA" |]

let generate p =
  let rng = Random.State.make [| p.seed |] in
  let rint n = Random.State.int rng n in
  let rfloat x = Random.State.float rng x in
  let pgroup_rows =
    List.init p.n_pgroups (fun i ->
        let base = product_names.(i mod Array.length product_names) in
        let name =
          if i < Array.length product_names then base
          else Printf.sprintf "%s-%d" base (i / Array.length product_names)
        in
        [| V.Int (i + 1); V.Str name |])
  in
  let loc_rows =
    List.init p.n_locs (fun i ->
        let country = countries.(rint (Array.length countries)) in
        let state =
          if country = "USA" then V.Str us_states.(rint (Array.length us_states))
          else V.Null
        in
        [| V.Int (i + 1); V.Str (Printf.sprintf "City%03d" (i + 1)); state;
           V.Str country |])
  in
  let cust_rows =
    List.init p.n_custs (fun i ->
        [| V.Int (i + 1); V.Str (Printf.sprintf "Cust%04d" (i + 1));
           V.Str (if rint 10 < 7 then "consumer" else "corporate") |])
  in
  let statuses = [| "gold"; "silver"; "basic" |] in
  let n_accts = p.n_custs * p.accts_per_cust in
  let acct_rows =
    List.init n_accts (fun i ->
        [| V.Int (i + 1); V.Int ((i mod p.n_custs) + 1);
           V.Str statuses.(rint 3) |])
  in
  let trans = ref [] in
  let tid = ref 0 in
  let month_days = [| 31; 28; 31; 30; 31; 30; 31; 31; 30; 31; 30; 31 |] in
  for aid = 1 to n_accts do
    let home = 1 + rint p.n_locs in
    let alt = 1 + rint p.n_locs in
    List.iter
      (fun year ->
        let mean = p.trans_per_acct_year in
        let n = max 1 (mean / 2 + rint (max 1 mean)) in
        for _ = 1 to n do
          incr tid;
          let m = 1 + rint 12 in
          let d = 1 + rint month_days.(m - 1) in
          let r = rfloat 1.0 in
          let flid =
            if r < p.home_city_bias then home
            else if r < p.home_city_bias +. ((1.0 -. p.home_city_bias) /. 2.) then
              alt
            else 1 + rint p.n_locs
          in
          let fpgid =
            (* 80/20 skew towards the first fifth of product groups *)
            if rint 10 < 8 then 1 + rint (max 1 (p.n_pgroups / 5))
            else 1 + rint p.n_pgroups
          in
          let qty = 1 + rint 5 in
          let price = Float.round ((5.0 +. rfloat 495.0) *. 100.) /. 100. in
          let disc =
            match rint 4 with
            | 0 -> 0.0
            | 1 -> 0.05
            | 2 -> 0.15
            | _ -> 0.25
          in
          trans :=
            [| V.Int !tid; V.Int aid; V.Int flid; V.Int fpgid;
               V.date year m d; V.Int qty; V.Float price; V.Float disc |]
            :: !trans
        done)
      p.years
  done;
  [
    ("PGroup", R.create [ "pgid"; "pgname" ] pgroup_rows);
    ("Loc", R.create [ "lid"; "city"; "state"; "country" ] loc_rows);
    ("Cust", R.create [ "cid"; "cname"; "segment" ] cust_rows);
    ("Acct", R.create [ "aid"; "cid"; "status" ] acct_rows);
    ( "Trans",
      R.create
        [ "tid"; "faid"; "flid"; "fpgid"; "date"; "qty"; "price"; "disc" ]
        (List.rev !trans) );
  ]
