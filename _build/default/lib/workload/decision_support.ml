(* A TPC-D-flavoured decision-support workload over the Figure-1 star
   schema, standing in for the paper's section-8 experience report
   ("dramatic improvements in query response times both with TPC-D queries
   and with a number of customer applications", answered by "a small number
   of ASTs").

   Ten analyst queries of the classic shapes — pricing summaries, period
   revenue, local-supplier-style dimension joins, top-N reports — plus the
   three summary tables a DBA would plausibly create. The bench measures
   total workload time with rewriting off vs. on. *)

type query = { dq_name : string; dq_sql : string; dq_expect_rewrite : bool }

let summary_tables =
  [
    ( "st_sales_cube",
      (* revenue/quantity at several granularities in one summary *)
      "SELECT flid, fpgid, year(date) AS year, month(date) AS month, \
       COUNT(*) AS cnt, SUM(qty) AS sum_qty, \
       SUM(qty * price * (1 - disc)) AS revenue \
       FROM Trans \
       GROUP BY GROUPING SETS((flid, year(date), month(date)), \
       (fpgid, year(date)), (flid, fpgid, year(date)), (year(date), \
       month(date)), (year(date)))" );
    ( "st_account_year",
      "SELECT faid, year(date) AS year, COUNT(*) AS cnt, \
       SUM(qty * price * (1 - disc)) AS revenue \
       FROM Trans GROUP BY faid, year(date)" );
    ( "st_loc_product",
      "SELECT flid, fpgid, COUNT(*) AS cnt, SUM(qty) AS sum_qty, \
       MIN(price) AS min_price, MAX(price) AS max_price \
       FROM Trans GROUP BY flid, fpgid" );
  ]

let queries =
  [
    {
      dq_name = "pricing_summary";
      dq_sql =
        "SELECT year(date) AS year, COUNT(*) AS order_count, SUM(qty) AS \
         sum_qty, SUM(qty * price * (1 - disc)) AS revenue FROM Trans GROUP \
         BY year(date) ORDER BY year";
      dq_expect_rewrite = true;
    };
    {
      dq_name = "monthly_trend";
      dq_sql =
        "SELECT year(date) AS year, month(date) AS month, SUM(qty * price * \
         (1 - disc)) AS revenue FROM Trans GROUP BY year(date), month(date) \
         ORDER BY year, month";
      dq_expect_rewrite = true;
    };
    {
      dq_name = "product_mix";
      dq_sql =
        "SELECT pgname, SUM(qty) AS units FROM Trans, PGroup WHERE fpgid = \
         pgid GROUP BY pgname ORDER BY units DESC LIMIT 10";
      dq_expect_rewrite = true;
    };
    {
      dq_name = "top_accounts";
      dq_sql =
        "SELECT faid, SUM(qty * price * (1 - disc)) AS revenue FROM Trans \
         WHERE year(date) >= 1995 GROUP BY faid ORDER BY revenue DESC LIMIT 10";
      dq_expect_rewrite = true;
    };
    {
      dq_name = "regional_activity";
      dq_sql =
        "SELECT country, state, COUNT(*) AS cnt FROM Trans, Loc WHERE flid \
         = lid GROUP BY country, state ORDER BY cnt DESC LIMIT 10";
      dq_expect_rewrite = true;
    };
    {
      dq_name = "store_product_extremes";
      dq_sql =
        "SELECT flid, fpgid, MIN(price) AS cheapest, MAX(price) AS priciest \
         FROM Trans GROUP BY flid, fpgid ORDER BY flid, fpgid LIMIT 20";
      dq_expect_rewrite = true;
    };
    {
      dq_name = "busy_periods";
      dq_sql =
        "SELECT year(date) AS year, month(date) AS month, COUNT(*) AS cnt \
         FROM Trans GROUP BY year(date), month(date) HAVING COUNT(*) > 1000 \
         ORDER BY cnt DESC";
      dq_expect_rewrite = true;
    };
    {
      dq_name = "yearly_product_share";
      dq_sql =
        "SELECT fpgid, year(date) AS year, SUM(qty * price * (1 - disc)) / \
         (SELECT SUM(qty * price * (1 - disc)) FROM Trans) AS share FROM \
         Trans GROUP BY fpgid, year(date) ORDER BY share DESC LIMIT 10";
      dq_expect_rewrite = true;
      (* even the scalar-subquery denominator routes to the cube: the grand
         total is re-derived by summing the (year) cuboid *)
    };
    {
      dq_name = "discount_impact";
      dq_sql =
        "SELECT year(date) AS year, SUM(qty * price * disc) AS given_away \
         FROM Trans WHERE disc > 0.1 GROUP BY year(date) ORDER BY year";
      dq_expect_rewrite = false;
      (* disc is aggregated away by every summary: must hit base tables *)
    };
    {
      dq_name = "account_growth";
      dq_sql =
        "SELECT t1.faid AS faid, t1.revenue AS rev_1995, t2.revenue AS \
         rev_1996 FROM (SELECT faid, SUM(qty * price * (1 - disc)) AS \
         revenue FROM Trans WHERE year(date) = 1995 GROUP BY faid) AS t1, \
         (SELECT faid, SUM(qty * price * (1 - disc)) AS revenue FROM Trans \
         WHERE year(date) = 1996 GROUP BY faid) AS t2 WHERE t1.faid = \
         t2.faid ORDER BY rev_1996 DESC LIMIT 10";
      dq_expect_rewrite = true;
      (* both inner blocks route to st_account_year *)
    };
  ]
