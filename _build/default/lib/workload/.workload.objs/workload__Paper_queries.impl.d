lib/workload/paper_queries.ml:
