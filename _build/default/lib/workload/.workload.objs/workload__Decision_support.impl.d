lib/workload/decision_support.ml:
