lib/workload/star_schema.ml: Array Catalog Data Float List Printf Random
