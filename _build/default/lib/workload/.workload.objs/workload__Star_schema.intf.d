lib/workload/star_schema.mli: Catalog Data
