lib/mvstore/session.mli: Astmatch Catalog Data Engine Sqlsyn Store
