lib/mvstore/store.mli: Astmatch Data Engine Qgm
