lib/mvstore/advisor.mli: Catalog
