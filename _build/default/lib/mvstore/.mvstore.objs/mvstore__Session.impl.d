lib/mvstore/session.ml: Array Astmatch Buffer Catalog Data Engine Format List Option Printf Qgm Sqlsyn Store String
