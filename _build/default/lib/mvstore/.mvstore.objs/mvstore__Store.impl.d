lib/mvstore/store.ml: Array Astmatch Catalog Data Engine Format Hashtbl List Map Qgm Sqlsyn String
