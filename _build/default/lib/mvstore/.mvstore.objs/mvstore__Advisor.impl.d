lib/mvstore/advisor.ml: Hashtbl List Option Printf Sqlsyn String
