module A = Sqlsyn.Ast
module P = Sqlsyn.Pretty

type recommendation = {
  rec_name : string;
  rec_sql : string;
  rec_serves : string list;
}

let norm = String.lowercase_ascii

(* Canonical text of an expression, for dedup and signatures. *)
let key e = norm (P.expr_to_string e)

type shape = {
  sh_tables : (string * string option) list;  (* table, alias *)
  sh_joins : string list;                     (* canonical join pred texts *)
  sh_filters : A.expr list;                   (* non-join conjuncts *)
  sh_groups : A.expr list;
  sh_aggs : A.expr list;                      (* Agg nodes *)
}

let rec conjuncts = function
  | A.Binop ("AND", a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let is_join_pred = function
  | A.Binop ("=", A.Ref _, A.Ref _) -> true
  | _ -> false

let rec collect_aggs acc e =
  match e with
  | A.Agg _ -> if List.exists (fun a -> key a = key e) acc then acc else acc @ [ e ]
  | e -> List.fold_left collect_aggs acc (A.sub_exprs e)

(* Single-block aggregate over base tables only. *)
let shape_of (q : A.query) : shape option =
  let tables =
    List.map
      (function
        | A.From_table (t, a) -> Some (t, a)
        | A.From_sub _ -> None)
      q.A.from
  in
  if List.exists (fun t -> t = None) tables then None
  else if q.A.distinct || q.A.select_star then None
  else if
    not (List.for_all (function A.G_expr _ -> true | _ -> false) q.A.group_by)
  then None
  else
    let groups =
      List.map (function A.G_expr e -> e | _ -> assert false) q.A.group_by
    in
    let aggs =
      List.fold_left
        (fun acc it -> collect_aggs acc it.A.item_expr)
        [] q.A.select
    in
    let aggs =
      match q.A.having with
      | Some h -> collect_aggs aggs h
      | None -> aggs
    in
    if groups = [] && aggs = [] then None
    else
      let conj = match q.A.where with None -> [] | Some w -> conjuncts w in
      let joins, filters = List.partition is_join_pred conj in
      Some
        {
          sh_tables = List.filter_map (fun t -> t) tables;
          sh_joins = List.sort compare (List.map key joins);
          sh_filters = filters;
          sh_groups = groups;
          sh_aggs = aggs;
        }

let signature sh =
  ( List.sort compare
      (List.map (fun (t, a) -> norm (Option.value ~default:t a)) sh.sh_tables),
    sh.sh_joins )

(* Grouping expressions a filter implies: for comparisons against constants
   keep the column side, so the filter can be applied on top of the AST. *)
let filter_group_exprs filters =
  List.filter_map
    (fun p ->
      match p with
      | A.Binop (("<" | "<=" | ">" | ">=" | "=" | "<>"), e, A.Lit _) -> Some e
      | A.Binop (("<" | "<=" | ">" | ">=" | "=" | "<>"), A.Lit _, e) -> Some e
      | A.Is_null (e, _) -> Some e
      | _ -> None)
    filters

let recommend cat queries =
  ignore cat;
  let parsed =
    List.filter_map
      (fun sql ->
        match Sqlsyn.Parser.parse_query sql with
        | q -> Option.map (fun sh -> (sql, sh)) (shape_of q)
        | exception _ -> None)
      queries
  in
  (* cluster by signature *)
  let clusters = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (sql, sh) ->
      let sg = signature sh in
      match Hashtbl.find_opt clusters sg with
      | None ->
          Hashtbl.replace clusters sg (ref [ (sql, sh) ]);
          order := sg :: !order
      | Some l -> l := !l @ [ (sql, sh) ])
    parsed;
  let mk_rec i sg =
    let members = !(Hashtbl.find clusters sg) in
    let add_uniq acc e =
      if List.exists (fun x -> key x = key e) acc then acc else acc @ [ e ]
    in
    let groups =
      List.fold_left
        (fun acc (_, sh) ->
          let filter_gs = filter_group_exprs sh.sh_filters in
          List.fold_left add_uniq acc (sh.sh_groups @ filter_gs))
        [] members
    in
    let aggs =
      List.fold_left
        (fun acc (_, sh) -> List.fold_left add_uniq acc sh.sh_aggs)
        [ A.Agg (A.Count, false, None) ]
        members
    in
    let _, sh0 = List.hd members in
    let from_txt =
      String.concat ", "
        (List.map
           (fun (t, a) ->
             match a with
             | Some a when norm a <> norm t -> t ^ " AS " ^ a
             | _ -> t)
           sh0.sh_tables)
    in
    let joins = sh0.sh_joins in
    let select_items =
      List.mapi
        (fun j e -> Printf.sprintf "%s AS g%d" (P.expr_to_string e) (j + 1))
        groups
      @ List.mapi
          (fun j e -> Printf.sprintf "%s AS a%d" (P.expr_to_string e) (j + 1))
          aggs
    in
    let sql =
      Printf.sprintf "SELECT %s FROM %s%s GROUP BY %s"
        (String.concat ", " select_items)
        from_txt
        (if joins = [] then ""
         else " WHERE " ^ String.concat " AND " joins)
        (String.concat ", " (List.map P.expr_to_string groups))
    in
    {
      rec_name = Printf.sprintf "ast_adv%d" (i + 1);
      rec_sql = sql;
      rec_serves = List.map fst members;
    }
  in
  List.mapi mk_rec (List.rev !order)
