(** Workload-driven summary-table recommendation.

    The paper defers AST selection to prior work ([7]); this module provides
    the practical heuristic a deployment needs: cluster the workload's
    aggregate queries by their join core (the set of base tables joined with
    identical join predicates), union each cluster's grouping expressions
    and re-derivable aggregates, always include COUNT-star (it unlocks the
    re-aggregation rules of section 4.1.2), and emit one CREATE SUMMARY
    TABLE per cluster. Queries answered by a recommended AST include every
    query whose grouping set is a subset of the union. *)

type recommendation = {
  rec_name : string;
  rec_sql : string;           (** CREATE SUMMARY TABLE ... AS ... body *)
  rec_serves : string list;   (** workload queries (by input text) covered *)
}

(** [recommend cat queries] — [queries] are SQL texts. Queries that are not
    single-block aggregates are skipped. *)
val recommend : Catalog.t -> string list -> recommendation list
