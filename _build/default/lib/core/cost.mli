(** Cardinality and cost estimation over QGM graphs.

    A textbook System-R-style mini model: base cardinalities and per-column
    distinct counts come from catalog statistics; equality predicates
    contribute [1/ndv] selectivities, ranges a fixed fraction; GROUP BY
    output is bounded by the product of key distinct counts. The paper's
    "whether an AST should actually be used" decision (its problem (b),
    deferred to [2]) is taken by comparing {!graph_cost} of the original and
    rewritten graphs. *)

(** Estimated output rows of a box. *)
val box_rows : Catalog.t -> Qgm.Graph.t -> Qgm.Box.box_id -> float

(** Estimated total work of the graph: the sum over all reachable boxes of
    the rows they consume. For plain scans this degenerates to rows-scanned,
    which keeps the number comparable with intuition. *)
val graph_cost : Catalog.t -> Qgm.Graph.t -> float

(** Render the graph as an indented operator tree annotated with estimated
    cardinalities (the EXPLAIN output). *)
val explain : Catalog.t -> Qgm.Graph.t -> string
