module E = Qgm.Expr
module B = Qgm.Box
module G = Qgm.Graph
module V = Data.Value

let norm = String.lowercase_ascii
let default_rows = 1000.
let range_selectivity = 0.33
let misc_selectivity = 0.5

(* ------------------------------------------------------------------ *)
(* Distinct-count estimation per (box, output column)                  *)
(* ------------------------------------------------------------------ *)

let rec box_rows_memo cat g memo id =
  match Hashtbl.find_opt memo id with
  | Some r -> r
  | None ->
      Hashtbl.replace memo id default_rows (* cycle guard; graphs are DAGs *);
      let r = compute_rows cat g memo id in
      Hashtbl.replace memo id r;
      r

and col_ndv cat g memo box_id col =
  let box = G.box g box_id in
  let rows = box_rows_memo cat g memo box_id in
  let capped x = Float.max 1. (Float.min x rows) in
  match box.B.body with
  | B.Base { bt_table; _ } ->
      capped
        (match Catalog.col_ndv cat bt_table col with
        | Some n -> float_of_int n
        | None -> Float.min rows 100.)
  | B.Select sel -> (
      match
        List.find_opt (fun (n, _) -> norm n = norm col) sel.B.sel_outs
      with
      | Some (_, E.Col { B.quant; col = c }) -> (
          match
            List.find_opt (fun q -> q.B.q_id = quant) sel.B.sel_quants
          with
          | Some q -> capped (col_ndv cat g memo q.B.q_box c)
          | None -> capped rows)
      | Some _ -> capped rows (* computed column: no better information *)
      | None -> capped rows)
  | B.Group grp ->
      let child = grp.B.grp_quant.B.q_box in
      if List.exists (fun c -> norm c = norm col) (B.grouping_union grp.B.grp_grouping)
      then capped (col_ndv cat g memo child col)
      else capped rows (* aggregate output *)
  | B.Union _ -> capped rows

and selectivity cat g memo (quants : B.quant list) p =
  let ndv_of { B.quant; col } =
    match List.find_opt (fun q -> q.B.q_id = quant) quants with
    | Some q -> col_ndv cat g memo q.B.q_box col
    | None -> default_rows
  in
  match p with
  | E.Binop ("=", E.Col a, E.Col b) ->
      1. /. Float.max 1. (Float.max (ndv_of a) (ndv_of b))
  | E.Binop ("=", E.Col a, E.Const _) | E.Binop ("=", E.Const _, E.Col a) ->
      1. /. Float.max 1. (ndv_of a)
  | E.Binop (("<" | "<=" | ">" | ">="), _, _) -> range_selectivity
  | E.Is_null (_, true) -> 0.1
  | E.Is_null (_, false) -> 0.9
  | E.Binop ("AND", _, _) | E.Binop ("OR", _, _) | _ -> misc_selectivity

and compute_rows cat g memo id =
  let box = G.box g id in
  match box.B.body with
  | B.Base { bt_table; _ } -> (
      match Catalog.row_count cat bt_table with
      | Some n -> float_of_int n
      | None -> default_rows)
  | B.Select sel ->
      let inputs =
        List.filter (fun q -> q.B.q_kind = B.Foreach) sel.B.sel_quants
      in
      let cross =
        List.fold_left
          (fun acc q -> acc *. box_rows_memo cat g memo q.B.q_box)
          1. inputs
      in
      let filtered =
        List.fold_left
          (fun acc p -> acc *. selectivity cat g memo sel.B.sel_quants p)
          cross sel.B.sel_preds
      in
      let filtered = Float.max 1. filtered in
      if sel.B.sel_distinct then Float.min filtered (Float.max 1. (filtered /. 2.))
      else filtered
  | B.Union u ->
      let total =
        List.fold_left
          (fun acc q -> acc +. box_rows_memo cat g memo q.B.q_box)
          0. u.B.un_quants
      in
      if u.B.un_all then Float.max 1. total
      else Float.max 1. (total /. 2.)
  | B.Group grp ->
      let child = grp.B.grp_quant.B.q_box in
      let child_rows = box_rows_memo cat g memo child in
      let groups_of set =
        let key_card =
          List.fold_left
            (fun acc k -> acc *. col_ndv cat g memo child k)
            1. set
        in
        Float.max 1. (Float.min child_rows key_card)
      in
      List.fold_left
        (fun acc set -> acc +. groups_of set)
        0.
        (B.grouping_sets grp.B.grp_grouping)

(* ------------------------------------------------------------------ *)

let box_rows cat g id = box_rows_memo cat g (Hashtbl.create 16) id

let graph_cost cat g =
  let memo = Hashtbl.create 16 in
  let reach = G.reachable g (G.root g) in
  List.fold_left
    (fun acc id ->
      let box = G.box g id in
      let consumed =
        List.fold_left
          (fun acc q ->
            match q.B.q_kind with
            | B.Foreach -> acc +. box_rows_memo cat g memo q.B.q_box
            | B.Scalar -> acc +. 1.)
          0. (B.quants_of box)
      in
      acc +. consumed)
    0. reach

let explain cat g =
  let memo = Hashtbl.create 16 in
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let pp_qref fmt { B.quant; col } = Format.fprintf fmt "q%d.%s" quant col in
  let expr_str e = Format.asprintf "%a" (E.pp pp_qref) e in
  let rec go indent id =
    let pad = String.make (indent * 2) ' ' in
    let rows = box_rows_memo cat g memo id in
    let box = G.box g id in
    (match box.B.body with
    | B.Base { bt_table; _ } ->
        addf "%sSCAN %s  (~%.0f rows)\n" pad bt_table rows
    | B.Select sel ->
        let kind =
          if List.length (List.filter (fun q -> q.B.q_kind = B.Foreach) sel.B.sel_quants) > 1
          then "JOIN"
          else "SELECT"
        in
        addf "%s%s%s  (~%.0f rows)\n" pad kind
          (if sel.B.sel_distinct then " DISTINCT" else "")
          rows;
        List.iter
          (fun p -> addf "%s  pred %s\n" pad (expr_str p))
          sel.B.sel_preds
    | B.Union u ->
        addf "%sUNION%s  (~%.0f rows)\n" pad
          (if u.B.un_all then " ALL" else "")
          rows
    | B.Group grp ->
        let keys =
          match grp.B.grp_grouping with
          | B.Simple cols -> String.concat ", " cols
          | B.Gsets sets ->
              "GS(" ^ String.concat "; " (List.map (String.concat ",") sets) ^ ")"
        in
        addf "%sGROUP BY %s  (~%.0f rows)\n" pad keys rows);
    List.iter (fun q -> go (indent + 1) q.B.q_box) (B.quants_of box)
  in
  go 0 (G.root g);
  addf "total estimated work: %.0f\n" (graph_cost cat g);
  Buffer.contents buf
