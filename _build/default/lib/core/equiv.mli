(** Column-equivalence classes induced by equality predicates.

    Inside a SELECT box, a predicate [Col a = Col b] makes the two input
    columns interchangeable for matching purposes (the paper's Q2 example:
    [aid] is derivable from [faid] because of the [faid = aid] join
    predicate). The matcher canonicalizes every column reference to its
    class representative before structural comparison.

    The structure is generic in the reference type so it works over both
    subsumer QNCs ({!Qgm.Box.qref}) and compensation references
    ({!Mtypes.cref}). *)

type 'r t

(** [of_equalities refs eqs] builds classes from [(a, b)] equal pairs. *)
val of_equalities : ('r * 'r) list -> 'r t

(** Extract [Col a = Col b] pairs from a predicate list and build classes. *)
val of_preds : 'c Qgm.Expr.t list -> 'c t

val repr : 'r t -> 'r -> 'r

(** Canonicalize every column reference in an expression. *)
val canon : 'r t -> 'r Qgm.Expr.t -> 'r Qgm.Expr.t

val same : 'r t -> 'r -> 'r -> bool

(** All known members of [r]'s class (including [r] itself if known). *)
val members : 'r t -> 'r -> 'r list
