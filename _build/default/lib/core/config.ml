(* Feature switches for the matching algorithm, used by the ablation
   benchmarks (DESIGN.md section 5) to quantify what each design choice
   contributes. Production use leaves everything on. Mutable global state
   is acceptable here: the switches exist only to run controlled
   experiments single-threadedly. *)

(* Column-equivalence classes from join predicates (section 6; Figure 5's
   aid-from-faid derivation). *)
let equivalence_classes = ref true

(* Constant-relaxation predicate subsumption (footnote 4). *)
let predicate_subsumption = ref true

(* Greedy largest-subexpression cover during derivation (section 6). When
   off, only whole expressions and bare column leaves can be covered —
   computed expressions like qty*price cannot be recognized inside larger
   expressions. *)
let greedy_derivation = ref true

(* Choose the smallest matching cuboid when slicing a grouping-sets AST
   (section 5.1). When off, the first declared cuboid that satisfies the
   conditions is used, which can regroup far more rows. *)
let smallest_cuboid = ref true

let reset () =
  equivalence_classes := true;
  predicate_subsumption := true;
  greedy_derivation := true;
  smallest_cuboid := true

(* Run [f] with a switch temporarily flipped off. *)
let without switch f =
  let saved = !switch in
  switch := false;
  Fun.protect ~finally:(fun () -> switch := saved) f
