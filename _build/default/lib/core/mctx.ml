(* The matching context: the two graphs, the catalog, and the memo table of
   box-pair match results. The navigator and the recursive match function
   (paper section 3) share this. *)

type t = {
  cat : Catalog.t;
  qg : Qgm.Graph.t;  (* query graph: subsumees *)
  ag : Qgm.Graph.t;  (* AST graph: subsumers *)
  memo : (int * int, Mtypes.result option) Hashtbl.t;
  trace : Buffer.t option;  (* when set, rejection reasons are recorded *)
}

let create ?trace cat ~query ~ast =
  { cat; qg = query; ag = ast; memo = Hashtbl.create 64; trace }

(* Record a human-readable reason why a candidate pair was rejected.
   Diagnostics only — never consulted by the algorithm. *)
let note ctx fmt =
  match ctx.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some buf ->
      Format.kasprintf
        (fun s ->
          (* dedup consecutive identical notes *)
          let s = s ^ "\n" in
          let n = Buffer.length buf and ls = String.length s in
          if n < ls || Buffer.sub buf (n - ls) ls <> s then
            Buffer.add_string buf s)
        fmt

(* A pairing of subsumee children with subsumer children (section 4's
   terminology): matched pairs, rejoin children (subsumee-only), and extra
   children (subsumer-only). *)
type assignment = {
  pairs : (Qgm.Box.quant * Qgm.Box.quant * Mtypes.result) list;
  rejoins : Qgm.Box.quant list;
  extras : Qgm.Box.quant list;
}
