(** Deriving subsumee expressions from subsumer outputs (paper section 6 and
    the aggregate rules of section 4.1.2).

    Derivation is the inverse of translation: pieces of the translated
    expression are collapsed into references to subsumer output columns.
    The cover is greedy top-down — the whole expression is tried against
    every subsumer output before descending — which realizes the paper's
    "minimum number of subsumer QCLs" preference (Figure 5's [amt] derived
    from [value] and [disc] rather than [qty], [price], [disc]). *)

(** [scalar ~equiv ~r_outs t] covers translated expression [t] by the
    subsumer outputs [r_outs]: equal (canonicalized, normalized)
    subexpressions become [Below] references, rejoin leaves become
    [Rejoin], constants stay. [None] when an [Rin] leaf or aggregate
    remains uncovered. *)
val scalar :
  equiv:Mtypes.txref Equiv.t ->
  r_outs:(string * Mtypes.txref Qgm.Expr.t) list ->
  Mtypes.txref Qgm.Expr.t ->
  Mtypes.cref Qgm.Expr.t option

(** Environment for aggregate derivation in GROUP BY patterns. All
    compensation-reference expressions are over [Below] of the
    subsumer-child's outputs (the space of the subsumer's grouping columns
    and aggregate arguments). *)
type group_env = {
  ge_equiv : Mtypes.cref Equiv.t;  (** classes from pulled predicates *)
  ge_cuboid : string list;  (** available subsumer grouping columns *)
  ge_r_aggs : (string * Qgm.Expr.agg * string option) list;
      (** subsumer aggregate outputs: name, aggregate, argument column *)
  ge_arg_nullable : string -> bool;
      (** nullability oracle for subsumer-child output columns *)
  ge_ekey_cols : string list option;
      (** when every subsumee grouping expression is a plain subsumer
          grouping column: those columns (for rule f/g's exactness test) *)
}

(** [agg_direct env agg arg] — the subsumer aggregate output equal to this
    subsumee aggregate (same function, same DISTINCT, equivalent argument).
    Used when no regrouping happens. *)
val agg_direct :
  group_env -> Qgm.Expr.agg -> Mtypes.cref Qgm.Expr.t option -> string option

(** [agg_regroup env agg arg] — derivation rules (a)-(g) plus algebraic
    combinations (AVG as SUM/COUNT, linear scaling of SUM): an expression
    over [Below] of the subsumer's *outputs*, whose [Agg] nodes are the
    re-aggregations the compensation GROUP BY must perform. *)
val agg_regroup :
  group_env ->
  Qgm.Expr.agg ->
  Mtypes.cref Qgm.Expr.t option ->
  Mtypes.cref Qgm.Expr.t option

(** [restrict_to_cols env cols t] rewrites every [Below] leaf of [t] into an
    equivalent member of [cols] (via the equivalence classes); [None] if
    some leaf has no member there. Rejoin leaves pass through. Used to
    confine expressions to a cuboid's grouping columns (section 5). *)
val restrict_to_cols :
  Mtypes.cref Equiv.t ->
  string list ->
  Mtypes.cref Qgm.Expr.t ->
  Mtypes.cref Qgm.Expr.t option
