(* Union-find with path compression over an association list universe.
   Universes are tiny (a box's input columns), so simplicity wins. *)

type 'r t = { mutable parent : ('r * 'r) list }

let of_equalities eqs =
  let t = { parent = [] } in
  let rec find t x =
    match List.assoc_opt x t.parent with
    | None -> x
    | Some p when p = x -> x
    | Some p ->
        let root = find t p in
        t.parent <- (x, root) :: List.remove_assoc x t.parent;
        root
  in
  let union x y =
    let rx = find t x and ry = find t y in
    if rx <> ry then begin
      (* deterministic representative: smaller by polymorphic compare *)
      let lo, hi = if compare rx ry <= 0 then (rx, ry) else (ry, rx) in
      t.parent <- (hi, lo) :: List.remove_assoc hi t.parent;
      if List.assoc_opt lo t.parent = None then
        t.parent <- (lo, lo) :: t.parent
    end
  in
  List.iter (fun (a, b) -> union a b) eqs;
  t

let of_preds preds =
  let eqs =
    List.filter_map
      (fun p ->
        match p with
        | Qgm.Expr.Binop ("=", Qgm.Expr.Col a, Qgm.Expr.Col b) -> Some (a, b)
        | _ -> None)
      preds
  in
  of_equalities eqs

let rec repr t x =
  match List.assoc_opt x t.parent with
  | None -> x
  | Some p when p = x -> x
  | Some p -> repr t p

let canon t e = Qgm.Expr.map_col (repr t) e
let same t a b = repr t a = repr t b

let members t x =
  let rx = repr t x in
  let known =
    List.filter_map
      (fun (m, _) -> if repr t m = rx then Some m else None)
      t.parent
  in
  if List.mem x known then known else x :: known
