(** Feature switches for the matching algorithm.

    These exist only so the ablation benchmarks (DESIGN.md section 5) can
    quantify each design choice; production use leaves everything on.
    Single-threaded mutable globals by design. *)

val equivalence_classes : bool ref
(** Column-equivalence classes from join predicates (section 6). *)

val predicate_subsumption : bool ref
(** Constant-relaxation predicate subsumption (footnote 4). *)

val greedy_derivation : bool ref
(** Greedy largest-subexpression cover during derivation (section 6). *)

val smallest_cuboid : bool ref
(** Smallest-cuboid selection when slicing grouping-sets ASTs (5.1). *)

val reset : unit -> unit

(** [without switch f] runs [f] with [switch] off, restoring it after. *)
val without : bool ref -> (unit -> 'a) -> 'a
