module E = Qgm.Expr
module B = Qgm.Box
module G = Qgm.Graph

let norm = String.lowercase_ascii

let rec column_nullable cat g box_id col =
  let box = G.box g box_id in
  match box.B.body with
  | B.Base { bt_table; _ } -> Catalog.column_nullable cat bt_table col
  | B.Select { sel_quants = quants; sel_outs = outs; _ } -> (
      match
        List.find_opt (fun (n, _) -> norm n = norm col) outs
      with
      | None -> true
      | Some (_, e) -> expr_nullable cat g quants e)
  | B.Union u ->
      (* nullable when nullable in any branch, aligned positionally *)
      let idx =
        let rec find i = function
          | [] -> None
          | c :: rest ->
              if norm c = norm col then Some i else (ignore rest; find (i + 1) rest)
        in
        find 0 u.B.un_cols
      in
      (match idx with
      | None -> true
      | Some i ->
          List.exists
            (fun q ->
              let child_cols = B.output_cols (G.box g q.B.q_box) in
              i >= List.length child_cols
              || column_nullable cat g q.B.q_box (List.nth child_cols i))
            u.B.un_quants)
  | B.Group { grp_quant = quant; grp_grouping = grouping; grp_aggs = aggs } -> (
      let union = B.grouping_union grouping in
      if List.exists (fun c -> norm c = norm col) union then
        (* NULL-padded in cuboids that exclude the column (section 5) *)
        let in_every_set =
          List.for_all
            (fun set -> List.exists (fun c -> norm c = norm col) set)
            (B.grouping_sets grouping)
        in
        (not in_every_set)
        || column_nullable cat g quant.B.q_box col
      else
        match
          List.find_opt (fun (n, _) -> norm n = norm col) aggs
        with
        | Some (_, { B.agg = { E.fn = E.Count | E.Count_star; _ }; _ }) -> false
        | Some _ -> true (* SUM/MIN/MAX/AVG of all-NULL group is NULL *)
        | None -> true)

and expr_nullable cat g quants e =
  match e with
  | E.Const v -> v = Data.Value.Null
  | E.Col { B.quant; col } -> (
      match List.find_opt (fun q -> q.B.q_id = quant) quants with
      | None -> true
      | Some q ->
          (* a scalar subquery returning no rows yields NULL *)
          q.B.q_kind = B.Scalar || column_nullable cat g q.B.q_box col)
  | E.Unop (_, e) -> expr_nullable cat g quants e
  | E.Binop (("AND" | "OR"), a, b) ->
      expr_nullable cat g quants a || expr_nullable cat g quants b
  | E.Binop (_, a, b) ->
      expr_nullable cat g quants a || expr_nullable cat g quants b
  | E.Fncall ("coalesce", args) ->
      List.for_all (expr_nullable cat g quants) args
  | E.Fncall (_, args) -> List.exists (expr_nullable cat g quants) args
  | E.Agg _ -> true
  | E.Is_null _ -> false
  | E.Case (arms, els) -> (
      List.exists (fun (_, v) -> expr_nullable cat g quants v) arms
      || match els with None -> true | Some e -> expr_nullable cat g quants e)

let base_table_of g box_id =
  match (G.box g box_id).B.body with
  | B.Base { bt_table; _ } -> Some bt_table
  | _ -> None

let cols_are_key cat g box_id cols =
  let box = G.box g box_id in
  match box.B.body with
  | B.Base { bt_table; _ } -> Catalog.is_unique_key cat bt_table cols
  | B.Group { grp_grouping = B.Simple keys; _ } ->
      let cols = List.map norm cols in
      List.for_all (fun k -> List.mem (norm k) cols) keys
  | B.Group _ | B.Select _ | B.Union _ -> false
