(** Expression translation into the subsumer's context (paper section 6).

    A subsumee expression references subsumee QNCs, which may be complex
    expressions produced by nested blocks; before it can be compared with —
    or derived from — subsumer expressions, each QNC is replaced by its
    image through the child matches: down the child compensation levels and
    across to the matching subsumer child's output. The result is an
    expression over subsumer inputs ({!Mtypes.Rin}) and rejoin columns
    ({!Mtypes.Rj}); it may legitimately contain aggregate nodes (Figure 15's
    [sum(cnt) > 2]). *)

(** [through_comp levels e] rewrites [e] (over [Below] of the top level's
    outputs) downwards through the compensation stack, yielding an
    expression over [Below] of the subsumer-child's outputs plus [Rejoin]
    references. [None] when a referenced column is not produced. *)
val through_comp :
  Mtypes.level list -> Mtypes.cref Qgm.Expr.t -> Mtypes.cref Qgm.Expr.t option

(** [child_col result col] — the image of subsumee-child output [col]
    through a child match, over [Below] of the subsumer-child outputs. *)
val child_col : Mtypes.result -> string -> Mtypes.cref Qgm.Expr.t option

(** [to_subsumer assignment e] translates subsumee SELECT-box expression [e]
    into the subsumer's context using the child assignment: matched
    children route through {!child_col} and surface as [Rin] (subsumer
    quantifier, column); rejoin children surface as [Rj]. *)
val to_subsumer :
  Mctx.assignment -> Qgm.Box.qref Qgm.Expr.t -> Mtypes.txref Qgm.Expr.t option

(** Lift a compensation-level expression over subsumer-child outputs into
    subsumer-input space ([Below x] becomes [Rin (rq, x)]). *)
val lift_cref :
  rq:Qgm.Box.quant -> Mtypes.cref Qgm.Expr.t -> Mtypes.txref Qgm.Expr.t

(** Subsumer-side views: a box's predicates and output-defining expressions
    over its own inputs, in [txref] space. *)
val subsumer_outs : Qgm.Box.box -> (string * Mtypes.txref Qgm.Expr.t) list

val subsumer_preds : Qgm.Box.box -> Mtypes.txref Qgm.Expr.t list

(** Equivalence classes over [txref] induced by the subsumer's equality
    predicates. *)
val subsumer_equiv : Qgm.Box.box -> Mtypes.txref Equiv.t
