(** Derived semantic properties of QGM boxes.

    The aggregate-derivation rules (paper section 4.1.2) need nullability
    facts ("COUNT(z) where z is non-nullable may stand in for COUNT(*)"),
    and the rejoin rules need key facts for 1:N joins. Analyses are
    conservative: a column is reported nullable unless provably not. *)

(** [column_nullable cat g box col] — can the named output column of [box]
    in graph [g] ever be NULL? *)
val column_nullable :
  Catalog.t -> Qgm.Graph.t -> Qgm.Box.box_id -> string -> bool

(** [base_table_of g box] — when [box] is a base-table leaf, its table
    name. *)
val base_table_of : Qgm.Graph.t -> Qgm.Box.box_id -> string option

(** [cols_are_key cat g box cols] — do [cols] contain a unique key of the
    relation produced by [box]? True when the box is a base table whose
    declared key is covered, or a GROUP BY box whose simple grouping
    columns are covered. *)
val cols_are_key : Catalog.t -> Qgm.Graph.t -> Qgm.Box.box_id -> string list -> bool
