(** Predicate subsumption (paper section 4.1.1, footnote 4).

    [p1] subsumes [p2] when every row eliminated by [p1] is also eliminated
    by [p2] — e.g. [x > 10] subsumes [x > 20]. Used on predicates already
    translated into a common reference space and canonicalized. *)

(** [subsumes ~weak ~strong] — does [weak] subsume [strong]? Recognizes
    syntactic equality (after normalization) and constant relaxation of
    comparisons over the same expression. *)
val subsumes : weak:'c Qgm.Expr.t -> strong:'c Qgm.Expr.t -> bool
