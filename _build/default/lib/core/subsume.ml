module E = Qgm.Expr
module V = Data.Value

(* After E.normalize, [>] and [>=] have been flipped into [<] / [<=], so a
   comparison is [lhs OP rhs]. We handle the constant-vs-expression cases. *)
let bounds e =
  match e with
  | E.Binop ("<", E.Const c, x) -> Some (`Lower (x, c, `Open))   (* c < x *)
  | E.Binop ("<=", E.Const c, x) -> Some (`Lower (x, c, `Closed))
  | E.Binop ("<", x, E.Const c) -> Some (`Upper (x, c, `Open))   (* x < c *)
  | E.Binop ("<=", x, E.Const c) -> Some (`Upper (x, c, `Closed))
  | _ -> None

let subsumes ~weak ~strong =
  let weak = E.normalize weak and strong = E.normalize strong in
  if weak = strong then true
  else
    match (bounds weak, bounds strong) with
    | Some (`Lower (x, c1, k1)), Some (`Lower (y, c2, k2)) when x = y ->
        (* c1 < x subsumes c2 < x iff c1 <= c2 (strictness permitting) *)
        let c = V.compare c1 c2 in
        c < 0 || (c = 0 && (k1 = k2 || (k1 = `Closed && k2 = `Open)))
    | Some (`Upper (x, c1, k1)), Some (`Upper (y, c2, k2)) when x = y ->
        let c = V.compare c1 c2 in
        c > 0 || (c = 0 && (k1 = k2 || (k1 = `Closed && k2 = `Open)))
    | _ -> false
