module E = Qgm.Expr
module M = Mtypes
module V = Data.Value

let norm = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Scalar derivation (SELECT patterns)                                 *)
(* ------------------------------------------------------------------ *)

let scalar ~equiv ~r_outs t =
  let canon e =
    if !Config.equivalence_classes then E.normalize (Equiv.canon equiv e)
    else E.normalize e
  in
  let canon_outs = List.map (fun (n, o) -> (n, canon o)) r_outs in
  let find_out e =
    let ce = canon e in
    List.find_map (fun (n, o) -> if o = ce then Some n else None) canon_outs
  in
  let whole = ref true in
  let rec go t =
    (* with greedy derivation off, only the whole expression and bare
       column leaves may be covered (ablation switch) *)
    let coverable =
      !Config.greedy_derivation || !whole
      || match t with E.Col _ -> true | _ -> false
    in
    whole := false;
    match (if coverable then find_out t else None) with
    | Some n -> Some (E.Col (M.Below n))
    | None -> (
        match t with
        | E.Const v -> Some (E.Const v)
        | E.Col (M.Rj r) -> Some (E.Col (M.Rejoin r))
        | E.Col (M.Rin _) | E.Agg _ -> None
        | E.Unop (op, e) -> Option.map (fun e -> E.Unop (op, e)) (go e)
        | E.Binop (op, a, b) -> (
            match (go a, go b) with
            | Some a, Some b -> Some (E.Binop (op, a, b))
            | _ -> None)
        | E.Fncall (f, args) ->
            let args' = List.filter_map go args in
            if List.length args' = List.length args then
              Some (E.Fncall (f, args'))
            else None
        | E.Is_null (e, pos) -> Option.map (fun e -> E.Is_null (e, pos)) (go e)
        | E.Case (arms, els) -> (
            let arms' =
              List.filter_map
                (fun (c, v) ->
                  match (go c, go v) with
                  | Some c, Some v -> Some (c, v)
                  | _ -> None)
                arms
            in
            if List.length arms' <> List.length arms then None
            else
              match els with
              | None -> Some (E.Case (arms', None))
              | Some e -> Option.map (fun e -> E.Case (arms', Some e)) (go e)))
  in
  go t

(* ------------------------------------------------------------------ *)
(* Aggregate derivation (GROUP BY patterns)                            *)
(* ------------------------------------------------------------------ *)

type group_env = {
  ge_equiv : M.cref Equiv.t;
  ge_cuboid : string list;
  ge_r_aggs : (string * E.agg * string option) list;
  ge_arg_nullable : string -> bool;
  ge_ekey_cols : string list option;
}

let restrict_to_cols equiv cols t =
  let cols = List.map norm cols in
  E.subst_col
    (fun c ->
      match c with
      | M.Rejoin _ -> Some (E.Col c)
      | M.Below x ->
          if List.mem (norm x) cols then Some (E.Col (M.Below x))
          else
            List.find_map
              (fun m ->
                match m with
                | M.Below y when List.mem (norm y) cols -> Some (E.Col m)
                | _ -> None)
              (Equiv.members equiv c))
    t

(* canonical single-column view of an argument expression *)
let as_col env t =
  match E.normalize t with
  | E.Col (M.Below y) -> Some y
  | e -> (
      match Equiv.canon env.ge_equiv e with
      | E.Col (M.Below y) -> Some y
      | _ -> None)

let same_col env a b = Equiv.same env.ge_equiv (M.Below a) (M.Below b)

let find_r_agg env fn ~distinct y =
  List.find_map
    (fun (n, agg, arg) ->
      match arg with
      | Some y'
        when agg.E.fn = fn && agg.E.distinct = distinct && same_col env y' y ->
          Some n
      | _ -> None)
    env.ge_r_aggs

let find_count_star env =
  List.find_map
    (fun (n, agg, _) -> if agg.E.fn = E.Count_star then Some n else None)
    env.ge_r_aggs

(* COUNT(z) with z non-nullable can stand in for COUNT star. *)
let find_count_nonnull env =
  List.find_map
    (fun (n, agg, arg) ->
      match (agg.E.fn, arg) with
      | E.Count, Some z when (not agg.E.distinct) && not (env.ge_arg_nullable z)
        ->
          Some n
      | _ -> None)
    env.ge_r_aggs

let find_row_count env =
  match find_count_star env with
  | Some n -> Some n
  | None -> find_count_nonnull env

(* keys-only form: every Below leaf rewritten into the cuboid, no rejoins *)
let keys_only env t =
  match restrict_to_cols env.ge_equiv env.ge_cuboid t with
  | Some t' when not (E.exists_sub (function E.Col (M.Rejoin _) -> true | _ -> false) t')
    ->
      Some t'
  | _ -> None

let rec expr_nonnull env t =
  match t with
  | E.Const v -> v <> V.Null
  | E.Col (M.Below x) -> not (env.ge_arg_nullable x)
  | E.Col (M.Rejoin _) -> false
  | E.Is_null _ -> true
  | E.Unop (_, e) -> expr_nonnull env e
  | E.Binop (_, a, b) -> expr_nonnull env a && expr_nonnull env b
  | E.Fncall (_, args) -> List.for_all (expr_nonnull env) args
  | E.Agg _ -> false
  | E.Case (arms, els) -> (
      List.for_all (fun (_, v) -> expr_nonnull env v) arms
      && match els with Some e -> expr_nonnull env e | None -> false)

let sum_of n = E.Agg ({ E.fn = E.Sum; distinct = false }, Some (E.Col (M.Below n)))

let agg_direct env (agg : E.agg) arg =
  match (agg.E.fn, arg) with
  | E.Count_star, _ -> find_count_star env
  | _, Some t ->
      Option.bind (as_col env t) (fun y ->
          find_r_agg env agg.E.fn ~distinct:agg.E.distinct y)
  | _, None -> None

(* SUM derivation: direct partial sums, grouping-column rewrites multiplied
   by the row count, or linear scalings of a derivable SUM. *)
let rec derive_sum env t =
  match Option.bind (as_col env t) (fun y -> find_r_agg env E.Sum ~distinct:false y) with
  | Some n -> Some (sum_of n)
  | None -> (
      match keys_only env t with
      | Some kt -> (
          match find_row_count env with
          | Some cnt ->
              Some
                (E.Agg
                   ( { E.fn = E.Sum; distinct = false },
                     Some (E.Binop ("*", kt, E.Col (M.Below cnt))) ))
          | None -> None)
      | None -> (
          (* linear cases: c * u, u * c, -u *)
          match E.normalize t with
          | E.Binop ("*", E.Const c, u) | E.Binop ("*", u, E.Const c) ->
              Option.map
                (fun du -> E.Binop ("*", E.Const c, du))
                (derive_sum env u)
          | E.Unop ("-", u) ->
              Option.map (fun du -> E.Unop ("-", du)) (derive_sum env u)
          | _ -> None))

let derive_count_star env =
  Option.map sum_of (find_row_count env)

let derive_count env t =
  match Option.bind (as_col env t) (fun y -> find_r_agg env E.Count ~distinct:false y) with
  | Some n -> Some (sum_of n)
  | None ->
      if expr_nonnull env t then derive_count_star env
      else
        (* argument rewritable over grouping columns: rows of a subsumer
           group share the value, so count cnt when it is non-null *)
        Option.bind (keys_only env t) (fun kt ->
            Option.map
              (fun cnt ->
                E.Agg
                  ( { E.fn = E.Sum; distinct = false },
                    Some
                      (E.Case
                         ( [ (E.Is_null (kt, false), E.Col (M.Below cnt)) ],
                           Some (E.Const (V.Int 0)) )) ))
              (find_row_count env))

let derive_minmax env fn t =
  match Option.bind (as_col env t) (fun y -> find_r_agg env fn ~distinct:false y) with
  | Some n -> Some (E.Agg ({ E.fn; distinct = false }, Some (E.Col (M.Below n))))
  | None ->
      (* constant within each subsumer group: aggregate the rewritten value *)
      Option.map
        (fun kt -> E.Agg ({ E.fn; distinct = false }, Some kt))
        (keys_only env t)

(* COUNT(DISTINCT x) / SUM(DISTINCT x): x must be (equivalent to) a subsumer
   grouping column y. When the subsumer groups exactly by the subsumee keys
   plus y, each distinct y appears once per subsumee group, so the plain
   aggregate suffices (the paper's rules f/g); otherwise re-deduplicate with
   a DISTINCT aggregate. *)
let derive_distinct env fn t =
  match as_col env t with
  | None -> None
  | Some y ->
      let y_in_cuboid =
        List.exists (fun c -> same_col env c y) env.ge_cuboid
      in
      if not y_in_cuboid then None
      else
        let exact =
          match env.ge_ekey_cols with
          | None -> false
          | Some ekeys ->
              let target = List.sort_uniq compare (List.map norm (y :: ekeys)) in
              let cuboid = List.sort_uniq compare (List.map norm env.ge_cuboid) in
              target = cuboid
        in
        Some
          (E.Agg
             ( { E.fn; distinct = not exact },
               Some (E.Col (M.Below y)) ))

let agg_regroup env (agg : E.agg) arg =
  match (agg.E.fn, agg.E.distinct, arg) with
  | E.Count_star, _, _ -> derive_count_star env
  | E.Count, false, Some t -> derive_count env t
  | E.Sum, false, Some t -> derive_sum env t
  | (E.Min | E.Max), false, Some t -> derive_minmax env agg.E.fn t
  | E.Avg, false, Some t ->
      Option.bind (derive_sum env t) (fun s ->
          Option.map
            (fun c -> E.Binop ("/", E.Fncall ("float", [ s ]), c))
            (derive_count env t))
  | E.Count, true, Some t -> derive_distinct env E.Count t
  | E.Sum, true, Some t -> derive_distinct env E.Sum t
  | _ -> None
