(* Shared vocabulary of the matching algorithm (paper section 3).

   A match of subsumee box E (from the query graph) with subsumer box R
   (from the AST graph) is either exact — every E output column has a
   semantically equivalent R output column — or carries a compensation: a
   stack of relational levels to apply on top of R's output to reproduce
   E's output exactly. Compensation levels are abstract (not yet QGM
   boxes): patterns need to introspect their shape (paper sections 4.2.x),
   and only the final rewrite materializes them as boxes. *)

module E = Qgm.Expr
module B = Qgm.Box

(* Column reference inside a compensation level. *)
type cref =
  | Below of string
      (* output column of the level beneath; for the bottom level, an
         output column of the subsumer *)
  | Rejoin of B.qref
      (* column of a rejoined query-graph child, addressed by the ORIGINAL
         query quantifier (the rewrite allocates fresh quantifiers) *)

(* Leaves of a translated subsumee expression (section 6): subsumer inputs
   (QNCs) or rejoin columns. *)
type txref =
  | Rin of B.qref   (* subsumer input: (subsumer quantifier, column) *)
  | Rj of B.qref    (* rejoin child column (query-graph quantifier) *)

type rejoin_child = {
  rc_quant : B.quant;   (* the original query quantifier (id + box + kind) *)
}

type level =
  | L_select of {
      ls_rejoins : rejoin_child list;
      ls_preds : cref E.t list;
      ls_outs : (string * cref E.t) list;
    }
  | L_group of {
      lg_grouping : B.grouping;  (* over output names of the level below *)
      (* aggregate outputs; the argument is an expression over the level
         below (the rewrite inserts a SELECT when it is not a plain column) *)
      lg_aggs : (string * E.agg * cref E.t option) list;
    }

(* A successful match. [Exact cmap]: subsumee output column -> equivalent
   subsumer output column (the subsumer may produce extra columns, paper
   footnote 5). [Comp levels]: bottom-up; the top level produces exactly
   the subsumee's output columns. *)
type result = Exact of (string * string) list | Comp of level list

let level_is_group = function L_group _ -> true | L_select _ -> false
let comp_has_group levels = List.exists level_is_group levels

let level_outs = function
  | L_select { ls_outs; _ } -> List.map fst ls_outs
  | L_group { lg_grouping; lg_aggs; _ } ->
      B.grouping_union lg_grouping @ List.map (fun (n, _, _) -> n) lg_aggs

(* The expression a level computes for one of its output columns, over the
   level below. Grouping columns pass through; aggregate outputs surface as
   Agg expressions (used for expression translation, Figure 15). *)
let level_out_expr level col =
  let norm = String.lowercase_ascii in
  match level with
  | L_select { ls_outs; _ } ->
      List.find_map
        (fun (n, e) -> if norm n = norm col then Some e else None)
        ls_outs
  | L_group { lg_grouping; lg_aggs; _ } ->
      if List.exists (fun c -> norm c = norm col) (B.grouping_union lg_grouping)
      then Some (E.Col (Below col))
      else
        List.find_map
          (fun (n, agg, arg) ->
            if norm n = norm col then Some (E.Agg (agg, arg)) else None)
          lg_aggs

let pp_cref fmt = function
  | Below c -> Format.fprintf fmt "%s" c
  | Rejoin { B.quant; col } -> Format.fprintf fmt "rj:q%d.%s" quant col

let pp_txref fmt = function
  | Rin { B.quant; col } -> Format.fprintf fmt "q%d.%s" quant col
  | Rj { B.quant; col } -> Format.fprintf fmt "rj:q%d.%s" quant col

let pp_level fmt = function
  | L_select { ls_rejoins; ls_preds; ls_outs } ->
      Format.fprintf fmt "SELECT";
      List.iter
        (fun rc -> Format.fprintf fmt " rejoin(q%d->box %d)" rc.rc_quant.B.q_id rc.rc_quant.B.q_box)
        ls_rejoins;
      List.iter
        (fun p -> Format.fprintf fmt "@ pred %a" (E.pp pp_cref) p)
        ls_preds;
      List.iter
        (fun (n, e) -> Format.fprintf fmt "@ out %s = %a" n (E.pp pp_cref) e)
        ls_outs
  | L_group { lg_grouping; lg_aggs } ->
      Format.fprintf fmt "GROUP BY ";
      (match lg_grouping with
      | B.Simple cols -> Format.fprintf fmt "%s" (String.concat ", " cols)
      | B.Gsets sets ->
          Format.fprintf fmt "GS(%s)"
            (String.concat "; "
               (List.map (fun s -> String.concat "," s) sets)));
      List.iter
        (fun (n, agg, arg) ->
          Format.fprintf fmt "@ agg %s = %s(%s)" n
            (E.agg_fn_to_string agg.E.fn)
            (match arg with
            | None -> "*"
            | Some e -> E.to_string (Format.asprintf "%a" pp_cref) e))
        lg_aggs

let pp_result fmt = function
  | Exact cmap ->
      Format.fprintf fmt "EXACT {%s}"
        (String.concat ", " (List.map (fun (a, b) -> a ^ "->" ^ b) cmap))
  | Comp levels ->
      Format.fprintf fmt "COMP [@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
           pp_level)
        levels
