lib/core/navigator.mli: Buffer Catalog Mtypes Qgm
