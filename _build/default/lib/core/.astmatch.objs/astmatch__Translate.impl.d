lib/core/translate.ml: Equiv List Mctx Mtypes Option Qgm String
