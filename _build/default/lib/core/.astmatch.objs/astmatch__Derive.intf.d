lib/core/derive.mli: Equiv Mtypes Qgm
