lib/core/subsume.ml: Data Qgm
