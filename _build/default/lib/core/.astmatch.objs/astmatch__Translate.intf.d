lib/core/translate.mli: Equiv Mctx Mtypes Qgm
