lib/core/derive.ml: Config Data Equiv List Mtypes Option Qgm String
