lib/core/rewrite.mli: Catalog Mtypes Qgm
