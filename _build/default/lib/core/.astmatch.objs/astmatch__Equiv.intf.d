lib/core/equiv.mli: Qgm
