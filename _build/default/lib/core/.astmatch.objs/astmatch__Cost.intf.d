lib/core/cost.mli: Catalog Qgm
