lib/core/mctx.ml: Buffer Catalog Format Hashtbl Mtypes Qgm String
