lib/core/navigator.ml: List Mctx Mtypes Patterns Qgm String
