lib/core/props.mli: Catalog Qgm
