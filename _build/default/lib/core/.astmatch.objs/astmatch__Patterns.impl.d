lib/core/patterns.ml: Catalog Config Data Derive Equiv Format Hashtbl List Mctx Mtypes Option Printf Props Qgm String Subsume Translate
