lib/core/config.mli:
