lib/core/mtypes.ml: Format List Qgm String
