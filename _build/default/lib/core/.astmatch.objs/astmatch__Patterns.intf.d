lib/core/patterns.mli: Mctx Mtypes Qgm
