lib/core/equiv.ml: List Qgm
