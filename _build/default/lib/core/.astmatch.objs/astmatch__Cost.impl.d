lib/core/cost.ml: Buffer Catalog Data Float Format Hashtbl List Printf Qgm String
