lib/core/props.ml: Catalog Data List Qgm String
