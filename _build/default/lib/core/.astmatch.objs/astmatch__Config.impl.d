lib/core/config.ml: Fun
