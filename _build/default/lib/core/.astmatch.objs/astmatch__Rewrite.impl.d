lib/core/rewrite.ml: Cost List Mtypes Navigator Printf Qgm
