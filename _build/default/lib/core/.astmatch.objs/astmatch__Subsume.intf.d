lib/core/subsume.mli: Qgm
