(* Predicate subsumption (paper footnote 4: x > 10 subsumes x > 20). *)

module S = Astmatch.Subsume
module E = Qgm.Expr
module V = Data.Value

let x = E.Col "x"
let c n = E.Const (V.Int n)
let gt e k = E.Binop (">", e, c k)
let ge e k = E.Binop (">=", e, c k)
let lt e k = E.Binop ("<", e, c k)
let le e k = E.Binop ("<=", e, c k)

let check msg expected weak strong =
  Alcotest.(check bool) msg expected (S.subsumes ~weak ~strong)

let test_equal () =
  check "identical" true (gt x 10) (gt x 10);
  check "normalized equal" true (gt x 10) (E.Binop ("<", c 10, x))

let test_lower_bounds () =
  check "x>10 subsumes x>20" true (gt x 10) (gt x 20);
  check "x>20 does not subsume x>10" false (gt x 20) (gt x 10);
  check "x>=10 subsumes x>10" true (ge x 10) (gt x 10);
  check "x>10 does not subsume x>=10" false (gt x 10) (ge x 10);
  check "x>=10 subsumes x>=11" true (ge x 10) (ge x 11)

let test_upper_bounds () =
  check "x<20 subsumes x<10" true (lt x 20) (lt x 10);
  check "x<10 does not subsume x<20" false (lt x 10) (lt x 20);
  check "x<=10 subsumes x<10" true (le x 10) (lt x 10);
  check "x<10 does not subsume x<=10" false (lt x 10) (le x 10)

let test_different_exprs () =
  check "different column" false (gt x 10) (gt (E.Col "y") 20);
  check "mixed direction" false (gt x 10) (lt x 20);
  check "unrelated shapes" false (E.Is_null (x, true)) (gt x 10)

let test_float_bounds () =
  check "float relax" true
    (E.Binop (">", x, E.Const (V.Float 0.05)))
    (E.Binop (">", x, E.Const (V.Float 0.1)))

let test_complex_lhs () =
  let e = E.Binop ("*", E.Col "a", E.Col "b") in
  check "expression bound" true (gt e 1) (gt e 5);
  check "commuted expression" true (gt (E.Binop ("*", E.Col "b", E.Col "a")) 1) (gt e 5)

let suite =
  [
    Alcotest.test_case "equal predicates" `Quick test_equal;
    Alcotest.test_case "lower bounds" `Quick test_lower_bounds;
    Alcotest.test_case "upper bounds" `Quick test_upper_bounds;
    Alcotest.test_case "different expressions" `Quick test_different_exprs;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "complex expressions" `Quick test_complex_lhs;
  ]
