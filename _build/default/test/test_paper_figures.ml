(* The paper's worked examples, end to end: every figure must make the
   documented match/no-match decision and, when rewritten, produce exactly
   the original query's result on generated data. Table 1's scenario is
   also replayed on the paper's literal sample rows. *)

module R = Data.Relation
module V = Data.Value
open Helpers

let star_db =
  lazy
    (let params =
       {
         Workload.Star_schema.default_params with
         n_custs = 6;
         trans_per_acct_year = 40;
       }
     in
     Engine.Db.of_tables
       (Workload.Star_schema.catalog ())
       (Workload.Star_schema.generate params))

let run_case (c : Workload.Paper_queries.case) () =
  let db = Lazy.force star_db in
  let rewritten, equal = rewrite_check ~mv_name:c.ast_name db ~query:c.query ~ast:c.ast in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%s): rewrite found" c.name c.fig)
    c.expect_rewrite rewritten;
  if rewritten then
    Alcotest.(check bool)
      (Printf.sprintf "%s: rewritten result equals original" c.name)
      true equal

(* Table 1: the sample Trans rows where the AST's HAVING clause silently
   drops the (1, 1991) group the query needs. A naive syntactic matcher
   would produce 3 instead of 4. *)
let table1_catalog () =
  Catalog.add_table Catalog.empty
    {
      Catalog.tbl_name = "Trans";
      tbl_cols =
        [
          { Catalog.col_name = "flid"; col_ty = V.Tint; nullable = false };
          { Catalog.col_name = "date"; col_ty = V.Tdate; nullable = false };
        ];
      primary_key = [];
      unique_keys = [];
      foreign_keys = [];
    }

let test_table1_scenario () =
  let rows =
    [
      [| i 1; d 1990 1 3 |];
      [| i 1; d 1990 2 10 |];
      [| i 1; d 1990 4 12 |];
      [| i 1; d 1991 10 20 |];
    ]
  in
  let db =
    Engine.Db.of_tables (table1_catalog ())
      [ ("Trans", R.create [ "flid"; "date" ] rows) ]
  in
  let query = "select flid, count(*) as cnt from Trans group by flid" in
  let ast =
    "select flid, year(date) as year, count(*) as cnt from Trans group by \
     flid, year(date) having count(*) > 2"
  in
  (* the correct answer is 4 transactions for flid 1 *)
  let direct = run db query in
  Alcotest.(check (list (list string)))
    "query result" [ [ "1"; "4" ] ]
    (List.map (List.map V.to_string) (sorted_rows direct));
  (* the AST itself only holds the 1990 group (count 3) *)
  let ast_content = run db ast in
  Alcotest.(check (list (list string)))
    "ast result" [ [ "1"; "1990"; "3" ] ]
    (List.map (List.map V.to_string) (sorted_rows ast_content));
  (* and the matcher must refuse *)
  let rewritten, _ = rewrite_check db ~query ~ast in
  Alcotest.(check bool) "no match against HAVING ast" false rewritten

(* The same AST without HAVING must match and produce 4. *)
let test_table1_positive_control () =
  let rows =
    [
      [| i 1; d 1990 1 3 |];
      [| i 1; d 1990 2 10 |];
      [| i 1; d 1990 4 12 |];
      [| i 1; d 1991 10 20 |];
    ]
  in
  let db =
    Engine.Db.of_tables (table1_catalog ())
      [ ("Trans", R.create [ "flid"; "date" ] rows) ]
  in
  let query = "select flid, count(*) as cnt from Trans group by flid" in
  let ast =
    "select flid, year(date) as year, count(*) as cnt from Trans group by \
     flid, year(date)"
  in
  let rewritten, equal = rewrite_check db ~query ~ast in
  Alcotest.(check bool) "match without HAVING" true rewritten;
  Alcotest.(check bool) "result correct (4)" true equal

let suite =
  List.map
    (fun (c : Workload.Paper_queries.case) ->
      Alcotest.test_case (c.fig ^ " " ^ c.name) `Quick (run_case c))
    Workload.Paper_queries.cases
  @ [
      Alcotest.test_case "Table 1 sample data" `Quick test_table1_scenario;
      Alcotest.test_case "Table 1 positive control" `Quick
        test_table1_positive_control;
    ]
