(* The decision-support workload: every query must produce identical
   results with rewriting on and off, and the routing expectations must
   hold (which queries the three summary tables can and cannot answer). *)

module Sess = Mvstore.Session
module R = Data.Relation

let session =
  lazy
    (let tables =
       Workload.Star_schema.generate
         {
           Workload.Star_schema.default_params with
           n_custs = 4;
           trans_per_acct_year = 40;
         }
     in
     let sn = Sess.of_tables (Workload.Star_schema.catalog ()) tables in
     List.iter
       (fun (name, sql) ->
         ignore
           (Sess.exec_sql sn
              (Printf.sprintf "CREATE SUMMARY TABLE %s AS %s" name sql)))
       Workload.Decision_support.summary_tables;
     sn)

let run_case (q : Workload.Decision_support.query) () =
  let sn = Lazy.force session in
  let parsed = Sqlsyn.Parser.parse_query q.dq_sql in
  Sess.set_rewrite sn false;
  let direct, _ = Sess.run_query sn parsed in
  Sess.set_rewrite sn true;
  let via, steps = Sess.run_query sn parsed in
  Alcotest.(check bool)
    (Printf.sprintf "%s: rewrite expectation" q.dq_name)
    q.dq_expect_rewrite (steps <> []);
  Alcotest.(check bool)
    (Printf.sprintf "%s: results equal" q.dq_name)
    true
    (R.bag_equal_approx direct via)

let test_summaries_created () =
  let sn = Lazy.force session in
  Alcotest.(check int) "three summaries" 3
    (List.length (Mvstore.Store.entries (Sess.store sn)))

let suite =
  Alcotest.test_case "summaries created" `Quick test_summaries_created
  :: List.map
       (fun (q : Workload.Decision_support.query) ->
         Alcotest.test_case q.dq_name `Quick (run_case q))
       Workload.Decision_support.queries
