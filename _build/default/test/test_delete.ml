(* DELETE and delete maintenance of summary tables. *)

module Sess = Mvstore.Session
module S = Mvstore.Store
module R = Data.Relation
module V = Data.Value
open Helpers

let script sn sql = Sess.exec_sql sn sql

let last_table outcomes =
  match List.rev outcomes with
  | Sess.Table r :: _ -> r
  | _ -> Alcotest.fail "expected a result table"

let setup () =
  let sn = Sess.create () in
  ignore
    (script sn
       "CREATE TABLE t (g INT NOT NULL, v INT); \
        INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (2, NULL), (3, 7);");
  sn

let test_delete_where () =
  let sn = setup () in
  ignore (script sn "DELETE FROM t WHERE g = 1;");
  let rel = last_table (script sn "SELECT g, v FROM t ORDER BY g;") in
  Alcotest.(check int) "three left" 3 (R.cardinality rel)

let test_delete_null_pred_keeps_row () =
  let sn = setup () in
  (* v > 3 is UNKNOWN for the NULL row: it must survive *)
  ignore (script sn "DELETE FROM t WHERE v > 3;");
  let rel = last_table (script sn "SELECT g, v FROM t;") in
  Alcotest.(check int) "null row kept" 1 (R.cardinality rel);
  Alcotest.(check string) "it is the null row" "NULL"
    (V.to_string (List.hd (R.rows rel)).(1))

let test_delete_all () =
  let sn = setup () in
  ignore (script sn "DELETE FROM t;");
  let rel = last_table (script sn "SELECT g FROM t;") in
  Alcotest.(check int) "empty" 0 (R.cardinality rel)

let test_delete_duplicates_individually () =
  let sn = Sess.create () in
  ignore
    (script sn
       "CREATE TABLE d (x INT NOT NULL); \
        INSERT INTO d VALUES (1), (1), (2); \
        DELETE FROM d WHERE x = 1;");
  let rel = last_table (script sn "SELECT x FROM d;") in
  Alcotest.(check int) "both duplicates gone" 1 (R.cardinality rel)

let setup_maint () =
  (* NOT NULL v: delete maintenance requires non-nullable SUM arguments *)
  let sn = Sess.create () in
  ignore
    (script sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (2, 9), (3, 7);");
  sn

let test_delete_maintains_count_sum_summary () =
  let sn = setup_maint () in
  ignore
    (script sn
       "CREATE SUMMARY TABLE m AS SELECT g, COUNT(*) AS c, SUM(v) AS s FROM \
        t GROUP BY g;");
  ignore (script sn "DELETE FROM t WHERE g = 2;");
  (* summary must still be fresh and correct: the g=2 group disappears *)
  let e = Option.get (S.find (Sess.store sn) "m") in
  Alcotest.(check bool) "still fresh" true e.S.e_fresh;
  let mv = last_table (script sn "SELECT g, c, s FROM m ORDER BY g;") in
  Alcotest.(check (list (list string)))
    "groups after delete"
    [ [ "1"; "2"; "30" ]; [ "3"; "1"; "7" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows mv)))

let test_delete_partial_group () =
  let sn = setup_maint () in
  ignore
    (script sn
       "CREATE SUMMARY TABLE m AS SELECT g, COUNT(*) AS c, SUM(v) AS s FROM \
        t GROUP BY g;");
  ignore (script sn "DELETE FROM t WHERE v = 10;");
  let mv = last_table (script sn "SELECT g, c, s FROM m ORDER BY g;") in
  Alcotest.(check (list (list string)))
    "g=1 group shrunk"
    [ [ "1"; "1"; "20" ]; [ "2"; "2"; "14" ]; [ "3"; "1"; "7" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows mv)))

let test_nullable_sum_goes_stale_on_delete () =
  (* SUM over a nullable column cannot be maintained under deletes: an
     all-NULL group must come back as NULL, not 0 *)
  let sn = setup () in
  ignore
    (script sn
       "CREATE SUMMARY TABLE mn AS SELECT g, COUNT(*) AS c, SUM(v) AS s \
        FROM t GROUP BY g;");
  ignore (script sn "DELETE FROM t WHERE v = 5;");
  let e = Option.get (S.find (Sess.store sn) "mn") in
  Alcotest.(check bool) "stale" false e.S.e_fresh

let test_minmax_summary_goes_stale_on_delete () =
  let sn = setup () in
  ignore
    (script sn
       "CREATE SUMMARY TABLE mm AS SELECT g, COUNT(*) AS c, MAX(v) AS mx \
        FROM t GROUP BY g;");
  ignore (script sn "DELETE FROM t WHERE v = 20;");
  let e = Option.get (S.find (Sess.store sn) "mm") in
  Alcotest.(check bool) "stale (max not subtractable)" false e.S.e_fresh

let test_summary_without_count_goes_stale_on_delete () =
  let sn = setup () in
  ignore
    (script sn
       "CREATE SUMMARY TABLE ms AS SELECT g, SUM(v) AS s FROM t GROUP BY g;");
  ignore (script sn "DELETE FROM t WHERE g = 3;");
  let e = Option.get (S.find (Sess.store sn) "ms") in
  Alcotest.(check bool) "stale (no tombstone counter)" false e.S.e_fresh

(* property: random insert/delete interleavings keep the summary equal to a
   recomputation *)
let prop_mixed_maintenance =
  QCheck.Test.make ~name:"insert/delete maintenance equals recompute"
    ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (pair bool (pair (int_range 1 3) (int_range 0 20))))
    (fun ops ->
      let sn = Sess.create () in
      ignore
        (script sn
           "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
            INSERT INTO t VALUES (1, 1), (2, 2), (3, 3); \
            CREATE SUMMARY TABLE m AS SELECT g, COUNT(*) AS c, SUM(v) AS s \
            FROM t GROUP BY g;");
      List.iter
        (fun (is_insert, (g, v)) ->
          if is_insert then
            ignore (script sn (Printf.sprintf "INSERT INTO t VALUES (%d, %d);" g v))
          else
            ignore (script sn (Printf.sprintf "DELETE FROM t WHERE g = %d AND v = %d;" g v)))
        ops;
      let e = Option.get (S.find (Sess.store sn) "m") in
      if not e.S.e_fresh then true (* stale is always allowed, never wrong *)
      else
        let recomputed = Engine.Exec.run (Sess.db sn) e.S.e_graph in
        let stored = Engine.Db.get_exn (Sess.db sn) "m" in
        R.bag_equal recomputed
          (R.project stored (Array.to_list (R.columns recomputed))))

let test_delete_errors () =
  let sn = setup () in
  (match script sn "DELETE FROM ghost;" with
  | exception Sess.Session_error _ -> ()
  | _ -> Alcotest.fail "unknown table accepted");
  match script sn "DELETE FROM t WHERE nope = 1;" with
  | exception Sess.Session_error _ -> ()
  | _ -> Alcotest.fail "unknown column accepted"

let suite =
  [
    Alcotest.test_case "delete with predicate" `Quick test_delete_where;
    Alcotest.test_case "null predicate keeps row" `Quick
      test_delete_null_pred_keeps_row;
    Alcotest.test_case "delete all" `Quick test_delete_all;
    Alcotest.test_case "duplicates" `Quick test_delete_duplicates_individually;
    Alcotest.test_case "count/sum summary maintained" `Quick
      test_delete_maintains_count_sum_summary;
    Alcotest.test_case "partial group" `Quick test_delete_partial_group;
    Alcotest.test_case "min/max goes stale" `Quick
      test_minmax_summary_goes_stale_on_delete;
    Alcotest.test_case "nullable sum goes stale" `Quick
      test_nullable_sum_goes_stale_on_delete;
    Alcotest.test_case "no counter goes stale" `Quick
      test_summary_without_count_goes_stale_on_delete;
    Alcotest.test_case "delete errors" `Quick test_delete_errors;
    QCheck_alcotest.to_alcotest prop_mixed_maintenance;
  ]
