(* Per-pattern unit tests for the match function, on small star-schema data.
   Each case asserts both the match decision and (for positive cases) that
   the rewritten query returns the same bag of rows. *)

open Helpers

let star_db =
  lazy
    (let params =
       {
         Workload.Star_schema.default_params with
         n_custs = 4;
         trans_per_acct_year = 25;
         n_locs = 20;
       }
     in
     Engine.Db.of_tables
       (Workload.Star_schema.catalog ())
       (Workload.Star_schema.generate params))

let expect ?(name = "") ~rewrite ~query ~ast () =
  let db = Lazy.force star_db in
  let rewritten, equal = rewrite_check db ~query ~ast in
  Alcotest.(check bool) (name ^ " rewrite decision") rewrite rewritten;
  if rewritten then Alcotest.(check bool) (name ^ " results equal") true equal

(* ---------------- 4.1.1: SELECT/SELECT with exact child matches ------ *)

let test_identical_selects () =
  expect ~rewrite:true
    ~query:"select tid, qty from Trans where disc > 0.1"
    ~ast:"select tid, qty, price from Trans where disc > 0.1"
    ()

let test_query_pred_derivable () =
  (* the subsumee's extra predicate is applied as compensation *)
  expect ~rewrite:true
    ~query:"select tid from Trans where disc > 0.1 and price > 100"
    ~ast:"select tid, price from Trans where disc > 0.1"
    ()

let test_query_pred_not_derivable () =
  (* price is not preserved by the AST: the extra predicate cannot be
     compensated *)
  expect ~rewrite:false
    ~query:"select tid from Trans where disc > 0.1 and price > 100"
    ~ast:"select tid, qty from Trans where disc > 0.1"
    ()

let test_ast_pred_too_strong () =
  (* the AST filtered away rows the query needs *)
  expect ~rewrite:false
    ~query:"select tid from Trans where disc > 0.05"
    ~ast:"select tid from Trans where disc > 0.1"
    ()

let test_subsumption_relaxed_ast_pred () =
  (* AST keeps more rows (disc > 0.05 subsumes disc > 0.1); the stricter
     query predicate is re-applied on top *)
  expect ~rewrite:true
    ~query:"select tid, disc from Trans where disc > 0.1"
    ~ast:"select tid, disc from Trans where disc > 0.05"
    ()

let test_rejoin_child () =
  (* PGroup only appears in the query: it is rejoined *)
  expect ~rewrite:true
    ~query:
      "select tid, pgname from Trans, PGroup where fpgid = pgid and disc > 0.1"
    ~ast:"select tid, fpgid from Trans where disc > 0.1"
    ()

let test_extra_child_lossless () =
  (* Loc only appears in the AST, joined on its key through declared RI *)
  expect ~rewrite:true
    ~query:"select tid, qty from Trans where disc > 0.1"
    ~ast:"select tid, qty, country from Trans, Loc where flid = lid and disc > 0.1"
    ()

let test_extra_child_with_filter_is_lossy () =
  expect ~rewrite:false
    ~query:"select tid, qty from Trans"
    ~ast:
      "select tid, qty from Trans, Loc where flid = lid and country = 'USA'"
    ()

let test_extra_child_non_key_join_is_lossy () =
  (* joining the extra child on a non-key column may duplicate rows *)
  expect ~rewrite:false
    ~query:"select tid from Trans"
    ~ast:"select tid from Trans, Loc where flid = lid and lid = tid"
    ()

let test_column_equivalence () =
  (* aid is derivable from faid thanks to the faid = aid join predicate *)
  expect ~rewrite:true ~query:Workload.Paper_queries.q2
    ~ast:Workload.Paper_queries.ast2 ()

let test_derivation_of_products () =
  (* qty*price*(1-disc) from value = qty*price and disc *)
  expect ~rewrite:true
    ~query:"select tid, qty * price * (1 - disc) as amt from Trans"
    ~ast:"select tid, disc, qty * price as value from Trans"
    ()

let test_select_missing_output () =
  expect ~rewrite:false
    ~query:"select tid, qty from Trans"
    ~ast:"select tid, price from Trans"
    ()

(* ---------------- 4.1.2 / 4.2.1: GROUP BY patterns ------------------ *)

let test_group_exact () =
  expect ~rewrite:true
    ~query:"select flid, count(*) as c from Trans group by flid"
    ~ast:"select flid, count(*) as c, sum(qty) as q from Trans group by flid"
    ()

let test_regroup_count_star () =
  expect ~rewrite:true
    ~query:"select flid, count(*) as c from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, count(*) as c from Trans group by flid, \
       year(date)"
    ()

let test_regroup_count_arg () =
  expect ~rewrite:true
    ~query:"select flid, count(qty) as c from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, count(qty) as c from Trans group by \
       flid, year(date)"
    ()

let test_regroup_count_via_count_star_nonnull () =
  (* COUNT(qty) with qty non-nullable can be derived from COUNT star *)
  expect ~rewrite:true
    ~query:"select flid, count(qty) as c from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, count(*) as c from Trans group by flid, \
       year(date)"
    ()

let test_regroup_sum () =
  expect ~rewrite:true
    ~query:"select flid, sum(qty) as q from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, sum(qty) as q from Trans group by flid, \
       year(date)"
    ()

let test_regroup_sum_of_grouping_col () =
  (* rule (c) second form: SUM(y) where y is an AST grouping column becomes
     SUM(y * cnt) *)
  expect ~rewrite:true
    ~query:"select flid, sum(qty) as q from Trans group by flid"
    ~ast:"select flid, qty, count(*) as cnt from Trans group by flid, qty"
    ()

let test_regroup_minmax () =
  expect ~rewrite:true
    ~query:"select flid, min(price) as mn, max(price) as mx from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, min(price) as mn, max(price) as mx from \
       Trans group by flid, year(date)"
    ()

let test_regroup_max_of_grouping_col () =
  expect ~rewrite:true
    ~query:"select flid, max(qty) as mx from Trans group by flid"
    ~ast:"select flid, qty, count(*) as cnt from Trans group by flid, qty"
    ()

let test_regroup_avg_decomposition () =
  expect ~rewrite:true
    ~query:"select flid, avg(qty) as a from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, sum(qty) as s, count(qty) as c from \
       Trans group by flid, year(date)"
    ()

let test_avg_not_derivable_without_sum () =
  expect ~rewrite:false
    ~query:"select flid, avg(qty) as a from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, count(*) as c from Trans group by flid, \
       year(date)"
    ()

let test_count_distinct_exact_rule_f () =
  (* AST groups by exactly the query keys plus the counted column: plain
     COUNT suffices (paper rule f) *)
  expect ~rewrite:true
    ~query:"select flid, count(distinct faid) as c from Trans group by flid"
    ~ast:"select flid, faid, count(*) as cnt from Trans group by flid, faid"
    ()

let test_count_distinct_general () =
  (* extra grouping column: needs COUNT(DISTINCT) in the compensation *)
  expect ~rewrite:true
    ~query:"select flid, count(distinct faid) as c from Trans group by flid"
    ~ast:
      "select flid, faid, year(date) as y, count(*) as cnt from Trans group \
       by flid, faid, year(date)"
    ()

let test_count_distinct_not_derivable () =
  expect ~rewrite:false
    ~query:"select flid, count(distinct faid) as c from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, count(*) as cnt from Trans group by \
       flid, year(date)"
    ()

let test_sum_distinct () =
  expect ~rewrite:true
    ~query:"select flid, sum(distinct qty) as s from Trans group by flid"
    ~ast:"select flid, qty, count(*) as cnt from Trans group by flid, qty"
    ()

let test_sum_distinct_not_from_partial_sums () =
  (* partial non-distinct SUMs cannot answer SUM(DISTINCT) *)
  expect ~rewrite:false
    ~query:"select flid, sum(distinct qty) as s from Trans group by flid"
    ~ast:
      "select flid, year(date) as y, sum(qty) as s from Trans group by flid, \
       year(date)"
    ()

let test_finer_query_grouping_no_match () =
  (* the query groups finer than the AST: cannot reconstruct *)
  expect ~rewrite:false
    ~query:
      "select flid, year(date) as y, count(*) as c from Trans group by flid, \
       year(date)"
    ~ast:"select flid, count(*) as c from Trans group by flid"
    ()

let test_pullup_condition_violated () =
  (* the query's WHERE references a column the AST aggregated away *)
  expect ~rewrite:false
    ~query:
      "select flid, count(*) as c from Trans where price > 100 group by flid"
    ~ast:
      "select flid, year(date) as y, count(*) as c from Trans group by flid, \
       year(date)"
    ()

let test_pullup_condition_satisfied () =
  (* same filter, but the filter column is an AST grouping column *)
  expect ~rewrite:true
    ~query:
      "select flid, count(*) as c from Trans where qty > 2 group by flid"
    ~ast:"select flid, qty, count(*) as c from Trans group by flid, qty"
    ()

let test_group_with_rejoin_one_sided () =
  (* Figure 8 shape: 1:N rejoin avoids regrouping; verified by equality *)
  expect ~rewrite:true ~query:Workload.Paper_queries.q7
    ~ast:Workload.Paper_queries.ast7 ()

let test_having_derived () =
  expect ~rewrite:true
    ~query:
      "select flid, count(*) as c from Trans group by flid having count(*) > 10"
    ~ast:
      "select flid, year(date) as y, count(*) as c from Trans group by flid, \
       year(date)"
    ()

(* ---------------- cube patterns (5.1 / 5.2) -------------------------- *)

let test_having_subsumption () =
  (* footnote 4 end to end: the AST's weaker HAVING keeps every group the
     query needs; the stricter query HAVING is re-applied on top *)
  expect ~rewrite:true
    ~query:
      "select flid, count(*) as c from Trans group by flid having count(*) > 40"
    ~ast:
      "select flid, count(*) as c from Trans group by flid having count(*) > 10"
    ()

let test_having_too_strong_rejected () =
  expect ~rewrite:false
    ~query:
      "select flid, count(*) as c from Trans group by flid having count(*) > 10"
    ~ast:
      "select flid, count(*) as c from Trans group by flid having count(*) > 40"
    ()

let test_cube_slice_choice () =
  (* must slice the (flid, year) cuboid, not the finer one *)
  let db = Lazy.force star_db in
  let cat = Engine.Db.catalog db in
  let query =
    build cat "select flid, year(date) as y, count(*) as c from Trans group by flid, year(date)"
  in
  let ast = build cat Workload.Paper_queries.ast11 in
  match Astmatch.Navigator.find_matches cat ~query ~ast with
  | [] -> Alcotest.fail "expected a match"
  | _ :: _ -> ()

let test_cube_no_covering_cuboid () =
  expect ~rewrite:false
    ~query:"select faid, month(date) as m, count(*) as c from Trans group by faid, month(date)"
    ~ast:Workload.Paper_queries.ast11 ()

let test_cube_query_vs_simple_ast () =
  (* multidimensional query over a simple AST: regroup with grouping sets *)
  expect ~rewrite:true
    ~query:
      "select flid, year(date) as y, count(*) as c from Trans group by \
       grouping sets((flid), (year(date)))"
    ~ast:
      "select flid, year(date) as y, count(*) as c from Trans group by flid, \
       year(date)"
    ()

let test_rollup_query_vs_cube_ast () =
  expect ~rewrite:true
    ~query:
      "select flid, year(date) as y, count(*) as c from Trans group by \
       rollup(flid, year(date))"
    ~ast:
      "select flid, year(date) as y, count(*) as c from Trans group by \
       grouping sets((flid, year(date)), (flid), ())"
    ()

let test_count_distinct_under_gsets_regroup () =
  (* regression (found by the soundness fuzzer): under a grouping-sets
     regroup, rule f's COUNT(y) shortcut is invalid for the coarser
     cuboids — the general COUNT(DISTINCT y) form must be used *)
  expect ~rewrite:true
    ~query:
      "select faid, year(date) as y, sum(qty) as s, count(distinct faid) as \
       d from Trans group by grouping sets((faid, year(date)), (faid), ())"
    ~ast:
      "select faid, year(date) as y, count(*) as c, sum(qty) as s from \
       Trans group by faid, year(date)"
    ()

(* ---------------- expression forms ----------------------------------- *)

let test_case_expression_derivation () =
  expect ~rewrite:true
    ~query:
      "select tid, case when disc > 0.1 then 'deal' else 'full' end as kind \
       from Trans"
    ~ast:"select tid, disc from Trans"
    ()

let test_between_and_in_desugar () =
  (* BETWEEN and IN desugar to comparisons/ORs and must compare equal *)
  expect ~rewrite:true
    ~query:"select tid from Trans where qty between 2 and 4"
    ~ast:"select tid from Trans where qty >= 2 and qty <= 4"
    ();
  expect ~rewrite:true
    ~query:"select tid from Trans where qty in (1, 3)"
    ~ast:"select tid from Trans where qty = 1 or qty = 3"
    ()

let test_commuted_predicates_match () =
  expect ~rewrite:true
    ~query:"select tid from Trans where 100 < price"
    ~ast:"select tid from Trans where price > 100"
    ()

let test_arith_normalization_match () =
  expect ~rewrite:true
    ~query:"select tid, price * qty as v from Trans"
    ~ast:"select tid, qty * price as v from Trans"
    ()

let test_grand_total_cuboid_slice () =
  (* section 5: the empty grouping set materializes the grand total; a
     whole-table aggregate slices it with IS NULL on every union column *)
  expect ~rewrite:true
    ~query:"select count(*) as c from Trans"
    ~ast:
      "select flid, year(date) as y, count(*) as c from Trans group by \
       grouping sets((flid, year(date)), (flid), ())"
    ()

let test_grand_total_derived_by_regroup () =
  (* no empty cuboid: re-sum the finest one instead *)
  expect ~rewrite:true
    ~query:"select count(*) as c, sum(qty) as q from Trans"
    ~ast:"select flid, count(*) as c, sum(qty) as q from Trans group by flid"
    ()

let test_grand_total_having () =
  expect ~rewrite:true
    ~query:"select sum(qty) as q from Trans having count(*) > 1"
    ~ast:"select flid, count(*) as c, sum(qty) as q from Trans group by flid"
    ()

(* ---------------- type mismatches ------------------------------------ *)

let test_distinct_mismatch () =
  expect ~rewrite:false
    ~query:"select distinct flid from Trans"
    ~ast:"select flid from Trans"
    ()

let suite =
  [
    Alcotest.test_case "identical selects" `Quick test_identical_selects;
    Alcotest.test_case "query pred derivable" `Quick test_query_pred_derivable;
    Alcotest.test_case "query pred not derivable" `Quick
      test_query_pred_not_derivable;
    Alcotest.test_case "ast pred too strong" `Quick test_ast_pred_too_strong;
    Alcotest.test_case "subsumed ast pred" `Quick
      test_subsumption_relaxed_ast_pred;
    Alcotest.test_case "rejoin child" `Quick test_rejoin_child;
    Alcotest.test_case "lossless extra child" `Quick test_extra_child_lossless;
    Alcotest.test_case "lossy extra child (filter)" `Quick
      test_extra_child_with_filter_is_lossy;
    Alcotest.test_case "lossy extra child (non-key join)" `Quick
      test_extra_child_non_key_join_is_lossy;
    Alcotest.test_case "column equivalence" `Quick test_column_equivalence;
    Alcotest.test_case "product derivation" `Quick test_derivation_of_products;
    Alcotest.test_case "missing output" `Quick test_select_missing_output;
    Alcotest.test_case "group exact" `Quick test_group_exact;
    Alcotest.test_case "regroup count(*)" `Quick test_regroup_count_star;
    Alcotest.test_case "regroup count(x)" `Quick test_regroup_count_arg;
    Alcotest.test_case "count via non-null count" `Quick
      test_regroup_count_via_count_star_nonnull;
    Alcotest.test_case "regroup sum" `Quick test_regroup_sum;
    Alcotest.test_case "sum of grouping column" `Quick
      test_regroup_sum_of_grouping_col;
    Alcotest.test_case "regroup min/max" `Quick test_regroup_minmax;
    Alcotest.test_case "max of grouping column" `Quick
      test_regroup_max_of_grouping_col;
    Alcotest.test_case "avg decomposition" `Quick test_regroup_avg_decomposition;
    Alcotest.test_case "avg needs sum" `Quick test_avg_not_derivable_without_sum;
    Alcotest.test_case "count distinct rule f" `Quick
      test_count_distinct_exact_rule_f;
    Alcotest.test_case "count distinct general" `Quick test_count_distinct_general;
    Alcotest.test_case "count distinct not derivable" `Quick
      test_count_distinct_not_derivable;
    Alcotest.test_case "sum distinct" `Quick test_sum_distinct;
    Alcotest.test_case "sum distinct needs distinct source" `Quick
      test_sum_distinct_not_from_partial_sums;
    Alcotest.test_case "finer grouping rejected" `Quick
      test_finer_query_grouping_no_match;
    Alcotest.test_case "pullup violated" `Quick test_pullup_condition_violated;
    Alcotest.test_case "pullup satisfied" `Quick test_pullup_condition_satisfied;
    Alcotest.test_case "1:N rejoin" `Quick test_group_with_rejoin_one_sided;
    Alcotest.test_case "having derived" `Quick test_having_derived;
    Alcotest.test_case "having subsumption" `Quick test_having_subsumption;
    Alcotest.test_case "having too strong" `Quick test_having_too_strong_rejected;
    Alcotest.test_case "cube slice" `Quick test_cube_slice_choice;
    Alcotest.test_case "no covering cuboid" `Quick test_cube_no_covering_cuboid;
    Alcotest.test_case "cube query vs simple ast" `Quick
      test_cube_query_vs_simple_ast;
    Alcotest.test_case "rollup vs grouping sets" `Quick
      test_rollup_query_vs_cube_ast;
    Alcotest.test_case "grand total cuboid slice" `Quick
      test_grand_total_cuboid_slice;
    Alcotest.test_case "grand total via regroup" `Quick
      test_grand_total_derived_by_regroup;
    Alcotest.test_case "grand total having" `Quick test_grand_total_having;
    Alcotest.test_case "count distinct under gsets regroup" `Quick
      test_count_distinct_under_gsets_regroup;
    Alcotest.test_case "case expressions" `Quick test_case_expression_derivation;
    Alcotest.test_case "between/in desugar" `Quick test_between_and_in_desugar;
    Alcotest.test_case "commuted predicates" `Quick test_commuted_predicates_match;
    Alcotest.test_case "arithmetic normalization" `Quick
      test_arith_normalization_match;
    Alcotest.test_case "distinct mismatch" `Quick test_distinct_mismatch;
  ]
