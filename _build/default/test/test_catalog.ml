(* Catalog: declaration validation, key and RI queries, statistics. *)

module C = Catalog
module V = Data.Value

let col name ty nullable = { C.col_name = name; col_ty = ty; nullable }

let base () =
  C.add_table C.empty
    {
      C.tbl_name = "dim";
      tbl_cols = [ col "id" V.Tint false; col "name" V.Tstr true ];
      primary_key = [ "id" ];
      unique_keys = [ [ "name" ] ];
      foreign_keys = [];
    }

let fact_tbl =
  {
    C.tbl_name = "fact";
    tbl_cols = [ col "k" V.Tint false; col "d" V.Tint false ];
    primary_key = [ "k" ];
    unique_keys = [];
    foreign_keys =
      [ { C.fk_cols = [ "d" ]; fk_ref_table = "dim"; fk_ref_cols = [ "id" ] } ];
  }

let test_lookup () =
  let cat = base () in
  Alcotest.(check bool) "mem case-insensitive" true (C.mem_table cat "DIM");
  Alcotest.(check bool) "missing" false (C.mem_table cat "nope");
  let tbl = C.table_exn cat "dim" in
  Alcotest.(check (list string)) "columns" [ "id"; "name" ] (C.column_names tbl);
  Alcotest.(check bool) "find column" true (C.find_column tbl "NAME" <> None)

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_validation () =
  let cat = base () in
  expect_invalid (fun () ->
      C.add_table cat
        { (C.table_exn cat "dim") with C.tbl_name = "dim" });
  expect_invalid (fun () ->
      C.add_table cat
        {
          C.tbl_name = "t";
          tbl_cols = [ col "a" V.Tint false; col "A" V.Tint false ];
          primary_key = [];
          unique_keys = [];
          foreign_keys = [];
        });
  expect_invalid (fun () ->
      C.add_table cat
        {
          C.tbl_name = "t";
          tbl_cols = [ col "a" V.Tint false ];
          primary_key = [ "nope" ];
          unique_keys = [];
          foreign_keys = [];
        });
  expect_invalid (fun () ->
      C.add_table cat
        {
          C.tbl_name = "t";
          tbl_cols = [ col "a" V.Tint false ];
          primary_key = [];
          unique_keys = [];
          foreign_keys =
            [ { C.fk_cols = [ "a" ]; fk_ref_table = "ghost"; fk_ref_cols = [ "x" ] } ];
        });
  (* FK must reference a key: fact.d is not a key of fact *)
  let cat_with_fact = C.add_table cat fact_tbl in
  expect_invalid (fun () ->
      C.add_table cat_with_fact
        {
          C.tbl_name = "t";
          tbl_cols = [ col "a" V.Tint false ];
          primary_key = [];
          unique_keys = [];
          foreign_keys =
            [ { C.fk_cols = [ "a" ]; fk_ref_table = "fact"; fk_ref_cols = [ "d" ] } ];
        })

let test_keys () =
  let cat = C.add_table (base ()) fact_tbl in
  Alcotest.(check bool) "pk is key" true (C.is_unique_key cat "dim" [ "id" ]);
  Alcotest.(check bool) "superset of key" true
    (C.is_unique_key cat "dim" [ "id"; "name" ]);
  Alcotest.(check bool) "unique key" true (C.is_unique_key cat "dim" [ "name" ]);
  Alcotest.(check bool) "non-key" false (C.is_unique_key cat "fact" [ "d" ])

let test_ri () =
  let cat = C.add_table (base ()) fact_tbl in
  Alcotest.(check bool) "declared RI holds" true
    (C.ri_holds cat ~from_table:"fact" ~from_cols:[ "d" ] ~to_table:"dim"
       ~to_cols:[ "id" ]);
  Alcotest.(check bool) "wrong direction" false
    (C.ri_holds cat ~from_table:"dim" ~from_cols:[ "id" ] ~to_table:"fact"
       ~to_cols:[ "k" ]);
  Alcotest.(check bool) "wrong columns" false
    (C.ri_holds cat ~from_table:"fact" ~from_cols:[ "k" ] ~to_table:"dim"
       ~to_cols:[ "id" ])

let test_ri_nullable_fk_rejected () =
  let cat =
    C.add_table (base ())
      {
        C.tbl_name = "factn";
        tbl_cols = [ col "k" V.Tint false; col "d" V.Tint true ];
        primary_key = [ "k" ];
        unique_keys = [];
        foreign_keys =
          [ { C.fk_cols = [ "d" ]; fk_ref_table = "dim"; fk_ref_cols = [ "id" ] } ];
      }
  in
  (* a nullable FK can drop rows in the join: not lossless *)
  Alcotest.(check bool) "nullable fk" false
    (C.ri_holds cat ~from_table:"factn" ~from_cols:[ "d" ] ~to_table:"dim"
       ~to_cols:[ "id" ])

let test_nullability () =
  let cat = base () in
  Alcotest.(check bool) "not null col" false (C.column_nullable cat "dim" "id");
  Alcotest.(check bool) "nullable col" true (C.column_nullable cat "dim" "name");
  Alcotest.(check bool) "unknown conservative" true
    (C.column_nullable cat "dim" "ghost")

let test_stats () =
  let cat = C.set_row_count (base ()) "dim" 42 in
  Alcotest.(check (option int)) "row count" (Some 42) (C.row_count cat "DIM");
  Alcotest.(check (option int)) "missing" None (C.row_count cat "fact")

let suite =
  [
    Alcotest.test_case "lookup" `Quick test_lookup;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "unique keys" `Quick test_keys;
    Alcotest.test_case "referential integrity" `Quick test_ri;
    Alcotest.test_case "nullable FK not lossless" `Quick
      test_ri_nullable_fk_rejected;
    Alcotest.test_case "nullability" `Quick test_nullability;
    Alcotest.test_case "statistics" `Quick test_stats;
  ]
